# Local targets mirroring .github/workflows/ci.yml exactly: `make ci` is
# what the gate runs.

GO ?= go

.PHONY: build test bench bench-json bench-diff fuzz fuzz-wire fuzz-wal fuzz-churn fuzz-rollup wal-torture lint docs-check recovery-equivalence streaming-equivalence serving-soak alloc-budget shard-equivalence shard-smoke sharded-10k ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full benchmark grid (paper figures + micro-benches). Use BENCH to focus,
# e.g. make bench BENCH=BenchmarkEngineInsertFixpoint
BENCH ?= .
bench:
	$(GO) test -run='^$$' -bench='$(BENCH)' -benchmem .

# Machine-readable perf trajectory: run the paper-figure benchmarks with a
# fixed iteration count and write BENCH_<date>.json (ns/op, B/op, allocs/op,
# and every custom metric). Compare files across commits to track the
# speedup curve.
BENCHJSON_BENCH ?= BenchmarkSolverACloudModel|BenchmarkFollowSunPerLinkCOP|BenchmarkEngineInsertFixpoint|BenchmarkAblation|BenchmarkACloudCompile|BenchmarkParseAnalyze|BenchmarkTickResolve|BenchmarkCluster|BenchmarkResync|BenchmarkGroundPeakAlloc|BenchmarkWALAppend|BenchmarkLogReplayRestart|BenchmarkServingChurn|BenchmarkSharded
BENCHJSON_ITERS ?= 10
BENCHJSON_OUT ?= BENCH_$(shell date +%Y-%m-%d).json
bench-json:
	$(GO) test -run='^$$' -bench='$(BENCHJSON_BENCH)' -benchtime=$(BENCHJSON_ITERS)x -benchmem . \
		| $(GO) run ./cmd/benchjson -out $(BENCHJSON_OUT)

# Compare two BENCH_*.json files and flag >15% ns/op regressions.
# Informational by default (single runs are noisy); set DIFF_FLAGS to
# e.g. "-fail-on-regress -threshold 20" for a hard gate. With no arguments
# it compares the two most recent BENCH_*.json files in the repo root.
BENCH_OLD ?= $(shell ls -1 BENCH_*.json 2>/dev/null | sort | tail -2 | head -1)
BENCH_NEW ?= $(shell ls -1 BENCH_*.json 2>/dev/null | sort | tail -1)
DIFF_FLAGS ?=
bench-diff:
	$(GO) run ./cmd/benchjson diff $(DIFF_FLAGS) $(BENCH_OLD) $(BENCH_NEW)

# Short fixed-budget fuzz of the Colog parser (the CI job runs the same
# target with FUZZTIME=20s).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/colog

# Fixed-budget fuzz of the delta wire codec (single + batch frames; signs
# outside {-1,+1} must be rejected at decode).
fuzz-wire:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeDeltas -fuzztime=$(FUZZTIME) ./internal/core

# Fixed-budget fuzz of the write-ahead-log record codec (corpus seeded from
# real node logs; bad CRCs, lengths, and versions must be rejected without
# panicking, and whatever decodes must re-encode canonically).
fuzz-wal:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeWALRecord -fuzztime=$(FUZZTIME) ./internal/store

# Fixed-budget fuzz of the churn-event frame codec (corpus recorded from a
# real cmd/serve load-driver run; bad versions, ops, and torn frames must be
# rejected without panicking, and whatever decodes must round-trip
# losslessly).
fuzz-churn:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeChurnEvent -fuzztime=$(FUZZTIME) ./internal/serve

# Fixed-budget fuzz of the shard rollup-frame codec (corpus captured live
# from a real 4-shard run; bad magic, versions, torn varints, and trailing
# bytes must be rejected without panicking, and whatever decodes must
# round-trip bit-exactly, NaN objectives included).
fuzz-rollup:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRollupFrame -fuzztime=$(FUZZTIME) ./internal/cluster

# The WAL crash-point torture gate: kill a disk-backed node at every log
# record boundary of a recorded run — torn mid-record writes and a torn
# header included — restart it, and require convergence on exactly the
# uninterrupted run's rows (see docs/storage.md).
wal-torture:
	$(GO) test -count=1 -run 'TestWALTorture' -v ./internal/cluster

# The recovery-equivalence gate: kill/restart mid-run must converge to the
# byte-identical tables, objectives, and solver traces of an uninterrupted
# run (runtime suite + all three scenario packages, sim and UDP modes).
recovery-equivalence:
	$(GO) test -count=1 -run 'TestRecovery' ./internal/cluster ./internal/acloud ./internal/followsun ./internal/wireless

# The streaming-grounding gate: the pipelined join path with predicate
# pushdown must solve bit-identically to materialized grounding under churn
# (tables, objectives, solver-node traces; see docs/grounding.md).
streaming-equivalence:
	$(GO) test -count=1 -run 'TestStreamingGroundEquivalence' ./internal/core

# The serving-soak gate: thousands of random churn events through the
# serving runtime per scenario, with randomized batching and injected
# deadline pressure; at every quiescent point the serving node must be
# byte-identical to a batch re-solve over the same cumulative facts
# (see docs/serving.md). Run under -race, as in CI.
serving-soak:
	$(GO) test -race -count=1 -run 'TestServingSoakEquivalence' ./internal/serve

# The allocation-regression gate: streaming grounding's B/op on the
# join-heavy BenchmarkGroundPeakAlloc workload must stay under the budget in
# ground_alloc_budget.txt. Run without -race (the test skips itself under it).
alloc-budget:
	$(GO) test -count=1 -run 'TestGroundAllocBudget' .

# The shard-equivalence gate: partitioning any scenario into key-range
# shards with rollup aggregation must keep results byte-identical to the
# unsharded run — and shard-count=1 must be byte-identical to no sharding
# at all (see docs/sharding.md).
shard-equivalence:
	$(GO) test -count=1 -run 'TestShard|TestClusterShardEquivalence' ./internal/cluster ./internal/acloud ./internal/followsun ./internal/wireless

# The multi-process smoke gate: three real OS processes over loopback UDP
# negotiate a sharded wireless round in token lockstep; merged decisions
# must match the single-process run link for link, and the rollup must fold
# every shard.
shard-smoke:
	$(GO) test -count=1 -run 'TestShardMultiProcess' -v ./internal/wireless

# The 10k-node scale gate: a 100x100 grid runs a capped sharded round
# through the rollup tree, and hierarchical aggregation must cost fewer
# cross-shard summary frames than all-pairs gossip. Heavy; env-gated.
sharded-10k:
	COLOGNE_SHARDED_10K=1 $(GO) test -count=1 -run 'TestSharded10kRound' -v -timeout 30m ./internal/wireless

# Documentation gate: broken relative links and intra-document anchors in
# README.md/docs/*.md and unformatted example Go files fail the build.
docs-check:
	$(GO) run ./cmd/docscheck

ci: lint build test docs-check
	$(GO) test -count=1 -run 'TestEnginesMatchBruteForce|TestEventEngineTraceMatchesLegacy' ./internal/solver
	$(GO) test -count=1 -run 'TestIncrementalGroundEquivalence' ./internal/core
	$(GO) test -count=1 -run 'TestStreamingGroundEquivalence' ./internal/core
	$(GO) test -count=1 -run 'TestGroundAllocBudget' .
	$(GO) test -count=1 -run 'TestClusterEquivalence' ./internal/acloud ./internal/followsun ./internal/wireless
	$(GO) test -race -run TestCluster ./internal/cluster/...
	$(GO) test -count=1 -run 'TestRecovery' ./internal/cluster ./internal/acloud ./internal/followsun ./internal/wireless
	$(GO) test -count=1 -run 'TestWALTorture' ./internal/cluster
	$(GO) test -race -count=1 -run 'TestServingSoakEquivalence' ./internal/serve
	$(GO) test -count=1 -run 'TestShard|TestClusterShardEquivalence' ./internal/cluster ./internal/acloud ./internal/followsun ./internal/wireless
	$(GO) test -count=1 -run 'TestShardMultiProcess' ./internal/wireless
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=20s ./internal/colog
	$(GO) test -run='^$$' -fuzz=FuzzDecodeDeltas -fuzztime=20s ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzDecodeWALRecord -fuzztime=20s ./internal/store
	$(GO) test -run='^$$' -fuzz=FuzzDecodeChurnEvent -fuzztime=20s ./internal/serve
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRollupFrame -fuzztime=20s ./internal/cluster
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	$(GO) vet ./...
