# Local targets mirroring .github/workflows/ci.yml exactly: `make ci` is
# what the gate runs.

GO ?= go

.PHONY: build test bench bench-json fuzz lint docs-check ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full benchmark grid (paper figures + micro-benches). Use BENCH to focus,
# e.g. make bench BENCH=BenchmarkEngineInsertFixpoint
BENCH ?= .
bench:
	$(GO) test -run='^$$' -bench='$(BENCH)' -benchmem .

# Machine-readable perf trajectory: run the paper-figure benchmarks with a
# fixed iteration count and write BENCH_<date>.json (ns/op, B/op, allocs/op,
# and every custom metric). Compare files across commits to track the
# speedup curve.
BENCHJSON_BENCH ?= BenchmarkSolverACloudModel|BenchmarkFollowSunPerLinkCOP|BenchmarkEngineInsertFixpoint|BenchmarkAblation|BenchmarkACloudCompile|BenchmarkParseAnalyze|BenchmarkTickResolve|BenchmarkCluster
BENCHJSON_ITERS ?= 10
BENCHJSON_OUT ?= BENCH_$(shell date +%Y-%m-%d).json
bench-json:
	$(GO) test -run='^$$' -bench='$(BENCHJSON_BENCH)' -benchtime=$(BENCHJSON_ITERS)x -benchmem . \
		| $(GO) run ./cmd/benchjson -out $(BENCHJSON_OUT)

# Short fixed-budget fuzz of the Colog parser (the CI job runs the same
# target with FUZZTIME=20s).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/colog

# Documentation gate: broken relative links in README.md/docs/*.md and
# unformatted example Go files fail the build.
docs-check:
	$(GO) run ./cmd/docscheck

ci: lint build test docs-check
	$(GO) test -count=1 -run 'TestEnginesMatchBruteForce|TestEventEngineTraceMatchesLegacy' ./internal/solver
	$(GO) test -count=1 -run 'TestIncrementalGroundEquivalence' ./internal/core
	$(GO) test -count=1 -run 'TestClusterEquivalence' ./internal/acloud ./internal/followsun ./internal/wireless
	$(GO) test -race -run TestCluster ./internal/cluster/...
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=20s ./internal/colog
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	$(GO) vet ./...
