# Local targets mirroring .github/workflows/ci.yml exactly: `make ci` is
# what the gate runs.

GO ?= go

.PHONY: build test bench lint ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full benchmark grid (paper figures + micro-benches). Use BENCH to focus,
# e.g. make bench BENCH=BenchmarkEngineInsertFixpoint
BENCH ?= .
bench:
	$(GO) test -run='^$$' -bench='$(BENCH)' -benchmem .

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	$(GO) vet ./...

ci: lint build test
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
