//go:build !race

package repro

// raceEnabled gates tests whose measurements (allocation sizes, timing) are
// distorted by the race detector's instrumentation.
const raceEnabled = false
