// Package repro's benchmark harness regenerates every table and figure of
// the Cologne paper's evaluation (section 6). Each benchmark prints the
// paper's metric through b.ReportMetric, so `go test -bench=. -benchmem`
// produces the full experiment grid; the cmd/ binaries print the same data
// as readable series. EXPERIMENTS.md records paper-vs-measured values.
package repro

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/acloud"
	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/followsun"
	"repro/internal/programs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wireless"
)

// ---------------------------------------------------------------- Table 2

// BenchmarkTable2CodeCompactness measures compilation of the five bundled
// protocols into imperative C++ and reports the paper's Table 2 metrics:
// Colog rule count and generated LOC.
func BenchmarkTable2CodeCompactness(b *testing.B) {
	for _, e := range programs.Table2Entries() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			var rules, loc int
			for i := 0; i < b.N; i++ {
				res := e.Analyze()
				src := codegen.Generate(e.Name, res)
				rules = res.Program.NumRules()
				loc = codegen.CountLines(src)
			}
			b.ReportMetric(float64(rules), "colog-rules")
			b.ReportMetric(float64(loc), "generated-LOC")
			b.ReportMetric(float64(loc)/float64(rules), "LOC/rule")
		})
	}
}

// ------------------------------------------------------------- Figures 2-3

func acloudBenchParams() acloud.Params {
	p := acloud.BenchParams()
	p.VMsPerHost = 10
	p.Hours = 1
	p.SolverMaxNodes = 2500
	p.SolverMaxTime = 500 * time.Millisecond
	p.Trace.Customers = 30
	p.Trace.TotalPPs = 200
	return p
}

// BenchmarkFigure2ACloudStdev replays the trace for each policy and reports
// the Figure 2 metric: mean CPU standard deviation (and its percentage of
// the Default policy's).
func BenchmarkFigure2ACloudStdev(b *testing.B) {
	p := acloudBenchParams()
	base, err := acloud.Run(p, acloud.Default)
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []acloud.Policy{acloud.Default, acloud.Heuristic, acloud.ACloud, acloud.ACloudM} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var res *acloud.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = acloud.Run(p, pol)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanStdev, "cpu-stddev")
			b.ReportMetric(100*res.MeanStdev/base.MeanStdev, "pct-of-default")
		})
	}
}

// BenchmarkFigure3ACloudMigrations reports the Figure 3 metric: mean VM
// migrations per interval, for the unconstrained and capped policies.
func BenchmarkFigure3ACloudMigrations(b *testing.B) {
	p := acloudBenchParams()
	for _, pol := range []acloud.Policy{acloud.Heuristic, acloud.ACloud, acloud.ACloudM} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var res *acloud.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = acloud.Run(p, pol)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanMigrations, "migrations/interval")
		})
	}
}

// ------------------------------------------------------------- Figures 4-5

func followSunBenchParams(n int) followsun.Params {
	p := followsun.DefaultParams(n)
	p.DemandMax = 6
	p.SolverMaxNodes = 8000
	return p
}

// BenchmarkFigure4FollowTheSunCost runs the distributed negotiation for
// each network size and reports the Figure 4 metrics: total cost reduction
// and convergence (virtual) time.
func BenchmarkFigure4FollowTheSunCost(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8, 10} {
		n := n
		b.Run(fmt.Sprintf("dcs=%d", n), func(b *testing.B) {
			var res *followsun.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = followsun.Run(followSunBenchParams(n))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ReductionPct, "cost-reduction-%")
			b.ReportMetric(res.ConvergenceTime.Seconds(), "convergence-s")
		})
	}
}

// BenchmarkFigure5FollowTheSunBandwidth reports the Figure 5 metric:
// per-node communication overhead in KB/s, per network size.
func BenchmarkFigure5FollowTheSunBandwidth(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8, 10} {
		n := n
		b.Run(fmt.Sprintf("dcs=%d", n), func(b *testing.B) {
			var res *followsun.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = followsun.Run(followSunBenchParams(n))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.PerNodeKBps, "KB/s/node")
		})
	}
}

// ------------------------------------------------------------- Figures 6-7

func wirelessBenchParams() wireless.Params {
	p := wireless.DefaultParams()
	p.SolverMaxNodes = 8000
	p.Passes = 2
	p.Rates = []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2}
	return p
}

// BenchmarkFigure6WirelessThroughput runs every protocol on the 30-node
// grid and reports the Figure 6 metric: aggregate throughput at the highest
// offered rate.
func BenchmarkFigure6WirelessThroughput(b *testing.B) {
	p := wirelessBenchParams()
	protos := []wireless.Protocol{
		wireless.OneInterface, wireless.IdenticalCh, wireless.Centralized,
		wireless.Distributed, wireless.CrossLayer,
	}
	for _, proto := range protos {
		proto := proto
		b.Run(proto.String(), func(b *testing.B) {
			var res *wireless.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = wireless.Run(p, proto)
				if err != nil {
					b.Fatal(err)
				}
			}
			last := len(res.ThroughputMbps) - 1
			b.ReportMetric(res.ThroughputMbps[last], "peak-Mbps")
			b.ReportMetric(float64(res.Interference), "interference-pairs")
		})
	}
}

// BenchmarkFigure7WirelessPolicies runs the Cross-layer protocol under the
// Figure 7 policy variants and reports peak throughput.
func BenchmarkFigure7WirelessPolicies(b *testing.B) {
	base := wirelessBenchParams()
	variants := []struct {
		name string
		mut  func(*wireless.Params)
	}{
		{"2hop", func(*wireless.Params) {}},
		{"restricted-channels", func(q *wireless.Params) { q.RestrictedChannels = true }},
		{"restricted+1hop", func(q *wireless.Params) {
			q.RestrictedChannels = true
			q.TwoHopCost = false
		}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			q := base
			v.mut(&q)
			var res *wireless.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = wireless.Run(q, wireless.CrossLayer)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ThroughputMbps[len(res.ThroughputMbps)-1], "peak-Mbps")
		})
	}
}

// -------------------------------------------------- section 6 text metrics

// BenchmarkACloudCompile measures Colog compilation (parse + static
// analysis + plan generation); the paper reports ~0.5 s for ACloud.
func BenchmarkACloudCompile(b *testing.B) {
	e := programs.ACloud(true, 3)
	for i := 0; i < b.N; i++ {
		res := e.Analyze()
		if _, err := core.NewNode("bench", res, e.Config, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFollowSunPerLinkCOP measures one per-link negotiation COP
// (ground + solve + materialize); the paper reports <0.5 s.
func BenchmarkFollowSunPerLinkCOP(b *testing.B) {
	p := followSunBenchParams(4)
	res, err := followsun.Run(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.MeanSolveTime.Seconds()*1000, "ms/solve")
	// Re-run whole negotiations to time the solve path end to end.
	for i := 0; i < b.N; i++ {
		if _, err := followsun.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFollowSunMigrationCap compares total migrations with and without
// the d11/c3 cap (the paper reports a 24% reduction on average).
func BenchmarkFollowSunMigrationCap(b *testing.B) {
	p := followSunBenchParams(6)
	free, err := followsun.Run(p)
	if err != nil {
		b.Fatal(err)
	}
	p.MaxMigrates = 3
	var capped *followsun.Result
	for i := 0; i < b.N; i++ {
		capped, err = followsun.Run(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(free.TotalMigrations), "migrations-uncapped")
	b.ReportMetric(float64(capped.TotalMigrations), "migrations-capped")
}

// BenchmarkWirelessConvergence reports the protocols' convergence times
// (paper: Centralized <30 s wall, Distributed ~40 s, Cross-layer ~80 s of
// testbed time; ours are virtual time for the distributed protocols).
func BenchmarkWirelessConvergence(b *testing.B) {
	p := wirelessBenchParams()
	for _, proto := range []wireless.Protocol{wireless.Centralized, wireless.Distributed, wireless.CrossLayer} {
		proto := proto
		b.Run(proto.String(), func(b *testing.B) {
			var res *wireless.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = wireless.Run(p, proto)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Convergence.Seconds(), "convergence-s")
			b.ReportMetric(res.PerNodeKBps, "KB/s/node")
		})
	}
}

// ------------------------------------------------------------ micro-benches

// BenchmarkEngineInsertFixpoint measures raw incremental evaluation: one
// insert driving a three-rule pipeline with an aggregate.
func BenchmarkEngineInsertFixpoint(b *testing.B) {
	src := `
r1 hot(V,H,C) <- vm(V,H,C), C>50.
r2 perHost(H,SUM<C>) <- hot(V,H,C).
r3 alert(H) <- perHost(H,C), C>200.
`
	prog, err := colog.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	node := mustNode(b, src)
	_ = prog
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := colog.StringVal(fmt.Sprintf("vm%d", i%1000))
		host := colog.StringVal(fmt.Sprintf("h%d", i%16))
		if err := node.Insert("vm", vm, host, colog.IntVal(int64(40+i%60))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverACloudModel measures one grounding+solve of the ACloud COP
// at 48 VMs x 4 hosts.
func BenchmarkSolverACloudModel(b *testing.B) {
	e := programs.ACloud(false, 0)
	cfg := e.Config
	cfg.SolverMaxNodes = 2000
	cfg.SolverPropagate = true
	res := e.Analyze()
	node, err := core.NewNode("bench", res, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	for h := 0; h < 4; h++ {
		node.Insert("host", colog.StringVal(fmt.Sprintf("h%d", h)), colog.IntVal(0), colog.IntVal(0))
		node.Insert("hostMemThres", colog.StringVal(fmt.Sprintf("h%d", h)), colog.IntVal(1<<20))
	}
	for v := 0; v < 48; v++ {
		node.Insert("vmRaw", colog.StringVal(fmt.Sprintf("vm%d", v)),
			colog.IntVal(int64(25+v%60)), colog.IntVal(512))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := node.Solve(core.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseAnalyze measures the language front end on the largest
// bundled program.
func BenchmarkParseAnalyze(b *testing.B) {
	e := programs.FollowSunDistributed(20)
	for i := 0; i < b.N; i++ {
		prog, err := colog.Parse(e.Source)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := colog.Parse(prog.String()); err != nil {
			b.Fatal(err)
		}
		_ = e.Analyze()
	}
}

// --------------------------------------------------------------- ablations

// BenchmarkAblationLinearPropagation measures the dedicated linear
// propagator's effect on an assignment COP (DESIGN.md design choice:
// selections compiled to constraints still need linear bounds reasoning to
// prune).
func BenchmarkAblationLinearPropagation(b *testing.B) {
	build := func() *solver.Model {
		m := solver.NewModel()
		nI, nB := 10, 3
		loads := make([]*solver.Expr, nB)
		rows := make([][]*solver.Expr, nI)
		for i := 0; i < nI; i++ {
			rows[i] = make([]*solver.Expr, nB)
			rowSum := make([]*solver.Expr, nB)
			for j := 0; j < nB; j++ {
				v := m.BoolVar("x")
				rows[i][j] = m.Mul(m.VarExpr(v), m.ConstInt(int64(10+i*3)))
				rowSum[j] = m.VarExpr(v)
			}
			m.Require(m.Eq(m.Sum(rowSum...), m.Const(1)))
		}
		for j := 0; j < nB; j++ {
			col := make([]*solver.Expr, nI)
			for i := 0; i < nI; i++ {
				col[i] = rows[i][j]
			}
			loads[j] = m.Sum(col...)
		}
		m.Minimize(m.StdDev(loads...))
		return m
	}
	for _, eng := range []solver.Engine{solver.EngineEvent, solver.EngineLegacy} {
		for _, variant := range []struct {
			name    string
			disable bool
		}{{"with-linear", false}, {"without-linear", true}} {
			eng, variant := eng, variant
			b.Run(eng.String()+"/"+variant.name, func(b *testing.B) {
				var nodes int64
				for i := 0; i < b.N; i++ {
					sol := build().Solve(solver.Options{
						Engine: eng, DisableLinear: variant.disable, MaxNodes: 200000,
					})
					nodes = sol.Stats.Nodes
				}
				b.ReportMetric(float64(nodes), "search-nodes")
			})
		}
	}
}

// BenchmarkAblationEventEngine isolates the propagation engine against the
// legacy core on one grounded ACloud COP (same model, same node budget, same
// resulting trace): the difference is pure per-node propagation cost.
func BenchmarkAblationEventEngine(b *testing.B) {
	for _, engine := range []string{"event", "legacy"} {
		engine := engine
		b.Run(engine, func(b *testing.B) {
			e := programs.ACloud(false, 0)
			cfg := e.Config
			cfg.SolverMaxNodes = 600
			cfg.SolverPropagate = true
			cfg.SolverEngine = engine
			node, err := core.NewNode("bench", e.Analyze(), cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			for h := 0; h < 4; h++ {
				node.Insert("host", colog.StringVal(fmt.Sprintf("h%d", h)), colog.IntVal(0), colog.IntVal(0))
				node.Insert("hostMemThres", colog.StringVal(fmt.Sprintf("h%d", h)), colog.IntVal(1<<20))
			}
			for v := 0; v < 48; v++ {
				node.Insert("vmRaw", colog.StringVal(fmt.Sprintf("vm%d", v)),
					colog.IntVal(int64(25+v%60)), colog.IntVal(512))
			}
			b.ResetTimer()
			var res *core.SolveResult
			for i := 0; i < b.N; i++ {
				res, err = node.Solve(core.SolveOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.Nodes), "search-nodes")
			b.ReportMetric(res.Objective, "objective")
		})
	}
}

// BenchmarkAblationWarmStart measures the warm-start hint's effect on the
// ACloud COP (DESIGN.md design choice: anytime B&B from the current
// placement).
func BenchmarkAblationWarmStart(b *testing.B) {
	setup := func(engine string) *core.Node {
		e := programs.ACloud(false, 0)
		cfg := e.Config
		cfg.SolverMaxNodes = 3000
		cfg.SolverPropagate = true
		cfg.SolverEngine = engine
		node, err := core.NewNode("bench", e.Analyze(), cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		for h := 0; h < 4; h++ {
			node.Insert("host", colog.StringVal(fmt.Sprintf("h%d", h)), colog.IntVal(0), colog.IntVal(0))
			node.Insert("hostMemThres", colog.StringVal(fmt.Sprintf("h%d", h)), colog.IntVal(1<<20))
		}
		for v := 0; v < 32; v++ {
			node.Insert("vmRaw", colog.StringVal(fmt.Sprintf("vm%02d", v)),
				colog.IntVal(int64(25+(v*7)%60)), colog.IntVal(512))
		}
		return node
	}
	lptHint := func(pred string, vals []colog.Value) (int64, bool) {
		// Spread round-robin as a crude warm start.
		if vals[0].S[2:] >= "16" == (vals[1].S == "h1" || vals[1].S == "h3") {
			return 1, true
		}
		return 0, true
	}
	for _, engine := range []string{"event", "legacy"} {
		for _, variant := range []struct {
			name string
			hint func(string, []colog.Value) (int64, bool)
		}{{"with-hint", lptHint}, {"without-hint", nil}} {
			engine, variant := engine, variant
			b.Run(engine+"/"+variant.name, func(b *testing.B) {
				node := setup(engine)
				var obj float64
				for i := 0; i < b.N; i++ {
					res, err := node.Solve(core.SolveOptions{Hint: variant.hint})
					if err != nil {
						b.Fatal(err)
					}
					obj = res.Objective
				}
				b.ReportMetric(obj, "objective")
			})
		}
	}
}

// BenchmarkAblationJoinIndex measures the hash join index against full
// scans by timing a join-heavy insert workload (the index is built lazily;
// scanning is forced by a rule whose join has no bound columns).
func BenchmarkAblationJoinIndex(b *testing.B) {
	// indexed: join on bound H; scan: cross join (no bound columns).
	for _, variant := range []struct{ name, src string }{
		{"indexed-join", `r1 pair(V,W) <- vm(V,H), vm2(W,H).`},
		{"cross-join", `r1 pair(V,W) <- vm(V,H), vm2(W,H2).`},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			node := mustNode(b, variant.src)
			for i := 0; i < 400; i++ {
				node.Insert("vm2", colog.StringVal(fmt.Sprintf("w%d", i)),
					colog.StringVal(fmt.Sprintf("h%d", i%20)))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				node.Insert("vm", colog.StringVal(fmt.Sprintf("v%d", i)),
					colog.StringVal(fmt.Sprintf("h%d", i%20)))
			}
		})
	}
}

// groundModes compares the streaming grounding pipeline against the
// materialized escape hatch (same emission order byte for byte, pinned by
// TestStreamingGroundEquivalence).
var groundModes = []string{"streaming", "materialized"}

// acloudBenchNode builds the standard 48-VM x 4-host ACloud bench node.
func acloudBenchNode(b *testing.B, mutate func(*core.Config)) *core.Node {
	b.Helper()
	e := programs.ACloud(false, 0)
	cfg := e.Config
	cfg.SolverPropagate = true
	if mutate != nil {
		mutate(&cfg)
	}
	node, err := core.NewNode("bench", e.Analyze(), cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	for h := 0; h < 4; h++ {
		node.Insert("host", colog.StringVal(fmt.Sprintf("h%d", h)), colog.IntVal(0), colog.IntVal(0))
		node.Insert("hostMemThres", colog.StringVal(fmt.Sprintf("h%d", h)), colog.IntVal(1<<20))
	}
	for v := 0; v < 48; v++ {
		node.Insert("vmRaw", colog.StringVal(fmt.Sprintf("vm%d", v)),
			colog.IntVal(int64(25+v%60)), colog.IntVal(512))
	}
	return node
}

// BenchmarkAblationGroundStream measures the streaming grounding pipeline
// against the materialized join path on a full ACloud solve (same model,
// same trace — the delta is pure grounding cost and garbage).
func BenchmarkAblationGroundStream(b *testing.B) {
	for _, mode := range groundModes {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			node := acloudBenchNode(b, func(cfg *core.Config) {
				cfg.SolverMaxNodes = 600
				cfg.GroundMode = mode
			})
			b.ReportAllocs()
			b.ResetTimer()
			var res *core.SolveResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = node.Solve(core.SolveOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.Nodes), "search-nodes")
		})
	}
}

// BenchmarkGroundPeakAlloc isolates grounding-path allocation on a
// join-heavy COP: a small variable set joined against a 4000-row ground
// table inside a solver derivation rule. The model is tiny and the solve
// stops at the first incumbent, so B/op and allocs/op are dominated by join
// execution — where the materialized path lifts every ground row into a
// fresh symbolic tuple and builds transient indexes per solve, and the
// streaming path probes the table's persistent seq-ordered index over raw
// rows. The CI allocation gate (TestGroundAllocBudget) holds the streaming
// variant under the budget committed in ground_alloc_budget.txt.
func BenchmarkGroundPeakAlloc(b *testing.B) {
	for _, mode := range groundModes {
		b.Run(mode, groundPeakAllocBench(mode))
	}
}

// groundPeakAllocBench is one BenchmarkGroundPeakAlloc variant, shared with
// the TestGroundAllocBudget regression gate.
func groundPeakAllocBench(mode string) func(b *testing.B) {
	src := `
goal minimize C in cost(C).
var sel(S,T) forall site(S).

site(1). site(2). site(3). site(4). site(5). site(6). site(7). site(8).
link(1,0,50).

d1 siteCost(S,SUM<X>) <- sel(S,T), link(S,7,W), X==T*W.
d2 cost(SUM<X>) <- siteCost(S,X).
`
	return func(b *testing.B) {
		prog, err := colog.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		ares, err := analysis.Analyze(prog, nil)
		if err != nil {
			b.Fatal(err)
		}
		node, err := core.NewNode("bench", ares, core.Config{
			SolverPropagate: true,
			GroundMode:      mode,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		for s := 1; s <= 8; s++ {
			for k := 1; k < 500; k++ {
				if err := node.Insert("link", colog.IntVal(int64(s)),
					colog.IntVal(int64(k)), colog.IntVal(int64(10+(s*k)%90))); err != nil {
					b.Fatal(err)
				}
			}
		}
		// One warmup solve pays the one-time index/snapshot builds so the
		// measured B/op is the steady-state grounding cost at any -benchtime.
		if _, err := node.Solve(core.SolveOptions{FirstSolution: true}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := node.Solve(core.SolveOptions{FirstSolution: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func mustNode(b *testing.B, src string) *core.Node {
	b.Helper()
	prog, err := colog.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	ares, err := analysis.Analyze(prog, nil)
	if err != nil {
		b.Fatal(err)
	}
	node, err := core.NewNode("bench", ares, core.Config{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return node
}

// ----------------------------------------------- tick-over-tick re-solves

// tickModes compares fresh re-grounding against the incremental
// re-grounding subsystem (same solutions tick for tick, pinned by the
// TestIncrementalEquivalence suites).
var tickModes = []struct {
	name        string
	incremental bool
}{{"fresh", false}, {"incremental", true}}

// BenchmarkTickResolveACloud measures one ACloud tick at 48 VMs x 4 hosts:
// a quarter of the VMs report a new CPU reading (demand shifts are
// localized per customer), then the COP re-solves under a tick-sized node
// budget. The churn is pure value updates, so the incremental grounder
// patches constants in place instead of rebuilding the model.
func BenchmarkTickResolveACloud(b *testing.B) {
	for _, mode := range tickModes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			e := programs.ACloud(false, 0)
			cfg := e.Config
			cfg.SolverMaxNodes = 600
			cfg.SolverPropagate = true
			cfg.SolverIncremental = mode.incremental
			cfg.Keys = map[string][]int{"vmRaw": {0}, "vm": {0}}
			node, err := core.NewNode("bench", e.Analyze(), cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			for h := 0; h < 4; h++ {
				node.Insert("host", colog.StringVal(fmt.Sprintf("h%d", h)), colog.IntVal(0), colog.IntVal(0))
				node.Insert("hostMemThres", colog.StringVal(fmt.Sprintf("h%d", h)), colog.IntVal(1<<20))
			}
			var last *core.SolveResult
			tick := func(i int) {
				for v := i * 12 % 48; v < i*12%48+12; v++ {
					node.Insert("vmRaw", colog.StringVal(fmt.Sprintf("vm%02d", v)),
						colog.IntVal(int64(25+(v*13+i*7)%60)), colog.IntVal(512))
				}
				res, err := node.Solve(core.SolveOptions{})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			for v := 0; v < 48; v++ {
				node.Insert("vmRaw", colog.StringVal(fmt.Sprintf("vm%02d", v)),
					colog.IntVal(int64(25+v*13%60)), colog.IntVal(512))
			}
			tick(0) // prime the grounding cache
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tick(i + 1)
			}
			b.ReportMetric(float64(last.Stats.Nodes), "search-nodes")
			if last.Ground != nil {
				b.ReportMetric(float64(last.Ground.ConstsPatched), "consts-patched")
			}
		})
	}
}

// BenchmarkTickResolveFollowSun measures one Follow-the-Sun re-negotiation
// tick on a persistent link: both endpoints' demand allocations drift
// (keyed value updates on curVm), then the initiator re-solves its per-link
// COP.
func BenchmarkTickResolveFollowSun(b *testing.B) {
	for _, mode := range tickModes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			sched := sim.NewScheduler()
			tr := transport.NewSim(sched, time.Millisecond)
			entry := programs.FollowSunDistributed(1 << 30)
			names := []string{"dc00", "dc01", "dc02", "dc03", "dc04", "dc05", "dc06",
				"dc07", "dc08", "dc09", "dc10", "dc11", "dc12", "dc13"}
			// Demand locations span more than the two negotiating nodes, as
			// in the full experiment: the per-link COP decides a migration
			// variable per demand.
			demands := []string{"dc00", "dc01", "dm02"}
			nodes := map[string]*core.Node{}
			for _, name := range names {
				cfg := entry.Config
				cfg.SolverMaxNodes = 2000
				cfg.SolverPropagate = true
				cfg.SolverWarmStart = true
				cfg.SolverIncremental = mode.incremental
				node, err := core.NewNode(name, entry.Analyze(), cfg, tr)
				if err != nil {
					b.Fatal(err)
				}
				nodes[name] = node
			}
			for _, x := range names {
				node := nodes[x]
				for v := int64(-1); v <= 1; v++ {
					node.Insert("migRange", colog.IntVal(v))
				}
				node.Insert("opCost", colog.StringVal(x), colog.IntVal(10))
				node.Insert("resource", colog.StringVal(x), colog.IntVal(60))
				for di, d := range demands {
					cc := int64(0)
					if d != x {
						cc = 50 + int64(di*17)%50
					}
					node.Insert("commCost", colog.StringVal(x), colog.StringVal(d), colog.IntVal(cc))
					node.Insert("dc", colog.StringVal(x), colog.StringVal(d))
					node.Insert("curVm", colog.StringVal(x), colog.StringVal(d), colog.IntVal(int64(3+di)))
				}
			}
			// A star around the initiator: every other DC is a neighbour whose
			// state replicates into dc01's per-link COP.
			for _, peer := range names {
				if peer == "dc01" {
					continue
				}
				for _, pair := range [][2]string{{"dc01", peer}, {peer, "dc01"}} {
					nodes[pair[0]].Insert("link", colog.StringVal(pair[0]), colog.StringVal(pair[1]))
					nodes[pair[0]].Insert("migCost", colog.StringVal(pair[0]), colog.StringVal(pair[1]), colog.IntVal(12))
				}
			}
			sched.Run(sched.Now() + time.Second)
			// The link under negotiation persists across ticks.
			nodes["dc01"].Insert("setLink", colog.StringVal("dc01"), colog.StringVal("dc00"))
			var last *core.SolveResult
			tick := func(i int) {
				for xi, x := range names[:1] {
					for di, d := range demands {
						alloc := int64(2 + (xi*3+di*5+i)%7)
						nodes[x].Insert("curVm", colog.StringVal(x), colog.StringVal(d), colog.IntVal(alloc))
					}
				}
				sched.Run(sched.Now() + 100*time.Millisecond)
				res, err := nodes["dc01"].Solve(core.SolveOptions{})
				if err != nil {
					b.Fatal(err)
				}
				last = res
				sched.Run(sched.Now() + 100*time.Millisecond)
			}
			tick(0) // prime the grounding cache
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tick(i + 1)
			}
			b.ReportMetric(float64(last.Stats.Nodes), "search-nodes")
			if last.Ground != nil {
				b.ReportMetric(float64(last.Ground.ConstsPatched), "consts-patched")
			}
		})
	}
}

// ------------------------------------------------------- Cluster runtime

// BenchmarkClusterFollowSunRing runs the generated 200-link Follow-the-Sun
// ring on the concurrent cluster runtime (sparse demand universe, matched
// rounds negotiating concurrently) and reports negotiation and traffic
// totals. The workers dimension shows the concurrency win at identical
// results — sim-mode cluster runs are byte-identical at any pool size.
func BenchmarkClusterFollowSunRing(b *testing.B) {
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("links=200/workers=%d", workers), func(b *testing.B) {
			var res *followsun.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = followsun.RunCluster(followsun.RingParams(200), cluster.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			var msgs int64
			for _, st := range res.WireStats {
				msgs += st.MsgsSent
			}
			b.ReportMetric(float64(res.PerLinkSolves), "link-solves")
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(msgs), "msgs-sent")
			b.ReportMetric(100-res.FinalCost, "cost-reduction-pct")
		})
	}
}

// BenchmarkClusterWirelessGrid runs distributed channel selection on a
// generated 200-node grid (20 x 10, 355 links) with concurrent negotiation
// waves, with and without per-(epoch,destination) delta batching. The
// msgs-sent metric is the acceptance number: batching must reduce it at
// identical channel decisions.
func BenchmarkClusterWirelessGrid(b *testing.B) {
	for _, batch := range []bool{false, true} {
		batch := batch
		b.Run(fmt.Sprintf("nodes=200/batch=%v", batch), func(b *testing.B) {
			var res *wireless.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = wireless.RunClusterWaves(wireless.ScaledGridParams(20, 10),
					cluster.Options{Workers: 8, BatchDeltas: batch})
				if err != nil {
					b.Fatal(err)
				}
			}
			var msgs, bytes int64
			for _, st := range res.WireStats {
				msgs += st.MsgsSent
				bytes += st.BytesSent
			}
			b.ReportMetric(float64(msgs), "msgs-sent")
			b.ReportMetric(float64(bytes), "bytes-sent")
			b.ReportMetric(float64(res.Interference), "interference")
			b.ReportMetric(float64(res.SolverNodes), "search-nodes")
		})
	}
}

// BenchmarkShardedEpoch runs the 200-node wireless grid's concurrent
// negotiation waves through the sharded runtime at 1, 2, and 4 key-range
// shards under hierarchical rollup aggregation, plus the all-pairs gossip
// ablation at 4 shards. Node decisions, solver traces, and node wire
// counters are byte-identical at every setting (the shard-equivalence gate
// pins that); agg-msgs is the acceptance number — the rollup tree costs
// shards-1 frames per epoch where all-pairs costs shards*(shards-1).
func BenchmarkShardedEpoch(b *testing.B) {
	for _, c := range []struct {
		shards int
		agg    string
	}{
		{1, cluster.AggregationRollup},
		{2, cluster.AggregationRollup},
		{4, cluster.AggregationRollup},
		{4, cluster.AggregationAllPairs},
	} {
		c := c
		b.Run(fmt.Sprintf("shards=%d/agg=%s", c.shards, c.agg), func(b *testing.B) {
			p := wireless.ScaledGridParams(20, 10)
			var res *wireless.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = wireless.RunClusterWaves(p, cluster.Options{
					Workers:     8,
					Shards:      wireless.GridShardPlan(p.GridW, c.shards),
					Aggregation: c.agg,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			var msgs int64
			for _, st := range res.WireStats {
				msgs += st.MsgsSent
			}
			b.ReportMetric(float64(msgs), "msgs-sent")
			b.ReportMetric(float64(res.AggMsgs), "agg-msgs")
			b.ReportMetric(float64(res.AggBytes), "agg-bytes")
			b.ReportMetric(float64(res.SolverNodes), "search-nodes")
		})
	}
}

// resyncBenchSrc is the miniature distributed COP the recovery benchmark
// runs: per-node picks minimizing weighted cost under a demand floor, with
// decisions replicated to the ring neighbor (the solve→replicate round
// shape of the real scenarios; same program as the cluster runtime's own
// failure-injection suite).
const resyncBenchSrc = `
goal minimize C in cost(@X,C).
var pick(@X,D,V) forall item(@X,D) domain [0,5].

d1 cost(@X,SUM<E>) <- pick(@X,D,V), w(@X,D,W), E==V*W.
d2 total(@X,SUM<V>) <- pick(@X,D,V).
c1 total(@X,V) -> need(@X,N), V>=N.

r1 got(@Y,X,D,V2) <- link(@X,Y), pick(@X,D,V), V2:=V.
`

// resyncBenchSpecs builds the 8-node decision-replicating ring specs the
// recovery benchmark kills and restarts.
func resyncBenchSpecs(b *testing.B) []cluster.NodeSpec {
	b.Helper()
	prog, err := colog.Parse(resyncBenchSrc)
	if err != nil {
		b.Fatal(err)
	}
	ares, err := analysis.Analyze(prog, nil)
	if err != nil {
		b.Fatal(err)
	}
	const nodes, items = 8, 6
	specs := make([]cluster.NodeSpec, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		addr := fmt.Sprintf("n%d", i)
		next := fmt.Sprintf("n%d", (i+1)%nodes)
		specs[i] = cluster.NodeSpec{
			Addr:    addr,
			Program: ares,
			Config: core.Config{
				SolverPropagate: true,
				Keys:            map[string][]int{"got": {0, 1, 2}},
			},
			Seed: func(n *core.Node) error {
				for d := 0; d < items; d++ {
					dn := fmt.Sprintf("d%d", d)
					if err := n.Insert("item", colog.StringVal(addr), colog.StringVal(dn)); err != nil {
						return err
					}
					if err := n.Insert("w", colog.StringVal(addr), colog.StringVal(dn), colog.IntVal(int64(i+d+1))); err != nil {
						return err
					}
				}
				if err := n.Insert("need", colog.StringVal(addr), colog.IntVal(int64(3+i%3))); err != nil {
					return err
				}
				return n.Insert("link", colog.StringVal(addr), colog.StringVal(next))
			},
		}
	}
	return specs
}

// BenchmarkResync measures recovery cost on a decision-replicating ring:
// after churned epochs a node is killed (its in-flight decisions lost) and
// restarted, and the automatic anti-entropy exchange pulls it back into
// alignment. The variants compare the three recovery paths — reseed (no
// durable state: full re-pull), checkpoint (restore the periodic snapshot,
// pull the gap), and walreplay (store=disk: replay the local write-ahead
// log, pull only the outage window). Reported metrics: the
// restart-to-converged latency and the rows/bytes the exchange pulled —
// the recovery-cost numbers BENCH_*.json tracks across commits.
func BenchmarkResync(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts cluster.Options
	}{
		{"reseed", cluster.Options{Workers: 4, Latency: time.Millisecond}},
		{"checkpoint", cluster.Options{Workers: 4, Latency: time.Millisecond, CheckpointEvery: 1}},
		{"walreplay", cluster.Options{Workers: 4, Latency: time.Millisecond, Storage: "disk"}},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			specs := resyncBenchSpecs(b)
			const victim = "n2"
			var restart time.Duration
			var rows, bytes, logBytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := variant.opts
				if opts.Storage == "disk" {
					b.StopTimer()
					opts.StorageDir = b.TempDir()
					b.StartTimer()
				}
				r := cluster.New(opts)
				if err := r.SpawnAll(specs); err != nil {
					b.Fatal(err)
				}
				r.Settle()
				solveAll := func() {
					var eps []cluster.Item
					for _, addr := range r.Addrs() {
						n := r.Node(addr)
						eps = append(eps, cluster.Item{
							Label: "solve " + addr,
							Nodes: []string{addr},
							Run:   func() (*core.SolveResult, error) { return n.Solve(core.SolveOptions{}) },
						})
					}
					if _, err := r.RunEpoch(eps); err != nil {
						b.Fatal(err)
					}
				}
				for epoch := 0; epoch < 2; epoch++ {
					solveAll()
					for j, addr := range r.Addrs() {
						if err := r.Node(addr).Insert("need", colog.StringVal(addr), colog.IntVal(int64(5+epoch+j))); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := r.StopNode(victim); err != nil {
					b.Fatal(err)
				}
				r.Settle() // in-flight decisions to the victim are lost
				start := time.Now()
				if _, err := r.RestartNode(victim); err != nil {
					b.Fatal(err)
				}
				restart += time.Since(start)
				hist := r.History()
				for _, st := range hist {
					rows += st.ResyncRows
					bytes += st.ResyncBytes
					logBytes += st.LogBytes
				}
				if err := r.Close(); err != nil {
					b.Fatal(err)
				}
			}
			n := float64(b.N)
			b.ReportMetric(float64(restart.Microseconds())/n, "restart-to-converged-us")
			b.ReportMetric(float64(rows)/n, "resync-rows")
			b.ReportMetric(float64(bytes)/n, "resync-bytes")
			b.ReportMetric(float64(logBytes)/n, "log-bytes")
		})
	}
}

// BenchmarkWALAppend measures the write-ahead log's append path on
// update-record-sized payloads, with and without per-record fsync — the
// per-transition durability overhead every visible state change pays under
// store=disk.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 64) // a typical update record
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, variant := range []struct {
		name  string
		fsync bool
	}{{"nosync", false}, {"fsync", true}} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			w, err := store.OpenWAL(filepath.Join(b.TempDir(), "wal.log"), variant.fsync)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLogReplayRestart measures a cold restart from the local log: a
// disk-backed node records a keyed churn workload, then each iteration
// rebuilds the node purely by replaying the write-ahead log — the
// restart-latency half of the recovery trade BenchmarkResync prices in
// resync rows.
func BenchmarkLogReplayRestart(b *testing.B) {
	src := `
r1 hot(V,H,C) <- vm(V,H,C), C>50.
r2 perHost(H,SUM<C>) <- hot(V,H,C).
`
	prog, err := colog.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	ares, err := analysis.Analyze(prog, nil)
	if err != nil {
		b.Fatal(err)
	}
	st, err := store.Open("disk", b.TempDir(), false)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	cfg := core.Config{Keys: map[string][]int{"vm": {0}}, Storage: st}
	node, err := core.NewNode("bench", ares, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		vm := colog.StringVal(fmt.Sprintf("vm%d", i%800))
		host := colog.StringVal(fmt.Sprintf("h%d", i%16))
		if err := node.Insert("vm", vm, host, colog.IntVal(int64(40+i%60))); err != nil {
			b.Fatal(err)
		}
	}
	records, logBytes := node.LogStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReplayNode("bench", ares, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records), "log-records")
	b.ReportMetric(float64(logBytes), "log-bytes")
}

// BenchmarkClusterScaling measures the epoch executor itself: eight nodes
// each solving an independent budget-capped COP (equal per-item cost by
// construction), one item per node, swept over pool sizes. ns/op is the
// epoch wall time — on a multi-core host it should drop near-linearly with
// workers until the item count is the limit, while results stay
// byte-identical (the equivalence suites pin that). The parallelism metric
// is (ground+solve CPU time)/(epoch wall): ~1 sequentially, approaching
// min(workers, items) on an idle multi-core host.
func BenchmarkClusterScaling(b *testing.B) {
	prog, err := colog.Parse(resyncBenchSrc)
	if err != nil {
		b.Fatal(err)
	}
	ares, err := analysis.Analyze(prog, nil)
	if err != nil {
		b.Fatal(err)
	}
	const nodes, items = 8, 10
	specs := make([]cluster.NodeSpec, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		addr := fmt.Sprintf("n%d", i)
		next := fmt.Sprintf("n%d", (i+1)%nodes)
		specs[i] = cluster.NodeSpec{
			Addr:    addr,
			Program: ares,
			Config: core.Config{
				SolverPropagate: true,
				SolverMaxNodes:  8000,
				Keys:            map[string][]int{"got": {0, 1, 2}},
			},
			Seed: func(n *core.Node) error {
				for d := 0; d < items; d++ {
					dn := fmt.Sprintf("d%d", d)
					if err := n.Insert("item", colog.StringVal(addr), colog.StringVal(dn)); err != nil {
						return err
					}
					if err := n.Insert("w", colog.StringVal(addr), colog.StringVal(dn), colog.IntVal(int64(i+d+1))); err != nil {
						return err
					}
				}
				if err := n.Insert("need", colog.StringVal(addr), colog.IntVal(2*items)); err != nil {
					return err
				}
				return n.Insert("link", colog.StringVal(addr), colog.StringVal(next))
			},
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("nodes=%d/workers=%d", nodes, workers), func(b *testing.B) {
			r := cluster.New(cluster.Options{Workers: workers, Latency: time.Millisecond})
			if err := r.SpawnAll(specs); err != nil {
				b.Fatal(err)
			}
			r.Settle()
			var epochItems []cluster.Item
			for _, addr := range r.Addrs() {
				n := r.Node(addr)
				epochItems = append(epochItems, cluster.Item{
					Label: "solve " + addr,
					Nodes: []string{addr},
					Run:   func() (*core.SolveResult, error) { return n.Solve(core.SolveOptions{}) },
				})
			}
			var last cluster.EpochStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := r.RunEpoch(epochItems)
				if err != nil {
					b.Fatal(err)
				}
				last = st
				r.Settle()
			}
			b.StopTimer()
			if last.ExecWall > 0 {
				b.ReportMetric((last.GroundWall+last.SolveWall).Seconds()/last.ExecWall.Seconds(), "parallelism")
			}
			b.ReportMetric(float64(last.SolverNodes), "search-nodes")
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkClusterACloudScaled balances a generated 12-data-center ACloud
// workload, per-DC COPs solved concurrently on the worker pool; the
// workers dimension measures the pool speedup on independent solves.
func BenchmarkClusterACloudScaled(b *testing.B) {
	p := acloud.ScaledParams(12)
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("dcs=12/workers=%d", workers), func(b *testing.B) {
			var res *acloud.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = acloud.RunCluster(p, acloud.ACloud, cluster.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanStdev, "cpu-stddev")
			b.ReportMetric(res.MeanMigrations, "migrations/interval")
		})
	}
}

// ------------------------------------------------------- Serving runtime

// BenchmarkServingChurn drives the continuous-serving runtime (PR 9) for
// each paper scenario: a seeded churn stream is offered through the
// admission queue and ticked under a node-count budget, exactly the
// cmd/serve loop. Reported metrics are the serving SLOs: sustained
// churn-events/sec and p50/p99 decision latency.
func BenchmarkServingChurn(b *testing.B) {
	builders := map[string]func(cfg serve.Config, seed int64) (*serve.Scenario, error){
		"acloud": func(cfg serve.Config, seed int64) (*serve.Scenario, error) {
			p := acloud.DefaultServingParams()
			p.Seed = seed
			return acloud.NewServing(p, cfg)
		},
		"followsun": func(cfg serve.Config, seed int64) (*serve.Scenario, error) {
			p := followsun.DefaultServingParams()
			p.Seed = seed
			return followsun.NewServing(p, cfg)
		},
		"wireless": func(cfg serve.Config, seed int64) (*serve.Scenario, error) {
			p := wireless.DefaultServingParams()
			p.Seed = seed
			return wireless.NewServing(p, cfg)
		},
	}
	for _, name := range []string{"acloud", "followsun", "wireless"} {
		build := builders[name]
		b.Run(name, func(b *testing.B) {
			const perIter = 200
			cfg := serve.Config{QueueCap: 512, BatchMax: 64}
			sc, err := build(cfg, 1)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			// Seed burst + warmup tick outside the timed region.
			for _, ev := range sc.Gen(rng, 20) {
				if err := sc.Server.Offer(ev); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := sc.Server.Drain(); err != nil {
				b.Fatal(err)
			}
			events := 0
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, ev := range sc.Gen(rng, perIter) {
					events++
					for {
						err := sc.Server.Offer(ev)
						if err == nil {
							break
						}
						if err != serve.ErrQueueFull {
							b.Fatal(err)
						}
						if _, err := sc.Server.TickOnce(); err != nil {
							b.Fatal(err)
						}
					}
					if sc.Server.QueueDepth() >= cfg.BatchMax {
						if _, err := sc.Server.TickOnce(); err != nil {
							b.Fatal(err)
						}
					}
				}
				if _, err := sc.Server.Drain(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			wall := time.Since(start)
			st := sc.Server.StatsSnapshot()
			b.ReportMetric(float64(events)/wall.Seconds(), "churn-events/sec")
			b.ReportMetric(float64(st.LatencyPercentile(0.50).Microseconds())/1000, "p50-ms")
			b.ReportMetric(float64(st.LatencyPercentile(0.99).Microseconds())/1000, "p99-ms")
			b.ReportMetric(float64(st.DegradedTicks), "degraded-ticks")
		})
	}
}
