// Command benchjson converts `go test -bench` text output into a JSON
// summary, so the repository's perf trajectory is machine-readable:
//
//	go test -run='^$' -bench=... -benchtime=10x -benchmem . | benchjson -out BENCH_2026-07-29.json
//
// `make bench-json` wires this up for the paper-figure benchmark set. Each
// benchmark line becomes one record with iterations, ns/op, B/op, allocs/op,
// and any custom metrics reported through b.ReportMetric.
//
// The diff subcommand compares two summaries and flags ns/op regressions
// beyond a threshold (default 15%), for eyeballing a fresh run against the
// committed baseline:
//
//	benchjson diff BENCH_2026-07-29.json BENCH_2026-08-08.json
//	benchjson diff -threshold 10 -fail-on-regress old.json new.json
//
// By default diff is informational (exit 0 even with regressions — CI runs
// it as a non-blocking step, since single-run benchmarks are noisy);
// -fail-on-regress exits 1 when any benchmark crosses the threshold.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the file layout written by -out.
type Summary struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

// parseBench reads `go test -bench` output and collects benchmark records
// plus the goos/goarch/cpu header lines.
func parseBench(r io.Reader) (*Summary, error) {
	sum := &Summary{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			sum.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			sum.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			sum.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX --- FAIL"
		}
		rec := Record{Name: fields[0], Iterations: iters}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				rec.NsPerOp = val
			case "B/op":
				rec.BytesPerOp = val
			case "allocs/op":
				rec.AllocsPerOp = val
			default:
				if rec.Metrics == nil {
					rec.Metrics = map[string]float64{}
				}
				rec.Metrics[unit] = val
			}
		}
		sum.Benchmarks = append(sum.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sum, nil
}

// Diff is one benchmark's ns/op comparison between two summaries.
type Diff struct {
	Name     string
	OldNs    float64
	NewNs    float64
	DeltaPct float64 // (new-old)/old * 100; 0 when old is 0
}

// diffSummaries pairs benchmarks by name and computes their ns/op deltas,
// in the new summary's order. Benchmarks present in only one summary are
// returned separately.
func diffSummaries(oldSum, newSum *Summary) (diffs []Diff, onlyOld, onlyNew []string) {
	oldNs := map[string]float64{}
	for _, r := range oldSum.Benchmarks {
		oldNs[r.Name] = r.NsPerOp
	}
	seen := map[string]bool{}
	for _, r := range newSum.Benchmarks {
		seen[r.Name] = true
		prev, ok := oldNs[r.Name]
		if !ok {
			onlyNew = append(onlyNew, r.Name)
			continue
		}
		d := Diff{Name: r.Name, OldNs: prev, NewNs: r.NsPerOp}
		if prev > 0 {
			d.DeltaPct = (r.NsPerOp - prev) / prev * 100
		}
		diffs = append(diffs, d)
	}
	for _, r := range oldSum.Benchmarks {
		if !seen[r.Name] {
			onlyOld = append(onlyOld, r.Name)
		}
	}
	return diffs, onlyOld, onlyNew
}

func readSummary(path string) (*Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sum := &Summary{}
	if err := json.Unmarshal(data, sum); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sum, nil
}

// runDiff implements the diff subcommand and returns the process exit code.
func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 15,
		"flag benchmarks whose ns/op grew by more than this percentage")
	failOnRegress := fs.Bool("fail-on-regress", false,
		"exit 1 when any benchmark crosses the threshold (default: informational)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchjson diff [flags] old.json new.json\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldSum, err := readSummary(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	newSum, err := readSummary(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	diffs, onlyOld, onlyNew := diffSummaries(oldSum, newSum)
	regressions := 0
	fmt.Fprintf(stdout, "%-64s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range diffs {
		flag := ""
		if d.DeltaPct > *threshold {
			flag = "  REGRESSION"
			regressions++
		} else if d.DeltaPct < -*threshold {
			flag = "  improved"
		}
		fmt.Fprintf(stdout, "%-64s %14.0f %14.0f %+7.1f%%%s\n", d.Name, d.OldNs, d.NewNs, d.DeltaPct, flag)
	}
	for _, name := range onlyOld {
		fmt.Fprintf(stdout, "%-64s only in %s\n", name, fs.Arg(0))
	}
	for _, name := range onlyNew {
		fmt.Fprintf(stdout, "%-64s only in %s\n", name, fs.Arg(1))
	}
	fmt.Fprintf(stdout, "%d compared, %d over the +%.0f%% threshold\n", len(diffs), regressions, *threshold)
	if regressions > 0 && *failOnRegress {
		return 1
	}
	return 0
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:], os.Stdout, os.Stderr))
	}
	out := flag.String("out", "", "write the JSON summary to this file (default: stdout)")
	flag.Parse()
	sum, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(sum.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(sum.Benchmarks))
}
