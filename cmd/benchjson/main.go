// Command benchjson converts `go test -bench` text output into a JSON
// summary, so the repository's perf trajectory is machine-readable:
//
//	go test -run='^$' -bench=... -benchtime=10x -benchmem . | benchjson -out BENCH_2026-07-29.json
//
// `make bench-json` wires this up for the paper-figure benchmark set. Each
// benchmark line becomes one record with iterations, ns/op, B/op, allocs/op,
// and any custom metrics reported through b.ReportMetric.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the file layout written by -out.
type Summary struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

// parseBench reads `go test -bench` output and collects benchmark records
// plus the goos/goarch/cpu header lines.
func parseBench(r io.Reader) (*Summary, error) {
	sum := &Summary{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			sum.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			sum.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			sum.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX --- FAIL"
		}
		rec := Record{Name: fields[0], Iterations: iters}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				rec.NsPerOp = val
			case "B/op":
				rec.BytesPerOp = val
			case "allocs/op":
				rec.AllocsPerOp = val
			default:
				if rec.Metrics == nil {
					rec.Metrics = map[string]float64{}
				}
				rec.Metrics[unit] = val
			}
		}
		sum.Benchmarks = append(sum.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sum, nil
}

func main() {
	out := flag.String("out", "", "write the JSON summary to this file (default: stdout)")
	flag.Parse()
	sum, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(sum.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(sum.Benchmarks))
}
