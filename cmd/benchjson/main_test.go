package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSolverACloudModel 	      10	   6631982 ns/op	 1632992 B/op	   39279 allocs/op
BenchmarkFigure2ACloudStdev/Default-8 	       5	 123456 ns/op	        14.20 cpu-stddev	       100.0 pct-of-default
BenchmarkBroken --- FAIL
PASS
ok  	repro	0.147s
`

func TestParseBench(t *testing.T) {
	sum, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if sum.GOOS != "linux" || sum.GOARCH != "amd64" || !strings.Contains(sum.CPU, "Xeon") {
		t.Fatalf("header = %+v", sum)
	}
	if len(sum.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(sum.Benchmarks))
	}
	b0 := sum.Benchmarks[0]
	if b0.Name != "BenchmarkSolverACloudModel" || b0.Iterations != 10 ||
		b0.NsPerOp != 6631982 || b0.BytesPerOp != 1632992 || b0.AllocsPerOp != 39279 {
		t.Fatalf("record 0 = %+v", b0)
	}
	b1 := sum.Benchmarks[1]
	if b1.Name != "BenchmarkFigure2ACloudStdev/Default-8" || b1.NsPerOp != 123456 {
		t.Fatalf("record 1 = %+v", b1)
	}
	if b1.Metrics["cpu-stddev"] != 14.20 || b1.Metrics["pct-of-default"] != 100.0 {
		t.Fatalf("metrics = %v", b1.Metrics)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	sum, err := parseBench(strings.NewReader("PASS\nok x 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 0 {
		t.Fatalf("expected no benchmarks, got %d", len(sum.Benchmarks))
	}
}

func TestDiffSummaries(t *testing.T) {
	oldSum := &Summary{Benchmarks: []Record{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 2000},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}}
	newSum := &Summary{Benchmarks: []Record{
		{Name: "BenchmarkA", NsPerOp: 1200}, // +20%: a regression at 15%
		{Name: "BenchmarkB", NsPerOp: 1500}, // -25%: an improvement
		{Name: "BenchmarkNew", NsPerOp: 10},
	}}
	diffs, onlyOld, onlyNew := diffSummaries(oldSum, newSum)
	if len(diffs) != 2 {
		t.Fatalf("compared %d benchmarks, want 2", len(diffs))
	}
	if diffs[0].Name != "BenchmarkA" || diffs[0].DeltaPct != 20 {
		t.Fatalf("diff 0 = %+v", diffs[0])
	}
	if diffs[1].Name != "BenchmarkB" || diffs[1].DeltaPct != -25 {
		t.Fatalf("diff 1 = %+v", diffs[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNew" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	oldSum := &Summary{Benchmarks: []Record{{Name: "BenchmarkZ", NsPerOp: 0}}}
	newSum := &Summary{Benchmarks: []Record{{Name: "BenchmarkZ", NsPerOp: 100}}}
	diffs, _, _ := diffSummaries(oldSum, newSum)
	if len(diffs) != 1 || diffs[0].DeltaPct != 0 {
		t.Fatalf("zero-baseline diff = %+v", diffs)
	}
}

func TestRunDiffExitCodes(t *testing.T) {
	writeSummary := func(t *testing.T, dir, name string, recs []Record) string {
		t.Helper()
		path := dir + "/" + name
		data, err := json.Marshal(&Summary{Benchmarks: recs})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	dir := t.TempDir()
	oldPath := writeSummary(t, dir, "old.json", []Record{{Name: "BenchmarkA", NsPerOp: 1000}})
	newPath := writeSummary(t, dir, "new.json", []Record{{Name: "BenchmarkA", NsPerOp: 2000}})

	var out, errOut strings.Builder
	if code := runDiff([]string{oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("informational diff exit = %d, want 0\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("2x slowdown not flagged:\n%s", out.String())
	}

	out.Reset()
	if code := runDiff([]string{"-fail-on-regress", oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatalf("-fail-on-regress exit = %d, want 1", code)
	}

	out.Reset()
	// A 100% threshold tolerates the doubling.
	if code := runDiff([]string{"-fail-on-regress", "-threshold", "150", oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("under-threshold diff exit = %d, want 0\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("under-threshold run still flagged:\n%s", out.String())
	}

	if code := runDiff([]string{oldPath, dir + "/missing.json"}, &out, &errOut); code != 1 {
		t.Fatalf("missing file exit = %d, want 1", code)
	}
}
