package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSolverACloudModel 	      10	   6631982 ns/op	 1632992 B/op	   39279 allocs/op
BenchmarkFigure2ACloudStdev/Default-8 	       5	 123456 ns/op	        14.20 cpu-stddev	       100.0 pct-of-default
BenchmarkBroken --- FAIL
PASS
ok  	repro	0.147s
`

func TestParseBench(t *testing.T) {
	sum, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if sum.GOOS != "linux" || sum.GOARCH != "amd64" || !strings.Contains(sum.CPU, "Xeon") {
		t.Fatalf("header = %+v", sum)
	}
	if len(sum.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(sum.Benchmarks))
	}
	b0 := sum.Benchmarks[0]
	if b0.Name != "BenchmarkSolverACloudModel" || b0.Iterations != 10 ||
		b0.NsPerOp != 6631982 || b0.BytesPerOp != 1632992 || b0.AllocsPerOp != 39279 {
		t.Fatalf("record 0 = %+v", b0)
	}
	b1 := sum.Benchmarks[1]
	if b1.Name != "BenchmarkFigure2ACloudStdev/Default-8" || b1.NsPerOp != 123456 {
		t.Fatalf("record 1 = %+v", b1)
	}
	if b1.Metrics["cpu-stddev"] != 14.20 || b1.Metrics["pct-of-default"] != 100.0 {
		t.Fatalf("metrics = %v", b1.Metrics)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	sum, err := parseBench(strings.NewReader("PASS\nok x 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 0 {
		t.Fatalf("expected no benchmarks, got %d", len(sum.Benchmarks))
	}
}
