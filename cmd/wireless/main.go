// Command wireless runs the channel-selection experiments (section 6.4):
// Figure 6 (aggregate throughput vs offered rate for the five protocols on
// the 30-node grid) and Figure 7 (policy variants of the cross-layer
// protocol: restricted channels and the one-hop interference model).
//
//	wireless            # Figure 6
//	wireless -fig7      # Figure 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/profiling"
	"repro/internal/wireless"
)

func main() {
	var (
		fig7    = flag.Bool("fig7", false, "run the Figure 7 policy variants instead of Figure 6")
		seed    = flag.Int64("seed", 7, "flow/topology seed")
		nodes   = flag.Int64("solver-max-nodes", 20000, "per-COP search node budget")
		profile = flag.String("profile", "", "write CPU/heap profiles to <prefix>.cpu.pprof / <prefix>.heap.pprof")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wireless: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "wireless: %v\n", err)
		}
	}()

	p := wireless.DefaultParams()
	p.Seed = *seed
	p.SolverMaxNodes = *nodes

	if *fig7 {
		runFig7(p)
		return
	}

	protocols := []wireless.Protocol{
		wireless.CrossLayer, wireless.Distributed, wireless.Centralized,
		wireless.IdenticalCh, wireless.OneInterface,
	}
	results := make([]*wireless.Result, len(protocols))
	for i, proto := range protocols {
		start := time.Now()
		res, err := wireless.Run(p, proto)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wireless: %s: %v\n", proto, err)
			os.Exit(1)
		}
		results[i] = res
		fmt.Fprintf(os.Stderr, "ran %-13s in %v (interference pairs: %d)\n",
			proto, time.Since(start).Round(time.Millisecond), res.Interference)
	}

	fmt.Println("# Figure 6: aggregate throughput, 30-node grid")
	fmt.Printf("%-14s", "offered(Mbps)")
	for _, r := range results {
		fmt.Printf(" %13s", r.Protocol)
	}
	fmt.Println()
	for i := range results[0].OfferedMbps {
		fmt.Printf("%-14.1f", results[0].OfferedMbps[i])
		for _, r := range results {
			fmt.Printf(" %13.2f", r.ThroughputMbps[i])
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("# Overheads")
	for _, r := range results {
		fmt.Printf("%-13s convergence %8s  per-node %6.2f KB/s\n",
			r.Protocol, r.Convergence.Round(time.Millisecond), r.PerNodeKBps)
	}
}

func runFig7(p wireless.Params) {
	type variant struct {
		name string
		mut  func(*wireless.Params)
	}
	// The paper's variants stack: "1-hop Interference" applies the one-hop
	// cost model on top of the restricted channel set (section 6.4).
	variants := []variant{
		{"2-hop Interference", func(*wireless.Params) {}},
		{"Restricted Channels", func(q *wireless.Params) { q.RestrictedChannels = true }},
		{"1-hop Interference", func(q *wireless.Params) {
			q.RestrictedChannels = true
			q.TwoHopCost = false
		}},
	}
	var results []*wireless.Result
	for _, v := range variants {
		q := p
		v.mut(&q)
		res, err := wireless.Run(q, wireless.CrossLayer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wireless: %s: %v\n", v.name, err)
			os.Exit(1)
		}
		results = append(results, res)
	}
	fmt.Println("# Figure 7: aggregate throughput under policy variants (Cross-layer)")
	fmt.Printf("%-14s", "offered(Mbps)")
	for i := range variants {
		fmt.Printf(" %20s", variants[i].name)
	}
	fmt.Println()
	for i := range results[0].OfferedMbps {
		fmt.Printf("%-14.1f", results[0].OfferedMbps[i])
		for _, r := range results {
			fmt.Printf(" %20.2f", r.ThroughputMbps[i])
		}
		fmt.Println()
	}
	last := len(results[0].ThroughputMbps) - 1
	base := results[0].ThroughputMbps[last]
	fmt.Println()
	for i, v := range variants {
		th := results[i].ThroughputMbps[last]
		ref, refName := base, "2-hop"
		if i == 2 {
			ref, refName = results[1].ThroughputMbps[last], "Restricted"
		}
		fmt.Printf("%-22s peak %6.2f Mbps (%+.1f%% vs %s)\n", v.name, th, 100*(th-ref)/ref, refName)
	}
}
