// Command serve is the continuous-serving load driver: it generates a
// churn trace for one of the three paper scenarios (or replays a recorded
// one), offers it to the serving runtime at a target rate, and reports
// sustained throughput and decision-latency percentiles.
//
//	serve -scenario acloud -events 5000 -rate 2000
//	serve -scenario all -tick-budget 5ms
//	serve -scenario wireless -trace-out wireless.churn
//
// The trace file is a concatenation of framed churn events (the varint
// wire codec of docs/serving.md); -trace-in replays such a file instead of
// generating churn, and -corpus-out samples the generated frames into a Go
// fuzz corpus directory (the committed FuzzDecodeChurnEvent corpus was
// produced this way).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/acloud"
	"repro/internal/followsun"
	"repro/internal/serve"
	"repro/internal/wireless"
)

// cliOptions holds every serve flag; registerFlags wires them onto a
// FlagSet so tests (and docscheck) can exercise the flag surface without
// running main.
type cliOptions struct {
	scenario   *string
	events     *int
	rate       *float64
	queueCap   *int
	batchMax   *int
	tickBudget *time.Duration
	seed       *int64
	traceOut   *string
	traceIn    *string
	corpusOut  *string
	jsonOut    *bool
}

func registerFlags(fs *flag.FlagSet) *cliOptions {
	return &cliOptions{
		scenario: fs.String("scenario", "all", "workload: acloud, followsun, wireless, or all"),
		events:   fs.Int("events", 5000, "churn events to generate and offer"),
		rate:     fs.Float64("rate", 0, "target offered churn rate in events/sec (0 = unthrottled)"),
		queueCap: fs.Int("queue-cap", 512, "admission queue capacity (backpressure beyond it)"),
		batchMax: fs.Int("batch-max", 64, "max churn events admitted per tick"),
		tickBudget: fs.Duration("tick-budget", 0,
			"per-tick solve deadline; past it the tick publishes the best\nincumbent with the degraded flag (0 = node-budget only)"),
		seed:      fs.Int64("seed", 1, "churn generator seed"),
		traceOut:  fs.String("trace-out", "", "write the generated churn trace to this file (framed events)"),
		traceIn:   fs.String("trace-in", "", "replay a recorded churn trace instead of generating one"),
		corpusOut: fs.String("corpus-out", "", "sample generated frames into this Go fuzz corpus directory"),
		jsonOut:   fs.Bool("json", false, "print the per-scenario reports as JSON"),
	}
}

// report is one scenario's serving-run outcome.
type report struct {
	Scenario       string        `json:"scenario"`
	Events         int           `json:"events"`
	Admitted       int           `json:"admitted"`
	Coalesced      int           `json:"coalesced"`
	Ticks          int           `json:"ticks"`
	DegradedTicks  int           `json:"degraded_ticks"`
	Wall           time.Duration `json:"wall_ns"`
	EventsPerSec   float64       `json:"events_per_sec"`
	P50            time.Duration `json:"p50_ns"`
	P99            time.Duration `json:"p99_ns"`
	FinalObjective float64       `json:"final_objective"`
}

func buildScenario(name string, o *cliOptions) (*serve.Scenario, error) {
	cfg := serve.Config{
		QueueCap:   *o.queueCap,
		BatchMax:   *o.batchMax,
		TickBudget: *o.tickBudget,
	}
	switch name {
	case "acloud":
		p := acloud.DefaultServingParams()
		p.Seed = *o.seed
		return acloud.NewServing(p, cfg)
	case "followsun":
		p := followsun.DefaultServingParams()
		p.Seed = *o.seed
		return followsun.NewServing(p, cfg)
	case "wireless":
		p := wireless.DefaultServingParams()
		p.Seed = *o.seed
		return wireless.NewServing(p, cfg)
	}
	return nil, fmt.Errorf("unknown scenario %q (want acloud, followsun, wireless, or all)", name)
}

// writeCorpus samples frames into Go fuzz corpus files: individual frames
// plus one multi-frame chunk, named after the scenario.
func writeCorpus(dir, scenario string, events []serve.Event) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeEntry := func(name string, data []byte) error {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		return os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644)
	}
	max := 6
	if len(events) < max {
		max = len(events)
	}
	for i := 0; i < max; i++ {
		frame, err := serve.EncodeTrace(events[i : i+1])
		if err != nil {
			return err
		}
		if err := writeEntry(fmt.Sprintf("%s-frame-%d", scenario, i), frame); err != nil {
			return err
		}
	}
	chunkLen := 16
	if len(events) < chunkLen {
		chunkLen = len(events)
	}
	chunk, err := serve.EncodeTrace(events[:chunkLen])
	if err != nil {
		return err
	}
	return writeEntry(scenario+"-chunk", chunk)
}

func runScenario(name string, o *cliOptions) (*report, error) {
	sc, err := buildScenario(name, o)
	if err != nil {
		return nil, err
	}
	var events []serve.Event
	if *o.traceIn != "" {
		raw, err := os.ReadFile(*o.traceIn)
		if err != nil {
			return nil, err
		}
		if events, err = serve.DecodeTrace(raw); err != nil {
			return nil, err
		}
	} else {
		rng := rand.New(rand.NewSource(*o.seed))
		events = sc.Gen(rng, *o.events)
	}
	if *o.traceOut != "" {
		path := *o.traceOut
		if *o.scenario == "all" {
			path += "." + name
		}
		raw, err := serve.EncodeTrace(events)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return nil, err
		}
	}
	if *o.corpusOut != "" {
		if err := writeCorpus(*o.corpusOut, name, events); err != nil {
			return nil, err
		}
	}

	srv := sc.Server
	var interval time.Duration
	if *o.rate > 0 {
		interval = time.Duration(float64(time.Second) / *o.rate)
	}
	start := time.Now()
	for i, ev := range events {
		if interval > 0 {
			if next := start.Add(time.Duration(i) * interval); time.Now().Before(next) {
				time.Sleep(time.Until(next))
			}
		}
		for {
			err := srv.Offer(ev)
			if err == nil {
				break
			}
			if err != serve.ErrQueueFull {
				return nil, err
			}
			if _, err := srv.TickOnce(); err != nil {
				return nil, err
			}
		}
		if srv.QueueDepth() >= *o.batchMax {
			if _, err := srv.TickOnce(); err != nil {
				return nil, err
			}
		}
	}
	last, err := srv.Drain()
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	st := srv.StatsSnapshot()
	rep := &report{
		Scenario:      name,
		Events:        len(events),
		Admitted:      st.EventsAdmitted,
		Coalesced:     st.EventsCoalesced,
		Ticks:         st.Ticks,
		DegradedTicks: st.DegradedTicks,
		Wall:          wall,
		EventsPerSec:  float64(len(events)) / wall.Seconds(),
		P50:           st.LatencyPercentile(0.50),
		P99:           st.LatencyPercentile(0.99),
	}
	if last != nil {
		rep.FinalObjective = last.Objective
	}
	return rep, nil
}

func main() {
	o := registerFlags(flag.CommandLine)
	flag.Parse()

	names := []string{"acloud", "followsun", "wireless"}
	if *o.scenario != "all" {
		names = []string{*o.scenario}
	}
	var reports []*report
	for _, name := range names {
		rep, err := runScenario(name, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %s: %v\n", name, err)
			os.Exit(1)
		}
		reports = append(reports, rep)
	}
	if *o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, r := range reports {
		fmt.Printf("%-10s %6d events (%d admitted, %d coalesced) in %8.3fs  %9.0f ev/s  ticks %4d (%d degraded)  p50 %8s  p99 %8s  obj %.3f\n",
			r.Scenario, r.Events, r.Admitted, r.Coalesced, r.Wall.Seconds(), r.EventsPerSec,
			r.Ticks, r.DegradedTicks, r.P50, r.P99, r.FinalObjective)
	}
}
