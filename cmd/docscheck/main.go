// Command docscheck is the documentation gate run by `make docs-check` and
// CI: it fails on broken relative links in README.md and docs/*.md, and on
// example Go files that are not gofmt-formatted.
package main

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target); images share the
// syntax and are covered too.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string

	docs := []string{filepath.Join(root, "README.md")}
	globbed, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err == nil {
		docs = append(docs, globbed...)
	}
	checked := 0
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", doc, err))
			continue
		}
		checked++
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // same-page anchor
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken relative link %q", doc, m[1]))
			}
		}
	}
	if checked == 0 {
		problems = append(problems, "no documentation files found (wrong working directory?)")
	}

	// Example Go programs must be gofmt-clean: they are quoted by the docs
	// and copied by users.
	err = filepath.Walk(filepath.Join(root, "examples"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(path) != ".go" {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		formatted, err := format.Source(src)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		if string(formatted) != string(src) {
			problems = append(problems, fmt.Sprintf("%s: not gofmt-formatted", path))
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("examples walk: %v", err))
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d docs, links and example formatting OK\n", checked)
}
