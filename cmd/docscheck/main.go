// Command docscheck is the documentation gate run by `make docs-check` and
// CI: it fails on broken relative links in README.md and docs/*.md, on
// example Go files that are not gofmt-formatted, and on flag names
// mentioned in the docs that the cologne binary does not register — so
// docs/tuning.md cannot drift from the actual CLI surface.
package main

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target); images share the
// syntax and are covered too.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// flagDefRe / flagVarRe extract registered flag names from the cologne
// source (registerFlags is the single registration point, pinned by the
// cologne flag tests).
var (
	flagDefRe = regexp.MustCompile(`fs\.(?:Bool|String|Int64|Int|Float64|Duration)\(\s*"([a-z][a-z0-9-]*)"`)
	flagVarRe = regexp.MustCompile(`fs\.Var\([^,]+,\s*"([a-z][a-z0-9-]*)"`)
	// inlineFlagRe matches a backticked bare flag like `-solver-max-time`.
	inlineFlagRe = regexp.MustCompile("`(-[a-z][a-z0-9-]*)`")
	// fenceFlagRe matches flag tokens on code-fence lines invoking cologne.
	fenceFlagRe = regexp.MustCompile(`(?:^|\s)-([a-z][a-z0-9-]*)`)
)

// cologneFlagNames parses the flag names cologne registers from its source.
func cologneFlagNames(src string) map[string]bool {
	names := map[string]bool{}
	for _, m := range flagDefRe.FindAllStringSubmatch(src, -1) {
		names[m[1]] = true
	}
	for _, m := range flagVarRe.FindAllStringSubmatch(src, -1) {
		names[m[1]] = true
	}
	return names
}

// docFlagRefs collects every cologne flag a markdown document mentions:
// backticked bare flags anywhere, and -tokens on code-fence lines that
// invoke cologne.
func docFlagRefs(md string) []string {
	var refs []string
	for _, m := range inlineFlagRe.FindAllStringSubmatch(md, -1) {
		refs = append(refs, strings.TrimPrefix(m[1], "-"))
	}
	inFence := false
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence || !strings.Contains(line, "cologne ") {
			continue
		}
		for _, m := range fenceFlagRe.FindAllStringSubmatch(line, -1) {
			refs = append(refs, m[1])
		}
	}
	return refs
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string

	// Flag drift: every flag the docs mention must exist in cologne's
	// registered flag set. Skipped when the cologne source is absent (test
	// fixtures, partial checkouts).
	var knownFlags map[string]bool
	if src, err := os.ReadFile(filepath.Join(root, "cmd", "cologne", "main.go")); err == nil {
		knownFlags = cologneFlagNames(string(src))
		if len(knownFlags) == 0 {
			problems = append(problems, "cmd/cologne/main.go: no registered flags found (parser drift?)")
		}
	}

	docs := []string{filepath.Join(root, "README.md")}
	globbed, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err == nil {
		docs = append(docs, globbed...)
	}
	checked := 0
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", doc, err))
			continue
		}
		checked++
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // same-page anchor
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken relative link %q", doc, m[1]))
			}
		}
		if knownFlags != nil {
			for _, ref := range docFlagRefs(string(data)) {
				if !knownFlags[ref] {
					problems = append(problems, fmt.Sprintf("%s: stale cologne flag -%s (not in the binary's flag set)", doc, ref))
				}
			}
		}
	}
	if checked == 0 {
		problems = append(problems, "no documentation files found (wrong working directory?)")
	}

	// Example Go programs must be gofmt-clean: they are quoted by the docs
	// and copied by users.
	err = filepath.Walk(filepath.Join(root, "examples"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(path) != ".go" {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		formatted, err := format.Source(src)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		if string(formatted) != string(src) {
			problems = append(problems, fmt.Sprintf("%s: not gofmt-formatted", path))
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("examples walk: %v", err))
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d docs, links, flags, and example formatting OK\n", checked)
}
