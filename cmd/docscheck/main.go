// Command docscheck is the documentation gate run by `make docs-check` and
// CI: it fails on broken relative links and broken #section anchors in
// README.md and docs/*.md, on example Go files that are not
// gofmt-formatted, and on flag names mentioned in the docs that the cologne
// binary does not register — so docs/tuning.md cannot drift from the actual
// CLI surface.
package main

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRe matches inline markdown links [text](target); images share the
// syntax and are covered too.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// flagDefRe / flagVarRe extract registered flag names from the cologne
// source (registerFlags is the single registration point, pinned by the
// cologne flag tests).
var (
	flagDefRe = regexp.MustCompile(`fs\.(?:Bool|String|Int64|Int|Float64|Duration)\(\s*"([a-z][a-z0-9-]*)"`)
	flagVarRe = regexp.MustCompile(`fs\.Var\([^,]+,\s*"([a-z][a-z0-9-]*)"`)
	// inlineFlagRe matches a backticked bare flag like `-solver-max-time`.
	inlineFlagRe = regexp.MustCompile("`(-[a-z][a-z0-9-]*)`")
	// fenceFlagRe matches flag tokens on code-fence lines invoking cologne.
	fenceFlagRe = regexp.MustCompile(`(?:^|\s)-([a-z][a-z0-9-]*)`)
)

// headingRe matches an ATX markdown heading; the capture is the title text.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// inlineLinkRe strips [text](target) down to text inside heading titles.
var inlineLinkRe = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`)

// slugify converts a heading title to its GitHub anchor id: lowercase,
// formatting markers stripped, punctuation removed, spaces to hyphens.
func slugify(title string) string {
	title = inlineLinkRe.ReplaceAllString(title, "$1")
	title = strings.ToLower(strings.TrimSpace(title))
	var b strings.Builder
	for _, r := range title {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		}
	}
	return b.String()
}

// docAnchors returns the set of anchor ids a markdown document defines:
// one per heading outside code fences, with GitHub's -1, -2 suffixes on
// duplicate titles.
func docAnchors(md string) map[string]bool {
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		if anchors[slug] {
			for i := 1; ; i++ {
				cand := fmt.Sprintf("%s-%d", slug, i)
				if !anchors[cand] {
					slug = cand
					break
				}
			}
		}
		anchors[slug] = true
	}
	return anchors
}

// cologneFlagNames parses the flag names cologne registers from its source.
func cologneFlagNames(src string) map[string]bool {
	names := map[string]bool{}
	for _, m := range flagDefRe.FindAllStringSubmatch(src, -1) {
		names[m[1]] = true
	}
	for _, m := range flagVarRe.FindAllStringSubmatch(src, -1) {
		names[m[1]] = true
	}
	return names
}

// docFlagRefs collects every binary flag a markdown document mentions:
// backticked bare flags anywhere, and -tokens on code-fence lines that
// invoke cologne or the serve load driver.
func docFlagRefs(md string) []string {
	var refs []string
	for _, m := range inlineFlagRe.FindAllStringSubmatch(md, -1) {
		refs = append(refs, strings.TrimPrefix(m[1], "-"))
	}
	inFence := false
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence || !(strings.Contains(line, "cologne ") || strings.Contains(line, "serve ") || strings.Contains(line, "loadgen ")) {
			continue
		}
		for _, m := range fenceFlagRe.FindAllStringSubmatch(line, -1) {
			refs = append(refs, m[1])
		}
	}
	return refs
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string

	// Flag drift: every flag the docs mention must exist in the union of
	// the registered flag sets of the flag-bearing binaries (cologne and
	// the serve load driver). Skipped when both sources are absent (test
	// fixtures, partial checkouts).
	var knownFlags map[string]bool
	for _, binary := range []string{"cologne", "serve", "loadgen"} {
		src, err := os.ReadFile(filepath.Join(root, "cmd", binary, "main.go"))
		if err != nil {
			continue
		}
		names := cologneFlagNames(string(src))
		if len(names) == 0 {
			problems = append(problems, fmt.Sprintf("cmd/%s/main.go: no registered flags found (parser drift?)", binary))
			continue
		}
		if knownFlags == nil {
			knownFlags = map[string]bool{}
		}
		for name := range names {
			knownFlags[name] = true
		}
	}

	docs := []string{filepath.Join(root, "README.md")}
	globbed, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err == nil {
		docs = append(docs, globbed...)
	}
	// anchorsOf lazily loads and caches the anchor set of any markdown file
	// a link resolves to (including files outside the checked doc list).
	anchorCache := map[string]map[string]bool{}
	anchorsOf := func(path string) (map[string]bool, error) {
		if a, ok := anchorCache[path]; ok {
			return a, nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		a := docAnchors(string(data))
		anchorCache[path] = a
		return a, nil
	}
	checked := 0
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", doc, err))
			continue
		}
		checked++
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target, frag := m[1], ""
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target, frag = target[:i], target[i+1:]
			}
			resolved := doc // same-page anchor
			if target != "" {
				resolved = filepath.Join(filepath.Dir(doc), target)
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems, fmt.Sprintf("%s: broken relative link %q", doc, m[1]))
					continue
				}
			}
			// Anchor fragments are verified against the target's headings
			// (GitHub slug rules); only markdown targets define anchors.
			if frag == "" || !strings.HasSuffix(resolved, ".md") {
				continue
			}
			anchors, err := anchorsOf(resolved)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: anchor target %q: %v", doc, m[1], err))
				continue
			}
			if !anchors[strings.ToLower(frag)] {
				problems = append(problems, fmt.Sprintf("%s: broken anchor %q (no heading slug %q in %s)", doc, m[1], strings.ToLower(frag), resolved))
			}
		}
		if knownFlags != nil {
			for _, ref := range docFlagRefs(string(data)) {
				if !knownFlags[ref] {
					problems = append(problems, fmt.Sprintf("%s: stale cologne flag -%s (not in the binary's flag set)", doc, ref))
				}
			}
		}
	}
	if checked == 0 {
		problems = append(problems, "no documentation files found (wrong working directory?)")
	}

	// Example Go programs must be gofmt-clean: they are quoted by the docs
	// and copied by users.
	err = filepath.Walk(filepath.Join(root, "examples"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(path) != ".go" {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		formatted, err := format.Source(src)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		if string(formatted) != string(src) {
			problems = append(problems, fmt.Sprintf("%s: not gofmt-formatted", path))
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("examples walk: %v", err))
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d docs, links, flags, and example formatting OK\n", checked)
}
