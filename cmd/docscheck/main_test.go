package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLinkRegexp(t *testing.T) {
	md := `See [arch](docs/architecture.md) and [ext](https://example.com) plus ![img](a.png#frag).`
	got := linkRe.FindAllStringSubmatch(md, -1)
	want := []string{"docs/architecture.md", "https://example.com", "a.png#frag"}
	if len(got) != len(want) {
		t.Fatalf("found %d links, want %d", len(got), len(want))
	}
	for i, m := range got {
		if m[1] != want[i] {
			t.Fatalf("link %d = %q, want %q", i, m[1], want[i])
		}
	}
}

// TestSlugify pins the GitHub anchor-id rules the checker implements.
func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Plan ordering":                  "plan-ordering",
		"Why `snapshotStable`?":          "why-snapshotstable",
		"A.3 Channel selection":          "a3-channel-selection",
		"Push-down rules (and barriers)": "push-down-rules-and-barriers",
		"See [the gate](ci.yml) here":    "see-the-gate-here",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Fatalf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestDocAnchors collects heading anchors, skipping code fences and
// suffixing duplicate titles like GitHub does.
func TestDocAnchors(t *testing.T) {
	md := "# Title\n" +
		"## Setup\n" +
		"```\n" +
		"# not a heading\n" +
		"```\n" +
		"## Setup\n" +
		"### Edge cases ###\n"
	got := docAnchors(md)
	for _, want := range []string{"title", "setup", "setup-1", "edge-cases"} {
		if !got[want] {
			t.Fatalf("anchor %q missing (got %v)", want, got)
		}
	}
	if got["not-a-heading"] {
		t.Fatalf("fenced pseudo-heading collected: %v", got)
	}
}

// TestCologneFlagNames parses flag registrations from realistic source.
func TestCologneFlagNames(t *testing.T) {
	src := `
		solve: fs.Bool("solve", false, "x"),
		maxTime: fs.Duration("solver-max-time", 0, "y"),
		mode: fs.String("cluster-mode", "off", "z"),
		n: fs.Int("cluster-workers", 0, "w"),
	fs.Var(&o.params, "param", "p")
	`
	got := cologneFlagNames(src)
	for _, want := range []string{"solve", "solver-max-time", "cluster-mode", "cluster-workers", "param"} {
		if !got[want] {
			t.Fatalf("flag %q not parsed (got %v)", want, got)
		}
	}
}

// TestDocFlagRefs extracts backticked flags and cologne invocation tokens,
// ignoring fence lines of other tools.
func TestDocFlagRefs(t *testing.T) {
	md := "Use `-solver-max-time` or `-cluster-mode`.\n" +
		"```\n" +
		"go run ./cmd/cologne -solve -param k=1 prog.colog\n" +
		"go test -run='^$' -bench=. .\n" +
		"```\n"
	got := map[string]bool{}
	for _, r := range docFlagRefs(md) {
		got[r] = true
	}
	for _, want := range []string{"solver-max-time", "cluster-mode", "solve", "param"} {
		if !got[want] {
			t.Fatalf("ref %q not extracted (got %v)", want, got)
		}
	}
	if got["bench"] || got["run"] {
		t.Fatalf("extracted non-cologne fence flags: %v", got)
	}
}

// TestRepoDocsClean runs the checker's logic against the real repository:
// the same gate CI runs via `make docs-check`.
func TestRepoDocsClean(t *testing.T) {
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "README.md")); err != nil {
		t.Skipf("repo root not found: %v", err)
	}
	for _, doc := range []string{"README.md", "docs/architecture.md", "docs/colog.md", "docs/tuning.md"} {
		if _, err := os.Stat(filepath.Join(root, doc)); err != nil {
			t.Fatalf("expected documentation file missing: %v", err)
		}
	}
}
