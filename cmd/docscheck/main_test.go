package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLinkRegexp(t *testing.T) {
	md := `See [arch](docs/architecture.md) and [ext](https://example.com) plus ![img](a.png#frag).`
	got := linkRe.FindAllStringSubmatch(md, -1)
	want := []string{"docs/architecture.md", "https://example.com", "a.png#frag"}
	if len(got) != len(want) {
		t.Fatalf("found %d links, want %d", len(got), len(want))
	}
	for i, m := range got {
		if m[1] != want[i] {
			t.Fatalf("link %d = %q, want %q", i, m[1], want[i])
		}
	}
}

// TestRepoDocsClean runs the checker's logic against the real repository:
// the same gate CI runs via `make docs-check`.
func TestRepoDocsClean(t *testing.T) {
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "README.md")); err != nil {
		t.Skipf("repo root not found: %v", err)
	}
	for _, doc := range []string{"README.md", "docs/architecture.md", "docs/colog.md", "docs/tuning.md"} {
		if _, err := os.Stat(filepath.Join(root, doc)); err != nil {
			t.Fatalf("expected documentation file missing: %v", err)
		}
	}
}
