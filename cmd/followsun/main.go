// Command followsun runs the distributed Follow-the-Sun experiment
// (section 6.3): for each network size it prints the Figure 4 series
// (normalized total cost as distributed solving converges) and the Figure 5
// per-node communication overhead.
//
//	followsun                 # sweep 2..10 data centers
//	followsun -dcs 6          # one size
//	followsun -max-migrates 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/followsun"
	"repro/internal/profiling"
)

func main() {
	var (
		dcs      = flag.Int("dcs", 0, "run a single network size instead of the 2..10 sweep")
		capM     = flag.Int64("max-migrates", 0, "per-link migration cap (0 = uncapped)")
		budget   = flag.Int64("solver-max-nodes", 30000, "per-COP search node budget")
		maxTime  = flag.Duration("solver-max-time", 0, "per-COP time budget (0 = node budget only)")
		seed     = flag.Int64("seed", 1, "topology/cost seed")
		demanded = flag.Int64("demand-max", 10, "max initial allocation per demand location")
		profile  = flag.String("profile", "", "write CPU/heap profiles to <prefix>.cpu.pprof / <prefix>.heap.pprof")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "followsun: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "followsun: %v\n", err)
		}
	}()

	sizes := []int{2, 4, 6, 8, 10}
	if *dcs > 0 {
		sizes = []int{*dcs}
	}

	type row struct {
		n   int
		res *followsun.Result
	}
	var rows []row
	for _, n := range sizes {
		p := followsun.DefaultParams(n)
		p.MaxMigrates = *capM
		p.SolverMaxNodes = *budget
		p.SolverMaxTime = *maxTime
		p.Seed = *seed
		p.DemandMax = *demanded
		start := time.Now()
		res, err := followsun.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "followsun: %d DCs: %v\n", n, err)
			os.Exit(1)
		}
		rows = append(rows, row{n, res})
		fmt.Fprintf(os.Stderr, "ran %2d data centers in %v (%d negotiations)\n",
			n, time.Since(start).Round(time.Millisecond), res.PerLinkSolves)
	}

	fmt.Println("# Figure 4: normalized total cost as distributed solving converges")
	for _, r := range rows {
		fmt.Printf("## %d data centers (reduction %.1f%%, converged at %.0fs)\n",
			r.n, r.res.ReductionPct, r.res.ConvergenceTime.Seconds())
		fmt.Printf("%-10s %s\n", "time(s)", "cost(%)")
		for _, pt := range r.res.Points {
			fmt.Printf("%-10.1f %.1f\n", pt.T.Seconds(), pt.Cost)
		}
	}

	fmt.Println()
	fmt.Println("# Figure 5: per-node communication overhead")
	fmt.Printf("%-14s %-18s %-12s %-14s\n", "data centers", "KB/s per node", "rounds", "mean solve")
	for _, r := range rows {
		fmt.Printf("%-14d %-18.2f %-12d %-14s\n",
			r.n, r.res.PerNodeKBps, r.res.Rounds, r.res.MeanSolveTime.Round(time.Microsecond))
	}
}
