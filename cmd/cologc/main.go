// Command cologc is the Cologne compiler front end: it parses and analyzes
// Colog programs, prints the classification and localization report, emits
// the equivalent imperative C++ (the code a programmer would otherwise
// write by hand), and regenerates the paper's Table 2 code-compactness
// comparison for the five bundled protocols:
//
//	cologc -table2
//	cologc -cpp program.colog > program.cc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/codegen"
	"repro/internal/colog"
	"repro/internal/programs"
)

func main() {
	var (
		table2 = flag.Bool("table2", false, "print the Table 2 comparison for the bundled protocols")
		cpp    = flag.Bool("cpp", false, "emit generated C++ for the given program")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cologc [-table2] [-cpp] [program.colog]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *table2 {
		printTable2()
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	prog, err := colog.Parse(string(src))
	if err != nil {
		fail("%v", err)
	}
	res, err := analysis.Analyze(prog, nil)
	if err != nil {
		fail("%v", err)
	}
	if *cpp {
		fmt.Print(codegen.Generate(flag.Arg(0), res))
		return
	}
	fmt.Printf("program: %s\n", flag.Arg(0))
	fmt.Printf("  rules: %d (statements incl. goal/var: %d)\n",
		len(res.Program.Rules), res.Program.NumRules())
	fmt.Printf("  distributed: %v\n", res.Distributed)
	counts := map[analysis.RuleClass]int{}
	for _, c := range res.Classes {
		counts[c]++
	}
	fmt.Printf("  regular=%d solver-derivation=%d solver-constraint=%d\n",
		counts[analysis.RegularRule], counts[analysis.SolverDerivationRule],
		counts[analysis.SolverConstraintRule])
	if n := len(res.Rewritten); n > 0 {
		fmt.Printf("  localization rewrites: %d generated rules\n", n)
	}
	loc := codegen.CountLines(codegen.Generate(flag.Arg(0), res))
	fmt.Printf("  generated imperative LOC: %d (%.0fx the Colog rule count)\n",
		loc, float64(loc)/float64(res.Program.NumRules()))
}

// printTable2 reproduces Table 2: Colog rules vs generated imperative LOC.
func printTable2() {
	fmt.Println("Table 2: Colog and compiled C++ comparison")
	fmt.Printf("%-32s %12s %18s %8s\n", "Protocol", "Colog rules", "Imperative (C++)", "Ratio")
	for _, e := range programs.Table2Entries() {
		res := e.Analyze()
		nRules := res.Program.NumRules()
		loc := codegen.CountLines(codegen.Generate(e.Name, res))
		fmt.Printf("%-32s %12d %18d %7.0fx\n", e.Name, nRules, loc, float64(loc)/float64(nRules))
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cologc: "+format+"\n", args...)
	os.Exit(1)
}
