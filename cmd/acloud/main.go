// Command acloud runs the ACloud trace-driven load-balancing experiment
// (section 6.2), printing the Figure 2 series (average per-DC CPU standard
// deviation over time) and the Figure 3 series (VM migrations per interval)
// for the four policies.
//
//	acloud            # scaled-down profile
//	acloud -full      # paper-scale: 3 DCs, 960 VMs, 4 hours
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/acloud"
	"repro/internal/profiling"
)

func main() {
	var (
		full     = flag.Bool("full", false, "paper-scale experiment (slower)")
		hours    = flag.Float64("hours", 0, "override experiment duration")
		budget   = flag.Duration("solver-max-time", 0, "override per-COP time budget")
		maxNodes = flag.Int64("solver-max-nodes", 0, "override per-COP node budget")
		seed     = flag.Int64("seed", 1, "workload seed")
		profile  = flag.String("profile", "", "write CPU/heap profiles to <prefix>.cpu.pprof / <prefix>.heap.pprof")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acloud: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "acloud: %v\n", err)
		}
	}()

	p := acloud.BenchParams()
	if *full {
		p = acloud.DefaultParams()
	}
	if *hours > 0 {
		p.Hours = *hours
	}
	if *budget > 0 {
		p.SolverMaxTime = *budget
	}
	if *maxNodes > 0 {
		p.SolverMaxNodes = *maxNodes
	}
	p.Seed = *seed
	p.Trace.Seed = *seed

	policies := []acloud.Policy{acloud.Default, acloud.Heuristic, acloud.ACloud, acloud.ACloudM}
	results := make([]*acloud.Result, len(policies))
	for i, pol := range policies {
		start := time.Now()
		res, err := acloud.Run(p, pol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acloud: %s: %v\n", pol, err)
			os.Exit(1)
		}
		results[i] = res
		fmt.Fprintf(os.Stderr, "ran %-12s in %v\n", pol, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("# Figure 2: average CPU standard deviation of the data centers")
	fmt.Printf("%-8s", "time(h)")
	for _, r := range results {
		fmt.Printf(" %12s", r.Policy)
	}
	fmt.Println()
	for i := range results[0].Times {
		fmt.Printf("%-8.2f", results[0].Times[i].Hours())
		for _, r := range results {
			fmt.Printf(" %12.1f", r.AvgStdev[i])
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("# Figure 3: number of VM migrations per interval")
	fmt.Printf("%-8s", "time(h)")
	for _, r := range results {
		fmt.Printf(" %12s", r.Policy)
	}
	fmt.Println()
	for i := range results[0].Times {
		fmt.Printf("%-8.2f", results[0].Times[i].Hours())
		for _, r := range results {
			fmt.Printf(" %12d", r.Migrations[i])
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("# Summary")
	base := results[0].MeanStdev
	for _, r := range results {
		fmt.Printf("%-12s mean stddev %7.1f (%5.1f%% of Default)  mean migrations/interval %5.1f\n",
			r.Policy, r.MeanStdev, 100*r.MeanStdev/base, r.MeanMigrations)
	}
}
