package main

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/transport"
)

func TestParseGrid(t *testing.T) {
	w, h, err := parseGrid("100x40")
	if err != nil || w != 100 || h != 40 {
		t.Fatalf("parseGrid(100x40) = %d,%d,%v", w, h, err)
	}
	for _, bad := range []string{"", "3", "x", "0x3", "3x0", "-1x4", "3x3x3"} {
		if _, _, err := parseGrid(bad); err == nil {
			t.Fatalf("parseGrid(%q) accepted", bad)
		}
	}
}

func TestMergeReports(t *testing.T) {
	m := mergeReports([]*loadReport{
		{Queries: 3, Hits: 2, Misses: 1, ElapsedMicros: 50, BytesSent: 10, LatencyMicros: []int64{1, 2, 3}},
		{Queries: 2, Timeouts: 2, ElapsedMicros: 90, BytesRecv: 7},
	})
	if m.Queries != 5 || m.Hits != 2 || m.Misses != 1 || m.Timeouts != 2 {
		t.Fatalf("counts = %+v", m)
	}
	if m.ElapsedMicros != 90 || m.BytesSent != 10 || m.BytesRecv != 7 || len(m.LatencyMicros) != 3 {
		t.Fatalf("fold = %+v", m)
	}
}

// TestWorkerRoundTrip runs the worker's query loop against a real ShardUDP
// endpoint whose control handler answers lookups like a shard process does:
// published links for n00, "none" for everything else.
func TestWorkerRoundTrip(t *testing.T) {
	tr, err := transport.NewShardUDP(0, []string{"127.0.0.1:0"}, func(string) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetControlHandler(func(req []byte) []byte {
		q := string(req)
		if !strings.HasPrefix(q, "lookup ") {
			return nil
		}
		if strings.TrimPrefix(q, "lookup ") == "n00" {
			return []byte("n00-n01=3")
		}
		return []byte("none")
	})

	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	o := registerFlags(fs)
	if err := fs.Parse([]string{
		"-endpoints", tr.Endpoint(),
		"-grid", "2x2",
		"-queries", "40",
		"-query-timeout", "2s",
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := runWorker(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeouts != 0 {
		t.Fatalf("%d queries timed out against a live endpoint", rep.Timeouts)
	}
	if rep.Hits == 0 || rep.Misses == 0 || rep.Hits+rep.Misses != 40 {
		t.Fatalf("hits=%d misses=%d, want both non-zero summing to 40", rep.Hits, rep.Misses)
	}
	if len(rep.LatencyMicros) != 40 || rep.BytesSent == 0 || rep.BytesRecv == 0 {
		t.Fatalf("samples=%d sent=%d recv=%d", len(rep.LatencyMicros), rep.BytesSent, rep.BytesRecv)
	}
	s := summarize(o, rep)
	if s.Shards != 1 || s.QPS <= 0 || s.P99Micros < s.P50Micros {
		t.Fatalf("summary = %+v", s)
	}
}

// TestLoadgenFlagsDocumented pins the load-driver flag surface the docs
// reference (docscheck validates docs/sharding.md against it).
func TestLoadgenFlagsDocumented(t *testing.T) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	registerFlags(fs)
	for _, name := range []string{"endpoints", "grid", "queries", "procs", "query-timeout", "json"} {
		f := fs.Lookup(name)
		if f == nil {
			t.Fatalf("flag -%s not registered", name)
		}
		if f.Usage == "" {
			t.Fatalf("flag -%s has no help text", name)
		}
	}
}
