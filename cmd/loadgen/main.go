// Command loadgen is the multi-process load driver for a sharded cologne
// deployment (see docs/sharding.md): it replays policy-lookup queries
// against the shard processes' UDP endpoints — the same "lookup <node>"
// control frames the deployment answers from its published decision
// snapshots — and reports throughput, latency quantiles, and wire bytes.
//
// The parent process forks -procs copies of itself (each a -worker), every
// worker opens one plain UDP socket per shard and replays its slice of the
// query stream, routing each query to the shard that owns the target node.
// The merged report prints as text or, with -json, as a single JSON object
// for the bench-json pipeline:
//
//	loadgen -endpoints 127.0.0.1:7001,127.0.0.1:7002 -grid 100x100 -procs 4 -queries 2000 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/quantile"
	"repro/internal/transport"
	"repro/internal/wireless"
)

type loadOptions struct {
	endpoints *string
	grid      *string
	queries   *int
	procs     *int
	timeout   *time.Duration
	seed      *int64
	jsonOut   *bool
	worker    *bool
}

func registerFlags(fs *flag.FlagSet) *loadOptions {
	return &loadOptions{
		endpoints: fs.String("endpoints", "",
			"comma-separated UDP endpoints of the shard processes, index =\nshard id (matches the deployment's -shard-peers list)"),
		grid: fs.String("grid", "3x3",
			"WxH grid of the target deployment; queries draw node names from\nit and route to the shard owning each node's column strip"),
		queries: fs.Int("queries", 200, "total queries across all workers"),
		procs:   fs.Int("procs", 2, "worker OS processes to fork"),
		timeout: fs.Duration("query-timeout", 500*time.Millisecond, "per-query reply deadline"),
		seed:    fs.Int64("seed", 1, "query stream seed (workers derive per-worker streams)"),
		jsonOut: fs.Bool("json", false, "emit the merged report as one JSON object (bench-json pipeline)"),
		worker:  fs.Bool("worker", false, "internal: run as one forked load worker"),
	}
}

// loadReport is one worker's (and, merged, the whole run's) result.
type loadReport struct {
	Queries  int `json:"queries"`
	Hits     int `json:"hits"`
	Misses   int `json:"misses"`
	Timeouts int `json:"timeouts"`
	// ElapsedMicros is the worker's wall time; merged reports keep the
	// slowest worker (the run's critical path).
	ElapsedMicros int64   `json:"elapsed_us"`
	BytesSent     int64   `json:"bytes_sent"`
	BytesRecv     int64   `json:"bytes_recv"`
	LatencyMicros []int64 `json:"latency_us"`
}

// parseGrid splits a "WxH" grid spec.
func parseGrid(s string) (w, h int, err error) {
	ws, hs, ok := strings.Cut(s, "x")
	if ok {
		w, err = strconv.Atoi(ws)
		if err == nil {
			h, err = strconv.Atoi(hs)
		}
	}
	if !ok || err != nil || w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("loadgen: bad -grid %q (want WxH, e.g. 100x100)", s)
	}
	return w, h, nil
}

// runWorker replays one worker's query slice against the shard endpoints
// over plain UDP sockets.
func runWorker(o *loadOptions) (*loadReport, error) {
	endpoints := strings.Split(*o.endpoints, ",")
	w, h, err := parseGrid(*o.grid)
	if err != nil {
		return nil, err
	}
	plan := wireless.GridShardPlan(w, len(endpoints))
	conns := make([]*net.UDPConn, len(endpoints))
	for i, ep := range endpoints {
		addr, err := net.ResolveUDPAddr("udp", ep)
		if err != nil {
			return nil, fmt.Errorf("loadgen: endpoint %q: %w", ep, err)
		}
		c, err := net.DialUDP("udp", nil, addr)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		conns[i] = c
	}

	rep := &loadReport{Queries: *o.queries}
	rng := rand.New(rand.NewSource(*o.seed))
	buf := make([]byte, 64*1024)
	start := time.Now()
	for q := 0; q < *o.queries; q++ {
		node := fmt.Sprintf("n%02d", rng.Intn(w*h))
		conn := conns[plan.Of(node)]
		req := transport.EncodeShardControl([]byte("lookup " + node))
		sent := time.Now()
		if _, err := conn.Write(req); err != nil {
			return nil, err
		}
		rep.BytesSent += int64(len(req))
		conn.SetReadDeadline(time.Now().Add(*o.timeout)) //nolint:errcheck — deadline on a fresh socket
		n, err := conn.Read(buf)
		lat := time.Since(sent)
		if err != nil {
			rep.Timeouts++
			continue
		}
		rep.BytesRecv += int64(n)
		rep.LatencyMicros = append(rep.LatencyMicros, lat.Microseconds())
		payload, err := transport.DecodeShardReply(buf[:n])
		if err != nil || string(payload) == "none" {
			rep.Misses++
		} else {
			rep.Hits++
		}
	}
	rep.ElapsedMicros = time.Since(start).Microseconds()
	return rep, nil
}

// mergeReports folds worker reports: counts and bytes add, elapsed keeps
// the slowest worker, latency samples concatenate.
func mergeReports(reps []*loadReport) *loadReport {
	m := &loadReport{}
	for _, r := range reps {
		m.Queries += r.Queries
		m.Hits += r.Hits
		m.Misses += r.Misses
		m.Timeouts += r.Timeouts
		m.BytesSent += r.BytesSent
		m.BytesRecv += r.BytesRecv
		if r.ElapsedMicros > m.ElapsedMicros {
			m.ElapsedMicros = r.ElapsedMicros
		}
		m.LatencyMicros = append(m.LatencyMicros, r.LatencyMicros...)
	}
	return m
}

// runParent forks the workers, each replaying an equal share of the query
// stream with its own seed, and merges their JSON reports.
func runParent(o *loadOptions) (*loadReport, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	procs := *o.procs
	if procs < 1 {
		procs = 1
	}
	per := (*o.queries + procs - 1) / procs
	cmds := make([]*exec.Cmd, procs)
	outs := make([]strings.Builder, procs)
	for i := 0; i < procs; i++ {
		cmd := exec.Command(exe,
			"-worker",
			"-endpoints", *o.endpoints,
			"-grid", *o.grid,
			"-queries", strconv.Itoa(per),
			"-query-timeout", o.timeout.String(),
			"-seed", strconv.FormatInt(*o.seed+int64(i)*7919, 10),
		)
		cmd.Stdout = &outs[i]
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		cmds[i] = cmd
	}
	reps := make([]*loadReport, procs)
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			return nil, fmt.Errorf("loadgen: worker %d: %w", i, err)
		}
		reps[i] = &loadReport{}
		if err := json.Unmarshal([]byte(outs[i].String()), reps[i]); err != nil {
			return nil, fmt.Errorf("loadgen: worker %d report: %w", i, err)
		}
	}
	return mergeReports(reps), nil
}

// latency converts stored microsecond samples for the quantile helper.
func latency(m *loadReport, p float64) time.Duration {
	ds := make([]time.Duration, len(m.LatencyMicros))
	for i, us := range m.LatencyMicros {
		ds[i] = time.Duration(us) * time.Microsecond
	}
	return quantile.Durations(ds, p)
}

// summary is the merged run report in its printable/bench-json shape.
type summary struct {
	Benchmark string  `json:"benchmark"`
	Shards    int     `json:"shards"`
	Procs     int     `json:"procs"`
	Queries   int     `json:"queries"`
	Hits      int     `json:"hits"`
	Misses    int     `json:"misses"`
	Timeouts  int     `json:"timeouts"`
	QPS       float64 `json:"qps"`
	P50Micros int64   `json:"p50_us"`
	P99Micros int64   `json:"p99_us"`
	BytesSent int64   `json:"bytes_sent"`
	BytesRecv int64   `json:"bytes_recv"`
}

func summarize(o *loadOptions, m *loadReport) summary {
	qps := 0.0
	if m.ElapsedMicros > 0 {
		qps = float64(m.Queries) / (float64(m.ElapsedMicros) / 1e6)
	}
	return summary{
		Benchmark: "LoadgenLookup",
		Shards:    len(strings.Split(*o.endpoints, ",")),
		Procs:     *o.procs,
		Queries:   m.Queries,
		Hits:      m.Hits,
		Misses:    m.Misses,
		Timeouts:  m.Timeouts,
		QPS:       qps,
		P50Micros: latency(m, 0.50).Microseconds(),
		P99Micros: latency(m, 0.99).Microseconds(),
		BytesSent: m.BytesSent,
		BytesRecv: m.BytesRecv,
	}
}

func main() {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	o := registerFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: loadgen -endpoints host:port,... [flags]\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if *o.endpoints == "" {
		fs.Usage()
		os.Exit(2)
	}
	if _, _, err := parseGrid(*o.grid); err != nil {
		fail("%v", err)
	}
	if *o.worker {
		rep, err := runWorker(o)
		if err != nil {
			fail("%v", err)
		}
		blob, err := json.Marshal(rep)
		if err != nil {
			fail("%v", err)
		}
		os.Stdout.Write(blob)
		return
	}
	merged, err := runParent(o)
	if err != nil {
		fail("%v", err)
	}
	s := summarize(o, merged)
	if *o.jsonOut {
		blob, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(string(blob))
		return
	}
	fmt.Printf("loadgen: shards=%d procs=%d queries=%d hits=%d misses=%d timeouts=%d\n",
		s.Shards, s.Procs, s.Queries, s.Hits, s.Misses, s.Timeouts)
	fmt.Printf("loadgen: qps=%.0f p50=%v p99=%v sent=%dB recv=%dB\n",
		s.QPS, time.Duration(s.P50Micros)*time.Microsecond, time.Duration(s.P99Micros)*time.Microsecond,
		s.BytesSent, s.BytesRecv)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
