// Command cologne runs a Colog program on a single Cologne instance:
// parse, analyze, load facts, optionally invoke the constraint solver, and
// dump the resulting tables. It is the quickest way to experiment with the
// language:
//
//	cologne -solve program.colog
//	cologne -param max_migrates=3 -solve -dump assign program.colog
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/core"
)

func main() {
	var (
		solve    = flag.Bool("solve", false, "invoke the constraint solver after loading facts")
		dump     = flag.String("dump", "", "comma-separated tables to print (default: all non-empty)")
		maxTime  = flag.Duration("solver-max-time", 10*time.Second, "SOLVER_MAX_TIME budget")
		maxNodes = flag.Int64("solver-max-nodes", 0, "search node budget (0 = unlimited)")
		report   = flag.Bool("report", false, "print the static analysis report before running")
	)
	var params paramFlags
	flag.Var(&params, "param", "bind a parameter, e.g. -param max_migrates=3 (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cologne [flags] program.colog\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	prog, err := colog.Parse(string(src))
	if err != nil {
		fail("%v", err)
	}
	res, err := analysis.Analyze(prog, params.vals)
	if err != nil {
		fail("%v", err)
	}
	if *report {
		printReport(res)
	}
	cfg := core.Config{
		Params:          params.vals,
		SolverMaxTime:   *maxTime,
		SolverMaxNodes:  *maxNodes,
		SolverPropagate: true,
	}
	node, err := core.NewNode("local", res, cfg, nil)
	if err != nil {
		fail("%v", err)
	}
	if *solve {
		sres, err := node.Solve(core.SolveOptions{})
		if err != nil {
			fail("solve: %v", err)
		}
		fmt.Printf("solve: status=%s objective=%g vars=%d constraints=%d nodes=%d time=%v\n",
			sres.Status, sres.Objective, sres.NumVars, sres.NumCons,
			sres.Stats.Nodes, sres.Stats.Elapsed.Round(time.Microsecond))
	}
	printTables(node, *dump)
}

func printReport(res *analysis.Result) {
	fmt.Printf("distributed: %v\n", res.Distributed)
	fmt.Printf("tables:\n")
	var names []string
	for n := range res.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ti := res.Tables[n]
		kind := "regular"
		if ti.IsSolver() {
			kind = "solver"
		}
		fmt.Printf("  %-24s arity=%d loc=%d %s\n", n, ti.Arity, ti.LocCol, kind)
	}
	fmt.Printf("rules:\n")
	for i, r := range res.Program.Rules {
		fmt.Printf("  [%-17s] %s\n", res.Classes[i], r)
	}
	fmt.Println()
}

func printTables(node *core.Node, dump string) {
	var names []string
	if dump != "" {
		names = strings.Split(dump, ",")
	} else {
		names = node.TableNames()
		sort.Strings(names)
	}
	for _, name := range names {
		rows := node.Rows(name)
		if len(rows) == 0 && dump == "" {
			continue
		}
		for _, row := range rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Printf("%s(%s).\n", name, strings.Join(parts, ","))
		}
	}
}

type paramFlags struct {
	vals map[string]colog.Value
}

func (p *paramFlags) String() string { return "" }

func (p *paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	if p.vals == nil {
		p.vals = map[string]colog.Value{}
	}
	if iv, err := strconv.ParseInt(v, 10, 64); err == nil {
		p.vals[k] = colog.IntVal(iv)
	} else if fv, err := strconv.ParseFloat(v, 64); err == nil {
		p.vals[k] = colog.FloatVal(fv)
	} else {
		p.vals[k] = colog.StringVal(v)
	}
	return nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cologne: "+format+"\n", args...)
	os.Exit(1)
}
