// Command cologne runs a Colog program: parse, analyze, load facts,
// optionally invoke the constraint solver, and dump the resulting tables.
// It is the quickest way to experiment with the language:
//
//	cologne -solve program.colog
//	cologne -param max_migrates=3 -solve -dump assign program.colog
//
// By default the program runs on a single Cologne instance. With
// -cluster-mode, a distributed program (one whose facts carry @-location
// attributes) runs on one instance per distinct location over the
// concurrent cluster runtime — simulated network or real UDP sockets:
//
//	cologne -cluster-mode sim -solve program.colog
//	cologne -cluster-mode udp -cluster-workers 4 -cluster-batch -solve program.colog
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/profiling"
	"repro/internal/store"
)

// cliOptions holds every cologne flag; registerFlags wires them onto a
// FlagSet so tests can exercise the flag surface without running main.
type cliOptions struct {
	solve        *bool
	dump         *string
	maxTime      *time.Duration
	maxNodes     *int64
	restarts     *int
	engine       *string
	groundMode   *string
	fixpoint     *bool
	incr         *bool
	warm         *bool
	report       *bool
	clusterMode  *string
	clusterWkrs  *int
	clusterLat   *time.Duration
	clusterBat   *bool
	clusterCkpt  *int
	clusterRsnc  *bool
	clusterSched *string
	storeKind    *string
	storeDir     *string
	storeFsync   *bool
	shardCount   *int
	shardAgg     *string
	shardID      *int
	shardPeers   *string
	profile      *string
	params       paramFlags
}

func registerFlags(fs *flag.FlagSet) *cliOptions {
	o := &cliOptions{
		solve:    fs.Bool("solve", false, "invoke the constraint solver after loading facts"),
		dump:     fs.String("dump", "", "comma-separated tables to print (default: all non-empty)"),
		maxTime:  fs.Duration("solver-max-time", 10*time.Second, "SOLVER_MAX_TIME budget per COP execution"),
		maxNodes: fs.Int64("solver-max-nodes", 0, "search node budget per COP execution (0 = unlimited)"),
		restarts: fs.Int("solver-restarts", 0,
			"restart the search N times with geometrically growing node limits;\nsaved phases feed later runs' warm-start hints (0 = no restarts)"),
		engine: fs.String("solver-engine", "event",
			"search core: 'event' (event-driven propagation engine) or 'legacy'\n(seed forward-checking core; same results, for ablations)"),
		groundMode: fs.String("ground-mode", "streaming",
			"grounding join path: 'streaming' (pipelined iterators with predicate\npushdown) or 'materialized' (build intermediate row sets; same results,\nfor ablations)"),
		fixpoint: fs.Bool("solver-fixpoint", false,
			"drain the propagator queue to fixpoint after each assignment\n(stronger pruning; same optima, fewer search nodes)"),
		incr: fs.Bool("solver-incremental", false,
			"keep the grounded model between solves and re-ground only what\nchanged, patching constants in place (same solutions, less work)"),
		warm: fs.Bool("solver-warmstart", false,
			"seed each solve's value ordering from the previous solve's\nmaterialized assignments (changes incumbents under budgets)"),
		report: fs.Bool("report", false, "print the static analysis report before running"),
		clusterMode: fs.String("cluster-mode", "off",
			"run a distributed program on one instance per fact location:\n'off' (single node), 'sim' (simulated network, deterministic), or\n'udp' (real loopback sockets)"),
		clusterWkrs: fs.Int("cluster-workers", 0,
			"cluster epoch worker pool size; 0 derives from GOMAXPROCS, 1 forces\nsequential execution (sim-mode results are identical at any setting)"),
		clusterLat: fs.Duration("cluster-latency", 2*time.Millisecond,
			"one-way link latency of the simulated cluster network"),
		clusterBat: fs.Bool("cluster-batch", false,
			"batch outgoing deltas per (epoch, destination) into single frames:\nfewer messages, identical delivery contents"),
		clusterCkpt: fs.Int("cluster-checkpoint-every", 0,
			"checkpoint every live node's full table state (arrival-order seqs\nincluded) after each N-th epoch; a restarted node restores its latest\ncheckpoint instead of reseeding (0 = no periodic checkpoints)"),
		clusterRsnc: fs.Bool("cluster-resync", true,
			"run the automatic anti-entropy digest exchange when a node\nrestarts, pulling the rows it missed while down (see docs/recovery.md)"),
		clusterSched: fs.String("cluster-scheduling", "",
			"epoch item scheduling policy: 'cost' (default; start\npredicted-expensive items first) or 'fifo' (item order); results are\nidentical either way"),
		storeKind: fs.String("store", "memory",
			"per-node storage backend: 'memory' (tables live in process memory)\nor 'disk' (every visible transition goes through an append-only\nwrite-ahead log and tables spill to disk; a restarted cluster node\nreplays its local log before resyncing — see docs/storage.md)"),
		storeDir: fs.String("store-dir", "",
			"directory for -store disk data, one subdirectory per node\n(default: a temporary directory removed on exit)"),
		storeFsync: fs.Bool("store-fsync", false,
			"fsync the write-ahead log after every record: full\npower-loss durability at a per-transition cost (default: rely on\nthe OS page cache; process crashes still lose nothing)"),
		shardCount: fs.Int("shard-count", 0,
			"partition a clustered run's nodes into N key-range shards and\naggregate per-epoch summaries hierarchically (see docs/sharding.md);\n0 or 1 leaves the run unsharded"),
		shardAgg: fs.String("shard-agg", "",
			"epoch summary aggregation across shards: 'off' (default), 'rollup'\n(fanout tree, one frame per shard per epoch), or 'allpairs'\n(every shard broadcasts to every other; ablation baseline)"),
		shardID: fs.Int("shard-id", 0,
			"this process's shard in a multi-process deployment (used with\n-shard-peers; each process owns the nodes its shard covers)"),
		shardPeers: fs.String("shard-peers", "",
			"comma-separated UDP endpoints of every shard process, index =\nshard id; when set, cologne runs as one process of a multi-process\nsharded deployment and spawns only its own shard's engines"),
		profile: fs.String("profile", "",
			"write a CPU profile to <prefix>.cpu.pprof and a heap snapshot to\n<prefix>.heap.pprof for `go tool pprof` (empty = off)"),
	}
	fs.Var(&o.params, "param", "bind a parameter, e.g. -param max_migrates=3 (repeatable)")
	return o
}

// config validates the solver flags and assembles the node configuration.
func (o *cliOptions) config() (core.Config, error) {
	if *o.engine != "event" && *o.engine != "legacy" {
		return core.Config{}, fmt.Errorf("unknown -solver-engine %q (want event or legacy)", *o.engine)
	}
	if m := *o.groundMode; m != "streaming" && m != "materialized" {
		return core.Config{}, fmt.Errorf("unknown -ground-mode %q (want streaming or materialized)", m)
	}
	if m := *o.clusterMode; m != "off" && m != "sim" && m != "udp" {
		return core.Config{}, fmt.Errorf("unknown -cluster-mode %q (want off, sim, or udp)", m)
	}
	if s := *o.storeKind; s != "" && s != "memory" && s != "disk" {
		return core.Config{}, fmt.Errorf("unknown -store %q (want memory or disk)", s)
	}
	switch *o.shardAgg {
	case "", cluster.AggregationOff, cluster.AggregationRollup, cluster.AggregationAllPairs:
	default:
		return core.Config{}, fmt.Errorf("unknown -shard-agg %q (want off, rollup, or allpairs)", *o.shardAgg)
	}
	if *o.shardCount < 0 {
		return core.Config{}, fmt.Errorf("-shard-count must be >= 0")
	}
	if *o.shardID != 0 && *o.shardPeers == "" {
		return core.Config{}, fmt.Errorf("-shard-id needs -shard-peers (the shard endpoint list)")
	}
	if *o.shardPeers != "" && *o.storeKind == "disk" {
		return core.Config{}, fmt.Errorf("-shard-peers supports -store memory only")
	}
	return core.Config{
		Params:            o.params.vals,
		SolverMaxTime:     *o.maxTime,
		SolverMaxNodes:    *o.maxNodes,
		SolverPropagate:   true,
		SolverEngine:      *o.engine,
		GroundMode:        *o.groundMode,
		SolverFixpoint:    *o.fixpoint,
		SolverRestarts:    *o.restarts,
		SolverIncremental: *o.incr,
		SolverWarmStart:   *o.warm,
	}, nil
}

func main() {
	fs := flag.NewFlagSet("cologne", flag.ExitOnError)
	opts := registerFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cologne [flags] program.colog\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	prog, err := colog.Parse(string(src))
	if err != nil {
		fail("%v", err)
	}
	res, err := analysis.Analyze(prog, opts.params.vals)
	if err != nil {
		fail("%v", err)
	}
	if *opts.report {
		printReport(res)
	}
	cfg, err := opts.config()
	if err != nil {
		fail("%v", err)
	}
	stopProf, err := profiling.Start(*opts.profile)
	if err != nil {
		fail("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "cologne: %v\n", err)
		}
	}()
	if *opts.shardPeers != "" {
		if err := runShardProcess(opts, res, cfg); err != nil {
			fail("%v", err)
		}
		return
	}
	if *opts.clusterMode != "off" {
		if err := runCluster(opts, res, cfg); err != nil {
			fail("%v", err)
		}
		return
	}
	if *opts.storeKind == "disk" {
		dir := *opts.storeDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "cologne-store-")
			if err != nil {
				fail("%v", err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		st, err := store.Open("disk", filepath.Join(dir, "local"), *opts.storeFsync)
		if err != nil {
			fail("%v", err)
		}
		defer st.Close()
		cfg.Storage = st
	}
	node, err := core.NewNode("local", res, cfg, nil)
	if err != nil {
		fail("%v", err)
	}
	if *opts.solve {
		sres, err := node.Solve(core.SolveOptions{})
		if err != nil {
			fail("solve: %v", err)
		}
		fmt.Printf("solve: status=%s objective=%g vars=%d constraints=%d nodes=%d time=%v\n",
			sres.Status, sres.Objective, sres.NumVars, sres.NumCons,
			sres.Stats.Nodes, sres.Stats.Elapsed.Round(time.Microsecond))
	}
	printTables(node, *opts.dump)
}

// clusterAddrs collects the distinct location values of the program's
// facts: the node set a clustered run spawns.
func clusterAddrs(res *analysis.Result) []string {
	seen := map[string]bool{}
	var addrs []string
	for _, f := range res.Program.Facts {
		ti := res.Tables[f.Atom.Pred]
		if ti == nil || ti.LocCol < 0 || ti.LocCol >= len(f.Atom.Args) {
			continue
		}
		ct, ok := f.Atom.Args[ti.LocCol].(*colog.ConstTerm)
		if !ok {
			continue
		}
		addr := ct.Val.S
		if ct.Val.Kind != colog.KindString {
			addr = ct.Val.String()
		}
		if !seen[addr] {
			seen[addr] = true
			addrs = append(addrs, addr)
		}
	}
	sort.Strings(addrs)
	return addrs
}

// runCluster executes the program on one instance per fact location over
// the cluster runtime, solving every node concurrently when -solve is set.
func runCluster(opts *cliOptions, res *analysis.Result, cfg core.Config) error {
	addrs := clusterAddrs(res)
	if len(addrs) == 0 {
		return fmt.Errorf("cluster mode needs @-located facts to derive the node set (see docs/distribution.md)")
	}
	mode := cluster.ModeSim
	if *opts.clusterMode == "udp" {
		mode = cluster.ModeUDP
	}
	rt := cluster.New(cluster.Options{
		Mode:            mode,
		Workers:         *opts.clusterWkrs,
		Scheduling:      *opts.clusterSched,
		Latency:         *opts.clusterLat,
		BatchDeltas:     *opts.clusterBat,
		CheckpointEvery: *opts.clusterCkpt,
		DisableResync:   !*opts.clusterRsnc,
		Storage:         *opts.storeKind,
		StorageDir:      *opts.storeDir,
		StorageFsync:    *opts.storeFsync,
		Shards:          cluster.IndexRanges(addrs, *opts.shardCount),
		Aggregation:     *opts.shardAgg,
	})
	defer rt.Close()
	// Facts load through the Seed hook, which SpawnAll defers until every
	// node is registered: a base fact can fire a localized rule whose head
	// ships to a peer, so loading at construction would race registration.
	cfg.DeferFacts = true
	specs := make([]cluster.NodeSpec, len(addrs))
	for i, addr := range addrs {
		specs[i] = cluster.NodeSpec{
			Addr: addr, Program: res, Config: cfg,
			Seed: func(n *core.Node) error { return n.InsertProgramFacts() },
		}
	}
	if err := rt.SpawnAll(specs); err != nil {
		return err
	}
	rt.Settle()
	if *opts.solve {
		items := make([]cluster.Item, len(addrs))
		for i, addr := range addrs {
			node := rt.Node(addr)
			items[i] = cluster.Item{
				Label: "solve " + addr,
				Nodes: []string{addr},
				Run:   func() (*core.SolveResult, error) { return node.Solve(core.SolveOptions{}) },
			}
		}
		st, err := rt.RunEpoch(items)
		if err != nil {
			return err
		}
		rt.Settle()
		fmt.Printf("cluster: nodes=%d solves=%d solver-nodes=%d msgs=%d bytes=%d\n",
			len(addrs), st.Solves, st.SolverNodes, rt.TotalWire().MsgsSent, rt.TotalWire().BytesSent)
		fmt.Printf("epoch: exec=%v ground=%v solve=%v barrier=%v longest=%q (%v)\n",
			st.ExecWall.Round(time.Microsecond), st.GroundWall.Round(time.Microsecond),
			st.SolveWall.Round(time.Microsecond), st.BarrierWall.Round(time.Microsecond),
			st.LongestItem, st.LongestWall.Round(time.Microsecond))
	}
	printClusterTables(rt, addrs, *opts.dump)
	return nil
}

// shardBarrier is the minimal control plane of a multi-process cologne
// run: processes mark phases ("hello", "seeded", "done") with rebroadcast
// control frames until every shard has been seen in that phase.
type shardBarrier struct {
	mu   sync.Mutex
	seen map[string]map[int]bool
}

func (b *shardBarrier) handle(req []byte) []byte {
	fields := strings.Fields(string(req))
	if len(fields) != 2 {
		return nil
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil
	}
	b.mu.Lock()
	m := b.seen[fields[0]]
	if m == nil {
		m = map[int]bool{}
		b.seen[fields[0]] = m
	}
	m[id] = true
	b.mu.Unlock()
	return nil
}

func (b *shardBarrier) count(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.seen[name])
}

// runShardProcess executes the program as one process of a multi-process
// sharded deployment (-shard-id / -shard-peers): the node set is derived
// from the program's fact locations exactly as in single-process cluster
// mode, partitioned into key ranges, and this process spawns only the
// engines of its own shard. Fact loading is deferred behind a hello
// barrier so cross-shard deltas never race a peer's bring-up; every
// process then runs the same single solve epoch, and per-shard summaries
// fold across processes by the configured aggregation (default rollup).
func runShardProcess(opts *cliOptions, res *analysis.Result, cfg core.Config) error {
	addrs := clusterAddrs(res)
	if len(addrs) == 0 {
		return fmt.Errorf("sharded mode needs @-located facts to derive the node set (see docs/sharding.md)")
	}
	endpoints := strings.Split(*opts.shardPeers, ",")
	agg := *opts.shardAgg
	if agg == "" {
		agg = cluster.AggregationRollup
	}
	cfg.DeferFacts = true
	rt, err := cluster.NewMultiProcess(cluster.Options{
		Workers:        *opts.clusterWkrs,
		Scheduling:     *opts.clusterSched,
		BatchDeltas:    *opts.clusterBat,
		Shards:         cluster.IndexRanges(addrs, len(endpoints)),
		Aggregation:    agg,
		ShardID:        *opts.shardID,
		ShardEndpoints: endpoints,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	bar := &shardBarrier{seen: map[string]map[int]bool{}}
	tr := rt.ShardTransport()
	tr.SetControlHandler(bar.handle)

	var local []string
	for _, addr := range addrs {
		node, err := rt.Spawn(cluster.NodeSpec{Addr: addr, Program: res, Config: cfg})
		if err != nil {
			return err
		}
		if node != nil {
			local = append(local, addr)
		}
	}
	barrier := func(name string) error {
		deadline := time.Now().Add(30 * time.Second)
		for bar.count(name) < len(endpoints) {
			for s := range endpoints {
				tr.SendControl(s, []byte(fmt.Sprintf("%s %d", name, *opts.shardID))) //nolint:errcheck — rebroadcast heals drops
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("shard %d: %s barrier timed out (%d/%d shards up)",
					*opts.shardID, name, bar.count(name), len(endpoints))
			}
			time.Sleep(20 * time.Millisecond)
		}
		return nil
	}
	const settle = 200 * time.Millisecond

	// Every shard's endpoint and node registrations are up before any
	// shard loads facts; then every shard is fully seeded before anyone
	// solves against the replicated state.
	if err := barrier("hello"); err != nil {
		return err
	}
	for _, addr := range local {
		if err := rt.Node(addr).InsertProgramFacts(); err != nil {
			return fmt.Errorf("seeding %s: %w", addr, err)
		}
	}
	if err := barrier("seeded"); err != nil {
		return err
	}
	time.Sleep(settle)

	if *opts.solve {
		items := make([]cluster.Item, len(local))
		for i, addr := range local {
			node := rt.Node(addr)
			items[i] = cluster.Item{
				Label: "solve " + addr,
				Nodes: []string{addr},
				Run:   func() (*core.SolveResult, error) { return node.Solve(core.SolveOptions{}) },
			}
		}
		st, err := rt.RunEpoch(items)
		if err != nil {
			return err
		}
		time.Sleep(settle)
		msgs, bytes := tr.RemoteWire()
		fmt.Printf("shard %d/%d: nodes=%d solves=%d solver-nodes=%d remote-msgs=%d remote-bytes=%d\n",
			*opts.shardID, len(endpoints), len(local), st.Solves, st.SolverNodes, msgs, bytes)
		if sum, ok := rt.ClusterSummary(); ok {
			fmt.Printf("cluster: shards=%d members=%d solves=%d solver-nodes=%d objective=%g\n",
				sum.Folded, sum.Members, sum.Solves, sum.SolverNodes, sum.Objective)
		}
	}
	if err := barrier("done"); err != nil {
		return err
	}
	time.Sleep(settle)
	printClusterTables(rt, local, *opts.dump)
	return nil
}

// printClusterTables prints the union of every node's tables as facts,
// deduplicated (replicated rows appear on several nodes) and sorted.
func printClusterTables(rt *cluster.Runtime, addrs []string, dump string) {
	var names []string
	if dump != "" {
		names = strings.Split(dump, ",")
	} else {
		seen := map[string]bool{}
		for _, addr := range addrs {
			for _, name := range rt.Node(addr).TableNames() {
				if !seen[name] {
					seen[name] = true
					names = append(names, name)
				}
			}
		}
		sort.Strings(names)
	}
	for _, name := range names {
		lineSet := map[string]bool{}
		var lines []string
		for _, addr := range addrs {
			for _, row := range rt.Node(addr).Rows(name) {
				parts := make([]string, len(row))
				for i, v := range row {
					parts[i] = v.String()
				}
				line := fmt.Sprintf("%s(%s).", name, strings.Join(parts, ","))
				if !lineSet[line] {
					lineSet[line] = true
					lines = append(lines, line)
				}
			}
		}
		sort.Strings(lines)
		for _, line := range lines {
			fmt.Println(line)
		}
	}
}

func printReport(res *analysis.Result) {
	fmt.Printf("distributed: %v\n", res.Distributed)
	fmt.Printf("tables:\n")
	var names []string
	for n := range res.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ti := res.Tables[n]
		kind := "regular"
		if ti.IsSolver() {
			kind = "solver"
		}
		fmt.Printf("  %-24s arity=%d loc=%d %s\n", n, ti.Arity, ti.LocCol, kind)
	}
	fmt.Printf("rules:\n")
	for i, r := range res.Program.Rules {
		fmt.Printf("  [%-17s] %s\n", res.Classes[i], r)
	}
	fmt.Println()
}

func printTables(node *core.Node, dump string) {
	var names []string
	if dump != "" {
		names = strings.Split(dump, ",")
	} else {
		names = node.TableNames()
		sort.Strings(names)
	}
	for _, name := range names {
		rows := node.Rows(name)
		if len(rows) == 0 && dump == "" {
			continue
		}
		for _, row := range rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Printf("%s(%s).\n", name, strings.Join(parts, ","))
		}
	}
}

type paramFlags struct {
	vals map[string]colog.Value
}

func (p *paramFlags) String() string { return "" }

func (p *paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	if p.vals == nil {
		p.vals = map[string]colog.Value{}
	}
	if iv, err := strconv.ParseInt(v, 10, 64); err == nil {
		p.vals[k] = colog.IntVal(iv)
	} else if fv, err := strconv.ParseFloat(v, 64); err == nil {
		p.vals[k] = colog.FloatVal(fv)
	} else {
		p.vals[k] = colog.StringVal(v)
	}
	return nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cologne: "+format+"\n", args...)
	os.Exit(1)
}
