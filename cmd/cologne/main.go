// Command cologne runs a Colog program on a single Cologne instance:
// parse, analyze, load facts, optionally invoke the constraint solver, and
// dump the resulting tables. It is the quickest way to experiment with the
// language:
//
//	cologne -solve program.colog
//	cologne -param max_migrates=3 -solve -dump assign program.colog
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/core"
)

// cliOptions holds every cologne flag; registerFlags wires them onto a
// FlagSet so tests can exercise the flag surface without running main.
type cliOptions struct {
	solve    *bool
	dump     *string
	maxTime  *time.Duration
	maxNodes *int64
	restarts *int
	engine   *string
	fixpoint *bool
	incr     *bool
	warm     *bool
	report   *bool
	params   paramFlags
}

func registerFlags(fs *flag.FlagSet) *cliOptions {
	o := &cliOptions{
		solve:    fs.Bool("solve", false, "invoke the constraint solver after loading facts"),
		dump:     fs.String("dump", "", "comma-separated tables to print (default: all non-empty)"),
		maxTime:  fs.Duration("solver-max-time", 10*time.Second, "SOLVER_MAX_TIME budget per COP execution"),
		maxNodes: fs.Int64("solver-max-nodes", 0, "search node budget per COP execution (0 = unlimited)"),
		restarts: fs.Int("solver-restarts", 0,
			"restart the search N times with geometrically growing node limits;\nsaved phases feed later runs' warm-start hints (0 = no restarts)"),
		engine: fs.String("solver-engine", "event",
			"search core: 'event' (event-driven propagation engine) or 'legacy'\n(seed forward-checking core; same results, for ablations)"),
		fixpoint: fs.Bool("solver-fixpoint", false,
			"drain the propagator queue to fixpoint after each assignment\n(stronger pruning; same optima, fewer search nodes)"),
		incr: fs.Bool("solver-incremental", false,
			"keep the grounded model between solves and re-ground only what\nchanged, patching constants in place (same solutions, less work)"),
		warm: fs.Bool("solver-warmstart", false,
			"seed each solve's value ordering from the previous solve's\nmaterialized assignments (changes incumbents under budgets)"),
		report: fs.Bool("report", false, "print the static analysis report before running"),
	}
	fs.Var(&o.params, "param", "bind a parameter, e.g. -param max_migrates=3 (repeatable)")
	return o
}

// config validates the solver flags and assembles the node configuration.
func (o *cliOptions) config() (core.Config, error) {
	if *o.engine != "event" && *o.engine != "legacy" {
		return core.Config{}, fmt.Errorf("unknown -solver-engine %q (want event or legacy)", *o.engine)
	}
	return core.Config{
		Params:            o.params.vals,
		SolverMaxTime:     *o.maxTime,
		SolverMaxNodes:    *o.maxNodes,
		SolverPropagate:   true,
		SolverEngine:      *o.engine,
		SolverFixpoint:    *o.fixpoint,
		SolverRestarts:    *o.restarts,
		SolverIncremental: *o.incr,
		SolverWarmStart:   *o.warm,
	}, nil
}

func main() {
	fs := flag.NewFlagSet("cologne", flag.ExitOnError)
	opts := registerFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cologne [flags] program.colog\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	prog, err := colog.Parse(string(src))
	if err != nil {
		fail("%v", err)
	}
	res, err := analysis.Analyze(prog, opts.params.vals)
	if err != nil {
		fail("%v", err)
	}
	if *opts.report {
		printReport(res)
	}
	cfg, err := opts.config()
	if err != nil {
		fail("%v", err)
	}
	node, err := core.NewNode("local", res, cfg, nil)
	if err != nil {
		fail("%v", err)
	}
	if *opts.solve {
		sres, err := node.Solve(core.SolveOptions{})
		if err != nil {
			fail("solve: %v", err)
		}
		fmt.Printf("solve: status=%s objective=%g vars=%d constraints=%d nodes=%d time=%v\n",
			sres.Status, sres.Objective, sres.NumVars, sres.NumCons,
			sres.Stats.Nodes, sres.Stats.Elapsed.Round(time.Microsecond))
	}
	printTables(node, *opts.dump)
}

func printReport(res *analysis.Result) {
	fmt.Printf("distributed: %v\n", res.Distributed)
	fmt.Printf("tables:\n")
	var names []string
	for n := range res.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ti := res.Tables[n]
		kind := "regular"
		if ti.IsSolver() {
			kind = "solver"
		}
		fmt.Printf("  %-24s arity=%d loc=%d %s\n", n, ti.Arity, ti.LocCol, kind)
	}
	fmt.Printf("rules:\n")
	for i, r := range res.Program.Rules {
		fmt.Printf("  [%-17s] %s\n", res.Classes[i], r)
	}
	fmt.Println()
}

func printTables(node *core.Node, dump string) {
	var names []string
	if dump != "" {
		names = strings.Split(dump, ",")
	} else {
		names = node.TableNames()
		sort.Strings(names)
	}
	for _, name := range names {
		rows := node.Rows(name)
		if len(rows) == 0 && dump == "" {
			continue
		}
		for _, row := range rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Printf("%s(%s).\n", name, strings.Join(parts, ","))
		}
	}
}

type paramFlags struct {
	vals map[string]colog.Value
}

func (p *paramFlags) String() string { return "" }

func (p *paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	if p.vals == nil {
		p.vals = map[string]colog.Value{}
	}
	if iv, err := strconv.ParseInt(v, 10, 64); err == nil {
		p.vals[k] = colog.IntVal(iv)
	} else if fv, err := strconv.ParseFloat(v, 64); err == nil {
		p.vals[k] = colog.FloatVal(fv)
	} else {
		p.vals[k] = colog.StringVal(v)
	}
	return nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cologne: "+format+"\n", args...)
	os.Exit(1)
}
