package main

import (
	"testing"

	"repro/internal/colog"
)

func TestParamFlagsSet(t *testing.T) {
	var p paramFlags
	if err := p.Set("max_migrates=3"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("cost_thres=1.5"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("region=us-east"); err != nil {
		t.Fatal(err)
	}
	if v := p.vals["max_migrates"]; v.Kind != colog.KindInt || v.I != 3 {
		t.Fatalf("int param = %v", v)
	}
	if v := p.vals["cost_thres"]; v.Kind != colog.KindFloat || v.F != 1.5 {
		t.Fatalf("float param = %v", v)
	}
	if v := p.vals["region"]; v.Kind != colog.KindString || v.S != "us-east" {
		t.Fatalf("string param = %v", v)
	}
}

func TestParamFlagsRejectsMalformed(t *testing.T) {
	var p paramFlags
	if err := p.Set("no-equals-sign"); err == nil {
		t.Fatal("malformed param accepted")
	}
}
