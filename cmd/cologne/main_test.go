package main

import (
	"flag"
	"net"
	"testing"

	"repro/internal/analysis"
	"repro/internal/colog"
)

func TestParamFlagsSet(t *testing.T) {
	var p paramFlags
	if err := p.Set("max_migrates=3"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("cost_thres=1.5"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("region=us-east"); err != nil {
		t.Fatal(err)
	}
	if v := p.vals["max_migrates"]; v.Kind != colog.KindInt || v.I != 3 {
		t.Fatalf("int param = %v", v)
	}
	if v := p.vals["cost_thres"]; v.Kind != colog.KindFloat || v.F != 1.5 {
		t.Fatalf("float param = %v", v)
	}
	if v := p.vals["region"]; v.Kind != colog.KindString || v.S != "us-east" {
		t.Fatalf("string param = %v", v)
	}
}

func TestParamFlagsRejectsMalformed(t *testing.T) {
	var p paramFlags
	if err := p.Set("no-equals-sign"); err == nil {
		t.Fatal("malformed param accepted")
	}
}

// TestSolverFlagsDocumented pins the solver flags the CLI must expose and
// document in -help: budgets and the restart/engine knobs.
func TestSolverFlagsDocumented(t *testing.T) {
	fs := flag.NewFlagSet("cologne", flag.ContinueOnError)
	registerFlags(fs)
	for _, name := range []string{
		"solver-max-time", "solver-max-nodes", "solver-restarts",
		"solver-engine", "solver-fixpoint",
	} {
		f := fs.Lookup(name)
		if f == nil {
			t.Fatalf("flag -%s not registered", name)
		}
		if f.Usage == "" {
			t.Fatalf("flag -%s has no help text", name)
		}
	}
}

// TestClusterFlagsDocumented pins the cluster flags the CLI must expose
// and document in -help (docs/tuning.md and docscheck rely on them).
func TestClusterFlagsDocumented(t *testing.T) {
	fs := flag.NewFlagSet("cologne", flag.ContinueOnError)
	registerFlags(fs)
	for _, name := range []string{
		"cluster-mode", "cluster-workers", "cluster-latency", "cluster-batch",
		"cluster-checkpoint-every", "cluster-resync",
	} {
		f := fs.Lookup(name)
		if f == nil {
			t.Fatalf("flag -%s not registered", name)
		}
		if f.Usage == "" {
			t.Fatalf("flag -%s has no help text", name)
		}
	}
}

// TestClusterModeValidation rejects unknown cluster modes.
func TestClusterModeValidation(t *testing.T) {
	fs := flag.NewFlagSet("cologne", flag.ContinueOnError)
	opts := registerFlags(fs)
	if err := fs.Parse([]string{"-cluster-mode", "carrier-pigeon"}); err != nil {
		t.Fatal(err)
	}
	if _, err := opts.config(); err == nil {
		t.Fatal("unknown cluster mode accepted")
	}
}

// TestClusterAddrs derives the node set from located facts.
func TestClusterAddrs(t *testing.T) {
	src := `
r1 echo(@Y,R) <- link(@X,Y), data(@X,R).
link("b","a").
link("a","b").
data("a",1).
`
	prog, err := colog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	addrs := clusterAddrs(res)
	if len(addrs) != 2 || addrs[0] != "a" || addrs[1] != "b" {
		t.Fatalf("clusterAddrs = %v, want [a b]", addrs)
	}
}

// TestSolverEngineFlagValues checks the engine flag round-trips to a Config.
func TestSolverEngineFlagValues(t *testing.T) {
	fs := flag.NewFlagSet("cologne", flag.ContinueOnError)
	opts := registerFlags(fs)
	if err := fs.Parse([]string{"-solver-engine", "legacy", "-solver-restarts", "2", "-solver-max-nodes", "99"}); err != nil {
		t.Fatal(err)
	}
	cfg, err := opts.config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SolverEngine != "legacy" || cfg.SolverRestarts != 2 || cfg.SolverMaxNodes != 99 {
		t.Fatalf("config = %+v", cfg)
	}
	fs2 := flag.NewFlagSet("cologne", flag.ContinueOnError)
	opts2 := registerFlags(fs2)
	if err := fs2.Parse([]string{"-solver-engine", "warp"}); err != nil {
		t.Fatal(err)
	}
	if _, err := opts2.config(); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestShardFlagsDocumented pins the sharding flags the CLI must expose and
// document in -help (docs/sharding.md and docscheck rely on them).
func TestShardFlagsDocumented(t *testing.T) {
	fs := flag.NewFlagSet("cologne", flag.ContinueOnError)
	registerFlags(fs)
	for _, name := range []string{"shard-count", "shard-agg", "shard-id", "shard-peers"} {
		f := fs.Lookup(name)
		if f == nil {
			t.Fatalf("flag -%s not registered", name)
		}
		if f.Usage == "" {
			t.Fatalf("flag -%s has no help text", name)
		}
	}
}

// TestShardFlagValidation rejects inconsistent sharding flag combinations.
func TestShardFlagValidation(t *testing.T) {
	for _, tc := range [][]string{
		{"-shard-agg", "telepathy"},
		{"-shard-count", "-1"},
		{"-shard-id", "2"},
		{"-shard-peers", "127.0.0.1:1,127.0.0.1:2", "-store", "disk"},
	} {
		fs := flag.NewFlagSet("cologne", flag.ContinueOnError)
		opts := registerFlags(fs)
		if err := fs.Parse(tc); err != nil {
			t.Fatal(err)
		}
		if _, err := opts.config(); err == nil {
			t.Fatalf("flags %v accepted", tc)
		}
	}
}

// TestRunShardProcessSingle drives the multi-process entry point with a
// single shard over a real loopback UDP endpoint: the barriers self-satisfy,
// facts load after the hello barrier, and the solve epoch completes a
// cluster rollup covering the whole (one-shard) deployment.
func TestRunShardProcessSingle(t *testing.T) {
	src := `
r1 echo(@Y,R) <- link(@X,Y), data(@X,R).
link("b","a").
link("a","b").
data("a",1).
`
	prog, err := colog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ep := c.LocalAddr().String()
	c.Close()

	fs := flag.NewFlagSet("cologne", flag.ContinueOnError)
	opts := registerFlags(fs)
	if err := fs.Parse([]string{"-solve", "-shard-peers", ep}); err != nil {
		t.Fatal(err)
	}
	cfg, err := opts.config()
	if err != nil {
		t.Fatal(err)
	}
	if err := runShardProcess(opts, res, cfg); err != nil {
		t.Fatal(err)
	}
}
