package main

import (
	"flag"
	"testing"

	"repro/internal/colog"
)

func TestParamFlagsSet(t *testing.T) {
	var p paramFlags
	if err := p.Set("max_migrates=3"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("cost_thres=1.5"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("region=us-east"); err != nil {
		t.Fatal(err)
	}
	if v := p.vals["max_migrates"]; v.Kind != colog.KindInt || v.I != 3 {
		t.Fatalf("int param = %v", v)
	}
	if v := p.vals["cost_thres"]; v.Kind != colog.KindFloat || v.F != 1.5 {
		t.Fatalf("float param = %v", v)
	}
	if v := p.vals["region"]; v.Kind != colog.KindString || v.S != "us-east" {
		t.Fatalf("string param = %v", v)
	}
}

func TestParamFlagsRejectsMalformed(t *testing.T) {
	var p paramFlags
	if err := p.Set("no-equals-sign"); err == nil {
		t.Fatal("malformed param accepted")
	}
}

// TestSolverFlagsDocumented pins the solver flags the CLI must expose and
// document in -help: budgets and the restart/engine knobs.
func TestSolverFlagsDocumented(t *testing.T) {
	fs := flag.NewFlagSet("cologne", flag.ContinueOnError)
	registerFlags(fs)
	for _, name := range []string{
		"solver-max-time", "solver-max-nodes", "solver-restarts",
		"solver-engine", "solver-fixpoint",
	} {
		f := fs.Lookup(name)
		if f == nil {
			t.Fatalf("flag -%s not registered", name)
		}
		if f.Usage == "" {
			t.Fatalf("flag -%s has no help text", name)
		}
	}
}

// TestSolverEngineFlagValues checks the engine flag round-trips to a Config.
func TestSolverEngineFlagValues(t *testing.T) {
	fs := flag.NewFlagSet("cologne", flag.ContinueOnError)
	opts := registerFlags(fs)
	if err := fs.Parse([]string{"-solver-engine", "legacy", "-solver-restarts", "2", "-solver-max-nodes", "99"}); err != nil {
		t.Fatal(err)
	}
	cfg, err := opts.config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SolverEngine != "legacy" || cfg.SolverRestarts != 2 || cfg.SolverMaxNodes != 99 {
		t.Fatalf("config = %+v", cfg)
	}
	fs2 := flag.NewFlagSet("cologne", flag.ContinueOnError)
	opts2 := registerFlags(fs2)
	if err := fs2.Parse([]string{"-solver-engine", "warp"}); err != nil {
		t.Fatal(err)
	}
	if _, err := opts2.config(); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
