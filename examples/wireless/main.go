// Wireless example: distributed channel selection in the paper's
// "implementation mode" — four mesh nodes in a line run Cologne instances
// that talk over real UDP sockets (not the simulator), negotiate channels
// link by link with the appendix A.3 program, and converge to an
// interference-free assignment.
//
//	go run ./examples/wireless
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/programs"
	"repro/internal/transport"
)

func main() {
	entry := programs.WirelessDistributed(5, true)
	ares := entry.Analyze()
	tr := transport.NewUDP()
	defer tr.Close()

	names := []string{"mesh0", "mesh1", "mesh2", "mesh3"} // a line topology
	nodes := map[string]*core.Node{}
	for _, name := range names {
		cfg := entry.Config
		cfg.SolverPropagate = true
		n, err := core.NewNode(name, ares, cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		nodes[name] = n
	}
	links := [][2]string{{"mesh0", "mesh1"}, {"mesh1", "mesh2"}, {"mesh2", "mesh3"}}
	for _, name := range names {
		n := nodes[name]
		for _, c := range []int64{1, 6, 11} {
			must(n.Insert("availChannel", colog.IntVal(c)))
		}
		must(n.Insert("numInterface", colog.StringVal(name), colog.IntVal(2)))
	}
	for _, l := range links {
		must(nodes[l[0]].Insert("link", colog.StringVal(l[0]), colog.StringVal(l[1])))
		must(nodes[l[1]].Insert("link", colog.StringVal(l[1]), colog.StringVal(l[0])))
	}
	// Channel 11 hosts a primary user around mesh1: its links must avoid it.
	must(nodes["mesh1"].Insert("primaryUser", colog.StringVal("mesh1"), colog.IntVal(11)))

	// Negotiate each link; the larger endpoint initiates (paper protocol).
	for _, l := range links {
		initiator, peer := l[1], l[0]
		n := nodes[initiator]
		must(n.Insert("setLink", colog.StringVal(initiator), colog.StringVal(peer)))
		res, err := n.Solve(core.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		must(n.Delete("setLink", colog.StringVal(initiator), colog.StringVal(peer)))
		fmt.Printf("negotiated %s-%s: status=%s cost=%.0f\n", l[0], l[1], res.Status, res.Objective)
		// Let the UDP datagrams (symmetry + neighborhood replication) land.
		time.Sleep(50 * time.Millisecond)
	}

	fmt.Println("final channel assignment:")
	for _, l := range links {
		n := nodes[l[0]]
		for _, row := range n.Rows("assign") {
			if row[0].S == l[0] && row[1].S == l[1] {
				fmt.Printf("  %s-%s on channel %s\n", l[0], l[1], row[2])
			}
		}
	}
	fmt.Println("adjacent links picked channels at least 5 apart; mesh1 avoided 11.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
