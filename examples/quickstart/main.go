// Quickstart: declare a tiny constraint optimization problem in Colog,
// solve it, and read the results — the smallest end-to-end tour of the
// Cologne platform (parse -> analyze -> ground -> solve -> materialize).
//
// The problem: assign three tasks to two workers, minimizing the standard
// deviation of worker load, with one worker capped at a single task.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/core"
)

const program = `
goal minimize C in loadStdev(C).
var assign(Task,Worker,V) forall candidate(Task,Worker).

// Every (task, worker) pair is a candidate placement.
r1 candidate(Task,Worker) <- task(Task,Cost), worker(Worker,Cap).

// Worker load is the sum of the costs of its assigned tasks.
d1 load(Worker,SUM<L>) <- assign(Task,Worker,V), task(Task,Cost), L==V*Cost.
d2 loadStdev(STDEV<L>) <- load(Worker,L2), worker(Worker,Cap), L==L2.

// Each task goes to exactly one worker.
d3 taskCount(Task,SUM<V>) <- assign(Task,Worker,V).
c1 taskCount(Task,V) -> V==1.

// No worker may exceed its task capacity.
d4 perWorker(Worker,SUM<V>) <- assign(Task,Worker,V).
c2 perWorker(Worker,N) -> worker(Worker,Cap), N<=Cap.

// Input data can live right in the program text.
task("ingest", 30).
task("transform", 20).
task("report", 10).
worker("alice", 1).
worker("bob", 3).
`

func main() {
	prog, err := colog.Parse(program)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	res, err := analysis.Analyze(prog, nil)
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	// One Cologne instance, no network: centralized mode.
	node, err := core.NewNode("local", res, core.Config{SolverPropagate: true}, nil)
	if err != nil {
		log.Fatalf("node: %v", err)
	}

	sres, err := node.Solve(core.SolveOptions{})
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	fmt.Printf("status:    %s\n", sres.Status)
	fmt.Printf("objective: %.3f (load standard deviation)\n", sres.Objective)
	fmt.Println("placement:")
	for _, a := range sres.Assignments {
		if a.Vals[2].I == 1 {
			fmt.Printf("  %-10s -> %s\n", a.Vals[0].S, a.Vals[1].S)
		}
	}
	// The optimization output is also materialized back into the engine's
	// tables, where downstream Colog rules (or plain reads) can use it.
	fmt.Println("materialized load table:")
	for _, row := range node.Rows("assign") {
		if row[2].I == 1 {
			fmt.Printf("  assign(%s,%s,1)\n", row[0].S, row[1].S)
		}
	}
}
