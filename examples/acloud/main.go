// ACloud example: run the paper's section 4.2 load-balancing COP on a small
// cloud — ten VMs on three hosts — first unconstrained, then with the
// migration cap of the ACloud(M) policy, showing how a two-rule policy
// change alters the optimization (the customizability argument of the
// paper).
//
//	go run ./examples/acloud
package main

import (
	"fmt"
	"log"

	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/programs"
)

func main() {
	fmt.Println("== ACloud: unconstrained load balancing ==")
	run(programs.ACloud(false, 0), false)
	fmt.Println()
	fmt.Println("== ACloud(M): at most 2 migrations ==")
	run(programs.ACloud(true, 2), true)
}

func run(entry programs.Entry, withOrigin bool) {
	cfg := entry.Config
	cfg.SolverPropagate = true
	node, err := core.NewNode("cloud", entry.Analyze(), cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	hosts := []string{"h0", "h1", "h2"}
	for _, h := range hosts {
		must(node.Insert("host", colog.StringVal(h), colog.IntVal(0), colog.IntVal(0)))
		must(node.Insert("hostMemThres", colog.StringVal(h), colog.IntVal(16384)))
	}
	// Ten VMs, all currently packed onto h0 — a badly imbalanced start.
	cpus := []int64{95, 85, 75, 70, 60, 55, 45, 40, 35, 25}
	for i, cpu := range cpus {
		vm := fmt.Sprintf("vm%d", i)
		must(node.Insert("vmRaw", colog.StringVal(vm), colog.IntVal(cpu), colog.IntVal(1024)))
		if withOrigin {
			must(node.Insert("origin", colog.StringVal(vm), colog.StringVal("h0")))
		}
	}

	sres, err := node.Solve(core.SolveOptions{
		// Warm-start every VM on its current host.
		Hint: func(pred string, vals []colog.Value) (int64, bool) {
			if vals[1].S == "h0" {
				return 1, true
			}
			return 0, true
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status=%s  CPU stddev=%.2f  searched %d nodes\n",
		sres.Status, sres.Objective, sres.Stats.Nodes)

	loads := map[string]int64{}
	migrations := 0
	for _, a := range sres.Assignments {
		if a.Vals[2].I != 1 {
			continue
		}
		host := a.Vals[1].S
		vmIdx := 0
		fmt.Sscanf(a.Vals[0].S, "vm%d", &vmIdx)
		loads[host] += cpus[vmIdx]
		if host != "h0" {
			migrations++
		}
	}
	for _, h := range hosts {
		fmt.Printf("  %s: total CPU %3d%%\n", h, loads[h])
	}
	fmt.Printf("  migrations away from h0: %d\n", migrations)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
