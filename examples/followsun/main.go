// Follow-the-Sun example: two Cologne instances — data centers "west" and
// "east" — negotiate a VM migration over a real transport using the
// distributed Colog program of section 4.3. The demand sits near east, so
// the optimizer moves VMs there, bounded by east's capacity; both nodes'
// curVm tables are updated through the network by rules r2/r3.
//
//	go run ./examples/followsun
package main

import (
	"fmt"
	"log"

	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/programs"
	"repro/internal/transport"
)

func main() {
	entry := programs.FollowSunDistributed(1 << 20)
	ares := entry.Analyze()
	tr := transport.NewLoopback()

	mkNode := func(name string) *core.Node {
		cfg := entry.Config
		cfg.SolverPropagate = true
		n, err := core.NewNode(name, ares, cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	west := mkNode("west")
	east := mkNode("east")

	// Shared facts: the migration range, the inter-DC link, demand site "d".
	for _, n := range []*core.Node{west, east} {
		for v := int64(-8); v <= 8; v++ {
			must(n.Insert("migRange", colog.IntVal(v)))
		}
		must(n.Insert("dc", colog.StringVal(n.Addr), colog.StringVal("d")))
		must(n.Insert("opCost", colog.StringVal(n.Addr), colog.IntVal(10)))
	}
	must(west.Insert("link", colog.StringVal("west"), colog.StringVal("east")))
	must(east.Insert("link", colog.StringVal("east"), colog.StringVal("west")))
	must(west.Insert("migCost", colog.StringVal("west"), colog.StringVal("east"), colog.IntVal(2)))
	must(east.Insert("migCost", colog.StringVal("east"), colog.StringVal("west"), colog.IntVal(2)))

	// The workload: 8 VMs at west, demand served cheaply from east.
	must(west.Insert("curVm", colog.StringVal("west"), colog.StringVal("d"), colog.IntVal(8)))
	must(east.Insert("curVm", colog.StringVal("east"), colog.StringVal("d"), colog.IntVal(0)))
	must(west.Insert("commCost", colog.StringVal("west"), colog.StringVal("d"), colog.IntVal(90)))
	must(east.Insert("commCost", colog.StringVal("east"), colog.StringVal("d"), colog.IntVal(5)))
	must(west.Insert("resource", colog.StringVal("west"), colog.IntVal(20)))
	must(east.Insert("resource", colog.StringVal("east"), colog.IntVal(5)))

	show := func(stage string) {
		fmt.Printf("%s:\n", stage)
		for _, n := range []*core.Node{west, east} {
			for _, row := range n.Rows("curVm") {
				if row[0].S == n.Addr {
					fmt.Printf("  curVm(%s, %s) = %s VMs\n", row[0].S, row[1].S, row[2])
				}
			}
		}
	}
	show("before negotiation")

	// West initiates the link negotiation and runs its local COP; the
	// migration decision propagates to east through rules r2/r3.
	must(west.Insert("setLink", colog.StringVal("west"), colog.StringVal("east")))
	res, err := west.Solve(core.SolveOptions{
		Hint: func(string, []colog.Value) (int64, bool) { return 0, true },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("negotiation: status=%s local objective=%.0f\n", res.Status, res.Objective)
	for _, a := range res.Assignments {
		fmt.Printf("  migVm(%s -> %s, demand %s) = %s VMs\n",
			a.Vals[0].S, a.Vals[1].S, a.Vals[2].S, a.Vals[3])
	}
	show("after negotiation")
	fmt.Println("east's capacity (5) bounds the migration despite demand for all 8.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
