package repro

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"
)

// readAllocBudget parses ground_alloc_budget.txt: comment lines start with
// '#', the first remaining line is the B/op ceiling.
func readAllocBudget(t *testing.T) int64 {
	t.Helper()
	f, err := os.Open("ground_alloc_budget.txt")
	if err != nil {
		t.Fatalf("alloc budget file: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			t.Fatalf("alloc budget file: bad line %q: %v", line, err)
		}
		return n
	}
	t.Fatal("alloc budget file: no budget line")
	return 0
}

// TestGroundAllocBudget is the allocation-regression gate for the streaming
// grounding path: it benchmarks BenchmarkGroundPeakAlloc/streaming in-process
// and fails if B/op exceeds the ceiling committed in ground_alloc_budget.txt.
// A failure means a change re-introduced per-row garbage on the grounding
// join path (a row lift, a transient index, an unpooled frame); either
// remove the allocation or consciously raise the budget in the same commit.
func TestGroundAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation sizes")
	}
	if testing.Short() {
		t.Skip("benchmark-backed gate")
	}
	budget := readAllocBudget(t)
	res := testing.Benchmark(groundPeakAllocBench("streaming"))
	if got := res.AllocedBytesPerOp(); got > budget {
		t.Fatalf("streaming grounding allocates %d B/op, budget is %d B/op (ground_alloc_budget.txt)", got, budget)
	} else {
		t.Logf("streaming grounding: %d B/op within budget %d B/op", got, budget)
	}
}
