package solver

import "math"

// BruteForce exhaustively enumerates the full Cartesian product of the
// variable domains and returns the optimal solution. It is exponential and
// intended for small models only: reference results in tests, and exact
// baselines in the benchmark harness where the paper reports "optimal".
func (m *Model) BruteForce() *Solution {
	sol := &Solution{Status: StatusInfeasible}
	n := len(m.vars)
	assign := make([]int64, n)
	bestObj := math.Inf(1)
	if m.sense == Maximize {
		bestObj = math.Inf(-1)
	}
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			sol.Stats.Nodes++
			for _, c := range m.constraints {
				if !c.EvalBool(assign) {
					return
				}
			}
			obj := 0.0
			if m.objective != nil {
				obj = m.objective.Eval(assign)
			}
			better := sol.Status == StatusInfeasible
			if !better && m.objective != nil {
				const eps = 1e-9
				if m.sense == Minimize {
					better = obj < bestObj-eps
				} else {
					better = obj > bestObj+eps
				}
			}
			if better {
				bestObj = obj
				sol.Objective = obj
				sol.Values = append([]int64(nil), assign...)
				sol.Status = StatusOptimal
				sol.Stats.Solutions++
			}
			return
		}
		for _, v := range m.vars[i].Dom.Values() {
			assign[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return sol
}
