package solver

import "math"

// BruteForce exhaustively enumerates the full Cartesian product of the
// variable domains and returns the optimal solution. It is exponential and
// intended for small models only: reference results in tests, and exact
// baselines in the benchmark harness where the paper reports "optimal".
// The iteration order is the shared lexicographic walker, so ties resolve
// the same way as in Enumerate.
func (m *Model) BruteForce() *Solution {
	sol := &Solution{Status: StatusInfeasible}
	bestObj := math.Inf(1)
	if m.sense == Maximize {
		bestObj = math.Inf(-1)
	}
	w := &walker{
		vars:   m.vars,
		assign: make([]int64, len(m.vars)),
		leaf: func(assign []int64) bool {
			sol.Stats.Nodes++
			for _, c := range m.constraints {
				if !c.EvalBool(assign) {
					return true
				}
			}
			obj := 0.0
			if m.objective != nil {
				obj = m.objective.Eval(assign)
			}
			better := sol.Status == StatusInfeasible
			if !better && m.objective != nil {
				const eps = 1e-9
				if m.sense == Minimize {
					better = obj < bestObj-eps
				} else {
					better = obj > bestObj+eps
				}
			}
			if better {
				bestObj = obj
				sol.Objective = obj
				sol.Values = append([]int64(nil), assign...)
				sol.Status = StatusOptimal
				sol.Stats.Solutions++
			}
			return true
		},
	}
	w.rec(0)
	return sol
}
