package solver

import (
	"fmt"
	"math"
	"strings"
)

// Op identifies an expression node kind. Numeric operators produce numeric
// values; comparison and logical operators produce booleans (represented as
// 0/1 in evaluation, with a distinct static type for error checking).
type Op int

const (
	// OpConst is a numeric literal.
	OpConst Op = iota
	// OpVar references a decision variable.
	OpVar
	// OpAdd, OpSub, OpMul, OpDiv are binary arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	// OpNeg is unary negation, OpAbs absolute value.
	OpNeg
	OpAbs
	// OpMin and OpMax are n-ary minimum/maximum.
	OpMin
	OpMax
	// OpSum is n-ary addition (the SUM aggregate), OpSumAbs sums absolute
	// values (the SUMABS aggregate), OpAvg the mean, OpStdDev the population
	// standard deviation (the STDEV aggregate), OpCountDistinct the number
	// of distinct argument values (the UNIQUE aggregate).
	OpSum
	OpSumAbs
	OpAvg
	OpStdDev
	OpCountDistinct
	// Comparisons: numeric x numeric -> bool.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// Logical connectives: bool x bool -> bool.
	OpAnd
	OpOr
	OpNot
	OpXor
	// OpBoolEq reifies equivalence between two booleans (the Colog idiom
	// (V==1)==(C==1)).
	OpBoolEq
	// OpITE is if-then-else: ITE(cond, a, b) with cond boolean.
	OpITE
)

var opNames = map[Op]string{
	OpConst: "const", OpVar: "var", OpAdd: "+", OpSub: "-", OpMul: "*",
	OpDiv: "/", OpNeg: "neg", OpAbs: "abs", OpMin: "min", OpMax: "max",
	OpSum: "sum", OpSumAbs: "sumabs", OpAvg: "avg", OpStdDev: "stdev",
	OpCountDistinct: "unique", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAnd: "&&", OpOr: "||", OpNot: "!", OpXor: "^",
	OpBoolEq: "<=>", OpITE: "ite",
}

// String returns the operator's surface syntax.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsBool reports whether the operator produces a boolean.
func (o Op) IsBool() bool {
	switch o {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr, OpNot, OpXor, OpBoolEq:
		return true
	}
	return false
}

// Expr is a node in a model's shared expression DAG. Nodes are created
// through Model constructor methods, which assign each node a dense ID used
// by the evaluator's memo tables. Expressions are immutable after creation.
type Expr struct {
	ID    int
	Op    Op
	K     float64 // literal value for OpConst
	Var   *Var    // referenced variable for OpVar
	Args  []*Expr
	model *Model
}

// IsBool reports whether the expression has boolean type.
func (e *Expr) IsBool() bool { return e.Op.IsBool() }

// IsConst reports whether the expression is a literal.
func (e *Expr) IsConst() bool { return e.Op == OpConst }

// String renders the expression in infix form, useful in diagnostics and in
// the code generator.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

func (e *Expr) write(b *strings.Builder) {
	switch e.Op {
	case OpConst:
		if e.K == math.Trunc(e.K) && math.Abs(e.K) < 1e15 {
			fmt.Fprintf(b, "%d", int64(e.K))
		} else {
			fmt.Fprintf(b, "%g", e.K)
		}
	case OpVar:
		b.WriteString(e.Var.Name)
	case OpAdd, OpSub, OpMul, OpDiv, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr, OpXor, OpBoolEq:
		b.WriteByte('(')
		e.Args[0].write(b)
		b.WriteString(e.Op.String())
		e.Args[1].write(b)
		b.WriteByte(')')
	case OpNeg:
		b.WriteString("(-")
		e.Args[0].write(b)
		b.WriteByte(')')
	case OpNot:
		b.WriteString("(!")
		e.Args[0].write(b)
		b.WriteByte(')')
	case OpAbs:
		b.WriteByte('|')
		e.Args[0].write(b)
		b.WriteByte('|')
	default:
		b.WriteString(e.Op.String())
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			a.write(b)
		}
		b.WriteByte(')')
	}
}

// Eval computes the expression value under a complete assignment (indexed by
// variable ID). Booleans evaluate to 0 or 1.
func (e *Expr) Eval(assign []int64) float64 {
	switch e.Op {
	case OpConst:
		return e.K
	case OpVar:
		return float64(assign[e.Var.ID])
	case OpAdd:
		return e.Args[0].Eval(assign) + e.Args[1].Eval(assign)
	case OpSub:
		return e.Args[0].Eval(assign) - e.Args[1].Eval(assign)
	case OpMul:
		return e.Args[0].Eval(assign) * e.Args[1].Eval(assign)
	case OpDiv:
		return e.Args[0].Eval(assign) / e.Args[1].Eval(assign)
	case OpNeg:
		return -e.Args[0].Eval(assign)
	case OpAbs:
		return math.Abs(e.Args[0].Eval(assign))
	case OpMin:
		v := math.Inf(1)
		for _, a := range e.Args {
			v = math.Min(v, a.Eval(assign))
		}
		return v
	case OpMax:
		v := math.Inf(-1)
		for _, a := range e.Args {
			v = math.Max(v, a.Eval(assign))
		}
		return v
	case OpSum:
		v := 0.0
		for _, a := range e.Args {
			v += a.Eval(assign)
		}
		return v
	case OpSumAbs:
		v := 0.0
		for _, a := range e.Args {
			v += math.Abs(a.Eval(assign))
		}
		return v
	case OpAvg:
		if len(e.Args) == 0 {
			return 0
		}
		v := 0.0
		for _, a := range e.Args {
			v += a.Eval(assign)
		}
		return v / float64(len(e.Args))
	case OpStdDev:
		return stddev(e.Args, assign)
	case OpCountDistinct:
		seen := make(map[float64]struct{}, len(e.Args))
		for _, a := range e.Args {
			seen[a.Eval(assign)] = struct{}{}
		}
		return float64(len(seen))
	case OpEq:
		return b2f(e.Args[0].Eval(assign) == e.Args[1].Eval(assign))
	case OpNe:
		return b2f(e.Args[0].Eval(assign) != e.Args[1].Eval(assign))
	case OpLt:
		return b2f(e.Args[0].Eval(assign) < e.Args[1].Eval(assign))
	case OpLe:
		return b2f(e.Args[0].Eval(assign) <= e.Args[1].Eval(assign))
	case OpGt:
		return b2f(e.Args[0].Eval(assign) > e.Args[1].Eval(assign))
	case OpGe:
		return b2f(e.Args[0].Eval(assign) >= e.Args[1].Eval(assign))
	case OpAnd:
		return b2f(e.Args[0].Eval(assign) > 0.5 && e.Args[1].Eval(assign) > 0.5)
	case OpOr:
		return b2f(e.Args[0].Eval(assign) > 0.5 || e.Args[1].Eval(assign) > 0.5)
	case OpNot:
		return b2f(e.Args[0].Eval(assign) <= 0.5)
	case OpXor:
		return b2f((e.Args[0].Eval(assign) > 0.5) != (e.Args[1].Eval(assign) > 0.5))
	case OpBoolEq:
		return b2f((e.Args[0].Eval(assign) > 0.5) == (e.Args[1].Eval(assign) > 0.5))
	case OpITE:
		if e.Args[0].Eval(assign) > 0.5 {
			return e.Args[1].Eval(assign)
		}
		return e.Args[2].Eval(assign)
	}
	panic(fmt.Sprintf("solver: Eval on unknown op %v", e.Op))
}

// EvalBool evaluates a boolean expression under a complete assignment.
func (e *Expr) EvalBool(assign []int64) bool { return e.Eval(assign) > 0.5 }

// Vars appends the IDs of all variables referenced by the expression
// (with duplicates) to dst and returns the result.
func (e *Expr) Vars(dst []int) []int {
	if e.Op == OpVar {
		return append(dst, e.Var.ID)
	}
	for _, a := range e.Args {
		dst = a.Vars(dst)
	}
	return dst
}

func stddev(args []*Expr, assign []int64) float64 {
	n := float64(len(args))
	if n == 0 {
		return 0
	}
	sum, sumsq := 0.0, 0.0
	for _, a := range args {
		v := a.Eval(assign)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 { // numeric noise
		variance = 0
	}
	return math.Sqrt(variance)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
