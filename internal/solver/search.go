package solver

import (
	"math"
	"sort"
	"time"
)

// searcher runs depth-first branch-and-bound over the model's variables.
type searcher struct {
	m    *Model
	opts Options
	ev   *evaluator

	order   []int   // variable IDs in branching order
	pos     []int   // inverse of order
	varCons [][]int // variable ID -> indices of constraints mentioning it
	lp      *linearProps

	assigned []bool
	assign   []int64
	trail    []trailEntry

	best    []int64
	bestObj float64
	haveSol bool

	stats    Stats
	deadline time.Time
	stopped  bool
}

type trailEntry struct {
	varID int
	dom   Domain
}

// Solve searches for an assignment satisfying all constraints and, if an
// objective is set, optimizing it. The search is anytime: on budget
// exhaustion the best incumbent found so far is returned with
// StatusFeasible.
func (m *Model) Solve(opts Options) *Solution {
	start := time.Now()
	s := &searcher{
		m:        m,
		opts:     opts,
		ev:       newEvaluator(m),
		assigned: make([]bool, len(m.vars)),
		assign:   make([]int64, len(m.vars)),
		bestObj:  math.Inf(1),
	}
	if m.sense == Maximize {
		s.bestObj = math.Inf(-1)
	}
	if opts.MaxTime > 0 {
		s.deadline = start.Add(opts.MaxTime)
	}
	s.buildIndexes()
	if !opts.DisableLinear {
		s.lp = buildLinearProps(m)
	}

	sol := &Solution{Status: StatusUnknown}
	defer func() {
		s.stats.Elapsed = time.Since(start)
		sol.Stats = s.stats
	}()

	if len(m.vars) == 0 {
		// Degenerate model: only constant constraints and objective.
		s.ev.nextGen()
		for _, c := range m.constraints {
			if s.ev.interval(c).False() {
				sol.Status = StatusInfeasible
				return sol
			}
		}
		sol.Status = StatusOptimal
		sol.Values = []int64{}
		if m.objective != nil {
			sol.Objective = m.objective.Eval(nil)
		}
		return sol
	}

	// Root-level consistency check.
	s.ev.nextGen()
	for _, c := range m.constraints {
		if s.ev.interval(c).False() {
			sol.Status = StatusInfeasible
			return sol
		}
	}

	complete := s.dfs(0)

	switch {
	case s.haveSol && complete:
		sol.Status = StatusOptimal
	case s.haveSol:
		sol.Status = StatusFeasible
	case complete:
		sol.Status = StatusInfeasible
	default:
		sol.Status = StatusUnknown
	}
	if s.haveSol {
		sol.Values = s.best
		if m.objective != nil {
			sol.Objective = s.bestObj
		}
	}
	return sol
}

func (s *searcher) buildIndexes() {
	m := s.m
	// Branching order: most-constrained variables (smallest domains) first,
	// breaking ties by creation order, which in Cologne groups variables of
	// the same grounded table together.
	s.order = make([]int, len(m.vars))
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		da, db := m.vars[s.order[a]].Dom.Size(), m.vars[s.order[b]].Dom.Size()
		if da != db {
			return da < db
		}
		return s.order[a] < s.order[b]
	})
	s.pos = make([]int, len(m.vars))
	for i, id := range s.order {
		s.pos[id] = i
	}
	s.varCons = make([][]int, len(m.vars))
	scratch := make([]int, 0, 16)
	for ci, c := range m.constraints {
		scratch = c.Vars(scratch[:0])
		seen := make(map[int]struct{}, len(scratch))
		for _, vid := range scratch {
			if _, ok := seen[vid]; ok {
				continue
			}
			seen[vid] = struct{}{}
			s.varCons[vid] = append(s.varCons[vid], ci)
		}
	}
}

// dfs explores from branching-order position depth. It returns true when the
// subtree was exhausted (search space fully explored), false when the search
// was cut short by a budget.
func (s *searcher) dfs(depth int) bool {
	if s.checkBudget() {
		return false
	}
	if depth == len(s.order) {
		s.recordSolution()
		return true
	}
	vid := s.order[depth]
	if s.opts.DynamicOrder {
		// dom heuristic: branch on the unassigned variable with the
		// smallest current domain. Swap it into this depth's slot so the
		// recursion and undo logic are unchanged.
		best := depth
		for i := depth + 1; i < len(s.order); i++ {
			if s.assigned[s.order[i]] {
				continue
			}
			if s.assigned[s.order[best]] ||
				s.ev.dom[s.order[i]].Size() < s.ev.dom[s.order[best]].Size() {
				best = i
			}
		}
		if best != depth {
			s.order[depth], s.order[best] = s.order[best], s.order[depth]
			defer func() { s.order[depth], s.order[best] = s.order[best], s.order[depth] }()
		}
		vid = s.order[depth]
	}
	v := s.m.vars[vid]
	complete := true
	for _, val := range s.candidateValues(v) {
		if s.checkBudget() {
			return false
		}
		s.stats.Nodes++
		mark := len(s.trail)
		s.setVar(vid, val)
		ok := true
		if s.lp != nil {
			ok = s.lp.propagate(s, vid)
		}
		ok = ok && s.consistentAfter(vid) && s.boundOK()
		if ok && s.opts.Propagate {
			ok = s.forwardCheck(vid)
		}
		if ok {
			if !s.dfs(depth + 1) {
				complete = false
			}
			if s.opts.FirstSolution && s.haveSol {
				s.stopped = true
				s.undo(mark)
				return false
			}
			if s.m.sense == Satisfy && s.haveSol {
				// One solution suffices for satisfy problems; the subtree
				// counts as explored so the result is reported optimal.
				s.undo(mark)
				return complete
			}
		} else {
			s.stats.Failures++
		}
		s.undo(mark)
		if s.stopped {
			return false
		}
	}
	return complete
}

// candidateValues returns the values to branch on for v, hint first.
func (s *searcher) candidateValues(v *Var) []int64 {
	dom := s.ev.dom[v.ID]
	vals := dom.Values()
	hint, hasHint := int64(0), false
	if s.opts.Hints != nil {
		if h, ok := s.opts.Hints[v.ID]; ok && dom.Contains(h) {
			hint, hasHint = h, true
		}
	}
	if !hasHint && s.opts.ValueOrder == nil {
		return vals
	}
	ordered := make([]int64, 0, len(vals))
	if hasHint {
		ordered = append(ordered, hint)
	}
	for _, val := range vals {
		if hasHint && val == hint {
			continue
		}
		ordered = append(ordered, val)
	}
	if s.opts.ValueOrder != nil {
		ordered = s.opts.ValueOrder(v, ordered)
	}
	return ordered
}

func (s *searcher) setVar(vid int, val int64) {
	s.trail = append(s.trail, trailEntry{vid, s.ev.dom[vid]})
	s.ev.dom[vid] = NewDomain(val)
	s.assigned[vid] = true
	s.assign[vid] = val
	s.ev.nextGen()
}

func (s *searcher) narrowVar(vid int, d Domain) {
	s.trail = append(s.trail, trailEntry{vid, s.ev.dom[vid]})
	s.ev.dom[vid] = d
	s.ev.nextGen()
}

func (s *searcher) undo(mark int) {
	for len(s.trail) > mark {
		e := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.ev.dom[e.varID] = e.dom
		if e.dom.Size() > 1 {
			s.assigned[e.varID] = false
		}
	}
	s.ev.nextGen()
}

// consistentAfter checks every constraint touching vid for definite
// violation under current bounds.
func (s *searcher) consistentAfter(vid int) bool {
	for _, ci := range s.varCons[vid] {
		if s.ev.interval(s.m.constraints[ci]).False() {
			return false
		}
	}
	return true
}

// boundOK applies the branch-and-bound objective cut.
func (s *searcher) boundOK() bool {
	if s.m.objective == nil || !s.haveSol {
		return true
	}
	iv := s.ev.interval(s.m.objective)
	const eps = 1e-9
	if s.m.sense == Minimize {
		return iv.Lo < s.bestObj-eps
	}
	return iv.Hi > s.bestObj+eps
}

// forwardCheck prunes domains of unassigned variables that appear in
// constraints where they are the last free variable; if a domain becomes a
// singleton the value is committed, if it empties the branch fails.
func (s *searcher) forwardCheck(vid int) bool {
	for _, ci := range s.varCons[vid] {
		c := s.m.constraints[ci]
		free := -1
		nFree := 0
		for _, w := range c.Vars(nil) {
			if !s.assigned[w] {
				if free != w {
					if free != -1 {
						nFree = 2
						break
					}
					free = w
					nFree = 1
				}
			}
		}
		if nFree != 1 {
			continue
		}
		dom := s.ev.dom[free]
		keep := make([]int64, 0, dom.Size())
		for _, val := range dom.Values() {
			s.narrowVar(free, NewDomain(val))
			violated := s.ev.interval(c).False()
			// Restore just this narrowing.
			e := s.trail[len(s.trail)-1]
			s.trail = s.trail[:len(s.trail)-1]
			s.ev.dom[e.varID] = e.dom
			s.ev.nextGen()
			if !violated {
				keep = append(keep, val)
			}
		}
		if len(keep) == 0 {
			return false
		}
		if len(keep) < dom.Size() {
			s.narrowVar(free, NewDomain(keep...))
			if len(keep) == 1 {
				s.assigned[free] = true
				s.assign[free] = keep[0]
			}
		}
	}
	return true
}

func (s *searcher) recordSolution() {
	// All variables are fixed here; verify constraints exactly (intervals on
	// fully fixed DAGs are exact, but a model may have constraints over no
	// variables at all).
	vals := make([]int64, len(s.m.vars))
	for i := range vals {
		vals[i] = s.ev.dom[i].Min()
	}
	for _, c := range s.m.constraints {
		if !c.EvalBool(vals) {
			return
		}
	}
	obj := 0.0
	if s.m.objective != nil {
		obj = s.m.objective.Eval(vals)
		const eps = 1e-9
		if s.haveSol {
			if s.m.sense == Minimize && obj >= s.bestObj-eps {
				return
			}
			if s.m.sense == Maximize && obj <= s.bestObj+eps {
				return
			}
		}
	} else if s.haveSol {
		return
	}
	s.best = vals
	s.bestObj = obj
	s.haveSol = true
	s.stats.Solutions++
}

// checkBudget returns true when the search must stop.
func (s *searcher) checkBudget() bool {
	if s.stopped {
		return true
	}
	if s.opts.MaxNodes > 0 && s.stats.Nodes >= s.opts.MaxNodes {
		s.stopped = true
		return true
	}
	if !s.deadline.IsZero() && s.stats.Nodes&0xFF == 0 && time.Now().After(s.deadline) {
		s.stopped = true
		return true
	}
	return false
}
