package solver

import (
	"math"
	"sort"
	"time"
)

// searchState holds the engine-independent part of one search: the incumbent,
// the assignment scratch, phase memory, and the node/time budget. Both the
// event-driven propagation engine (propagate.go) and the legacy
// forward-checking searcher embed it.
type searchState struct {
	m    *Model
	opts Options

	assigned []bool
	assign   []int64
	phase    []int64 // last value branched on per variable (phase saving)
	hasPhase []bool

	best    []int64
	bestObj float64
	haveSol bool

	activity []float64 // per-variable conflict activity (activity ordering)
	actInc   float64

	// Dense warm-start hints (hintSet[vid] -> hintVal[vid]), resolved once
	// from Options.Hints so the per-node candidate ordering does no map
	// lookups, plus per-depth candidate-order scratch reused across sibling
	// nodes (a fresh slice per node dominated hinted-search overhead).
	hintVal []int64
	hintSet []bool
	valBufs [][]int64

	stats       Stats
	deadline    time.Time
	stopped     bool
	interrupted bool // Options.Interrupt fired (anytime stop)
}

func newSearchState(m *Model, opts Options, start time.Time) *searchState {
	s := &searchState{
		m:        m,
		opts:     opts,
		assigned: make([]bool, len(m.vars)),
		assign:   make([]int64, len(m.vars)),
		phase:    make([]int64, len(m.vars)),
		hasPhase: make([]bool, len(m.vars)),
		bestObj:  math.Inf(1),
	}
	if m.sense == Maximize {
		s.bestObj = math.Inf(-1)
	}
	if opts.MaxTime > 0 {
		s.deadline = start.Add(opts.MaxTime)
	}
	if len(opts.Hints) > 0 {
		s.hintVal = make([]int64, len(m.vars))
		s.hintSet = make([]bool, len(m.vars))
		for vid, val := range opts.Hints {
			if vid >= 0 && vid < len(m.vars) {
				s.hintVal[vid] = val
				s.hintSet[vid] = true
			}
		}
	}
	return s
}

// checkBudget returns true when the search must stop.
func (s *searchState) checkBudget() bool {
	if s.stopped {
		return true
	}
	if s.opts.MaxNodes > 0 && s.stats.Nodes >= s.opts.MaxNodes {
		s.stopped = true
		return true
	}
	if s.stats.Nodes&0xFF == 0 {
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.stopped = true
			return true
		}
		if s.opts.Interrupt != nil && s.opts.Interrupt() {
			s.stopped = true
			s.interrupted = true
			return true
		}
	}
	return false
}

// candidateValues returns the values to branch on for v given its current
// domain, hint first. depth selects the reusable ordering buffer: siblings
// at one depth share it, recursion below uses deeper ones, so the reordered
// list stays valid for the whole branching loop without allocating.
//
// Hints steer only the descent to the first incumbent: that descent is the
// warm-start dive (it reproduces the hinted placement when feasible, and
// backtracks past infeasible hint values). Once an incumbent exists the
// search reverts to plain domain order — the hint's information survives in
// the bound cut, and the per-node reordering cost drops to zero.
func (s *searchState) candidateValues(dom Domain, v *Var, depth int) []int64 {
	vals := dom.Values()
	hint, hasHint := int64(0), false
	if s.hintSet != nil && !s.haveSol && s.hintSet[v.ID] {
		if h := s.hintVal[v.ID]; dom.Contains(h) {
			hint, hasHint = h, true
		}
	}
	if !hasHint && s.opts.ValueOrder == nil {
		return vals
	}
	for len(s.valBufs) <= depth {
		s.valBufs = append(s.valBufs, nil)
	}
	ordered := s.valBufs[depth][:0]
	if hasHint {
		ordered = append(ordered, hint)
	}
	for _, val := range vals {
		if hasHint && val == hint {
			continue
		}
		ordered = append(ordered, val)
	}
	s.valBufs[depth] = ordered
	if s.opts.ValueOrder != nil {
		ordered = s.opts.ValueOrder(v, ordered)
	}
	return ordered
}

// record considers a complete assignment as a new incumbent: constraints are
// verified exactly, and the incumbent is replaced only on strict objective
// improvement (so traversal order fully determines the returned solution).
func (s *searchState) record(vals []int64) {
	for _, c := range s.m.constraints {
		if !c.EvalBool(vals) {
			return
		}
	}
	obj := 0.0
	if s.m.objective != nil {
		obj = s.m.objective.Eval(vals)
		const eps = 1e-9
		if s.haveSol {
			if s.m.sense == Minimize && obj >= s.bestObj-eps {
				return
			}
			if s.m.sense == Maximize && obj <= s.bestObj+eps {
				return
			}
		}
	} else if s.haveSol {
		return
	}
	s.best = vals
	s.bestObj = obj
	s.haveSol = true
	s.stats.Solutions++
	if s.opts.OnIncumbent != nil {
		snap := make([]int64, len(vals))
		copy(snap, vals)
		s.opts.OnIncumbent(obj, snap)
	}
}

// boundCut applies the branch-and-bound objective cut given the objective's
// current bounds.
func (s *searchState) boundCut(iv Interval) bool {
	const eps = 1e-9
	if s.m.sense == Minimize {
		return iv.Lo < s.bestObj-eps
	}
	return iv.Hi > s.bestObj+eps
}

// notePhase records the value branched on for phase saving.
func (s *searchState) notePhase(vid int, val int64) {
	s.phase[vid] = val
	s.hasPhase[vid] = true
}

// bumpActivity raises the conflict activity of a variable (MiniSat-style
// geometric bumping: the increment grows so recent conflicts dominate).
func (s *searchState) bumpActivity(vid int) {
	if s.activity == nil {
		return
	}
	s.activity[vid] += s.actInc
	if s.activity[vid] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.actInc *= 1e-100
	}
}

func (s *searchState) decayActivity() {
	if s.activity != nil {
		s.actInc /= activityDecay
	}
}

const activityDecay = 0.95

// finish assembles the Solution from the search outcome. complete reports
// whether the search space was exhausted.
func (s *searchState) finish(sol *Solution, complete bool) {
	switch {
	case s.haveSol && complete:
		sol.Status = StatusOptimal
	case s.haveSol:
		sol.Status = StatusFeasible
	case complete:
		sol.Status = StatusInfeasible
	default:
		sol.Status = StatusUnknown
	}
	if s.haveSol {
		sol.Values = s.best
		if s.m.objective != nil {
			sol.Objective = s.bestObj
		}
	}
}

// staticOrder returns the branching order used by both engines:
// most-constrained variables (smallest root domains) first, breaking ties by
// creation order, which in Cologne groups variables of the same grounded
// table together.
func staticOrder(m *Model) []int {
	order := make([]int, len(m.vars))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := m.vars[order[a]].Dom.Size(), m.vars[order[b]].Dom.Size()
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	return order
}

// Solve searches for an assignment satisfying all constraints and, if an
// objective is set, optimizing it. The search is anytime: on budget
// exhaustion the best incumbent found so far is returned with
// StatusFeasible.
//
// The default search core is the event-driven propagation engine
// (propagate.go); Options.Engine selects the legacy forward-checking core
// instead. With Options.Restarts > 0 the search restarts with geometrically
// growing node limits, carrying the incumbent, conflict activity, and
// (optionally) saved phases across runs.
func (m *Model) Solve(opts Options) *Solution {
	if opts.Restarts > 0 {
		return m.solveRestarts(opts)
	}
	sol, _ := m.solveOnce(opts, nil)
	return sol
}

// solveOnce runs a single (non-restarted) search. prev optionally carries
// state from an earlier restart (conflict activity). The returned searchState
// exposes phase memory and activity to the restart driver.
func (m *Model) solveOnce(opts Options, prev *searchState) (*Solution, *searchState) {
	start := time.Now()
	state := newSearchState(m, opts, start)
	if opts.ActivityOrder {
		state.activity = make([]float64, len(m.vars))
		state.actInc = 1.0
		if prev != nil && prev.activity != nil {
			copy(state.activity, prev.activity)
			state.actInc = prev.actInc
		}
	}

	sol := &Solution{Status: StatusUnknown}
	defer func() {
		state.stats.Elapsed = time.Since(start)
		state.stats.Interrupted = state.interrupted
		sol.Stats = state.stats
	}()

	if len(m.vars) == 0 {
		// Degenerate model: only constant constraints and objective.
		ev := newEvaluator(m)
		for _, c := range m.constraints {
			if ev.interval(c).False() {
				sol.Status = StatusInfeasible
				return sol, state
			}
		}
		sol.Status = StatusOptimal
		sol.Values = []int64{}
		if m.objective != nil {
			sol.Objective = m.objective.Eval(nil)
		}
		return sol, state
	}

	if opts.Engine == EngineLegacy {
		m.solveLegacy(state, sol)
	} else {
		m.solveEvent(state, sol)
	}
	return sol, state
}

// solveRestarts runs the search as a restart sequence: each run is capped at
// a geometrically growing node limit, the final run gets the remaining
// budget. The best incumbent is kept across runs and, with PhaseSaving, its
// values feed the next run's warm-start hints; conflict activity persists so
// activity ordering actually benefits from what earlier runs learned.
func (m *Model) solveRestarts(opts Options) *Solution {
	start := time.Now()
	var deadline time.Time
	if opts.MaxTime > 0 {
		deadline = start.Add(opts.MaxTime)
	}
	runOpts := opts
	runOpts.Restarts = 0
	// Each restarted run resets its own incumbent, so a later run may
	// re-find a worse solution than an earlier run's best. The exposed
	// incumbent stream must stay monotone across the whole sequence
	// (anytime contract), so filter the per-run callbacks against the
	// global best before forwarding.
	if opts.OnIncumbent != nil {
		user := opts.OnIncumbent
		haveBest, bestObj := false, 0.0
		const eps = 1e-9
		runOpts.OnIncumbent = func(obj float64, vals []int64) {
			if haveBest {
				switch {
				case m.objective == nil:
					return
				case m.sense == Minimize && obj >= bestObj-eps:
					return
				case m.sense == Maximize && obj <= bestObj+eps:
					return
				}
			}
			haveBest, bestObj = true, obj
			user(obj, vals)
		}
	}

	limit := int64(len(m.vars)) * 16
	if limit < 256 {
		limit = 256
	}
	var agg Stats
	var best *Solution
	var prev *searchState
	hints := opts.Hints
	for r := 0; ; r++ {
		if opts.MaxNodes > 0 && agg.Nodes >= opts.MaxNodes {
			break
		}
		if opts.MaxTime > 0 && !time.Now().Before(deadline) {
			break
		}
		last := r >= opts.Restarts
		ro := runOpts
		ro.Hints = hints
		switch {
		case opts.MaxNodes > 0:
			rem := opts.MaxNodes - agg.Nodes
			ro.MaxNodes = rem
			if !last && limit < rem {
				ro.MaxNodes = limit
			}
		case !last:
			ro.MaxNodes = limit
		default:
			ro.MaxNodes = 0
		}
		if opts.MaxTime > 0 {
			ro.MaxTime = time.Until(deadline)
		}
		sol, state := m.solveOnce(ro, prev)
		agg.Nodes += sol.Stats.Nodes
		agg.Failures += sol.Stats.Failures
		agg.Solutions += sol.Stats.Solutions
		agg.Interrupted = agg.Interrupted || sol.Stats.Interrupted
		if betterSolution(m.sense, m.objective != nil, sol, best) {
			best = sol
		}
		if sol.Status == StatusOptimal || sol.Status == StatusInfeasible {
			// Proved within the limit: the run's answer is exact.
			best = sol
			break
		}
		if sol.Stats.Interrupted {
			// The external hook asked for the incumbent; don't start
			// another run just to have it interrupted at its first node.
			break
		}
		if opts.FirstSolution && sol.Feasible() {
			// The caller asked for the first incumbent; restarting would
			// search for more.
			best = sol
			break
		}
		if last {
			break
		}
		if opts.PhaseSaving {
			hints = phaseHints(opts.Hints, state, best)
		}
		prev = state
		limit *= 2
	}
	if best == nil {
		best = &Solution{Status: StatusUnknown}
	}
	agg.Elapsed = time.Since(start)
	best.Stats = agg
	return best
}

// betterSolution reports whether a improves on b as the carried incumbent.
func betterSolution(sense Sense, hasObj bool, a, b *Solution) bool {
	if a == nil || !a.Feasible() {
		return false
	}
	if b == nil || !b.Feasible() {
		return true
	}
	if !hasObj {
		return false
	}
	const eps = 1e-9
	if sense == Minimize {
		return a.Objective < b.Objective-eps
	}
	return a.Objective > b.Objective+eps
}

// phaseHints merges the user's warm-start hints with saved phases: the best
// incumbent's values when one exists, otherwise the last values branched on.
func phaseHints(user map[int]int64, state *searchState, best *Solution) map[int]int64 {
	merged := make(map[int]int64, len(user)+len(state.phase))
	for k, v := range user {
		merged[k] = v
	}
	if best != nil && best.Feasible() && best.Values != nil {
		for vid, val := range best.Values {
			merged[vid] = val
		}
		return merged
	}
	for vid := range state.phase {
		if state.hasPhase[vid] {
			merged[vid] = state.phase[vid]
		}
	}
	return merged
}

// ------------------------------------------------------------ legacy engine

// searcher is the seed search core: depth-first branch-and-bound with
// generational interval re-evaluation and per-node forward checking. It is
// kept as Options.Engine = EngineLegacy for ablation benchmarks and as the
// reference the event engine is validated against.
type searcher struct {
	*searchState
	ev *evaluator

	order   []int   // variable IDs in branching order
	varCons [][]int // variable ID -> indices of constraints mentioning it
	lp      *linearProps

	trail []trailEntry
}

type trailEntry struct {
	varID int
	dom   Domain
}

func (m *Model) solveLegacy(state *searchState, sol *Solution) {
	s := &searcher{
		searchState: state,
		ev:          newEvaluator(m),
	}
	s.buildIndexes()
	if !state.opts.DisableLinear {
		if lp := buildLinearProps(m, state.opts.LinearMinTerms); len(lp.cons) > 0 {
			s.lp = lp
		}
	}

	// Root-level consistency check.
	s.ev.nextGen()
	for _, c := range m.constraints {
		if s.ev.interval(c).False() {
			sol.Status = StatusInfeasible
			return
		}
	}

	complete := s.dfs(0)
	state.finish(sol, complete)
}

func (s *searcher) buildIndexes() {
	m := s.m
	s.order = staticOrder(m)
	s.varCons = make([][]int, len(m.vars))
	scratch := make([]int, 0, 16)
	for ci, c := range m.constraints {
		scratch = c.Vars(scratch[:0])
		seen := make(map[int]struct{}, len(scratch))
		for _, vid := range scratch {
			if _, ok := seen[vid]; ok {
				continue
			}
			seen[vid] = struct{}{}
			s.varCons[vid] = append(s.varCons[vid], ci)
		}
	}
}

// dfs explores from branching-order position depth. It returns true when the
// subtree was exhausted (search space fully explored), false when the search
// was cut short by a budget.
func (s *searcher) dfs(depth int) bool {
	if s.checkBudget() {
		return false
	}
	if depth == len(s.order) {
		s.recordSolution()
		return true
	}
	vid := s.order[depth]
	if s.opts.DynamicOrder {
		// dom heuristic: branch on the unassigned variable with the
		// smallest current domain. Swap it into this depth's slot so the
		// recursion and undo logic are unchanged.
		best := depth
		for i := depth + 1; i < len(s.order); i++ {
			if s.assigned[s.order[i]] {
				continue
			}
			if s.assigned[s.order[best]] ||
				s.ev.dom[s.order[i]].Size() < s.ev.dom[s.order[best]].Size() {
				best = i
			}
		}
		if best != depth {
			s.order[depth], s.order[best] = s.order[best], s.order[depth]
			defer func() { s.order[depth], s.order[best] = s.order[best], s.order[depth] }()
		}
		vid = s.order[depth]
	}
	v := s.m.vars[vid]
	complete := true
	for _, val := range s.candidateValues(s.ev.dom[vid], v, depth) {
		if s.checkBudget() {
			return false
		}
		s.stats.Nodes++
		mark := len(s.trail)
		s.setVar(vid, val)
		ok := true
		if s.lp != nil {
			ok = s.lp.propagate(s, vid)
		}
		ok = ok && s.consistentAfter(vid) && s.boundOK()
		if ok && s.opts.Propagate {
			ok = s.forwardCheck(vid)
		}
		if ok {
			if !s.dfs(depth + 1) {
				complete = false
			}
			if s.opts.FirstSolution && s.haveSol {
				s.stopped = true
				s.undo(mark)
				return false
			}
			if s.m.sense == Satisfy && s.haveSol {
				// One solution suffices for satisfy problems; the subtree
				// counts as explored so the result is reported optimal.
				s.undo(mark)
				return complete
			}
		} else {
			s.stats.Failures++
		}
		s.undo(mark)
		if s.stopped {
			return false
		}
	}
	return complete
}

func (s *searcher) setVar(vid int, val int64) {
	s.trail = append(s.trail, trailEntry{vid, s.ev.dom[vid]})
	s.ev.dom[vid] = NewDomain(val)
	s.assigned[vid] = true
	s.assign[vid] = val
	s.notePhase(vid, val)
	s.ev.nextGen()
}

func (s *searcher) narrowVar(vid int, d Domain) {
	s.trail = append(s.trail, trailEntry{vid, s.ev.dom[vid]})
	s.ev.dom[vid] = d
	s.ev.nextGen()
}

func (s *searcher) undo(mark int) {
	for len(s.trail) > mark {
		e := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.ev.dom[e.varID] = e.dom
		if e.dom.Size() > 1 {
			s.assigned[e.varID] = false
		}
	}
	s.ev.nextGen()
}

// consistentAfter checks every constraint touching vid for definite
// violation under current bounds.
func (s *searcher) consistentAfter(vid int) bool {
	for _, ci := range s.varCons[vid] {
		if s.ev.interval(s.m.constraints[ci]).False() {
			return false
		}
	}
	return true
}

// boundOK applies the branch-and-bound objective cut.
func (s *searcher) boundOK() bool {
	if s.m.objective == nil || !s.haveSol {
		return true
	}
	return s.boundCut(s.ev.interval(s.m.objective))
}

// forwardCheck prunes domains of unassigned variables that appear in
// constraints where they are the last free variable; if a domain becomes a
// singleton the value is committed, if it empties the branch fails.
func (s *searcher) forwardCheck(vid int) bool {
	for _, ci := range s.varCons[vid] {
		c := s.m.constraints[ci]
		free := -1
		nFree := 0
		for _, w := range c.Vars(nil) {
			if !s.assigned[w] {
				if free != w {
					if free != -1 {
						nFree = 2
						break
					}
					free = w
					nFree = 1
				}
			}
		}
		if nFree != 1 {
			continue
		}
		dom := s.ev.dom[free]
		keep := make([]int64, 0, dom.Size())
		for _, val := range dom.Values() {
			s.narrowVar(free, NewDomain(val))
			violated := s.ev.interval(c).False()
			// Restore just this narrowing.
			e := s.trail[len(s.trail)-1]
			s.trail = s.trail[:len(s.trail)-1]
			s.ev.dom[e.varID] = e.dom
			s.ev.nextGen()
			if !violated {
				keep = append(keep, val)
			}
		}
		if len(keep) == 0 {
			return false
		}
		if len(keep) < dom.Size() {
			s.narrowVar(free, NewDomain(keep...))
			if len(keep) == 1 {
				s.assigned[free] = true
				s.assign[free] = keep[0]
			}
		}
	}
	return true
}

func (s *searcher) recordSolution() {
	// All variables are fixed here; verify constraints exactly (intervals on
	// fully fixed DAGs are exact, but a model may have constraints over no
	// variables at all).
	vals := make([]int64, len(s.m.vars))
	for i := range vals {
		vals[i] = s.ev.dom[i].Min()
	}
	s.record(vals)
}
