package solver

import (
	"testing"
	"testing/quick"
)

func TestNewDomainSortsAndDedups(t *testing.T) {
	d := NewDomain(3, 1, 3, 2, 1)
	want := []int64{1, 2, 3}
	got := d.Values()
	if len(got) != len(want) {
		t.Fatalf("Values() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values() = %v, want %v", got, want)
		}
	}
}

func TestNewRangeDomain(t *testing.T) {
	d := NewRangeDomain(-2, 2)
	if d.Size() != 5 {
		t.Fatalf("Size() = %d, want 5", d.Size())
	}
	if d.Min() != -2 || d.Max() != 2 {
		t.Fatalf("bounds = [%d,%d], want [-2,2]", d.Min(), d.Max())
	}
}

func TestNewRangeDomainPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRangeDomain(2,1) did not panic")
		}
	}()
	NewRangeDomain(2, 1)
}

func TestBinaryDomain(t *testing.T) {
	d := BinaryDomain()
	if d.Size() != 2 || !d.Contains(0) || !d.Contains(1) || d.Contains(2) {
		t.Fatalf("BinaryDomain misbehaves: %v", d)
	}
}

func TestDomainContains(t *testing.T) {
	d := NewDomain(1, 5, 9)
	for _, v := range []int64{1, 5, 9} {
		if !d.Contains(v) {
			t.Errorf("Contains(%d) = false, want true", v)
		}
	}
	for _, v := range []int64{0, 2, 6, 10} {
		if d.Contains(v) {
			t.Errorf("Contains(%d) = true, want false", v)
		}
	}
}

func TestDomainRemove(t *testing.T) {
	d := NewDomain(1, 2, 3)
	d2 := d.Remove(2)
	if d2.Size() != 2 || d2.Contains(2) {
		t.Fatalf("Remove(2) = %v", d2)
	}
	if d.Size() != 3 {
		t.Fatalf("Remove mutated receiver: %v", d)
	}
	if d3 := d.Remove(42); d3.Size() != 3 {
		t.Fatalf("Remove(absent) = %v, want unchanged", d3)
	}
}

func TestDomainIntersect(t *testing.T) {
	a := NewDomain(1, 2, 3, 4)
	b := NewDomain(2, 4, 6)
	got := a.Intersect(b)
	if got.Size() != 2 || !got.Contains(2) || !got.Contains(4) {
		t.Fatalf("Intersect = %v, want {2,4}", got)
	}
	if a.Intersect(NewDomain()).Size() != 0 {
		t.Fatal("Intersect with empty should be empty")
	}
}

func TestDomainString(t *testing.T) {
	cases := []struct {
		d    Domain
		want string
	}{
		{NewDomain(), "{}"},
		{NewDomain(5), "{5}"},
		{NewDomain(1, 2, 3), "{1..3}"},
		{NewDomain(1, 3, 4, 5, 9), "{1,3..5,9}"},
		{NewDomain(0, 1), "{0,1}"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestDomainPropertySortedUnique(t *testing.T) {
	f := func(vals []int64) bool {
		d := NewDomain(vals...)
		vs := d.Values()
		for i := 1; i < len(vs); i++ {
			if vs[i] <= vs[i-1] {
				return false
			}
		}
		for _, v := range vals {
			if !d.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDomainPropertyIntersectSubset(t *testing.T) {
	f := func(a, b []int64) bool {
		da, db := NewDomain(a...), NewDomain(b...)
		in := da.Intersect(db)
		for _, v := range in.Values() {
			if !da.Contains(v) || !db.Contains(v) {
				return false
			}
		}
		// Every common value must be present.
		for _, v := range a {
			if db.Contains(v) && !in.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
