package solver

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestSolveSatisfySimple(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 9)
	y := m.IntVar("y", 0, 9)
	m.Require(m.Eq(m.Add(m.VarExpr(x), m.VarExpr(y)), m.Const(7)))
	m.Require(m.Gt(m.VarExpr(x), m.VarExpr(y)))
	sol := m.Solve(Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("Status = %v, want optimal", sol.Status)
	}
	xv, yv := sol.Value(x), sol.Value(y)
	if xv+yv != 7 || xv <= yv {
		t.Fatalf("solution x=%d y=%d violates constraints", xv, yv)
	}
}

func TestSolveInfeasible(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 3)
	m.Require(m.Gt(m.VarExpr(x), m.Const(10)))
	sol := m.Solve(Options{})
	if sol.Status != StatusInfeasible {
		t.Fatalf("Status = %v, want infeasible", sol.Status)
	}
}

func TestSolveMinimize(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", -5, 5)
	// minimize (x-2)^2 -> x = 2.
	d := m.Sub(m.VarExpr(x), m.Const(2))
	m.Minimize(m.Mul(d, d))
	sol := m.Solve(Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("Status = %v, want optimal", sol.Status)
	}
	if sol.Value(x) != 2 || sol.Objective != 0 {
		t.Fatalf("x=%d obj=%v, want x=2 obj=0", sol.Value(x), sol.Objective)
	}
}

func TestSolveMaximize(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 10)
	y := m.IntVar("y", 0, 10)
	m.Require(m.Le(m.Add(m.VarExpr(x), m.VarExpr(y)), m.Const(12)))
	m.Maximize(m.Add(m.Mul(m.VarExpr(x), m.Const(2)), m.VarExpr(y)))
	sol := m.Solve(Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("Status = %v, want optimal", sol.Status)
	}
	// x=10, y=2 -> 22.
	if sol.Objective != 22 {
		t.Fatalf("Objective = %v, want 22", sol.Objective)
	}
}

func TestSolveAssignmentOneHostPerVM(t *testing.T) {
	// Miniature ACloud: 3 VMs, 2 hosts, minimize CPU stddev.
	m := NewModel()
	cpus := []int64{30, 20, 10}
	nVM, nHost := 3, 2
	vars := make([][]*Var, nVM)
	for i := 0; i < nVM; i++ {
		vars[i] = make([]*Var, nHost)
		row := make([]*Expr, nHost)
		for j := 0; j < nHost; j++ {
			vars[i][j] = m.BoolVar("assign")
			row[j] = m.VarExpr(vars[i][j])
		}
		m.Require(m.Eq(m.Sum(row...), m.Const(1)))
	}
	hostLoad := make([]*Expr, nHost)
	for j := 0; j < nHost; j++ {
		terms := make([]*Expr, nVM)
		for i := 0; i < nVM; i++ {
			terms[i] = m.Mul(m.VarExpr(vars[i][j]), m.ConstInt(cpus[i]))
		}
		hostLoad[j] = m.Sum(terms...)
	}
	m.Minimize(m.StdDev(hostLoad...))
	sol := m.Solve(Options{Propagate: true})
	if sol.Status != StatusOptimal {
		t.Fatalf("Status = %v, want optimal", sol.Status)
	}
	// Optimal split: {30} vs {20,10} -> loads 30/30 -> stddev 0.
	if math.Abs(sol.Objective) > 1e-9 {
		t.Fatalf("Objective = %v, want 0", sol.Objective)
	}
	for i := 0; i < nVM; i++ {
		n := 0
		for j := 0; j < nHost; j++ {
			n += int(sol.Value(vars[i][j]))
		}
		if n != 1 {
			t.Fatalf("VM %d assigned to %d hosts", i, n)
		}
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 4)
	y := m.IntVar("y", 0, 4)
	z := m.IntVar("z", 0, 4)
	xe, ye, ze := m.VarExpr(x), m.VarExpr(y), m.VarExpr(z)
	m.Require(m.Le(m.Add(xe, ye), m.Const(6)))
	m.Require(m.Ne(xe, ze))
	m.Minimize(m.Add(m.Abs(m.Sub(xe, m.Const(3))), m.Add(ye, ze)))
	got := m.Solve(Options{})
	want := m.BruteForce()
	if got.Status != StatusOptimal || want.Status != StatusOptimal {
		t.Fatalf("status got=%v want=%v", got.Status, want.Status)
	}
	if got.Objective != want.Objective {
		t.Fatalf("Objective got=%v bruteforce=%v", got.Objective, want.Objective)
	}
}

func TestSolveWarmStartHint(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 9)
	m.Require(m.Ge(m.VarExpr(x), m.Const(2)))
	// Satisfy with hint 7: first incumbent must be the hinted value.
	sol := m.Solve(Options{Hints: map[int]int64{x.ID: 7}})
	if sol.Status != StatusOptimal {
		t.Fatalf("Status = %v", sol.Status)
	}
	if sol.Value(x) != 7 {
		t.Fatalf("hinted satisfy: x=%d, want 7", sol.Value(x))
	}
}

func TestSolveTimeBudgetAnytime(t *testing.T) {
	// Large enough to not finish in 1ms, but any incumbent is acceptable.
	m := NewModel()
	n := 24
	vars := make([]*Var, n)
	terms := make([]*Expr, n)
	for i := range vars {
		vars[i] = m.IntVar("v", 0, 3)
		terms[i] = m.VarExpr(vars[i])
	}
	m.Minimize(m.StdDev(terms...))
	sol := m.Solve(Options{MaxTime: time.Millisecond})
	if sol.Status != StatusFeasible && sol.Status != StatusOptimal {
		t.Fatalf("Status = %v, want feasible or optimal", sol.Status)
	}
	if !sol.Feasible() {
		t.Fatal("expected a usable incumbent")
	}
}

func TestSolveNodeBudget(t *testing.T) {
	m := NewModel()
	for i := 0; i < 16; i++ {
		m.IntVar("v", 0, 9)
	}
	obj := make([]*Expr, 16)
	for i, v := range m.Vars() {
		obj[i] = m.VarExpr(v)
	}
	m.Minimize(m.Sum(obj...))
	sol := m.Solve(Options{MaxNodes: 100})
	if sol.Stats.Nodes > 120 {
		t.Fatalf("node budget not honored: %d nodes", sol.Stats.Nodes)
	}
}

func TestSolveEmptyModel(t *testing.T) {
	m := NewModel()
	sol := m.Solve(Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("empty model: %v, want optimal", sol.Status)
	}
	m2 := NewModel()
	m2.Require(m2.Bool(false))
	if sol := m2.Solve(Options{}); sol.Status != StatusInfeasible {
		t.Fatalf("false constraint: %v, want infeasible", sol.Status)
	}
}

func TestSolveSatisfyStatusOptimalOnFirst(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 100)
	m.Require(m.Eq(m.VarExpr(x), m.Const(42)))
	sol := m.Solve(Options{Propagate: true})
	if sol.Status != StatusOptimal || sol.Value(x) != 42 {
		t.Fatalf("got %v x=%d", sol.Status, sol.Value(x))
	}
}

func TestSolveCountDistinctConstraint(t *testing.T) {
	// Wireless interface constraint: at most 2 distinct channels.
	m := NewModel()
	chans := NewDomain(1, 6, 11)
	a := m.VarWithDomain("c1", chans)
	b := m.VarWithDomain("c2", chans)
	c := m.VarWithDomain("c3", chans)
	exprs := []*Expr{m.VarExpr(a), m.VarExpr(b), m.VarExpr(c)}
	m.Require(m.Le(m.CountDistinct(exprs...), m.Const(2)))
	m.Require(m.Ne(m.VarExpr(a), m.VarExpr(b)))
	sol := m.Solve(Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("Status = %v", sol.Status)
	}
	distinct := map[int64]bool{sol.Value(a): true, sol.Value(b): true, sol.Value(c): true}
	if len(distinct) > 2 {
		t.Fatalf("got %d distinct channels, want <=2", len(distinct))
	}
	if sol.Value(a) == sol.Value(b) {
		t.Fatal("a==b violates Ne")
	}
}

func TestSolveChannelSelectionMinimizeInterference(t *testing.T) {
	// Three links in a line; adjacent links interfere when |c1-c2| < 5.
	m := NewModel()
	chans := NewDomain(1, 6, 11)
	l1 := m.VarWithDomain("l1", chans)
	l2 := m.VarWithDomain("l2", chans)
	l3 := m.VarWithDomain("l3", chans)
	cost12 := m.ITE(m.Lt(m.Abs(m.Sub(m.VarExpr(l1), m.VarExpr(l2))), m.Const(5)), m.Const(1), m.Const(0))
	cost23 := m.ITE(m.Lt(m.Abs(m.Sub(m.VarExpr(l2), m.VarExpr(l3))), m.Const(5)), m.Const(1), m.Const(0))
	m.Minimize(m.Add(cost12, cost23))
	sol := m.Solve(Options{})
	if sol.Status != StatusOptimal || sol.Objective != 0 {
		t.Fatalf("Status=%v obj=%v, want optimal 0", sol.Status, sol.Objective)
	}
}

func TestForwardCheckPrunes(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 9)
	y := m.IntVar("y", 0, 9)
	m.Require(m.Eq(m.Add(m.VarExpr(x), m.VarExpr(y)), m.Const(9)))
	m.Minimize(m.VarExpr(y))
	with := m.Solve(Options{Propagate: true})
	without := m.Solve(Options{})
	if with.Objective != without.Objective {
		t.Fatalf("propagation changed answer: %v vs %v", with.Objective, without.Objective)
	}
	if with.Stats.Nodes > without.Stats.Nodes {
		t.Logf("note: propagation explored more nodes (%d vs %d)", with.Stats.Nodes, without.Stats.Nodes)
	}
}

func TestSolutionValueNil(t *testing.T) {
	s := &Solution{}
	if s.Value(nil) != 0 {
		t.Fatal("Value(nil) should be 0")
	}
}

func TestStatusString(t *testing.T) {
	if StatusOptimal.String() != "optimal" || StatusInfeasible.String() != "infeasible" ||
		StatusFeasible.String() != "feasible" || StatusUnknown.String() != "unknown" {
		t.Fatal("Status.String broken")
	}
	if Minimize.String() != "minimize" || Maximize.String() != "maximize" || Satisfy.String() != "satisfy" {
		t.Fatal("Sense.String broken")
	}
}

func TestDynamicOrderMatchesStatic(t *testing.T) {
	// Same optimum regardless of variable ordering heuristic.
	for seed := int64(0); seed < 20; seed++ {
		m := NewModel()
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		vars := make([]*Var, n)
		terms := make([]*Expr, n)
		for i := range vars {
			vars[i] = m.IntVar("v", 0, int64(1+rng.Intn(4)))
			terms[i] = m.Mul(m.ConstInt(int64(rng.Intn(5)-2)), m.VarExpr(vars[i]))
		}
		m.Require(m.Le(m.Sum(terms...), m.ConstInt(int64(rng.Intn(8)))))
		m.Minimize(m.Sum(terms...))
		a := m.Solve(Options{})
		b := m.Solve(Options{DynamicOrder: true})
		if a.Status != b.Status {
			t.Fatalf("seed %d: status %v vs %v", seed, a.Status, b.Status)
		}
		if a.Status == StatusOptimal && a.Objective != b.Objective {
			t.Fatalf("seed %d: objective %v vs %v", seed, a.Objective, b.Objective)
		}
	}
}

func TestSolveConstantConstraintsNoVars(t *testing.T) {
	// Regression: a zero-variable model with a satisfied constant constraint
	// must be optimal (a fresh evaluator once treated its zeroed memo table
	// as a valid generation, reading every constraint as false).
	m := NewModel()
	m.Require(m.Bool(true))
	m.Require(m.Le(m.Const(1), m.Const(2)))
	if sol := m.Solve(Options{}); sol.Status != StatusOptimal {
		t.Fatalf("constant-true constraints: %v, want optimal", sol.Status)
	}
	m2 := NewModel()
	m2.Require(m2.Bool(true))
	m2.Require(m2.Bool(false))
	if sol := m2.Solve(Options{}); sol.Status != StatusInfeasible {
		t.Fatalf("constant-false constraint: %v, want infeasible", sol.Status)
	}
}

func TestRestartsRespectFirstSolution(t *testing.T) {
	m := NewModel()
	vars := make([]*Expr, 6)
	for i := range vars {
		vars[i] = m.VarExpr(m.IntVar("v", 0, 4))
	}
	m.Minimize(m.Sum(vars...))
	sol := m.Solve(Options{FirstSolution: true, Restarts: 4})
	if !sol.Feasible() {
		t.Fatalf("status %v, want a usable incumbent", sol.Status)
	}
	if sol.Stats.Solutions != 1 {
		t.Fatalf("FirstSolution with restarts found %d incumbents, want 1", sol.Stats.Solutions)
	}
}
