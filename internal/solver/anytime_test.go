package solver

import (
	"math/rand"
	"testing"
	"time"
)

// knapsackModel builds a 0/1 knapsack COP large enough that the search
// explores thousands of nodes and finds a long improving-incumbent chain:
// the anytime tests need real mid-search interrupts, which the tiny random
// property models never reach (the Interrupt hook is polled every 256
// nodes).
func knapsackModel(rng *rand.Rand, n int) *Model {
	m := NewModel()
	vars := make([]*Var, n)
	var value, weight []*Expr
	for i := range vars {
		vars[i] = m.IntVar("b", 0, 1)
		v := int64(1 + rng.Intn(40))
		w := int64(1 + rng.Intn(30))
		value = append(value, m.Mul(m.ConstInt(v), m.VarExpr(vars[i])))
		weight = append(weight, m.Mul(m.ConstInt(w), m.VarExpr(vars[i])))
	}
	m.Require(m.Le(m.Sum(weight...), m.ConstInt(int64(n)*8)))
	m.Maximize(m.Sum(value...))
	return m
}

// incumbentLog collects the OnIncumbent stream.
type incumbentLog struct {
	objs []float64
	last []int64
}

func (l *incumbentLog) hook(obj float64, vals []int64) {
	l.objs = append(l.objs, obj)
	l.last = vals
}

// checkMonotone fails when the incumbent objective stream ever worsens.
func checkMonotone(t *testing.T, sense Sense, objs []float64) {
	t.Helper()
	for i := 1; i < len(objs); i++ {
		if sense == Minimize && objs[i] > objs[i-1] {
			t.Fatalf("incumbent stream worsened (minimize): %v", objs)
		}
		if sense == Maximize && objs[i] < objs[i-1] {
			t.Fatalf("incumbent stream worsened (maximize): %v", objs)
		}
	}
}

// TestAnytimeHooksPreserveTrace pins the zero-cost half of the anytime
// contract: installing the incumbent-snapshot and interrupt hooks with an
// unbounded budget (the interrupt never fires) reproduces the exact
// full-solve trace — status, objective, values, and node/failure/solution
// counts — on both engines, with and without restarts.
func TestAnytimeHooksPreserveTrace(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := randomModel(rand.New(rand.NewSource(seed)))
		for _, engine := range []Engine{EngineEvent, EngineLegacy} {
			for _, restarts := range []int{0, 3} {
				plain := m.Solve(Options{Engine: engine, Propagate: true, Restarts: restarts})

				log := &incumbentLog{}
				polled := 0
				hooked := m.Solve(Options{
					Engine: engine, Propagate: true, Restarts: restarts,
					Interrupt:   func() bool { polled++; return false },
					OnIncumbent: log.hook,
				})

				if plain.Status != hooked.Status || plain.Objective != hooked.Objective {
					t.Fatalf("seed %d engine %v restarts %d: %v/%v vs hooked %v/%v",
						seed, engine, restarts, plain.Status, plain.Objective, hooked.Status, hooked.Objective)
				}
				if plain.Stats.Nodes != hooked.Stats.Nodes ||
					plain.Stats.Failures != hooked.Stats.Failures ||
					plain.Stats.Solutions != hooked.Stats.Solutions {
					t.Fatalf("seed %d engine %v restarts %d: trace diverged: %+v vs %+v",
						seed, engine, restarts, plain.Stats, hooked.Stats)
				}
				if hooked.Stats.Interrupted {
					t.Fatalf("seed %d: interrupted reported with a never-firing hook", seed)
				}
				for i := range plain.Values {
					if plain.Values[i] != hooked.Values[i] {
						t.Fatalf("seed %d engine %v: values diverged at %d", seed, engine, i)
					}
				}
				checkMonotone(t, m.sense, log.objs)
				// The last snapshot must be the solution the solve returned.
				if hooked.Feasible() && m.objective != nil {
					if len(log.objs) == 0 || log.objs[len(log.objs)-1] != hooked.Objective {
						t.Fatalf("seed %d engine %v: last incumbent %v != returned %v",
							seed, engine, log.objs, hooked.Objective)
					}
				}
			}
		}
	}
}

// TestAnytimeIncumbentMonotone drives the knapsack model to a mid-search
// interrupt at varying depths and checks the hard half of the anytime
// contract on both engines: the incumbent stream never worsens across
// budget interrupts, the interrupted solve returns exactly the last
// snapshot it reported, and Stats.Interrupted distinguishes the hook stop
// from an ordinary completion.
func TestAnytimeIncumbentMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := knapsackModel(rng, 22)
	full := m.Solve(Options{Propagate: true})
	if !full.Feasible() {
		t.Fatalf("knapsack model infeasible: %v", full.Status)
	}
	if full.Stats.Nodes < 2048 {
		t.Fatalf("knapsack model too easy for interrupt coverage: %d nodes", full.Stats.Nodes)
	}

	for _, engine := range []Engine{EngineEvent, EngineLegacy} {
		for _, restarts := range []int{0, 2} {
			for _, stopAfter := range []int{1, 3, 7, 20} {
				log := &incumbentLog{}
				polls := 0
				sol := m.Solve(Options{
					Engine: engine, Propagate: true, Restarts: restarts,
					OnIncumbent: log.hook,
					Interrupt:   func() bool { polls++; return polls > stopAfter },
				})
				checkMonotone(t, Maximize, log.objs)
				if !sol.Stats.Interrupted {
					t.Fatalf("engine %v stopAfter %d: interrupt did not register", engine, stopAfter)
				}
				if sol.Status == StatusOptimal {
					t.Fatalf("engine %v stopAfter %d: interrupted solve claimed optimality", engine, stopAfter)
				}
				if !sol.Feasible() {
					continue // interrupted before the first incumbent: nothing to cross-check
				}
				if got, want := sol.Objective, log.objs[len(log.objs)-1]; got != want {
					t.Fatalf("engine %v stopAfter %d: returned %v, last incumbent %v", engine, stopAfter, got, want)
				}
				for i, v := range log.last {
					if sol.Values[i] != v {
						t.Fatalf("engine %v: returned values differ from last snapshot at var %d", engine, i)
					}
				}
				// The incumbent at interrupt can never beat the full solve.
				if sol.Objective > full.Objective {
					t.Fatalf("engine %v: interrupted objective %v beats optimum %v", engine, sol.Objective, full.Objective)
				}
			}
		}
	}
}

// TestInterruptStopsPromptly pins the budget-epsilon guarantee the serving
// tick loop relies on: once the interrupt hook starts returning true, the
// search returns within the polling cadence, not after exhausting the
// space.
func TestInterruptStopsPromptly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := knapsackModel(rng, 26)
	fire := time.Now().Add(5 * time.Millisecond)
	start := time.Now()
	sol := m.Solve(Options{
		Propagate: true,
		Interrupt: func() bool { return time.Now().After(fire) },
	})
	elapsed := time.Since(start)
	if !sol.Stats.Interrupted {
		t.Skipf("search finished in %v before the 5ms interrupt; model too easy on this host", elapsed)
	}
	// Generous epsilon: CI hosts are slow, but an interrupt must never
	// degenerate into a full exhaustive search.
	if elapsed > 2*time.Second {
		t.Fatalf("interrupted search took %v", elapsed)
	}
}
