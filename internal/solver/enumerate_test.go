package solver

import (
	"math/rand"
	"testing"
	"time"
)

func TestEnumerateAllBinary(t *testing.T) {
	m := NewModel()
	m.BoolVar("a")
	m.BoolVar("b")
	m.BoolVar("c")
	if got := m.CountSolutions(0); got != 8 {
		t.Fatalf("CountSolutions = %d, want 8", got)
	}
}

func TestEnumerateWithConstraint(t *testing.T) {
	m := NewModel()
	a := m.BoolVar("a")
	b := m.BoolVar("b")
	m.Require(m.Ne(m.VarExpr(a), m.VarExpr(b)))
	var seen [][]int64
	m.Enumerate(0, func(assign []int64) bool {
		seen = append(seen, append([]int64(nil), assign...))
		return true
	})
	if len(seen) != 2 {
		t.Fatalf("solutions = %v", seen)
	}
	for _, s := range seen {
		if s[0] == s[1] {
			t.Fatalf("invalid solution %v", s)
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	m := NewModel()
	m.IntVar("x", 0, 99)
	if got := m.CountSolutions(10); got != 10 {
		t.Fatalf("limited count = %d, want 10", got)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	m := NewModel()
	m.IntVar("x", 0, 99)
	calls := 0
	m.Enumerate(0, func([]int64) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("callback calls = %d, want 3", calls)
	}
}

func TestEnumerateInfeasible(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 3)
	m.Require(m.Gt(m.VarExpr(x), m.Const(7)))
	if got := m.CountSolutions(0); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
}

// TestEnumerateMatchesBruteForceCount on random models.
func TestEnumerateMatchesBruteForceCount(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		m := NewModel()
		nv := 2 + rng.Intn(3)
		vars := make([]*Var, nv)
		for i := range vars {
			vars[i] = m.IntVar("v", 0, int64(1+rng.Intn(3)))
		}
		terms := make([]*Expr, nv)
		for i, v := range vars {
			terms[i] = m.Mul(m.ConstInt(int64(rng.Intn(3)-1)), m.VarExpr(v))
		}
		m.Require(m.Le(m.Sum(terms...), m.ConstInt(int64(rng.Intn(6)))))
		// Brute-force count.
		want := 0
		var walk func(i int, assign []int64)
		assign := make([]int64, nv)
		var cons = m.Constraints()
		walk = func(i int, assign []int64) {
			if i == nv {
				for _, c := range cons {
					if !c.EvalBool(assign) {
						return
					}
				}
				want++
				return
			}
			for _, v := range vars[i].Dom.Values() {
				assign[i] = v
				walk(i+1, assign)
			}
		}
		walk(0, assign)
		if got := m.CountSolutions(0); got != want {
			t.Fatalf("trial %d: Enumerate=%d brute=%d", trial, got, want)
		}
	}
}

func TestEnumerateNodeBudget(t *testing.T) {
	m := NewModel()
	for i := 0; i < 6; i++ {
		m.IntVar("x", 0, 9)
	}
	count, complete := m.EnumerateOpts(Options{MaxNodes: 50}, 0, func([]int64) bool { return true })
	if complete {
		t.Fatal("50-node budget cannot cover 10^6 assignments, yet complete=true")
	}
	if count > 50 {
		t.Fatalf("budgeted walk visited %d solutions across >50 bindings", count)
	}
	// Unbudgeted run on a small model is complete.
	m2 := NewModel()
	m2.BoolVar("a")
	m2.BoolVar("b")
	if count, complete := m2.EnumerateOpts(Options{}, 0, func([]int64) bool { return true }); !complete || count != 4 {
		t.Fatalf("got count=%d complete=%v, want 4/true", count, complete)
	}
	// A reached limit reports an incomplete walk.
	if count, complete := m2.EnumerateOpts(Options{}, 2, func([]int64) bool { return true }); complete || count != 2 {
		t.Fatalf("limited: count=%d complete=%v, want 2/false", count, complete)
	}
}

func TestEnumerateTimeBudget(t *testing.T) {
	m := NewModel()
	for i := 0; i < 8; i++ {
		m.IntVar("x", 0, 9)
	}
	start := time.Now()
	_, complete := m.EnumerateOpts(Options{MaxTime: time.Millisecond}, 0, func([]int64) bool { return true })
	if complete {
		t.Fatal("1ms budget cannot cover 10^8 assignments, yet complete=true")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("time budget not honored")
	}
}
