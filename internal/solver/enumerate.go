package solver

// Enumerate visits every complete assignment satisfying all constraints, in
// lexicographic domain order, calling fn with the assignment (indexed by
// variable ID; the slice is reused between calls). Enumeration stops when
// fn returns false or limit solutions have been visited (limit <= 0 means
// no limit). It returns the number of solutions visited.
//
// The walk prunes with the same interval reasoning as Solve, so it is
// usable for counting solution spaces of moderate size (policy "what-if"
// exploration, exhaustive verification in tests).
func (m *Model) Enumerate(limit int, fn func(assign []int64) bool) int {
	ev := newEvaluator(m)
	n := len(m.vars)
	assign := make([]int64, n)
	count := 0
	// Constant constraints.
	ev.nextGen()
	for _, c := range m.constraints {
		if ev.interval(c).False() {
			return 0
		}
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			for _, c := range m.constraints {
				if !c.EvalBool(assign) {
					return true
				}
			}
			count++
			if !fn(assign) {
				return false
			}
			return limit <= 0 || count < limit
		}
		v := m.vars[i]
		saved := ev.dom[v.ID]
		for _, val := range saved.Values() {
			assign[v.ID] = val
			ev.dom[v.ID] = NewDomain(val)
			ev.nextGen()
			ok := true
			for _, c := range m.constraints {
				if ev.interval(c).False() {
					ok = false
					break
				}
			}
			if ok && !rec(i+1) {
				ev.dom[v.ID] = saved
				ev.nextGen()
				return false
			}
		}
		ev.dom[v.ID] = saved
		ev.nextGen()
		return true
	}
	rec(0)
	return count
}

// CountSolutions returns the number of satisfying assignments (bounded by
// limit when positive).
func (m *Model) CountSolutions(limit int) int {
	return m.Enumerate(limit, func([]int64) bool { return true })
}
