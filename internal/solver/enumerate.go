package solver

import "time"

// walker is the one lexicographic domain-iteration loop shared by BruteForce
// and Enumerate: complete assignments are visited in variable creation order
// with ascending domain values. enter/exit optionally wrap each tentative
// binding (pruning on enter returning false), leaf receives each complete
// assignment, and budget — when non-nil — is spent once per tentative
// binding, mirroring Solve's node accounting.
type walker struct {
	vars   []*Var
	assign []int64
	enter  func(vid int, val int64) bool
	exit   func(vid int)
	leaf   func(assign []int64) bool
	budget *walkBudget
}

// rec walks the subtree at depth i. It returns false when the walk was
// aborted (leaf returned false or the budget expired); pruned subtrees still
// count as explored.
func (w *walker) rec(i int) bool {
	if i == len(w.vars) {
		return w.leaf(w.assign)
	}
	v := w.vars[i]
	for _, val := range v.Dom.Values() {
		if w.budget != nil && w.budget.spend() {
			return false
		}
		w.assign[v.ID] = val
		ok := true
		if w.enter != nil {
			ok = w.enter(v.ID, val)
		}
		if ok {
			cont := w.rec(i + 1)
			if w.exit != nil {
				w.exit(v.ID)
			}
			if !cont {
				return false
			}
		} else if w.exit != nil {
			w.exit(v.ID)
		}
	}
	return true
}

// walkBudget applies Solve's node/time budget checks to a domain walk: one
// node per tentative binding, with the wall clock sampled every 256 nodes.
type walkBudget struct {
	maxNodes int64
	deadline time.Time
	nodes    int64
	stopped  bool
}

func newWalkBudget(opts Options, start time.Time) *walkBudget {
	if opts.MaxNodes <= 0 && opts.MaxTime <= 0 {
		return nil
	}
	b := &walkBudget{maxNodes: opts.MaxNodes}
	if opts.MaxTime > 0 {
		b.deadline = start.Add(opts.MaxTime)
	}
	return b
}

// spend consumes one node and returns true when the walk must stop.
func (b *walkBudget) spend() bool {
	if b.stopped {
		return true
	}
	if b.maxNodes > 0 && b.nodes >= b.maxNodes {
		b.stopped = true
		return true
	}
	b.nodes++
	if !b.deadline.IsZero() && b.nodes&0xFF == 0 && time.Now().After(b.deadline) {
		b.stopped = true
		return true
	}
	return false
}

// Enumerate visits every complete assignment satisfying all constraints, in
// lexicographic domain order, calling fn with the assignment (indexed by
// variable ID; the slice is reused between calls). Enumeration stops when
// fn returns false or limit solutions have been visited (limit <= 0 means
// no limit). It returns the number of solutions visited.
//
// The walk prunes with the same interval reasoning as Solve, so it is
// usable for counting solution spaces of moderate size (policy "what-if"
// exploration, exhaustive verification in tests). Use EnumerateOpts to also
// bound the walk by Solve's node/time budgets.
func (m *Model) Enumerate(limit int, fn func(assign []int64) bool) int {
	n, _ := m.EnumerateOpts(Options{}, limit, fn)
	return n
}

// EnumerateOpts is Enumerate under a budget: opts.MaxNodes and opts.MaxTime
// bound the walk exactly as they bound Solve (one node per tentative
// binding). The boolean result reports completeness: false when the walk
// stopped early — budget exhausted, limit reached, or fn returned false —
// so a caller can tell an exact count from a truncated one.
func (m *Model) EnumerateOpts(opts Options, limit int, fn func(assign []int64) bool) (int, bool) {
	ev := newEvaluator(m)
	count := 0
	// Constant constraints.
	ev.nextGen()
	for _, c := range m.constraints {
		if ev.interval(c).False() {
			return 0, true
		}
	}
	budget := newWalkBudget(opts, time.Now())
	saved := make([]Domain, len(m.vars))
	w := &walker{
		vars:   m.vars,
		assign: make([]int64, len(m.vars)),
		budget: budget,
		enter: func(vid int, val int64) bool {
			saved[vid] = ev.dom[vid]
			ev.dom[vid] = NewDomain(val)
			ev.nextGen()
			for _, c := range m.constraints {
				if ev.interval(c).False() {
					return false
				}
			}
			return true
		},
		exit: func(vid int) {
			ev.dom[vid] = saved[vid]
			ev.nextGen()
		},
		leaf: func(assign []int64) bool {
			for _, c := range m.constraints {
				if !c.EvalBool(assign) {
					return true
				}
			}
			count++
			if !fn(assign) {
				return false
			}
			return limit <= 0 || count < limit
		},
	}
	// rec returns false exactly when the walk stopped early: budget spent,
	// limit reached, or fn aborted.
	return count, w.rec(0)
}

// CountSolutions returns the number of satisfying assignments (bounded by
// limit when positive).
func (m *Model) CountSolutions(limit int) int {
	return m.Enumerate(limit, func([]int64) bool { return true })
}
