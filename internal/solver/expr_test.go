package solver

import (
	"math"
	"strings"
	"testing"
)

func TestExprEvalArithmetic(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 10)
	y := m.IntVar("y", 0, 10)
	assign := []int64{3, 4}
	xe, ye := m.VarExpr(x), m.VarExpr(y)
	cases := []struct {
		e    *Expr
		want float64
	}{
		{m.Add(xe, ye), 7},
		{m.Sub(xe, ye), -1},
		{m.Mul(xe, ye), 12},
		{m.Div(ye, m.Const(2)), 2},
		{m.Neg(xe), -3},
		{m.Abs(m.Sub(xe, ye)), 1},
		{m.Min(xe, ye, m.Const(1)), 1},
		{m.Max(xe, ye, m.Const(1)), 4},
		{m.Sum(xe, ye, m.Const(5)), 12},
		{m.SumAbs(m.Neg(xe), ye), 7},
		{m.Avg(xe, ye, m.Const(5)), 4},
		{m.CountDistinct(xe, ye, m.Const(3)), 2},
	}
	for i, c := range cases {
		if got := c.e.Eval(assign); got != c.want {
			t.Errorf("case %d (%s): Eval = %v, want %v", i, c.e, got, c.want)
		}
	}
}

func TestExprEvalComparisons(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 10)
	assign := []int64{5}
	xe := m.VarExpr(x)
	cases := []struct {
		e    *Expr
		want bool
	}{
		{m.Eq(xe, m.Const(5)), true},
		{m.Eq(xe, m.Const(4)), false},
		{m.Ne(xe, m.Const(4)), true},
		{m.Lt(xe, m.Const(6)), true},
		{m.Le(xe, m.Const(5)), true},
		{m.Gt(xe, m.Const(5)), false},
		{m.Ge(xe, m.Const(5)), true},
		{m.And(m.Lt(xe, m.Const(6)), m.Gt(xe, m.Const(4))), true},
		{m.Or(m.Lt(xe, m.Const(0)), m.Gt(xe, m.Const(4))), true},
		{m.Not(m.Eq(xe, m.Const(5))), false},
	}
	for i, c := range cases {
		if got := c.e.EvalBool(assign); got != c.want {
			t.Errorf("case %d (%s): EvalBool = %v, want %v", i, c.e, got, c.want)
		}
	}
}

func TestExprReifiedBoolEq(t *testing.T) {
	// The Colog idiom (V==1)==(C==1) from ACloud rule d5.
	m := NewModel()
	v := m.BoolVar("V")
	c := m.BoolVar("C")
	e := m.Eq(m.Eq(m.VarExpr(v), m.Const(1)), m.Eq(m.VarExpr(c), m.Const(1)))
	if e.Op != OpBoolEq {
		t.Fatalf("expected OpBoolEq node, got %v", e.Op)
	}
	cases := []struct {
		v, c int64
		want bool
	}{{1, 1, true}, {0, 0, true}, {1, 0, false}, {0, 1, false}}
	for _, tc := range cases {
		if got := e.EvalBool([]int64{tc.v, tc.c}); got != tc.want {
			t.Errorf("V=%d C=%d: got %v, want %v", tc.v, tc.c, got, tc.want)
		}
	}
}

func TestExprStdDev(t *testing.T) {
	m := NewModel()
	a := m.IntVar("a", 0, 100)
	b := m.IntVar("b", 0, 100)
	e := m.StdDev(m.VarExpr(a), m.VarExpr(b))
	// stddev of {2,4} = 1 (population).
	if got := e.Eval([]int64{2, 4}); math.Abs(got-1) > 1e-12 {
		t.Errorf("stddev({2,4}) = %v, want 1", got)
	}
	if got := e.Eval([]int64{7, 7}); got != 0 {
		t.Errorf("stddev({7,7}) = %v, want 0", got)
	}
}

func TestExprITE(t *testing.T) {
	m := NewModel()
	x := m.BoolVar("x")
	e := m.ITE(m.Eq(m.VarExpr(x), m.Const(1)), m.Const(10), m.Const(20))
	if got := e.Eval([]int64{1}); got != 10 {
		t.Errorf("ITE(true) = %v, want 10", got)
	}
	if got := e.Eval([]int64{0}); got != 20 {
		t.Errorf("ITE(false) = %v, want 20", got)
	}
}

func TestConstantFolding(t *testing.T) {
	m := NewModel()
	if e := m.Add(m.Const(2), m.Const(3)); !e.IsConst() || e.K != 5 {
		t.Errorf("2+3 folded to %v", e)
	}
	if e := m.Mul(m.Const(0), m.VarExpr(m.IntVar("x", 0, 1))); !e.IsConst() || e.K != 0 {
		t.Errorf("0*x folded to %v", e)
	}
	x := m.IntVar("y", 0, 5)
	if e := m.Mul(m.Const(1), m.VarExpr(x)); e.Op != OpVar {
		t.Errorf("1*y not simplified: %v", e)
	}
}

func TestTypeCheckingPanics(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 1)
	boolE := m.Eq(m.VarExpr(x), m.Const(1))
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("Add(bool)", func() { m.Add(boolE, m.Const(1)) })
	assertPanics("Require(numeric)", func() { m.Require(m.VarExpr(x)) })
	assertPanics("And(numeric)", func() { m.And(m.VarExpr(x), boolE) })
	assertPanics("Minimize(bool)", func() { m.Minimize(boolE) })
}

func TestExprString(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 9)
	e := m.Le(m.Abs(m.Sub(m.VarExpr(x), m.Const(3))), m.Const(2))
	s := e.String()
	for _, frag := range []string{"x", "|", "<=", "2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestExprVars(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 1)
	y := m.IntVar("y", 0, 1)
	e := m.Add(m.Mul(m.VarExpr(x), m.Const(2)), m.VarExpr(y))
	ids := e.Vars(nil)
	if len(ids) != 2 {
		t.Fatalf("Vars = %v, want two entries", ids)
	}
	seen := map[int]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if !seen[x.ID] || !seen[y.ID] {
		t.Fatalf("Vars = %v, want {%d,%d}", ids, x.ID, y.ID)
	}
}
