package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{1, 3}
	if !iv.Contains(2) || iv.Contains(4) || iv.Fixed() {
		t.Fatalf("Interval basics broken: %v", iv)
	}
	if !Point(5).Fixed() {
		t.Fatal("Point not fixed")
	}
	h := Interval{0, 1}.Hull(Interval{5, 9})
	if h.Lo != 0 || h.Hi != 9 {
		t.Fatalf("Hull = %v", h)
	}
}

func TestIntervalBoolHelpers(t *testing.T) {
	if !trueIv.True() || trueIv.False() {
		t.Fatal("trueIv broken")
	}
	if falseIv.True() || !falseIv.False() {
		t.Fatal("falseIv broken")
	}
	if unknownIv.True() || unknownIv.False() {
		t.Fatal("unknownIv broken")
	}
}

func TestMulIvSigns(t *testing.T) {
	cases := []struct {
		a, b, want Interval
	}{
		{Interval{1, 2}, Interval{3, 4}, Interval{3, 8}},
		{Interval{-2, 1}, Interval{3, 4}, Interval{-8, 4}},
		{Interval{-2, -1}, Interval{-4, -3}, Interval{3, 8}},
		{Interval{-1, 1}, Interval{-1, 1}, Interval{-1, 1}},
	}
	for _, c := range cases {
		got := mulIv(c.a, c.b)
		if got != c.want {
			t.Errorf("mulIv(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDivIvZeroDenominator(t *testing.T) {
	got := divIv(Interval{1, 2}, Interval{-1, 1})
	if !math.IsInf(got.Lo, -1) || !math.IsInf(got.Hi, 1) {
		t.Fatalf("divIv spanning zero = %v, want unbounded", got)
	}
	got = divIv(Interval{4, 8}, Interval{2, 2})
	if got.Lo != 2 || got.Hi != 4 {
		t.Fatalf("divIv = %v, want [2,4]", got)
	}
}

func TestAbsIv(t *testing.T) {
	cases := []struct{ in, want Interval }{
		{Interval{2, 5}, Interval{2, 5}},
		{Interval{-5, -2}, Interval{2, 5}},
		{Interval{-3, 4}, Interval{0, 4}},
	}
	for _, c := range cases {
		if got := absIv(c.in); got != c.want {
			t.Errorf("absIv(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// buildRandomExpr constructs a random numeric expression over the given vars.
func buildRandomExpr(m *Model, vars []*Var, rng *rand.Rand, depth int) *Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return m.VarExpr(vars[rng.Intn(len(vars))])
		}
		return m.ConstInt(int64(rng.Intn(11) - 5))
	}
	a := buildRandomExpr(m, vars, rng, depth-1)
	b := buildRandomExpr(m, vars, rng, depth-1)
	switch rng.Intn(6) {
	case 0:
		return m.Add(a, b)
	case 1:
		return m.Sub(a, b)
	case 2:
		return m.Mul(a, b)
	case 3:
		return m.Abs(a)
	case 4:
		return m.Min(a, b)
	default:
		return m.Max(a, b)
	}
}

// TestIntervalSoundness checks the core propagation invariant: for any
// random expression and any full assignment drawn from the domains, the
// concrete value lies within the computed interval.
func TestIntervalSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		m := NewModel()
		nv := 1 + rng.Intn(3)
		vars := make([]*Var, nv)
		for i := range vars {
			lo := int64(rng.Intn(7) - 3)
			hi := lo + int64(rng.Intn(5))
			vars[i] = m.IntVar("v", lo, hi)
		}
		e := buildRandomExpr(m, vars, rng, 4)
		ev := newEvaluator(m)
		ev.nextGen()
		iv := ev.interval(e)
		// Try several random assignments.
		for k := 0; k < 20; k++ {
			assign := make([]int64, nv)
			for i, v := range vars {
				vals := v.Dom.Values()
				assign[i] = vals[rng.Intn(len(vals))]
			}
			got := e.Eval(assign)
			if got < iv.Lo-1e-9 || got > iv.Hi+1e-9 {
				t.Fatalf("trial %d: value %v outside interval %v for %s assign=%v",
					trial, got, iv, e, assign)
			}
		}
	}
}

// TestStdDevIntervalSoundness verifies the custom stddev bounds are sound.
func TestStdDevIntervalSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		m := NewModel()
		nv := 2 + rng.Intn(4)
		vars := make([]*Var, nv)
		exprs := make([]*Expr, nv)
		for i := range vars {
			lo := int64(rng.Intn(20))
			hi := lo + int64(rng.Intn(10))
			vars[i] = m.IntVar("v", lo, hi)
			exprs[i] = m.VarExpr(vars[i])
		}
		sd := m.StdDev(exprs...)
		ev := newEvaluator(m)
		ev.nextGen()
		iv := ev.interval(sd)
		for k := 0; k < 30; k++ {
			assign := make([]int64, nv)
			for i, v := range vars {
				vals := v.Dom.Values()
				assign[i] = vals[rng.Intn(len(vals))]
			}
			got := sd.Eval(assign)
			if got < iv.Lo-1e-9 || got > iv.Hi+1e-9 {
				t.Fatalf("trial %d: stddev %v outside %v", trial, got, iv)
			}
		}
	}
}

// TestIntervalFixedIsExact: when all domains are singletons the interval must
// equal the concrete evaluation.
func TestIntervalFixedIsExact(t *testing.T) {
	f := func(a, b int8) bool {
		m := NewModel()
		x := m.IntVar("x", int64(a), int64(a))
		y := m.IntVar("y", int64(b), int64(b))
		e := m.Add(m.Mul(m.VarExpr(x), m.VarExpr(y)), m.Abs(m.Sub(m.VarExpr(x), m.VarExpr(y))))
		ev := newEvaluator(m)
		ev.nextGen()
		iv := ev.interval(e)
		want := e.Eval([]int64{int64(a), int64(b)})
		return iv.Fixed() && math.Abs(iv.Lo-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestComparisonIntervalSoundness: definite true/false verdicts from the
// interval evaluator must agree with every concrete assignment.
func TestComparisonIntervalSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ops := []func(m *Model, a, b *Expr) *Expr{
		(*Model).Eq, (*Model).Ne, (*Model).Lt, (*Model).Le, (*Model).Gt, (*Model).Ge,
	}
	for trial := 0; trial < 200; trial++ {
		m := NewModel()
		x := m.IntVar("x", int64(rng.Intn(5)), int64(rng.Intn(5)+5))
		y := m.IntVar("y", int64(rng.Intn(5)), int64(rng.Intn(5)+5))
		e := ops[rng.Intn(len(ops))](m, m.VarExpr(x), m.VarExpr(y))
		ev := newEvaluator(m)
		ev.nextGen()
		iv := ev.interval(e)
		for _, xv := range x.Dom.Values() {
			for _, yv := range y.Dom.Values() {
				got := e.EvalBool([]int64{xv, yv})
				if iv.True() && !got {
					t.Fatalf("interval says true but %s false at (%d,%d)", e, xv, yv)
				}
				if iv.False() && got {
					t.Fatalf("interval says false but %s true at (%d,%d)", e, xv, yv)
				}
			}
		}
	}
}

// TestSolveVsBruteForceQuick is the headline property test: on random small
// COPs the branch-and-bound search must find the same optimum as exhaustive
// enumeration.
func TestSolveVsBruteForceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		m := NewModel()
		nv := 2 + rng.Intn(3)
		vars := make([]*Var, nv)
		for i := range vars {
			lo := int64(rng.Intn(3))
			hi := lo + 1 + int64(rng.Intn(3))
			vars[i] = m.IntVar("v", lo, hi)
		}
		// Random linear constraints.
		for c := 0; c < 1+rng.Intn(3); c++ {
			terms := make([]*Expr, nv)
			for i, v := range vars {
				terms[i] = m.Mul(m.ConstInt(int64(rng.Intn(5)-2)), m.VarExpr(v))
			}
			bound := m.ConstInt(int64(rng.Intn(15) - 3))
			if rng.Intn(2) == 0 {
				m.Require(m.Le(m.Sum(terms...), bound))
			} else {
				m.Require(m.Ge(m.Sum(terms...), bound))
			}
		}
		obj := buildRandomExpr(m, vars, rng, 3)
		if rng.Intn(2) == 0 {
			m.Minimize(obj)
		} else {
			m.Maximize(obj)
		}
		got := m.Solve(Options{Propagate: rng.Intn(2) == 0})
		want := m.BruteForce()
		if got.Status == StatusInfeasible != (want.Status == StatusInfeasible) {
			t.Fatalf("trial %d: feasibility disagreement solve=%v brute=%v", trial, got.Status, want.Status)
		}
		if want.Status == StatusOptimal {
			if got.Status != StatusOptimal {
				t.Fatalf("trial %d: expected optimal, got %v", trial, got.Status)
			}
			if math.Abs(got.Objective-want.Objective) > 1e-9 {
				t.Fatalf("trial %d: objective %v != bruteforce %v", trial, got.Objective, want.Objective)
			}
		}
	}
}
