package solver

import (
	"math"
	"math/rand"
	"testing"
)

func TestExtractLinearBasic(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 9)
	y := m.IntVar("y", 0, 9)
	// 2x + 3y - 1 <= 10   =>   2x + 3y <= 11
	e := m.Le(m.Sub(m.Add(m.Mul(m.Const(2), m.VarExpr(x)), m.Mul(m.Const(3), m.VarExpr(y))), m.Const(1)), m.Const(10))
	terms, op, K, ok := extractLinear(e)
	if !ok || op != OpLe || K != 11 {
		t.Fatalf("extract = %v %v %v %v", terms, op, K, ok)
	}
	coefs := map[int]float64{}
	for _, tm := range terms {
		coefs[tm.v.ID] = tm.coef
	}
	if coefs[x.ID] != 2 || coefs[y.ID] != 3 {
		t.Fatalf("coefs = %v", coefs)
	}
}

func TestExtractLinearStrictAndEq(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 9)
	if _, op, K, ok := extractLinear(m.Lt(m.VarExpr(x), m.Const(5))); !ok || op != OpLe || K != 4 {
		t.Fatalf("x<5 normalized to %v %v", op, K)
	}
	if _, op, K, ok := extractLinear(m.Gt(m.VarExpr(x), m.Const(5))); !ok || op != OpGe || K != 6 {
		t.Fatalf("x>5 normalized to %v %v", op, K)
	}
	if _, op, K, ok := extractLinear(m.Eq(m.Sum(m.VarExpr(x)), m.Const(1))); !ok || op != OpEq || K != 1 {
		t.Fatalf("sum==1 normalized to %v %v", op, K)
	}
}

func TestExtractLinearRejectsNonlinear(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 9)
	y := m.IntVar("y", 0, 9)
	if _, _, _, ok := extractLinear(m.Le(m.Mul(m.VarExpr(x), m.VarExpr(y)), m.Const(3))); ok {
		t.Fatal("x*y accepted as linear")
	}
	if _, _, _, ok := extractLinear(m.Le(m.Abs(m.VarExpr(x)), m.Const(3))); ok {
		t.Fatal("|x| accepted as linear")
	}
}

func TestExtractLinearCancellation(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 9)
	// x - x + 3 <= 5 has no variable terms left.
	e := m.Le(m.Add(m.Sub(m.VarExpr(x), m.VarExpr(x)), m.Const(3)), m.Const(5))
	terms, _, _, ok := extractLinear(e)
	if !ok || len(terms) != 0 {
		t.Fatalf("cancellation: terms=%v ok=%v", terms, ok)
	}
}

// TestLinearPropagationCorrect: with and without the linear propagator the
// optimum must be identical; the propagator may only change effort.
func TestLinearPropagationCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 80; trial++ {
		m := NewModel()
		nv := 3 + rng.Intn(3)
		vars := make([]*Var, nv)
		for i := range vars {
			vars[i] = m.IntVar("v", 0, int64(2+rng.Intn(4)))
		}
		for c := 0; c < 2+rng.Intn(3); c++ {
			terms := make([]*Expr, nv)
			for i, v := range vars {
				terms[i] = m.Mul(m.ConstInt(int64(rng.Intn(5)-2)), m.VarExpr(v))
			}
			b := m.ConstInt(int64(rng.Intn(12) - 2))
			switch rng.Intn(3) {
			case 0:
				m.Require(m.Le(m.Sum(terms...), b))
			case 1:
				m.Require(m.Ge(m.Sum(terms...), b))
			default:
				m.Require(m.Eq(m.Sum(terms...), b))
			}
		}
		obj := make([]*Expr, nv)
		for i, v := range vars {
			obj[i] = m.Mul(m.ConstInt(int64(rng.Intn(7)-3)), m.VarExpr(v))
		}
		m.Minimize(m.Sum(obj...))
		with := m.Solve(Options{LinearMinTerms: 1})
		without := m.Solve(Options{DisableLinear: true})
		if (with.Status == StatusInfeasible) != (without.Status == StatusInfeasible) {
			t.Fatalf("trial %d: feasibility differs: %v vs %v", trial, with.Status, without.Status)
		}
		if with.Status == StatusOptimal && math.Abs(with.Objective-without.Objective) > 1e-9 {
			t.Fatalf("trial %d: objective differs: %v vs %v", trial, with.Objective, without.Objective)
		}
	}
}

// TestLinearPropagationPrunes: on assignment-style models the propagator
// must reduce search effort substantially.
func TestLinearPropagationPrunes(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		// 8 items, 3 bins, each item in exactly one bin; bin 0 holds at
		// most 2 items; minimize items in bin 2.
		nI, nB := 8, 3
		vars := make([][]*Var, nI)
		for i := 0; i < nI; i++ {
			row := make([]*Expr, nB)
			vars[i] = make([]*Var, nB)
			for b := 0; b < nB; b++ {
				vars[i][b] = m.BoolVar("x")
				row[b] = m.VarExpr(vars[i][b])
			}
			m.Require(m.Eq(m.Sum(row...), m.Const(1)))
		}
		var bin0, bin2 []*Expr
		for i := 0; i < nI; i++ {
			bin0 = append(bin0, m.VarExpr(vars[i][0]))
			bin2 = append(bin2, m.VarExpr(vars[i][2]))
		}
		m.Require(m.Le(m.Sum(bin0...), m.Const(2)))
		m.Minimize(m.Sum(bin2...))
		return m
	}
	// LinearMinTerms: 1 attaches propagators to the 3-term exactly-one rows
	// too; the default threshold intentionally leaves those to forward
	// checking (see TestLinearMinTermsDefaultSkipsSmall).
	with := build().Solve(Options{LinearMinTerms: 1})
	without := build().Solve(Options{DisableLinear: true})
	if with.Objective != without.Objective {
		t.Fatalf("objectives differ: %v vs %v", with.Objective, without.Objective)
	}
	if with.Stats.Nodes >= without.Stats.Nodes {
		t.Fatalf("linear propagation did not prune: %d vs %d nodes",
			with.Stats.Nodes, without.Stats.Nodes)
	}
}

// TestLinearPropagationUnitForcing: when a sum==1 constraint has one bit
// set, the propagator must force the rest to zero immediately.
func TestLinearPropagationUnitForcing(t *testing.T) {
	m := NewModel()
	a := m.BoolVar("a")
	b := m.BoolVar("b")
	c := m.BoolVar("c")
	m.Require(m.Eq(m.Sum(m.VarExpr(a), m.VarExpr(b), m.VarExpr(c)), m.Const(1)))
	m.Require(m.Eq(m.VarExpr(a), m.Const(1)))
	sol := m.Solve(Options{LinearMinTerms: 1})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Value(a) != 1 || sol.Value(b) != 0 || sol.Value(c) != 0 {
		t.Fatalf("solution = %v", sol.Values)
	}
	// The whole search should need only a handful of nodes.
	if sol.Stats.Nodes > 6 {
		t.Fatalf("unit forcing too weak: %d nodes", sol.Stats.Nodes)
	}
}

// TestLinearMinTermsDefaultSkipsSmall pins the attachment threshold: under
// the default Options, linear constraints shorter than the built-in
// threshold get no dedicated propagator (their traces match DisableLinear),
// while constraints at or past the threshold still attach one. Results must
// agree in every configuration regardless.
func TestLinearMinTermsDefaultSkipsSmall(t *testing.T) {
	build := func(n int) *Model {
		m := NewModel()
		row := make([]*Expr, n)
		for i := range row {
			row[i] = m.VarExpr(m.BoolVar("x"))
		}
		m.Require(m.Eq(m.Sum(row...), m.Const(1)))
		m.Minimize(row[n-1])
		return m
	}
	small := linearMinTermsDefault - 1
	if def := build(small).Solve(Options{}); def.Status != StatusOptimal {
		t.Fatalf("small default solve: %v", def.Status)
	}
	// Below threshold: default trace identical to DisableLinear.
	def := build(small).Solve(Options{})
	off := build(small).Solve(Options{DisableLinear: true})
	if def.Stats.Nodes != off.Stats.Nodes || def.Objective != off.Objective {
		t.Fatalf("below threshold should skip the propagator: %d vs %d nodes",
			def.Stats.Nodes, off.Stats.Nodes)
	}
	// At threshold: the propagator attaches and matches the force-attach
	// configuration exactly.
	at := build(linearMinTermsDefault).Solve(Options{})
	all := build(linearMinTermsDefault).Solve(Options{LinearMinTerms: 1})
	if at.Stats.Nodes != all.Stats.Nodes || at.Objective != all.Objective {
		t.Fatalf("at threshold should attach the propagator: %d vs %d nodes",
			at.Stats.Nodes, all.Stats.Nodes)
	}
	// Explicit override below default also attaches.
	forced := build(small).Solve(Options{LinearMinTerms: small})
	if forced.Objective != def.Objective {
		t.Fatalf("override objective differs: %v vs %v", forced.Objective, def.Objective)
	}
}
