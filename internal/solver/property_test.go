package solver

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomModel builds a small random COP exercising the constraint shapes the
// grounder emits: linear comparisons, boolean combinations of comparisons,
// and aggregate objectives (sum, min/max, stddev). All data is integer, so
// the engines' float arithmetic is exact.
func randomModel(rng *rand.Rand) *Model {
	m := NewModel()
	n := 2 + rng.Intn(4)
	vars := make([]*Var, n)
	for i := range vars {
		lo := int64(rng.Intn(3) - 1)
		vars[i] = m.IntVar(fmt.Sprintf("v%d", i), lo, lo+int64(1+rng.Intn(3)))
	}
	expr := func(i int) *Expr { return m.VarExpr(vars[i]) }
	randLin := func() *Expr {
		k := 1 + rng.Intn(n)
		terms := make([]*Expr, k)
		for i := range terms {
			terms[i] = m.Mul(m.ConstInt(int64(rng.Intn(5)-2)), expr(rng.Intn(n)))
		}
		return m.Sum(terms...)
	}
	randCmp := func() *Expr {
		lhs, rhs := randLin(), m.ConstInt(int64(rng.Intn(9)-4))
		switch rng.Intn(6) {
		case 0:
			return m.Le(lhs, rhs)
		case 1:
			return m.Ge(lhs, rhs)
		case 2:
			return m.Eq(lhs, rhs)
		case 3:
			return m.Ne(lhs, rhs)
		case 4:
			return m.Lt(lhs, rhs)
		default:
			return m.Gt(lhs, rhs)
		}
	}
	nCons := 1 + rng.Intn(3)
	for i := 0; i < nCons; i++ {
		c := randCmp()
		switch rng.Intn(4) {
		case 0:
			c = m.Or(c, randCmp())
		case 1:
			c = m.And(c, randCmp())
		case 2:
			c = m.Not(c)
		}
		m.Require(c)
	}
	all := make([]*Expr, n)
	for i := range all {
		all[i] = expr(i)
	}
	switch rng.Intn(5) {
	case 0:
		m.Minimize(randLin())
	case 1:
		m.Maximize(randLin())
	case 2:
		m.Minimize(m.StdDev(all...))
	case 3:
		m.Minimize(m.Add(m.Max(all...), m.Abs(randLin())))
	default:
		// satisfy
	}
	return m
}

// TestEnginesMatchBruteForce is the core solver invariant: on random small
// models the event-driven propagation engine (in every configuration), the
// legacy forward-checking engine, and exhaustive enumeration agree on
// status and optimal objective.
func TestEnginesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := randomModel(rng)
		want := m.BruteForce()
		configs := []struct {
			name string
			opts Options
		}{
			{"event", Options{}},
			{"event-propagate", Options{Propagate: true}},
			{"event-fixpoint", Options{Fixpoint: true, Propagate: true}},
			{"event-nolinear", Options{DisableLinear: true}},
			{"event-activity", Options{ActivityOrder: true, Propagate: true}},
			{"event-restarts", Options{Restarts: 3, PhaseSaving: true, Propagate: true}},
			{"legacy", Options{Engine: EngineLegacy}},
			{"legacy-propagate", Options{Engine: EngineLegacy, Propagate: true}},
		}
		for _, cfg := range configs {
			got := m.Solve(cfg.opts)
			if got.Status != want.Status {
				t.Fatalf("trial %d [%s]: status %v, brute force %v", trial, cfg.name, got.Status, want.Status)
			}
			if want.Status != StatusOptimal {
				continue
			}
			if math.Abs(got.Objective-want.Objective) > 1e-9 {
				t.Fatalf("trial %d [%s]: objective %v, brute force %v",
					trial, cfg.name, got.Objective, want.Objective)
			}
			// The returned assignment must actually be feasible and achieve
			// the reported objective.
			for ci, c := range m.Constraints() {
				if !c.EvalBool(got.Values) {
					t.Fatalf("trial %d [%s]: returned values violate constraint %d", trial, cfg.name, ci)
				}
			}
			if obj, _ := m.Objective(); obj != nil {
				if math.Abs(obj.Eval(got.Values)-got.Objective) > 1e-9 {
					t.Fatalf("trial %d [%s]: values do not achieve reported objective", trial, cfg.name)
				}
			}
		}
	}
}

// TestEventEngineTraceMatchesLegacy pins the event engine's default
// configuration to the legacy search trace: identical solutions, objectives,
// node and failure counts — including under binding node budgets, where any
// divergence in pruning decisions would surface as a different incumbent.
func TestEventEngineTraceMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		m := randomModel(rng)
		for _, propagate := range []bool{false, true} {
			for _, maxNodes := range []int64{0, 25} {
				opts := Options{Propagate: propagate, MaxNodes: maxNodes}
				lopts := opts
				lopts.Engine = EngineLegacy
				ev, lg := m.Solve(opts), m.Solve(lopts)
				label := fmt.Sprintf("trial %d propagate=%v maxNodes=%d", trial, propagate, maxNodes)
				if ev.Status != lg.Status {
					t.Fatalf("%s: status event=%v legacy=%v", label, ev.Status, lg.Status)
				}
				if ev.Stats.Nodes != lg.Stats.Nodes || ev.Stats.Failures != lg.Stats.Failures {
					t.Fatalf("%s: trace diverged: event %d nodes/%d failures, legacy %d/%d",
						label, ev.Stats.Nodes, ev.Stats.Failures, lg.Stats.Nodes, lg.Stats.Failures)
				}
				if ev.Objective != lg.Objective {
					t.Fatalf("%s: objective event=%v legacy=%v", label, ev.Objective, lg.Objective)
				}
				if len(ev.Values) != len(lg.Values) {
					t.Fatalf("%s: values length %d vs %d", label, len(ev.Values), len(lg.Values))
				}
				for i := range ev.Values {
					if ev.Values[i] != lg.Values[i] {
						t.Fatalf("%s: values diverge at var %d: %d vs %d",
							label, i, ev.Values[i], lg.Values[i])
					}
				}
			}
		}
	}
}

// TestIncrementalStoreMatchesEvaluator drives both interval engines through
// the same random narrow/undo script and requires bitwise-identical bounds
// on every node after every step.
func TestIncrementalStoreMatchesEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		m := randomModel(rng)
		prep := m.prepare()
		st := newIvStore(m, prep)
		ev := newEvaluator(m)
		check := func(step string) {
			ev.nextGen()
			for id, e := range prep.exprs {
				if e == nil {
					continue
				}
				if got, want := st.memo[id], ev.interval(e); got != want {
					t.Fatalf("trial %d %s: node %d (%s): store %v evaluator %v",
						trial, step, id, e, got, want)
				}
			}
		}
		check("initial")
		type frame struct {
			mk  storeMark
			vid int
			dom Domain
		}
		var stack []frame
		for step := 0; step < 40; step++ {
			if len(stack) > 0 && rng.Intn(3) == 0 {
				f := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				st.undoTo(f.mk)
				ev.dom[f.vid] = f.dom
				ev.nextGen()
				check("undo")
				continue
			}
			vid := rng.Intn(len(m.Vars()))
			d := st.dom[vid]
			if d.Size() <= 1 {
				continue
			}
			vals := d.Values()
			keep := vals[:1+rng.Intn(len(vals))]
			nd := NewDomain(keep...)
			stack = append(stack, frame{st.mark(), vid, d})
			st.setDom(vid, nd)
			st.flush()
			ev.dom[vid] = nd
			ev.nextGen()
			check("narrow")
		}
	}
}

// TestLinearResidualCachesStayConsistent narrows and backtracks randomly and
// checks the cached residual sums always equal a fresh recomputation.
func TestLinearResidualCachesStayConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		m := randomModel(rng)
		prep := m.prepare()
		if len(prep.lin) == 0 {
			continue
		}
		st := newIvStore(m, prep)
		le := newLinEngine(prep, st.dom)
		verify := func(step string) {
			for ci := range le.cons {
				c := &le.cons[ci]
				wantLo, wantHi := 0.0, 0.0
				for ti, term := range c.terms {
					lo, hi := termBounds(term.coef, st.dom[term.v.ID])
					if lo != c.lo[ti] || hi != c.hi[ti] {
						t.Fatalf("trial %d %s: con %d term %d: cached [%g,%g] fresh [%g,%g]",
							trial, step, ci, ti, c.lo[ti], c.hi[ti], lo, hi)
					}
					wantLo += lo
					wantHi += hi
				}
				if math.Abs(wantLo-c.sumLo) > 1e-9 || math.Abs(wantHi-c.sumHi) > 1e-9 {
					t.Fatalf("trial %d %s: con %d sums cached [%g,%g] fresh [%g,%g]",
						trial, step, ci, c.sumLo, c.sumHi, wantLo, wantHi)
				}
			}
		}
		verify("initial")
		type frame struct {
			mk  storeMark
			lin int
		}
		var stack []frame
		for step := 0; step < 40; step++ {
			if len(stack) > 0 && rng.Intn(3) == 0 {
				f := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				st.undoTo(f.mk)
				le.undoTo(f.lin)
				verify("undo")
				continue
			}
			vid := rng.Intn(len(m.Vars()))
			d := st.dom[vid]
			if d.Size() <= 1 {
				continue
			}
			vals := d.Values()
			nd := NewDomain(vals[:1+rng.Intn(len(vals))]...)
			stack = append(stack, frame{st.mark(), le.markLen()})
			st.setDom(vid, nd)
			le.update(vid, nd)
			verify("narrow")
		}
	}
}

// TestRestartsFindOptimum checks the restart driver proves optimality on a
// model it can exhaust, and that phase saving reproduces warm-start
// behaviour (first incumbent = hinted solution when feasible).
func TestRestartsFindOptimum(t *testing.T) {
	m := NewModel()
	n := 6
	vars := make([]*Var, n)
	terms := make([]*Expr, n)
	for i := range vars {
		vars[i] = m.IntVar("v", 0, 4)
		terms[i] = m.VarExpr(vars[i])
	}
	m.Require(m.Ge(m.Sum(terms...), m.Const(10)))
	m.Minimize(m.Sum(terms...))
	plain := m.Solve(Options{Propagate: true})
	restarted := m.Solve(Options{Propagate: true, Restarts: 4, PhaseSaving: true, ActivityOrder: true})
	if restarted.Status != StatusOptimal {
		t.Fatalf("restarted status %v, want optimal", restarted.Status)
	}
	if restarted.Objective != plain.Objective {
		t.Fatalf("restarted objective %v, plain %v", restarted.Objective, plain.Objective)
	}
}

// TestShapeStats pins the constraint classification the grounder relies on.
func TestShapeStats(t *testing.T) {
	m := NewModel()
	x := m.IntVar("x", 0, 5)
	y := m.IntVar("y", 0, 5)
	z := m.IntVar("z", 0, 5)
	m.Require(m.Le(m.Add(m.VarExpr(x), m.VarExpr(y)), m.Const(7)))                         // linear
	m.Require(m.Ne(m.VarExpr(x), m.VarExpr(y)))                                            // binary (not linear)
	m.Require(m.Gt(m.Mul(m.VarExpr(z), m.VarExpr(z)), m.Const(1)))                         // unary (nonlinear)
	m.Require(m.Le(m.CountDistinct(m.VarExpr(x), m.VarExpr(y), m.VarExpr(z)), m.Const(2))) // generic
	got := m.ShapeStats()
	want := map[string]int{"linear": 1, "binary": 1, "unary": 1, "generic": 1}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("ShapeStats[%s] = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
}

// TestFixpointStrongerNeverWorse: fixpoint mode must reach the same optimum
// with no more nodes than the default schedule.
func TestFixpointStrongerNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 80; trial++ {
		m := randomModel(rng)
		def := m.Solve(Options{Propagate: true})
		fix := m.Solve(Options{Propagate: true, Fixpoint: true})
		if def.Status != fix.Status {
			t.Fatalf("trial %d: status %v vs fixpoint %v", trial, def.Status, fix.Status)
		}
		if def.Status == StatusOptimal && math.Abs(def.Objective-fix.Objective) > 1e-9 {
			t.Fatalf("trial %d: objective %v vs fixpoint %v", trial, def.Objective, fix.Objective)
		}
		if fix.Stats.Nodes > def.Stats.Nodes {
			t.Fatalf("trial %d: fixpoint explored more nodes (%d) than default (%d)",
				trial, fix.Stats.Nodes, def.Stats.Nodes)
		}
	}
}
