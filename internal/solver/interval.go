package solver

import (
	"fmt"
	"math"
)

// Interval is a closed real interval [Lo,Hi] used for bounds reasoning over
// partially assigned expression DAGs. Boolean expressions use the encoding
// [1,1]=true, [0,0]=false, [0,1]=unknown.
type Interval struct {
	Lo, Hi float64
}

// Point returns the degenerate interval [v,v].
func Point(v float64) Interval { return Interval{v, v} }

// Fixed reports whether the interval is a single point.
func (iv Interval) Fixed() bool { return iv.Lo == iv.Hi }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// True reports whether a boolean interval is definitely true.
func (iv Interval) True() bool { return iv.Lo > 0.5 }

// False reports whether a boolean interval is definitely false.
func (iv Interval) False() bool { return iv.Hi < 0.5 }

// Hull returns the smallest interval containing both operands.
func (iv Interval) Hull(o Interval) Interval {
	return Interval{math.Min(iv.Lo, o.Lo), math.Max(iv.Hi, o.Hi)}
}

func (iv Interval) String() string { return fmt.Sprintf("[%g,%g]", iv.Lo, iv.Hi) }

var (
	trueIv    = Interval{1, 1}
	falseIv   = Interval{0, 0}
	unknownIv = Interval{0, 1}
)

func boolIv(definitelyTrue, definitelyFalse bool) Interval {
	switch {
	case definitelyTrue:
		return trueIv
	case definitelyFalse:
		return falseIv
	default:
		return unknownIv
	}
}

// ivSource supplies child intervals and variable domains to computeIv. Both
// interval engines implement it: the generational evaluator resolves children
// recursively, the incremental store reads its always-valid memo table. Using
// one shared computation guarantees the two engines produce bitwise-identical
// bounds.
type ivSource interface {
	iv(e *Expr) Interval
	domainOf(v *Var) Domain
}

// evaluator computes sound interval bounds for expressions under the current
// (possibly partial) search state. Results are memoized per generation so a
// shared DAG node is visited once per propagation pass.
type evaluator struct {
	m    *Model
	dom  []Domain // current domain per variable ID
	memo []Interval
	gen  []uint64
	cur  uint64
}

func (ev *evaluator) iv(e *Expr) Interval    { return ev.interval(e) }
func (ev *evaluator) domainOf(v *Var) Domain { return ev.dom[v.ID] }

func newEvaluator(m *Model) *evaluator {
	ev := &evaluator{
		m:    m,
		dom:  make([]Domain, len(m.vars)),
		memo: make([]Interval, m.NumExprNodes()),
		gen:  make([]uint64, m.NumExprNodes()),
		cur:  1, // gen[] starts zeroed; never treat the zero memo as valid
	}
	for i, v := range m.vars {
		ev.dom[i] = v.Dom
	}
	return ev
}

// nextGen invalidates all memoized intervals.
func (ev *evaluator) nextGen() { ev.cur++ }

// interval returns sound bounds for e under the current domains.
func (ev *evaluator) interval(e *Expr) Interval {
	if e.ID < len(ev.gen) && ev.gen[e.ID] == ev.cur {
		return ev.memo[e.ID]
	}
	iv := computeIv(e, ev)
	if e.ID < len(ev.gen) {
		ev.gen[e.ID] = ev.cur
		ev.memo[e.ID] = iv
	}
	return iv
}

// computeIv computes the interval for one node from its children's intervals
// (resolved through src) and, for OpVar, the variable's current domain.
func computeIv(e *Expr, src ivSource) Interval {
	switch e.Op {
	case OpConst:
		return Point(e.K)
	case OpVar:
		d := src.domainOf(e.Var)
		if d.Empty() {
			// An emptied domain signals failure upstream; return an impossible
			// reversed interval that propagates as "anything".
			return Interval{math.Inf(1), math.Inf(-1)}
		}
		return Interval{float64(d.Min()), float64(d.Max())}
	case OpAdd:
		a, b := src.iv(e.Args[0]), src.iv(e.Args[1])
		return Interval{a.Lo + b.Lo, a.Hi + b.Hi}
	case OpSub:
		a, b := src.iv(e.Args[0]), src.iv(e.Args[1])
		return Interval{a.Lo - b.Hi, a.Hi - b.Lo}
	case OpMul:
		return mulIv(src.iv(e.Args[0]), src.iv(e.Args[1]))
	case OpDiv:
		return divIv(src.iv(e.Args[0]), src.iv(e.Args[1]))
	case OpNeg:
		a := src.iv(e.Args[0])
		return Interval{-a.Hi, -a.Lo}
	case OpAbs:
		return absIv(src.iv(e.Args[0]))
	case OpMin:
		lo, hi := math.Inf(1), math.Inf(1)
		for _, arg := range e.Args {
			a := src.iv(arg)
			lo = math.Min(lo, a.Lo)
			hi = math.Min(hi, a.Hi)
		}
		return Interval{lo, hi}
	case OpMax:
		lo, hi := math.Inf(-1), math.Inf(-1)
		for _, arg := range e.Args {
			a := src.iv(arg)
			lo = math.Max(lo, a.Lo)
			hi = math.Max(hi, a.Hi)
		}
		return Interval{lo, hi}
	case OpSum:
		lo, hi := 0.0, 0.0
		for _, arg := range e.Args {
			a := src.iv(arg)
			lo += a.Lo
			hi += a.Hi
		}
		return Interval{lo, hi}
	case OpSumAbs:
		lo, hi := 0.0, 0.0
		for _, arg := range e.Args {
			a := absIv(src.iv(arg))
			lo += a.Lo
			hi += a.Hi
		}
		return Interval{lo, hi}
	case OpAvg:
		if len(e.Args) == 0 {
			return Point(0)
		}
		lo, hi := 0.0, 0.0
		for _, arg := range e.Args {
			a := src.iv(arg)
			lo += a.Lo
			hi += a.Hi
		}
		n := float64(len(e.Args))
		return Interval{lo / n, hi / n}
	case OpStdDev:
		return stddevIv(e.Args, src)
	case OpCountDistinct:
		return countDistinctIv(e.Args, src)
	case OpEq:
		a, b := src.iv(e.Args[0]), src.iv(e.Args[1])
		return boolIv(a.Fixed() && b.Fixed() && a.Lo == b.Lo, a.Hi < b.Lo || b.Hi < a.Lo)
	case OpNe:
		a, b := src.iv(e.Args[0]), src.iv(e.Args[1])
		return boolIv(a.Hi < b.Lo || b.Hi < a.Lo, a.Fixed() && b.Fixed() && a.Lo == b.Lo)
	case OpLt:
		a, b := src.iv(e.Args[0]), src.iv(e.Args[1])
		return boolIv(a.Hi < b.Lo, a.Lo >= b.Hi)
	case OpLe:
		a, b := src.iv(e.Args[0]), src.iv(e.Args[1])
		return boolIv(a.Hi <= b.Lo, a.Lo > b.Hi)
	case OpGt:
		a, b := src.iv(e.Args[0]), src.iv(e.Args[1])
		return boolIv(a.Lo > b.Hi, a.Hi <= b.Lo)
	case OpGe:
		a, b := src.iv(e.Args[0]), src.iv(e.Args[1])
		return boolIv(a.Lo >= b.Hi, a.Hi < b.Lo)
	case OpAnd:
		a, b := src.iv(e.Args[0]), src.iv(e.Args[1])
		return boolIv(a.True() && b.True(), a.False() || b.False())
	case OpOr:
		a, b := src.iv(e.Args[0]), src.iv(e.Args[1])
		return boolIv(a.True() || b.True(), a.False() && b.False())
	case OpNot:
		a := src.iv(e.Args[0])
		return boolIv(a.False(), a.True())
	case OpXor:
		a, b := src.iv(e.Args[0]), src.iv(e.Args[1])
		aDet, bDet := a.Fixed(), b.Fixed()
		return boolIv(aDet && bDet && a.True() != b.True(), aDet && bDet && a.True() == b.True())
	case OpBoolEq:
		a, b := src.iv(e.Args[0]), src.iv(e.Args[1])
		aDet, bDet := a.Fixed(), b.Fixed()
		return boolIv(aDet && bDet && a.True() == b.True(), aDet && bDet && a.True() != b.True())
	case OpITE:
		c := src.iv(e.Args[0])
		if c.True() {
			return src.iv(e.Args[1])
		}
		if c.False() {
			return src.iv(e.Args[2])
		}
		return src.iv(e.Args[1]).Hull(src.iv(e.Args[2]))
	}
	panic(fmt.Sprintf("solver: interval on unknown op %v", e.Op))
}

// stddevIv bounds the population standard deviation of the argument
// expressions. Upper bound: per-element worst-case deviation from the mean
// interval. Lower bound: if two elements are forced apart by a gap g, any
// assignment has variance >= g^2/(2n), hence stddev >= g/sqrt(2n).
func stddevIv(args []*Expr, src ivSource) Interval {
	n := float64(len(args))
	if n == 0 {
		return Point(0)
	}
	// Two passes over src.iv (a cached O(1) lookup for both the store and
	// trial sources) instead of materializing a []Interval: this runs at
	// every node of an objective-bearing search, so it must not allocate.
	sumLo, sumHi := 0.0, 0.0
	allFixed := true
	maxLo, minHi := math.Inf(-1), math.Inf(1)
	for _, a := range args {
		iv := src.iv(a)
		sumLo += iv.Lo
		sumHi += iv.Hi
		if !iv.Fixed() {
			allFixed = false
		}
		maxLo = math.Max(maxLo, iv.Lo)
		minHi = math.Min(minHi, iv.Hi)
	}
	if allFixed {
		mean := sumLo / n
		variance := 0.0
		for _, a := range args {
			d := src.iv(a).Lo - mean
			variance += d * d
		}
		variance /= n
		if variance < 0 {
			variance = 0
		}
		v := math.Sqrt(variance)
		return Point(v)
	}
	meanLo, meanHi := sumLo/n, sumHi/n
	ub := 0.0
	for _, a := range args {
		iv := src.iv(a)
		dev := math.Max(iv.Hi-meanLo, meanHi-iv.Lo)
		if dev < 0 {
			dev = 0
		}
		ub += dev * dev
	}
	ub = math.Sqrt(ub / n)
	lb := 0.0
	if g := maxLo - minHi; g > 0 {
		lb = g / math.Sqrt(2*n)
	}
	return Interval{lb, ub}
}

// countDistinctIv bounds the number of distinct values among the arguments.
func countDistinctIv(args []*Expr, src ivSource) Interval {
	if len(args) == 0 {
		return Point(0)
	}
	allFixed := true
	fixed := make(map[float64]struct{})
	for _, a := range args {
		iv := src.iv(a)
		if iv.Fixed() {
			fixed[iv.Lo] = struct{}{}
		} else {
			allFixed = false
		}
	}
	if allFixed {
		return Point(float64(len(fixed)))
	}
	lo := float64(len(fixed))
	if lo < 1 {
		lo = 1
	}
	return Interval{lo, float64(len(args))}
}

func mulIv(a, b Interval) Interval {
	p1, p2, p3, p4 := a.Lo*b.Lo, a.Lo*b.Hi, a.Hi*b.Lo, a.Hi*b.Hi
	return Interval{
		math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4)),
	}
}

func divIv(a, b Interval) Interval {
	if b.Contains(0) {
		// Denominator may be zero: no useful bound.
		return Interval{math.Inf(-1), math.Inf(1)}
	}
	p1, p2, p3, p4 := a.Lo/b.Lo, a.Lo/b.Hi, a.Hi/b.Lo, a.Hi/b.Hi
	return Interval{
		math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4)),
	}
}

func absIv(a Interval) Interval {
	if a.Lo >= 0 {
		return a
	}
	if a.Hi <= 0 {
		return Interval{-a.Hi, -a.Lo}
	}
	return Interval{0, math.Max(-a.Lo, a.Hi)}
}
