package solver

import (
	"fmt"
	"sync/atomic"
)

// Var is an integer decision variable with a finite domain. The constraint
// solver assigns it a value from its domain; in Cologne these are the solver
// attributes declared through the Colog var keyword (e.g. the V indicator in
// assign(Vid,Hid,V)).
type Var struct {
	ID   int
	Name string
	Dom  Domain
	expr *Expr // the OpVar node for this variable
}

func (v *Var) String() string { return fmt.Sprintf("%s%s", v.Name, v.Dom) }

// Model holds decision variables, posted constraints, and an optional
// objective. A Model is built once per COP invocation and solved by Solve.
// Variable creation, Require, and objective installation are not safe for
// concurrent use; expression construction is — node IDs are allocated
// atomically so parallel grounding workers can build expression trees
// against a shared model while deferring constraint posts.
type Model struct {
	vars        []*Var
	constraints []*Expr
	objective   *Expr
	sense       Sense
	nodes       atomic.Int64 // next expression ID

	// rev counts structural mutations (constraint posts or replacements,
	// variable and objective changes); prepared metadata built at an older
	// rev is stale.
	rev int64
	// patched lists constant nodes whose value was changed in place by
	// PatchConst since the last prepare; the cached linear shapes covering
	// them are refreshed lazily.
	patched []int32

	// prep caches the propagation engine's search metadata (expression DAG
	// indexes, propagator shapes); it is rebuilt lazily when constraints or
	// nodes were added since it was built. See Model.Prepare.
	prep *prepared
}

// NewModel creates an empty model in satisfy mode.
func NewModel() *Model { return &Model{sense: Satisfy} }

// NumVars returns the number of decision variables.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints returns the number of posted constraints.
func (m *Model) NumConstraints() int { return len(m.constraints) }

// NumExprNodes returns the number of expression DAG nodes created so far.
func (m *Model) NumExprNodes() int { return int(m.nodes.Load()) }

// Vars returns the model's variables in creation order. The slice must not
// be mutated.
func (m *Model) Vars() []*Var { return m.vars }

// Constraints returns the posted constraints. The slice must not be mutated.
func (m *Model) Constraints() []*Expr { return m.constraints }

// Objective returns the objective expression and sense (nil for satisfy).
func (m *Model) Objective() (*Expr, Sense) { return m.objective, m.sense }

// IntVar creates a decision variable with the contiguous domain [lo,hi].
func (m *Model) IntVar(name string, lo, hi int64) *Var {
	return m.VarWithDomain(name, NewRangeDomain(lo, hi))
}

// BoolVar creates a 0/1 decision variable.
func (m *Model) BoolVar(name string) *Var {
	return m.VarWithDomain(name, BinaryDomain())
}

// VarWithDomain creates a decision variable with an explicit domain.
func (m *Model) VarWithDomain(name string, dom Domain) *Var {
	if dom.Empty() {
		panic(fmt.Sprintf("solver: variable %q created with empty domain", name))
	}
	v := &Var{ID: len(m.vars), Name: name, Dom: dom}
	v.expr = m.newExpr(OpVar, 0, v)
	m.vars = append(m.vars, v)
	m.rev++
	return v
}

func (m *Model) newExpr(op Op, k float64, v *Var, args ...*Expr) *Expr {
	id := int(m.nodes.Add(1)) - 1
	return &Expr{ID: id, Op: op, K: k, Var: v, Args: args, model: m}
}

// Const creates a numeric literal node.
func (m *Model) Const(v float64) *Expr { return m.newExpr(OpConst, v, nil) }

// ConstInt creates a numeric literal node from an integer.
func (m *Model) ConstInt(v int64) *Expr { return m.Const(float64(v)) }

// Bool creates a boolean literal (encoded as the comparison 1==1 or 1==0 so
// the node keeps boolean static type).
func (m *Model) Bool(b bool) *Expr {
	one := m.Const(1)
	if b {
		return m.newExpr(OpEq, 0, nil, one, one)
	}
	return m.newExpr(OpEq, 0, nil, one, m.Const(0))
}

// VarExpr returns the expression node referencing v.
func (m *Model) VarExpr(v *Var) *Expr { return v.expr }

func (m *Model) checkNumeric(ctx string, args ...*Expr) {
	for _, a := range args {
		if a.IsBool() {
			panic(&ErrTypeMismatch{Want: "numeric", Got: "bool", Context: ctx})
		}
	}
}

func (m *Model) checkBool(ctx string, args ...*Expr) {
	for _, a := range args {
		if !a.IsBool() {
			panic(&ErrTypeMismatch{Want: "bool", Got: "numeric", Context: ctx})
		}
	}
}

// Add returns a+b, folding constants.
func (m *Model) Add(a, b *Expr) *Expr {
	m.checkNumeric("+", a, b)
	if a.IsConst() && b.IsConst() {
		return m.Const(a.K + b.K)
	}
	return m.newExpr(OpAdd, 0, nil, a, b)
}

// Sub returns a-b, folding constants.
func (m *Model) Sub(a, b *Expr) *Expr {
	m.checkNumeric("-", a, b)
	if a.IsConst() && b.IsConst() {
		return m.Const(a.K - b.K)
	}
	return m.newExpr(OpSub, 0, nil, a, b)
}

// Mul returns a*b, folding constants and the multiplicative identities.
func (m *Model) Mul(a, b *Expr) *Expr {
	m.checkNumeric("*", a, b)
	switch {
	case a.IsConst() && b.IsConst():
		return m.Const(a.K * b.K)
	case a.IsConst() && a.K == 1:
		return b
	case b.IsConst() && b.K == 1:
		return a
	case a.IsConst() && a.K == 0, b.IsConst() && b.K == 0:
		return m.Const(0)
	}
	return m.newExpr(OpMul, 0, nil, a, b)
}

// MulKeep returns a*b without any folding. The grounder uses it so that a
// constant grounded from a table cell stays a node in the DAG even when its
// current value is a multiplicative identity: a later PatchConst must be
// able to rewrite it in place, and a fold would silently detach it (the
// propagation engines price Mul-by-constant identically either way).
func (m *Model) MulKeep(a, b *Expr) *Expr {
	m.checkNumeric("*", a, b)
	return m.newExpr(OpMul, 0, nil, a, b)
}

// Div returns a/b (real division), folding constants.
func (m *Model) Div(a, b *Expr) *Expr {
	m.checkNumeric("/", a, b)
	if a.IsConst() && b.IsConst() && b.K != 0 {
		return m.Const(a.K / b.K)
	}
	return m.newExpr(OpDiv, 0, nil, a, b)
}

// Neg returns -a.
func (m *Model) Neg(a *Expr) *Expr {
	m.checkNumeric("neg", a)
	if a.IsConst() {
		return m.Const(-a.K)
	}
	return m.newExpr(OpNeg, 0, nil, a)
}

// Abs returns |a|.
func (m *Model) Abs(a *Expr) *Expr {
	m.checkNumeric("abs", a)
	if a.IsConst() {
		if a.K < 0 {
			return m.Const(-a.K)
		}
		return a
	}
	return m.newExpr(OpAbs, 0, nil, a)
}

// Sum returns the n-ary sum of args (0 for an empty list).
func (m *Model) Sum(args ...*Expr) *Expr {
	m.checkNumeric("sum", args...)
	if len(args) == 0 {
		return m.Const(0)
	}
	if len(args) == 1 {
		return args[0]
	}
	return m.newExpr(OpSum, 0, nil, args...)
}

// SumAbs returns the sum of absolute values of args (the SUMABS aggregate
// used by the Follow-the-Sun migration cost rule d7).
func (m *Model) SumAbs(args ...*Expr) *Expr {
	m.checkNumeric("sumabs", args...)
	if len(args) == 0 {
		return m.Const(0)
	}
	return m.newExpr(OpSumAbs, 0, nil, args...)
}

// Avg returns the arithmetic mean of args.
func (m *Model) Avg(args ...*Expr) *Expr {
	m.checkNumeric("avg", args...)
	if len(args) == 0 {
		return m.Const(0)
	}
	return m.newExpr(OpAvg, 0, nil, args...)
}

// Min returns the n-ary minimum.
func (m *Model) Min(args ...*Expr) *Expr {
	m.checkNumeric("min", args...)
	if len(args) == 1 {
		return args[0]
	}
	return m.newExpr(OpMin, 0, nil, args...)
}

// Max returns the n-ary maximum.
func (m *Model) Max(args ...*Expr) *Expr {
	m.checkNumeric("max", args...)
	if len(args) == 1 {
		return args[0]
	}
	return m.newExpr(OpMax, 0, nil, args...)
}

// StdDev returns the population standard deviation of args (the STDEV
// aggregate driving the ACloud load-balancing objective).
func (m *Model) StdDev(args ...*Expr) *Expr {
	m.checkNumeric("stdev", args...)
	if len(args) == 0 {
		return m.Const(0)
	}
	return m.newExpr(OpStdDev, 0, nil, args...)
}

// CountDistinct returns the number of distinct values among args (the UNIQUE
// aggregate bounding assigned channels per radio interface).
func (m *Model) CountDistinct(args ...*Expr) *Expr {
	m.checkNumeric("unique", args...)
	if len(args) == 0 {
		return m.Const(0)
	}
	return m.newExpr(OpCountDistinct, 0, nil, args...)
}

func (m *Model) cmp(op Op, a, b *Expr) *Expr {
	// Comparing two booleans is equivalence/xor; route to the reified ops so
	// the Colog idiom (V==1)==(C==1) type-checks naturally.
	if a.IsBool() && b.IsBool() {
		switch op {
		case OpEq:
			return m.newExpr(OpBoolEq, 0, nil, a, b)
		case OpNe:
			return m.newExpr(OpXor, 0, nil, a, b)
		}
	}
	m.checkNumeric(op.String(), a, b)
	return m.newExpr(op, 0, nil, a, b)
}

// Eq returns a==b. On two booleans it builds logical equivalence.
func (m *Model) Eq(a, b *Expr) *Expr { return m.cmp(OpEq, a, b) }

// Ne returns a!=b. On two booleans it builds exclusive-or.
func (m *Model) Ne(a, b *Expr) *Expr { return m.cmp(OpNe, a, b) }

// Lt returns a<b.
func (m *Model) Lt(a, b *Expr) *Expr { return m.cmp(OpLt, a, b) }

// Le returns a<=b.
func (m *Model) Le(a, b *Expr) *Expr { return m.cmp(OpLe, a, b) }

// Gt returns a>b.
func (m *Model) Gt(a, b *Expr) *Expr { return m.cmp(OpGt, a, b) }

// Ge returns a>=b.
func (m *Model) Ge(a, b *Expr) *Expr { return m.cmp(OpGe, a, b) }

// And returns a&&b.
func (m *Model) And(a, b *Expr) *Expr {
	m.checkBool("&&", a, b)
	return m.newExpr(OpAnd, 0, nil, a, b)
}

// Or returns a||b.
func (m *Model) Or(a, b *Expr) *Expr {
	m.checkBool("||", a, b)
	return m.newExpr(OpOr, 0, nil, a, b)
}

// Not returns !a.
func (m *Model) Not(a *Expr) *Expr {
	m.checkBool("!", a)
	return m.newExpr(OpNot, 0, nil, a)
}

// ITE returns if cond then a else b.
func (m *Model) ITE(cond, a, b *Expr) *Expr {
	m.checkBool("ite", cond)
	m.checkNumeric("ite", a, b)
	return m.newExpr(OpITE, 0, nil, cond, a, b)
}

// Require posts a constraint: e must be true in every solution.
func (m *Model) Require(e *Expr) {
	m.checkBool("require", e)
	m.constraints = append(m.constraints, e)
	m.rev++
}

// SetConstraints replaces the posted constraint list wholesale. The
// incremental grounder reassembles the list in canonical rule order after
// patching the grounding cache; when the new list is element-wise identical
// to the current one the call is a no-op, preserving the cached search
// metadata.
func (m *Model) SetConstraints(cs []*Expr) {
	if len(cs) == len(m.constraints) {
		same := true
		for i, c := range cs {
			if m.constraints[i] != c {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	for _, c := range cs {
		m.checkBool("require", c)
	}
	m.constraints = cs
	m.rev++
}

// PatchConst changes the value of a constant node in place. This is the
// solver half of incremental re-grounding: when only a ground table cell
// changed between solves, the grounder rewrites the one constant it grounded
// into instead of rebuilding the expression DAG. The cached linear-propagator
// shapes covering the constant are refreshed on the next Prepare/Solve.
func (m *Model) PatchConst(e *Expr, v float64) {
	if e.Op != OpConst {
		panic("solver: PatchConst on a non-constant node")
	}
	if e.K == v {
		return
	}
	e.K = v
	m.patched = append(m.patched, int32(e.ID))
}

// Minimize sets the objective to minimize e.
func (m *Model) Minimize(e *Expr) {
	m.checkNumeric("minimize", e)
	if m.objective != e || m.sense != Minimize {
		m.objective, m.sense = e, Minimize
		m.rev++
	}
}

// Maximize sets the objective to maximize e.
func (m *Model) Maximize(e *Expr) {
	m.checkNumeric("maximize", e)
	if m.objective != e || m.sense != Maximize {
		m.objective, m.sense = e, Maximize
		m.rev++
	}
}

// SetObjective installs an objective wholesale (nil e with Satisfy clears
// it); a no-op when nothing changes, preserving cached search metadata —
// the incremental grounder re-derives the objective every solve the goal
// predicate churns, and it usually resolves to the same cached expression.
func (m *Model) SetObjective(e *Expr, s Sense) {
	if e != nil {
		m.checkNumeric(s.String(), e)
	}
	if m.objective == e && m.sense == s {
		return
	}
	m.objective, m.sense = e, s
	m.rev++
}

// SetSatisfy clears the objective (pure constraint satisfaction).
func (m *Model) SetSatisfy() {
	if m.objective != nil || m.sense != Satisfy {
		m.objective, m.sense = nil, Satisfy
		m.rev++
	}
}
