package solver

import (
	"math"
	"sort"
)

// Linear-constraint recognition and bounds propagation. Grounded Colog
// programs are dominated by linear constraints — assignment counts
// (SUM<V> == 1), capacity caps (SUM<R> <= cap), migration bounds — and the
// generic interval check only detects violation after the fact. For
// constraints of the form sum(c_i * x_i) op K the solver extracts the
// coefficients once and, during search, tightens each free variable's
// domain from the residual slack, the same propagation a dedicated linear
// propagator performs in Gecode.

// linTerm is one c*x monomial.
type linTerm struct {
	coef float64
	v    *Var
}

// linearCon is a recognized linear constraint sum(terms) + k op 0 with
// op in {<=, ==, >=} normalized to <= / == forms.
type linearCon struct {
	terms []linTerm
	k     float64
	op    Op // OpLe, OpGe or OpEq over sum(terms)+k vs 0... normalized: sum op -k
}

// extractLinear recognizes e as a linear comparison and returns its
// normalized form (sum(c_i x_i) op K). ok is false when e is not linear.
func extractLinear(e *Expr) (terms []linTerm, op Op, K float64, ok bool) {
	switch e.Op {
	case OpLe, OpLt, OpGe, OpGt, OpEq:
	default:
		return nil, 0, 0, false
	}
	lhs, lok := linearize(e.Args[0])
	rhs, rok := linearize(e.Args[1])
	if !lok || !rok {
		return nil, 0, 0, false
	}
	// Move everything left: lhs - rhs op 0.
	sum := map[int]*linTerm{}
	k := lhs.k - rhs.k
	add := func(ts []linTerm, sign float64) {
		for _, t := range ts {
			if cur, in := sum[t.v.ID]; in {
				cur.coef += sign * t.coef
			} else {
				cp := t
				cp.coef *= sign
				sum[t.v.ID] = &cp
			}
		}
	}
	add(lhs.terms, 1)
	add(rhs.terms, -1)
	for _, t := range sum {
		if t.coef != 0 {
			terms = append(terms, *t)
		}
	}
	// Deterministic term order (the accumulator map above is unordered):
	// both engines propagate and, with fractional coefficients, accumulate
	// sums in the same sequence.
	sort.Slice(terms, func(i, j int) bool { return terms[i].v.ID < terms[j].v.ID })
	// Normalize strict ops on integers: x < y  <=>  x <= y-1.
	op = e.Op
	K = -k
	switch e.Op {
	case OpLt:
		op, K = OpLe, K-1
	case OpGt:
		op, K = OpGe, K+1
	}
	return terms, op, K, true
}

type linForm struct {
	terms []linTerm
	k     float64
}

// linearize flattens a numeric expression into sum(c_i x_i) + k, failing on
// any non-linear structure.
func linearize(e *Expr) (linForm, bool) {
	switch e.Op {
	case OpConst:
		return linForm{k: e.K}, true
	case OpVar:
		return linForm{terms: []linTerm{{coef: 1, v: e.Var}}}, true
	case OpNeg:
		f, ok := linearize(e.Args[0])
		if !ok {
			return linForm{}, false
		}
		for i := range f.terms {
			f.terms[i].coef = -f.terms[i].coef
		}
		f.k = -f.k
		return f, true
	case OpAdd, OpSub:
		a, ok := linearize(e.Args[0])
		if !ok {
			return linForm{}, false
		}
		b, ok := linearize(e.Args[1])
		if !ok {
			return linForm{}, false
		}
		sign := 1.0
		if e.Op == OpSub {
			sign = -1
		}
		for _, t := range b.terms {
			t.coef *= sign
			a.terms = append(a.terms, t)
		}
		a.k += sign * b.k
		return a, true
	case OpSum:
		out := linForm{}
		for _, arg := range e.Args {
			f, ok := linearize(arg)
			if !ok {
				return linForm{}, false
			}
			out.terms = append(out.terms, f.terms...)
			out.k += f.k
		}
		return out, true
	case OpMul:
		a, aok := linearize(e.Args[0])
		b, bok := linearize(e.Args[1])
		if !aok || !bok {
			return linForm{}, false
		}
		switch {
		case len(a.terms) == 0: // const * linear
			for i := range b.terms {
				b.terms[i].coef *= a.k
			}
			b.k *= a.k
			return b, true
		case len(b.terms) == 0: // linear * const
			for i := range a.terms {
				a.terms[i].coef *= b.k
			}
			a.k *= b.k
			return a, true
		}
		return linForm{}, false
	}
	return linForm{}, false
}

// linearProps holds the model's recognized linear constraints, indexed by
// variable for propagation.
type linearProps struct {
	cons  []linearCon
	byVar [][]int // var ID -> constraint indices
}

func buildLinearProps(m *Model, minTerms int) *linearProps {
	// The linear shapes were classified once by Model.Prepare (or the first
	// Solve); both engines share that extraction and apply the same
	// attachment threshold.
	p := m.prepareWith(minTerms)
	lp := &linearProps{byVar: make([][]int, len(m.vars))}
	for _, ls := range p.lin {
		idx := len(lp.cons)
		lp.cons = append(lp.cons, linearCon{terms: ls.terms, k: ls.k, op: ls.op})
		for _, t := range ls.terms {
			lp.byVar[t.v.ID] = append(lp.byVar[t.v.ID], idx)
		}
	}
	return lp
}

// propagate tightens the domains of free variables in the constraints
// touching changed variable vid. It returns false on a wipe-out
// (infeasible), and records every narrowing through narrow() so the caller
// can trail it.
func (lp *linearProps) propagate(s *searcher, vid int) bool {
	for _, ci := range lp.byVar[vid] {
		c := &lp.cons[ci]
		if !lp.propagateOne(s, c) {
			return false
		}
	}
	return true
}

func (lp *linearProps) propagateOne(s *searcher, c *linearCon) bool {
	// Bounds of the sum excluding each free variable.
	// First pass: total min/max.
	minSum, maxSum := 0.0, 0.0
	for _, t := range c.terms {
		d := s.ev.dom[t.v.ID]
		if d.Empty() {
			return false
		}
		lo, hi := float64(d.Min())*t.coef, float64(d.Max())*t.coef
		if lo > hi {
			lo, hi = hi, lo
		}
		minSum += lo
		maxSum += hi
	}
	checkLe := c.op == OpLe || c.op == OpEq // sum <= K must hold
	checkGe := c.op == OpGe || c.op == OpEq // sum >= K must hold
	if checkLe && minSum > c.k+1e-9 {
		return false
	}
	if checkGe && maxSum < c.k-1e-9 {
		return false
	}
	// Second pass: tighten each free variable from the residual.
	for _, t := range c.terms {
		d := s.ev.dom[t.v.ID]
		if d.Size() <= 1 || t.coef == 0 {
			continue
		}
		lo, hi := float64(d.Min())*t.coef, float64(d.Max())*t.coef
		if lo > hi {
			lo, hi = hi, lo
		}
		restMin, restMax := minSum-lo, maxSum-hi
		// c.op constraints on t.coef * x:
		//   <=: coef*x <= K - restMin
		//   >=: coef*x >= K - restMax
		var newLo, newHi float64 = math.Inf(-1), math.Inf(1)
		if checkLe {
			bound := c.k - restMin
			if t.coef > 0 {
				newHi = math.Min(newHi, bound/t.coef)
			} else {
				newLo = math.Max(newLo, bound/t.coef)
			}
		}
		if checkGe {
			bound := c.k - restMax
			if t.coef > 0 {
				newLo = math.Max(newLo, bound/t.coef)
			} else {
				newHi = math.Min(newHi, bound/t.coef)
			}
		}
		if math.IsInf(newLo, -1) && math.IsInf(newHi, 1) {
			continue
		}
		// Clamp infinite bounds to the variable's own range before integer
		// conversion (int64(Inf) is undefined).
		if math.IsInf(newLo, -1) {
			newLo = float64(d.Min())
		}
		if math.IsInf(newHi, 1) {
			newHi = float64(d.Max())
		}
		iLo, iHi := int64(math.Ceil(newLo-1e-9)), int64(math.Floor(newHi+1e-9))
		if float64(d.Min()) >= float64(iLo) && float64(d.Max()) <= float64(iHi) {
			continue // nothing to prune
		}
		kept := make([]int64, 0, d.Size())
		for _, v := range d.Values() {
			if v >= iLo && v <= iHi {
				kept = append(kept, v)
			}
		}
		if len(kept) == 0 {
			return false
		}
		if len(kept) < d.Size() {
			s.narrowVar(t.v.ID, NewDomain(kept...))
			if len(kept) == 1 {
				s.assigned[t.v.ID] = true
				s.assign[t.v.ID] = kept[0]
			}
			// Recompute the sums cheaply by restarting this constraint.
			return lp.propagateOne(s, c)
		}
	}
	return true
}
