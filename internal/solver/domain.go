package solver

import (
	"fmt"
	"sort"
	"strings"
)

// Domain is a finite set of candidate integer values for a decision
// variable, stored sorted ascending without duplicates. Domains are small in
// Cologne workloads (binary assignment indicators, channel numbers, bounded
// migration quantities), so an explicit sorted slice is both simple and
// cache-friendly.
type Domain struct {
	vals []int64
}

// NewDomain builds a domain from an arbitrary value list; duplicates are
// removed and values sorted.
func NewDomain(vals ...int64) Domain {
	cp := make([]int64, len(vals))
	copy(cp, vals)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:0]
	for i, v := range cp {
		if i == 0 || v != cp[i-1] {
			out = append(out, v)
		}
	}
	return Domain{vals: out}
}

// NewRangeDomain builds the contiguous domain {lo, lo+1, ..., hi}.
// It panics if hi < lo.
func NewRangeDomain(lo, hi int64) Domain {
	if hi < lo {
		panic(fmt.Sprintf("solver: invalid domain range [%d,%d]", lo, hi))
	}
	vals := make([]int64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		vals = append(vals, v)
	}
	return Domain{vals: vals}
}

// BinaryDomain is the {0,1} domain used by assignment indicator variables.
func BinaryDomain() Domain { return Domain{vals: []int64{0, 1}} }

// Size returns the number of candidate values.
func (d Domain) Size() int { return len(d.vals) }

// Empty reports whether the domain has no values.
func (d Domain) Empty() bool { return len(d.vals) == 0 }

// Min returns the smallest value; it panics on an empty domain.
func (d Domain) Min() int64 { return d.vals[0] }

// Max returns the largest value; it panics on an empty domain.
func (d Domain) Max() int64 { return d.vals[len(d.vals)-1] }

// Values returns the candidate values in ascending order. The returned slice
// must not be mutated.
func (d Domain) Values() []int64 { return d.vals }

// singletonView returns the domain {v} as a view into d's backing array —
// no allocation. Domains are immutable after creation, so the alias is safe.
// Falls back to a fresh domain when v is not in d.
func (d Domain) singletonView(v int64) Domain {
	i := sort.Search(len(d.vals), func(i int) bool { return d.vals[i] >= v })
	if i < len(d.vals) && d.vals[i] == v {
		return Domain{vals: d.vals[i : i+1]}
	}
	return NewDomain(v)
}

// domainFromSorted wraps an ascending, duplicate-free slice the caller owns,
// skipping NewDomain's copy and sort. Propagators build their kept-value
// lists in ascending order, so this is their narrowing constructor.
func domainFromSorted(vals []int64) Domain { return Domain{vals: vals} }

// Contains reports whether v is a candidate value.
func (d Domain) Contains(v int64) bool {
	i := sort.Search(len(d.vals), func(i int) bool { return d.vals[i] >= v })
	return i < len(d.vals) && d.vals[i] == v
}

// Remove returns a copy of the domain without v. If v is absent the original
// domain is returned unchanged.
func (d Domain) Remove(v int64) Domain {
	i := sort.Search(len(d.vals), func(i int) bool { return d.vals[i] >= v })
	if i >= len(d.vals) || d.vals[i] != v {
		return d
	}
	out := make([]int64, 0, len(d.vals)-1)
	out = append(out, d.vals[:i]...)
	out = append(out, d.vals[i+1:]...)
	return Domain{vals: out}
}

// Intersect returns the set intersection of two domains.
func (d Domain) Intersect(o Domain) Domain {
	out := make([]int64, 0, min(len(d.vals), len(o.vals)))
	i, j := 0, 0
	for i < len(d.vals) && j < len(o.vals) {
		switch {
		case d.vals[i] == o.vals[j]:
			out = append(out, d.vals[i])
			i++
			j++
		case d.vals[i] < o.vals[j]:
			i++
		default:
			j++
		}
	}
	return Domain{vals: out}
}

// String renders the domain compactly, collapsing contiguous runs.
func (d Domain) String() string {
	if len(d.vals) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	i := 0
	for i < len(d.vals) {
		j := i
		for j+1 < len(d.vals) && d.vals[j+1] == d.vals[j]+1 {
			j++
		}
		if i > 0 {
			b.WriteByte(',')
		}
		if j > i+1 {
			fmt.Fprintf(&b, "%d..%d", d.vals[i], d.vals[j])
		} else if j == i+1 {
			fmt.Fprintf(&b, "%d,%d", d.vals[i], d.vals[j])
		} else {
			fmt.Fprintf(&b, "%d", d.vals[i])
		}
		i = j + 1
	}
	b.WriteByte('}')
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
