// Package solver implements a finite-domain integer constraint solver with
// branch-and-bound optimization. It plays the role Gecode plays in the
// Cologne paper: Colog solver rules are grounded into an expression DAG over
// decision variables, constraints restrict the search space, and a
// goal-directed top-down search finds (approximately) optimal assignments
// under a configurable time budget (the paper's SOLVER_MAX_TIME).
//
// The solver is anytime: when the budget expires it returns the best
// incumbent found so far, mirroring the paper's close-to-optimal behaviour
// under a 10-second cap (section 6.2).
package solver

import (
	"errors"
	"fmt"
	"time"
)

// Status describes the outcome of a Solve call.
type Status int

const (
	// StatusUnknown means the search neither found a solution nor proved
	// infeasibility within its budget.
	StatusUnknown Status = iota
	// StatusOptimal means the returned solution was proved optimal (or, for
	// satisfy problems, a solution was found).
	StatusOptimal
	// StatusFeasible means a solution was found but the search stopped (time
	// budget or node limit) before proving optimality.
	StatusFeasible
	// StatusInfeasible means the search proved there is no solution.
	StatusInfeasible
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// Sense is the direction of optimization.
type Sense int

const (
	// Satisfy searches for any assignment meeting all constraints.
	Satisfy Sense = iota
	// Minimize searches for the assignment minimizing the objective.
	Minimize
	// Maximize searches for the assignment maximizing the objective.
	Maximize
)

// String returns the Colog keyword for the sense.
func (s Sense) String() string {
	switch s {
	case Minimize:
		return "minimize"
	case Maximize:
		return "maximize"
	default:
		return "satisfy"
	}
}

// Options control a single Solve invocation.
type Options struct {
	// MaxTime bounds wall-clock search time (the paper's SOLVER_MAX_TIME).
	// Zero means no limit.
	MaxTime time.Duration
	// MaxNodes bounds the number of search nodes explored. Zero means no
	// limit.
	MaxNodes int64
	// Hints supplies a warm-start value per variable ID; the hinted value is
	// branched on first, so the first incumbent reproduces the hint when it
	// is feasible. The ACloud policy warm-starts from the current VM
	// placement.
	Hints map[int]int64
	// Propagate enables singleton bounds propagation on binary/small-domain
	// variables after each assignment (stronger pruning, more work per node).
	Propagate bool
	// FirstSolution stops the search at the first incumbent (useful with
	// Hints to reproduce a warm start exactly).
	FirstSolution bool
	// DisableLinear turns off the dedicated linear-constraint propagator
	// (bounds tightening on sum(c_i*x_i) op K constraints); used by the
	// ablation benchmarks.
	DisableLinear bool
	// LinearMinTerms is the minimum number of terms a recognized
	// multi-term linear constraint needs before a dedicated propagator is
	// attached to it. Short sums are cheaper under plain forward checking
	// than under the propagator's per-update bookkeeping, so small
	// multi-term linears are skipped by default; single-term linears are
	// always attached (they tighten a domain once near the root and are
	// nearly free afterwards). 0 selects the built-in default threshold; 1
	// attaches a propagator to every linear constraint (the pre-threshold
	// behavior). Both engines apply the same threshold, keeping their
	// traces aligned.
	LinearMinTerms int
	// DynamicOrder selects the branching variable dynamically by smallest
	// current domain (dom heuristic) instead of the static
	// smallest-initial-domain order. Pays off when propagation shrinks
	// domains unevenly.
	DynamicOrder bool
	// Engine selects the search core: EngineEvent (default) is the
	// event-driven propagation engine, EngineLegacy the seed
	// forward-checking core. In their default configuration the two take
	// identical pruning decisions, so solutions, objectives and node counts
	// match; only the work per node differs.
	Engine Engine
	// Fixpoint (event engine only) drains the propagator queue to fixpoint
	// after every assignment — linear residual tightening plus table
	// propagators on small binary constraints — instead of the legacy
	// single-pass schedule. Strictly stronger pruning: statuses and optima
	// are unchanged, but node counts drop, so under a node budget the
	// incumbent may differ from the default configuration's.
	Fixpoint bool
	// Restarts, when positive, runs the search as a restart sequence:
	// Restarts runs capped at geometrically growing node limits, then a
	// final run on the remaining budget. The best incumbent and conflict
	// activity carry across runs.
	Restarts int
	// PhaseSaving (with Restarts) feeds each restart's warm-start hints
	// from the best incumbent so far — or, before the first incumbent, the
	// last values branched on — so later runs dive back to the promising
	// region first.
	PhaseSaving bool
	// ActivityOrder (event engine only) branches on the variable with the
	// highest conflict activity (scaled by current domain size) instead of
	// the static order. Changes traversal order, so with ties or budgets
	// the returned solution may differ from the default configuration's.
	ActivityOrder bool
	// ValueOrder optionally reorders the candidate values for a variable;
	// it receives the variable and the default order and returns the order
	// to use. Nil keeps the default ascending order (after any hint).
	ValueOrder func(v *Var, vals []int64) []int64
	// Interrupt, when non-nil, is an external budget hook polled at the
	// same cadence as the wall-clock deadline check (every 256 search
	// nodes). The first call that returns true stops the search with the
	// best incumbent found so far (anytime semantics) and marks
	// Stats.Interrupted. While the hook returns false the search trace is
	// byte-identical to a run without the hook — installing it costs
	// nothing until it fires. The serving runtime's per-tick deadline is
	// this hook.
	Interrupt func() bool
	// OnIncumbent, when non-nil, is called synchronously each time the
	// search accepts a strictly improving incumbent: the objective value
	// and a snapshot of the assignment (indexed by Var.ID; the callback
	// owns the slice). Across a whole Solve call — restart sequences
	// included — the reported objectives are monotonically non-worsening,
	// so the last snapshot received before a budget interrupt is exactly
	// the solution the interrupted Solve returns.
	OnIncumbent func(obj float64, vals []int64)
}

// Stats reports search effort.
type Stats struct {
	Nodes     int64         // search nodes explored
	Failures  int64         // dead ends (constraint violations or bound cuts)
	Solutions int64         // incumbents found
	Elapsed   time.Duration // wall-clock search time
	// Interrupted reports that the Options.Interrupt hook stopped the
	// search before it ran to completion. Node and wall-clock budget stops
	// do not set it; callers distinguish "my deadline fired" from "the
	// configured budget expired" with this flag.
	Interrupted bool
}

// Solution is the result of a Solve call.
type Solution struct {
	Status    Status
	Values    []int64 // indexed by Var.ID; valid when Status is Optimal or Feasible
	Objective float64 // objective value; 0 for satisfy problems
	Stats     Stats
}

// Value returns the assigned value of v in the solution.
func (s *Solution) Value(v *Var) int64 {
	if v == nil || s.Values == nil || v.ID >= len(s.Values) {
		return 0
	}
	return s.Values[v.ID]
}

// Feasible reports whether the solution carries a usable assignment.
func (s *Solution) Feasible() bool {
	return s.Status == StatusOptimal || s.Status == StatusFeasible
}

// ErrNoVariables is returned when Solve is called on a model without
// decision variables and with an objective that cannot be evaluated.
var ErrNoVariables = errors.New("solver: model has no decision variables")

// ErrTypeMismatch is returned when a boolean expression is used in a numeric
// position or vice versa.
type ErrTypeMismatch struct {
	Want, Got string
	Context   string
}

func (e *ErrTypeMismatch) Error() string {
	return fmt.Sprintf("solver: type mismatch in %s: want %s, got %s", e.Context, e.Want, e.Got)
}
