package solver

// propagate.go is the event-driven propagation engine, the default search
// core (Options.Engine = EngineEvent). It replaces the legacy scheme of
// invalidating every memoized interval after each assignment with three
// event-driven structures:
//
//   - an incremental interval store: expression intervals stay valid at all
//     times; a domain change marks the variable's DAG node dirty, and a
//     min-heap ordered by node ID (a topological order, since arguments are
//     always created before their parents) recomputes exactly the nodes
//     whose support changed. Overwritten intervals go on a trail, so
//     backtracking restores them in O(changed) without recomputation.
//   - dedicated incremental linear propagators: each recognized
//     sum(c_i*x_i) op K constraint caches per-term contribution bounds and
//     their running totals; a domain event updates the residuals in O(1)
//     per watching constraint instead of rescanning all terms.
//   - a propagator queue (Options.Fixpoint): domain events schedule the
//     propagators watching the variable — linear residual tightening plus
//     table propagators that enforce domain consistency on small binary
//     constraints — and the queue drains to fixpoint.
//
// In its default configuration the engine takes exactly the same pruning
// decisions as the legacy forward-checking core (same branching order, same
// per-node checks), so search traces — and therefore solutions, objectives,
// and node counts, even under node budgets — are identical; only the work
// per node shrinks. Options.Fixpoint and Options.ActivityOrder opt into
// strictly stronger pruning and conflict-driven variable ordering.
//
// Caveat: cached residual bounds are maintained by adding and subtracting
// per-term deltas. On the integer-valued data Cologne grounds this is exact;
// models with irrational coefficients may see ulp-level differences from the
// legacy engine's freshly accumulated sums.

import (
	"math"
	"sort"
)

// Engine selects the search core for a Solve call.
type Engine int

const (
	// EngineEvent is the event-driven propagation engine (the default).
	EngineEvent Engine = iota
	// EngineLegacy is the seed forward-checking search core, kept for
	// ablation benchmarks and as the equivalence-test reference.
	EngineLegacy
)

// String returns the engine's flag-friendly name.
func (e Engine) String() string {
	if e == EngineLegacy {
		return "legacy"
	}
	return "event"
}

// ---------------------------------------------------------------- shapes

// linShape is a recognized linear constraint sum(c_i*x_i) op K with terms in
// ascending variable-ID order.
type linShape struct {
	terms []linTerm
	op    Op // OpLe, OpGe or OpEq
	k     float64
	ci    int // constraint index
}

// linRef locates one term of one linear constraint from a variable.
type linRef struct {
	con, term int32
}

// prepared caches per-model search metadata shared by every Solve call:
// the expression DAG in evaluable form, parent links for event propagation,
// constraint/variable cross-indexes, and the propagator-shape classification
// of every posted constraint. The grounder calls Model.Prepare after posting
// constraints so classification is part of grounding; Solve falls back to
// preparing lazily for hand-built models.
type prepared struct {
	nExpr  int
	nCons  int
	rev    int64
	linMin int // linear attachment threshold the lin/linByVar tables were built with

	exprs     []*Expr   // expression nodes by ID (nil when unreachable)
	parents   [][]int32 // expression ID -> parent expression IDs
	conRoot   []int32   // constraint index -> root expression ID
	isConRoot []int32   // expression ID -> constraint index + 1 (0 = none)
	varNode   []int32   // variable ID -> its OpVar expression ID
	varCons   [][]int32 // variable ID -> constraint indices (deduplicated)
	conVars   [][]int32 // constraint index -> distinct variable IDs

	lin      []linShape
	linByVar [][]linRef

	shapes map[string]int // shape name -> constraint count
}

// linearMinTermsDefault is the attachment threshold used when
// Options.LinearMinTerms is zero: multi-term linear constraints with fewer
// terms run under generic forward checking instead of a dedicated
// propagator. Chosen from BenchmarkAblationLinearPropagation, where the
// 3-term exactly-one sums' unit-forcing cuts ~36% of the nodes but the
// propagator's update/trail bookkeeping eats the entire saving on both
// engines, while wide capacity sums still win clearly.
//
// Single-term linears are exempt from the threshold (see linAttached): they
// tighten a variable's domain once near the root for O(1) per-node upkeep,
// and dropping them costs BenchmarkFollowSunPerLinkCOP ~40%.
const linearMinTermsDefault = 4

// resolveLinearMinTerms maps the Options field to an effective threshold.
func resolveLinearMinTerms(n int) int {
	if n <= 0 {
		return linearMinTermsDefault
	}
	return n
}

// linAttached reports whether a recognized linear shape with the given term
// count gets a dedicated propagator under threshold linMin.
func linAttached(nTerms, linMin int) bool {
	return nTerms == 1 || nTerms >= linMin
}

// prepare builds (or returns the cached) search metadata with the default
// linear attachment threshold. The cache is invalidated when constraints,
// variables, or expression nodes were added since it was built; constants
// patched in place (Model.PatchConst) refresh just the linear shapes that
// cover them. Not safe for concurrent use, matching Require/Solve.
func (m *Model) prepare() *prepared { return m.prepareWith(0) }

// prepareWith is prepare with an explicit Options.LinearMinTerms value; a
// cached build with a different effective threshold is rebuilt (the linear
// tables are threshold-dependent, the rest of the metadata is not).
func (m *Model) prepareWith(minTerms int) *prepared {
	linMin := resolveLinearMinTerms(minTerms)
	if m.prep != nil && m.prep.rev == m.rev && m.prep.nExpr == m.NumExprNodes() && m.prep.linMin == linMin {
		if len(m.patched) > 0 {
			if !m.prep.refreshPatched(m) {
				m.prep = nil
				return m.prepareWith(minTerms)
			}
			m.patched = m.patched[:0]
		}
		return m.prep
	}
	m.patched = m.patched[:0]
	p := &prepared{
		nExpr:  m.NumExprNodes(),
		nCons:  len(m.constraints),
		rev:    m.rev,
		linMin: linMin,
		shapes: map[string]int{},
	}
	p.exprs = make([]*Expr, p.nExpr)
	p.parents = make([][]int32, p.nExpr)
	var walk func(e *Expr)
	walk = func(e *Expr) {
		if p.exprs[e.ID] != nil {
			return
		}
		p.exprs[e.ID] = e
		for _, a := range e.Args {
			walk(a)
			p.parents[a.ID] = append(p.parents[a.ID], int32(e.ID))
		}
	}
	p.varNode = make([]int32, len(m.vars))
	for i, v := range m.vars {
		p.varNode[i] = int32(v.expr.ID)
		walk(v.expr)
	}
	for _, c := range m.constraints {
		walk(c)
	}
	if m.objective != nil {
		walk(m.objective)
	}

	p.conRoot = make([]int32, len(m.constraints))
	p.isConRoot = make([]int32, p.nExpr)
	p.varCons = make([][]int32, len(m.vars))
	p.conVars = make([][]int32, len(m.constraints))
	p.linByVar = make([][]linRef, len(m.vars))
	scratch := make([]int, 0, 16)
	for ci, c := range m.constraints {
		p.conRoot[ci] = int32(c.ID)
		if p.isConRoot[c.ID] == 0 {
			p.isConRoot[c.ID] = int32(ci) + 1
		}
		scratch = c.Vars(scratch[:0])
		seen := make(map[int]struct{}, len(scratch))
		for _, vid := range scratch {
			if _, ok := seen[vid]; ok {
				continue
			}
			seen[vid] = struct{}{}
			p.varCons[vid] = append(p.varCons[vid], int32(ci))
			p.conVars[ci] = append(p.conVars[ci], int32(vid))
		}
		p.shapes[classifyShape(c, len(p.conVars[ci]))]++
		terms, op, k, ok := extractLinear(c)
		if !ok || len(terms) == 0 || !linAttached(len(terms), p.linMin) {
			continue
		}
		li := int32(len(p.lin))
		p.lin = append(p.lin, linShape{terms: terms, op: op, k: k, ci: ci})
		for ti, t := range terms {
			p.linByVar[t.v.ID] = append(p.linByVar[t.v.ID], linRef{li, int32(ti)})
		}
	}
	m.prep = p
	return p
}

// refreshPatched re-extracts the linear shapes of the constraints covering
// constants patched in place by Model.PatchConst. It returns false when a
// patched value changed a shape structurally — a coefficient reaching or
// leaving zero adds or drops terms — in which case the caller rebuilds the
// whole metadata instead.
func (p *prepared) refreshPatched(m *Model) bool {
	// Climb parent links from each patched constant to every expression
	// covering it.
	covered := make(map[int32]bool, len(m.patched)*4)
	var stack []int32
	for _, id := range m.patched {
		if int(id) < len(p.exprs) && p.exprs[id] != nil && !covered[id] {
			covered[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pid := range p.parents[id] {
			if !covered[pid] {
				covered[pid] = true
				stack = append(stack, pid)
			}
		}
	}
	ciToLin := map[int]int{}
	for li, ls := range p.lin {
		ciToLin[ls.ci] = li
	}
	for ci, root := range p.conRoot {
		if !covered[root] {
			continue
		}
		terms, op, k, ok := extractLinear(m.constraints[ci])
		li, had := ciToLin[ci]
		isLin := ok && len(terms) > 0 && linAttached(len(terms), p.linMin)
		if isLin != had {
			return false // shape appeared or vanished (or crossed the
			// attachment threshold): rebuild
		}
		if !isLin {
			continue // non-linear shapes read constants live
		}
		ls := &p.lin[li]
		if op != ls.op || len(terms) != len(ls.terms) {
			return false
		}
		for i := range terms {
			if terms[i].v != ls.terms[i].v {
				return false // term structure shifted: linByVar refs are stale
			}
		}
		ls.terms, ls.k = terms, k
	}
	return true
}

// classifyShape names the propagator shape a constraint grounds into.
func classifyShape(c *Expr, nVars int) string {
	if terms, _, _, ok := extractLinear(c); ok {
		if len(terms) == 0 {
			return "const"
		}
		return "linear"
	}
	switch nVars {
	case 0:
		return "const"
	case 1:
		return "unary"
	case 2:
		return "binary"
	default:
		return "generic"
	}
}

// ShapeStats returns how many posted constraints ground into each propagator
// shape (linear, unary, binary, generic, const). The map must not be
// mutated.
func (m *Model) ShapeStats() map[string]int {
	return m.prepare().shapes
}

// Prepare classifies the posted constraints into propagator shapes and
// builds the search metadata the propagation engine runs on. It is optional
// — Solve prepares lazily — but the grounder calls it so classification
// happens at grounding time and repeated solves reuse it.
func (m *Model) Prepare() { m.prepare() }

// ------------------------------------------------------ incremental store

type domSave struct {
	vid int32
	dom Domain
}

type ivSave struct {
	id int32
	iv Interval
}

// ivStore keeps an always-valid interval per expression node under the
// current domains. Domain changes mark the variable's node dirty; flush
// recomputes dirty nodes in ascending ID order (children before parents,
// since arguments are created before the expressions using them) and
// propagates dirtiness only where a value actually changed. Every overwrite
// — domain or interval — is trailed, so undoTo restores a prior search state
// exactly, in time proportional to what changed.
type ivStore struct {
	p    *prepared
	dom  []Domain
	memo []Interval

	inHeap []bool
	heap   []int32

	domTrail []domSave
	ivTrail  []ivSave

	// onRestoreDom maintains the searcher's assigned flags during undo.
	onRestoreDom func(vid int, d Domain)

	// watchCons makes flush record the first constraint whose interval
	// turns definitely false (fixpoint mode's free failure detection).
	watchCons bool
	failedCon int32 // constraint index, -1 when none
}

func (st *ivStore) iv(e *Expr) Interval    { return st.memo[e.ID] }
func (st *ivStore) domainOf(v *Var) Domain { return st.dom[v.ID] }

func newIvStore(m *Model, p *prepared) *ivStore {
	st := &ivStore{
		p:         p,
		dom:       make([]Domain, len(m.vars)),
		memo:      make([]Interval, p.nExpr),
		inHeap:    make([]bool, p.nExpr),
		failedCon: -1,
	}
	for i, v := range m.vars {
		st.dom[i] = v.Dom
	}
	// Initial bottom-up evaluation: ascending ID order is topological.
	for id, e := range p.exprs {
		if e != nil {
			st.memo[id] = st.recompute(e)
		}
	}
	return st
}

// recompute computes e's interval reading children straight from the memo
// table: the same arithmetic as computeIv, with the operators hot in
// grounded models inlined to skip the ivSource indirection in the flush
// loop. Falling back to computeIv keeps the two paths value-identical.
func (st *ivStore) recompute(e *Expr) Interval {
	memo := st.memo
	switch e.Op {
	case OpConst:
		return Point(e.K)
	case OpVar:
		d := st.dom[e.Var.ID]
		if d.Empty() {
			return Interval{math.Inf(1), math.Inf(-1)}
		}
		return Interval{float64(d.Min()), float64(d.Max())}
	case OpAdd:
		a, b := memo[e.Args[0].ID], memo[e.Args[1].ID]
		return Interval{a.Lo + b.Lo, a.Hi + b.Hi}
	case OpSub:
		a, b := memo[e.Args[0].ID], memo[e.Args[1].ID]
		return Interval{a.Lo - b.Hi, a.Hi - b.Lo}
	case OpMul:
		return mulIv(memo[e.Args[0].ID], memo[e.Args[1].ID])
	case OpNeg:
		a := memo[e.Args[0].ID]
		return Interval{-a.Hi, -a.Lo}
	case OpAbs:
		return absIv(memo[e.Args[0].ID])
	case OpSum:
		lo, hi := 0.0, 0.0
		for _, arg := range e.Args {
			a := memo[arg.ID]
			lo += a.Lo
			hi += a.Hi
		}
		return Interval{lo, hi}
	case OpSumAbs:
		lo, hi := 0.0, 0.0
		for _, arg := range e.Args {
			a := absIv(memo[arg.ID])
			lo += a.Lo
			hi += a.Hi
		}
		return Interval{lo, hi}
	case OpEq:
		a, b := memo[e.Args[0].ID], memo[e.Args[1].ID]
		return boolIv(a.Fixed() && b.Fixed() && a.Lo == b.Lo, a.Hi < b.Lo || b.Hi < a.Lo)
	case OpNe:
		a, b := memo[e.Args[0].ID], memo[e.Args[1].ID]
		return boolIv(a.Hi < b.Lo || b.Hi < a.Lo, a.Fixed() && b.Fixed() && a.Lo == b.Lo)
	case OpLt:
		a, b := memo[e.Args[0].ID], memo[e.Args[1].ID]
		return boolIv(a.Hi < b.Lo, a.Lo >= b.Hi)
	case OpLe:
		a, b := memo[e.Args[0].ID], memo[e.Args[1].ID]
		return boolIv(a.Hi <= b.Lo, a.Lo > b.Hi)
	case OpGt:
		a, b := memo[e.Args[0].ID], memo[e.Args[1].ID]
		return boolIv(a.Lo > b.Hi, a.Hi <= b.Lo)
	case OpGe:
		a, b := memo[e.Args[0].ID], memo[e.Args[1].ID]
		return boolIv(a.Lo >= b.Hi, a.Hi < b.Lo)
	case OpAnd:
		a, b := memo[e.Args[0].ID], memo[e.Args[1].ID]
		return boolIv(a.True() && b.True(), a.False() || b.False())
	case OpOr:
		a, b := memo[e.Args[0].ID], memo[e.Args[1].ID]
		return boolIv(a.True() || b.True(), a.False() && b.False())
	case OpNot:
		a := memo[e.Args[0].ID]
		return boolIv(a.False(), a.True())
	case OpITE:
		c := memo[e.Args[0].ID]
		if c.True() {
			return memo[e.Args[1].ID]
		}
		if c.False() {
			return memo[e.Args[2].ID]
		}
		return memo[e.Args[1].ID].Hull(memo[e.Args[2].ID])
	}
	return computeIv(e, st)
}

// setDom installs a new domain for vid, trailing the old one and marking the
// variable's DAG node dirty.
func (st *ivStore) setDom(vid int, d Domain) {
	st.domTrail = append(st.domTrail, domSave{int32(vid), st.dom[vid]})
	st.dom[vid] = d
	st.markDirty(st.p.varNode[vid])
}

func (st *ivStore) markDirty(id int32) {
	if st.inHeap[id] {
		return
	}
	st.inHeap[id] = true
	st.heap = append(st.heap, id)
	// Sift up.
	i := len(st.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if st.heap[parent] <= st.heap[i] {
			break
		}
		st.heap[parent], st.heap[i] = st.heap[i], st.heap[parent]
		i = parent
	}
}

func (st *ivStore) popDirty() int32 {
	top := st.heap[0]
	last := len(st.heap) - 1
	st.heap[0] = st.heap[last]
	st.heap = st.heap[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && st.heap[l] < st.heap[small] {
			small = l
		}
		if r < last && st.heap[r] < st.heap[small] {
			small = r
		}
		if small == i {
			break
		}
		st.heap[i], st.heap[small] = st.heap[small], st.heap[i]
		i = small
	}
	return top
}

// flush recomputes every dirty node, in topological (ID) order, trailing and
// propagating only actual changes.
func (st *ivStore) flush() {
	for len(st.heap) > 0 {
		id := st.popDirty()
		st.inHeap[id] = false
		e := st.p.exprs[id]
		if e == nil {
			continue
		}
		niv := st.recompute(e)
		if niv == st.memo[id] {
			continue
		}
		st.ivTrail = append(st.ivTrail, ivSave{id, st.memo[id]})
		st.memo[id] = niv
		for _, pid := range st.p.parents[id] {
			st.markDirty(pid)
		}
		if st.watchCons && niv.False() && st.failedCon < 0 {
			if ci := st.p.isConRoot[id]; ci != 0 {
				st.failedCon = ci - 1
			}
		}
	}
}

// storeMark captures the trail positions for backtracking.
type storeMark struct {
	dom, iv int
}

func (st *ivStore) mark() storeMark {
	return storeMark{len(st.domTrail), len(st.ivTrail)}
}

// undoTo restores domains and intervals to the marked state. Nodes still
// queued as dirty are harmless: recomputing them against the restored
// children reproduces the restored value. The fixpoint failure flag is
// cleared — a failure inside the undone region is gone by construction.
func (st *ivStore) undoTo(mk storeMark) {
	for len(st.ivTrail) > mk.iv {
		s := st.ivTrail[len(st.ivTrail)-1]
		st.ivTrail = st.ivTrail[:len(st.ivTrail)-1]
		st.memo[s.id] = s.iv
	}
	for len(st.domTrail) > mk.dom {
		s := st.domTrail[len(st.domTrail)-1]
		st.domTrail = st.domTrail[:len(st.domTrail)-1]
		st.dom[s.vid] = s.dom
		if st.onRestoreDom != nil {
			st.onRestoreDom(int(s.vid), s.dom)
		}
	}
	st.failedCon = -1
}

// ------------------------------------------------- incremental linear props

type linSave struct {
	con, term            int32
	lo, hi, sumLo, sumHi float64
}

// linCon is one linear constraint with cached residual bounds: lo/hi hold
// each term's contribution interval under the current domains, sumLo/sumHi
// their totals. A domain event updates the caches by delta, so the
// propagator's feasibility test is O(1) and its tightening pass never
// rescans unchanged terms to rebuild the sums.
type linCon struct {
	terms        []linTerm
	op           Op
	k            float64
	ci           int32
	lo, hi       []float64
	sumLo, sumHi float64
}

type linEngine struct {
	cons  []linCon
	byVar [][]linRef
	trail []linSave
}

func termBounds(coef float64, d Domain) (float64, float64) {
	lo, hi := float64(d.Min())*coef, float64(d.Max())*coef
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

func newLinEngine(p *prepared, dom []Domain) *linEngine {
	le := &linEngine{
		cons:  make([]linCon, len(p.lin)),
		byVar: p.linByVar,
	}
	for i, ls := range p.lin {
		c := &le.cons[i]
		c.terms, c.op, c.k, c.ci = ls.terms, ls.op, ls.k, int32(ls.ci)
		c.lo = make([]float64, len(ls.terms))
		c.hi = make([]float64, len(ls.terms))
		for ti, t := range ls.terms {
			c.lo[ti], c.hi[ti] = termBounds(t.coef, dom[t.v.ID])
			c.sumLo += c.lo[ti]
			c.sumHi += c.hi[ti]
		}
	}
	return le
}

// update refreshes the cached contribution of vid in every watching
// constraint after its domain changed to d, trailing the old values.
func (le *linEngine) update(vid int, d Domain) {
	for _, ref := range le.byVar[vid] {
		c := &le.cons[ref.con]
		ti := ref.term
		lo, hi := termBounds(c.terms[ti].coef, d)
		le.trail = append(le.trail, linSave{ref.con, ti, c.lo[ti], c.hi[ti], c.sumLo, c.sumHi})
		c.sumLo += lo - c.lo[ti]
		c.sumHi += hi - c.hi[ti]
		c.lo[ti] = lo
		c.hi[ti] = hi
	}
}

func (le *linEngine) markLen() int { return len(le.trail) }

func (le *linEngine) undoTo(mark int) {
	for len(le.trail) > mark {
		s := le.trail[len(le.trail)-1]
		le.trail = le.trail[:len(le.trail)-1]
		c := &le.cons[s.con]
		c.lo[s.term], c.hi[s.term] = s.lo, s.hi
		c.sumLo, c.sumHi = s.sumLo, s.sumHi
	}
}

// --------------------------------------------------------- event searcher

// emark captures all trail positions of the event engine.
type emark struct {
	store storeMark
	lin   int
}

// pairCon is a table propagator: a binary constraint compiled to an
// extensional allowed-pairs table over the root domains, enforcing domain
// consistency by support lookup (fixpoint mode only).
type pairCon struct {
	x, y    *Var
	ci      int32
	rootX   []int64
	rootY   []int64
	allowed [][]bool // allowed[i][j]: rootX[i] with rootY[j] satisfies ci
}

// esearcher runs depth-first branch-and-bound on top of the incremental
// store and the propagator queue.
type esearcher struct {
	*searchState
	st   *ivStore
	prep *prepared
	lin  *linEngine

	order []int

	// Fixpoint-mode propagator queue. Propagator IDs: [0,len(lin.cons)) are
	// linear constraints, the rest index pairs.
	queue     []int32
	qHead     int
	queued    []bool
	pairs     []pairCon
	pairByVar [][]int32

	// Trial-evaluation scratch for forward checking: cones[ci,vid] lists the
	// nodes of constraint ci that depend on vid (in topological order), and
	// tmpIv/tmpGen overlay hypothetical intervals over the store's memo
	// without touching it — a trial costs one cone walk, no trail, no undo.
	cones  map[int64][]int32
	tmpIv  []Interval
	tmpGen []uint64 // uint64: a capped-only-by-time search must never wrap
	tmpCur uint64

	lastConflict int32 // constraint index blamed for the last failure, -1 none
}

const maxPairTable = 4096 // largest root-domain product compiled to a table

func (m *Model) solveEvent(state *searchState, sol *Solution) {
	prep := m.prepareWith(state.opts.LinearMinTerms)
	s := &esearcher{
		searchState:  state,
		prep:         prep,
		st:           newIvStore(m, prep),
		order:        staticOrder(m),
		lastConflict: -1,
	}
	s.st.onRestoreDom = func(vid int, d Domain) {
		if d.Size() > 1 {
			s.assigned[vid] = false
		}
	}
	if !state.opts.DisableLinear && len(prep.lin) > 0 {
		s.lin = newLinEngine(prep, s.st.dom)
	}
	if state.opts.Fixpoint {
		s.st.watchCons = true
		s.buildPairs()
		nProps := len(s.pairs)
		if s.lin != nil {
			nProps += len(s.lin.cons)
		}
		s.queued = make([]bool, nProps)
		if !s.pruneUnary() {
			sol.Status = StatusInfeasible
			return
		}
	}

	// Root-level consistency check against the freshly computed memos.
	for _, root := range prep.conRoot {
		if s.st.memo[root].False() {
			sol.Status = StatusInfeasible
			return
		}
	}

	complete := s.dfs(0)
	state.finish(sol, complete)
}

// setDom changes a domain through the store and keeps the linear residual
// caches in sync.
func (s *esearcher) setDom(vid int, d Domain) {
	s.st.setDom(vid, d)
	if s.lin != nil {
		s.lin.update(vid, d)
	}
}

func (s *esearcher) mark() emark {
	mk := emark{store: s.st.mark()}
	if s.lin != nil {
		mk.lin = s.lin.markLen()
	}
	return mk
}

func (s *esearcher) undoTo(mk emark) {
	s.st.undoTo(mk.store)
	if s.lin != nil {
		s.lin.undoTo(mk.lin)
	}
}

func (s *esearcher) dfs(depth int) bool {
	if s.checkBudget() {
		return false
	}
	if depth == len(s.order) {
		s.recordSolution()
		return true
	}
	vid := s.order[depth]
	if s.opts.DynamicOrder || s.opts.ActivityOrder {
		best := depth
		for i := depth + 1; i < len(s.order); i++ {
			if s.assigned[s.order[i]] {
				continue
			}
			if s.assigned[s.order[best]] || s.orderBetter(s.order[i], s.order[best]) {
				best = i
			}
		}
		if best != depth {
			s.order[depth], s.order[best] = s.order[best], s.order[depth]
			defer func() { s.order[depth], s.order[best] = s.order[best], s.order[depth] }()
		}
		vid = s.order[depth]
	}
	v := s.m.vars[vid]
	complete := true
	for _, val := range s.candidateValues(s.st.dom[vid], v, depth) {
		if s.checkBudget() {
			return false
		}
		s.stats.Nodes++
		mk := s.mark()
		s.bindVar(vid, val)
		ok := s.afterAssign(vid)
		if ok {
			if !s.dfs(depth + 1) {
				complete = false
			}
			if s.opts.FirstSolution && s.haveSol {
				s.stopped = true
				s.undoTo(mk)
				return false
			}
			if s.m.sense == Satisfy && s.haveSol {
				// One solution suffices for satisfy problems; the subtree
				// counts as explored so the result is reported optimal.
				s.undoTo(mk)
				return complete
			}
		} else {
			s.stats.Failures++
			s.noteConflict(vid)
		}
		s.undoTo(mk)
		if s.stopped {
			return false
		}
	}
	return complete
}

// orderBetter reports whether variable a should be branched before b under
// the dynamic heuristic in effect: conflict activity (scaled by domain size)
// when ActivityOrder is set, otherwise smallest current domain.
func (s *esearcher) orderBetter(a, b int) bool {
	if s.opts.ActivityOrder {
		sa := s.activity[a] / float64(s.st.dom[a].Size())
		sb := s.activity[b] / float64(s.st.dom[b].Size())
		if sa != sb {
			return sa > sb
		}
		return s.st.dom[a].Size() < s.st.dom[b].Size()
	}
	return s.st.dom[a].Size() < s.st.dom[b].Size()
}

// noteConflict bumps activity for the failed assignment: the branched
// variable plus the variables of the constraint blamed for the failure.
func (s *esearcher) noteConflict(vid int) {
	if s.activity == nil {
		return
	}
	s.bumpActivity(vid)
	if s.lastConflict >= 0 {
		for _, w := range s.prep.conVars[s.lastConflict] {
			s.bumpActivity(int(w))
		}
		s.lastConflict = -1
	}
	s.decayActivity()
}

func (s *esearcher) bindVar(vid int, val int64) {
	s.setDom(vid, s.st.dom[vid].singletonView(val))
	s.assigned[vid] = true
	s.assign[vid] = val
	s.notePhase(vid, val)
}

// afterAssign runs the propagation pipeline for the assignment of vid. In
// the default (trace-compatible) mode it performs exactly the legacy checks
// — linear residual propagation from vid, falsity of the constraints
// touching vid, the objective bound cut, then forward checking — each
// reading the incrementally maintained state instead of re-deriving it. In
// fixpoint mode the propagator queue drains first and any constraint
// anywhere turning false fails the node immediately.
func (s *esearcher) afterAssign(vid int) bool {
	if s.opts.Fixpoint {
		s.scheduleVar(vid)
		if !s.runQueue() {
			return false
		}
		s.st.flush()
		if s.st.failedCon >= 0 {
			s.lastConflict = s.st.failedCon
			return false
		}
	} else if s.lin != nil {
		if !s.lin.propagateFrom(s, vid) {
			return false
		}
		s.st.flush()
	} else {
		s.st.flush()
	}
	for _, ci := range s.prep.varCons[vid] {
		if s.st.memo[s.prep.conRoot[ci]].False() {
			s.lastConflict = ci
			return false
		}
	}
	if !s.eventBoundOK() {
		return false
	}
	if s.opts.Propagate {
		return s.forwardCheck(vid)
	}
	return true
}

func (s *esearcher) eventBoundOK() bool {
	if s.m.objective == nil || !s.haveSol {
		return true
	}
	return s.boundCut(s.st.memo[s.m.objective.ID])
}

// propagateFrom tightens the constraints watching vid, mirroring the legacy
// pass: one sweep over the watching constraints in posting order, each
// restarted from its (cached) residual sums after a successful narrowing.
func (le *linEngine) propagateFrom(s *esearcher, vid int) bool {
	for _, ref := range le.byVar[vid] {
		if !le.propagateOne(s, &le.cons[ref.con]) {
			s.lastConflict = le.cons[ref.con].ci
			return false
		}
	}
	return true
}

func (le *linEngine) propagateOne(s *esearcher, c *linCon) bool {
restart:
	minSum, maxSum := c.sumLo, c.sumHi
	checkLe := c.op == OpLe || c.op == OpEq // sum <= K must hold
	checkGe := c.op == OpGe || c.op == OpEq // sum >= K must hold
	if checkLe && minSum > c.k+1e-9 {
		return false
	}
	if checkGe && maxSum < c.k-1e-9 {
		return false
	}
	// Tighten each free variable from the residual.
	for ti := range c.terms {
		t := &c.terms[ti]
		d := s.st.dom[t.v.ID]
		if d.Size() <= 1 || t.coef == 0 {
			continue
		}
		lo, hi := c.lo[ti], c.hi[ti]
		restMin, restMax := minSum-lo, maxSum-hi
		var newLo, newHi float64 = math.Inf(-1), math.Inf(1)
		if checkLe {
			bound := c.k - restMin
			if t.coef > 0 {
				newHi = math.Min(newHi, bound/t.coef)
			} else {
				newLo = math.Max(newLo, bound/t.coef)
			}
		}
		if checkGe {
			bound := c.k - restMax
			if t.coef > 0 {
				newLo = math.Max(newLo, bound/t.coef)
			} else {
				newHi = math.Min(newHi, bound/t.coef)
			}
		}
		if math.IsInf(newLo, -1) && math.IsInf(newHi, 1) {
			continue
		}
		// Clamp infinite bounds to the variable's own range before integer
		// conversion (int64(Inf) is undefined).
		if math.IsInf(newLo, -1) {
			newLo = float64(d.Min())
		}
		if math.IsInf(newHi, 1) {
			newHi = float64(d.Max())
		}
		iLo, iHi := int64(math.Ceil(newLo-1e-9)), int64(math.Floor(newHi+1e-9))
		if float64(d.Min()) >= float64(iLo) && float64(d.Max()) <= float64(iHi) {
			continue // nothing to prune
		}
		kept := make([]int64, 0, d.Size())
		for _, v := range d.Values() {
			if v >= iLo && v <= iHi {
				kept = append(kept, v)
			}
		}
		if len(kept) == 0 {
			return false
		}
		if len(kept) < d.Size() {
			s.narrow(t.v.ID, domainFromSorted(kept))
			if len(kept) == 1 {
				s.assigned[t.v.ID] = true
				s.assign[t.v.ID] = kept[0]
			}
			// The caches now reflect the narrowing; rescan this constraint.
			goto restart
		}
	}
	return true
}

// narrow is a propagation-driven domain reduction: it flows through setDom
// (store trail, linear cache update) and, in fixpoint mode, wakes the
// propagators watching the variable.
func (s *esearcher) narrow(vid int, d Domain) {
	s.setDom(vid, d)
	if s.opts.Fixpoint {
		s.scheduleVar(vid)
	}
}

// forwardCheck mirrors the legacy last-free-variable pruning: for every
// constraint touching vid whose free variables reduce to one, each candidate
// value is tested against the constraint under a hypothetical singleton
// domain; values whose trial makes the constraint definitely false are
// dropped. Trials run on the scratch overlay (trialFalse), so a candidate
// costs one walk of the variable's cone inside that constraint — no domain
// change, no trail, no interval recomputation elsewhere in the DAG.
func (s *esearcher) forwardCheck(vid int) bool {
	for _, ci := range s.prep.varCons[vid] {
		free := -1
		nFree := 0
		for _, w := range s.prep.conVars[ci] {
			if !s.assigned[w] {
				nFree++
				free = int(w)
				if nFree > 1 {
					break
				}
			}
		}
		if nFree != 1 {
			continue
		}
		dom := s.st.dom[free]
		keep := make([]int64, 0, dom.Size())
		for _, val := range dom.Values() {
			if !s.trialFalse(ci, free, val) {
				keep = append(keep, val)
			}
		}
		if len(keep) == 0 {
			s.lastConflict = ci
			return false
		}
		if len(keep) < dom.Size() {
			s.narrow(free, domainFromSorted(keep))
			s.st.flush()
			if len(keep) == 1 {
				s.assigned[free] = true
				s.assign[free] = keep[0]
			}
		}
	}
	return true
}

// cone returns the nodes of constraint ci whose value depends on vid, in
// topological (ascending ID) order. Cones are cached: forward checking
// revisits the same (constraint, variable) pairs throughout the search.
func (s *esearcher) cone(ci int32, vid int) []int32 {
	key := int64(ci)<<32 | int64(int32(vid))
	if c, ok := s.cones[key]; ok {
		return c
	}
	dep := map[int]bool{}
	var visit func(e *Expr) bool
	visit = func(e *Expr) bool {
		if d, ok := dep[e.ID]; ok {
			return d
		}
		d := e.Op == OpVar && e.Var.ID == vid
		for _, a := range e.Args {
			if visit(a) {
				d = true
			}
		}
		dep[e.ID] = d
		return d
	}
	visit(s.prep.exprs[s.prep.conRoot[ci]])
	var list []int32
	for id, d := range dep {
		if d {
			list = append(list, int32(id))
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	if s.cones == nil {
		s.cones = map[int64][]int32{}
	}
	s.cones[key] = list
	return list
}

// trialSrc resolves children during a trial evaluation: overlay first, the
// store's memo otherwise.
type trialSrc esearcher

func (t *trialSrc) iv(e *Expr) Interval {
	s := (*esearcher)(t)
	if s.tmpGen[e.ID] == s.tmpCur {
		return s.tmpIv[e.ID]
	}
	return s.st.memo[e.ID]
}

func (t *trialSrc) domainOf(v *Var) Domain { return (*esearcher)(t).st.dom[v.ID] }

// trialFalse reports whether constraint ci becomes definitely false when
// vid is hypothetically fixed to val, by recomputing just the variable's
// cone within the constraint over the scratch overlay.
func (s *esearcher) trialFalse(ci int32, vid int, val int64) bool {
	if s.tmpIv == nil {
		s.tmpIv = make([]Interval, s.prep.nExpr)
		s.tmpGen = make([]uint64, s.prep.nExpr)
	}
	cone := s.cone(ci, vid)
	s.tmpCur++
	src := (*trialSrc)(s)
	for _, id := range cone {
		e := s.prep.exprs[id]
		var iv Interval
		if e.Op == OpVar {
			// The only variable node in the cone is vid's own.
			iv = Point(float64(val))
		} else {
			iv = computeIv(e, src)
		}
		s.tmpIv[id] = iv
		s.tmpGen[id] = s.tmpCur
	}
	return s.tmpIv[s.prep.conRoot[ci]].False()
}

func (s *esearcher) recordSolution() {
	vals := make([]int64, len(s.m.vars))
	for i := range vals {
		vals[i] = s.st.dom[i].Min()
	}
	s.record(vals)
}

// ------------------------------------------------------- propagator queue

// scheduleVar enqueues every propagator watching vid.
func (s *esearcher) scheduleVar(vid int) {
	if s.lin != nil {
		for _, ref := range s.lin.byVar[vid] {
			s.schedule(ref.con)
		}
	}
	base := int32(0)
	if s.lin != nil {
		base = int32(len(s.lin.cons))
	}
	for _, pi := range s.pairByVar[vid] {
		s.schedule(base + pi)
	}
}

func (s *esearcher) schedule(pi int32) {
	if s.queued[pi] {
		return
	}
	s.queued[pi] = true
	s.queue = append(s.queue, pi)
}

// runQueue drains the propagator queue to fixpoint. Propagators narrowing a
// domain wake the propagators watching that variable, so the queue only
// empties when no propagator can prune further.
func (s *esearcher) runQueue() bool {
	for s.qHead < len(s.queue) {
		pi := s.queue[s.qHead]
		s.qHead++
		s.queued[pi] = false
		nLin := int32(0)
		if s.lin != nil {
			nLin = int32(len(s.lin.cons))
		}
		ok := true
		if pi < nLin {
			c := &s.lin.cons[pi]
			ok = s.lin.propagateOne(s, c)
			if !ok {
				s.lastConflict = c.ci
			}
		} else {
			ok = s.pairs[pi-nLin].propagate(s)
		}
		if !ok {
			s.clearQueue()
			return false
		}
	}
	s.queue = s.queue[:0]
	s.qHead = 0
	return true
}

func (s *esearcher) clearQueue() {
	for _, pi := range s.queue[s.qHead:] {
		s.queued[pi] = false
	}
	s.queue = s.queue[:0]
	s.qHead = 0
}

// ----------------------------------------------------------- table props

// buildPairs compiles every binary constraint whose root-domain product is
// small into an extensional table over the two variables' root domains.
func (s *esearcher) buildPairs() {
	m := s.m
	s.pairByVar = make([][]int32, len(m.vars))
	scratch := make([]int64, len(m.vars))
	for ci, vids := range s.prep.conVars {
		if len(vids) != 2 {
			continue
		}
		x, y := m.vars[vids[0]], m.vars[vids[1]]
		if x.Dom.Size()*y.Dom.Size() > maxPairTable {
			continue
		}
		c := m.constraints[ci]
		pc := pairCon{
			x: x, y: y, ci: int32(ci),
			rootX: x.Dom.Values(), rootY: y.Dom.Values(),
		}
		pc.allowed = make([][]bool, len(pc.rootX))
		for i, xv := range pc.rootX {
			pc.allowed[i] = make([]bool, len(pc.rootY))
			scratch[x.ID] = xv
			for j, yv := range pc.rootY {
				scratch[y.ID] = yv
				pc.allowed[i][j] = c.EvalBool(scratch)
			}
		}
		pi := int32(len(s.pairs))
		s.pairs = append(s.pairs, pc)
		s.pairByVar[x.ID] = append(s.pairByVar[x.ID], pi)
		s.pairByVar[y.ID] = append(s.pairByVar[y.ID], pi)
	}
}

// propagate enforces domain consistency on the pair: every value of each
// variable must have at least one supporting value in the other's domain.
func (pc *pairCon) propagate(s *esearcher) bool {
	if !pc.pruneSide(s, pc.x, pc.y, pc.rootX, pc.rootY, func(i, j int) bool { return pc.allowed[i][j] }) {
		return false
	}
	return pc.pruneSide(s, pc.y, pc.x, pc.rootY, pc.rootX, func(i, j int) bool { return pc.allowed[j][i] })
}

func (pc *pairCon) pruneSide(s *esearcher, a, b *Var, rootA, rootB []int64, allowed func(i, j int) bool) bool {
	da, db := s.st.dom[a.ID], s.st.dom[b.ID]
	keep := make([]int64, 0, da.Size())
	for _, av := range da.Values() {
		i := rootIndex(rootA, av)
		supported := false
		for _, bv := range db.Values() {
			if allowed(i, rootIndex(rootB, bv)) {
				supported = true
				break
			}
		}
		if supported {
			keep = append(keep, av)
		}
	}
	if len(keep) == 0 {
		s.lastConflict = pc.ci
		return false
	}
	if len(keep) < da.Size() {
		s.narrow(a.ID, domainFromSorted(keep))
		if len(keep) == 1 {
			s.assigned[a.ID] = true
			s.assign[a.ID] = keep[0]
		}
	}
	return true
}

func rootIndex(root []int64, v int64) int {
	return sort.Search(len(root), func(i int) bool { return root[i] >= v })
}

// pruneUnary filters every single-variable constraint against its variable's
// root domain once, before search (fixpoint mode only).
func (s *esearcher) pruneUnary() bool {
	scratch := make([]int64, len(s.m.vars))
	for ci, vids := range s.prep.conVars {
		if len(vids) != 1 {
			continue
		}
		v := s.m.vars[vids[0]]
		c := s.m.constraints[ci]
		d := s.st.dom[v.ID]
		keep := make([]int64, 0, d.Size())
		for _, val := range d.Values() {
			scratch[v.ID] = val
			if c.EvalBool(scratch) {
				keep = append(keep, val)
			}
		}
		if len(keep) == 0 {
			return false
		}
		if len(keep) < d.Size() {
			s.narrow(v.ID, domainFromSorted(keep))
			if len(keep) == 1 {
				s.assigned[v.ID] = true
				s.assign[v.ID] = keep[0]
			}
		}
	}
	s.st.flush()
	return true
}
