package followsun

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
)

// TestClusterShardEquivalence: segmenting the ring with rollup aggregation
// must keep the negotiation byte-identical — cost series, migrations,
// solver traces, and per-node wire counters — to the unsharded run.
func TestClusterShardEquivalence(t *testing.T) {
	p := clusterTestParams()
	plain, err := RunCluster(p, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunCluster(p, cluster.Options{
		Workers:     4,
		Shards:      RingShardPlan(p.NumDCs, 2),
		Aggregation: cluster.AggregationRollup,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Points, sharded.Points) {
		t.Fatalf("cost series diverged:\nplain %v\nsharded %v", plain.Points, sharded.Points)
	}
	if plain.FinalCost != sharded.FinalCost || plain.TotalMigrations != sharded.TotalMigrations ||
		plain.SolverNodes != sharded.SolverNodes || plain.SolverNodes == 0 {
		t.Fatalf("summary diverged:\nplain %+v\nsharded %+v", plain, sharded)
	}
	if !reflect.DeepEqual(plain.WireStats, sharded.WireStats) {
		t.Fatalf("wire traces diverged:\nplain %v\nsharded %v", plain.WireStats, sharded.WireStats)
	}
}

func TestRingShardPlan(t *testing.T) {
	plan := RingShardPlan(8, 2)
	for addr, want := range map[string]int{"dc00": 0, "dc03": 0, "dc04": 1, "dc07": 1} {
		if got := plan.Of(addr); got != want {
			t.Fatalf("plan(%s) = %d, want %d", addr, got, want)
		}
	}
}
