package followsun

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
)

func clusterTestParams() Params {
	p := DefaultParams(5)
	p.DemandMax = 4
	p.SolverMaxNodes = 4000
	p.SolverMaxTime = 0 // node budget only: deterministic
	return p
}

// TestClusterEquivalence: the concurrent cluster run must be byte-identical
// to the sequential loop — cost series, migrations, per-link solver traces,
// and per-node wire counters — at any worker count. This is the sim-mode
// determinism guarantee of the epoch barrier.
func TestClusterEquivalence(t *testing.T) {
	p := clusterTestParams()
	seq, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		con, err := RunCluster(p, cluster.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Points, con.Points) {
			t.Fatalf("workers=%d: cost series diverged:\nseq %v\ncon %v", workers, seq.Points, con.Points)
		}
		if seq.FinalCost != con.FinalCost || seq.Rounds != con.Rounds ||
			seq.TotalMigrations != con.TotalMigrations || seq.PerLinkSolves != con.PerLinkSolves {
			t.Fatalf("workers=%d: summary diverged:\nseq %+v\ncon %+v", workers, seq, con)
		}
		if seq.SolverNodes != con.SolverNodes || seq.SolverNodes == 0 {
			t.Fatalf("workers=%d: solver nodes = %d, want %d", workers, con.SolverNodes, seq.SolverNodes)
		}
		if !reflect.DeepEqual(seq.WireStats, con.WireStats) {
			t.Fatalf("workers=%d: wire traces diverged:\nseq %v\ncon %v", workers, seq.WireStats, con.WireStats)
		}
	}
}

// TestRingGeneratorConverges: a generated sparse-demand ring completes
// under the cluster runtime and still reduces cost.
func TestRingGeneratorConverges(t *testing.T) {
	p := RingParams(12)
	res, err := RunCluster(p, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerLinkSolves != 12 {
		t.Fatalf("solves = %d, want one per ring link", res.PerLinkSolves)
	}
	if res.FinalCost > 100 {
		t.Fatalf("final cost %.1f%% above initial", res.FinalCost)
	}
	if len(res.WireStats) != 12 {
		t.Fatalf("wire stats for %d nodes, want 12", len(res.WireStats))
	}
}

// TestRingBatchingReducesMessages: per-(epoch,destination) delta batching
// must cut the message count on the ring while preserving the outcome.
func TestRingBatchingReducesMessages(t *testing.T) {
	p := RingParams(10)
	plain, err := RunCluster(p, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := RunCluster(p, cluster.Options{Workers: 4, BatchDeltas: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.FinalCost != batched.FinalCost || plain.TotalMigrations != batched.TotalMigrations {
		t.Fatalf("batching changed the outcome: %+v vs %+v", plain, batched)
	}
	var plainMsgs, batchMsgs int64
	for _, st := range plain.WireStats {
		plainMsgs += st.MsgsSent
	}
	for _, st := range batched.WireStats {
		batchMsgs += st.MsgsSent
	}
	if batchMsgs >= plainMsgs {
		t.Fatalf("batching did not reduce messages: %d >= %d", batchMsgs, plainMsgs)
	}
	t.Logf("ring(10): %d msgs unbatched, %d batched", plainMsgs, batchMsgs)
}

// TestClusterUDPMode: the scenario runner also completes over real UDP
// sockets (free-running rounds, wall-clock time) — regression for the
// nil-scheduler panic in Runtime.Now outside simulation mode.
func TestClusterUDPMode(t *testing.T) {
	p := RingParams(4)
	p.NegotiationInterval = 10 * time.Millisecond
	res, err := RunCluster(p, cluster.Options{Mode: cluster.ModeUDP, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerLinkSolves != 4 {
		t.Fatalf("solves = %d, want 4", res.PerLinkSolves)
	}
	if res.ConvergenceTime <= 0 {
		t.Fatalf("convergence time = %v, want wall-clock elapsed", res.ConvergenceTime)
	}
}

// TestClusterEquivalenceSparse: equivalence also holds for the generated
// sparse topology (the configuration the scale benchmarks run).
func TestClusterEquivalenceSparse(t *testing.T) {
	p := RingParams(8)
	p.NegotiationInterval = time.Second
	seq, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	con, err := RunCluster(p, cluster.Options{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Points, con.Points) || seq.SolverNodes != con.SolverNodes ||
		!reflect.DeepEqual(seq.WireStats, con.WireStats) {
		t.Fatalf("sparse ring diverged:\nseq %+v\ncon %+v", seq, con)
	}
}
