package followsun

import (
	"testing"
	"time"
)

func tinyParams(n int) Params {
	p := DefaultParams(n)
	p.DemandMax = 4
	p.SolverMaxNodes = 4000
	p.SolverMaxTime = 300 * time.Millisecond
	return p
}

func TestTwoDCsReduceCost(t *testing.T) {
	res, err := Run(tinyParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalCost > 100 {
		t.Fatalf("final cost %.1f%% exceeds initial", res.FinalCost)
	}
	if res.ReductionPct <= 0 {
		t.Fatalf("no cost reduction: %.1f%%", res.ReductionPct)
	}
	if len(res.Points) < 2 {
		t.Fatalf("too few cost points: %d", len(res.Points))
	}
	if res.Points[0].Cost != 100 {
		t.Fatalf("first point not normalized: %v", res.Points[0])
	}
}

func TestCostMonotonicallyImproves(t *testing.T) {
	// Each negotiation only accepts migrations that lower the local
	// objective, so the normalized series should never rise much above its
	// running minimum (small transients allowed while tuples are in
	// flight).
	res, err := Run(tinyParams(4))
	if err != nil {
		t.Fatal(err)
	}
	runMin := res.Points[0].Cost
	for _, pt := range res.Points {
		if pt.Cost > runMin+15 {
			t.Fatalf("cost rose to %.1f%% after reaching %.1f%%", pt.Cost, runMin)
		}
		if pt.Cost < runMin {
			runMin = pt.Cost
		}
	}
}

func TestAllLinksNegotiated(t *testing.T) {
	res, err := Run(tinyParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 || res.ConvergenceTime == 0 {
		t.Fatalf("rounds=%d convergence=%v", res.Rounds, res.ConvergenceTime)
	}
	if res.PerLinkSolves < 4*3/2 {
		t.Fatalf("solves = %d, want at least one per link", res.PerLinkSolves)
	}
}

func TestBandwidthMeasured(t *testing.T) {
	res, err := Run(tinyParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerNodeKBps <= 0 {
		t.Fatalf("PerNodeKBps = %v, want positive", res.PerNodeKBps)
	}
}

func TestMigrationCapReducesMigrations(t *testing.T) {
	p := tinyParams(3)
	free, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxMigrates = 1
	capped, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if capped.TotalMigrations > free.TotalMigrations {
		t.Fatalf("cap increased migrations: %d > %d", capped.TotalMigrations, free.TotalMigrations)
	}
}

func TestDeterministicRun(t *testing.T) {
	p := tinyParams(3)
	p.SolverMaxTime = 0 // node budget only, for determinism
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalCost != b.FinalCost || a.TotalMigrations != b.TotalMigrations {
		t.Fatalf("runs differ: %.2f/%d vs %.2f/%d",
			a.FinalCost, a.TotalMigrations, b.FinalCost, b.TotalMigrations)
	}
}
