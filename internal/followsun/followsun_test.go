package followsun

import (
	"testing"
	"time"
)

func tinyParams(n int) Params {
	p := DefaultParams(n)
	p.DemandMax = 4
	p.SolverMaxNodes = 4000
	p.SolverMaxTime = 300 * time.Millisecond
	return p
}

func TestTwoDCsReduceCost(t *testing.T) {
	res, err := Run(tinyParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalCost > 100 {
		t.Fatalf("final cost %.1f%% exceeds initial", res.FinalCost)
	}
	if res.ReductionPct <= 0 {
		t.Fatalf("no cost reduction: %.1f%%", res.ReductionPct)
	}
	if len(res.Points) < 2 {
		t.Fatalf("too few cost points: %d", len(res.Points))
	}
	if res.Points[0].Cost != 100 {
		t.Fatalf("first point not normalized: %v", res.Points[0])
	}
}

func TestCostMonotonicallyImproves(t *testing.T) {
	// Each negotiation only accepts migrations that lower the local
	// objective, so the normalized series should never rise much above its
	// running minimum (small transients allowed while tuples are in
	// flight).
	res, err := Run(tinyParams(4))
	if err != nil {
		t.Fatal(err)
	}
	runMin := res.Points[0].Cost
	for _, pt := range res.Points {
		if pt.Cost > runMin+15 {
			t.Fatalf("cost rose to %.1f%% after reaching %.1f%%", pt.Cost, runMin)
		}
		if pt.Cost < runMin {
			runMin = pt.Cost
		}
	}
}

func TestAllLinksNegotiated(t *testing.T) {
	res, err := Run(tinyParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 || res.ConvergenceTime == 0 {
		t.Fatalf("rounds=%d convergence=%v", res.Rounds, res.ConvergenceTime)
	}
	if res.PerLinkSolves < 4*3/2 {
		t.Fatalf("solves = %d, want at least one per link", res.PerLinkSolves)
	}
}

func TestBandwidthMeasured(t *testing.T) {
	res, err := Run(tinyParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerNodeKBps <= 0 {
		t.Fatalf("PerNodeKBps = %v, want positive", res.PerNodeKBps)
	}
}

func TestMigrationCapReducesMigrations(t *testing.T) {
	p := tinyParams(3)
	free, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxMigrates = 1
	capped, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if capped.TotalMigrations > free.TotalMigrations {
		t.Fatalf("cap increased migrations: %d > %d", capped.TotalMigrations, free.TotalMigrations)
	}
}

func TestDeterministicRun(t *testing.T) {
	p := tinyParams(3)
	p.SolverMaxTime = 0 // node budget only, for determinism
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalCost != b.FinalCost || a.TotalMigrations != b.TotalMigrations {
		t.Fatalf("runs differ: %.2f/%d vs %.2f/%d",
			a.FinalCost, a.TotalMigrations, b.FinalCost, b.TotalMigrations)
	}
}

// TestEngineEquivalence runs the negotiation under both search cores with
// only the node budget binding and requires identical cost trajectories and
// migration counts.
func TestEngineEquivalence(t *testing.T) {
	run := func(engine string) *Result {
		p := tinyParams(3)
		p.SolverMaxTime = 0 // only the deterministic node budget binds
		p.SolverEngine = engine
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ev, lg := run("event"), run("legacy")
	if ev.FinalCost != lg.FinalCost || ev.TotalMigrations != lg.TotalMigrations {
		t.Fatalf("engines diverge: event cost=%v mig=%d, legacy cost=%v mig=%d",
			ev.FinalCost, ev.TotalMigrations, lg.FinalCost, lg.TotalMigrations)
	}
	if len(ev.Points) != len(lg.Points) {
		t.Fatalf("cost series lengths differ: %d vs %d", len(ev.Points), len(lg.Points))
	}
	for i := range ev.Points {
		if ev.Points[i].Cost != lg.Points[i].Cost {
			t.Fatalf("point %d: cost %v vs %v", i, ev.Points[i].Cost, lg.Points[i].Cost)
		}
	}
}

// TestIncrementalEquivalence runs the negotiation with incremental
// re-grounding against fresh grounding and requires identical cost
// trajectories and migration counts.
func TestIncrementalEquivalence(t *testing.T) {
	run := func(incremental bool) *Result {
		p := tinyParams(4)
		p.SolverMaxTime = 0 // only the deterministic node budget binds
		p.SolverIncremental = incremental
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	inc, fresh := run(true), run(false)
	if inc.FinalCost != fresh.FinalCost || inc.TotalMigrations != fresh.TotalMigrations {
		t.Fatalf("grounding paths diverge: incremental cost=%v mig=%d, fresh cost=%v mig=%d",
			inc.FinalCost, inc.TotalMigrations, fresh.FinalCost, fresh.TotalMigrations)
	}
	if len(inc.Points) != len(fresh.Points) {
		t.Fatalf("cost series lengths differ: %d vs %d", len(inc.Points), len(fresh.Points))
	}
	for i := range inc.Points {
		if inc.Points[i].Cost != fresh.Points[i].Cost {
			t.Fatalf("point %d: cost %v vs %v", i, inc.Points[i].Cost, fresh.Points[i].Cost)
		}
	}
}
