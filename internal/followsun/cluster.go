package followsun

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// RunCluster executes the distributed Follow-the-Sun negotiation on the
// concurrent cluster runtime: every round's matched links — pairwise
// node-disjoint by construction — negotiate concurrently on the worker
// pool, with the epoch barrier replaying their messages in link order. In
// simulation mode the run is byte-identical to Run at any worker count
// (objectives, per-link solver traces, and per-node wire counters all
// match; TestClusterEquivalence pins this). o.Latency is overridden by
// p.LinkLatency.
func RunCluster(p Params, o cluster.Options) (*Result, error) {
	o.Latency = p.LinkLatency
	rt := cluster.New(o)
	defer rt.Close()
	r := &runner{
		p:     p,
		rng:   rand.New(rand.NewSource(p.Seed)),
		rt:    rt,
		nodes: map[string]*core.Node{},
		comm:  map[string]map[string]int64{},
		mig:   map[string]int64{},
	}
	if err := r.setup(); err != nil {
		return nil, err
	}

	res := &Result{}
	res.InitialCost = r.totalCost()
	res.Points = append(res.Points, CostPoint{0, 100})

	pending := append([][2]string(nil), r.links...)
	round := 0
	for len(pending) > 0 {
		round++
		r.advance(p.NegotiationInterval)

		var left [][2]string
		matched := matchRound(pending, &left)
		items := make([]cluster.Item, len(matched))
		sress := make([]*core.SolveResult, len(matched))
		elapsed := make([]time.Duration, len(matched))
		for i, lk := range matched {
			i, x, y := i, lk[0], lk[1]
			items[i] = cluster.Item{
				Label: fmt.Sprintf("negotiate %s-%s", x, y),
				Nodes: []string{x},
				Run: func() (*core.SolveResult, error) {
					sres, d, err := r.negotiateSolve(x, y)
					sress[i], elapsed[i] = sres, d
					return sres, err
				},
			}
		}
		if _, err := rt.RunEpoch(items); err != nil {
			return nil, err
		}
		// Fold outcomes sequentially in link order, exactly as Run does.
		for i, lk := range matched {
			r.fold(lk[0], lk[1], sress[i], elapsed[i])
		}
		pending = left
		r.finishRound(res, round)
		if round > 10*len(r.links)+10 {
			return nil, fmt.Errorf("followsun: negotiation did not converge after %d rounds", round)
		}
	}
	r.finalize(res, round)
	return res, nil
}
