package followsun

import (
	"fmt"

	"repro/internal/cluster"
)

// RingShardPlan partitions the Follow-the-Sun ring into contiguous
// segments: dc<i> belongs to shard i*shards/dcs. Negotiation links connect
// ring neighbors (plus a few chords), so contiguous segments are the
// key-range partition that keeps all but the segment-boundary links
// shard-internal. Addresses outside the dc<i> scheme map to shard 0.
func RingShardPlan(dcs, shards int) cluster.ShardPlan {
	return cluster.ShardPlan{
		Count: shards,
		Of: func(addr string) int {
			var i int
			if _, err := fmt.Sscanf(addr, "dc%d", &i); err != nil || i < 0 || dcs <= 0 {
				return 0
			}
			if i >= dcs {
				i = dcs - 1
			}
			return i * shards / dcs
		},
	}
}
