// Package followsun implements the paper's Follow-the-Sun use case
// (sections 3.1.2, 4.3, 6.3): geographically distributed data centers
// iteratively negotiate VM migrations over their links, each negotiation
// solving a local COP on one Cologne instance and exchanging results with
// the neighbor. The harness reproduces Figure 4 (normalized total cost as
// distributed solving converges, 2-10 data centers) and Figure 5 (per-node
// communication overhead).
package followsun

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/programs"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/transport"
)

// Params configure one experiment run (defaults follow section 6.3).
type Params struct {
	NumDCs      int   // data centers (paper sweeps 2-10)
	Degree      int   // average network degree (paper: 3)
	Capacity    int64 // resource capacity per DC (paper: 60)
	DemandMax   int64 // initial allocation per demand location (paper: 0-10)
	CommCostMin int64 // communication cost range (paper: 50-100)
	CommCostMax int64
	MigCostMin  int64 // migration cost range (paper: 10-20)
	MigCostMax  int64
	OpCost      int64 // operating cost (paper: 10)

	NegotiationInterval time.Duration // timer between rounds (paper: 5 s)
	LinkLatency         time.Duration // simulated one-way latency

	MaxMigrates    int64 // per-link migration cap (policy d11/c3); 0 = uncapped
	SolverMaxNodes int64
	SolverMaxTime  time.Duration
	// SolverEngine/SolverFixpoint/SolverRestarts select and tune the search
	// core per Config (see core.Config); zero values keep the default
	// event-driven propagation engine.
	SolverEngine   string
	SolverFixpoint bool
	SolverRestarts int
	// SolverIncremental enables incremental re-grounding with solver-model
	// patching between ticks; SolverWarmStart seeds each solve from the
	// previous materialized assignments (see core.Config).
	SolverIncremental bool
	SolverWarmStart   bool

	// SparseDemands restricts each data center's demand universe to itself
	// (dc rows) and its hosting/cost tables to itself plus its direct
	// neighbors, instead of the paper's all-pairs tables. Per-link COPs stay
	// small at any cluster size, which is what makes the generated
	// 200-link rings tractable (see RingParams).
	SparseDemands bool

	Seed int64
}

// DefaultParams returns the section 6.3 configuration for n data centers.
func DefaultParams(n int) Params {
	return Params{
		NumDCs: n, Degree: 3, Capacity: 60, DemandMax: 10,
		CommCostMin: 50, CommCostMax: 100,
		MigCostMin: 10, MigCostMax: 20, OpCost: 10,
		NegotiationInterval: 5 * time.Second,
		LinkLatency:         2 * time.Millisecond,
		SolverMaxNodes:      30000,
		SolverIncremental:   true,
		Seed:                1,
	}
}

// RingParams returns a generated ring scenario of n data centers (and
// therefore n links): degree-2 topology, sparse demand universe, small
// per-link COPs. It scales the Follow-the-Sun negotiation parametrically —
// RingParams(200) is the 200-link scenario the cluster benchmarks run.
func RingParams(n int) Params {
	p := DefaultParams(n)
	p.Degree = 2 // the ring itself; no random chords
	p.DemandMax = 5
	p.SolverMaxNodes = 4000
	p.SparseDemands = true
	return p
}

// CostPoint is one sample of the Figure 4 series.
type CostPoint struct {
	T    time.Duration // virtual time
	Cost float64       // normalized total cost, percent of initial
}

// Result reports the outcome of one run.
type Result struct {
	Points          []CostPoint
	InitialCost     float64
	FinalCost       float64
	ReductionPct    float64
	ConvergenceTime time.Duration
	Rounds          int
	TotalMigrations int64 // total |VM| moved (for the c3 policy comparison)
	PerNodeKBps     float64
	PerLinkSolves   int
	MeanSolveTime   time.Duration
	// SolverNodes sums the search nodes over every per-link solve; the
	// cluster equivalence suite compares it exactly against sequential runs.
	SolverNodes int64
	// WireStats holds each data center's transport counters at the end of
	// the run (the Figure 5 per-node overhead, unnormalized).
	WireStats map[string]transport.Stats
}

type runner struct {
	p      Params
	rng    *rand.Rand
	sched  *sim.Scheduler   // sequential mode (nil when rt drives time)
	tr     *transport.Sim   // sequential mode transport
	rt     *cluster.Runtime // cluster mode (nil in sequential runs)
	nodes  map[string]*core.Node
	names  []string
	links  [][2]string // undirected, stored with larger name first (initiator)
	adj    map[string][]string
	comm   map[string]map[string]int64
	mig    map[string]int64 // "x|y" -> cost
	migSum int64            // accumulated migration cost
	moved  int64
	solves int
	snodes int64
	stime  time.Duration
}

// advance moves virtual time forward on whichever engine drives the run.
func (r *runner) advance(d time.Duration) {
	if r.rt != nil {
		r.rt.Advance(d)
		return
	}
	r.sched.Run(r.sched.Now() + d)
}

// now returns the current virtual time (wall-clock elapsed under a UDP
// cluster).
func (r *runner) now() time.Duration {
	if r.rt != nil {
		return r.rt.Now()
	}
	return r.sched.Now()
}

// node returns the live instance for name: through the cluster runtime
// when it drives the run — a restarted node is a fresh instance, so the
// setup-time cache would go stale across failure injection — and from the
// cache in sequential mode.
func (r *runner) node(name string) *core.Node {
	if r.rt != nil {
		return r.rt.Node(name)
	}
	return r.nodes[name]
}

// wire returns one node's transport counters.
func (r *runner) wire(name string) transport.Stats {
	if r.rt != nil {
		return r.rt.Transport().NodeStats(name)
	}
	return r.tr.NodeStats(name)
}

// Run executes the distributed Follow-the-Sun negotiation to completion.
func Run(p Params) (*Result, error) {
	r := &runner{
		p:     p,
		rng:   rand.New(rand.NewSource(p.Seed)),
		sched: sim.NewScheduler(),
		nodes: map[string]*core.Node{},
		comm:  map[string]map[string]int64{},
		mig:   map[string]int64{},
	}
	r.tr = transport.NewSim(r.sched, p.LinkLatency)
	if err := r.setup(); err != nil {
		return nil, err
	}

	res := &Result{}
	res.InitialCost = r.totalCost()
	res.Points = append(res.Points, CostPoint{0, 100})

	pending := append([][2]string(nil), r.links...)
	round := 0
	for len(pending) > 0 {
		round++
		// Advance virtual time by one negotiation interval and let the
		// network drain.
		r.advance(p.NegotiationInterval)

		// Each node initiates at most one negotiation per round; a node
		// already involved in a negotiation this round is skipped.
		var left [][2]string
		for _, lk := range matchRound(pending, &left) {
			if _, err := r.negotiate(lk[0], lk[1]); err != nil {
				return nil, err
			}
		}
		pending = left
		r.finishRound(res, round)
		if round > 10*len(r.links)+10 {
			return nil, fmt.Errorf("followsun: negotiation did not converge after %d rounds", round)
		}
	}
	r.finalize(res, round)
	return res, nil
}

// matchRound selects the links negotiating this round — each node
// initiates or answers at most one negotiation — and appends the rest to
// left. The matched links are pairwise node-disjoint, which is what lets
// the cluster runtime execute a whole round concurrently.
func matchRound(pending [][2]string, left *[][2]string) [][2]string {
	busy := map[string]bool{}
	var matched [][2]string
	for _, lk := range pending {
		x, y := lk[0], lk[1]
		if busy[x] || busy[y] {
			*left = append(*left, lk)
			continue
		}
		busy[x], busy[y] = true, true
		matched = append(matched, lk)
	}
	return matched
}

// finishRound settles the network and samples the Figure 4 series.
func (r *runner) finishRound(res *Result, round int) {
	r.advance(500 * time.Millisecond)
	res.Points = append(res.Points, CostPoint{
		T:    r.now(),
		Cost: 100 * r.totalCost() / res.InitialCost,
	})
}

// finalize fills the summary metrics shared by Run and RunCluster.
func (r *runner) finalize(res *Result, rounds int) {
	res.Rounds = rounds
	res.FinalCost = 100 * r.totalCost() / res.InitialCost
	res.ReductionPct = 100 - res.FinalCost
	res.ConvergenceTime = r.now()
	res.TotalMigrations = r.moved
	res.PerLinkSolves = r.solves
	res.SolverNodes = r.snodes
	if r.solves > 0 {
		res.MeanSolveTime = r.stime / time.Duration(r.solves)
	}
	res.WireStats = map[string]transport.Stats{}
	secs := r.now().Seconds()
	total := 0.0
	for _, name := range r.names {
		st := r.wire(name)
		res.WireStats[name] = st
		total += float64(st.BytesSent)
	}
	if secs > 0 {
		res.PerNodeKBps = total / secs / float64(len(r.names)) / 1024
	}
}

// setup builds the topology, the cost matrices, and one Cologne instance
// per data center.
func (r *runner) setup() error {
	p := r.p
	for i := 0; i < p.NumDCs; i++ {
		r.names = append(r.names, fmt.Sprintf("dc%02d", i))
	}
	// Connected random topology with average degree ~p.Degree: a ring plus
	// random chords.
	adj := map[string]map[string]bool{}
	addLink := func(a, b string) {
		if a == b || adj[a][b] {
			return
		}
		if adj[a] == nil {
			adj[a] = map[string]bool{}
		}
		if adj[b] == nil {
			adj[b] = map[string]bool{}
		}
		adj[a][b], adj[b][a] = true, true
		hi, lo := a, b
		if hi < lo {
			hi, lo = lo, hi
		}
		r.links = append(r.links, [2]string{hi, lo})
	}
	n := len(r.names)
	for i := 0; i < n && n > 1; i++ {
		addLink(r.names[i], r.names[(i+1)%n])
	}
	wantLinks := p.Degree * n / 2
	if max := n * (n - 1) / 2; wantLinks > max {
		wantLinks = max
	}
	for attempts := 0; len(r.links) < wantLinks && attempts < 100*n*n; attempts++ {
		a, b := r.names[r.rng.Intn(n)], r.names[r.rng.Intn(n)]
		if a != b && !adj[a][b] {
			addLink(a, b)
		}
	}
	sort.Slice(r.links, func(i, j int) bool {
		if r.links[i][0] != r.links[j][0] {
			return r.links[i][0] < r.links[j][0]
		}
		return r.links[i][1] < r.links[j][1]
	})
	r.adj = map[string][]string{}
	for _, name := range r.names {
		var nbrs []string
		for n := range adj[name] {
			nbrs = append(nbrs, n)
		}
		sort.Strings(nbrs)
		r.adj[name] = nbrs
	}

	entry := programs.FollowSunDistributed(r.capOrHuge())
	ares := entry.Analyze()
	mkConfig := func() core.Config {
		cfg := entry.Config
		cfg.SolverMaxNodes = r.p.SolverMaxNodes
		cfg.SolverMaxTime = r.p.SolverMaxTime
		cfg.SolverPropagate = true
		cfg.SolverEngine = r.p.SolverEngine
		cfg.SolverFixpoint = r.p.SolverFixpoint
		cfg.SolverRestarts = r.p.SolverRestarts
		cfg.SolverIncremental = p.SolverIncremental
		cfg.SolverWarmStart = p.SolverWarmStart
		return cfg
	}
	if r.rt != nil {
		specs := make([]cluster.NodeSpec, len(r.names))
		for i, name := range r.names {
			specs[i] = cluster.NodeSpec{Addr: name, Program: ares, Config: mkConfig()}
		}
		if err := r.rt.SpawnAll(specs); err != nil {
			return err
		}
		for _, name := range r.names {
			r.nodes[name] = r.rt.Node(name)
		}
	} else {
		for _, name := range r.names {
			node, err := core.NewNode(name, ares, mkConfig(), r.tr)
			if err != nil {
				return err
			}
			r.nodes[name] = node
		}
	}
	// Facts. With SparseDemands, each center hosts allocations only for
	// itself and its direct neighbors (hostSet) and negotiates only its own
	// demand (the dc rows); the dense default is the paper's all-pairs
	// universe.
	for _, x := range r.names {
		node := r.nodes[x]
		r.comm[x] = map[string]int64{}
		for v := -p.DemandMax; v <= p.DemandMax; v++ {
			if err := node.Insert("migRange", colog.IntVal(v)); err != nil {
				return err
			}
		}
		if err := node.Insert("opCost", colog.StringVal(x), colog.IntVal(p.OpCost)); err != nil {
			return err
		}
		if err := node.Insert("resource", colog.StringVal(x), colog.IntVal(p.Capacity)); err != nil {
			return err
		}
		hostSet := r.names
		if p.SparseDemands {
			hostSet = append([]string{x}, r.adj[x]...)
			sort.Strings(hostSet)
		}
		for _, d := range hostSet {
			cc := int64(0)
			if d != x {
				cc = p.CommCostMin + r.rng.Int63n(p.CommCostMax-p.CommCostMin+1)
			}
			r.comm[x][d] = cc
			if err := node.Insert("commCost", colog.StringVal(x), colog.StringVal(d), colog.IntVal(cc)); err != nil {
				return err
			}
			if !p.SparseDemands || d == x {
				if err := node.Insert("dc", colog.StringVal(x), colog.StringVal(d)); err != nil {
					return err
				}
			}
			alloc := r.rng.Int63n(p.DemandMax + 1)
			if err := node.Insert("curVm", colog.StringVal(x), colog.StringVal(d), colog.IntVal(alloc)); err != nil {
				return err
			}
		}
	}
	for _, lk := range r.links {
		x, y := lk[0], lk[1]
		mc := p.MigCostMin + r.rng.Int63n(p.MigCostMax-p.MigCostMin+1)
		r.mig[x+"|"+y], r.mig[y+"|"+x] = mc, mc
		for _, pair := range [][2]string{{x, y}, {y, x}} {
			node := r.nodes[pair[0]]
			if err := node.Insert("link", colog.StringVal(pair[0]), colog.StringVal(pair[1])); err != nil {
				return err
			}
			if err := node.Insert("migCost", colog.StringVal(pair[0]), colog.StringVal(pair[1]), colog.IntVal(mc)); err != nil {
				return err
			}
		}
	}
	// Let the shipping rules replicate initial state.
	r.advance(time.Second)
	return nil
}

func (r *runner) capOrHuge() int64 {
	if r.p.MaxMigrates > 0 {
		return r.p.MaxMigrates
	}
	return 1 << 30
}

// negotiate runs one per-link COP and folds the outcome into the run
// totals, returning the solve result for statistics.
func (r *runner) negotiate(x, y string) (*core.SolveResult, error) {
	sres, elapsed, err := r.negotiateSolve(x, y)
	if err != nil {
		return nil, err
	}
	r.fold(x, y, sres, elapsed)
	return sres, nil
}

// negotiateSolve does the node-local part of one negotiation at the
// initiator (the larger address, per the paper's protocol footnote). It
// touches only node x, so negotiations of node-disjoint links can run
// concurrently under the cluster runtime.
func (r *runner) negotiateSolve(x, y string) (*core.SolveResult, time.Duration, error) {
	node := r.node(x)
	if err := node.Insert("setLink", colog.StringVal(x), colog.StringVal(y)); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	sres, err := node.Solve(core.SolveOptions{
		// Warm start at "no migration" and explore small moves first: the
		// branching heuristic Gecode users would pick for this model.
		Hint: func(pred string, vals []colog.Value) (int64, bool) { return 0, true },
		ValueOrder: func(v *solver.Var, vals []int64) []int64 {
			out := append([]int64(nil), vals...)
			sort.Slice(out, func(i, j int) bool {
				ai, aj := out[i], out[j]
				if ai < 0 {
					ai = -ai
				}
				if aj < 0 {
					aj = -aj
				}
				if ai != aj {
					return ai < aj
				}
				return out[i] > out[j]
			})
			return out
		},
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, 0, fmt.Errorf("followsun: negotiating %s-%s: %w", x, y, err)
	}
	// Negotiation done: retract the link selection so the next one starts
	// from a clean toMigVm table.
	if err := node.Delete("setLink", colog.StringVal(x), colog.StringVal(y)); err != nil {
		return nil, 0, err
	}
	return sres, elapsed, nil
}

// fold accumulates one negotiation's outcome into the run totals. Unlike
// negotiateSolve it mutates shared state, so cluster rounds call it
// sequentially in link order after the epoch barrier.
func (r *runner) fold(x, y string, sres *core.SolveResult, elapsed time.Duration) {
	r.stime += elapsed
	r.solves++
	r.snodes += sres.Stats.Nodes
	if !sres.Feasible() {
		return
	}
	for _, a := range sres.Assignments {
		if a.Pred != "migVm" {
			continue
		}
		moved := a.Vals[3].I
		if moved < 0 {
			moved = -moved
		}
		r.moved += moved
		r.migSum += moved * r.mig[x+"|"+y]
	}
}

// totalCost is the global objective (equation 1): operating plus
// communication cost of the current allocation, plus accumulated migration
// cost.
func (r *runner) totalCost() float64 {
	total := float64(r.migSum)
	for _, x := range r.names {
		node := r.node(x)
		for _, row := range node.Rows("curVm") {
			if row[0].S != x {
				continue
			}
			alloc := float64(row[2].Num())
			total += alloc * float64(r.p.OpCost+r.comm[x][row[1].S])
		}
	}
	return total
}
