package followsun

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
)

// failureScript returns cluster options that crash one data center between
// negotiation epochs and restart it from a checkpoint. Follow-the-Sun
// ships its migVm decisions as *event* tuples — fire-and-forget streams
// the anti-entropy mirrors deliberately exclude (there is no durable state
// to reconcile; see docs/recovery.md) — so the crash is placed at a
// checkpoint boundary: the network settles, every node checkpoints, then
// the victim dies and is restored. The digest exchange still runs and
// verifies that every replicated table is aligned.
func failureScript(o cluster.Options, failEpoch int) cluster.Options {
	o.CheckpointEvery = 1
	o.AfterEpoch = func(r *cluster.Runtime, epoch int) error {
		if epoch != failEpoch {
			return nil
		}
		r.Settle()
		if err := r.CheckpointNow(); err != nil {
			return err
		}
		victim := r.Addrs()[1]
		if err := r.StopNode(victim); err != nil {
			return err
		}
		_, err := r.RestartNode(victim)
		return err
	}
	return o
}

// TestRecoveryEquivalence: killing and restarting a data center mid-run —
// checkpoint restore plus anti-entropy resync — must converge the
// negotiation to the byte-identical outcome of an uninterrupted cluster
// run: same cost trajectory, same migrations, same per-link solver traces.
// (Virtual timestamps shift because the failure script settles the network
// mid-run, so the comparison is over decisions, not clock values.)
func TestRecoveryEquivalence(t *testing.T) {
	p := clusterTestParams()
	plain, err := RunCluster(p, cluster.Options{Workers: 4, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := RunCluster(p, failureScript(cluster.Options{Workers: 4}, 1))
	if err != nil {
		t.Fatal(err)
	}
	costs := func(res *Result) []float64 {
		out := make([]float64, len(res.Points))
		for i, pt := range res.Points {
			out[i] = pt.Cost
		}
		return out
	}
	if !reflect.DeepEqual(costs(plain), costs(recovered)) {
		t.Fatalf("cost series diverged:\nuninterrupted %v\nrecovered     %v", costs(plain), costs(recovered))
	}
	if plain.FinalCost != recovered.FinalCost || plain.TotalMigrations != recovered.TotalMigrations ||
		plain.Rounds != recovered.Rounds || plain.PerLinkSolves != recovered.PerLinkSolves {
		t.Fatalf("summary diverged:\nuninterrupted %+v\nrecovered %+v", plain, recovered)
	}
	if plain.SolverNodes != recovered.SolverNodes || plain.SolverNodes == 0 {
		t.Fatalf("solver traces diverged: %d vs %d nodes", plain.SolverNodes, recovered.SolverNodes)
	}
}

// TestRecoveryDiskReplayEquivalence: the same crash with store=disk and no
// checkpoints. The migVm event streams the anti-entropy mirrors exclude
// ARE in the write-ahead log — every delivered event was a logged
// transition — so after a settled boundary the restarted data center
// replays its way back to the exact pre-crash state and the negotiation
// stays byte-identical.
func TestRecoveryDiskReplayEquivalence(t *testing.T) {
	p := clusterTestParams()
	plain, err := RunCluster(p, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := cluster.Options{Workers: 4, Storage: "disk", StorageDir: t.TempDir()}
	o.AfterEpoch = func(r *cluster.Runtime, epoch int) error {
		if epoch != 1 {
			return nil
		}
		r.Settle() // events in flight would die with the victim; deliver them first
		victim := r.Addrs()[1]
		if err := r.StopNode(victim); err != nil {
			return err
		}
		_, err := r.RestartNode(victim)
		return err
	}
	recovered, err := RunCluster(p, o)
	if err != nil {
		t.Fatal(err)
	}
	costs := func(res *Result) []float64 {
		out := make([]float64, len(res.Points))
		for i, pt := range res.Points {
			out[i] = pt.Cost
		}
		return out
	}
	if !reflect.DeepEqual(costs(plain), costs(recovered)) {
		t.Fatalf("cost series diverged:\nuninterrupted %v\nreplayed      %v", costs(plain), costs(recovered))
	}
	if plain.FinalCost != recovered.FinalCost || plain.TotalMigrations != recovered.TotalMigrations ||
		plain.SolverNodes != recovered.SolverNodes || plain.SolverNodes == 0 {
		t.Fatalf("summary diverged:\nuninterrupted %+v\nreplayed %+v", plain, recovered)
	}
}

// TestRecoveryUDPConverges: the same failure script over real UDP sockets
// — no byte-identical guarantee in free-running mode, but the run must
// complete, reduce cost, and record the resync work.
func TestRecoveryUDPConverges(t *testing.T) {
	p := RingParams(4)
	p.NegotiationInterval = 10 * time.Millisecond
	o := failureScript(cluster.Options{Mode: cluster.ModeUDP, Workers: 4}, 1)
	res, err := RunCluster(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerLinkSolves != 4 {
		t.Fatalf("solves = %d, want 4", res.PerLinkSolves)
	}
	if res.FinalCost > 100 {
		t.Fatalf("final cost %.1f%% above initial", res.FinalCost)
	}
}
