package followsun

import (
	"fmt"
	"math/rand"

	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/programs"
	"repro/internal/serve"
)

// ServingParams size the continuous Follow-the-Sun serving workload: the
// centralized formulation (one solver deciding migrations on every link at
// once) fed by live allocation churn — the sun moving demand between data
// centers as a curVm update stream instead of batch refreshes.
type ServingParams struct {
	DCs      int   // data centers on a ring (default 3)
	Demands  int   // demand locations (default 2)
	Capacity int64 // per-DC resource capacity (default 60)
	AllocMax int64 // per-(DC, demand) allocation ceiling (default 5)
	MaxNodes int64 // per-tick search budget (node-based; see acloud serving)
	Seed     int64
}

// DefaultServingParams returns a small always-feasible serving workload.
func DefaultServingParams() ServingParams {
	return ServingParams{DCs: 3, Demands: 2, Capacity: 60, AllocMax: 5, MaxNodes: 3000, Seed: 1}
}

// NewServing builds the Follow-the-Sun serving scenario: serving node plus
// batch reference running the centralized COP, and a churn generator
// emitting curVm keyed replaces (demand shifting between data centers) and
// commCost repricing. Allocations stay in [0, AllocMax] with
// Demands*AllocMax far below Capacity, so every tick's COP is feasible.
func NewServing(p ServingParams, cfg serve.Config) (*serve.Scenario, error) {
	def := DefaultServingParams()
	if p.DCs <= 0 {
		p.DCs = def.DCs
	}
	if p.Demands <= 0 {
		p.Demands = def.Demands
	}
	if p.Capacity <= 0 {
		p.Capacity = def.Capacity
	}
	if p.AllocMax <= 0 {
		p.AllocMax = def.AllocMax
	}
	if p.MaxNodes <= 0 {
		p.MaxNodes = def.MaxNodes
	}
	entry := programs.FollowSunCentralized()
	res := entry.Analyze()
	nodeCfg := entry.Config
	nodeCfg.SolverMaxNodes = p.MaxNodes
	nodeCfg.SolverPropagate = true
	nodeCfg.SolverIncremental = true
	nodeCfg.SolverWarmStart = true
	nodeCfg.Keys = map[string][]int{
		"curVm":    {0, 1},
		"commCost": {0, 1},
		"opCost":   {0},
		"resource": {0},
	}

	dcName := func(i int) string { return fmt.Sprintf("x%d", i) }
	demName := func(i int) string { return fmt.Sprintf("d%d", i) }

	build := func() (*core.Node, error) {
		n, err := core.NewNode("sun", res, nodeCfg, nil)
		if err != nil {
			return nil, err
		}
		for i := 0; i < p.DCs; i++ {
			x := dcName(i)
			if err := n.Insert("opCost", colog.StringVal(x), colog.IntVal(10)); err != nil {
				return nil, err
			}
			if err := n.Insert("resource", colog.StringVal(x), colog.IntVal(p.Capacity)); err != nil {
				return nil, err
			}
			// Ring links, both directions (rule c1 needs the reverse row).
			// A 2-DC ring has one undirected link; skip the duplicate.
			if p.DCs == 2 && i == 1 {
				continue
			}
			y := dcName((i + 1) % p.DCs)
			for _, pair := range [][2]string{{x, y}, {y, x}} {
				if err := n.Insert("link", colog.StringVal(pair[0]), colog.StringVal(pair[1])); err != nil {
					return nil, err
				}
				if err := n.Insert("migCost", colog.StringVal(pair[0]), colog.StringVal(pair[1]), colog.IntVal(12)); err != nil {
					return nil, err
				}
			}
		}
		for d := 0; d < p.Demands; d++ {
			if err := n.Insert("demand", colog.StringVal(demName(d))); err != nil {
				return nil, err
			}
		}
		return n, nil
	}
	node, err := build()
	if err != nil {
		return nil, err
	}
	shadow, err := build()
	if err != nil {
		return nil, err
	}

	if cfg.Keys == nil {
		cfg.Keys = map[string][]int{"curVm": {0, 1}, "commCost": {0, 1}}
	}
	srv := serve.NewServer(node, cfg)

	// Generator state: current allocation and pricing per (DC, demand).
	// Initial rows arrive through the stream so both nodes share one path.
	type cell struct{ alloc, comm int64 }
	state := map[[2]int]*cell{}
	curVmEv := func(dc, d int, alloc int64) serve.Event {
		return serve.Event{Op: serve.OpInsert, Pred: "curVm", Vals: []colog.Value{
			colog.StringVal(dcName(dc)), colog.StringVal(demName(d)), colog.IntVal(alloc),
		}}
	}
	commEv := func(dc, d int, c int64) serve.Event {
		return serve.Event{Op: serve.OpInsert, Pred: "commCost", Vals: []colog.Value{
			colog.StringVal(dcName(dc)), colog.StringVal(demName(d)), colog.IntVal(c),
		}}
	}
	seedRng := rand.New(rand.NewSource(p.Seed))
	var initial []serve.Event
	for i := 0; i < p.DCs; i++ {
		for d := 0; d < p.Demands; d++ {
			c := &cell{alloc: seedRng.Int63n(p.AllocMax + 1), comm: 50 + seedRng.Int63n(51)}
			state[[2]int{i, d}] = c
			initial = append(initial, curVmEv(i, d, c.alloc), commEv(i, d, c.comm))
		}
	}
	gen := func(rng *rand.Rand, n int) []serve.Event {
		events := make([]serve.Event, 0, n)
		for len(events) < n {
			dc, d := rng.Intn(p.DCs), rng.Intn(p.Demands)
			c := state[[2]int{dc, d}]
			if rng.Intn(4) == 0 {
				c.comm = 50 + rng.Int63n(51)
				events = append(events, commEv(dc, d, c.comm))
			} else {
				c.alloc = rng.Int63n(p.AllocMax + 1)
				events = append(events, curVmEv(dc, d, c.alloc))
			}
		}
		return events
	}
	first := true
	wrapped := func(rng *rand.Rand, n int) []serve.Event {
		if first {
			first = false
			return append(initial, gen(rng, n)...)
		}
		return gen(rng, n)
	}

	return &serve.Scenario{Name: "followsun", Server: srv, Shadow: shadow, Gen: wrapped}, nil
}
