// Package sim provides a deterministic discrete-event scheduler. It stands
// in for ns-3 in the paper's simulation mode: Cologne instances exchange
// messages through a simulated network whose delivery delays are events on
// this scheduler, so convergence times and message counts are reproducible.
//
// Events execute in (time, sequence) order, with sequence numbers assigned
// at scheduling time. This total order is what the cluster runtime's epoch
// barrier relies on: replaying staged messages in item order reproduces the
// exact event schedule of a sequential run (see internal/cluster and
// docs/distribution.md). The scheduler is single-threaded by design —
// concurrency lives above it, never inside it.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Scheduler is a single-threaded discrete-event loop. Events execute in
// (time, sequence) order; scheduling is allowed from inside event handlers.
// It is not safe for concurrent use.
type Scheduler struct {
	now    time.Duration
	seq    int64
	queue  eventQueue
	closed bool
}

type event struct {
	at    time.Duration
	seq   int64
	fn    func()
	index int
	dead  bool
}

// NewScheduler creates an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Timer identifies a scheduled event so it can be cancelled.
type Timer struct{ ev *event }

// Cancel prevents the event from running. Cancelling an already-fired timer
// is a no-op.
func (t Timer) Cancel() {
	if t.ev != nil {
		t.ev.dead = true
	}
}

// Schedule runs fn after delay (relative to the current virtual time).
func (s *Scheduler) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t; times in the past run "now".
func (s *Scheduler) At(t time.Duration, fn func()) Timer {
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return Timer{ev}
}

// Periodic runs fn every interval, starting one interval from now, until the
// returned Timer chain is cancelled via the returned cancel function.
func (s *Scheduler) Periodic(interval time.Duration, fn func()) (cancel func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive periodic interval %v", interval))
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			s.Schedule(interval, tick)
		}
	}
	s.Schedule(interval, tick)
	return func() { stopped = true }
}

// Step executes the next event, advancing virtual time. It returns false
// when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or virtual time would exceed
// until. It returns the number of events executed.
func (s *Scheduler) Run(until time.Duration) int {
	n := 0
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.dead {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > until {
			break
		}
		s.Step()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunUntilIdle executes events until none remain. maxEvents guards against
// runaway periodic loops; 0 means no bound.
func (s *Scheduler) RunUntilIdle(maxEvents int) int {
	n := 0
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x interface{}) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
