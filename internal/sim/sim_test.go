package sim

import (
	"testing"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.RunUntilIdle(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order = %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.RunUntilIdle(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestScheduleFromHandler(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.Schedule(time.Second, func() {
		s.Schedule(time.Second, func() { fired = true })
	})
	s.RunUntilIdle(0)
	if !fired {
		t.Fatal("nested event did not fire")
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	n := 0
	s.Periodic(time.Second, func() { n++ })
	s.Run(5500 * time.Millisecond)
	if n != 5 {
		t.Fatalf("periodic fired %d times, want 5", n)
	}
	if s.Now() != 5500*time.Millisecond {
		t.Fatalf("Now = %v, want 5.5s", s.Now())
	}
}

func TestPeriodicCancel(t *testing.T) {
	s := NewScheduler()
	n := 0
	var cancel func()
	cancel = s.Periodic(time.Second, func() {
		n++
		if n == 3 {
			cancel()
		}
	})
	s.RunUntilIdle(1000)
	if n != 3 {
		t.Fatalf("periodic fired %d times after cancel, want 3", n)
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.Schedule(time.Second, func() { fired = true })
	tm.Cancel()
	s.RunUntilIdle(0)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestAtInPast(t *testing.T) {
	s := NewScheduler()
	s.Schedule(2*time.Second, func() {
		s.At(time.Second, func() {}) // in the past: clamped to now
	})
	s.RunUntilIdle(0)
	if s.Now() != 2*time.Second {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestRunUntilIdleBound(t *testing.T) {
	s := NewScheduler()
	s.Periodic(time.Millisecond, func() {})
	n := s.RunUntilIdle(50)
	if n != 50 {
		t.Fatalf("executed %d events, want 50", n)
	}
}

func TestPendingCount(t *testing.T) {
	s := NewScheduler()
	s.Schedule(time.Second, func() {})
	s.Schedule(time.Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}

func TestPeriodicPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Periodic(0) did not panic")
		}
	}()
	NewScheduler().Periodic(0, func() {})
}
