// Package profiling wraps runtime/pprof for the command-line binaries: one
// call starts a CPU profile, the returned stop function ends it and writes
// a heap snapshot next to it. Every binary exposes it the same way:
//
//	cologne -profile /tmp/solve -solve program.colog
//	acloud  -profile /tmp/acloud
//
// which writes /tmp/solve.cpu.pprof and /tmp/solve.heap.pprof, ready for
// `go tool pprof`. The epoch-executor tuning in this repo was driven by
// exactly these captures; docs/tuning.md shows the workflow.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile writing to prefix+".cpu.pprof" and returns a
// stop function that ends the profile and dumps a garbage-collected heap
// snapshot to prefix+".heap.pprof". An empty prefix is a no-op: Start
// returns a do-nothing stop function, so callers can wire the flag through
// unconditionally.
func Start(prefix string) (stop func() error, err error) {
	if prefix == "" {
		return func() error { return nil }, nil
	}
	cpuPath := prefix + ".cpu.pprof"
	f, err := os.Create(cpuPath)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: starting CPU profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		cerr := f.Close()
		herr := writeHeap(prefix + ".heap.pprof")
		if cerr != nil {
			return cerr
		}
		return herr
	}, nil
}

// writeHeap dumps a heap profile after a GC, so the snapshot shows live
// retention rather than garbage awaiting collection.
func writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		return fmt.Errorf("profiling: writing heap profile: %w", err)
	}
	return nil
}
