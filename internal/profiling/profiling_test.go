package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartEmptyPrefixIsNoop(t *testing.T) {
	stop, err := Start("")
	if err != nil {
		t.Fatalf("Start(\"\"): %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "prof")
	stop, err := Start(prefix)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		st, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Fatalf("missing profile %s: %v", suffix, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", suffix)
		}
	}
}

func TestStartBadPathFails(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "p")); err == nil {
		t.Fatal("Start into a missing directory should fail")
	}
}
