package serve

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Scenario couples a serving server with its batch reference: a second,
// identically configured and seeded node that replays the same admitted
// churn and solves only at the serving node's completed (non-degraded)
// ticks. The soak and equivalence tests drive both in lockstep and demand
// byte-identical state at every quiescent point. Each scenario package
// (acloud, followsun, wireless) exposes a NewServing entrypoint returning
// one.
type Scenario struct {
	Name   string
	Server *Server
	// Shadow is the batch reference node. It must be constructed exactly
	// like the serving node: same program, config, and seed facts in the
	// same insertion order.
	Shadow *core.Node
	// Gen generates the next n churn events; it owns whatever workload
	// state it needs (live keys, value ranges) and must be deterministic
	// in rng.
	Gen func(rng *rand.Rand, n int) []Event
}

// ShadowApply replays one tick report onto the batch reference: the
// admitted batch is applied unconditionally, and a completed tick is
// mirrored by a batch Solve. Degraded ticks apply churn only — their
// interrupted solve never materialized on the serving side, so the
// reference must not solve either.
func (sc *Scenario) ShadowApply(rep *TickReport) error {
	for _, ev := range rep.Batch {
		var err error
		switch ev.Op {
		case OpInsert:
			err = sc.Shadow.Insert(ev.Pred, ev.Vals...)
		case OpDelete:
			err = sc.Shadow.Delete(ev.Pred, ev.Vals...)
		}
		if err != nil {
			return fmt.Errorf("serve: shadow applying %s: %w", ev, err)
		}
	}
	if rep.Degraded {
		return nil
	}
	if _, err := sc.Shadow.Solve(core.SolveOptions{Hint: sc.Server.cfg.Hint}); err != nil {
		return fmt.Errorf("serve: shadow solve: %w", err)
	}
	return nil
}

// VerifyEquivalent checks the serving node against the batch reference at
// a quiescent point: byte-identical table dumps (contents and arrival
// order), identical objective and status, and an identical solver trace
// (node, failure, and solution counts). It returns a descriptive error on
// the first divergence.
func (sc *Scenario) VerifyEquivalent() error {
	a, b := sc.Server.Node(), sc.Shadow
	da, db := a.Dump(), b.Dump()
	if da != db {
		return fmt.Errorf("serve: %s: table state diverged:\nserving:\n%s\nbatch:\n%s", sc.Name, da, db)
	}
	ra, rb := a.LastSolveResult, b.LastSolveResult
	if (ra == nil) != (rb == nil) {
		return fmt.Errorf("serve: %s: solve result presence diverged", sc.Name)
	}
	if ra == nil {
		return nil
	}
	if ra.Status != rb.Status || ra.Objective != rb.Objective {
		return fmt.Errorf("serve: %s: outcome diverged: %v/%v vs %v/%v",
			sc.Name, ra.Status, ra.Objective, rb.Status, rb.Objective)
	}
	if ra.Stats.Nodes != rb.Stats.Nodes ||
		ra.Stats.Failures != rb.Stats.Failures ||
		ra.Stats.Solutions != rb.Stats.Solutions {
		return fmt.Errorf("serve: %s: solver trace diverged: %+v vs %+v",
			sc.Name, ra.Stats, rb.Stats)
	}
	if ra.NumVars != rb.NumVars || ra.NumCons != rb.NumCons {
		return fmt.Errorf("serve: %s: model shape diverged: %d/%d vars, %d/%d cons",
			sc.Name, ra.NumVars, rb.NumVars, ra.NumCons, rb.NumCons)
	}
	return nil
}
