// Package serve is the continuous-optimization serving runtime: it ingests
// a live churn-event stream (fact inserts and deletes framed with the
// engine's varint wire codec), admits batches under backpressure through a
// bounded coalescing queue, and on each tick runs an incremental re-ground
// + re-solve under a per-tick deadline with anytime semantics — at budget
// expiry the best incumbent is published as a decision delta carrying a
// degraded flag. At any quiescent point (queue drained, no deadline hit)
// the serving node's tables, objective, and solver trace are byte-identical
// to a batch re-solve over the same cumulative facts; see docs/serving.md.
package serve

import (
	"fmt"

	"repro/internal/colog"
	"repro/internal/core"
)

// churnFrameVersion tags each churn frame; it is distinct from the delta
// codec's frame versions so a churn stream misrouted into the delta path
// fails loudly rather than decoding as garbage.
const churnFrameVersion = 1

// Op is a churn-event operation.
type Op byte

const (
	// OpInsert asserts a fact; on a keyed table it replaces the row with
	// the same key (the engine's keyed-upsert semantics), which is how
	// updates travel the stream.
	OpInsert Op = '+'
	// OpDelete retracts a fact by its full tuple.
	OpDelete Op = '-'
)

// Event is one churn-stream event: a fact insert or delete against a base
// table of the serving node's program.
type Event struct {
	Op   Op
	Pred string
	Vals []colog.Value
}

// String renders the event in delta notation for logs and test failures.
func (e Event) String() string {
	t := core.Tuple{Pred: e.Pred, Vals: e.Vals}
	return string(e.Op) + t.String()
}

// AppendEvent appends one framed churn event: a version byte, the op byte,
// the uvarint-length-prefixed predicate, then the kind-tagged value list —
// the same primitives as the engine's delta frames, so a trace file is a
// plain concatenation of self-delimiting frames.
func AppendEvent(buf []byte, ev Event) ([]byte, error) {
	if ev.Op != OpInsert && ev.Op != OpDelete {
		return nil, fmt.Errorf("serve: encoding churn event: bad op %q", ev.Op)
	}
	if ev.Pred == "" {
		return nil, fmt.Errorf("serve: encoding churn event: empty predicate")
	}
	buf = append(buf, churnFrameVersion, byte(ev.Op))
	buf = core.AppendWireString(buf, ev.Pred)
	return core.AppendWireValues(buf, ev.Vals)
}

// DecodeEvent parses one framed churn event and returns the remaining
// bytes. It never panics on malformed input (FuzzDecodeChurnEvent pins
// this) and rejects frames whose version, op, predicate, or value list is
// malformed.
func DecodeEvent(b []byte) (Event, []byte, error) {
	if len(b) < 2 {
		return Event{}, nil, fmt.Errorf("serve: churn frame truncated")
	}
	if b[0] != churnFrameVersion {
		return Event{}, nil, fmt.Errorf("serve: not a version-%d churn frame (got %d)", churnFrameVersion, b[0])
	}
	op := Op(b[1])
	if op != OpInsert && op != OpDelete {
		return Event{}, nil, fmt.Errorf("serve: bad churn op %q", b[1])
	}
	pred, rest, ok := core.ReadWireString(b[2:])
	if !ok || pred == "" {
		return Event{}, nil, fmt.Errorf("serve: malformed churn predicate")
	}
	vals, rest, err := core.ReadWireValues(rest)
	if err != nil {
		return Event{}, nil, fmt.Errorf("serve: malformed churn values: %w", err)
	}
	return Event{Op: op, Pred: pred, Vals: vals}, rest, nil
}

// EncodeTrace frames a whole event sequence back to back — the load
// driver's trace-file format.
func EncodeTrace(events []Event) ([]byte, error) {
	var buf []byte
	var err error
	for _, ev := range events {
		if buf, err = AppendEvent(buf, ev); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeTrace parses a concatenation of churn frames to exhaustion.
func DecodeTrace(b []byte) ([]Event, error) {
	var events []Event
	for len(b) > 0 {
		ev, rest, err := DecodeEvent(b)
		if err != nil {
			return nil, fmt.Errorf("serve: trace frame %d: %w", len(events), err)
		}
		events = append(events, ev)
		b = rest
	}
	return events, nil
}
