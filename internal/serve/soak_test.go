package serve_test

import (
	"math/rand"
	"testing"

	"repro/internal/serve"
)

// TestServingSoakEquivalence is the serving-soak gate: thousands of random
// churn events per scenario, randomized chunk and batch sizes, and injected
// deadline pressure (interrupt hooks firing at random poll depths on a
// third of the ticks). At every quiescent point — queue drained, last tick
// completed — the serving node must be byte-identical to the batch
// reference: same table contents in the same arrival order, same
// objective, same solver trace. CI runs it under -race (the serving-soak
// named gate, `make serving-soak`).
func TestServingSoakEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode")
	}
	// Per-scenario event volume: 5k+ in total across the three scenarios.
	volumes := map[string]int{
		"acloud":    2500,
		"followsun": 1500,
		"wireless":  1500,
	}
	for name, build := range scenarioBuilders() {
		t.Run(name, func(t *testing.T) {
			pressureRng := rand.New(rand.NewSource(99))
			cfg := serve.Config{
				QueueCap: 512,
				BatchMax: 48,
				NextInterrupt: func() func() bool {
					if pressureRng.Intn(3) != 0 {
						return nil
					}
					// Fire after a random number of budget polls; depth 0
					// interrupts before the first incumbent.
					stopAfter := pressureRng.Intn(4)
					polls := 0
					return func() bool { polls++; return polls > stopAfter }
				},
			}
			sc, err := build(cfg, 3)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1234))
			checks, degraded := drive(t, sc, rng, volumes[name], 120)
			if checks < 3 {
				t.Fatalf("only %d quiescent checkpoints", checks)
			}
			if degraded == 0 {
				t.Fatal("deadline pressure never produced a degraded tick; the soak is not exercising the anytime path")
			}
			st := sc.Server.StatsSnapshot()
			t.Logf("%s: %d ticks (%d degraded), %d admitted, %d coalesced, %d checkpoints, p50=%v p99=%v",
				name, st.Ticks, st.DegradedTicks, st.EventsAdmitted, st.EventsCoalesced,
				checks, st.LatencyPercentile(0.50), st.LatencyPercentile(0.99))
		})
	}
}
