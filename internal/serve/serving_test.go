package serve_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/acloud"
	"repro/internal/followsun"
	"repro/internal/serve"
	"repro/internal/wireless"
)

// scenarioBuilders constructs the three serving scenarios with a given
// server config, smallest-useful sizes.
func scenarioBuilders() map[string]func(cfg serve.Config, seed int64) (*serve.Scenario, error) {
	return map[string]func(cfg serve.Config, seed int64) (*serve.Scenario, error){
		"acloud": func(cfg serve.Config, seed int64) (*serve.Scenario, error) {
			p := acloud.DefaultServingParams()
			p.Seed = seed
			return acloud.NewServing(p, cfg)
		},
		"followsun": func(cfg serve.Config, seed int64) (*serve.Scenario, error) {
			p := followsun.DefaultServingParams()
			p.Seed = seed
			return followsun.NewServing(p, cfg)
		},
		"wireless": func(cfg serve.Config, seed int64) (*serve.Scenario, error) {
			p := wireless.DefaultServingParams()
			p.Seed = seed
			return wireless.NewServing(p, cfg)
		},
	}
}

// drive runs the lockstep serving-vs-batch protocol: generate churn in
// random chunks, offer it under backpressure, tick at random points, and
// at every quiescent point demand byte-identical state between the serving
// node and the batch reference. Returns the number of equivalence checks
// that ran.
func drive(t *testing.T, sc *serve.Scenario, rng *rand.Rand, totalEvents, maxChunk int) (checks, degraded int) {
	t.Helper()
	tick := func(settle bool) {
		t.Helper()
		var rep *serve.TickReport
		var err error
		if settle {
			rep, err = sc.Server.Settle()
		} else {
			rep, err = sc.Server.TickOnce()
		}
		if err != nil {
			t.Fatalf("%s: tick: %v", sc.Name, err)
		}
		if rep.Degraded {
			degraded++
		}
		if err := sc.ShadowApply(rep); err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if sc.Server.Quiescent() {
			if err := sc.VerifyEquivalent(); err != nil {
				t.Fatalf("quiescent check %d: %v", checks, err)
			}
			checks++
		}
	}

	offered := 0
	for offered < totalEvents {
		chunk := 1 + rng.Intn(maxChunk)
		for _, ev := range sc.Gen(rng, chunk) {
			offered++
			for {
				err := sc.Server.Offer(ev)
				if err == nil {
					break
				}
				if err != serve.ErrQueueFull {
					t.Fatalf("%s: offer %s: %v", sc.Name, ev, err)
				}
				tick(false) // backpressure: drain a batch, then retry
			}
		}
		tick(false)
		if rng.Intn(3) == 0 {
			tick(false) // occasional extra tick drains larger chunks
		}
	}
	for !sc.Server.Quiescent() {
		tick(true)
	}
	return checks, degraded
}

// TestServingScenarioEquivalence is the per-scenario smoke version of the
// soak: a few hundred churn events, no deadline pressure, byte-identity at
// every quiescent point.
func TestServingScenarioEquivalence(t *testing.T) {
	for name, build := range scenarioBuilders() {
		t.Run(name, func(t *testing.T) {
			sc, err := build(serve.Config{QueueCap: 128, BatchMax: 32}, 1)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			checks, _ := drive(t, sc, rng, 300, 40)
			if checks == 0 {
				t.Fatal("no quiescent checkpoint was ever reached")
			}
			st := sc.Server.StatsSnapshot()
			if st.Ticks == 0 || st.EventsAdmitted == 0 {
				t.Fatalf("suspicious stats: %+v", st)
			}
		})
	}
}

// TestServingDeadlinePublishesDegradedIncumbent is the deadline regression
// gate: a tick whose solve exceeds its budget must come back within budget
// + epsilon carrying the degraded flag and leave the engine's materialized
// state untouched; the next idle (unbounded) tick must converge back to
// the exact batch outcome.
func TestServingDeadlinePublishesDegradedIncumbent(t *testing.T) {
	fireNow := func() func() bool {
		return func() bool { return true }
	}
	pressure := false
	cfg := serve.Config{
		QueueCap: 256,
		BatchMax: 64,
		NextInterrupt: func() func() bool {
			if pressure {
				return fireNow()
			}
			return nil
		},
	}
	p := acloud.DefaultServingParams()
	sc, err := acloud.NewServing(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	// Establish a completed baseline.
	for _, ev := range sc.Gen(rng, 20) {
		if err := sc.Server.Offer(ev); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sc.Server.TickOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatal("baseline tick unexpectedly degraded")
	}
	if err := sc.ShadowApply(rep); err != nil {
		t.Fatal(err)
	}
	if err := sc.VerifyEquivalent(); err != nil {
		t.Fatal(err)
	}

	// Churn plus an interrupt that fires at the first budget poll: the
	// tick must degrade, publish promptly, and leave tables alone.
	for _, ev := range sc.Gen(rng, 10) {
		if err := sc.Server.Offer(ev); err != nil {
			t.Fatal(err)
		}
	}
	before := sc.Server.Node().Dump()
	pressure = true
	start := time.Now()
	rep, err = sc.Server.TickOnce()
	elapsed := time.Since(start)
	pressure = false
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("over-budget tick did not set degraded")
	}
	if sc.Server.Quiescent() {
		t.Fatal("degraded tick reported quiescent")
	}
	// Budget + epsilon: the interrupt fires at the first poll, so the
	// whole tick is admission + grounding + one polling interval. The
	// bound is generous for slow CI hosts but rules out a full search.
	if elapsed > 2*time.Second {
		t.Fatalf("degraded tick took %v", elapsed)
	}
	after := sc.Server.Node().Dump()
	// The degraded incumbent is an overlay: materialized engine state
	// (modulo the churn the tick admitted) must not contain solver output
	// from the interrupted search. Applying the same churn to the shadow
	// without solving must reproduce it byte for byte.
	if err := sc.ShadowApply(rep); err != nil { // degraded: applies churn only
		t.Fatal(err)
	}
	if shadowDump := sc.Shadow.Dump(); shadowDump != after {
		t.Fatalf("degraded tick leaked solver state into the engine:\nbefore:\n%s\nafter:\n%s\nshadow:\n%s",
			before, after, shadowDump)
	}

	// A subsequent idle tick with the full budget converges to the exact
	// batch outcome.
	rep, err = sc.Server.Settle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatal("settle tick degraded")
	}
	if err := sc.ShadowApply(rep); err != nil {
		t.Fatal(err)
	}
	if !sc.Server.Quiescent() {
		t.Fatal("server not quiescent after settle")
	}
	if err := sc.VerifyEquivalent(); err != nil {
		t.Fatalf("post-degradation convergence: %v", err)
	}
}
