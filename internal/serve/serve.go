package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/quantile"
)

// ErrQueueFull reports that the admission queue is at capacity and the
// event could not be coalesced into an already-queued slot. Producers
// handle it as backpressure: tick the server (or wait for the serving loop
// to tick) and retry.
var ErrQueueFull = errors.New("serve: admission queue full")

// Config tunes a Server.
type Config struct {
	// QueueCap bounds the admission queue (default 1024). An Offer beyond
	// the cap that cannot coalesce returns ErrQueueFull.
	QueueCap int
	// BatchMax caps the events admitted into the engine per tick (default
	// 256). The remainder stays queued for later ticks.
	BatchMax int
	// TickBudget is the per-tick solve deadline; at expiry the tick
	// publishes the best incumbent with the degraded flag. Zero runs each
	// solve to the node's configured budgets.
	TickBudget time.Duration
	// Keys declares the key columns of churn predicates, enabling
	// oldest-first coalescing: a queued event is replaced in place by a
	// newer event with the same (pred, key) instead of growing the queue.
	// Predicates without an entry never coalesce.
	Keys map[string][]int
	// Hint forwards a warm-start hint to every tick's solve.
	Hint func(pred string, vals []colog.Value) (int64, bool)
	// NextInterrupt, when non-nil, is called at the start of each tick and
	// may return an interrupt hook for that tick's solve — the soak tests
	// inject synthetic deadline pressure through it. It overrides
	// TickBudget for ticks where it returns non-nil.
	NextInterrupt func() func() bool
}

// TickReport describes one serving tick.
type TickReport struct {
	// Batch is the churn admitted into the engine this tick, in queue
	// (oldest-first, post-coalescing) order.
	Batch []Event
	// Degraded reports that the tick's deadline fired before the solve
	// completed: Deltas carry the best incumbent, published as an overlay
	// while the engine's tables keep the last completed state.
	Degraded bool
	// Solved reports that the tick produced a feasible decision snapshot.
	Solved bool
	// Deltas is the decision delta against the previous tick's published
	// snapshot (empty when the placement is unchanged).
	Deltas []core.DecisionDelta
	// Objective is the goal value of the published snapshot.
	Objective float64
	// Latency is the wall time of the whole tick: admission, grounding,
	// solve, publish.
	Latency time.Duration
	// QueueDepth is the admission-queue depth after the tick.
	QueueDepth int
	// Result is the underlying solve outcome.
	Result *core.SolveResult
}

// Stats aggregates serving statistics across ticks.
type Stats struct {
	Ticks           int
	DegradedTicks   int
	EventsAdmitted  int
	EventsCoalesced int
	EventsRejected  int

	latencies []time.Duration
}

// LatencyPercentile returns the p-quantile (0 < p <= 1) of per-tick
// decision latency, 0 when no tick has run (nearest-rank, via the shared
// quantile helper every latency surface uses).
func (s *Stats) LatencyPercentile(p float64) time.Duration {
	return quantile.Durations(s.latencies, p)
}

// Server wraps one Cologne node with the serving runtime: a bounded
// coalescing admission queue feeding deadline-bounded ticks.
type Server struct {
	node *core.Node
	cfg  Config

	mu       sync.Mutex
	queue    []Event
	byKey    map[string]int // coalescing slot per (pred, key), index into queue
	stats    Stats
	ticked   bool
	degraded bool // last tick hit its deadline
}

// NewServer wraps node. The node carries the program and its seed facts;
// churn arrives through Offer and takes effect at the next tick.
func NewServer(node *core.Node, cfg Config) *Server {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 256
	}
	return &Server{node: node, cfg: cfg, byKey: map[string]int{}}
}

// Node returns the underlying serving node (read-only use: Rows, Dump,
// LastSolveResult). Mutating it outside the churn stream voids the
// equivalence contract.
func (s *Server) Node() *core.Node { return s.node }

// coalesceKey returns the queue-coalescing key for an event on a keyed
// churn predicate, or ok=false when the predicate does not coalesce.
func (s *Server) coalesceKey(ev Event) (string, bool) {
	cols, ok := s.cfg.Keys[ev.Pred]
	if !ok {
		return "", false
	}
	k := ev.Pred
	for _, c := range cols {
		if c < 0 || c >= len(ev.Vals) {
			return "", false
		}
		k += "\x1f" + ev.Vals[c].Key()
	}
	return k, true
}

// Offer enqueues one churn event. Same-key events coalesce oldest-first:
// the newer event replaces the queued one in its original queue position,
// so admission order follows first arrival while the payload is always the
// latest. A full queue with no coalescing slot returns ErrQueueFull.
func (s *Server) Offer(ev Event) error {
	if ev.Op != OpInsert && ev.Op != OpDelete {
		return fmt.Errorf("serve: offer: bad op %q", ev.Op)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key, keyed := s.coalesceKey(ev)
	if keyed {
		if i, ok := s.byKey[key]; ok {
			s.queue[i] = ev
			s.stats.EventsCoalesced++
			return nil
		}
	}
	if len(s.queue) >= s.cfg.QueueCap {
		s.stats.EventsRejected++
		return ErrQueueFull
	}
	if keyed {
		s.byKey[key] = len(s.queue)
	}
	s.queue = append(s.queue, ev)
	return nil
}

// QueueDepth returns the current admission-queue depth.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// take pops up to BatchMax events off the queue and rebases the
// coalescing index.
func (s *Server) take() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.queue)
	if n > s.cfg.BatchMax {
		n = s.cfg.BatchMax
	}
	batch := make([]Event, n)
	copy(batch, s.queue[:n])
	s.queue = append(s.queue[:0], s.queue[n:]...)
	for k, i := range s.byKey {
		if i < n {
			delete(s.byKey, k)
		} else {
			s.byKey[k] = i - n
		}
	}
	s.stats.EventsAdmitted += n
	return batch
}

// TickOnce runs one serving tick under the configured budget: admit a
// batch, apply it to the engine, re-ground + re-solve under the deadline,
// publish the decision delta.
func (s *Server) TickOnce() (*TickReport, error) {
	var hook func() bool
	if s.cfg.NextInterrupt != nil {
		hook = s.cfg.NextInterrupt()
	}
	return s.tick(s.cfg.TickBudget, hook)
}

// Settle runs one tick with an unbounded solve budget and no injected
// interrupt: the convergence tick that turns a degraded overlay back into
// materialized optimal state.
func (s *Server) Settle() (*TickReport, error) { return s.tick(0, nil) }

func (s *Server) tick(budget time.Duration, hook func() bool) (*TickReport, error) {
	start := time.Now()
	batch := s.take()
	for _, ev := range batch {
		var err error
		switch ev.Op {
		case OpInsert:
			err = s.node.Insert(ev.Pred, ev.Vals...)
		case OpDelete:
			err = s.node.Delete(ev.Pred, ev.Vals...)
		}
		if err != nil {
			return nil, fmt.Errorf("serve: applying %s: %w", ev, err)
		}
	}
	tr, err := s.node.Tick(core.TickOptions{Deadline: budget, Interrupt: hook, Hint: s.cfg.Hint})
	if err != nil {
		return nil, err
	}
	rep := &TickReport{
		Batch:     batch,
		Degraded:  tr.Degraded,
		Solved:    tr.Result != nil && (tr.Result.Feasible() || tr.Result.NumVars == 0),
		Deltas:    tr.Deltas,
		Objective: tr.Objective,
		Latency:   time.Since(start),
		Result:    tr.Result,
	}
	s.mu.Lock()
	s.stats.Ticks++
	if rep.Degraded {
		s.stats.DegradedTicks++
	}
	s.stats.latencies = append(s.stats.latencies, rep.Latency)
	s.ticked = true
	s.degraded = rep.Degraded
	rep.QueueDepth = len(s.queue)
	s.mu.Unlock()
	return rep, nil
}

// Quiescent reports whether the server is at a quiescent point: at least
// one tick has run, the admission queue is drained, and the last tick
// completed within budget. At such a point the serving node's state is
// byte-identical to a batch re-solve over the same cumulative facts.
func (s *Server) Quiescent() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticked && len(s.queue) == 0 && !s.degraded
}

// Drain ticks with an unbounded budget until quiescent — queue empty and
// the final solve completed — returning the last report.
func (s *Server) Drain() (*TickReport, error) {
	var rep *TickReport
	for {
		r, err := s.Settle()
		if err != nil {
			return rep, err
		}
		rep = r
		if s.Quiescent() {
			return rep, nil
		}
	}
}

// StatsSnapshot returns a copy of the aggregate serving statistics.
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := s.stats
	cp.latencies = append([]time.Duration(nil), s.stats.latencies...)
	return cp
}
