package serve

import (
	"testing"

	"repro/internal/colog"
)

// FuzzDecodeChurnEvent hammers the churn-frame decoder: arbitrary bytes —
// wrong versions, bad ops, truncated predicates, torn value lists — must
// come back as an error, never a panic or a hang, and every accepted
// event must survive a re-encode/re-decode round trip losslessly (byte
// canonicity is not required: varints tolerate non-minimal encodings, as
// in the delta codec). The committed corpus under
// testdata/fuzz/FuzzDecodeChurnEvent was recorded from a real cmd/serve
// load-driver trace (one file per scenario).
func FuzzDecodeChurnEvent(f *testing.F) {
	seed := func(ev Event) {
		if b, err := AppendEvent(nil, ev); err == nil {
			f.Add(b)
		}
	}
	seed(Event{Op: OpInsert, Pred: "vmRaw", Vals: []colog.Value{
		colog.StringVal("vm0"), colog.IntVal(42), colog.IntVal(128),
	}})
	seed(Event{Op: OpDelete, Pred: "primaryUser", Vals: []colog.Value{
		colog.StringVal("n00"), colog.IntVal(6),
	}})
	seed(Event{Op: OpInsert, Pred: "m", Vals: []colog.Value{
		colog.FloatVal(-1.5), colog.BoolVal(false),
	}})
	// Mutated shapes: bad version, bad op, torn tail.
	good, _ := AppendEvent(nil, Event{Op: OpInsert, Pred: "f", Vals: []colog.Value{colog.IntVal(7)}})
	f.Add(append([]byte{99}, good[1:]...))
	f.Add([]byte{churnFrameVersion, 'x', 1, 'f', 0})
	f.Add(good[:len(good)-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		ev, _, err := DecodeEvent(data)
		if err != nil {
			return
		}
		if ev.Op != OpInsert && ev.Op != OpDelete {
			t.Fatalf("decoded invalid op %q", ev.Op)
		}
		if ev.Pred == "" {
			t.Fatal("decoded empty predicate")
		}
		re, err := AppendEvent(nil, ev)
		if err != nil {
			t.Fatalf("decoded event does not re-encode: %v", err)
		}
		back, rest, err := DecodeEvent(re)
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-decoding: %v (rest %d)", err, len(rest))
		}
		if back.String() != ev.String() {
			t.Fatalf("round trip diverged: %s vs %s", back, ev)
		}
	})
}
