package serve

import (
	"testing"

	"repro/internal/colog"
)

func vmEv(op Op, id string, cpu int64) Event {
	return Event{Op: op, Pred: "vmRaw", Vals: []colog.Value{
		colog.StringVal(id), colog.IntVal(cpu), colog.IntVal(128),
	}}
}

func queueServer(cap, batch int) *Server {
	return NewServer(nil, Config{
		QueueCap: cap,
		BatchMax: batch,
		Keys:     map[string][]int{"vmRaw": {0}},
	})
}

func TestQueueCoalescesSameKeyOldestFirst(t *testing.T) {
	s := queueServer(8, 8)
	must := func(ev Event) {
		t.Helper()
		if err := s.Offer(ev); err != nil {
			t.Fatalf("offer %s: %v", ev, err)
		}
	}
	must(vmEv(OpInsert, "vm0", 30))
	must(vmEv(OpInsert, "vm1", 40))
	must(vmEv(OpInsert, "vm0", 55)) // coalesces into vm0's original slot
	must(vmEv(OpInsert, "vm1", 70))

	if got := s.QueueDepth(); got != 2 {
		t.Fatalf("queue depth %d after coalescing, want 2", got)
	}
	batch := s.take()
	if len(batch) != 2 {
		t.Fatalf("batch size %d, want 2", len(batch))
	}
	// Oldest-first order preserved, payloads are the latest updates.
	if batch[0].Vals[0].S != "vm0" || batch[0].Vals[1].I != 55 {
		t.Fatalf("slot 0 = %s, want vm0@55", batch[0])
	}
	if batch[1].Vals[0].S != "vm1" || batch[1].Vals[1].I != 70 {
		t.Fatalf("slot 1 = %s, want vm1@70", batch[1])
	}
	st := s.StatsSnapshot()
	if st.EventsCoalesced != 2 {
		t.Fatalf("coalesced %d, want 2", st.EventsCoalesced)
	}
}

func TestQueueCoalescesAcrossOps(t *testing.T) {
	s := queueServer(8, 8)
	if err := s.Offer(vmEv(OpInsert, "vm0", 30)); err != nil {
		t.Fatal(err)
	}
	if err := s.Offer(vmEv(OpDelete, "vm0", 30)); err != nil {
		t.Fatal(err)
	}
	batch := s.take()
	if len(batch) != 1 || batch[0].Op != OpDelete {
		t.Fatalf("delete did not coalesce over queued insert: %v", batch)
	}
}

func TestQueueBackpressure(t *testing.T) {
	s := queueServer(2, 2)
	if err := s.Offer(vmEv(OpInsert, "vm0", 30)); err != nil {
		t.Fatal(err)
	}
	if err := s.Offer(vmEv(OpInsert, "vm1", 30)); err != nil {
		t.Fatal(err)
	}
	// Full, new key: rejected.
	if err := s.Offer(vmEv(OpInsert, "vm2", 30)); err != ErrQueueFull {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	// Full, existing key: still coalesces.
	if err := s.Offer(vmEv(OpInsert, "vm1", 90)); err != nil {
		t.Fatalf("coalescing under backpressure: %v", err)
	}
	st := s.StatsSnapshot()
	if st.EventsRejected != 1 || st.EventsCoalesced != 1 {
		t.Fatalf("stats %+v, want 1 rejected / 1 coalesced", st)
	}
	// Draining frees capacity and rebases coalescing slots.
	if got := len(s.take()); got != 2 {
		t.Fatalf("drained %d, want 2", got)
	}
	if err := s.Offer(vmEv(OpInsert, "vm2", 30)); err != nil {
		t.Fatalf("offer after drain: %v", err)
	}
}

func TestQueueBatchMaxRebasesIndex(t *testing.T) {
	s := queueServer(8, 2)
	for _, ev := range []Event{
		vmEv(OpInsert, "vm0", 10),
		vmEv(OpInsert, "vm1", 20),
		vmEv(OpInsert, "vm2", 30),
	} {
		if err := s.Offer(ev); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.take()); got != 2 {
		t.Fatalf("batch %d, want BatchMax=2", got)
	}
	// vm2 is still queued; a same-key update must coalesce into its
	// rebased slot, not clobber another event.
	if err := s.Offer(vmEv(OpInsert, "vm2", 99)); err != nil {
		t.Fatal(err)
	}
	batch := s.take()
	if len(batch) != 1 || batch[0].Vals[0].S != "vm2" || batch[0].Vals[1].I != 99 {
		t.Fatalf("rebased coalescing broken: %v", batch)
	}
}

func TestUnkeyedPredicatesDoNotCoalesce(t *testing.T) {
	s := queueServer(8, 8)
	ev := Event{Op: OpInsert, Pred: "primaryUser", Vals: []colog.Value{
		colog.StringVal("n00"), colog.IntVal(6),
	}}
	if err := s.Offer(ev); err != nil {
		t.Fatal(err)
	}
	if err := s.Offer(ev); err != nil {
		t.Fatal(err)
	}
	if got := s.QueueDepth(); got != 2 {
		t.Fatalf("unkeyed events coalesced: depth %d", got)
	}
}
