package serve

import (
	"testing"

	"repro/internal/colog"
)

func TestChurnCodecRoundTrip(t *testing.T) {
	events := []Event{
		{Op: OpInsert, Pred: "vmRaw", Vals: []colog.Value{
			colog.StringVal("vm0"), colog.IntVal(42), colog.IntVal(128),
		}},
		{Op: OpDelete, Pred: "primaryUser", Vals: []colog.Value{
			colog.StringVal("n00"), colog.IntVal(6),
		}},
		{Op: OpInsert, Pred: "curVm", Vals: []colog.Value{
			colog.StringVal("x1"), colog.StringVal("d0"), colog.IntVal(-3),
		}},
		{Op: OpInsert, Pred: "mixed", Vals: []colog.Value{
			colog.FloatVal(2.25), colog.BoolVal(true), colog.IntVal(0),
		}},
		{Op: OpInsert, Pred: "empty", Vals: nil},
	}
	buf, err := EncodeTrace(events)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeTrace(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i].String() != events[i].String() {
			t.Fatalf("event %d: %s != %s", i, got[i], events[i])
		}
	}
}

func TestChurnDecodeRejectsMalformed(t *testing.T) {
	good, err := AppendEvent(nil, Event{Op: OpInsert, Pred: "f", Vals: []colog.Value{colog.IntVal(1)}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"version only":   {churnFrameVersion},
		"bad version":    append([]byte{99}, good[1:]...),
		"bad op":         {churnFrameVersion, 'x', 1, 'f', 0},
		"truncated pred": good[:3],
		"truncated vals": good[:len(good)-1],
	}
	for name, b := range cases {
		if _, _, err := DecodeEvent(b); err == nil {
			t.Fatalf("%s: decode accepted malformed frame %v", name, b)
		}
	}
}

func TestChurnEncodeRejectsBadEvents(t *testing.T) {
	if _, err := AppendEvent(nil, Event{Op: 'x', Pred: "f"}); err == nil {
		t.Fatal("bad op accepted")
	}
	if _, err := AppendEvent(nil, Event{Op: OpInsert, Pred: ""}); err == nil {
		t.Fatal("empty predicate accepted")
	}
}
