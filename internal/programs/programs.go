// Package programs bundles the paper's canonical Colog programs — the five
// protocols of Table 2 — together with the runtime configuration (primary
// keys, event tables, parameters) each one needs. The experiment harnesses,
// the examples, and the code-size benchmark all draw from here so that
// every consumer runs exactly the same policy text.
package programs

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/core"
)

// Entry is one named program with its default runtime configuration.
type Entry struct {
	Name   string
	Source string
	Config core.Config
}

// ACloudSrc is the centralized ACloud load-balancing program of section 4.2,
// including the workload filter the evaluation applies (only VMs above 20%
// CPU are migratable).
const ACloudSrc = `
goal minimize C in hostStdevCpu(C).
var assign(Vid,Hid,V) forall toAssign(Vid,Hid).

// Only VMs above the CPU threshold participate in load balancing (sec 6.2).
r1 vm(Vid,Cpu,Mem) <- vmRaw(Vid,Cpu,Mem), Cpu>cpu_floor.
r2 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).

d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
c1 assignCount(Vid,V) -> V==1.
d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
`

// ACloudMigrationExt extends ACloud with the migration cap of section 4.2
// (rules d5, d6, c3), yielding the ACloud(M) policy of the evaluation.
const ACloudMigrationExt = `
d5 migrate(Vid,Hid1,Hid2,C) <- assign(Vid,Hid1,V), origin(Vid,Hid2),
   Hid1!=Hid2, (V==1)==(C==1).
d6 migrateCount(SUM<C>) <- migrate(Vid,Hid1,Hid2,C).
c3 migrateCount(C) -> C<=max_migrates.
`

// FollowSunCentralizedSrc is a single-solver formulation of the
// Follow-the-Sun COP (equations 1-6 of section 3.1.2): one Cologne instance
// decides migrations on every link of the data-center graph at once.
const FollowSunCentralizedSrc = `
goal minimize C in totalCost(C).
var migVm(X,Y,D,R) forall toMigVm(X,Y,D) domain [-60,60].

r1 toMigVm(X,Y,D) <- link(X,Y), demand(D).

// Equation (6): migrations are antisymmetric per link and demand.
c1 migVm(X,Y,D,R1) -> migVm(Y,X,D,R2), R1+R2==0.

// Next-step allocations.
d1 outMig(X,D,SUM<R>) <- migVm(X,Y,D,R).
d2 nextVm(X,D,R) <- curVm(X,D,R1), outMig(X,D,R2), R==R1-R2.

// Equations (2)-(4): operating, communication and migration cost.
d3 aggCommCost(SUM<Cost>) <- nextVm(X,D,R), commCost(X,D,C), Cost==R*C.
d4 aggOpCost(SUM<Cost>) <- nextVm(X,D,R), opCost(X,C), Cost==R*C.
d5 linkMigCost(X,Y,SUMABS<Cost>) <- migVm(X,Y,D,R), migCost(X,Y,C), Cost==R*C.
d6 aggMigCost(SUM<C>) <- linkMigCost(X,Y,C), X<Y.
d7 totalCost(C) <- aggCommCost(C1), aggOpCost(C2), aggMigCost(C3),
   C==C1+C2+C3.

// Equation (5): capacity, plus non-negative allocations.
d8 hostNext(X,SUM<R>) <- nextVm(X,D,R).
c2 hostNext(X,R1) -> resource(X,R2), R1<=R2.
c3 nextVm(X,D,R) -> R>=0.
`

// FollowSunDistributedSrc is the distributed Follow-the-Sun program of
// section 4.3 verbatim (rules r1-r3, d1-d11, c1-c4), plus the negotiated
// bookkeeping that the omitted link-negotiation protocol maintains.
const FollowSunDistributedSrc = `
goal minimize C in aggCost(@X,C).
var migVm(@X,Y,D,R) forall toMigVm(@X,Y,D) domain migRange.

r1 toMigVm(@X,Y,D) <- setLink(@X,Y), dc(@X,D).

// next-step VM allocations after migration
d1 nextVm(@X,D,R) <- curVm(@X,D,R1), migVm(@X,Y,D,R2), R==R1-R2.
d2 nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1),
   migVm(@X,Y,D,R2), R==R1+R2.

// communication, operating and migration cost
d3 aggCommCost(@X,SUM<Cost>) <- nextVm(@X,D,R), commCost(@X,D,C), Cost==R*C.
d4 aggOpCost(@X,SUM<Cost>) <- nextVm(@X,D,R), opCost(@X,C), Cost==R*C.
d5 nborAggCommCost(@X,SUM<Cost>) <- link(@Y,X), commCost(@Y,D,C),
   nborNextVm(@X,Y,D,R), Cost==R*C.
d6 nborAggOpCost(@X,SUM<Cost>) <- link(@Y,X), opCost(@Y,C),
   nborNextVm(@X,Y,D,R), Cost==R*C.
d7 aggMigCost(@X,SUMABS<Cost>) <- migVm(@X,Y,D,R), migCost(@X,Y,C), Cost==R*C.

// total cost
d8 aggCost(@X,C) <- aggCommCost(@X,C1), aggOpCost(@X,C2), aggMigCost(@X,C3),
   nborAggCommCost(@X,C4), nborAggOpCost(@X,C5), C==C1+C2+C3+C4+C5.

// not exceeding resource capacity
d9 aggNextVm(@X,SUM<R>) <- nextVm(@X,D,R).
c1 aggNextVm(@X,R1) -> resource(@X,R2), R1<=R2.
d10 aggNborNextVm(@X,Y,SUM<R>) <- nborNextVm(@X,Y,D,R).
c2 aggNborNextVm(@X,Y,R1) -> link(@Y,X), resource(@Y,R2), R1<=R2.
c5 nextVm(@X,D,R) -> R>=0.
c6 nborNextVm(@X,Y,D,R) -> R>=0.

// propagate to ensure symmetry and update allocations
r2 migVm(@Y,X,D,R2) <- setLink(@X,Y), migVm(@X,Y,D,R1), R2:=-R1.
r3 curVm(@X,D,R) <- curVm(@X,D,R1), migVm(@X,Y,D,R2), R:=R1-R2.

// policy extension: migration cap and cost-improvement threshold (sec 4.3)
d11 aggMigVm(@X,Y,SUMABS<R>) <- migVm(@X,Y,D,R).
c3 aggMigVm(@X,Y,R) -> R<=max_migrates.

// link-negotiation bookkeeping: a link is done once migrations are decided
r4 negotiated(@X,Y) <- setLink(@X,Y), migVm(@X,Y,D,R).
r5 negotiated(@Y,X) <- setLink(@X,Y), migVm(@X,Y,D,R).
`

// WirelessCentralizedSrc is the appendix A.2 centralized channel selection
// program (one-hop interference model).
const WirelessCentralizedSrc = `
goal minimize C in totalCost(C).
var assign(X,Y,C) forall link(X,Y) domain availChannel.

// cost derivation rules (one-hop interference at each node)
d1 cost(X,Y,X,Z,C) <- assign(X,Y,C1), assign(X,Z,C2),
   Y!=Z, (C==1)==(|C1-C2|<F_mindiff).
d2 totalCost(SUM<C>) <- cost(X,Y,Z,W,C).

// primary user constraint
c1 assign(X,Y,C) -> primaryUser(X,C2), C!=C2.
// channel symmetry constraint
c2 assign(X,Y,C) -> assign(Y,X,C).
// interface constraint
d3 uniqueChannel(X,UNIQUE<C>) <- assign(X,Y,C).
c3 uniqueChannel(X,Count) -> numInterface(X,K), Count<=K.
`

// WirelessCentralizedTwoHopExt adds the two-hop interference cost rule of
// appendix A.2 (labelled d3 in the paper's text, d4 here to keep labels
// unique); it derives into the same cost table so the objective covers both
// models.
const WirelessCentralizedTwoHopExt = `
d4 cost(X,Y,Z,W,C) <- assign(X,Y,C1), link(Z,X), assign(Z,W,C2),
   X!=W, Y!=W, Y!=Z, (C==1)==(|C1-C2|<F_mindiff).
`

// WirelessDistributedSrc is the appendix A.3 distributed channel selection:
// each negotiation solves a per-link COP against the concrete channel
// assignments collected from the two-hop neighborhood. Neighbor state is
// replicated through regular rules (r2, r3) that read the solver's
// materialized output, and the decided channel is propagated for symmetry
// (r1).
const WirelessDistributedSrc = `
goal minimize C in totalCost(@X,C).
var assign(@X,Y,C) forall setLink(@X,Y) domain availChannel.

// propagate channels to ensure symmetry (paper A.3 rule r1); keyed
// incremental maintenance makes the reflected insert converge
r1 assign(@Y,X,C2) <- assign(@X,Y,C), C2:=C.
// replicate concrete neighbor assignments into the local view
r2 nborAssign(@X,Z,W,C2) <- link(@Z,X), assign(@Z,W,C), C2:=C.
// replicate neighbor primary users
r3 nborPrimaryUser(@X,Y,C2) <- link(@Y,X), primaryUser(@Y,C), C2:=C.

// replicate neighbor interface counts
r4 numInterfaceOf(@X,Z,K) <- link(@Z,X), numInterface(@Z,K).
r5 numInterfaceOf(@X,X,K) <- numInterface(@X,K).

// one-hop interference: links adjacent at this node...
d1 cost(@X,Y,X,Z,C) <- assign(@X,Y,C1), assign(@X,Z,C2),
   Y!=Z, (C==1)==(|C1-C2|<F_mindiff).
// ...and links adjacent at the peer endpoint (the per-link COP must see
// the peer's other channels, which arrive through nborAssign)
d8 cost(@X,Y,Y,W,C) <- assign(@X,Y,C1), nborAssign(@X,Y,W,C2),
   X!=W, (C==1)==(|C1-C2|<F_mindiff).
d3 totalCost(@X,SUM<C>) <- cost(@X,Y,Z,W,C).

// primary user constraints for both endpoints
c1 assign(@X,Y,C) -> primaryUser(@X,C2), C!=C2.
c2 assign(@X,Y,C) -> nborPrimaryUser(@X,Y,C2), C!=C2.

// radio interface constraint: the channels in use at a node (its own links
// plus the link under negotiation, seen from both endpoints) may not
// exceed its interface count
d4 chan(@X,X,Y,C) <- assign(@X,Y,C).
d5 chan(@X,Y,X,C) <- assign(@X,Y,C).
d6 chan(@X,Z,W,C) <- nborAssign(@X,Z,W,C).
d7 uniqueChannel(@X,N,UNIQUE<C>) <- chan(@X,N,W,C).
c3 uniqueChannel(@X,N,Count) -> numInterfaceOf(@X,N,K), Count<=K.
`

// WirelessDistributedTwoHopExt is the two-hop interference cost of the
// distributed protocol: the negotiated link is costed against the channel
// assignments replicated from the two-hop neighborhood. Figure 7's "1-hop
// Interference" variant omits this rule.
const WirelessDistributedTwoHopExt = `
d2 cost(@X,Y,Z,W,C) <- assign(@X,Y,C1), nborAssign(@X,Z,W,C2),
   X!=W, Y!=W, Y!=Z, (C==1)==(|C1-C2|<F_mindiff).
`

// Params used by the bundled programs, with the evaluation's defaults.
func defaultParams() map[string]colog.Value {
	return map[string]colog.Value{
		"cpu_floor":    colog.IntVal(20),
		"max_migrates": colog.IntVal(1000000),
		"cost_thres":   colog.IntVal(1),
		"F_mindiff":    colog.IntVal(5),
	}
}

// ACloud returns the ACloud program entry; withMigrationCap selects the
// ACloud(M) policy and maxMigrates its per-execution cap.
func ACloud(withMigrationCap bool, maxMigrates int64) Entry {
	src := ACloudSrc
	name := "acloud"
	params := defaultParams()
	if withMigrationCap {
		src += ACloudMigrationExt
		name = "acloud-m"
		params["max_migrates"] = colog.IntVal(maxMigrates)
	}
	return Entry{
		Name:   name,
		Source: src,
		Config: core.Config{Params: params},
	}
}

// FollowSunCentralized returns the centralized Follow-the-Sun entry.
func FollowSunCentralized() Entry {
	return Entry{
		Name:   "follow-the-sun-centralized",
		Source: FollowSunCentralizedSrc,
		Config: core.Config{Params: defaultParams()},
	}
}

// FollowSunDistributed returns the distributed Follow-the-Sun entry;
// maxMigrates caps per-link migrations (the c3/d11 policy extension).
func FollowSunDistributed(maxMigrates int64) Entry {
	params := defaultParams()
	params["max_migrates"] = colog.IntVal(maxMigrates)
	return Entry{
		Name:   "follow-the-sun-distributed",
		Source: FollowSunDistributedSrc,
		Config: core.Config{
			Params: params,
			Keys: map[string][]int{
				"curVm":      {0, 1},
				"negotiated": {0, 1},
			},
			Events: []string{"migVm"},
		},
	}
}

// WirelessCentralized returns the centralized channel-selection entry;
// twoHop adds the two-hop interference extension.
func WirelessCentralized(twoHop bool, fMindiff int64) Entry {
	src := WirelessCentralizedSrc
	name := "wireless-centralized"
	if twoHop {
		src += WirelessCentralizedTwoHopExt
		name = "wireless-centralized-2hop"
	}
	params := defaultParams()
	params["F_mindiff"] = colog.IntVal(fMindiff)
	return Entry{
		Name:   name,
		Source: src,
		Config: core.Config{Params: params},
	}
}

// WirelessDistributed returns the distributed channel-selection entry;
// twoHop selects the interference model the protocol optimizes.
func WirelessDistributed(fMindiff int64, twoHop bool) Entry {
	params := defaultParams()
	params["F_mindiff"] = colog.IntVal(fMindiff)
	src := WirelessDistributedSrc
	name := "wireless-distributed-1hop"
	if twoHop {
		src += WirelessDistributedTwoHopExt
		name = "wireless-distributed"
	}
	return Entry{
		Name:   name,
		Source: src,
		Config: core.Config{
			Params: params,
			Keys: map[string][]int{
				"assign":          {0, 1},
				"nborAssign":      {0, 1, 2},
				"nborPrimaryUser": {0, 1, 2},
				"numInterfaceOf":  {0, 1},
				"chan":            {0, 1, 2},
			},
		},
	}
}

// Table2Entries returns the five protocols the paper's Table 2 measures.
func Table2Entries() []Entry {
	return []Entry{
		ACloud(false, 0),
		FollowSunCentralized(),
		FollowSunDistributed(20),
		WirelessCentralized(true, 5),
		WirelessDistributed(5, true),
	}
}

// Analyze parses and analyzes an entry, panicking on error (the bundled
// programs are compile-time constants; failure is a programming error).
func (e Entry) Analyze() *analysis.Result {
	prog, err := colog.Parse(e.Source)
	if err != nil {
		panic(fmt.Sprintf("programs: %s does not parse: %v", e.Name, err))
	}
	res, err := analysis.Analyze(prog, e.Config.Params)
	if err != nil {
		panic(fmt.Sprintf("programs: %s does not analyze: %v", e.Name, err))
	}
	return res
}
