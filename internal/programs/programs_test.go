package programs

import (
	"testing"

	"repro/internal/analysis"
)

// TestAllBundledProgramsAnalyze is the basic health check: every canonical
// program must parse and pass static analysis with its default parameters.
func TestAllBundledProgramsAnalyze(t *testing.T) {
	for _, e := range Table2Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res := e.Analyze()
			if res == nil || len(res.Program.Rules) == 0 {
				t.Fatal("no rules after analysis")
			}
		})
	}
	ACloud(true, 3).Analyze()
	WirelessCentralized(false, 5).Analyze()
}

func TestACloudEntryClassification(t *testing.T) {
	res := ACloud(false, 0).Analyze()
	nDeriv, nCons, nReg := 0, 0, 0
	for _, c := range res.Classes {
		switch c {
		case analysis.SolverDerivationRule:
			nDeriv++
		case analysis.SolverConstraintRule:
			nCons++
		default:
			nReg++
		}
	}
	if nDeriv != 4 || nCons != 2 || nReg != 2 {
		t.Fatalf("classes: deriv=%d cons=%d reg=%d, want 4/2/2", nDeriv, nCons, nReg)
	}
}

func TestFollowSunDistributedIsDistributed(t *testing.T) {
	res := FollowSunDistributed(20).Analyze()
	if !res.Distributed {
		t.Fatal("not detected as distributed")
	}
	// The d2/d5/d6/c2 rewrites must have produced shipping rules.
	ships := 0
	for label := range res.Rewritten {
		_ = label
		ships++
	}
	if ships == 0 {
		t.Fatal("no localization rewrites recorded")
	}
}

func TestWirelessDistributedRegularPropagation(t *testing.T) {
	res := WirelessDistributed(5, true).Analyze()
	// r1/r2/r3 must be regular (they read materialized solver output via :=).
	for i, r := range res.Program.Rules {
		switch r.Label {
		case "r1", "r2", "r3", "r1_local", "r2_local", "r3_local":
			if res.Classes[i] != analysis.RegularRule {
				t.Errorf("rule %s class = %v, want regular", r.Label, res.Classes[i])
			}
		}
	}
}

func TestRuleCountsReported(t *testing.T) {
	// Sanity on Table 2 rule counts: distributed programs must be larger
	// than their centralized counterparts.
	counts := map[string]int{}
	for _, e := range Table2Entries() {
		res := e.Analyze()
		counts[e.Name] = res.Program.NumRules()
	}
	if counts["follow-the-sun-distributed"] <= counts["follow-the-sun-centralized"] {
		t.Errorf("FtS distributed (%d rules) should exceed centralized (%d)",
			counts["follow-the-sun-distributed"], counts["follow-the-sun-centralized"])
	}
}
