package programs

import (
	"fmt"
	"testing"

	"repro/internal/colog"
	"repro/internal/core"
)

// TestIncrementalEquivalence drives the bundled ACloud(M) program through a
// CPU-churn tick loop on a fresh-grounding node and an incremental one in
// lockstep — the programs-suite leg of the incremental-grounding
// equivalence guarantee (the corpus leg lives in internal/core).
func TestIncrementalEquivalence(t *testing.T) {
	build := func(incremental bool) *core.Node {
		e := ACloud(true, 3)
		cfg := e.Config
		cfg.SolverPropagate = true
		cfg.SolverMaxNodes = 1500
		cfg.SolverIncremental = incremental
		cfg.Keys = map[string][]int{"vmRaw": {0}, "origin": {0}, "vm": {0}}
		node, err := core.NewNode("bench", e.Analyze(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		for h := 0; h < 3; h++ {
			if err := node.Insert("host", colog.StringVal(fmt.Sprintf("h%d", h)),
				colog.IntVal(0), colog.IntVal(0)); err != nil {
				t.Fatal(err)
			}
			if err := node.Insert("hostMemThres", colog.StringVal(fmt.Sprintf("h%d", h)),
				colog.IntVal(1<<20)); err != nil {
				t.Fatal(err)
			}
		}
		return node
	}
	fresh, inc := build(false), build(true)
	patched := 0
	for tick := 0; tick < 8; tick++ {
		for v := 0; v < 12; v++ {
			cpu := colog.IntVal(int64(25 + (v*13+tick*7)%60))
			vm := colog.StringVal(fmt.Sprintf("vm%02d", v))
			org := colog.StringVal(fmt.Sprintf("h%d", v%3))
			for _, n := range []*core.Node{fresh, inc} {
				if err := n.Insert("vmRaw", vm, cpu, colog.IntVal(512)); err != nil {
					t.Fatal(err)
				}
				if err := n.Insert("origin", vm, org); err != nil {
					t.Fatal(err)
				}
			}
		}
		fr, err := fresh.Solve(core.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ir, err := inc.Solve(core.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if fr.Status != ir.Status || fr.Objective != ir.Objective ||
			fr.Stats.Nodes != ir.Stats.Nodes || len(fr.Assignments) != len(ir.Assignments) {
			t.Fatalf("tick %d: fresh %v/%v/%d nodes/%d asg vs incremental %v/%v/%d nodes/%d asg",
				tick, fr.Status, fr.Objective, fr.Stats.Nodes, len(fr.Assignments),
				ir.Status, ir.Objective, ir.Stats.Nodes, len(ir.Assignments))
		}
		for i := range fr.Assignments {
			for j := range fr.Assignments[i].Vals {
				if !fr.Assignments[i].Vals[j].Equal(ir.Assignments[i].Vals[j]) {
					t.Fatalf("tick %d: assignment %d differs: %v vs %v",
						tick, i, fr.Assignments[i].Vals, ir.Assignments[i].Vals)
				}
			}
		}
		if ir.Ground != nil {
			patched += ir.Ground.ConstsPatched
		}
	}
	if patched == 0 {
		t.Fatal("CPU churn never hit the constant-patch path")
	}
}
