package programs

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/solver"
)

// corpusDir holds the .colog files shipped for cmd/cologne.
const corpusDir = "../../examples/programs"

// TestCorpusPrograms runs every shipped .colog file end to end — the same
// path cmd/cologne takes — and checks each file's expected outcome.
func TestCorpusPrograms(t *testing.T) {
	expect := map[string]struct {
		status    solver.Status
		objective float64
	}{
		"coloring.colog":    {solver.StatusOptimal, 0},
		"knapsack.colog":    {solver.StatusOptimal, 19},
		"loadbalance.colog": {solver.StatusOptimal, 0}, // 40+10 vs 30+20
	}
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("corpus dir: %v", err)
	}
	found := 0
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".colog" {
			continue
		}
		want, known := expect[ent.Name()]
		if !known {
			t.Errorf("corpus file %s has no expected outcome registered", ent.Name())
			continue
		}
		found++
		t.Run(ent.Name(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(corpusDir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := colog.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := analysis.Analyze(prog, nil)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			node, err := core.NewNode("local", res, core.Config{SolverPropagate: true}, nil)
			if err != nil {
				t.Fatalf("node: %v", err)
			}
			sres, err := node.Solve(core.SolveOptions{})
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if sres.Status != want.status {
				t.Fatalf("status = %v, want %v", sres.Status, want.status)
			}
			if math.Abs(sres.Objective-want.objective) > 1e-9 {
				t.Fatalf("objective = %v, want %v", sres.Objective, want.objective)
			}
		})
	}
	if found != len(expect) {
		t.Fatalf("corpus has %d known files, expected %d", found, len(expect))
	}
}

// TestCorpusEngineEquivalence solves every corpus program under both search
// cores and requires identical status, objective, and assignments — the
// programs-suite leg of the engine equivalence guarantee.
func TestCorpusEngineEquivalence(t *testing.T) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("corpus dir: %v", err)
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".colog" {
			continue
		}
		t.Run(ent.Name(), func(t *testing.T) {
			solve := func(engine string) *core.SolveResult {
				src, err := os.ReadFile(filepath.Join(corpusDir, ent.Name()))
				if err != nil {
					t.Fatal(err)
				}
				prog, err := colog.Parse(string(src))
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				res, err := analysis.Analyze(prog, nil)
				if err != nil {
					t.Fatalf("analyze: %v", err)
				}
				node, err := core.NewNode("local", res,
					core.Config{SolverPropagate: true, SolverEngine: engine}, nil)
				if err != nil {
					t.Fatalf("node: %v", err)
				}
				sres, err := node.Solve(core.SolveOptions{})
				if err != nil {
					t.Fatalf("solve: %v", err)
				}
				return sres
			}
			ev, lg := solve("event"), solve("legacy")
			if ev.Status != lg.Status || ev.Objective != lg.Objective {
				t.Fatalf("engines diverge: event %v/%v, legacy %v/%v",
					ev.Status, ev.Objective, lg.Status, lg.Objective)
			}
			if ev.Stats.Nodes != lg.Stats.Nodes {
				t.Fatalf("trace diverged: %d vs %d nodes", ev.Stats.Nodes, lg.Stats.Nodes)
			}
			if len(ev.Assignments) != len(lg.Assignments) {
				t.Fatalf("assignment counts differ: %d vs %d",
					len(ev.Assignments), len(lg.Assignments))
			}
			for i := range ev.Assignments {
				a, b := ev.Assignments[i], lg.Assignments[i]
				for j := range a.Vals {
					if !a.Vals[j].Equal(b.Vals[j]) {
						t.Fatalf("assignment %d differs: %v vs %v", i, a.Vals, b.Vals)
					}
				}
			}
		})
	}
}
