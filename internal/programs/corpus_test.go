package programs

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/solver"
)

// corpusDir holds the .colog files shipped for cmd/cologne.
const corpusDir = "../../examples/programs"

// TestCorpusPrograms runs every shipped .colog file end to end — the same
// path cmd/cologne takes — and checks each file's expected outcome.
func TestCorpusPrograms(t *testing.T) {
	expect := map[string]struct {
		status    solver.Status
		objective float64
	}{
		"coloring.colog":    {solver.StatusOptimal, 0},
		"knapsack.colog":    {solver.StatusOptimal, 19},
		"loadbalance.colog": {solver.StatusOptimal, 0}, // 40+10 vs 30+20
	}
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("corpus dir: %v", err)
	}
	found := 0
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".colog" {
			continue
		}
		want, known := expect[ent.Name()]
		if !known {
			t.Errorf("corpus file %s has no expected outcome registered", ent.Name())
			continue
		}
		found++
		t.Run(ent.Name(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(corpusDir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := colog.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := analysis.Analyze(prog, nil)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			node, err := core.NewNode("local", res, core.Config{SolverPropagate: true}, nil)
			if err != nil {
				t.Fatalf("node: %v", err)
			}
			sres, err := node.Solve(core.SolveOptions{})
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if sres.Status != want.status {
				t.Fatalf("status = %v, want %v", sres.Status, want.status)
			}
			if math.Abs(sres.Objective-want.objective) > 1e-9 {
				t.Fatalf("objective = %v, want %v", sres.Objective, want.objective)
			}
		})
	}
	if found != len(expect) {
		t.Fatalf("corpus has %d known files, expected %d", found, len(expect))
	}
}
