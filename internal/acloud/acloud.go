// Package acloud implements the paper's first use case (sections 3.1.1,
// 4.2, 6.2): trace-driven VM load balancing across data centers. It replays
// the synthetic hosting trace through the workload generator (VM spawn /
// stop / start on CPU thresholds) and compares four policies — the Colog
// ACloud COP, its migration-capped ACloud(M) variant, and the paper's two
// strawmen (Default: never migrate; Heuristic: threshold-based most-to-least
// loaded moves) — reproducing Figures 2 and 3.
package acloud

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/dctrace"
	"repro/internal/programs"
)

// Policy selects the load-balancing strategy.
type Policy int

const (
	// Default never migrates after initial placement.
	Default Policy = iota
	// Heuristic migrates from the most- to the least-loaded host until the
	// most-to-least ratio drops below Params.HeuristicRatio (paper: 1.05).
	Heuristic
	// ACloud runs the Colog COP every interval.
	ACloud
	// ACloudM is ACloud with the per-data-center migration cap (d5/d6/c3).
	ACloudM
)

// String names the policy as in the paper's figures.
func (p Policy) String() string {
	switch p {
	case Heuristic:
		return "Heuristic"
	case ACloud:
		return "ACloud"
	case ACloudM:
		return "ACloud (M)"
	default:
		return "Default"
	}
}

// Params configure one experiment run.
type Params struct {
	DCs        int   // data centers (paper: 3)
	HostsPerDC int   // VM-hosting machines per DC (paper: 4 + 1 storage)
	VMsPerHost int   // preallocated VMs per host (paper: 80)
	HostMemMB  int64 // physical memory per host (paper: 32 GB)

	Hours           float64 // experiment duration (paper: 4h)
	IntervalMinutes int     // COP period (paper: 10 min)

	SpawnThreshold float64 // per-VM CPU% triggering power-on (paper: 80)
	StopThreshold  float64 // per-VM CPU% triggering power-off (paper: 20)
	CPUFloor       int64   // vm-table filter (paper: 20)

	MaxMigrates    int64   // ACloud(M) cap per DC per interval (paper: 3)
	HeuristicRatio float64 // Heuristic stop ratio (paper: 1.05)

	SolverMaxNodes int64
	SolverMaxTime  time.Duration
	// SolverEngine/SolverFixpoint/SolverRestarts select and tune the search
	// core per Config (see core.Config); zero values keep the default
	// event-driven propagation engine.
	SolverEngine   string
	SolverFixpoint bool
	SolverRestarts int
	// SolverIncremental enables incremental re-grounding with solver-model
	// patching between ticks; SolverWarmStart seeds each solve from the
	// previous materialized assignments (see core.Config).
	SolverIncremental bool
	SolverWarmStart   bool

	Seed  int64
	Trace dctrace.Params
}

// DefaultParams returns the paper-scale experiment (~960 VMs).
func DefaultParams() Params {
	return Params{
		DCs: 3, HostsPerDC: 4, VMsPerHost: 80, HostMemMB: 32 * 1024,
		Hours: 4, IntervalMinutes: 10,
		SpawnThreshold: 80, StopThreshold: 20, CPUFloor: 20,
		MaxMigrates: 3, HeuristicRatio: 1.05,
		SolverMaxNodes: 20000, SolverMaxTime: 10 * time.Second,
		SolverIncremental: true,
		Seed:              1, Trace: dctrace.DefaultParams(),
	}
}

// BenchParams returns a scaled-down configuration for the benchmark harness
// (same structure, ~240 VMs, shorter horizon).
func BenchParams() Params {
	p := DefaultParams()
	p.VMsPerHost = 20
	p.Hours = 2
	p.SolverMaxNodes = 4000
	p.SolverMaxTime = time.Second
	p.Trace.Customers = 60
	p.Trace.TotalPPs = 400
	return p
}

// Result holds the time series the paper plots.
type Result struct {
	Policy Policy
	// Times are interval end offsets.
	Times []time.Duration
	// AvgStdev is the average per-DC CPU standard deviation (Figure 2).
	AvgStdev []float64
	// Migrations is the number of VM migrations per interval (Figure 3).
	Migrations []int

	MeanStdev      float64
	MeanMigrations float64
}

type vmState struct {
	id       int
	customer int
	dc       int
	host     int // index within its DC
	cpu      float64
	memMB    int64
	on       bool
}

type cluster struct {
	p     Params
	tr    *dctrace.Trace
	rng   *rand.Rand
	vms   []vmState
	perDC [][]int // vm ids per DC
	// customer -> vm ids
	byCustomer map[int][]int
}

// Run executes the experiment for one policy.
func Run(p Params, pol Policy) (*Result, error) {
	c := newCluster(p)
	intervals := int(p.Hours * 60 / float64(p.IntervalMinutes))
	res := &Result{Policy: pol}

	var nodes []*core.Node
	if pol == ACloud || pol == ACloudM {
		var err error
		nodes, err = c.buildNodes(pol)
		if err != nil {
			return nil, err
		}
	}

	for iv := 1; iv <= intervals; iv++ {
		now := time.Duration(iv*p.IntervalMinutes) * time.Minute
		sample := int(now / dctrace.SampleInterval)
		c.updateDemand(sample)

		migs := 0
		var err error
		switch pol {
		case Default:
			// no migration
		case Heuristic:
			migs = c.heuristicBalance()
		case ACloud, ACloudM:
			migs, err = c.copBalance(nodes, pol)
			if err != nil {
				return nil, err
			}
		}

		res.Times = append(res.Times, now)
		res.AvgStdev = append(res.AvgStdev, c.avgStdev())
		res.Migrations = append(res.Migrations, migs)
	}
	for i := range res.AvgStdev {
		res.MeanStdev += res.AvgStdev[i]
		res.MeanMigrations += float64(res.Migrations[i])
	}
	n := float64(len(res.AvgStdev))
	if n > 0 {
		res.MeanStdev /= n
		res.MeanMigrations /= n
	}
	return res, nil
}

func newCluster(p Params) *cluster {
	c := &cluster{
		p:          p,
		tr:         dctrace.New(p.Trace),
		rng:        rand.New(rand.NewSource(p.Seed)),
		byCustomer: map[int][]int{},
		perDC:      make([][]int, p.DCs),
	}
	id := 0
	for dc := 0; dc < p.DCs; dc++ {
		for h := 0; h < p.HostsPerDC; h++ {
			for v := 0; v < p.VMsPerHost; v++ {
				cust := id % c.tr.Customers()
				c.vms = append(c.vms, vmState{
					id: id, customer: cust, dc: dc, host: h,
					memMB: c.tr.MemMB(cust), on: id%2 == 0,
				})
				c.perDC[dc] = append(c.perDC[dc], id)
				c.byCustomer[cust] = append(c.byCustomer[cust], id)
				id++
			}
		}
	}
	c.updateDemand(0)
	return c
}

// updateDemand replays the trace: per-customer demand is split over active
// VMs; the workload generator powers VMs on and off at the thresholds.
func (c *cluster) updateDemand(sample int) {
	for cust, ids := range c.byCustomer {
		demand := c.tr.CPUPercent(cust, sample) * float64(len(ids)) * 0.6
		active := 0
		for _, id := range ids {
			if c.vms[id].on {
				active++
			}
		}
		if active == 0 {
			c.vms[ids[0]].on = true
			active = 1
		}
		perVM := demand / float64(active)
		// VM spawn: clone one more when overloaded.
		if perVM > c.p.SpawnThreshold && active < len(ids) {
			for _, id := range ids {
				if !c.vms[id].on {
					c.vms[id].on = true
					active++
					break
				}
			}
		}
		// VM stop: power one off when underloaded.
		if perVM < c.p.StopThreshold && active > 1 {
			for _, id := range ids {
				if c.vms[id].on {
					c.vms[id].on = false
					active--
					break
				}
			}
		}
		perVM = demand / float64(active)
		if perVM > 100 {
			perVM = 100
		}
		for _, id := range ids {
			if c.vms[id].on {
				c.vms[id].cpu = perVM
			} else {
				c.vms[id].cpu = 0
			}
		}
	}
}

// hostLoads returns the per-host aggregate CPU of one DC.
func (c *cluster) hostLoads(dc int) []float64 {
	loads := make([]float64, c.p.HostsPerDC)
	for _, id := range c.perDC[dc] {
		vm := &c.vms[id]
		if vm.on {
			loads[vm.host] += vm.cpu
		}
	}
	return loads
}

// avgStdev is the Figure 2 metric: per-DC host-CPU standard deviation,
// averaged over the data centers.
func (c *cluster) avgStdev() float64 {
	total := 0.0
	for dc := 0; dc < c.p.DCs; dc++ {
		total += stddev(c.hostLoads(dc))
	}
	return total / float64(c.p.DCs)
}

func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// heuristicBalance implements the paper's strawman: repeatedly migrate a VM
// from the most- to the least-loaded host until the ratio is below K.
func (c *cluster) heuristicBalance() int {
	migs := 0
	for dc := 0; dc < c.p.DCs; dc++ {
		for iter := 0; iter < 100; iter++ {
			loads := c.hostLoads(dc)
			maxH, minH := 0, 0
			for h := range loads {
				if loads[h] > loads[maxH] {
					maxH = h
				}
				if loads[h] < loads[minH] {
					minH = h
				}
			}
			if loads[minH] <= 0 {
				loads[minH] = 1e-9
			}
			if loads[maxH]/loads[minH] <= c.p.HeuristicRatio {
				break
			}
			// Move the largest VM that still improves the imbalance.
			gap := loads[maxH] - loads[minH]
			best := -1
			for _, id := range c.perDC[dc] {
				vm := &c.vms[id]
				if !vm.on || vm.host != maxH || vm.cpu <= 0 || vm.cpu >= gap {
					continue
				}
				if best < 0 || vm.cpu > c.vms[best].cpu {
					best = id
				}
			}
			if best < 0 {
				break
			}
			c.vms[best].host = minH
			migs++
		}
	}
	return migs
}

// nodeConfig assembles one data center's engine configuration.
func (c *cluster) nodeConfig(entry programs.Entry) core.Config {
	cfg := entry.Config
	cfg.SolverMaxNodes = c.p.SolverMaxNodes
	cfg.SolverMaxTime = c.p.SolverMaxTime
	cfg.SolverPropagate = true
	cfg.SolverEngine = c.p.SolverEngine
	cfg.SolverFixpoint = c.p.SolverFixpoint
	cfg.SolverRestarts = c.p.SolverRestarts
	cfg.SolverIncremental = c.p.SolverIncremental
	cfg.SolverWarmStart = c.p.SolverWarmStart
	cfg.Keys = map[string][]int{
		"vmRaw":  {0},
		"origin": {0},
		// vm is functionally keyed by the VM id (derived 1:1 from the
		// keyed vmRaw); declaring the key turns a CPU reading change
		// into a keyed replace, which the incremental grounder can
		// absorb by patching constants instead of re-grounding.
		"vm": {0},
	}
	return cfg
}

// seedDC inserts one data center's host catalog.
func (c *cluster) seedDC(n *core.Node) error {
	for h := 0; h < c.p.HostsPerDC; h++ {
		hid := hostName(h)
		if err := n.Insert("host", colog.StringVal(hid), colog.IntVal(0), colog.IntVal(0)); err != nil {
			return err
		}
		if err := n.Insert("hostMemThres", colog.StringVal(hid), colog.IntVal(c.p.HostMemMB)); err != nil {
			return err
		}
	}
	return nil
}

// buildNodes creates one Cologne instance per data center running the
// ACloud Colog program.
func (c *cluster) buildNodes(pol Policy) ([]*core.Node, error) {
	entry := programs.ACloud(pol == ACloudM, c.p.MaxMigrates)
	res := entry.Analyze()
	nodes := make([]*core.Node, c.p.DCs)
	for dc := 0; dc < c.p.DCs; dc++ {
		n, err := core.NewNode(fmt.Sprintf("dc%d", dc), res, c.nodeConfig(entry), nil)
		if err != nil {
			return nil, err
		}
		if err := c.seedDC(n); err != nil {
			return nil, err
		}
		nodes[dc] = n
	}
	return nodes, nil
}

func hostName(h int) string { return fmt.Sprintf("h%d", h) }
func vmName(id int) string  { return fmt.Sprintf("vm%d", id) }

// copBalance runs the per-DC Colog COP and applies the resulting placement.
func (c *cluster) copBalance(nodes []*core.Node, pol Policy) (int, error) {
	migs := 0
	for dc := 0; dc < c.p.DCs; dc++ {
		m, _, err := c.copBalanceDC(nodes[dc], dc, pol)
		if err != nil {
			return 0, err
		}
		migs += m
	}
	return migs, nil
}

// copBalanceDC refreshes one data center's COP inputs, solves, and applies
// the placement. It touches only that DC's node and VM entries, so the
// cluster runtime runs the per-DC balances concurrently.
func (c *cluster) copBalanceDC(n *core.Node, dc int, pol Policy) (int, *core.SolveResult, error) {
	// Refresh vmRaw and origin (keyed tables: inserts replace).
	live := map[int]bool{}
	for _, id := range c.perDC[dc] {
		vm := &c.vms[id]
		cpu := int64(math.Round(vm.cpu))
		if !vm.on || cpu <= c.p.CPUFloor {
			// Below the filter: drop from the COP if present.
			n.Delete("vmRaw", colog.StringVal(vmName(id)), colog.IntVal(prevCPU(n, id)), colog.IntVal(vm.memMB))
			continue
		}
		live[id] = true
		if err := n.Insert("vmRaw", colog.StringVal(vmName(id)), colog.IntVal(cpu), colog.IntVal(vm.memMB)); err != nil {
			return 0, nil, err
		}
		if pol == ACloudM {
			// origin feeds the migration-count rules d5/d6.
			if err := n.Insert("origin", colog.StringVal(vmName(id)), colog.StringVal(hostName(vm.host))); err != nil {
				return 0, nil, err
			}
		}
	}
	if len(live) == 0 {
		return 0, nil, nil
	}
	// Warm start: LPT-balanced placement for ACloud, the current
	// placement for ACloud(M) (which must respect the migration cap).
	hint := c.buildHint(dc, live, pol)
	sres, err := n.Solve(core.SolveOptions{
		Hint: func(pred string, vals []colog.Value) (int64, bool) {
			if pred != "assign" {
				return 0, false
			}
			if hint[vals[0].S] == vals[1].S {
				return 1, true
			}
			return 0, true
		},
	})
	if err != nil {
		return 0, nil, err
	}
	if !sres.Feasible() {
		return 0, sres, nil // keep current placement this interval
	}
	migs := 0
	for _, a := range sres.Assignments {
		if a.Pred != "assign" || a.Vals[2].I != 1 {
			continue
		}
		id := 0
		fmt.Sscanf(a.Vals[0].S, "vm%d", &id)
		h := 0
		fmt.Sscanf(a.Vals[1].S, "h%d", &h)
		if c.vms[id].host != h {
			c.vms[id].host = h
			migs++
		}
	}
	return migs, sres, nil
}

// prevCPU finds the CPU value currently stored for a VM so keyed deletion
// can name the full row.
func prevCPU(n *core.Node, id int) int64 {
	for _, row := range n.Rows("vmRaw") {
		if row[0].S == vmName(id) {
			return row[1].I
		}
	}
	return 0
}

// buildHint computes the warm-start placement: longest-processing-time
// (LPT) balancing for the unconstrained policy, greedy capped moves for
// ACloud(M).
func (c *cluster) buildHint(dc int, live map[int]bool, pol Policy) map[string]string {
	ids := make([]int, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if c.vms[ids[a]].cpu != c.vms[ids[b]].cpu {
			return c.vms[ids[a]].cpu > c.vms[ids[b]].cpu
		}
		return ids[a] < ids[b]
	})
	hint := map[string]string{}
	if pol == ACloud {
		loads := make([]float64, c.p.HostsPerDC)
		for _, id := range ids {
			h := 0
			for k := range loads {
				if loads[k] < loads[h] {
					h = k
				}
			}
			loads[h] += c.vms[id].cpu
			hint[vmName(id)] = hostName(h)
		}
		return hint
	}
	// ACloud(M): start from the current placement and apply up to
	// MaxMigrates best moves.
	loads := c.hostLoads(dc)
	placement := map[int]int{}
	for _, id := range ids {
		placement[id] = c.vms[id].host
	}
	for m := int64(0); m < c.p.MaxMigrates; m++ {
		maxH, minH := 0, 0
		for h := range loads {
			if loads[h] > loads[maxH] {
				maxH = h
			}
			if loads[h] < loads[minH] {
				minH = h
			}
		}
		gap := loads[maxH] - loads[minH]
		best := -1
		for _, id := range ids {
			if placement[id] != maxH {
				continue
			}
			cpu := c.vms[id].cpu
			if cpu < gap && (best < 0 || cpu > c.vms[best].cpu) {
				best = id
			}
		}
		if best < 0 {
			break
		}
		placement[best] = minH
		loads[maxH] -= c.vms[best].cpu
		loads[minH] += c.vms[best].cpu
	}
	for id, h := range placement {
		hint[vmName(id)] = hostName(h)
	}
	return hint
}
