package acloud

import (
	"fmt"

	clusterpkg "repro/internal/cluster"
)

// DCShardPlan partitions the data centers into contiguous index ranges:
// dc<i> belongs to shard i*shards/dcs. The ACloud COPs are per-DC
// independent, so any partition is traffic-free — index ranges keep each
// shard's working set a dense slice of the trace, which is what a
// per-region deployment of the paper's controller would look like.
// Addresses outside the dc<i> scheme map to shard 0.
func DCShardPlan(dcs, shards int) clusterpkg.ShardPlan {
	return clusterpkg.ShardPlan{
		Count: shards,
		Of: func(addr string) int {
			var i int
			if _, err := fmt.Sscanf(addr, "dc%d", &i); err != nil || i < 0 || dcs <= 0 {
				return 0
			}
			if i >= dcs {
				i = dcs - 1
			}
			return i * shards / dcs
		},
	}
}
