package acloud

import (
	"reflect"
	"testing"

	clusterpkg "repro/internal/cluster"
)

// TestClusterShardEquivalence: sharding the data centers by index range
// with rollup aggregation must not change the trace-driven results — the
// per-DC COPs are independent, so the partition only adds the aggregator's
// own frames.
func TestClusterShardEquivalence(t *testing.T) {
	p := clusterTestParams()
	plain, err := RunCluster(p, ACloud, clusterpkg.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunCluster(p, ACloud, clusterpkg.Options{
		Workers:     4,
		Shards:      DCShardPlan(p.DCs, 2),
		Aggregation: clusterpkg.AggregationRollup,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.AvgStdev, sharded.AvgStdev) {
		t.Fatalf("stdev series diverged:\nplain %v\nsharded %v", plain.AvgStdev, sharded.AvgStdev)
	}
	if !reflect.DeepEqual(plain.Migrations, sharded.Migrations) {
		t.Fatalf("migration series diverged:\nplain %v\nsharded %v", plain.Migrations, sharded.Migrations)
	}
}

func TestDCShardPlan(t *testing.T) {
	plan := DCShardPlan(6, 3)
	for addr, want := range map[string]int{"dc0": 0, "dc1": 0, "dc2": 1, "dc3": 1, "dc4": 2, "dc5": 2, "dc9": 2} {
		if got := plan.Of(addr); got != want {
			t.Fatalf("plan(%s) = %d, want %d", addr, got, want)
		}
	}
}
