package acloud

import (
	"fmt"
	"time"

	clusterpkg "repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dctrace"
	"repro/internal/programs"
)

// ScaledParams returns a generated workload of dcs data centers for the
// cluster runtime: the benchmark-scale per-DC shape replicated across as
// many centers as asked for. ScaledParams(24) runs 24 independent per-DC
// COPs per interval on the worker pool.
func ScaledParams(dcs int) Params {
	p := BenchParams()
	p.DCs = dcs
	p.VMsPerHost = 10
	p.Hours = 1
	p.SolverMaxNodes = 2500
	p.SolverMaxTime = 0 // node budget only: deterministic at any worker count
	p.Trace.Customers = 30
	p.Trace.TotalPPs = 200
	return p
}

// RunCluster executes the trace-driven experiment with the per-DC COPs
// solved concurrently on the cluster runtime. The data centers are
// independent (the ACloud program has no distributed rules), so the run is
// identical to Run at any worker count — same stdev and migration series —
// pinned by TestClusterEquivalence. Policies without a COP fall through to
// Run.
func RunCluster(p Params, pol Policy, o clusterpkg.Options) (*Result, error) {
	if pol != ACloud && pol != ACloudM {
		return Run(p, pol)
	}
	c := newCluster(p)
	intervals := int(p.Hours * 60 / float64(p.IntervalMinutes))
	res := &Result{Policy: pol}

	rt := clusterpkg.New(o)
	defer rt.Close()
	entry := programs.ACloud(pol == ACloudM, p.MaxMigrates)
	ares := entry.Analyze()
	specs := make([]clusterpkg.NodeSpec, p.DCs)
	for dc := 0; dc < p.DCs; dc++ {
		specs[dc] = clusterpkg.NodeSpec{
			Addr:    fmt.Sprintf("dc%d", dc),
			Program: ares,
			Config:  c.nodeConfig(entry),
			Seed:    c.seedDC,
		}
	}
	if err := rt.SpawnAll(specs); err != nil {
		return nil, err
	}

	for iv := 1; iv <= intervals; iv++ {
		now := time.Duration(iv*p.IntervalMinutes) * time.Minute
		sample := int(now / dctrace.SampleInterval)
		c.updateDemand(sample)

		items := make([]clusterpkg.Item, p.DCs)
		perDC := make([]int, p.DCs)
		for dc := 0; dc < p.DCs; dc++ {
			dc := dc
			addr := fmt.Sprintf("dc%d", dc)
			items[dc] = clusterpkg.Item{
				Label: "balance " + addr,
				Nodes: []string{addr},
				Run: func() (*core.SolveResult, error) {
					migs, sres, err := c.copBalanceDC(rt.Node(addr), dc, pol)
					perDC[dc] = migs
					return sres, err
				},
			}
		}
		if _, err := rt.RunEpoch(items); err != nil {
			return nil, err
		}
		migs := 0
		for _, m := range perDC {
			migs += m
		}

		res.Times = append(res.Times, now)
		res.AvgStdev = append(res.AvgStdev, c.avgStdev())
		res.Migrations = append(res.Migrations, migs)
	}
	for i := range res.AvgStdev {
		res.MeanStdev += res.AvgStdev[i]
		res.MeanMigrations += float64(res.Migrations[i])
	}
	n := float64(len(res.AvgStdev))
	if n > 0 {
		res.MeanStdev /= n
		res.MeanMigrations /= n
	}
	return res, nil
}
