package acloud

import (
	"reflect"
	"testing"

	clusterpkg "repro/internal/cluster"
)

func clusterTestParams() Params {
	p := BenchParams()
	p.VMsPerHost = 6
	p.Hours = 1
	p.SolverMaxNodes = 1500
	p.SolverMaxTime = 0 // node budget only: deterministic
	p.Trace.Customers = 20
	p.Trace.TotalPPs = 150
	return p
}

// TestClusterEquivalence: concurrent per-DC balancing must reproduce the
// sequential run exactly — identical stdev and migration series — for both
// COP policies at any worker count.
func TestClusterEquivalence(t *testing.T) {
	p := clusterTestParams()
	for _, pol := range []Policy{ACloud, ACloudM} {
		seq, err := Run(p, pol)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			con, err := RunCluster(p, pol, clusterpkg.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.AvgStdev, con.AvgStdev) {
				t.Fatalf("%s workers=%d: stdev series diverged:\nseq %v\ncon %v", pol, workers, seq.AvgStdev, con.AvgStdev)
			}
			if !reflect.DeepEqual(seq.Migrations, con.Migrations) {
				t.Fatalf("%s workers=%d: migration series diverged:\nseq %v\ncon %v", pol, workers, seq.Migrations, con.Migrations)
			}
		}
	}
}

// TestScaledParamsRuns: a generated many-DC workload completes under the
// cluster runtime with per-DC work on the pool.
func TestScaledParamsRuns(t *testing.T) {
	p := ScaledParams(8)
	p.Hours = 0.5
	res, err := RunCluster(p, ACloud, clusterpkg.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AvgStdev) == 0 {
		t.Fatal("no intervals recorded")
	}
}
