package acloud

import (
	"reflect"
	"testing"

	clusterpkg "repro/internal/cluster"
)

// recoveryScript crashes one data center between balancing intervals and
// restarts it from its periodic checkpoint. ACloud's per-DC COPs are
// independent — no cross-node tuples — so recovery rests entirely on
// checkpoint fidelity: the vmRaw catalog, the keyed assignment state, the
// solver materialization memory, and the arrival-order seqs must all come
// back exactly for the following intervals to solve identically.
func recoveryScript(o clusterpkg.Options, failEpoch int) clusterpkg.Options {
	o.CheckpointEvery = 1
	o.AfterEpoch = func(r *clusterpkg.Runtime, epoch int) error {
		if epoch != failEpoch {
			return nil
		}
		victim := r.Addrs()[1]
		if err := r.StopNode(victim); err != nil {
			return err
		}
		_, err := r.RestartNode(victim)
		return err
	}
	return o
}

// TestRecoveryEquivalence: killing and restarting a data center mid-run
// must reproduce the uninterrupted run exactly — identical stdev and
// migration series — for both COP policies, in simulated and UDP modes.
func TestRecoveryEquivalence(t *testing.T) {
	p := clusterTestParams()
	for _, pol := range []Policy{ACloud, ACloudM} {
		plain, err := RunCluster(p, pol, clusterpkg.Options{Workers: 4, CheckpointEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		recovered, err := RunCluster(p, pol, recoveryScript(clusterpkg.Options{Workers: 4}, 0))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.AvgStdev, recovered.AvgStdev) {
			t.Fatalf("%s: stdev series diverged:\nuninterrupted %v\nrecovered %v", pol, plain.AvgStdev, recovered.AvgStdev)
		}
		if !reflect.DeepEqual(plain.Migrations, recovered.Migrations) {
			t.Fatalf("%s: migration series diverged:\nuninterrupted %v\nrecovered %v", pol, plain.Migrations, recovered.Migrations)
		}
	}
}

// TestRecoveryDiskReplayEquivalence: the same crash with store=disk and no
// checkpoints — the restarted data center rebuilds its state (vmRaw
// catalog, keyed assignments, materialization memory, arrival-order seqs)
// purely by replaying its local write-ahead log, and the following
// intervals must solve identically to an uninterrupted run.
func TestRecoveryDiskReplayEquivalence(t *testing.T) {
	p := clusterTestParams()
	plain, err := RunCluster(p, ACloud, clusterpkg.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := clusterpkg.Options{Workers: 4, Storage: "disk", StorageDir: t.TempDir()}
	o.AfterEpoch = func(r *clusterpkg.Runtime, epoch int) error {
		if epoch != 0 {
			return nil
		}
		victim := r.Addrs()[1]
		if err := r.StopNode(victim); err != nil {
			return err
		}
		_, err := r.RestartNode(victim)
		return err
	}
	recovered, err := RunCluster(p, ACloud, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.AvgStdev, recovered.AvgStdev) {
		t.Fatalf("stdev series diverged:\nuninterrupted %v\nreplayed %v", plain.AvgStdev, recovered.AvgStdev)
	}
	if !reflect.DeepEqual(plain.Migrations, recovered.Migrations) {
		t.Fatalf("migration series diverged:\nuninterrupted %v\nreplayed %v", plain.Migrations, recovered.Migrations)
	}
}

// TestRecoveryEquivalenceUDP: the same crash with the cluster on real UDP
// sockets. The per-DC work is local, so the series equality holds in
// implementation mode too.
func TestRecoveryEquivalenceUDP(t *testing.T) {
	p := clusterTestParams()
	p.Hours = 0.5
	plain, err := RunCluster(p, ACloud, clusterpkg.Options{Mode: clusterpkg.ModeUDP, Workers: 4, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := RunCluster(p, ACloud, recoveryScript(clusterpkg.Options{Mode: clusterpkg.ModeUDP, Workers: 4}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.AvgStdev, recovered.AvgStdev) || !reflect.DeepEqual(plain.Migrations, recovered.Migrations) {
		t.Fatalf("UDP series diverged:\nuninterrupted %v %v\nrecovered %v %v",
			plain.AvgStdev, plain.Migrations, recovered.AvgStdev, recovered.Migrations)
	}
}
