package acloud

import (
	"testing"
	"time"
)

// tinyParams keeps unit tests fast.
func tinyParams() Params {
	p := BenchParams()
	p.VMsPerHost = 6
	p.Hours = 0.5 // 3 intervals
	p.SolverMaxNodes = 1500
	p.SolverMaxTime = 200 * time.Millisecond
	p.Trace.Customers = 12
	p.Trace.TotalPPs = 60
	return p
}

func TestRunDefault(t *testing.T) {
	res, err := Run(tinyParams(), Default)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AvgStdev) != 3 {
		t.Fatalf("intervals = %d, want 3", len(res.AvgStdev))
	}
	if res.MeanMigrations != 0 {
		t.Fatalf("Default migrated %v times", res.MeanMigrations)
	}
}

func TestRunHeuristicReducesImbalance(t *testing.T) {
	p := tinyParams()
	def, err := Run(p, Default)
	if err != nil {
		t.Fatal(err)
	}
	heu, err := Run(p, Heuristic)
	if err != nil {
		t.Fatal(err)
	}
	if heu.MeanStdev >= def.MeanStdev {
		t.Fatalf("Heuristic stddev %.2f not below Default %.2f", heu.MeanStdev, def.MeanStdev)
	}
	if heu.MeanMigrations == 0 {
		t.Fatal("Heuristic performed no migrations")
	}
}

func TestRunACloudBeatsDefault(t *testing.T) {
	p := tinyParams()
	def, err := Run(p, Default)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := Run(p, ACloud)
	if err != nil {
		t.Fatal(err)
	}
	if ac.MeanStdev >= def.MeanStdev {
		t.Fatalf("ACloud stddev %.2f not below Default %.2f", ac.MeanStdev, def.MeanStdev)
	}
}

func TestRunACloudMRespectsCap(t *testing.T) {
	p := tinyParams()
	p.MaxMigrates = 2
	res, err := Run(p, ACloudM)
	if err != nil {
		t.Fatal(err)
	}
	cap := int(p.MaxMigrates) * p.DCs
	for i, m := range res.Migrations {
		if m > cap {
			t.Fatalf("interval %d migrated %d VMs, cap %d", i, m, cap)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Default.String() != "Default" || Heuristic.String() != "Heuristic" ||
		ACloud.String() != "ACloud" || ACloudM.String() != "ACloud (M)" {
		t.Fatal("Policy.String broken")
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := tinyParams()
	a, err := Run(p, Heuristic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Heuristic)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.AvgStdev {
		if a.AvgStdev[i] != b.AvgStdev[i] {
			t.Fatalf("run not deterministic at interval %d", i)
		}
	}
}

func TestStddevHelper(t *testing.T) {
	if stddev(nil) != 0 {
		t.Fatal("stddev(nil) != 0")
	}
	if s := stddev([]float64{2, 4}); s != 1 {
		t.Fatalf("stddev({2,4}) = %v", s)
	}
}

// TestEngineEquivalence runs the ACloud policy under both search cores with
// only the (deterministic) node budget binding and requires byte-identical
// results: the event-driven propagation engine must take exactly the legacy
// engine's decisions on this suite.
func TestEngineEquivalence(t *testing.T) {
	run := func(engine string) *Result {
		p := tinyParams()
		p.SolverMaxTime = 0 // only the deterministic node budget binds
		p.SolverEngine = engine
		res, err := Run(p, ACloudM)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ev, lg := run("event"), run("legacy")
	if ev.MeanStdev != lg.MeanStdev || ev.MeanMigrations != lg.MeanMigrations {
		t.Fatalf("engines diverge: event stdev=%v mig=%v, legacy stdev=%v mig=%v",
			ev.MeanStdev, ev.MeanMigrations, lg.MeanStdev, lg.MeanMigrations)
	}
	if len(ev.AvgStdev) != len(lg.AvgStdev) {
		t.Fatalf("series lengths differ: %d vs %d", len(ev.AvgStdev), len(lg.AvgStdev))
	}
	for i := range ev.AvgStdev {
		if ev.AvgStdev[i] != lg.AvgStdev[i] {
			t.Fatalf("interval %d: stdev %v vs %v", i, ev.AvgStdev[i], lg.AvgStdev[i])
		}
	}
}

// TestIncrementalEquivalence runs the capped policy with incremental
// re-grounding against fresh grounding and requires byte-identical series:
// the patched model must be element-for-element the fresh one, tick for
// tick.
func TestIncrementalEquivalence(t *testing.T) {
	run := func(incremental bool) *Result {
		p := tinyParams()
		p.SolverMaxTime = 0 // only the deterministic node budget binds
		p.SolverIncremental = incremental
		res, err := Run(p, ACloudM)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	inc, fresh := run(true), run(false)
	if inc.MeanStdev != fresh.MeanStdev || inc.MeanMigrations != fresh.MeanMigrations {
		t.Fatalf("grounding paths diverge: incremental stdev=%v mig=%v, fresh stdev=%v mig=%v",
			inc.MeanStdev, inc.MeanMigrations, fresh.MeanStdev, fresh.MeanMigrations)
	}
	if len(inc.AvgStdev) != len(fresh.AvgStdev) {
		t.Fatalf("series lengths differ: %d vs %d", len(inc.AvgStdev), len(fresh.AvgStdev))
	}
	for i := range inc.AvgStdev {
		if inc.AvgStdev[i] != fresh.AvgStdev[i] || inc.Migrations[i] != fresh.Migrations[i] {
			t.Fatalf("interval %d: stdev %v vs %v, migrations %d vs %d",
				i, inc.AvgStdev[i], fresh.AvgStdev[i], inc.Migrations[i], fresh.Migrations[i])
		}
	}
}
