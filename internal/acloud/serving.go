package acloud

import (
	"math/rand"
	"sort"

	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/programs"
	"repro/internal/serve"
)

// ServingParams size the continuous-serving ACloud workload: one data
// center whose VM population churns live (CPU readings, spawns, stops)
// instead of being refreshed on the batch interval.
type ServingParams struct {
	Hosts     int   // hosting machines (default 3)
	VMs       int   // initial VM population (default 10)
	HostMemMB int64 // per-host memory (default 32768)
	// MaxNodes bounds each tick's search. Serving configs use a node
	// budget, never a wall-clock one: wall-clock stops are
	// non-deterministic and would break quiescent-point byte-identity
	// with the batch reference.
	MaxNodes int64
	Seed     int64
}

// DefaultServingParams returns a small always-feasible serving workload.
func DefaultServingParams() ServingParams {
	return ServingParams{Hosts: 3, VMs: 10, HostMemMB: 32 * 1024, MaxNodes: 4000, Seed: 1}
}

// servingConfig mirrors the batch harness's nodeConfig for a single
// serving data center: incremental re-grounding and warm starts on, keyed
// vmRaw so a CPU reading change is a keyed replace the incremental
// grounder absorbs as a constant patch.
func servingConfig(entry programs.Entry, maxNodes int64) core.Config {
	cfg := entry.Config
	cfg.SolverMaxNodes = maxNodes
	cfg.SolverPropagate = true
	cfg.SolverIncremental = true
	cfg.SolverWarmStart = true
	cfg.Keys = map[string][]int{
		"vmRaw":  {0},
		"origin": {0},
		"vm":     {0},
	}
	return cfg
}

// servingVM is the churn generator's view of one live VM.
type servingVM struct {
	id   int
	cpu  int64
	mem  int64
	live bool
}

// NewServing builds the ACloud serving scenario: a serving node and an
// identically seeded batch reference, plus a churn generator producing
// vmRaw updates (keyed replaces), spawns, and stops. Events keep every VM's
// memory well under the host threshold, so the COP stays feasible at every
// tick.
func NewServing(p ServingParams, cfg serve.Config) (*serve.Scenario, error) {
	if p.Hosts <= 0 || p.VMs <= 0 {
		def := DefaultServingParams()
		if p.Hosts <= 0 {
			p.Hosts = def.Hosts
		}
		if p.VMs <= 0 {
			p.VMs = def.VMs
		}
		if p.HostMemMB <= 0 {
			p.HostMemMB = def.HostMemMB
		}
		if p.MaxNodes <= 0 {
			p.MaxNodes = def.MaxNodes
		}
	}
	entry := programs.ACloud(false, 0)
	res := entry.Analyze()
	nodeCfg := servingConfig(entry, p.MaxNodes)

	build := func() (*core.Node, error) {
		n, err := core.NewNode("dc0", res, nodeCfg, nil)
		if err != nil {
			return nil, err
		}
		for h := 0; h < p.Hosts; h++ {
			hid := hostName(h)
			if err := n.Insert("host", colog.StringVal(hid), colog.IntVal(0), colog.IntVal(0)); err != nil {
				return nil, err
			}
			if err := n.Insert("hostMemThres", colog.StringVal(hid), colog.IntVal(p.HostMemMB)); err != nil {
				return nil, err
			}
		}
		return n, nil
	}
	node, err := build()
	if err != nil {
		return nil, err
	}
	shadow, err := build()
	if err != nil {
		return nil, err
	}

	if cfg.Keys == nil {
		cfg.Keys = map[string][]int{"vmRaw": {0}}
	}
	srv := serve.NewServer(node, cfg)

	// Generator state: the live VM population. The initial population
	// arrives through the stream itself (spawn events), so both nodes see
	// every fact through the same path.
	seedRng := rand.New(rand.NewSource(p.Seed))
	vms := map[int]*servingVM{}
	nextID := 0
	spawn := func(rng *rand.Rand) serve.Event {
		vm := &servingVM{
			id:   nextID,
			cpu:  25 + rng.Int63n(70), // above the cpu_floor filter
			mem:  64 + rng.Int63n(128),
			live: true,
		}
		nextID++
		vms[vm.id] = vm
		return serve.Event{Op: serve.OpInsert, Pred: "vmRaw", Vals: []colog.Value{
			colog.StringVal(vmName(vm.id)), colog.IntVal(vm.cpu), colog.IntVal(vm.mem),
		}}
	}
	liveIDs := func() []int {
		ids := make([]int, 0, len(vms))
		for id, vm := range vms {
			if vm.live {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		return ids
	}
	gen := func(rng *rand.Rand, n int) []serve.Event {
		events := make([]serve.Event, 0, n)
		for len(events) < n {
			ids := liveIDs()
			switch {
			case len(ids) < 2 || rng.Intn(10) == 0:
				events = append(events, spawn(rng))
			case rng.Intn(10) == 1 && len(ids) > 2:
				// Stop a VM: retract its exact current tuple.
				vm := vms[ids[rng.Intn(len(ids))]]
				vm.live = false
				events = append(events, serve.Event{Op: serve.OpDelete, Pred: "vmRaw", Vals: []colog.Value{
					colog.StringVal(vmName(vm.id)), colog.IntVal(vm.cpu), colog.IntVal(vm.mem),
				}})
			default:
				// CPU reading update: keyed replace on vmRaw.
				vm := vms[ids[rng.Intn(len(ids))]]
				vm.cpu = 25 + rng.Int63n(70)
				events = append(events, serve.Event{Op: serve.OpInsert, Pred: "vmRaw", Vals: []colog.Value{
					colog.StringVal(vmName(vm.id)), colog.IntVal(vm.cpu), colog.IntVal(vm.mem),
				}})
			}
		}
		return events
	}
	// Pre-generate the initial population as the first churn burst.
	initial := make([]serve.Event, 0, p.VMs)
	for i := 0; i < p.VMs; i++ {
		initial = append(initial, spawn(seedRng))
	}
	first := true
	wrapped := func(rng *rand.Rand, n int) []serve.Event {
		if first {
			first = false
			return append(initial, gen(rng, n)...)
		}
		return gen(rng, n)
	}

	return &serve.Scenario{Name: "acloud", Server: srv, Shadow: shadow, Gen: wrapped}, nil
}
