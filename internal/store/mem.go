package store

// memTable is the in-memory RowStore: a plain map, exactly the structure
// the engine's tables used before the backend split. Lookups and deletes
// with a []byte key compile to the allocation-free map[string(b)] form.
type memTable struct {
	rows map[string]Row
}

// NewMemTable returns a standalone in-memory RowStore. The engine uses it
// directly for event tables, which never persist (events are consumed, not
// stored; their transitions still reach the log as updates).
func NewMemTable() RowStore {
	return &memTable{rows: map[string]Row{}}
}

func (t *memTable) Get(key []byte) (Row, bool) {
	r, ok := t.rows[string(key)]
	return r, ok
}

func (t *memTable) Put(key []byte, r Row) {
	t.rows[string(key)] = r
}

func (t *memTable) SetCounts(key []byte, count, base int) {
	if r, ok := t.rows[string(key)]; ok {
		r.Count, r.Base = count, base
		t.rows[string(key)] = r
	}
}

func (t *memTable) Delete(key []byte) {
	delete(t.rows, string(key))
}

func (t *memTable) Len() int { return len(t.rows) }

func (t *memTable) Range(fn func(Row)) {
	for _, r := range t.rows {
		fn(r)
	}
}

func (t *memTable) Clear() {
	t.rows = map[string]Row{}
}

// memStore is the default backend: in-memory tables, no log.
type memStore struct {
	tables map[string]*memTable
}

// NewMemory returns the in-memory backend.
func NewMemory() Store {
	return &memStore{tables: map[string]*memTable{}}
}

func (s *memStore) Kind() string { return "memory" }

func (s *memStore) Log() *WAL { return nil }

func (s *memStore) Table(name string, arity int) (RowStore, error) {
	if t, ok := s.tables[name]; ok {
		return t, nil
	}
	t := &memTable{rows: map[string]Row{}}
	s.tables[name] = t
	return t, nil
}

func (s *memStore) Compact() error { return nil }

func (s *memStore) Close() error { return nil }
