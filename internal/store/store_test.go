package store

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/colog"
)

func vals(vs ...colog.Value) []colog.Value { return vs }

func TestWALAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{{1, 2, 3}, {}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := w.ReadRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	recs, bs := w.Stats()
	if recs != int64(len(payloads)) || bs <= 0 {
		t.Fatalf("stats = (%d, %d)", recs, bs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same records, and appends resume at the boundary.
	w2, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err = w2.ReadRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("after reopen: got %d records, want %d", len(got), len(payloads))
	}
	if err := w2.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	got, err = w2.ReadRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads)+1 || string(got[len(got)-1]) != "tail" {
		t.Fatalf("append after reopen lost: %d records", len(got))
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][]byte{[]byte("one"), []byte("two"), []byte("three")} {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := WALRecordEnds(data)
	if len(ends) != 4 { // header + 3 records
		t.Fatalf("got %d boundaries, want 4", len(ends))
	}
	// Truncate mid-record (between boundary 2 and 3): the torn third
	// record must be dropped and the file cut back to the boundary.
	cut := ends[2] + (ends[3]-ends[2])/2
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err := w2.ReadRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "one" || string(got[1]) != "two" {
		t.Fatalf("torn tail not dropped: %d records", len(got))
	}
	if fi, _ := os.Stat(path); fi.Size() != ends[2] {
		t.Fatalf("file not truncated to boundary: %d != %d", fi.Size(), ends[2])
	}
}

func TestWALTornHeaderRewritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	w.Append([]byte("x"))
	w.Close()
	// A crash can tear even the 8-byte header write.
	if err := os.Truncate(path, 3); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err := w2.ReadRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("torn-header log should be empty, got %d records", len(got))
	}
	if err := w2.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, err = w2.ReadRecords(); err != nil || len(got) != 1 {
		t.Fatalf("append after header rewrite: %v, %d records", err, len(got))
	}
}

func TestWALWrongMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("notawal!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path, false); err == nil {
		t.Fatal("expected error opening non-WAL file")
	}
}

func TestWALResetCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 10; i++ {
		if err := w.Append(bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	recsBefore, bytesBefore := w.Stats()
	if err := w.Reset([]byte("checkpoint")); err != nil {
		t.Fatal(err)
	}
	got, err := w.ReadRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "checkpoint" {
		t.Fatalf("compacted log = %d records", len(got))
	}
	recsAfter, bytesAfter := w.Stats()
	if recsAfter <= recsBefore || bytesAfter <= bytesBefore {
		t.Fatalf("cumulative stats regressed: (%d,%d) -> (%d,%d)",
			recsBefore, bytesBefore, recsAfter, bytesAfter)
	}
	// Appends continue after the compaction swap.
	if err := w.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if got, err = w.ReadRecords(); err != nil || len(got) != 2 {
		t.Fatalf("append after reset: %v, %d records", err, len(got))
	}
}

func TestOpenDispatch(t *testing.T) {
	if _, err := Open("bogus", "", false); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	s, err := Open("memory", "", false)
	if err != nil || s.Kind() != "memory" || s.Log() != nil {
		t.Fatalf("memory open: %v", err)
	}
	d, err := Open("disk", t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Kind() != "disk" || d.Log() == nil {
		t.Fatal("disk store must expose a log")
	}
	if _, err := Open("disk", "", false); err == nil {
		t.Fatal("disk open without dir must fail")
	}
}

// TestRowStoreEquivalence drives the memory and disk RowStores through the
// same operation sequence and checks they agree at every step — the
// backend-independence contract the engine's determinism rests on.
func TestRowStoreEquivalence(t *testing.T) {
	d, err := Open("disk", t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	mem := NewMemTable()
	disk, err := d.Table("rows", 3)
	if err != nil {
		t.Fatal(err)
	}

	check := func(step string) {
		t.Helper()
		if mem.Len() != disk.Len() {
			t.Fatalf("%s: len %d != %d", step, mem.Len(), disk.Len())
		}
		collect := func(rs RowStore) []Row {
			var out []Row
			rs.Range(func(r Row) { out = append(out, r) })
			sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
			return out
		}
		a, b := collect(mem), collect(disk)
		for i := range a {
			if a[i].Seq != b[i].Seq || a[i].Count != b[i].Count || a[i].Base != b[i].Base {
				t.Fatalf("%s: row %d meta mismatch: %+v vs %+v", step, i, a[i], b[i])
			}
			if len(a[i].Vals) != len(b[i].Vals) {
				t.Fatalf("%s: row %d arity mismatch", step, i)
			}
			for j := range a[i].Vals {
				if !a[i].Vals[j].Equal(b[i].Vals[j]) {
					t.Fatalf("%s: row %d val %d mismatch", step, i, j)
				}
			}
		}
	}

	put := func(key string, r Row) {
		mem.Put([]byte(key), r)
		disk.Put([]byte(key), r)
	}
	put("a", Row{Seq: 1, Count: 1, Base: 1, Vals: vals(colog.StringVal("n1"), colog.IntVal(7), colog.BoolVal(true))})
	put("b", Row{Seq: 2, Count: 2, Base: 0, Vals: vals(colog.StringVal("n2"), colog.FloatVal(2.5), colog.BoolVal(false))})
	put("c", Row{Seq: 3, Count: 1, Base: 1, Vals: vals(colog.StringVal(""), colog.IntVal(-9), colog.IntVal(0))})
	check("insert")

	// Overwrite under the same key (keyed replacement keeps the key).
	put("b", Row{Seq: 2, Count: 1, Base: 1, Vals: vals(colog.StringVal("n2"), colog.FloatVal(-3.25), colog.BoolVal(true))})
	check("overwrite")

	mem.SetCounts([]byte("a"), 5, 2)
	disk.SetCounts([]byte("a"), 5, 2)
	mem.SetCounts([]byte("zz"), 9, 9) // absent: no-op
	disk.SetCounts([]byte("zz"), 9, 9)
	check("setcounts")

	if r, ok := disk.Get([]byte("a")); !ok || r.Count != 5 || r.Base != 2 {
		t.Fatalf("disk Get after SetCounts: %+v ok=%v", r, ok)
	}

	mem.Delete([]byte("c"))
	disk.Delete([]byte("c"))
	check("delete")

	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	check("compact")

	mem.Clear()
	disk.Clear()
	check("clear")

	put("d", Row{Seq: 9, Count: 1, Base: 1, Vals: vals(colog.IntVal(42))})
	check("insert-after-clear")
}

func TestDiskTableSurvivesManyOverwrites(t *testing.T) {
	d, err := Open("disk", t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rs, err := d.Table("hot", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		rs.Put([]byte("k"), Row{Seq: 1, Count: 1, Base: 1, Vals: vals(colog.IntVal(int64(i)))})
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	r, ok := rs.Get([]byte("k"))
	if !ok || r.Vals[0].I != 499 {
		t.Fatalf("after compaction: %+v ok=%v", r, ok)
	}
}
