package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/colog"
)

// The row-value codec reuses the wire codec's per-value layout (see
// appendWireVals in internal/core/tuple.go): a uvarint value count, then
// per value a kind byte followed by a varint int, 8-byte little-endian
// float bits, uvarint-length string, or single bool byte. Keeping the two
// codecs byte-identical means a spilled row costs exactly what the same
// row costs on the wire, and the fuzz corpus for one exercises the other.

func appendVals(buf []byte, vals []colog.Value) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case colog.KindInt:
			buf = binary.AppendVarint(buf, v.I)
		case colog.KindFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case colog.KindString:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		case colog.KindBool:
			b := byte(0)
			if v.B {
				b = 1
			}
			buf = append(buf, b)
		default:
			return nil, fmt.Errorf("store: unknown value kind %d", v.Kind)
		}
	}
	return buf, nil
}

func readVals(rest []byte) ([]colog.Value, []byte, error) {
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("store: malformed value count")
	}
	rest = rest[n:]
	vals := make([]colog.Value, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("store: malformed value kind")
		}
		kind := colog.ValueKind(rest[0])
		rest = rest[1:]
		switch kind {
		case colog.KindInt:
			v, n := binary.Varint(rest)
			if n <= 0 {
				return nil, nil, fmt.Errorf("store: malformed int value")
			}
			rest = rest[n:]
			vals = append(vals, colog.IntVal(v))
		case colog.KindFloat:
			if len(rest) < 8 {
				return nil, nil, fmt.Errorf("store: malformed float value")
			}
			vals = append(vals, colog.FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(rest))))
			rest = rest[8:]
		case colog.KindString:
			sl, n := binary.Uvarint(rest)
			if n <= 0 || sl > uint64(len(rest)-n) {
				return nil, nil, fmt.Errorf("store: malformed string value")
			}
			vals = append(vals, colog.StringVal(string(rest[n:n+int(sl)])))
			rest = rest[n+int(sl):]
		case colog.KindBool:
			if len(rest) == 0 {
				return nil, nil, fmt.Errorf("store: malformed bool value")
			}
			vals = append(vals, colog.BoolVal(rest[0] != 0))
			rest = rest[1:]
		default:
			return nil, nil, fmt.Errorf("store: malformed value kind")
		}
	}
	return vals, rest, nil
}
