package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/colog"
)

// diskStore is the durable backend: one write-ahead delta log per node
// plus one spill file per table. The log is the only durable truth —
// spill files are truncated on (re)open and rebuilt by replay — so table
// writes never need syncing and the on-disk table format can stay a dumb
// append-only heap of value records indexed from memory.
type diskStore struct {
	dir string
	wal *WAL

	mu     sync.Mutex
	tables map[string]*diskTable
	nextID int
}

func openDisk(dir string, fsync bool) (*diskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: disk backend needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	wal, err := OpenWAL(filepath.Join(dir, "wal.log"), fsync)
	if err != nil {
		return nil, err
	}
	return &diskStore{dir: dir, wal: wal, tables: map[string]*diskTable{}}, nil
}

func (s *diskStore) Kind() string { return "disk" }

func (s *diskStore) Log() *WAL { return s.wal }

func (s *diskStore) Table(name string, arity int) (RowStore, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[name]; ok {
		return t, nil
	}
	path := filepath.Join(s.dir, fmt.Sprintf("t%03d-%s.dat", s.nextID, sanitizeName(name)))
	s.nextID++
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	t := &diskTable{f: f, meta: map[string]diskRowMeta{}}
	s.tables[name] = t
	return t, nil
}

func (s *diskStore) Compact() error {
	s.mu.Lock()
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	s.mu.Unlock()
	for _, name := range names {
		s.mu.Lock()
		t := s.tables[name]
		s.mu.Unlock()
		if err := t.compact(); err != nil {
			return fmt.Errorf("store: compacting table %s: %w", name, err)
		}
	}
	return nil
}

func (s *diskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, t := range s.tables {
		if err := t.close(); err != nil && first == nil {
			first = err
		}
	}
	if err := s.wal.Close(); err != nil && first != nil {
		return first
	} else if err != nil {
		return err
	}
	return first
}

// sanitizeName maps a table name onto filename-safe characters.
func sanitizeName(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// diskRowMeta is the in-memory index entry for one spilled row: its
// engine bookkeeping plus where its encoded values live in the spill file.
type diskRowMeta struct {
	seq         uint64
	count, base int
	off         int64
	vlen        int32
}

// diskTable spills row values to an append-only file and keeps only the
// per-key metadata in memory. Overwrites append a fresh value record and
// repoint the index — abandoned space is reclaimed by compact(). Count
// bumps go through SetCounts and touch no file bytes at all.
//
// The table carries its own lock because the file handle survives node
// restarts: the replaying node generation reuses the same diskTable the
// crashed generation wrote.
type diskTable struct {
	mu   sync.Mutex
	f    *os.File
	size int64
	meta map[string]diskRowMeta
	err  error // sticky I/O error, surfaced by compact/close
}

func (t *diskTable) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

func (t *diskTable) Get(key []byte) (Row, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.meta[string(key)]
	if !ok {
		return Row{}, false
	}
	vals, err := t.readValsAt(m)
	if err != nil {
		t.fail(err)
		return Row{}, false
	}
	return Row{Seq: m.seq, Count: m.count, Base: m.base, Vals: vals}, true
}

func (t *diskTable) Put(key []byte, r Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	buf, err := appendVals(nil, r.Vals)
	if err != nil {
		t.fail(err)
		return
	}
	if _, err := t.f.WriteAt(buf, t.size); err != nil {
		t.fail(err)
		return
	}
	t.meta[string(key)] = diskRowMeta{
		seq:   r.Seq,
		count: r.Count,
		base:  r.Base,
		off:   t.size,
		vlen:  int32(len(buf)),
	}
	t.size += int64(len(buf))
}

func (t *diskTable) SetCounts(key []byte, count, base int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if m, ok := t.meta[string(key)]; ok {
		m.count, m.base = count, base
		t.meta[string(key)] = m
	}
}

func (t *diskTable) Delete(key []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.meta, string(key))
}

func (t *diskTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.meta)
}

func (t *diskTable) Range(fn func(Row)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, m := range t.meta {
		vals, err := t.readValsAt(m)
		if err != nil {
			t.fail(err)
			continue
		}
		fn(Row{Seq: m.seq, Count: m.count, Base: m.base, Vals: vals})
	}
}

func (t *diskTable) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.f.Truncate(0); err != nil {
		t.fail(err)
		return
	}
	t.size = 0
	t.meta = map[string]diskRowMeta{}
}

func (t *diskTable) readValsAt(m diskRowMeta) ([]colog.Value, error) {
	buf := make([]byte, m.vlen)
	if _, err := t.f.ReadAt(buf, m.off); err != nil {
		return nil, err
	}
	vals, _, err := readVals(buf)
	return vals, err
}

// compact rewrites the spill file with only the live rows, reclaiming the
// space abandoned by overwrites and deletes.
func (t *diskTable) compact() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	type liveRow struct {
		key  string
		meta diskRowMeta
		buf  []byte
	}
	rows := make([]liveRow, 0, len(t.meta))
	for key, m := range t.meta {
		buf := make([]byte, m.vlen)
		if _, err := t.f.ReadAt(buf, m.off); err != nil {
			t.fail(err)
			return err
		}
		rows = append(rows, liveRow{key: key, meta: m, buf: buf})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].meta.off < rows[j].meta.off })
	if err := t.f.Truncate(0); err != nil {
		t.fail(err)
		return err
	}
	t.size = 0
	for _, lr := range rows {
		if _, err := t.f.WriteAt(lr.buf, t.size); err != nil {
			t.fail(err)
			return err
		}
		m := lr.meta
		m.off = t.size
		t.meta[lr.key] = m
		t.size += int64(len(lr.buf))
	}
	return nil
}

func (t *diskTable) close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cerr := t.f.Close()
	if t.err != nil {
		return t.err
	}
	return cerr
}
