// Package store provides the pluggable per-node storage backend: an
// append-only write-ahead delta log plus a table row store behind the Store
// interface. The default backend keeps rows in memory and writes no log
// (exactly the pre-storage behavior); the disk backend persists every
// visible node transition through a CRC-framed log (see wal.go) and spills
// table rows to per-table files, in the log-as-the-database style of
// LogBase: the log is the durable truth, table files are a rebuildable
// projection, and a checkpoint is a log compaction.
//
// Determinism contract: a RowStore preserves the arrival-order sequence
// numbers the engine assigns (Row.Seq) byte-for-byte, so join enumeration,
// derivation order, and solver traces are identical whichever backend
// holds the rows. Range order is NOT part of the contract — every engine
// consumer re-sorts by seq or canonical key.
package store

import (
	"fmt"

	"repro/internal/colog"
)

// Row is one stored fact with its bookkeeping: the arrival-order sequence
// number that drives deterministic enumeration, the derivation count, and
// the base (external) contribution count.
type Row struct {
	Seq   uint64
	Count int
	Base  int
	Vals  []colog.Value
}

// RowStore holds one table's rows keyed by the engine's canonical row key.
// Implementations own their copy of the key bytes (callers may reuse the
// key buffer across calls) but NOT the value slice: the engine never
// mutates a stored row's Vals in place, so implementations may alias or
// re-encode them.
//
// All methods are called with the owning node's lock held; implementations
// only need internal locking if they share files across node generations
// (the disk tables do, across restarts).
type RowStore interface {
	// Get returns the row stored under key.
	Get(key []byte) (Row, bool)
	// Put inserts or replaces the row stored under key.
	Put(key []byte, r Row)
	// SetCounts updates only the count/base bookkeeping of an existing
	// key, leaving the stored values untouched. The disk backend uses
	// this to absorb count bumps without appending duplicate value
	// records. No-op if the key is absent.
	SetCounts(key []byte, count, base int)
	// Delete removes the row stored under key, if present.
	Delete(key []byte)
	// Len returns the number of live rows.
	Len() int
	// Range calls fn for every live row, in unspecified order.
	Range(fn func(Row))
	// Clear drops every row.
	Clear()
}

// Store is one node's storage backend: a RowStore per table plus, for
// durable backends, the write-ahead delta log.
type Store interface {
	// Kind returns the backend name ("memory" or "disk").
	Kind() string
	// Log returns the write-ahead delta log, or nil for non-durable
	// backends. A nil log means the node neither writes nor replays.
	Log() *WAL
	// Table returns the RowStore for a table, creating it on first use.
	// Repeat calls with the same name return the same RowStore — that is
	// what lets a restarted node replay into the surviving table files.
	Table(name string, arity int) (RowStore, error)
	// Compact reclaims space abandoned by overwrites and deletes in the
	// table files. It does not touch the log; the engine resets the log
	// separately (WAL.Reset) under the same lock.
	Compact() error
	// Close releases file handles and reports any deferred I/O error.
	Close() error
}

// Open creates a storage backend by kind. The dir and fsync arguments only
// apply to the disk backend: dir is the node's private directory (created
// if missing), fsync forces a sync after every log append.
func Open(kind, dir string, fsync bool) (Store, error) {
	switch kind {
	case "", "memory":
		return NewMemory(), nil
	case "disk":
		return openDisk(dir, fsync)
	default:
		return nil, fmt.Errorf("store: unknown kind %q (want memory or disk)", kind)
	}
}
