package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// WAL file layout:
//
//	header:  8 bytes — magic "CLGWAL\x00" + 1 version byte
//	record:  [u32 LE payload length][u32 LE CRC-32 (IEEE) of payload][payload]
//
// Records are framed, not self-describing: the engine owns the payload
// format (see internal/core/wal.go). Appends go through WriteAt at the
// tracked end offset, so a reader that truncated the file out from under
// the writer (the torture suite does exactly that) cannot make the writer
// extend a corrupt tail — ReadRecords re-reads the file, keeps the longest
// valid prefix, truncates the torn remainder, and resets the write offset.
const (
	walVersion    = 1
	walHeaderSize = 8
	recHeaderSize = 8

	// WALHeaderSize is the exported size of the log file header (magic +
	// version byte) — the offset of the first record frame. The torture
	// suite uses it to distinguish an empty-but-valid log from real records.
	WALHeaderSize = walHeaderSize

	// maxWALRecord is a sanity cap on a single record's payload; the
	// biggest legitimate record is a checkpoint, far below this.
	maxWALRecord = 1 << 26
)

var walMagic = [walHeaderSize]byte{'C', 'L', 'G', 'W', 'A', 'L', 0, walVersion}

// WAL is an append-only write-ahead delta log. It is safe for concurrent
// use; the engine appends under the node lock but stats readers and the
// torture harness poke at it from outside.
type WAL struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	size  int64 // tracked end offset of the valid prefix
	fsync bool
	err   error // sticky I/O error; appends fail fast once set

	// Cumulative counters, monotone across Reset (compaction) so the
	// cluster's per-epoch log deltas never go negative.
	records int64
	bytes   int64
}

// OpenWAL opens (creating if needed) the log at path. A fresh or
// header-torn file gets a clean header; an existing log is scanned and any
// torn tail is truncated away, so the writer always resumes at a record
// boundary.
func OpenWAL(path string, fsync bool) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{path: path, f: f, fsync: fsync}
	if _, err := w.ReadRecords(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append writes one record and optionally syncs. The payload is copied
// into the frame before writing; the caller keeps ownership.
func (w *WAL) Append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if len(payload) > maxWALRecord {
		return fmt.Errorf("store: WAL record of %d bytes exceeds cap", len(payload))
	}
	frame := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[recHeaderSize:], payload)
	if _, err := w.f.WriteAt(frame, w.size); err != nil {
		w.err = err
		return err
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			w.err = err
			return err
		}
	}
	w.size += int64(len(frame))
	w.records++
	w.bytes += int64(len(frame))
	return nil
}

// ReadRecords re-reads the log from disk and returns the payloads of the
// longest valid record prefix, truncating any torn tail (a partial frame or
// one whose CRC mismatches) and resetting the write offset to the boundary.
// A file shorter than the header that is a prefix of the expected header is
// treated as an empty log and rewritten; a wrong magic is an error.
func (w *WAL) ReadRecords() ([][]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	data, err := os.ReadFile(w.path)
	if err != nil {
		return nil, err
	}
	if len(data) < walHeaderSize {
		if !bytes.Equal(data, walMagic[:len(data)]) {
			return nil, fmt.Errorf("store: %s: not a WAL file", w.path)
		}
		if err := w.f.Truncate(0); err != nil {
			return nil, err
		}
		if _, err := w.f.WriteAt(walMagic[:], 0); err != nil {
			return nil, err
		}
		w.size = walHeaderSize
		return nil, nil
	}
	if !bytes.Equal(data[:walHeaderSize], walMagic[:]) {
		return nil, fmt.Errorf("store: %s: bad WAL magic or version", w.path)
	}
	recs, valid := ScanWAL(data)
	if valid < int64(len(data)) {
		if err := w.f.Truncate(valid); err != nil {
			return nil, err
		}
	}
	w.size = valid
	return recs, nil
}

// Reset atomically replaces the log's contents with the given records —
// the compaction primitive: the engine passes a single checkpoint record
// and the replayable prefix before it is gone. Implemented as write to a
// temp file + rename so a crash mid-compaction leaves either the old log
// or the new one, never a hybrid. The cumulative counters keep counting.
func (w *WAL) Reset(payloads ...[]byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	data := EncodeWALRecords(payloads)
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if w.fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		return err
	}
	old := w.f
	nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		w.err = err
		return err
	}
	old.Close()
	w.f = nf
	w.size = int64(len(data))
	w.records += int64(len(payloads))
	w.bytes += int64(len(data) - walHeaderSize)
	return nil
}

// Stats returns the cumulative appended record and byte counts (monotone
// across compactions).
func (w *WAL) Stats() (records, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.bytes
}

// Path returns the log file's path.
func (w *WAL) Path() string { return w.path }

// Close releases the file handle and reports any sticky append error.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	cerr := w.f.Close()
	if w.err != nil {
		return w.err
	}
	return cerr
}

// EncodeWALRecords renders a complete log image — header plus one frame
// per payload — as the bytes ReadRecords would accept.
func EncodeWALRecords(payloads [][]byte) []byte {
	n := walHeaderSize
	for _, p := range payloads {
		n += recHeaderSize + len(p)
	}
	data := make([]byte, walHeaderSize, n)
	copy(data, walMagic[:])
	for _, p := range payloads {
		var hdr [recHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(p))
		data = append(data, hdr[:]...)
		data = append(data, p...)
	}
	return data
}

// DecodeWALRecords strictly decodes a complete log image: a bad magic,
// unknown version, oversized or truncated length, CRC mismatch, or
// trailing garbage is an error, never a panic. The torture suite and the
// fuzz target use this; the engine's recovery path uses the lenient
// ReadRecords/ScanWAL instead.
func DecodeWALRecords(data []byte) ([][]byte, error) {
	if len(data) < walHeaderSize || !bytes.Equal(data[:walHeaderSize], walMagic[:]) {
		return nil, fmt.Errorf("store: bad WAL magic or version")
	}
	var recs [][]byte
	rest := data[walHeaderSize:]
	for len(rest) > 0 {
		if len(rest) < recHeaderSize {
			return nil, fmt.Errorf("store: torn WAL record header")
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > maxWALRecord || uint64(n) > uint64(len(rest)-recHeaderSize) {
			return nil, fmt.Errorf("store: WAL record length %d out of range", n)
		}
		payload := rest[recHeaderSize : recHeaderSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("store: WAL record CRC mismatch")
		}
		recs = append(recs, payload)
		rest = rest[recHeaderSize+int(n):]
	}
	return recs, nil
}

// ScanWAL leniently scans a log image, returning the payloads of the
// longest valid record prefix and the byte offset where that prefix ends
// (the truncation point for a torn tail). The caller must have verified
// the header; a short or headerless image scans to offset 0.
func ScanWAL(data []byte) ([][]byte, int64) {
	if len(data) < walHeaderSize || !bytes.Equal(data[:walHeaderSize], walMagic[:]) {
		return nil, 0
	}
	var recs [][]byte
	off := int64(walHeaderSize)
	for {
		rest := data[off:]
		if len(rest) < recHeaderSize {
			return recs, off
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > maxWALRecord || uint64(n) > uint64(len(rest)-recHeaderSize) {
			return recs, off
		}
		payload := rest[recHeaderSize : recHeaderSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off
		}
		recs = append(recs, payload)
		off += int64(recHeaderSize) + int64(n)
	}
}

// WALRecordEnds returns the offsets of every record boundary in the valid
// prefix of a log image: the header end first, then the end of each
// record. The torture suite truncates a recorded log at (and between)
// these offsets to simulate crashes at every append boundary.
func WALRecordEnds(data []byte) []int64 {
	if len(data) < walHeaderSize || !bytes.Equal(data[:walHeaderSize], walMagic[:]) {
		return nil
	}
	ends := []int64{walHeaderSize}
	off := int64(walHeaderSize)
	for {
		rest := data[off:]
		if len(rest) < recHeaderSize {
			return ends
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > maxWALRecord || uint64(n) > uint64(len(rest)-recHeaderSize) {
			return ends
		}
		payload := rest[recHeaderSize : recHeaderSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return ends
		}
		off += int64(recHeaderSize) + int64(n)
		ends = append(ends, off)
	}
}
