package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeWALRecord hammers the strict log-image decoder: arbitrary
// bytes — including flipped CRCs, oversized lengths, wrong versions, and
// torn tails — must come back as an error, never a panic. On a successful
// decode the framing must be canonical: re-encoding the payloads must
// reproduce the input byte-for-byte. The committed corpus under
// testdata/fuzz/FuzzDecodeWALRecord was generated from real node logs
// recorded by the recovery suite.
func FuzzDecodeWALRecord(f *testing.F) {
	// Seeds shaped like real logs: header-only, a couple of update-style
	// records, a checkpoint-style blob, and mutations of each.
	f.Add(EncodeWALRecords(nil))
	f.Add(EncodeWALRecords([][]byte{{1, 0, 4, 'n', 'e', 'e', 'd', 2, 2, 0, 6}}))
	f.Add(EncodeWALRecords([][]byte{{3}, {2, 0}, bytes.Repeat([]byte{5}, 300)}))
	bad := EncodeWALRecords([][]byte{[]byte("payload")})
	bad[len(bad)-1] ^= 0xFF // flip a payload byte so the CRC mismatches
	f.Add(bad)
	short := EncodeWALRecords([][]byte{[]byte("torn")})
	f.Add(short[:len(short)-2])
	wrongVersion := EncodeWALRecords(nil)
	wrongVersion[7] = 99
	f.Add(wrongVersion)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeWALRecords(data)
		if err != nil {
			return
		}
		// Accepted: framing is canonical, so re-encoding round-trips.
		if re := EncodeWALRecords(recs); !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical: %d bytes -> %d bytes", len(data), len(re))
		}
		// The lenient scanner must agree with the strict decoder on a
		// fully valid image: same records, offset at end of input.
		scanned, valid := ScanWAL(data)
		if valid != int64(len(data)) || len(scanned) != len(recs) {
			t.Fatalf("ScanWAL disagrees with DecodeWALRecords: %d/%d records, offset %d/%d",
				len(scanned), len(recs), valid, len(data))
		}
	})
}
