package wireless

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/programs"
	"repro/internal/transport"
)

// ScaledGridParams returns a generated W x H grid scenario sized for the
// cluster runtime: one negotiation pass, tighter solver budgets, and a
// short rate sweep. ScaledGridParams(20, 10) is the 200-node scenario the
// cluster benchmarks run; ScaledGridParams(25, 20) is a 500-node grid.
func ScaledGridParams(w, h int) Params {
	p := DefaultParams()
	p.GridW, p.GridH = w, h
	p.NumFlows = w * h / 2
	p.Rates = []float64{0.2, 0.6, 1.0}
	p.SolverMaxNodes = 4000
	p.Passes = 1
	return p
}

// RunCluster evaluates one protocol with the distributed negotiation
// executed on the cluster runtime. Each negotiation depends on the
// replicated outcome of the previous one (the network settles between
// them), so the equivalent cluster schedule is one item per epoch — the
// run is byte-identical to Run (assignments, solver traces, per-node wire
// counters; TestClusterEquivalence pins it). For concurrent negotiation at
// scale, see RunClusterWaves. Protocols without a distributed component
// fall through to Run.
func RunCluster(p Params, proto Protocol, o cluster.Options) (*Result, error) {
	if proto != Distributed && proto != CrossLayer {
		return Run(p, proto)
	}
	return run(p, proto, &o)
}

// distributedAssignmentCluster is distributedAssignment on the cluster
// runtime, with the same negotiation schedule.
func distributedAssignmentCluster(t *Topology, p Params, res *Result, o cluster.Options) (Assignment, error) {
	rt, err := newDistributedCluster(t, p, o)
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	prev := Assignment{}
	for pass := 0; pass < maxInt(1, p.Passes); pass++ {
		for _, l := range passOrder(t, p, pass) {
			if _, err := rt.RunEpoch([]cluster.Item{negotiationItem(rt, l)}); err != nil {
				return nil, err
			}
			rt.Advance(p.NegotiationInterval)
		}
		cur := collectAssignment(t, runtimeNodes(rt, t))
		if pass > 0 && sameAssignment(prev, cur) {
			break
		}
		prev = cur
	}
	finishDistributed(rt, t, res)
	return collectAssignment(t, runtimeNodes(rt, t)), nil
}

// RunClusterWaves runs the distributed channel selection with concurrent
// negotiation waves: every epoch negotiates a maximal prefix of the pass
// order in which no initiator repeats, so the per-epoch items are
// node-disjoint and run on the worker pool. Decisions made within one wave
// do not see each other (they replicate at the wave barrier) — the relaxed
// asynchronous schedule the paper's implementation mode would produce, not
// the sequential trace; convergence still holds over passes. This is the
// mode the ≥200-node scale benchmarks exercise.
func RunClusterWaves(p Params, o cluster.Options) (*Result, error) {
	topo := Grid(p.GridW, p.GridH)
	rng := rand.New(rand.NewSource(p.Seed))
	if p.RestrictedChannels {
		restrictChannels(topo, p.Channels, rng)
	}
	flows := topo.RandomFlows(p.NumFlows, rng)
	topo.RoutePaths(flows, nil)
	res := &Result{Protocol: Distributed}
	rt, err := newDistributedCluster(topo, p, o)
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	prev := Assignment{}
	for pass := 0; pass < maxInt(1, p.Passes); pass++ {
		for w, wave := range waves(passOrder(topo, p, pass)) {
			if p.WaveLimit > 0 && w >= p.WaveLimit {
				break
			}
			items := make([]cluster.Item, len(wave))
			for i, l := range wave {
				items[i] = negotiationItem(rt, l)
			}
			if _, err := rt.RunEpoch(items); err != nil {
				return nil, err
			}
			rt.Advance(p.NegotiationInterval)
		}
		cur := collectAssignment(topo, runtimeNodes(rt, topo))
		if pass > 0 && sameAssignment(prev, cur) {
			break
		}
		prev = cur
	}
	finishDistributed(rt, topo, res)
	assign := collectAssignment(topo, runtimeNodes(rt, topo))
	res.Interference = topo.InterferenceCost(assign, p.FMindiff)
	model := &ThroughputModel{Topo: topo, CapacityMbps: p.CapacityMbps, FMindiff: p.FMindiff}
	for _, r := range p.Rates {
		res.OfferedMbps = append(res.OfferedMbps, r*float64(len(flows)))
		res.ThroughputMbps = append(res.ThroughputMbps, model.Aggregate(flows, assign, r))
	}
	return res, nil
}

// newDistributedCluster builds the negotiation cluster: one Cologne
// instance per grid node, seeded with its channel pool, primary users,
// interface count, and links. The seed hook doubles as the rejoin state
// for RestartNode.
func newDistributedCluster(t *Topology, p Params, o cluster.Options) (*cluster.Runtime, error) {
	o.Latency = 2 * time.Millisecond
	rt := cluster.New(o)
	entry := programs.WirelessDistributed(p.FMindiff, p.TwoHopCost)
	ares := entry.Analyze()
	specs := make([]cluster.NodeSpec, len(t.Nodes))
	for i, n := range t.Nodes {
		n := n
		specs[i] = cluster.NodeSpec{
			Addr:    string(n),
			Program: ares,
			Config:  distributedConfig(p, entry),
			Seed:    func(node *core.Node) error { return seedWirelessNode(node, t, p, n) },
		}
	}
	if err := rt.SpawnAll(specs); err != nil {
		return nil, err
	}
	rt.Advance(time.Second)
	return rt, nil
}

// negotiationItem wraps one link negotiation as an epoch item. Only the
// initiator does local work; the decision reaches the peer and the two-hop
// neighborhood through the transport after the epoch barrier.
func negotiationItem(rt *cluster.Runtime, l Link) cluster.Item {
	initiator, peer := initiatorOf(l)
	return cluster.Item{
		Label: fmt.Sprintf("negotiate %s", l),
		Nodes: []string{string(initiator)},
		Run: func() (*core.SolveResult, error) {
			node := rt.Node(string(initiator))
			if node == nil {
				return nil, fmt.Errorf("wireless: negotiating %s: initiator %s is down", l, initiator)
			}
			if err := node.Insert("setLink", colog.StringVal(string(initiator)), colog.StringVal(string(peer))); err != nil {
				return nil, err
			}
			sres, err := node.Solve(core.SolveOptions{})
			if err != nil {
				return nil, fmt.Errorf("wireless: negotiating %s: %w", l, err)
			}
			return sres, node.Delete("setLink", colog.StringVal(string(initiator)), colog.StringVal(string(peer)))
		},
	}
}

// waves greedily partitions the negotiation order into maximal prefixes
// with pairwise-distinct initiators, preserving order within each wave.
func waves(order []Link) [][]Link {
	var out [][]Link
	var wave []Link
	used := map[NodeID]bool{}
	for _, l := range order {
		ini, _ := initiatorOf(l)
		if used[ini] {
			out = append(out, wave)
			wave = nil
			used = map[NodeID]bool{}
		}
		used[ini] = true
		wave = append(wave, l)
	}
	if len(wave) > 0 {
		out = append(out, wave)
	}
	return out
}

// runtimeNodes adapts the runtime's live nodes to collectAssignment.
func runtimeNodes(rt *cluster.Runtime, t *Topology) map[NodeID]*core.Node {
	nodes := map[NodeID]*core.Node{}
	for _, n := range t.Nodes {
		if node := rt.Node(string(n)); node != nil {
			nodes[n] = node
		}
	}
	return nodes
}

// finishDistributed fills the convergence and overhead metrics from the
// runtime's epoch history and transport counters.
func finishDistributed(rt *cluster.Runtime, t *Topology, res *Result) {
	for _, st := range rt.History() {
		res.SolverNodes += st.SolverNodes
		res.AggMsgs += st.AggMsgs
		res.AggBytes += st.AggBytes
	}
	res.Convergence = rt.Now()
	res.WireStats = map[string]transport.Stats{}
	secs := rt.Now().Seconds()
	total := 0.0
	for _, n := range t.Nodes {
		st := rt.Transport().NodeStats(string(n))
		res.WireStats[string(n)] = st
		total += float64(st.BytesSent)
	}
	if secs > 0 {
		res.PerNodeKBps = total / secs / float64(len(t.Nodes)) / 1024
	}
}
