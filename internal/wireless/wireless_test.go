package wireless

import (
	"math/rand"
	"testing"
	"time"
)

func tinyParams() Params {
	p := DefaultParams()
	p.GridW, p.GridH = 3, 3
	p.NumFlows = 5
	p.SolverMaxNodes = 3000
	p.SolverMaxTime = 300 * time.Millisecond
	p.Passes = 1
	p.Rates = []float64{0.5, 2.0, 4.0}
	return p
}

func TestGridTopology(t *testing.T) {
	topo := Grid(6, 5)
	if len(topo.Nodes) != 30 {
		t.Fatalf("nodes = %d, want 30", len(topo.Nodes))
	}
	// 6x5 grid: 5*5 horizontal + 6*4 vertical = 49 links.
	if len(topo.Links) != 49 {
		t.Fatalf("links = %d, want 49", len(topo.Links))
	}
	// Interference sets: one-hop subset of two-hop.
	for _, l := range topo.Links {
		one := map[Link]bool{}
		for _, o := range topo.Interferers(l, false) {
			one[o] = true
		}
		two := map[Link]bool{}
		for _, o := range topo.Interferers(l, true) {
			two[o] = true
		}
		if len(two) < len(one) {
			t.Fatalf("link %s: two-hop set smaller than one-hop", l)
		}
		for o := range one {
			if !two[o] {
				t.Fatalf("link %s: one-hop interferer %s missing from two-hop set", l, o)
			}
		}
	}
}

func TestShortestPath(t *testing.T) {
	topo := Grid(4, 1) // a line n0-n1-n2-n3
	path := topo.shortestPath("n00", "n03", nil)
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	if p := topo.shortestPath("n00", "n00", nil); len(p) != 0 {
		t.Fatalf("self path = %v", p)
	}
}

// The hop-count BFS fast path must return exactly the paths the weighted
// Dijkstra produces on unit weights — same hops, same tie-breaks — since
// every figure and the 10k scale gate route through it.
func TestRouteHopPathsMatchDijkstra(t *testing.T) {
	topo := Grid(9, 7)
	rng := rand.New(rand.NewSource(11))
	flows := topo.RandomFlows(60, rng)
	fast := make([]Flow, len(flows))
	copy(fast, flows)
	topo.routeHopPaths(fast)
	for i, f := range flows {
		want := topo.shortestPath(f.Src, f.Dst, func(Link) float64 { return 1 })
		got := fast[i].Path
		if len(got) != len(want) {
			t.Fatalf("flow %s->%s: got %d hops, want %d", f.Src, f.Dst, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("flow %s->%s hop %d: got %v, want %v", f.Src, f.Dst, j, got[j], want[j])
			}
		}
	}
}

func TestGreedyColoringAvoidsAdjacentConflicts(t *testing.T) {
	topo := Grid(3, 3)
	a := GreedyColoring(topo, []int64{1, 6, 11}, 5, true)
	if len(a) != len(topo.Links) {
		t.Fatalf("assignment covers %d links, want %d", len(a), len(topo.Links))
	}
	full := topo.InterferenceCost(uniformAssignment(topo, 6), 5)
	colored := topo.InterferenceCost(a, 5)
	if colored >= full {
		t.Fatalf("greedy coloring (%d) no better than single channel (%d)", colored, full)
	}
}

func TestGreedyColoringRespectsPrimaryUsers(t *testing.T) {
	topo := Grid(2, 2)
	topo.PrimaryUsers["n00"] = []int64{1, 6}
	a := GreedyColoring(topo, []int64{1, 6, 11}, 5, true)
	for l, c := range a {
		if (l.A == "n00" || l.B == "n00") && c != 11 {
			t.Fatalf("link %s uses forbidden channel %d", l, c)
		}
	}
}

func TestThroughputModelMonotoneInChannelDiversity(t *testing.T) {
	topo := Grid(3, 3)
	rng := rand.New(rand.NewSource(1))
	flows := topo.RandomFlows(6, rng)
	topo.RoutePaths(flows, nil)
	m := &ThroughputModel{Topo: topo, CapacityMbps: 11, FMindiff: 5}
	single := m.Aggregate(flows, uniformAssignment(topo, 6), 1.0)
	diverse := m.Aggregate(flows, GreedyColoring(topo, []int64{1, 6, 11}, 5, true), 1.0)
	if diverse <= single {
		t.Fatalf("diverse channels (%.2f) not better than single (%.2f)", diverse, single)
	}
	// Throughput can never exceed offered load.
	if diverse > 6.0+1e-9 {
		t.Fatalf("throughput %.2f exceeds offered 6.0", diverse)
	}
}

func TestRunOneInterface(t *testing.T) {
	res, err := Run(tinyParams(), OneInterface)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ThroughputMbps) != 3 {
		t.Fatalf("series length = %d", len(res.ThroughputMbps))
	}
	for i, th := range res.ThroughputMbps {
		if th < 0 || th > res.OfferedMbps[i]+1e-9 {
			t.Fatalf("throughput %v outside [0, offered=%v]", th, res.OfferedMbps[i])
		}
	}
}

func TestRunCentralizedBeatsOneInterface(t *testing.T) {
	p := tinyParams()
	one, err := Run(p, OneInterface)
	if err != nil {
		t.Fatal(err)
	}
	cent, err := Run(p, Centralized)
	if err != nil {
		t.Fatal(err)
	}
	// Compare at the highest offered rate, where interference binds.
	last := len(p.Rates) - 1
	if cent.ThroughputMbps[last] <= one.ThroughputMbps[last] {
		t.Fatalf("Centralized (%.2f) not above 1-Interface (%.2f)",
			cent.ThroughputMbps[last], one.ThroughputMbps[last])
	}
	if cent.Interference >= one.Interference {
		t.Fatalf("Centralized interference %d not below 1-Interface %d",
			cent.Interference, one.Interference)
	}
}

func TestRunDistributed(t *testing.T) {
	p := tinyParams()
	res, err := Run(p, Distributed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Convergence == 0 {
		t.Fatal("no convergence time recorded")
	}
	if res.PerNodeKBps <= 0 {
		t.Fatal("no bandwidth recorded")
	}
	one, err := Run(p, OneInterface)
	if err != nil {
		t.Fatal(err)
	}
	last := len(p.Rates) - 1
	if res.ThroughputMbps[last] <= one.ThroughputMbps[last] {
		t.Fatalf("Distributed (%.2f) not above 1-Interface (%.2f)",
			res.ThroughputMbps[last], one.ThroughputMbps[last])
	}
}

func TestRunCrossLayerAtLeastDistributed(t *testing.T) {
	p := tinyParams()
	dist, err := Run(p, Distributed)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := Run(p, CrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	last := len(p.Rates) - 1
	if cross.ThroughputMbps[last] < dist.ThroughputMbps[last]-0.5 {
		t.Fatalf("Cross-layer (%.2f) clearly below Distributed (%.2f)",
			cross.ThroughputMbps[last], dist.ThroughputMbps[last])
	}
}

func TestRestrictedChannelsReduceThroughput(t *testing.T) {
	p := tinyParams()
	base, err := Run(p, CrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	p.RestrictedChannels = true
	restricted, err := Run(p, CrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	last := len(p.Rates) - 1
	if restricted.ThroughputMbps[last] > base.ThroughputMbps[last]+1e-9 {
		t.Fatalf("restricted channels improved throughput: %.2f > %.2f",
			restricted.ThroughputMbps[last], base.ThroughputMbps[last])
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{
		OneInterface: "1-Interface", IdenticalCh: "Identical-Ch",
		Centralized: "Centralized", Distributed: "Distributed",
		CrossLayer: "Cross-layer",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestInterferenceCostSymmetric(t *testing.T) {
	topo := Grid(2, 2)
	a := uniformAssignment(topo, 6)
	c := topo.InterferenceCost(a, 5)
	if c <= 0 {
		t.Fatalf("uniform assignment has no interference: %d", c)
	}
}

func TestRateSweepAllProtocols(t *testing.T) {
	p := tinyParams()
	all, err := RateSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("protocols = %d, want 5", len(all))
	}
	last := len(p.Rates) - 1
	// Figure 6 ordering at saturation: everything beats 1-Interface.
	one := all[OneInterface].ThroughputMbps[last]
	for proto, r := range all {
		if proto == OneInterface {
			continue
		}
		if r.ThroughputMbps[last] < one {
			t.Errorf("%s (%.2f) below 1-Interface (%.2f)", proto, r.ThroughputMbps[last], one)
		}
	}
}

func TestIdenticalChUsesTwoChannels(t *testing.T) {
	p := tinyParams()
	res, err := Run(p, IdenticalCh)
	if err != nil {
		t.Fatal(err)
	}
	// Identical-Ch must sit between 1-Interface and Distributed.
	one, err := Run(p, OneInterface)
	if err != nil {
		t.Fatal(err)
	}
	last := len(p.Rates) - 1
	if res.ThroughputMbps[last] < one.ThroughputMbps[last] {
		t.Fatalf("Identical-Ch (%.2f) below 1-Interface (%.2f)",
			res.ThroughputMbps[last], one.ThroughputMbps[last])
	}
}

// TestEngineEquivalence runs the centralized and distributed channel
// assignments under both search cores with only the node budget binding and
// requires identical throughput series and interference counts.
func TestEngineEquivalence(t *testing.T) {
	for _, proto := range []Protocol{Centralized, Distributed} {
		run := func(engine string) *Result {
			p := tinyParams()
			p.SolverMaxTime = 0 // only the deterministic node budget binds
			p.SolverEngine = engine
			res, err := Run(p, proto)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ev, lg := run("event"), run("legacy")
		if ev.Interference != lg.Interference {
			t.Fatalf("%s: interference %d vs %d", proto, ev.Interference, lg.Interference)
		}
		for i := range ev.ThroughputMbps {
			if ev.ThroughputMbps[i] != lg.ThroughputMbps[i] {
				t.Fatalf("%s: throughput[%d] %v vs %v",
					proto, i, ev.ThroughputMbps[i], lg.ThroughputMbps[i])
			}
		}
	}
}

// TestIncrementalEquivalence runs the centralized and distributed channel
// assignments with incremental re-grounding against fresh grounding and
// requires identical throughput series and interference counts.
func TestIncrementalEquivalence(t *testing.T) {
	for _, proto := range []Protocol{Centralized, Distributed} {
		run := func(incremental bool) *Result {
			p := tinyParams()
			p.SolverMaxTime = 0 // only the deterministic node budget binds
			p.SolverIncremental = incremental
			res, err := Run(p, proto)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		inc, fresh := run(true), run(false)
		if inc.Interference != fresh.Interference {
			t.Fatalf("%s: interference %d vs %d", proto, inc.Interference, fresh.Interference)
		}
		for i := range inc.ThroughputMbps {
			if inc.ThroughputMbps[i] != fresh.ThroughputMbps[i] {
				t.Fatalf("%s: throughput[%d] %v vs %v",
					proto, i, inc.ThroughputMbps[i], fresh.ThroughputMbps[i])
			}
		}
	}
}
