package wireless

import (
	"os"
	"testing"

	"repro/internal/cluster"
)

// TestSharded10kRound is the 10k-node scale gate (env-gated: set
// COLOGNE_SHARDED_10K=1, or run `make sharded-10k`): the generated 100x100
// grid runs a wave-capped negotiation round through the sharded runtime
// under both aggregation policies. The acceptance numbers are the
// cross-shard summary frames: the hierarchical rollup must complete
// cluster summaries at a fraction of all-pairs gossip's frame count while
// producing identical decisions and solver traces.
func TestSharded10kRound(t *testing.T) {
	if os.Getenv("COLOGNE_SHARDED_10K") == "" {
		t.Skip("10k-node scale gate; set COLOGNE_SHARDED_10K=1 (or `make sharded-10k`) to run")
	}
	p := ScaledGridParams(100, 100)
	p.Rates = []float64{1.0}
	p.WaveLimit = 2 // two concurrent waves of the round; the full pass is hours
	const shards = 8

	run := func(agg string) *Result {
		t.Helper()
		res, err := RunClusterWaves(p, cluster.Options{
			Shards:      GridShardPlan(p.GridW, shards),
			Aggregation: agg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rollup := run(cluster.AggregationRollup)
	allpairs := run(cluster.AggregationAllPairs)

	if rollup.SolverNodes == 0 || rollup.SolverNodes != allpairs.SolverNodes {
		t.Fatalf("solver traces diverged across aggregation policies: rollup %d, all-pairs %d",
			rollup.SolverNodes, allpairs.SolverNodes)
	}
	if rollup.Interference != allpairs.Interference {
		t.Fatalf("decisions diverged: interference %d vs %d", rollup.Interference, allpairs.Interference)
	}
	if rollup.AggMsgs == 0 || allpairs.AggMsgs == 0 {
		t.Fatalf("aggregation frames missing: rollup %d, all-pairs %d", rollup.AggMsgs, allpairs.AggMsgs)
	}
	if rollup.AggMsgs >= allpairs.AggMsgs {
		t.Fatalf("hierarchical rollup (%d frames) did not beat all-pairs gossip (%d frames)",
			rollup.AggMsgs, allpairs.AggMsgs)
	}
	t.Logf("10k round: %d shards, rollup agg-msgs=%d (%d bytes) vs all-pairs agg-msgs=%d (%d bytes), solver-nodes=%d",
		shards, rollup.AggMsgs, rollup.AggBytes, allpairs.AggMsgs, allpairs.AggBytes, rollup.SolverNodes)
}
