package wireless

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestRecoveryEquivalence: a grid node killed mid-protocol — in-flight
// channel decisions addressed to it dropped — and restarted from its
// periodic checkpoint must be pulled back into alignment by the
// anti-entropy exchange, leaving the whole run byte-identical to an
// uninterrupted one: same assignment-derived series, same per-negotiation
// solver traces. Channel state replicates through keyed tables (assign,
// nborAssign), so the lost rows are fully recoverable from the peers'
// mirrors, unlike event streams.
func TestRecoveryEquivalence(t *testing.T) {
	p := clusterTestParams()
	failAt := 5 // a mid-run negotiation epoch
	script := func(o cluster.Options) cluster.Options {
		o.CheckpointEvery = 1
		o.AfterEpoch = func(r *cluster.Runtime, epoch int) error {
			if epoch != failAt {
				return nil
			}
			victim := r.Addrs()[4] // the n04 grid center
			if err := r.StopNode(victim); err != nil {
				return err
			}
			r.Settle() // in-flight decisions addressed to the victim are lost
			_, err := r.RestartNode(victim)
			return err
		}
		return o
	}
	plain, err := RunCluster(p, Distributed, cluster.Options{Workers: 4, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := RunCluster(p, Distributed, script(cluster.Options{Workers: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.ThroughputMbps, recovered.ThroughputMbps) || plain.Interference != recovered.Interference {
		t.Fatalf("assignment-derived series diverged:\nuninterrupted %+v\nrecovered %+v", plain, recovered)
	}
	if plain.SolverNodes != recovered.SolverNodes || plain.SolverNodes == 0 {
		t.Fatalf("solver traces diverged: %d vs %d nodes", plain.SolverNodes, recovered.SolverNodes)
	}
}

// TestRecoveryDiskReplayEquivalence: the same mid-protocol crash with
// store=disk and no checkpoints. The victim replays its local write-ahead
// log — restoring its own assignment history and arrival-order seqs — and
// the anti-entropy exchange pulls only the decisions dropped in flight
// while it was down; the run must stay byte-identical to an uninterrupted
// one.
func TestRecoveryDiskReplayEquivalence(t *testing.T) {
	p := clusterTestParams()
	failAt := 5
	plain, err := RunCluster(p, Distributed, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := cluster.Options{Workers: 4, Storage: "disk", StorageDir: t.TempDir()}
	o.AfterEpoch = func(r *cluster.Runtime, epoch int) error {
		if epoch != failAt {
			return nil
		}
		victim := r.Addrs()[4] // the n04 grid center
		if err := r.StopNode(victim); err != nil {
			return err
		}
		r.Settle() // in-flight decisions addressed to the victim are lost
		_, err := r.RestartNode(victim)
		return err
	}
	recovered, err := RunCluster(p, Distributed, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.ThroughputMbps, recovered.ThroughputMbps) || plain.Interference != recovered.Interference {
		t.Fatalf("assignment-derived series diverged:\nuninterrupted %+v\nreplayed %+v", plain, recovered)
	}
	if plain.SolverNodes != recovered.SolverNodes || plain.SolverNodes == 0 {
		t.Fatalf("solver traces diverged: %d vs %d nodes", plain.SolverNodes, recovered.SolverNodes)
	}
}

// TestRecoveryUDPConverges: the same crash over real UDP sockets. The
// free-running mode has no byte-identity guarantee, but the assignment
// must still converge complete and symmetric after the rejoin.
func TestRecoveryUDPConverges(t *testing.T) {
	p := clusterTestParams()
	// Advance sleeps for real over UDP; keep the wall-clock budget small.
	p.NegotiationInterval = 10 * time.Millisecond
	topo := Grid(p.GridW, p.GridH)
	rt, err := newDistributedCluster(topo, p, cluster.Options{Mode: cluster.ModeUDP, Workers: 4, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	negotiateAll := func() {
		t.Helper()
		for _, l := range passOrder(topo, p, 0) {
			ini, _ := initiatorOf(l)
			if rt.Node(string(ini)) == nil {
				continue
			}
			if _, err := rt.RunEpoch([]cluster.Item{negotiationItem(rt, l)}); err != nil {
				t.Fatal(err)
			}
			rt.Advance(p.NegotiationInterval)
		}
	}
	negotiateAll()
	rt.Settle()

	const victim = "n04"
	if err := rt.StopNode(victim); err != nil {
		t.Fatal(err)
	}
	negotiateAll() // neighbors keep deciding; traffic to the victim is lost
	rt.Settle()
	if _, err := rt.RestartNode(victim); err != nil {
		t.Fatal(err)
	}

	// One more pass after the rejoin: every link assigned, endpoints agree.
	negotiateAll()
	rt.Settle()
	after := collectAssignment(topo, runtimeNodes(rt, topo))
	if len(after) != len(topo.Links) {
		t.Fatalf("%d links assigned after rejoin, want %d", len(after), len(topo.Links))
	}
	nodes := runtimeNodes(rt, topo)
	for _, l := range topo.Links {
		chans := map[int64]bool{}
		for _, end := range []NodeID{l.A, l.B} {
			for _, row := range nodes[end].Rows("assign") {
				if NodeID(row[0].S) != end {
					continue
				}
				if orient(NodeID(row[0].S), NodeID(row[1].S)) == l {
					chans[row[2].I] = true
				}
			}
		}
		if len(chans) > 1 {
			t.Fatalf("link %s endpoints disagree on channel: %v", l, chans)
		}
	}
}
