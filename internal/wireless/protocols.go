package wireless

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/programs"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Protocol selects the channel-selection strategy of Figure 6.
type Protocol int

const (
	// OneInterface is the baseline where every node shares one interface
	// and hence one common channel.
	OneInterface Protocol = iota
	// IdenticalCh assigns the same channel set to every node's interfaces
	// and picks, per link, one of those channels ([12]).
	IdenticalCh
	// Centralized runs the appendix A.2 Colog program on one solver.
	Centralized
	// Distributed runs the appendix A.3 per-link negotiation protocol.
	Distributed
	// CrossLayer combines distributed channel selection with
	// interference-aware routing ([14]).
	CrossLayer
)

// String names the protocol as in Figure 6.
func (p Protocol) String() string {
	switch p {
	case IdenticalCh:
		return "Identical-Ch"
	case Centralized:
		return "Centralized"
	case Distributed:
		return "Distributed"
	case CrossLayer:
		return "Cross-layer"
	default:
		return "1-Interface"
	}
}

// Params configure one wireless experiment.
type Params struct {
	GridW, GridH int     // paper: 30 nodes (6 x 5)
	Channels     []int64 // orthogonal-ish 802.11 channels
	FMindiff     int64   // interference threshold (|c1-c2| < F)
	CapacityMbps float64 // nominal link capacity
	NumFlows     int
	Rates        []float64 // per-flow offered rates to sweep (Mbps)

	// TwoHopCost selects the interference model the *protocol* optimizes
	// (the physical model is always two-hop); Figure 7's "1-hop
	// Interference" variant sets this false.
	TwoHopCost bool
	// RestrictedChannels removes ~20% of channels via primary users
	// (Figure 7).
	RestrictedChannels bool

	NegotiationInterval time.Duration // distributed per-round virtual time
	SolverMaxNodes      int64
	SolverMaxTime       time.Duration
	// SolverEngine/SolverFixpoint/SolverRestarts select and tune the search
	// core per Config (see core.Config); zero values keep the default
	// event-driven propagation engine.
	SolverEngine   string
	SolverFixpoint bool
	SolverRestarts int
	// SolverIncremental enables incremental re-grounding with solver-model
	// patching between ticks; SolverWarmStart seeds each solve from the
	// previous materialized assignments (see core.Config).
	SolverIncremental bool
	SolverWarmStart   bool
	Passes            int // distributed refinement passes
	// WaveLimit caps the negotiation waves per pass in RunClusterWaves
	// (0 = all waves). The 10k-node scale gates use it to run a full
	// first-wave round — every node spawned, seeded, and replicating, the
	// maximal disjoint link set negotiating — without paying for the long
	// sequential tail of residual waves.
	WaveLimit int

	Seed int64
}

// DefaultParams returns the 30-node configuration of section 6.4.
func DefaultParams() Params {
	return Params{
		GridW: 6, GridH: 5,
		// The full 802.11b/g channel set with partial spectral overlap:
		// channels closer than FMindiff interfere (one fully orthogonal
		// triple, 1/6/11, exists).
		Channels: []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, FMindiff: 5,
		CapacityMbps: 11, NumFlows: 15,
		Rates:               []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2},
		TwoHopCost:          true,
		NegotiationInterval: 800 * time.Millisecond,
		SolverMaxNodes:      20000,
		SolverIncremental:   true,
		Passes:              2,
		Seed:                7,
	}
}

// Result holds one protocol's Figure 6 series plus overhead metrics.
type Result struct {
	Protocol       Protocol
	OfferedMbps    []float64 // total offered rate (flows x per-flow rate)
	ThroughputMbps []float64
	// Convergence is the virtual time the distributed protocols took; for
	// Centralized it is the solver wall time.
	Convergence  time.Duration
	PerNodeKBps  float64
	Interference int // residual interfering pairs (two-hop physical model)
	// SolverNodes sums the search nodes over every negotiation solve (the
	// cluster equivalence suite compares it exactly).
	SolverNodes int64
	// WireStats holds each node's transport counters after a distributed
	// run (the Figure 6/7 per-node overhead, unnormalized).
	WireStats map[string]transport.Stats
	// AggMsgs and AggBytes count the cross-shard epoch-summary frames of a
	// sharded run (zero unsharded or with aggregation off); the
	// rollup-vs-allpairs benchmarks compare exactly these.
	AggMsgs, AggBytes int64
}

// Run evaluates one protocol across the configured rate sweep.
func Run(p Params, proto Protocol) (*Result, error) {
	return run(p, proto, nil)
}

// run is the shared harness: the distributed protocols produce their
// assignment either on the sequential loop (co == nil) or on the cluster
// runtime.
func run(p Params, proto Protocol, co *cluster.Options) (*Result, error) {
	topo := Grid(p.GridW, p.GridH)
	rng := rand.New(rand.NewSource(p.Seed))
	if p.RestrictedChannels {
		restrictChannels(topo, p.Channels, rng)
	}
	flows := topo.RandomFlows(p.NumFlows, rng)
	topo.RoutePaths(flows, nil) // hop-count routing first

	res := &Result{Protocol: proto}
	var assign Assignment
	var err error
	switch proto {
	case OneInterface:
		assign = uniformAssignment(topo, 6)
	case IdenticalCh:
		assign, err = identicalChAssignment(topo, p)
	case Centralized:
		assign, err = centralizedAssignment(topo, p, res)
	case Distributed, CrossLayer:
		if co != nil {
			assign, err = distributedAssignmentCluster(topo, p, res, *co)
		} else {
			assign, err = distributedAssignment(topo, p, res)
		}
	default:
		return nil, fmt.Errorf("wireless: unknown protocol %d", proto)
	}
	if err != nil {
		return nil, err
	}

	model := &ThroughputModel{Topo: topo, CapacityMbps: p.CapacityMbps, FMindiff: p.FMindiff}
	if proto == CrossLayer {
		// Cross-layer: jointly pick the routing given the channels. Several
		// interference-aware metrics compete against plain shortest path,
		// judged by the protocol's own throughput objective at the highest
		// offered rate.
		calib := p.Rates[len(p.Rates)-1]
		type cand struct{ weight func(Link) float64 }
		cands := []cand{
			{nil},
			{interferenceAwareWeight(topo, assign, p.FMindiff, 1.0, p.TwoHopCost)},
			{interferenceAwareWeight(topo, assign, p.FMindiff, 0.3, p.TwoHopCost)},
		}
		bestTh := -1.0
		var bestPaths [][]Link
		for _, c := range cands {
			topo.RoutePaths(flows, c.weight)
			th := model.Aggregate(flows, assign, calib)
			if th > bestTh {
				bestTh = th
				bestPaths = make([][]Link, len(flows))
				for i := range flows {
					bestPaths[i] = flows[i].Path
				}
			}
		}
		for i := range flows {
			flows[i].Path = bestPaths[i]
		}
	}
	res.Interference = topo.InterferenceCost(assign, p.FMindiff)
	for _, r := range p.Rates {
		res.OfferedMbps = append(res.OfferedMbps, r*float64(len(flows)))
		res.ThroughputMbps = append(res.ThroughputMbps, model.Aggregate(flows, assign, r))
	}
	return res, nil
}

// restrictChannels marks channels as primary-user occupied so that each
// node loses ~20% of its available spectrum, the Figure 7 "Restricted
// Channels" policy. Removal is in contiguous bands (a primary user occupies
// a band, not isolated channels), which is what actually reduces the
// orthogonal-channel diversity.
func restrictChannels(t *Topology, channels []int64, rng *rand.Rand) {
	if len(channels) < 2 {
		return
	}
	bandLen := len(channels) / 5 // ~20%
	if bandLen < 1 {
		bandLen = 1
	}
	for _, n := range t.Nodes {
		start := rng.Intn(len(channels) - bandLen + 1)
		for i := start; i < start+bandLen; i++ {
			t.PrimaryUsers[n] = append(t.PrimaryUsers[n], channels[i])
		}
	}
}

func uniformAssignment(t *Topology, ch int64) Assignment {
	a := Assignment{}
	for _, l := range t.Links {
		a[l] = ch
	}
	return a
}

// identicalChAssignment: every node's two interfaces carry the same two
// (maximally spread) channels; a central solver assigns each link to one of
// them. We reuse the centralized Colog program with the reduced pool.
func identicalChAssignment(t *Topology, p Params) (Assignment, error) {
	q := p
	if len(q.Channels) > 2 {
		q.Channels = []int64{q.Channels[0], q.Channels[len(q.Channels)-1]}
	}
	return centralizedAssignment(t, q, &Result{})
}

// centralizedAssignment runs the appendix A.2 program on a single Cologne
// instance holding the whole topology.
func centralizedAssignment(t *Topology, p Params, res *Result) (Assignment, error) {
	entry := programs.WirelessCentralized(p.TwoHopCost, p.FMindiff)
	cfg := entry.Config
	cfg.SolverMaxNodes = p.SolverMaxNodes
	cfg.SolverMaxTime = p.SolverMaxTime
	cfg.SolverEngine = p.SolverEngine
	cfg.SolverFixpoint = p.SolverFixpoint
	cfg.SolverRestarts = p.SolverRestarts
	cfg.SolverIncremental = p.SolverIncremental
	cfg.SolverWarmStart = p.SolverWarmStart
	node, err := core.NewNode("manager", entry.Analyze(), cfg, nil)
	if err != nil {
		return nil, err
	}
	for _, c := range p.Channels {
		if err := node.Insert("availChannel", colog.IntVal(c)); err != nil {
			return nil, err
		}
	}
	for _, n := range t.Nodes {
		if err := node.Insert("numInterface", colog.StringVal(string(n)), colog.IntVal(2)); err != nil {
			return nil, err
		}
		for _, pc := range t.PrimaryUsers[n] {
			if err := node.Insert("primaryUser", colog.StringVal(string(n)), colog.IntVal(pc)); err != nil {
				return nil, err
			}
		}
	}
	for _, l := range t.Links {
		for _, pair := range [][2]NodeID{{l.A, l.B}, {l.B, l.A}} {
			if err := node.Insert("link", colog.StringVal(string(pair[0])), colog.StringVal(string(pair[1]))); err != nil {
				return nil, err
			}
		}
	}
	hint := GreedyColoring(t, p.Channels, p.FMindiff, p.TwoHopCost)
	start := time.Now()
	sres, err := node.Solve(core.SolveOptions{
		Hint: func(pred string, vals []colog.Value) (int64, bool) {
			if pred != "assign" {
				return 0, false
			}
			return hint[orient(NodeID(vals[0].S), NodeID(vals[1].S))], true
		},
	})
	if err != nil {
		return nil, err
	}
	res.Convergence = time.Since(start)
	if !sres.Feasible() {
		return hint, nil // fall back to the warm start
	}
	a := Assignment{}
	for _, asg := range sres.Assignments {
		a[orient(NodeID(asg.Vals[0].S), NodeID(asg.Vals[1].S))] = asg.Vals[2].I
	}
	return a, nil
}

// distributedAssignment runs the appendix A.3 per-link negotiation over the
// simulated network: every link is negotiated by its larger endpoint, the
// decided channel propagates to the neighbor (rule r1) and into the two-hop
// neighborhood (rule r2), and subsequent negotiations solve against that
// replicated state.
func distributedAssignment(t *Topology, p Params, res *Result) (Assignment, error) {
	sched := sim.NewScheduler()
	tr := transport.NewSim(sched, 2*time.Millisecond)
	entry := programs.WirelessDistributed(p.FMindiff, p.TwoHopCost)
	ares := entry.Analyze()
	nodes := map[NodeID]*core.Node{}
	for _, n := range t.Nodes {
		node, err := core.NewNode(string(n), ares, distributedConfig(p, entry), tr)
		if err != nil {
			return nil, err
		}
		nodes[n] = node
	}
	for _, n := range t.Nodes {
		if err := seedWirelessNode(nodes[n], t, p, n); err != nil {
			return nil, err
		}
	}
	sched.Run(sched.Now() + time.Second)

	prev := Assignment{}
	for pass := 0; pass < maxInt(1, p.Passes); pass++ {
		for _, l := range passOrder(t, p, pass) {
			initiator, peer := initiatorOf(l)
			node := nodes[initiator]
			if err := node.Insert("setLink", colog.StringVal(string(initiator)), colog.StringVal(string(peer))); err != nil {
				return nil, err
			}
			sres, err := node.Solve(core.SolveOptions{})
			if err != nil {
				return nil, fmt.Errorf("wireless: negotiating %s: %w", l, err)
			}
			res.SolverNodes += sres.Stats.Nodes
			if err := node.Delete("setLink", colog.StringVal(string(initiator)), colog.StringVal(string(peer))); err != nil {
				return nil, err
			}
			sched.Run(sched.Now() + p.NegotiationInterval)
		}
		cur := collectAssignment(t, nodes)
		if pass > 0 && sameAssignment(prev, cur) {
			break
		}
		prev = cur
	}
	res.Convergence = sched.Now()
	res.WireStats = map[string]transport.Stats{}
	secs := sched.Now().Seconds()
	total := 0.0
	for _, n := range t.Nodes {
		st := tr.NodeStats(string(n))
		res.WireStats[string(n)] = st
		total += float64(st.BytesSent)
	}
	if secs > 0 {
		res.PerNodeKBps = total / secs / float64(len(t.Nodes)) / 1024
	}
	return collectAssignment(t, nodes), nil
}

// distributedConfig assembles the per-node engine configuration of the
// distributed protocol.
func distributedConfig(p Params, entry programs.Entry) core.Config {
	cfg := entry.Config
	cfg.SolverMaxNodes = p.SolverMaxNodes
	cfg.SolverMaxTime = p.SolverMaxTime
	cfg.SolverEngine = p.SolverEngine
	cfg.SolverFixpoint = p.SolverFixpoint
	cfg.SolverRestarts = p.SolverRestarts
	cfg.SolverIncremental = p.SolverIncremental
	cfg.SolverWarmStart = p.SolverWarmStart
	return cfg
}

// seedWirelessNode inserts one grid node's base facts: its channel pool,
// primary users, interface count, and incident links. Also the NodeSpec
// seed hook, so a restarted node rejoins with exactly this state.
func seedWirelessNode(node *core.Node, t *Topology, p Params, n NodeID) error {
	for _, c := range p.Channels {
		if err := node.Insert("availChannel", colog.IntVal(c)); err != nil {
			return err
		}
	}
	for _, pc := range t.PrimaryUsers[n] {
		if err := node.Insert("primaryUser", colog.StringVal(string(n)), colog.IntVal(pc)); err != nil {
			return err
		}
	}
	if err := node.Insert("numInterface", colog.StringVal(string(n)), colog.IntVal(2)); err != nil {
		return err
	}
	for _, nbor := range t.Adj[n] {
		if err := node.Insert("link", colog.StringVal(string(n)), colog.StringVal(string(nbor))); err != nil {
			return err
		}
	}
	return nil
}

// passOrder returns the deterministic per-pass negotiation order.
func passOrder(t *Topology, p Params, pass int) []Link {
	order := append([]Link(nil), t.Links...)
	rand.New(rand.NewSource(p.Seed+int64(pass))).Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
	return order
}

// initiatorOf names the link's negotiating endpoint (the larger address)
// and its peer.
func initiatorOf(l Link) (NodeID, NodeID) {
	if string(l.B) > string(l.A) {
		return l.B, l.A
	}
	return l.A, l.B
}

// collectAssignment reads the materialized assign tables.
func collectAssignment(t *Topology, nodes map[NodeID]*core.Node) Assignment {
	a := Assignment{}
	for _, n := range t.Nodes {
		for _, row := range nodes[n].Rows("assign") {
			if NodeID(row[0].S) != n {
				continue
			}
			a[orient(n, NodeID(row[1].S))] = row[2].I
		}
	}
	// Links never negotiated default to the first channel.
	for _, l := range t.Links {
		if _, ok := a[l]; !ok {
			a[l] = 1
		}
	}
	return a
}

func sameAssignment(a, b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// interferenceAwareWeight is a cross-layer routing metric: a link costs one
// hop plus alpha times its residual interference degree, so routes prefer
// channel-diverse regions.
func interferenceAwareWeight(t *Topology, a Assignment, fMindiff int64, alpha float64, twoHop bool) func(Link) float64 {
	deg := map[Link]float64{}
	for _, l := range t.Links {
		for _, o := range t.Interferers(l, twoHop) {
			if chanInterferes(a[l], a[o], fMindiff) {
				deg[l]++
			}
		}
	}
	return func(l Link) float64 { return 1 + alpha*deg[l] }
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RateSweep runs every protocol of Figure 6 and returns results keyed by
// protocol.
func RateSweep(p Params) (map[Protocol]*Result, error) {
	out := map[Protocol]*Result{}
	for _, proto := range []Protocol{OneInterface, IdenticalCh, Centralized, Distributed, CrossLayer} {
		r, err := Run(p, proto)
		if err != nil {
			return nil, fmt.Errorf("wireless: %s: %w", proto, err)
		}
		out[proto] = r
	}
	return out, nil
}
