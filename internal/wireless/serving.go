package wireless

import (
	"math/rand"

	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/programs"
	"repro/internal/serve"
)

// ServingParams size the continuous channel-selection serving workload:
// the centralized appendix A.2 program over a small grid, fed by live
// primary-user churn (spectrum sensing reports arriving as a stream).
type ServingParams struct {
	W, H     int     // grid dimensions (default 2x2)
	Channels []int64 // channel pool (default 1,6,11)
	MaxNodes int64   // per-tick search budget (node-based)
	Seed     int64
}

// DefaultServingParams returns a small always-feasible serving workload.
func DefaultServingParams() ServingParams {
	return ServingParams{W: 2, H: 2, Channels: []int64{1, 6, 11}, MaxNodes: 6000, Seed: 1}
}

// NewServing builds the wireless serving scenario: serving node plus batch
// reference running the centralized channel-selection COP, and a churn
// generator toggling each node's primary-user channel (delete the old
// sensing report, insert the new one). At most one channel per grid node is
// ever occupied, so with three channels and two radios per node the COP
// stays feasible.
func NewServing(p ServingParams, cfg serve.Config) (*serve.Scenario, error) {
	def := DefaultServingParams()
	if p.W <= 0 {
		p.W = def.W
	}
	if p.H <= 0 {
		p.H = def.H
	}
	if len(p.Channels) == 0 {
		p.Channels = def.Channels
	}
	if p.MaxNodes <= 0 {
		p.MaxNodes = def.MaxNodes
	}
	t := Grid(p.W, p.H)
	entry := programs.WirelessCentralized(false, 5)
	res := entry.Analyze()
	nodeCfg := entry.Config
	nodeCfg.SolverMaxNodes = p.MaxNodes
	nodeCfg.SolverPropagate = true
	nodeCfg.SolverIncremental = true
	nodeCfg.SolverWarmStart = true

	build := func() (*core.Node, error) {
		n, err := core.NewNode("manager", res, nodeCfg, nil)
		if err != nil {
			return nil, err
		}
		for _, c := range p.Channels {
			if err := n.Insert("availChannel", colog.IntVal(c)); err != nil {
				return nil, err
			}
		}
		for _, nd := range t.Nodes {
			if err := n.Insert("numInterface", colog.StringVal(string(nd)), colog.IntVal(2)); err != nil {
				return nil, err
			}
		}
		for _, l := range t.Links {
			for _, pair := range [][2]NodeID{{l.A, l.B}, {l.B, l.A}} {
				if err := n.Insert("link", colog.StringVal(string(pair[0])), colog.StringVal(string(pair[1]))); err != nil {
					return nil, err
				}
			}
		}
		return n, nil
	}
	node, err := build()
	if err != nil {
		return nil, err
	}
	shadow, err := build()
	if err != nil {
		return nil, err
	}

	srv := serve.NewServer(node, cfg)

	// Generator state: the channel currently occupied by a primary user at
	// each grid node (0 = none). Sensing churn retracts the old report and
	// asserts the new one.
	occupied := map[NodeID]int64{}
	puEv := func(op serve.Op, nd NodeID, ch int64) serve.Event {
		return serve.Event{Op: op, Pred: "primaryUser", Vals: []colog.Value{
			colog.StringVal(string(nd)), colog.IntVal(ch),
		}}
	}
	gen := func(rng *rand.Rand, n int) []serve.Event {
		events := make([]serve.Event, 0, n)
		for len(events) < n {
			nd := t.Nodes[rng.Intn(len(t.Nodes))]
			if old := occupied[nd]; old != 0 {
				events = append(events, puEv(serve.OpDelete, nd, old))
				occupied[nd] = 0
				continue
			}
			ch := p.Channels[rng.Intn(len(p.Channels))]
			occupied[nd] = ch
			events = append(events, puEv(serve.OpInsert, nd, ch))
		}
		return events
	}

	return &serve.Scenario{Name: "wireless", Server: srv, Shadow: shadow, Gen: gen}, nil
}
