package wireless

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// smokeShardParams is the deployment both the parent gate and the helper
// children run: a 3x3 grid, one pass, deterministic solver budgets.
func smokeShardParams() Params {
	p := DefaultParams()
	p.GridW, p.GridH = 3, 3
	p.SolverMaxNodes = 6000
	p.SolverMaxTime = 0 // node budget only: deterministic
	p.Passes = 1
	return p
}

// TestShardProcessHelper is not a test: it is the body of one OS process of
// the multi-process smoke gate, re-executed from TestShardMultiProcess with
// the WIRELESS_SHARD_* environment set.
func TestShardProcessHelper(t *testing.T) {
	if os.Getenv("WIRELESS_SHARD_HELPER") != "1" {
		t.Skip("helper process for TestShardMultiProcess")
	}
	id, err := strconv.Atoi(os.Getenv("WIRELESS_SHARD_ID"))
	if err != nil {
		t.Fatalf("bad WIRELESS_SHARD_ID: %v", err)
	}
	endpoints := strings.Split(os.Getenv("WIRELESS_SHARD_ENDPOINTS"), ",")
	rep, err := RunShardProcess(smokeShardParams(), ShardProcessConfig{
		ShardID:   id,
		Endpoints: endpoints,
	})
	if err != nil {
		t.Fatalf("shard %d: %v", id, err)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(os.Getenv("WIRELESS_SHARD_OUT"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// reserveEndpoints picks n distinct loopback UDP ports by binding and
// releasing them.
func reserveEndpoints(t *testing.T, n int) []string {
	t.Helper()
	eps := make([]string, n)
	conns := make([]*net.UDPConn, n)
	for i := range eps {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		eps[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return eps
}

// TestShardMultiProcess is the multi-process smoke gate: three real OS
// processes, each owning one shard of a 3x3 wireless grid over loopback
// UDP, negotiate a full round in token lockstep. The merged decisions must
// be equivalent to the single-process run of the same schedule, every
// cross-shard link must have crossed the wire, and shard 0 must complete a
// rollup folding all three shards.
func TestShardMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes, skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	p := smokeShardParams()
	const shards = 3
	eps := reserveEndpoints(t, shards)
	dir := t.TempDir()

	outs := make([]string, shards)
	cmds := make([]*exec.Cmd, shards)
	for i := 0; i < shards; i++ {
		outs[i] = filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		cmd := exec.Command(exe, "-test.run", "^TestShardProcessHelper$", "-test.timeout", "90s")
		cmd.Env = append(os.Environ(),
			"WIRELESS_SHARD_HELPER=1",
			"WIRELESS_SHARD_ID="+strconv.Itoa(i),
			"WIRELESS_SHARD_ENDPOINTS="+strings.Join(eps, ","),
			"WIRELESS_SHARD_OUT="+outs[i],
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[i] = cmd
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("shard process %d failed: %v", i, err)
		}
	}

	// Merge the per-process decisions, requiring cross-shard agreement on
	// replicated links.
	topo := Grid(p.GridW, p.GridH)
	merged := Assignment{}
	var reps [shards]*ShardProcessReport
	for i := range outs {
		blob, err := os.ReadFile(outs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(blob, &reps[i]); err != nil {
			t.Fatal(err)
		}
		for link, ch := range reps[i].Assignment {
			a, b, _ := strings.Cut(link, "-")
			l := orient(NodeID(a), NodeID(b))
			if prev, seen := merged[l]; seen && prev != ch {
				t.Fatalf("shards disagree on %s: %d vs %d", link, prev, ch)
			}
			merged[l] = ch
		}
	}
	for _, l := range topo.Links {
		if _, ok := merged[l]; !ok {
			merged[l] = 1
		}
	}

	// Reference: the identical negotiation schedule in one simulated
	// process.
	rt, err := newDistributedCluster(topo, p, cluster.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for _, l := range passOrder(topo, p, 0) {
		if _, err := rt.RunEpoch([]cluster.Item{negotiationItem(rt, l)}); err != nil {
			t.Fatal(err)
		}
		rt.Advance(p.NegotiationInterval)
	}
	want := collectAssignment(topo, runtimeNodes(rt, topo))
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("multi-process decisions diverged from single-process run:\nmulti %v\nsingle %v", merged, want)
	}

	// Cross-shard negotiation traffic must actually have crossed the wire,
	// and the rollup must have folded every shard at the root.
	var remote int64
	for i := range reps {
		remote += reps[i].RemoteMsgs
		if reps[i].Epochs != len(topo.Links) {
			t.Fatalf("shard %d ran %d epochs, want %d", i, reps[i].Epochs, len(topo.Links))
		}
	}
	if remote == 0 {
		t.Fatal("no cross-shard frames on the wire in a 3-process run")
	}
	if reps[0].Summary == nil {
		t.Fatal("shard 0 completed no cluster rollup")
	}
	if reps[0].Summary.Folded != shards || reps[0].Summary.Members != len(topo.Nodes) {
		t.Fatalf("rollup = %+v, want %d shards folded over %d members", reps[0].Summary, shards, len(topo.Nodes))
	}
}
