// Package wireless implements the paper's third use case (sections 3.2,
// 6.4, appendix A): channel selection on a multi-radio wireless grid. The
// ORBIT testbed is replaced by a radio model with the same observables —
// channel-overlap interference within two hops, capacity shared among
// interfering transmissions, multi-hop flows — against which five protocols
// are compared: the Colog centralized and distributed channel selection, a
// cross-layer variant that co-optimizes routing, and the paper's two
// baselines (identical channel assignment and a single shared interface).
// The harness reproduces Figures 6 and 7.
package wireless

import (
	"fmt"
	"math/rand"
	"sort"
)

// NodeID identifies a grid node ("n0".."n29").
type NodeID string

// Link is an undirected link between adjacent grid nodes, stored with
// A < B lexicographically.
type Link struct {
	A, B NodeID
}

func orient(a, b NodeID) Link {
	if a > b {
		a, b = b, a
	}
	return Link{a, b}
}

func (l Link) String() string { return fmt.Sprintf("%s-%s", l.A, l.B) }

// Topology is the wireless mesh: grid nodes, adjacency, and per-node
// forbidden channels (primary users).
type Topology struct {
	W, H  int
	Nodes []NodeID
	Links []Link
	Adj   map[NodeID][]NodeID
	// PrimaryUsers maps a node to channels occupied by primary users in its
	// vicinity (constraint 9 of the COP formulation).
	PrimaryUsers map[NodeID][]int64
	// twoHop caches, per link, the links within its two-hop interference
	// range.
	twoHop map[Link][]Link
	oneHop map[Link][]Link
}

// Grid builds a W x H grid topology (the paper's 30-node ORBIT slice is
// 6 x 5).
func Grid(w, h int) *Topology {
	t := &Topology{
		W: w, H: h,
		Adj:          map[NodeID][]NodeID{},
		PrimaryUsers: map[NodeID][]int64{},
	}
	id := func(x, y int) NodeID { return NodeID(fmt.Sprintf("n%02d", y*w+x)) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			t.Nodes = append(t.Nodes, id(x, y))
		}
	}
	addLink := func(a, b NodeID) {
		t.Links = append(t.Links, orient(a, b))
		t.Adj[a] = append(t.Adj[a], b)
		t.Adj[b] = append(t.Adj[b], a)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				addLink(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				addLink(id(x, y), id(x, y+1))
			}
		}
	}
	sort.Slice(t.Links, func(i, j int) bool {
		if t.Links[i].A != t.Links[j].A {
			return t.Links[i].A < t.Links[j].A
		}
		return t.Links[i].B < t.Links[j].B
	})
	t.buildInterferenceSets()
	return t
}

// buildInterferenceSets precomputes, for every link, the other links within
// one and two hops (the interference neighborhoods of the two models in
// [28]).
func (t *Topology) buildInterferenceSets() {
	t.oneHop = map[Link][]Link{}
	t.twoHop = map[Link][]Link{}
	touch := map[NodeID][]Link{}
	for _, l := range t.Links {
		touch[l.A] = append(touch[l.A], l)
		touch[l.B] = append(touch[l.B], l)
	}
	for _, l := range t.Links {
		seen1 := map[Link]bool{l: true}
		seen2 := map[Link]bool{l: true}
		for _, end := range []NodeID{l.A, l.B} {
			for _, o := range touch[end] {
				if !seen1[o] {
					seen1[o] = true
					t.oneHop[l] = append(t.oneHop[l], o)
				}
				if !seen2[o] {
					seen2[o] = true
					t.twoHop[l] = append(t.twoHop[l], o)
				}
			}
			// Two hops: links touching a neighbor of this endpoint.
			for _, nbor := range t.Adj[end] {
				for _, o := range touch[nbor] {
					if !seen2[o] {
						seen2[o] = true
						t.twoHop[l] = append(t.twoHop[l], o)
					}
				}
			}
		}
	}
}

// Interferers returns the links within the interference range of l under
// the chosen model.
func (t *Topology) Interferers(l Link, twoHop bool) []Link {
	if twoHop {
		return t.twoHop[l]
	}
	return t.oneHop[l]
}

// Assignment maps each undirected link to its channel.
type Assignment map[Link]int64

// InterferenceCost counts interfering link pairs under the two-hop physical
// model (equation 7's objective evaluated on a concrete assignment).
func (t *Topology) InterferenceCost(a Assignment, fMindiff int64) int {
	cost := 0
	for _, l := range t.Links {
		for _, o := range t.twoHop[l] {
			if chanInterferes(a[l], a[o], fMindiff) {
				cost++
			}
		}
	}
	return cost / 2 // each pair counted twice
}

func chanInterferes(c1, c2, fMindiff int64) bool {
	d := c1 - c2
	if d < 0 {
		d = -d
	}
	return d < fMindiff
}

// Flow is one unicast traffic demand.
type Flow struct {
	Src, Dst NodeID
	Path     []Link
}

// RandomFlows draws n distinct src/dst pairs.
func (t *Topology) RandomFlows(n int, rng *rand.Rand) []Flow {
	flows := make([]Flow, 0, n)
	for len(flows) < n {
		s := t.Nodes[rng.Intn(len(t.Nodes))]
		d := t.Nodes[rng.Intn(len(t.Nodes))]
		if s == d {
			continue
		}
		flows = append(flows, Flow{Src: s, Dst: d})
	}
	return flows
}

// RoutePaths computes flow paths with Dijkstra over the given link weight
// function (hop count when weight is nil).
func (t *Topology) RoutePaths(flows []Flow, weight func(Link) float64) {
	if weight == nil {
		t.routeHopPaths(flows)
		return
	}
	for i := range flows {
		flows[i].Path = t.shortestPath(flows[i].Src, flows[i].Dst, weight)
	}
}

// routeHopPaths is the hop-count fast path: one breadth-first search per
// flow over index slices instead of the weighted Dijkstra's map-based
// linear-scan extract-min. Each layer is expanded in t.Nodes order, so a
// node's predecessor is the lowest-indexed neighbor of the previous layer
// — exactly the tie-break the weighted code applies on unit weights — and
// the returned paths are identical. On the 10k-node scale-gate grid this
// is the difference between seconds and hours of routing.
func (t *Topology) routeHopPaths(flows []Flow) {
	idx := make(map[NodeID]int32, len(t.Nodes))
	for i, n := range t.Nodes {
		idx[n] = int32(i)
	}
	adj := make([][]int32, len(t.Nodes))
	for i, n := range t.Nodes {
		for _, v := range t.Adj[n] {
			adj[i] = append(adj[i], idx[v])
		}
	}
	prev := make([]int32, len(t.Nodes))
	seen := make([]bool, len(t.Nodes))
	var frontier, next []int32
	for fi := range flows {
		src, okS := idx[flows[fi].Src]
		dst, okD := idx[flows[fi].Dst]
		if !okS || !okD {
			flows[fi].Path = nil
			continue
		}
		for i := range seen {
			seen[i] = false
		}
		seen[src] = true
		frontier = append(frontier[:0], src)
		found := src == dst
		for len(frontier) > 0 && !found {
			next = next[:0]
			for _, u := range frontier {
				for _, v := range adj[u] {
					if !seen[v] {
						seen[v] = true
						prev[v] = u
						next = append(next, v)
						if v == dst {
							found = true
						}
					}
				}
				if found {
					break
				}
			}
			// Expansion order within a layer decides predecessors, so
			// the next frontier must be index-sorted like t.Nodes.
			sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
			frontier, next = next, frontier
		}
		if !found {
			flows[fi].Path = nil
			continue
		}
		var path []Link
		for at := dst; at != src; at = prev[at] {
			path = append(path, orient(t.Nodes[prev[at]], t.Nodes[at]))
		}
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		flows[fi].Path = path
	}
}

func (t *Topology) shortestPath(src, dst NodeID, weight func(Link) float64) []Link {
	const inf = 1e18
	dist := map[NodeID]float64{src: 0}
	prev := map[NodeID]NodeID{}
	visited := map[NodeID]bool{}
	for {
		// Linear-scan extract-min: topologies here are small.
		var u NodeID
		best := inf
		for _, n := range t.Nodes {
			if d, ok := dist[n]; ok && !visited[n] && d < best {
				best, u = d, n
			}
		}
		if best == inf {
			return nil
		}
		if u == dst {
			break
		}
		visited[u] = true
		for _, v := range t.Adj[u] {
			w := 1.0
			if weight != nil {
				w = weight(orient(u, v))
			}
			if nd := dist[u] + w; nd < getOr(dist, v, inf) {
				dist[v] = nd
				prev[v] = u
			}
		}
	}
	var path []Link
	for at := dst; at != src; at = prev[at] {
		p, ok := prev[at]
		if !ok {
			return nil
		}
		path = append(path, orient(p, at))
	}
	// Reverse to src->dst order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

func getOr(m map[NodeID]float64, k NodeID, def float64) float64 {
	if v, ok := m[k]; ok {
		return v
	}
	return def
}

// ThroughputModel evaluates delivered throughput for a set of flows under a
// channel assignment: every loaded link shares its nominal capacity with
// the loaded links interfering with it (always judged under the two-hop
// physical model), and a flow is throttled by its bottleneck link.
type ThroughputModel struct {
	Topo         *Topology
	CapacityMbps float64
	FMindiff     int64
}

// Aggregate returns the network-wide delivered throughput (Mbps) when every
// flow offers ratePerFlow Mbps.
func (m *ThroughputModel) Aggregate(flows []Flow, a Assignment, ratePerFlow float64) float64 {
	load := map[Link]float64{}
	for _, f := range flows {
		for _, l := range f.Path {
			load[l] += ratePerFlow
		}
	}
	// Effective capacity under interference.
	eff := map[Link]float64{}
	for l, ld := range load {
		if ld <= 0 {
			continue
		}
		n := 0
		for _, o := range m.Topo.twoHop[l] {
			if load[o] > 0 && chanInterferes(a[l], a[o], m.FMindiff) {
				n++
			}
		}
		eff[l] = m.CapacityMbps / float64(1+n)
	}
	total := 0.0
	for _, f := range flows {
		if len(f.Path) == 0 {
			continue
		}
		rate := ratePerFlow
		for _, l := range f.Path {
			share := eff[l] / load[l] * ratePerFlow
			if share < rate {
				rate = share
			}
		}
		if rate > 0 {
			total += rate
		}
	}
	return total
}

// GreedyColoring assigns channels link by link, minimizing interference
// with already-colored links in the chosen neighborhood; it is both the
// warm start for the centralized COP and a reference heuristic.
func GreedyColoring(t *Topology, channels []int64, fMindiff int64, twoHop bool) Assignment {
	a := Assignment{}
	for _, l := range t.Links {
		bestC, bestCost := channels[0], 1<<30
		for _, c := range channels {
			if forbidden(t, l, c) {
				continue
			}
			cost := 0
			for _, o := range t.Interferers(l, twoHop) {
				if oc, ok := a[o]; ok && chanInterferes(c, oc, fMindiff) {
					cost++
				}
			}
			if cost < bestCost {
				bestCost, bestC = cost, c
			}
		}
		a[l] = bestC
	}
	return a
}

func forbidden(t *Topology, l Link, c int64) bool {
	for _, end := range []NodeID{l.A, l.B} {
		for _, pc := range t.PrimaryUsers[end] {
			if pc == c {
				return true
			}
		}
	}
	return false
}
