package wireless

import (
	"fmt"

	"repro/internal/cluster"
)

// GridShardPlan partitions a W x H grid spatially: node n(y*w+x) belongs to
// the shard owning its x column (shard = x*shards/w), so each shard is a
// vertical strip of the grid. Negotiation is link-local, which makes
// vertical strips the key-range partition that keeps most negotiation
// traffic (initiator, peer, and two-hop neighborhood) inside one shard —
// only the strip borders cross shards. Addresses outside the n<idx> scheme
// map to shard 0.
func GridShardPlan(w, shards int) cluster.ShardPlan {
	return cluster.ShardPlan{
		Count: shards,
		Of: func(addr string) int {
			var i int
			if _, err := fmt.Sscanf(addr, "n%d", &i); err != nil || i < 0 || w <= 0 {
				return 0
			}
			return (i % w) * shards / w
		},
	}
}
