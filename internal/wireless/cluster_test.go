package wireless

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
)

func clusterTestParams() Params {
	p := DefaultParams()
	p.GridW, p.GridH = 3, 3
	p.NumFlows = 5
	p.SolverMaxNodes = 6000
	p.SolverMaxTime = 0 // node budget only: deterministic
	return p
}

// TestClusterEquivalence: the cluster-run distributed protocol must be
// byte-identical to the sequential loop — assignments (via throughput and
// interference), per-negotiation solver traces, and per-node wire counters.
func TestClusterEquivalence(t *testing.T) {
	p := clusterTestParams()
	seq, err := Run(p, Distributed)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		con, err := RunCluster(p, Distributed, cluster.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.ThroughputMbps, con.ThroughputMbps) || seq.Interference != con.Interference {
			t.Fatalf("workers=%d: assignment-derived series diverged:\nseq %+v\ncon %+v", workers, seq, con)
		}
		if seq.SolverNodes != con.SolverNodes || seq.SolverNodes == 0 {
			t.Fatalf("workers=%d: solver nodes = %d, want %d", workers, con.SolverNodes, seq.SolverNodes)
		}
		if !reflect.DeepEqual(seq.WireStats, con.WireStats) {
			t.Fatalf("workers=%d: wire traces diverged:\nseq %v\ncon %v", workers, seq.WireStats, con.WireStats)
		}
		if seq.Convergence != con.Convergence {
			t.Fatalf("workers=%d: convergence %v vs %v", workers, con.Convergence, seq.Convergence)
		}
	}
}

// TestClusterWavesConverges: the concurrent-wave schedule still produces a
// consistent assignment on a generated grid, with every link assigned.
func TestClusterWavesConverges(t *testing.T) {
	p := ScaledGridParams(5, 4)
	p.Passes = 2
	res, err := RunClusterWaves(p, cluster.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.SolverNodes == 0 {
		t.Fatal("no solver work recorded")
	}
	if len(res.ThroughputMbps) != len(p.Rates) {
		t.Fatalf("throughput series has %d points, want %d", len(res.ThroughputMbps), len(p.Rates))
	}
	if res.ThroughputMbps[0] <= 0 {
		t.Fatal("no delivered throughput")
	}
}

// TestClusterWavesBatchingReducesMessages: per-(epoch,destination)
// batching on the wave schedule cuts messages without changing decisions.
func TestClusterWavesBatchingReducesMessages(t *testing.T) {
	p := ScaledGridParams(4, 3)
	plain, err := RunClusterWaves(p, cluster.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := RunClusterWaves(p, cluster.Options{Workers: 8, BatchDeltas: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Interference != batched.Interference || !reflect.DeepEqual(plain.ThroughputMbps, batched.ThroughputMbps) {
		t.Fatalf("batching changed the assignment: %+v vs %+v", plain, batched)
	}
	var plainMsgs, batchMsgs int64
	for _, st := range plain.WireStats {
		plainMsgs += st.MsgsSent
	}
	for _, st := range batched.WireStats {
		batchMsgs += st.MsgsSent
	}
	if batchMsgs >= plainMsgs {
		t.Fatalf("batching did not reduce messages: %d >= %d", batchMsgs, plainMsgs)
	}
	t.Logf("grid(4x3): %d msgs unbatched, %d batched", plainMsgs, batchMsgs)
}

// TestClusterNodeFailureAndRejoin: dropping a grid node mid-protocol loses
// its traffic; after a restart (reseeded from its NodeSpec) re-negotiating
// its links re-converges the channel assignment — every link assigned and
// symmetric between endpoints.
func TestClusterNodeFailureAndRejoin(t *testing.T) {
	p := clusterTestParams()
	topo := Grid(p.GridW, p.GridH)
	rt, err := newDistributedCluster(topo, p, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	negotiateAll := func() {
		t.Helper()
		for _, l := range passOrder(topo, p, 0) {
			ini, _ := initiatorOf(l)
			if rt.Node(string(ini)) == nil {
				continue // initiator down: link stays unnegotiated
			}
			if _, err := rt.RunEpoch([]cluster.Item{negotiationItem(rt, l)}); err != nil {
				t.Fatal(err)
			}
			rt.Advance(p.NegotiationInterval)
		}
	}
	negotiateAll()
	before := collectAssignment(topo, runtimeNodes(rt, topo))
	if len(before) != len(topo.Links) {
		t.Fatalf("%d links assigned before failure, want %d", len(before), len(topo.Links))
	}

	// Drop the center node; its neighbors keep negotiating (messages to it
	// are lost), then it rejoins with only its seed facts.
	const victim = "n04"
	if err := rt.StopNode(victim); err != nil {
		t.Fatal(err)
	}
	negotiateAll()
	if _, err := rt.RestartNode(victim); err != nil {
		t.Fatal(err)
	}
	rt.Settle()

	// Re-negotiating after the rejoin restores a complete, symmetric
	// assignment: the fresh node relearns neighbor state from the
	// negotiations it initiates and receives.
	negotiateAll()
	negotiateAll()
	rt.Settle()
	after := collectAssignment(topo, runtimeNodes(rt, topo))
	if len(after) != len(topo.Links) {
		t.Fatalf("%d links assigned after rejoin, want %d", len(after), len(topo.Links))
	}
	// Symmetry: both endpoints agree on every link's channel (rule r1
	// replicates the decided channel to the peer).
	nodes := runtimeNodes(rt, topo)
	for _, l := range topo.Links {
		chans := map[int64]bool{}
		for _, end := range []NodeID{l.A, l.B} {
			for _, row := range nodes[end].Rows("assign") {
				if NodeID(row[0].S) != end {
					continue
				}
				if orient(NodeID(row[0].S), NodeID(row[1].S)) == l {
					chans[row[2].I] = true
				}
			}
		}
		if len(chans) > 1 {
			t.Fatalf("link %s endpoints disagree on channel: %v", l, chans)
		}
	}
}
