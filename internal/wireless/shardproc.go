package wireless

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/programs"
)

// This file is the multi-process deployment harness: RunShardProcess is
// what each OS process of a sharded wireless run executes (`cologne
// -shard-id N -shard-peers ...` and the multi-process smoke gate both call
// it). The processes bring the deployment up in three phases — register
// every local node, barrier until every shard is reachable, then seed — and
// afterwards negotiate in token lockstep: a control-frame token walks the
// global negotiation order so exactly one shard negotiates per slot while
// every other shard runs an empty epoch to keep epoch numbers (and the
// rollup) aligned. See docs/sharding.md.

// ShardProcessConfig configures one process of a multi-process wireless
// deployment.
type ShardProcessConfig struct {
	// ShardID and Endpoints mirror cluster.Options: Endpoints lists every
	// shard's UDP endpoint (index = shard id), ShardID picks this process.
	ShardID   int
	Endpoints []string
	// Aggregation is the epoch-summary policy (default rollup).
	Aggregation string
	// Interval is the real-time settle window after each negotiation slot,
	// long enough for the decision to replicate across processes before the
	// next slot's solve reads it (default 30ms).
	Interval time.Duration
	// Timeout bounds each barrier and token wait (default 20s).
	Timeout time.Duration
}

// ShardProcessReport is one process's contribution to a sharded run.
type ShardProcessReport struct {
	ShardID int
	// Epochs is how many epochs (negotiation slots) the process ran.
	Epochs int
	// Assignment maps "a-b" link names to the negotiated channel, as
	// materialized on this process's locally-owned nodes.
	Assignment map[string]int64
	// RemoteMsgs and RemoteBytes count the cross-shard node frames this
	// process put on the wire — the traffic that would cross the network in
	// a scaled-out deployment.
	RemoteMsgs, RemoteBytes int64
	// Summary is the completed cluster-level rollup this process observed
	// (under rollup aggregation only shard 0 sees one).
	Summary *cluster.ShardSummary
}

// shardProc tracks the control-plane state: barriers and the lockstep token.
type shardProc struct {
	mu     sync.Mutex
	cond   *sync.Cond
	hello  map[int]bool
	seeded map[int]bool
	done   map[int]bool
	token  int

	pubMu     sync.Mutex
	published map[string]int64 // link -> channel snapshot for lookups
}

func newShardProc() *shardProc {
	p := &shardProc{
		hello:  map[int]bool{},
		seeded: map[int]bool{},
		done:   map[int]bool{},
		// token 0 is implicitly granted once seeding completes; the map
		// tracks the highest token seen so rebroadcasts heal lost frames.
		published: map[string]int64{},
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// handle is the shard transport's control handler. Frames are plain text:
// "hello <shard>", "seeded <shard>", "tok <k>", "done <shard>" drive the
// lockstep; "lookup <node>" is the load-driver query answered from the
// published decision snapshot.
func (s *shardProc) handle(req []byte) []byte {
	fields := strings.Fields(string(req))
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "hello", "seeded", "done":
		if len(fields) != 2 {
			return nil
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil
		}
		s.mu.Lock()
		map[string]map[int]bool{"hello": s.hello, "seeded": s.seeded, "done": s.done}[fields[0]][id] = true
		s.cond.Broadcast()
		s.mu.Unlock()
	case "tok":
		if len(fields) != 2 {
			return nil
		}
		k, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil
		}
		s.mu.Lock()
		if k > s.token {
			s.token = k
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	case "lookup":
		if len(fields) != 2 {
			return nil
		}
		return []byte(s.lookup(fields[1]))
	}
	return nil
}

// lookup renders the published channels of every link the node
// participates in, sorted for determinism: "a-b=c;..." ("none" when the
// node has no published links here).
func (s *shardProc) lookup(node string) string {
	s.pubMu.Lock()
	var hits []string
	for link, ch := range s.published {
		a, b, ok := strings.Cut(link, "-")
		if ok && (a == node || b == node) {
			hits = append(hits, fmt.Sprintf("%s=%d", link, ch))
		}
	}
	s.pubMu.Unlock()
	if len(hits) == 0 {
		return "none"
	}
	sort.Strings(hits)
	return strings.Join(hits, ";")
}

// publish refreshes the lookup snapshot from the locally-owned nodes.
func (s *shardProc) publish(rt *cluster.Runtime, t *Topology, local []NodeID) {
	snap := map[string]int64{}
	for _, n := range local {
		node := rt.Node(string(n))
		if node == nil {
			continue
		}
		for _, row := range node.Rows("assign") {
			if NodeID(row[0].S) != n {
				continue
			}
			snap[orient(n, NodeID(row[1].S)).String()] = row[2].I
		}
	}
	s.pubMu.Lock()
	s.published = snap
	s.pubMu.Unlock()
}

// RunShardProcess executes one shard of a multi-process wireless
// deployment end to end: build the (deterministic) topology, bring the
// shard's nodes up behind the hello barrier, seed, then walk the global
// negotiation order in token lockstep. Every process of the deployment
// must be started with the same Params and Endpoints.
func RunShardProcess(p Params, cfg ShardProcessConfig) (*ShardProcessReport, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 20 * time.Second
	}
	if cfg.Aggregation == "" {
		cfg.Aggregation = cluster.AggregationRollup
	}
	shards := len(cfg.Endpoints)
	topo := Grid(p.GridW, p.GridH)
	rng := rand.New(rand.NewSource(p.Seed))
	if p.RestrictedChannels {
		restrictChannels(topo, p.Channels, rng)
	}
	plan := GridShardPlan(p.GridW, shards)

	rt, err := cluster.NewMultiProcess(cluster.Options{
		Shards:         plan,
		Aggregation:    cfg.Aggregation,
		ShardID:        cfg.ShardID,
		ShardEndpoints: cfg.Endpoints,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	proc := newShardProc()
	tr := rt.ShardTransport()
	tr.SetControlHandler(proc.handle)

	// Phase 1 — register every local node, seeds deferred: a seed fact can
	// replicate to a node of another process, so no shard may seed until
	// every shard has registered its nodes.
	entry := programs.WirelessDistributed(p.FMindiff, p.TwoHopCost)
	ares := entry.Analyze()
	var local []NodeID
	for _, n := range topo.Nodes {
		spec := cluster.NodeSpec{
			Addr:    string(n),
			Program: ares,
			Config:  distributedConfig(p, entry),
		}
		node, err := rt.Spawn(spec)
		if err != nil {
			return nil, err
		}
		if node != nil {
			local = append(local, n)
		}
	}

	broadcast := func(msg string) {
		for s := 0; s < shards; s++ {
			tr.SendControl(s, []byte(msg)) //nolint:errcheck — barriers rebroadcast
		}
	}
	barrier := func(name string, seen map[int]bool) error {
		deadline := time.Now().Add(cfg.Timeout)
		for {
			broadcast(fmt.Sprintf("%s %d", name, cfg.ShardID))
			proc.mu.Lock()
			ok := len(seen) == shards
			proc.mu.Unlock()
			if ok {
				return nil
			}
			if time.Now().After(deadline) {
				proc.mu.Lock()
				got := len(seen)
				proc.mu.Unlock()
				return fmt.Errorf("wireless: shard %d: %s barrier timed out (%d/%d shards)", cfg.ShardID, name, got, shards)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Phase 2 — hello barrier: every shard's endpoint is up and its nodes
	// registered.
	if err := barrier("hello", proc.hello); err != nil {
		return nil, err
	}

	// Phase 3 — seed the local nodes; cross-shard seed deltas now route to
	// live handlers. A second barrier keeps fast shards from negotiating
	// against half-seeded peers.
	for _, n := range local {
		if err := seedWirelessNode(rt.Node(string(n)), topo, p, n); err != nil {
			return nil, fmt.Errorf("wireless: seeding %s: %w", n, err)
		}
	}
	if err := barrier("seeded", proc.seeded); err != nil {
		return nil, err
	}
	time.Sleep(cfg.Interval) // let seed replication drain

	// Token lockstep over the global negotiation order. The owner of slot k
	// negotiates; every other shard runs an empty epoch k so the per-epoch
	// rollup folds one summary from every shard. The owner then settles and
	// advances the token. Waiters rebroadcast their token to heal drops.
	waitToken := func(k int) error {
		deadline := time.Now().Add(cfg.Timeout)
		proc.mu.Lock()
		defer proc.mu.Unlock()
		for proc.token < k {
			proc.mu.Unlock()
			broadcast(fmt.Sprintf("tok %d", k-1))
			time.Sleep(5 * time.Millisecond)
			proc.mu.Lock()
			if proc.token >= k {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("wireless: shard %d: token %d timed out at %d", cfg.ShardID, k, proc.token)
			}
		}
		return nil
	}

	slot := 0
	for pass := 0; pass < maxInt(1, p.Passes); pass++ {
		for _, l := range passOrder(topo, p, pass) {
			if err := waitToken(slot); err != nil {
				return nil, err
			}
			initiator, _ := initiatorOf(l)
			if plan.Of(string(initiator)) == cfg.ShardID {
				if _, err := rt.RunEpoch([]cluster.Item{negotiationItem(rt, l)}); err != nil {
					return nil, err
				}
				proc.publish(rt, topo, local)
				time.Sleep(cfg.Interval)
				broadcast(fmt.Sprintf("tok %d", slot+1))
			} else {
				if _, err := rt.RunEpoch(nil); err != nil {
					return nil, err
				}
			}
			slot++
		}
	}
	if err := waitToken(slot); err != nil {
		return nil, err
	}
	proc.publish(rt, topo, local)

	// Final barrier, then a settle window so the last slot's rollup frames
	// reach the root before the report is cut.
	if err := barrier("done", proc.done); err != nil {
		return nil, err
	}
	time.Sleep(cfg.Interval)

	rep := &ShardProcessReport{
		ShardID:    cfg.ShardID,
		Epochs:     slot,
		Assignment: map[string]int64{},
	}
	for _, n := range local {
		node := rt.Node(string(n))
		if node == nil {
			continue
		}
		for _, row := range node.Rows("assign") {
			if NodeID(row[0].S) != n {
				continue
			}
			rep.Assignment[orient(n, NodeID(row[1].S)).String()] = row[2].I
		}
	}
	rep.RemoteMsgs, rep.RemoteBytes = tr.RemoteWire()
	if sum, ok := rt.ClusterSummary(); ok {
		rep.Summary = &sum
	}
	return rep, nil
}
