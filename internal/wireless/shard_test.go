package wireless

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
)

func TestGridShardPlan(t *testing.T) {
	// 4-wide grid, 2 shards: columns 0-1 -> shard 0, columns 2-3 -> shard 1.
	plan := GridShardPlan(4, 2)
	for addr, want := range map[string]int{"n00": 0, "n01": 0, "n02": 1, "n03": 1, "n05": 0, "n07": 1} {
		if got := plan.Of(addr); got != want {
			t.Fatalf("plan(%s) = %d, want %d", addr, got, want)
		}
	}
	if got := plan.Of("!shard/1"); got != 0 {
		t.Fatalf("non-node address mapped to shard %d, want 0", got)
	}
}

// TestClusterShardEquivalence pins the sharding acceptance criterion on the
// wireless scenario: partitioning the grid into spatial shards with rollup
// aggregation changes nothing about the run — assignments, solver traces,
// and per-node wire counters all stay byte-identical to the unsharded wave
// schedule; the shards only add the separately-counted aggregator frames.
func TestClusterShardEquivalence(t *testing.T) {
	p := ScaledGridParams(5, 4)
	plain, err := RunClusterWaves(p, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2} {
		sharded, err := RunClusterWaves(p, cluster.Options{
			Workers:     4,
			Shards:      GridShardPlan(p.GridW, shards),
			Aggregation: cluster.AggregationRollup,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.ThroughputMbps, sharded.ThroughputMbps) || plain.Interference != sharded.Interference {
			t.Fatalf("shards=%d: assignment-derived series diverged:\nplain %+v\nsharded %+v", shards, plain, sharded)
		}
		if plain.SolverNodes != sharded.SolverNodes || plain.SolverNodes == 0 {
			t.Fatalf("shards=%d: solver nodes = %d, want %d", shards, sharded.SolverNodes, plain.SolverNodes)
		}
		if !reflect.DeepEqual(plain.WireStats, sharded.WireStats) {
			t.Fatalf("shards=%d: wire traces diverged:\nplain %v\nsharded %v", shards, plain.WireStats, sharded.WireStats)
		}
	}
}

// TestClusterWavesWaveLimit: the scale gates cap the waves per pass; the
// capped run negotiates exactly the first wave's links.
func TestClusterWavesWaveLimit(t *testing.T) {
	p := ScaledGridParams(5, 4)
	p.WaveLimit = 1
	p.Passes = 1
	res, err := RunClusterWaves(p, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	topo := Grid(p.GridW, p.GridH)
	first := waves(passOrder(topo, p, 0))[0]
	if res.SolverNodes == 0 {
		t.Fatal("no solver work recorded")
	}
	if got := res.PerNodeKBps; got < 0 {
		t.Fatalf("negative wire rate %v", got)
	}
	if len(first) == 0 || len(first) >= len(topo.Links) {
		t.Fatalf("first wave has %d links of %d — not a strict prefix", len(first), len(topo.Links))
	}
}
