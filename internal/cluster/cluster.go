// Package cluster is the concurrent multi-node runtime: it hosts N Cologne
// instances over one shared transport and executes their tick/solve/exchange
// rounds as epochs on a worker pool. It is the layer the paper's
// "distributed deployment" claim actually runs on — scenario harnesses
// describe *what* each node does per round (an Item), and the runtime owns
// *how* the round executes: concurrency, message ordering, node lifecycle
// (spawn/stop/restart), failure injection, and per-epoch statistics.
//
// Two execution modes mirror the two transports:
//
//   - Simulation (ModeSim): deliveries are events on a sim.Scheduler. Epochs
//     run items concurrently but stage every outgoing message in a per-item
//     buffer; an epoch barrier then replays the buffers into the simulated
//     network in item order. Because the scheduler never advances during the
//     concurrent phase, the resulting event schedule — and therefore every
//     table, objective, and byte counter — is identical to running the items
//     sequentially. The scenario equivalence suites
//     (TestClusterEquivalence in acloud/followsun/wireless) pin this.
//
//   - UDP (ModeUDP): real sockets, free-running rounds. Items still execute
//     on the pool, but messages leave immediately and deliveries interleave
//     with item execution, as they would in the paper's implementation mode.
//
// Failure injection goes through transport.FailureInjector: StopNode drops
// a node (its traffic is lost in flight), RestartNode rebuilds it from its
// NodeSpec, and PartitionLink/HealLink cut individual links. docs/
// distribution.md walks through the design.
package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/transport"
)

// Mode selects the deployment mode of a Runtime.
type Mode int

const (
	// ModeSim runs over the deterministic simulated network (the ns-3
	// role): virtual time, epoch barrier, byte-identical to sequential.
	ModeSim Mode = iota
	// ModeUDP runs over real loopback sockets (the paper's implementation
	// mode): wall-clock time, free-running asynchronous rounds.
	ModeUDP
)

// Options configure a Runtime.
type Options struct {
	// Mode selects simulated or UDP transport (default ModeSim).
	Mode Mode
	// Workers bounds the epoch worker pool; 0 derives from GOMAXPROCS
	// (capped at 8), 1 forces sequential execution. Results in ModeSim are
	// identical at any setting.
	Workers int
	// Scheduling selects the order items are started in within an epoch:
	// SchedulingCost (the default) runs predicted-expensive items first so
	// the long poles overlap the cheap tail, SchedulingFIFO keeps slice
	// order. Pure scheduling — results are identical either way; only the
	// epoch's wall time changes.
	Scheduling string
	// Latency is the simulated one-way link latency (ModeSim only).
	Latency time.Duration
	// BatchDeltas holds each item's outgoing deltas for the whole item and
	// flushes them as one batch frame per (epoch, destination) — fewer,
	// larger messages with identical contents. Spawn forces the node-level
	// Config.BatchDeltas knob on to match. Message counts differ from
	// unbatched runs, so equivalence tests leave this off.
	BatchDeltas bool
	// CheckpointEvery, when positive, exports a checkpoint of every live
	// node after each N-th epoch (core.Node.ExportCheckpoint: full table
	// state with arrival-order seq numbers, aggregate views, replica
	// mirrors). RestartNode then rebuilds a failed node from its latest
	// checkpoint instead of replaying Seed, and the anti-entropy resync
	// pulls only what the cluster decided since — checkpoint + delta resync
	// instead of full state transfer. See docs/recovery.md.
	CheckpointEvery int
	// DisableResync turns off the automatic anti-entropy digest exchange
	// that RestartNode otherwise runs between the restarted node and every
	// live peer. With it set, re-convergence is back to being the
	// protocol's job, as before the recovery subsystem.
	DisableResync bool
	// ResyncTimeout bounds how long RestartNode waits for the UDP-mode
	// resync exchanges to drain (simulated runs settle deterministically
	// instead). Zero means 3s.
	ResyncTimeout time.Duration
	// AfterEpoch, when non-nil, runs after every epoch's statistics are
	// recorded, outside the epoch critical section — the hook may stop and
	// restart nodes (failure-injection scripts use it to crash a node
	// between epochs). A returned error fails the RunEpoch call.
	AfterEpoch func(r *Runtime, epoch int) error
	// Storage selects the per-node storage backend: "" or "memory" keeps
	// every node's state in RAM (the pre-storage behavior), "disk" gives
	// each node a write-ahead delta log plus spill tables under its own
	// subdirectory of StorageDir (see internal/store and docs/storage.md).
	// With "disk", RestartNode rebuilds a failed node by replaying its
	// local log before the anti-entropy resync, so resync pulls only the
	// outage window instead of the node's whole history.
	Storage string
	// StorageDir is the root directory for "disk" storage; empty means a
	// temporary directory that Close removes.
	StorageDir string
	// StorageFsync forces an fsync after every log append ("disk" only):
	// the paper-grade durability guarantee, at a heavy per-update cost.
	// Off, durability extends to what the OS has flushed — crash-consistent
	// either way, since replay drops any torn tail.
	StorageFsync bool
	// Shards partitions the node address space into key-range shards (see
	// docs/sharding.md). The zero value is one implicit shard, which keeps
	// every run byte-identical to the pre-sharding runtime.
	Shards ShardPlan
	// Aggregation selects how per-shard epoch summaries reach the
	// cluster-level rollup: "" or AggregationOff (none, the default),
	// AggregationRollup (fanout tree, one frame per shard per epoch), or
	// AggregationAllPairs (every shard to every shard — the gossip baseline
	// rollup is measured against).
	Aggregation string
	// AggFanout is the rollup tree's fanout; values below 2 mean 4.
	AggFanout int
	// ShardID and ShardEndpoints configure multi-process operation through
	// NewMultiProcess: ShardEndpoints lists every shard's UDP endpoint
	// (index = shard id) and ShardID selects this process's entry. New
	// ignores both.
	ShardID        int
	ShardEndpoints []string
}

// NodeSpec describes how to build — and after a failure, rebuild — one
// node: its address, analyzed program, engine configuration, and a Seed
// hook that inserts the node's base facts. RestartNode replays the spec, so
// everything a rejoining node must know has to come from Seed or from
// neighbors re-sending state.
type NodeSpec struct {
	Addr    string
	Program *analysis.Result
	Config  core.Config
	// Seed, when non-nil, loads the node's base facts after every (re)spawn.
	Seed func(n *core.Node) error
}

type member struct {
	spec NodeSpec
	node *core.Node
	down bool
	// shard is the node's owning shard under Options.Shards (0 unsharded).
	shard int
	// checkpoint is the node's most recent exported state (nil before the
	// first checkpoint).
	checkpoint []byte
}

// Runtime hosts the cluster: nodes, transport, scheduler, and epoch state.
// Methods are not safe for concurrent use except from within RunEpoch items
// as documented on Item.
type Runtime struct {
	opts    Options
	sched   *sim.Scheduler // nil in ModeUDP
	inner   transport.Transport
	staged  *stagedTransport // nil in ModeUDP
	members map[string]*member
	order   []string

	epoch       int
	costs       map[string]float64 // per-label EWMA of item wall seconds
	history     []EpochStats
	lastWire    map[string]transport.Stats
	retiredWire transport.Stats // counters retired by restart-time resets
	lastResync  map[string]core.ResyncStats
	lastLog     map[string][2]int64 // per-addr (records, bytes) log snapshots
	inEpoch     bool
	lastDrops   int64
	started     time.Time // ModeUDP epoch for Now()

	// Sharding (shard.go, rollup.go): the multi-process transport (nil in
	// single-process modes), the addresses owned by peer processes, the
	// locally-hosted epoch aggregators, and the rollup state they feed.
	shardUDP        *transport.ShardUDP
	remote          map[string]int // addr -> owning shard, multi-process only
	aggs            map[int]*shardAgg
	lastAggWire     map[string]transport.Stats
	rollupMu        sync.Mutex
	rollupLatest    *ShardSummary
	rollupFrameHook func(frame []byte) // test hook: observes encoded rollup frames

	// Serving mode (serving.go): continuous-optimization servers attached
	// to the runtime, ticked in attachment order by ServeRound.
	serving        map[string]*serve.Server
	servingOrder   []string
	servingHistory []TickStats

	// Disk-storage root: opts.StorageDir, or a lazily created temp dir
	// (ownStoreDir) that Close removes.
	storeDir    string
	ownStoreDir bool
}

// newRuntime allocates the transport-independent runtime state shared by
// New and NewMultiProcess.
func newRuntime(o Options) *Runtime {
	return &Runtime{
		opts:        o,
		members:     map[string]*member{},
		remote:      map[string]int{},
		costs:       map[string]float64{},
		lastWire:    map[string]transport.Stats{},
		lastResync:  map[string]core.ResyncStats{},
		lastLog:     map[string][2]int64{},
		lastAggWire: map[string]transport.Stats{},
	}
}

// startClock begins the wall-clock epoch for free-running (non-simulated)
// modes.
func (r *Runtime) startClock() { r.started = time.Now() }

// New creates an empty cluster runtime.
func New(o Options) *Runtime {
	r := newRuntime(o)
	if o.Mode == ModeUDP {
		r.inner = transport.NewUDP()
		r.startClock()
		r.ensureAggregators()
		return r
	}
	r.sched = sim.NewScheduler()
	r.inner = transport.NewSim(r.sched, o.Latency)
	r.staged = &stagedTransport{inner: r.inner}
	r.ensureAggregators()
	return r
}

// nodeTransport is what spawned nodes register against: the staging wrapper
// in simulation mode, the real transport in UDP mode.
func (r *Runtime) nodeTransport() transport.Transport {
	if r.staged != nil {
		return r.staged
	}
	return r.inner
}

// Spawn builds the node described by spec, registers it on the cluster
// transport, runs spec.Seed, and adds it to the cluster. In multi-process
// mode a spec whose shard belongs to a peer process is recorded as remote
// and skipped — Spawn returns (nil, nil) and cross-shard traffic to it is
// routed over the shard transport.
func (r *Runtime) Spawn(spec NodeSpec) (*core.Node, error) {
	if _, dup := r.members[spec.Addr]; dup {
		return nil, fmt.Errorf("cluster: duplicate node address %q", spec.Addr)
	}
	shard := r.opts.Shards.of(spec.Addr)
	if r.shardUDP != nil && shard != r.opts.ShardID {
		if prev, dup := r.remote[spec.Addr]; dup && prev != shard {
			return nil, fmt.Errorf("cluster: remote node %q re-registered on shard %d (was %d)", spec.Addr, shard, prev)
		}
		r.remote[spec.Addr] = shard
		return nil, nil
	}
	if r.opts.BatchDeltas {
		spec.Config.BatchDeltas = true
	}
	if r.workerCap() > 1 {
		// The epoch pool already runs one goroutine per core (capped); a
		// per-node grounding pool nested inside each item would
		// oversubscribe the scheduler and slow everything down. Grounding
		// results are identical at any GroundWorkers setting (merged in
		// rule order — see core.Config), so force the nested pools serial.
		spec.Config.GroundWorkers = 1
	}
	if err := r.attachStorage(&spec); err != nil {
		return nil, fmt.Errorf("cluster: storage for %s: %w", spec.Addr, err)
	}
	n, err := core.NewNode(spec.Addr, spec.Program, spec.Config, r.nodeTransport())
	if err != nil {
		return nil, fmt.Errorf("cluster: spawning %s: %w", spec.Addr, err)
	}
	if spec.Seed != nil {
		if err := spec.Seed(n); err != nil {
			return nil, fmt.Errorf("cluster: seeding %s: %w", spec.Addr, err)
		}
	}
	r.members[spec.Addr] = &member{spec: spec, node: n, shard: shard}
	r.order = append(r.order, spec.Addr)
	return n, nil
}

// SpawnAll builds and registers every node first, then runs the Seed hooks
// in spec order. Use it when seed facts ship to other cluster nodes (rule
// localization replicates base facts to neighbors): with Spawn, a fact
// could be addressed to a node that is not registered yet. This mirrors how
// the sequential scenario loops construct all instances before inserting
// facts.
func (r *Runtime) SpawnAll(specs []NodeSpec) error {
	seeds := make([]func(n *core.Node) error, len(specs))
	nodes := make([]*core.Node, len(specs))
	for i := range specs {
		spec := specs[i]
		seeds[i], spec.Seed = spec.Seed, nil
		n, err := r.Spawn(spec)
		if err != nil {
			return err
		}
		if n == nil {
			continue // remote spec (multi-process mode): a peer seeds it
		}
		// Keep the original Seed in the stored spec so RestartNode replays it.
		r.members[spec.Addr].spec.Seed = seeds[i]
		nodes[i] = n
	}
	for i, seed := range seeds {
		if seed == nil || nodes[i] == nil {
			continue
		}
		if err := seed(nodes[i]); err != nil {
			return fmt.Errorf("cluster: seeding %s: %w", specs[i].Addr, err)
		}
	}
	return nil
}

// Node returns the live instance at addr, or nil when unknown or stopped.
func (r *Runtime) Node(addr string) *core.Node {
	m := r.members[addr]
	if m == nil || m.down {
		return nil
	}
	return m.node
}

// Addrs lists the cluster's node addresses in spawn order, including
// stopped nodes.
func (r *Runtime) Addrs() []string { return append([]string(nil), r.order...) }

// Scheduler returns the simulation scheduler (nil in ModeUDP).
func (r *Runtime) Scheduler() *sim.Scheduler { return r.sched }

// Now returns the cluster's elapsed time: virtual time in simulation
// mode, wall-clock time since New in UDP mode. Use it instead of
// Scheduler().Now() in code that runs in either mode.
func (r *Runtime) Now() time.Duration {
	if r.sched != nil {
		return r.sched.Now()
	}
	return time.Since(r.started)
}

// Transport returns the underlying transport, for byte counters and
// latency overrides.
func (r *Runtime) Transport() transport.Transport { return r.inner }

// Advance moves the cluster forward by d: simulated runs execute all
// network events due within d of virtual time; UDP runs sleep, letting the
// sockets drain.
func (r *Runtime) Advance(d time.Duration) {
	if r.sched != nil {
		r.sched.Run(r.sched.Now() + d)
		return
	}
	time.Sleep(d)
}

// Settle drains the network: simulated runs execute events until none
// remain (bounded to guard against runaway loops), UDP runs sleep briefly.
func (r *Runtime) Settle() {
	if r.sched != nil {
		r.sched.RunUntilIdle(1_000_000)
		return
	}
	time.Sleep(50 * time.Millisecond)
}

// attachStorage opens the node's storage backend per Options.Storage and
// installs it in the spec's Config. The opened Store lives in the stored
// spec, so a restart hands the same backend — the node's log and table
// files — back to the rebuilt instance.
func (r *Runtime) attachStorage(spec *NodeSpec) error {
	switch r.opts.Storage {
	case "", "memory":
		return nil // per-node private memory backend, opened by the node
	case "disk":
	default:
		return fmt.Errorf("unknown storage kind %q (want memory or disk)", r.opts.Storage)
	}
	if spec.Config.Storage != nil {
		return nil // caller supplied a backend; keep it
	}
	if r.storeDir == "" {
		if r.opts.StorageDir != "" {
			r.storeDir = r.opts.StorageDir
		} else {
			dir, err := os.MkdirTemp("", "cologne-store-")
			if err != nil {
				return err
			}
			r.storeDir = dir
			r.ownStoreDir = true
		}
	}
	st, err := store.Open("disk", filepath.Join(r.storeDir, sanitizeAddr(spec.Addr)), r.opts.StorageFsync)
	if err != nil {
		return err
	}
	spec.Config.Storage = st
	return nil
}

// sanitizeAddr maps a node address onto filesystem-safe characters (UDP
// addresses contain colons).
func sanitizeAddr(addr string) string {
	out := make([]byte, len(addr))
	for i := 0; i < len(addr); i++ {
		c := addr[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Close releases transport resources (UDP sockets), closes every node's
// storage backend, and removes the storage root if the runtime created it.
func (r *Runtime) Close() error {
	err := r.inner.Close()
	for _, m := range r.members {
		if st := m.spec.Config.Storage; st != nil {
			if cerr := st.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	if r.ownStoreDir && r.storeDir != "" {
		if rerr := os.RemoveAll(r.storeDir); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}
