package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// Item is one unit of epoch work: a closure driving inserts, deletes, and
// at most one solve against the nodes it names. Items of one epoch run
// concurrently, so they must name every node they touch in Nodes and two
// items of the same epoch may not share a node — RunEpoch rejects overlaps,
// because overlap is exactly what would make the concurrent schedule
// diverge from the sequential one. Run may return the item's SolveResult
// for the epoch statistics (nil is fine).
type Item struct {
	// Label identifies the item in errors ("negotiate dc3-dc1") and keys
	// the cost-aware scheduler's history: items that keep the same label
	// across epochs are predicted from their past run times.
	Label string
	// Nodes lists every node address Run touches.
	Nodes []string
	// Run does the work. It must only touch the listed nodes.
	Run func() (*core.SolveResult, error)
}

// Scheduling policies for Options.Scheduling.
const (
	// SchedulingCost starts items in descending predicted-cost order: an
	// exponentially weighted average of each label's past wall time, with
	// never-seen labels first (their cost is unknown, so assume the worst).
	// Starting the long poles early minimizes the epoch's makespan when
	// item costs are skewed. This is the default.
	SchedulingCost = "cost"
	// SchedulingFIFO dispatches items in slice order, the pre-scheduler
	// behavior.
	SchedulingFIFO = "fifo"
)

// RunEpoch executes one epoch of items on the worker pool and returns its
// statistics.
//
// In ModeSim the epoch is deterministic: outgoing messages stage in
// per-item buffers while items run concurrently, and the epoch barrier
// replays them into the simulated network in item order. No scheduler event
// runs during the concurrent phase, so the post-barrier event schedule is
// exactly what sequential item execution would have produced — regardless
// of worker count or scheduling policy, which only change when items
// *start*, never how their output is ordered. In ModeUDP items free-run:
// messages leave as they are produced and deliveries interleave with
// execution.
//
// The returned stats cover the wire traffic since the previous epoch ended;
// traffic triggered by a later Advance/Settle is folded into this epoch's
// History entry when the next epoch (or History) closes the window.
func (r *Runtime) RunEpoch(items []Item) (EpochStats, error) {
	if r.inEpoch {
		return EpochStats{}, fmt.Errorf("cluster: RunEpoch is not reentrant")
	}
	order, err := r.itemOrder(items)
	if err != nil {
		return EpochStats{}, err
	}
	aggMode, err := r.aggKind()
	if err != nil {
		return EpochStats{}, err
	}
	owner := map[string]int{}
	for i, it := range items {
		if len(it.Nodes) == 0 {
			return EpochStats{}, fmt.Errorf("cluster: item %d (%s) names no nodes", i, it.Label)
		}
		for _, addr := range it.Nodes {
			m := r.members[addr]
			if m == nil {
				if shard, remote := r.remote[addr]; remote {
					return EpochStats{}, fmt.Errorf("cluster: item %d (%s) names node %q owned by shard %d (this process is shard %d)",
						i, it.Label, addr, shard, r.opts.ShardID)
				}
				return EpochStats{}, fmt.Errorf("cluster: item %d (%s) names unknown node %q", i, it.Label, addr)
			}
			if m.down {
				return EpochStats{}, fmt.Errorf("cluster: item %d (%s) names stopped node %q", i, it.Label, addr)
			}
			if prev, clash := owner[addr]; clash {
				return EpochStats{}, fmt.Errorf("cluster: items %d and %d both touch node %q", prev, i, addr)
			}
			owner[addr] = i
		}
	}
	r.inEpoch = true
	defer func() { r.inEpoch = false }()
	r.closeWindow() // attribute settle traffic to the previous epoch

	if r.staged != nil {
		r.staged.begin(owner, len(items))
	}
	results := make([]*core.SolveResult, len(items))
	errs := make([]error, len(items))
	itemWall := make([]time.Duration, len(items))
	flushWall := make([]time.Duration, len(items))
	execStart := time.Now()
	r.runPool(order, func(i int) {
		itemStart := time.Now()
		it := &items[i]
		if r.opts.BatchDeltas {
			for _, addr := range it.Nodes {
				r.members[addr].node.HoldOutbox(true)
			}
		}
		results[i], errs[i] = it.Run()
		if r.opts.BatchDeltas {
			flushStart := time.Now()
			for _, addr := range it.Nodes {
				n := r.members[addr].node
				n.HoldOutbox(false)
				if err := n.FlushOutbox(); err != nil && errs[i] == nil {
					errs[i] = err
				}
			}
			flushWall[i] = time.Since(flushStart)
		}
		itemWall[i] = time.Since(itemStart)
	})
	execWall := time.Since(execStart)
	var barrierWall time.Duration
	if r.staged != nil {
		barrierStart := time.Now()
		err := r.staged.commit()
		barrierWall = time.Since(barrierStart)
		if err != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = err
					break
				}
			}
		}
	}

	st := EpochStats{
		Epoch:       r.epoch,
		Items:       len(items),
		ExecWall:    execWall,
		BarrierWall: barrierWall,
	}
	r.epoch++
	var firstErr error
	for i, res := range results {
		if errs[i] != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: item %d (%s): %w", i, items[i].Label, errs[i])
		}
		st.FlushWall += flushWall[i]
		if itemWall[i] > st.LongestWall {
			st.LongestWall = itemWall[i]
			st.LongestItem = items[i].Label
		}
		r.observeCost(items[i].Label, itemWall[i])
		if res == nil {
			continue
		}
		st.Solves++
		st.SolverNodes += res.Stats.Nodes
		st.GroundWall += res.GroundWall
		st.SolveWall += res.Stats.Elapsed
		if res.Ground != nil {
			st.ConstsPatched += res.Ground.ConstsPatched
		}
	}
	var perShard []transport.Stats
	if aggMode != AggregationOff {
		perShard = make([]transport.Stats, r.opts.Shards.shardCount())
	}
	d, drops := r.wireDelta(perShard)
	st.MsgsSent, st.BytesSent = d.MsgsSent, d.BytesSent
	st.MsgsDropped = drops
	st.ResyncRows, st.ResyncBytes = r.resyncDelta()
	st.LogRecords, st.LogBytes = r.logDelta()
	st.Shards = r.opts.Shards.shardCount()
	r.history = append(r.history, st)

	// Per-shard epoch summaries feed the hierarchical rollup. Their
	// aggregator traffic is windowed like settle traffic: folded into this
	// epoch's history entry when the window next closes.
	if aggMode != AggregationOff {
		r.emitShardSummaries(r.shardSummaries(st, items, results, perShard))
	}

	// Periodic checkpointing: every node's quiescent post-epoch state
	// becomes the restart point for failures until the next checkpoint.
	if n := r.opts.CheckpointEvery; n > 0 && (st.Epoch+1)%n == 0 {
		if err := r.checkpointAll(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// The AfterEpoch hook runs outside the epoch critical section so
	// failure scripts can stop and restart nodes from it.
	r.inEpoch = false
	if r.opts.AfterEpoch != nil {
		if err := r.opts.AfterEpoch(r, st.Epoch); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return st, firstErr
}

// itemOrder resolves the scheduling policy into the order items are handed
// to the worker pool. Results are order-independent (the barrier replays
// output in item order), so this only shapes the epoch's makespan.
func (r *Runtime) itemOrder(items []Item) ([]int, error) {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	switch r.opts.Scheduling {
	case SchedulingFIFO:
		return order, nil
	case "", SchedulingCost:
	default:
		return nil, fmt.Errorf("cluster: unknown scheduling policy %q (want %q or %q)",
			r.opts.Scheduling, SchedulingCost, SchedulingFIFO)
	}
	cost := make([]float64, len(items))
	for i, it := range items {
		if c, ok := r.costs[it.Label]; ok {
			cost[i] = c
		} else {
			cost[i] = math.Inf(1)
		}
	}
	// Stable sort on an identity permutation: equal costs keep item order.
	sort.SliceStable(order, func(a, b int) bool { return cost[order[a]] > cost[order[b]] })
	return order, nil
}

// costEWMAAlpha weights the latest observation of a label's wall time; high
// enough to track phase changes (a scenario switching from cheap ticks to
// expensive negotiation rounds), low enough to smooth solver noise.
const costEWMAAlpha = 0.4

// observeCost folds one finished item's wall time into its label's cost
// estimate. Called from the stats fold, never concurrently.
func (r *Runtime) observeCost(label string, wall time.Duration) {
	sec := wall.Seconds()
	if old, ok := r.costs[label]; ok {
		sec = (1-costEWMAAlpha)*old + costEWMAAlpha*sec
	}
	r.costs[label] = sec
}

// workerCap resolves Options.Workers to the epoch pool size, before the
// per-epoch clamp to the item count.
func (r *Runtime) workerCap() int {
	workers := r.opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runPool executes fn over the scheduled order on at most Options.Workers
// goroutines. Workers claim the next index with an atomic cursor — no
// dispatch channel, no handoff latency between items: a worker finishing a
// cheap item immediately claims the next-most-expensive remaining one,
// which is work stealing with a shared deque of one producer.
func (r *Runtime) runPool(order []int, fn func(int)) {
	n := len(order)
	workers := r.workerCap()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for _, i := range order {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := cursor.Add(1) - 1
				if k >= int64(n) {
					return
				}
				fn(order[k])
			}
		}()
	}
	wg.Wait()
}

// stagedMsg is one outgoing message buffered during the concurrent phase.
// The payload bytes live in the owning item's arena at [start:end) — the
// sender's buffer is copied at Send time, so core nodes are free to recycle
// their encode buffers the moment Send returns (the transport payload
// contract), and a whole item's staged traffic is two reusable allocations
// instead of one retained buffer per message.
type stagedMsg struct {
	from, to   string
	start, end int
}

// itemBuf holds one item's staged messages and their payload arena. Both
// slices are reset to length zero and reused across epochs.
type itemBuf struct {
	msgs  []stagedMsg
	arena []byte
}

// maxStagedArena caps how much payload memory an item slot keeps across
// epochs; an unusually chatty epoch doesn't pin its peak forever.
const maxStagedArena = 1 << 20

// stagedTransport wraps the simulated transport for epoch execution. While
// an epoch's concurrent phase runs, Send copies messages into a per-item
// buffer (keyed by the sending node, which exactly one item owns); commit
// forwards them to the inner transport in item order. Outside an epoch it
// is a transparent passthrough. Buffer appends are race-free because each
// item runs on one goroutine and owns its buffer slot; the begin/commit
// transitions happen-before/after the worker pool via its WaitGroup.
type stagedTransport struct {
	inner transport.Transport

	// staging/owner/bufs are guarded by the worker pool's happens-before
	// edges (set in begin before the pool starts, read-only during the
	// phase, cleared in commit after the pool joins) — not by a mutex.
	staging bool
	owner   map[string]int
	bufs    []itemBuf
	strayMu sync.Mutex
	stray   []string
}

// Register implements transport.Transport.
func (s *stagedTransport) Register(node string, h transport.Handler) { s.inner.Register(node, h) }

// NodeStats implements transport.Transport.
func (s *stagedTransport) NodeStats(node string) transport.Stats { return s.inner.NodeStats(node) }

// Close implements transport.Transport.
func (s *stagedTransport) Close() error { return s.inner.Close() }

// Send implements transport.Transport: buffered during an epoch's
// concurrent phase, passed through otherwise. The payload is copied into
// the owning item's arena — Send does not retain the caller's buffer.
func (s *stagedTransport) Send(from, to string, payload []byte) error {
	if !s.staging {
		return s.inner.Send(from, to, payload)
	}
	idx, ok := s.owner[from]
	if !ok {
		// The sending node is not owned by any item: the item forgot to
		// list it, which would break both isolation and ordering. Surface
		// at the barrier and drop the message.
		s.strayMu.Lock()
		s.stray = append(s.stray, fmt.Sprintf("%s->%s", from, to))
		s.strayMu.Unlock()
		return fmt.Errorf("cluster: node %q sent during an epoch without being listed in any item", from)
	}
	b := &s.bufs[idx]
	start := len(b.arena)
	b.arena = append(b.arena, payload...)
	b.msgs = append(b.msgs, stagedMsg{from: from, to: to, start: start, end: len(b.arena)})
	return nil
}

func (s *stagedTransport) begin(owner map[string]int, items int) {
	s.owner = owner
	if cap(s.bufs) < items {
		grown := make([]itemBuf, items)
		copy(grown, s.bufs[:cap(s.bufs)])
		s.bufs = grown
	}
	s.bufs = s.bufs[:items]
	for i := range s.bufs {
		s.bufs[i].msgs = s.bufs[i].msgs[:0]
		s.bufs[i].arena = s.bufs[i].arena[:0]
	}
	s.stray = nil
	s.staging = true
}

// commit replays the buffered messages in item order and leaves staging
// mode. The buffers themselves are kept for the next epoch — the simulated
// transport copies payloads when it schedules their delivery, so reusing
// the arenas cannot corrupt in-flight messages. Send errors from the inner
// transport and stray sends are combined into the returned error.
func (s *stagedTransport) commit() error {
	s.staging = false
	var firstErr error
	for i := range s.bufs {
		b := &s.bufs[i]
		for _, m := range b.msgs {
			if err := s.inner.Send(m.from, m.to, b.arena[m.start:m.end:m.end]); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cap(b.arena) > maxStagedArena {
			b.arena = nil
		}
	}
	s.owner = nil
	if firstErr == nil && len(s.stray) > 0 {
		firstErr = fmt.Errorf("cluster: unowned sends during epoch: %v", s.stray)
	}
	return firstErr
}
