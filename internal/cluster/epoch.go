package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/transport"
)

// Item is one unit of epoch work: a closure driving inserts, deletes, and
// at most one solve against the nodes it names. Items of one epoch run
// concurrently, so they must name every node they touch in Nodes and two
// items of the same epoch may not share a node — RunEpoch rejects overlaps,
// because overlap is exactly what would make the concurrent schedule
// diverge from the sequential one. Run may return the item's SolveResult
// for the epoch statistics (nil is fine).
type Item struct {
	// Label identifies the item in errors ("negotiate dc3-dc1").
	Label string
	// Nodes lists every node address Run touches.
	Nodes []string
	// Run does the work. It must only touch the listed nodes.
	Run func() (*core.SolveResult, error)
}

// RunEpoch executes one epoch of items on the worker pool and returns its
// statistics.
//
// In ModeSim the epoch is deterministic: outgoing messages stage in
// per-item buffers while items run concurrently, and the epoch barrier
// replays them into the simulated network in item order. No scheduler event
// runs during the concurrent phase, so the post-barrier event schedule is
// exactly what sequential item execution would have produced. In ModeUDP
// items free-run: messages leave as they are produced and deliveries
// interleave with execution.
//
// The returned stats cover the wire traffic since the previous epoch ended;
// traffic triggered by a later Advance/Settle is folded into this epoch's
// History entry when the next epoch (or History) closes the window.
func (r *Runtime) RunEpoch(items []Item) (EpochStats, error) {
	if r.inEpoch {
		return EpochStats{}, fmt.Errorf("cluster: RunEpoch is not reentrant")
	}
	owner := map[string]int{}
	for i, it := range items {
		if len(it.Nodes) == 0 {
			return EpochStats{}, fmt.Errorf("cluster: item %d (%s) names no nodes", i, it.Label)
		}
		for _, addr := range it.Nodes {
			m := r.members[addr]
			if m == nil {
				return EpochStats{}, fmt.Errorf("cluster: item %d (%s) names unknown node %q", i, it.Label, addr)
			}
			if m.down {
				return EpochStats{}, fmt.Errorf("cluster: item %d (%s) names stopped node %q", i, it.Label, addr)
			}
			if prev, clash := owner[addr]; clash {
				return EpochStats{}, fmt.Errorf("cluster: items %d and %d both touch node %q", prev, i, addr)
			}
			owner[addr] = i
		}
	}
	r.inEpoch = true
	defer func() { r.inEpoch = false }()
	r.closeWindow() // attribute settle traffic to the previous epoch

	if r.staged != nil {
		r.staged.begin(owner, len(items))
	}
	results := make([]*core.SolveResult, len(items))
	errs := make([]error, len(items))
	r.runPool(len(items), func(i int) {
		it := &items[i]
		if r.opts.BatchDeltas {
			for _, addr := range it.Nodes {
				r.members[addr].node.HoldOutbox(true)
			}
		}
		results[i], errs[i] = it.Run()
		if r.opts.BatchDeltas {
			for _, addr := range it.Nodes {
				n := r.members[addr].node
				n.HoldOutbox(false)
				if err := n.FlushOutbox(); err != nil && errs[i] == nil {
					errs[i] = err
				}
			}
		}
	})
	if r.staged != nil {
		if err := r.staged.commit(); err != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = err
					break
				}
			}
		}
	}

	st := EpochStats{Epoch: r.epoch, Items: len(items)}
	r.epoch++
	var firstErr error
	for i, res := range results {
		if errs[i] != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: item %d (%s): %w", i, items[i].Label, errs[i])
		}
		if res == nil {
			continue
		}
		st.Solves++
		st.SolverNodes += res.Stats.Nodes
		if res.Ground != nil {
			st.ConstsPatched += res.Ground.ConstsPatched
		}
	}
	d, drops := r.wireDelta()
	st.MsgsSent, st.BytesSent = d.MsgsSent, d.BytesSent
	st.MsgsDropped = drops
	st.ResyncRows, st.ResyncBytes = r.resyncDelta()
	r.history = append(r.history, st)

	// Periodic checkpointing: every node's quiescent post-epoch state
	// becomes the restart point for failures until the next checkpoint.
	if n := r.opts.CheckpointEvery; n > 0 && (st.Epoch+1)%n == 0 {
		if err := r.checkpointAll(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// The AfterEpoch hook runs outside the epoch critical section so
	// failure scripts can stop and restart nodes from it.
	r.inEpoch = false
	if r.opts.AfterEpoch != nil {
		if err := r.opts.AfterEpoch(r, st.Epoch); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return st, firstErr
}

// runPool executes fn(0..n-1) on at most Options.Workers goroutines.
func (r *Runtime) runPool(n int, fn func(int)) {
	workers := r.opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// stagedMsg is one outgoing message buffered during the concurrent phase.
type stagedMsg struct {
	from, to string
	payload  []byte
}

// stagedTransport wraps the simulated transport for epoch execution. While
// an epoch's concurrent phase runs, Send buffers messages per item (keyed
// by the sending node, which exactly one item owns); commit forwards them
// to the inner transport in item order. Outside an epoch it is a
// transparent passthrough. Buffer appends are race-free because each item
// runs on one goroutine and owns its buffer slot; the begin/commit
// transitions happen-before/after the worker pool via its WaitGroup.
type stagedTransport struct {
	inner transport.Transport

	// staging/owner/bufs are guarded by the worker pool's happens-before
	// edges (set in begin before the pool starts, read-only during the
	// phase, cleared in commit after the pool joins) — not by a mutex.
	staging bool
	owner   map[string]int
	bufs    [][]stagedMsg
	strayMu sync.Mutex
	stray   []string
}

// Register implements transport.Transport.
func (s *stagedTransport) Register(node string, h transport.Handler) { s.inner.Register(node, h) }

// NodeStats implements transport.Transport.
func (s *stagedTransport) NodeStats(node string) transport.Stats { return s.inner.NodeStats(node) }

// Close implements transport.Transport.
func (s *stagedTransport) Close() error { return s.inner.Close() }

// Send implements transport.Transport: buffered during an epoch's
// concurrent phase, passed through otherwise.
func (s *stagedTransport) Send(from, to string, payload []byte) error {
	if !s.staging {
		return s.inner.Send(from, to, payload)
	}
	idx, ok := s.owner[from]
	if !ok {
		// The sending node is not owned by any item: the item forgot to
		// list it, which would break both isolation and ordering. Surface
		// at the barrier and drop the message.
		s.strayMu.Lock()
		s.stray = append(s.stray, fmt.Sprintf("%s->%s", from, to))
		s.strayMu.Unlock()
		return fmt.Errorf("cluster: node %q sent during an epoch without being listed in any item", from)
	}
	s.bufs[idx] = append(s.bufs[idx], stagedMsg{from: from, to: to, payload: payload})
	return nil
}

func (s *stagedTransport) begin(owner map[string]int, items int) {
	s.owner = owner
	s.bufs = make([][]stagedMsg, items)
	s.stray = nil
	s.staging = true
}

// commit replays the buffered messages in item order and leaves staging
// mode. Send errors from the inner transport and stray sends are combined
// into the returned error.
func (s *stagedTransport) commit() error {
	s.staging = false
	var firstErr error
	for _, buf := range s.bufs {
		for _, m := range buf {
			if err := s.inner.Send(m.from, m.to, m.payload); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	s.bufs = nil
	s.owner = nil
	if firstErr == nil && len(s.stray) > 0 {
		firstErr = fmt.Errorf("cluster: unowned sends during epoch: %v", s.stray)
	}
	return firstErr
}
