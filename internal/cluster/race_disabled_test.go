//go:build !race

package cluster

// raceEnabled gates tests whose timing assertions (parallel speedup) are
// distorted by the race detector's instrumentation.
const raceEnabled = false
