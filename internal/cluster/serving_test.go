package cluster_test

import (
	"math/rand"
	"testing"

	"repro/internal/acloud"
	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/wireless"
)

// TestClusterServingRounds attaches two scenario servers to a runtime,
// feeds them churn, and checks the per-round TickStats bookkeeping:
// admitted events, queue depths, latency percentiles, and drain-to-
// quiescence. The TestCluster name prefix puts it under the CI race gate.
func TestClusterServingRounds(t *testing.T) {
	r := cluster.New(cluster.Options{})
	defer r.Close()

	ap := acloud.DefaultServingParams()
	asc, err := acloud.NewServing(ap, serve.Config{QueueCap: 256, BatchMax: 32})
	if err != nil {
		t.Fatal(err)
	}
	wp := wireless.DefaultServingParams()
	wsc, err := wireless.NewServing(wp, serve.Config{QueueCap: 256, BatchMax: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AttachServing("dc0", asc.Server); err != nil {
		t.Fatal(err)
	}
	if err := r.AttachServing("manager", wsc.Server); err != nil {
		t.Fatal(err)
	}
	if err := r.AttachServing("dc0", asc.Server); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	if got := r.ServingServer("manager"); got != wsc.Server {
		t.Fatal("ServingServer returned wrong server")
	}

	rng := rand.New(rand.NewSource(11))
	scenarios := []*serve.Scenario{asc, wsc}
	totalOffered := 0
	for round := 0; round < 6; round++ {
		for _, sc := range scenarios {
			for _, ev := range sc.Gen(rng, 10) {
				if err := sc.Server.Offer(ev); err != nil {
					t.Fatalf("offer: %v", err)
				}
				totalOffered++
			}
		}
		st, err := r.ServeRound()
		if err != nil {
			t.Fatal(err)
		}
		if st.Round != round {
			t.Fatalf("round numbered %d, want %d", st.Round, round)
		}
		if st.Servers != 2 {
			t.Fatalf("round covered %d servers, want 2", st.Servers)
		}
		if st.Events == 0 {
			t.Fatalf("round %d admitted nothing", round)
		}
		if st.P50 < 0 || st.P99 < st.P50 {
			t.Fatalf("round %d percentiles inverted: p50=%v p99=%v", round, st.P50, st.P99)
		}
	}
	if err := r.ServeDrain(); err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenarios {
		if !sc.Server.Quiescent() {
			t.Fatal("server not quiescent after ServeDrain")
		}
		if sc.Server.QueueDepth() != 0 {
			t.Fatal("queue not drained")
		}
	}
	hist := r.ServingHistory()
	if len(hist) < 6 {
		t.Fatalf("history has %d rounds, want >= 6", len(hist))
	}
	admitted := 0
	for _, st := range hist {
		admitted += st.Events
	}
	stA, stW := asc.Server.StatsSnapshot(), wsc.Server.StatsSnapshot()
	if got := stA.EventsAdmitted + stW.EventsAdmitted; got != admitted {
		t.Fatalf("history sums %d admitted events, servers report %d", admitted, got)
	}
	if stA.EventsAdmitted+stA.EventsCoalesced+stW.EventsAdmitted+stW.EventsCoalesced != totalOffered {
		t.Fatalf("offered %d events, servers account for %d admitted + %d coalesced",
			totalOffered, stA.EventsAdmitted+stW.EventsAdmitted, stA.EventsCoalesced+stW.EventsCoalesced)
	}
}

// TestClusterServingDegradedRounds injects deadline pressure through the
// server's interrupt factory and checks that degraded ticks surface in the
// round stats and block quiescence until a completed round lands.
func TestClusterServingDegradedRounds(t *testing.T) {
	pressure := true
	cfg := serve.Config{
		QueueCap: 256,
		BatchMax: 32,
		NextInterrupt: func() func() bool {
			if !pressure {
				return nil
			}
			return func() bool { return true }
		},
	}
	p := acloud.DefaultServingParams()
	sc, err := acloud.NewServing(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := cluster.New(cluster.Options{})
	defer r.Close()
	if err := r.AttachServing("dc0", sc.Server); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	for _, ev := range sc.Gen(rng, 15) {
		if err := sc.Server.Offer(ev); err != nil {
			t.Fatal(err)
		}
	}
	st, err := r.ServeRound()
	if err != nil {
		t.Fatal(err)
	}
	if st.DegradedTicks != 1 {
		t.Fatalf("pressured round recorded %d degraded ticks, want 1", st.DegradedTicks)
	}
	if sc.Server.Quiescent() {
		t.Fatal("degraded server reported quiescent")
	}
	pressure = false
	if err := r.ServeDrain(); err != nil {
		t.Fatal(err)
	}
	if !sc.Server.Quiescent() {
		t.Fatal("server not quiescent after pressure lifted")
	}
	hist := r.ServingHistory()
	last := hist[len(hist)-1]
	if last.DegradedTicks != 0 {
		t.Fatal("final round still degraded")
	}
}

// TestClusterServingEmpty checks the error paths: a round with no attached
// servers fails, and attaching nil fails.
func TestClusterServingEmpty(t *testing.T) {
	r := cluster.New(cluster.Options{})
	defer r.Close()
	if _, err := r.ServeRound(); err == nil {
		t.Fatal("ServeRound with no servers succeeded")
	}
	if err := r.AttachServing("x", nil); err == nil {
		t.Fatal("nil server attached")
	}
}
