package cluster

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/colog"
)

// TestRecoveryEquivalence: a node killed and restarted between epochs —
// from its periodic checkpoint, with in-flight traffic lost and pulled
// back by the automatic anti-entropy exchange — must leave the cluster on
// a byte-identical trajectory: same tables, same per-epoch solve counts,
// same solver-node traces as an uninterrupted run. This is the
// recovery-equivalence CI gate for the runtime itself; the scenario
// packages pin the same property on the paper's workloads.
func TestRecoveryEquivalence(t *testing.T) {
	const nodes, epochs, failEpoch = 5, 4, 1
	const victim = "n2"
	churn := func(r *Runtime, epoch int) {
		// Every node's demand changes every epoch, so every epoch re-ships
		// decisions on every link — a crash between epochs always loses
		// in-flight rows.
		for i, addr := range r.Addrs() {
			if err := r.Node(addr).Insert("need", sval(addr), ival(int64(5+epoch+i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	run := func(fail bool) (string, []EpochStats) {
		r := buildRing(t, Options{Workers: 4, Latency: time.Millisecond, CheckpointEvery: 1}, nodes)
		for epoch := 0; epoch < epochs; epoch++ {
			if _, err := r.RunEpoch(solveItems(r)); err != nil {
				t.Fatal(err)
			}
			if fail && epoch == failEpoch {
				// Crash between epochs: decisions shipped to the victim this
				// epoch are still in flight and are dropped with it. The
				// restart restores the post-epoch checkpoint and the resync
				// pulls exactly the dropped rows.
				if err := r.StopNode(victim); err != nil {
					t.Fatal(err)
				}
				r.Settle() // in-flight traffic to the victim is lost
				if _, err := r.RestartNode(victim); err != nil {
					t.Fatal(err)
				}
			}
			churn(r, epoch)
			r.Advance(10 * time.Millisecond)
		}
		r.Settle()
		return dump(r), r.History()
	}
	plainState, plainHist := run(false)
	failState, failHist := run(true)
	if plainState != failState {
		t.Fatalf("state diverged after kill/restart:\n--- uninterrupted\n%s--- recovered\n%s", plainState, failState)
	}
	for i := range plainHist {
		p, f := plainHist[i], failHist[i]
		if p.Solves != f.Solves || p.SolverNodes != f.SolverNodes {
			t.Fatalf("epoch %d solver trace diverged: uninterrupted %d solves/%d nodes, recovered %d/%d",
				i, p.Solves, p.SolverNodes, f.Solves, f.SolverNodes)
		}
	}
	// The failure run actually exercised the pull path.
	var rows int64
	for _, st := range failHist {
		rows += st.ResyncRows
	}
	if rows == 0 {
		t.Fatal("recovered run pulled no rows — the failure script lost nothing")
	}
}

// TestRecoveryEquivalenceViaAfterEpoch: the same property driven through
// the Options.AfterEpoch hook, which is how the scenario packages inject
// failures into their cluster runners without exposing epoch loops.
func TestRecoveryEquivalenceViaAfterEpoch(t *testing.T) {
	const victim = "n1"
	run := func(fail bool) string {
		o := Options{Workers: 2, Latency: time.Millisecond, CheckpointEvery: 1}
		if fail {
			o.AfterEpoch = func(r *Runtime, epoch int) error {
				if epoch != 1 {
					return nil
				}
				if err := r.StopNode(victim); err != nil {
					return err
				}
				r.Settle()
				_, err := r.RestartNode(victim)
				return err
			}
		}
		r := buildRing(t, o, 3)
		for epoch := 0; epoch < 3; epoch++ {
			if _, err := r.RunEpoch(solveItems(r)); err != nil {
				t.Fatal(err)
			}
			for i, addr := range r.Addrs() {
				if err := r.Node(addr).Insert("need", sval(addr), ival(int64(5+epoch+i))); err != nil {
					t.Fatal(err)
				}
			}
			r.Advance(10 * time.Millisecond)
		}
		r.Settle()
		return dump(r)
	}
	if plain, failed := run(false), run(true); plain != failed {
		t.Fatalf("AfterEpoch failure script diverged:\n--- uninterrupted\n%s--- recovered\n%s", plain, failed)
	}
}

// TestRecoveryDiskReplayEquivalence: the recovery-equivalence gate for the
// durable backend. With store=disk and NO checkpoints, a killed node
// replays its local write-ahead log on restart and then resyncs — the
// cluster must converge byte-identically to an uninterrupted disk run, and
// the anti-entropy pull must shrink to the outage window: summed
// EpochStats.ResyncRows strictly below the no-log path (store=memory,
// reseed + full resync) on the same failure script.
func TestRecoveryDiskReplayEquivalence(t *testing.T) {
	const nodes, epochs, failEpoch = 5, 5, 2
	const victim = "n2"
	// The ring program plus an accumulating replicated relation: every tick
	// inserted upstream lands as a note row at the downstream neighbor and
	// stays there. By the failure epoch the victim holds epochs' worth of
	// notes — state the no-log restart must re-pull over the wire while the
	// disk restart replays it from the local log.
	prog, err := colog.Parse(testSrc + "r2 note(@Y,X,E) <- link(@X,Y), tick(@X,E).\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(storage string, fail bool) (string, []EpochStats) {
		o := Options{Workers: 4, Latency: time.Millisecond, Storage: storage}
		if storage == "disk" {
			o.StorageDir = t.TempDir()
		}
		r := New(o)
		defer r.Close()
		for i := 0; i < nodes; i++ {
			if _, err := r.Spawn(ringSpec(res, i, nodes)); err != nil {
				t.Fatal(err)
			}
		}
		r.Settle()
		for epoch := 0; epoch < epochs; epoch++ {
			if _, err := r.RunEpoch(solveItems(r)); err != nil {
				t.Fatal(err)
			}
			if fail && epoch == failEpoch {
				if err := r.StopNode(victim); err != nil {
					t.Fatal(err)
				}
				r.Settle() // in-flight traffic to the victim is lost
				if _, err := r.RestartNode(victim); err != nil {
					t.Fatal(err)
				}
			}
			for i, addr := range r.Addrs() {
				if err := r.Node(addr).Insert("need", sval(addr), ival(int64(5+epoch+i))); err != nil {
					t.Fatal(err)
				}
				for k := 0; k < 6; k++ {
					if err := r.Node(addr).Insert("tick", sval(addr), ival(int64(epoch*100+i*10+k))); err != nil {
						t.Fatal(err)
					}
				}
			}
			r.Advance(10 * time.Millisecond)
		}
		r.Settle()
		return dump(r), r.History()
	}
	resyncRows := func(hist []EpochStats) int64 {
		var rows int64
		for _, st := range hist {
			rows += st.ResyncRows
		}
		return rows
	}
	plainState, _ := run("disk", false)
	diskState, diskHist := run("disk", true)
	if plainState != diskState {
		t.Fatalf("disk replay diverged from uninterrupted run:\n--- uninterrupted\n%s--- replayed\n%s", plainState, diskState)
	}
	_, memHist := run("memory", true)
	diskRows, memRows := resyncRows(diskHist), resyncRows(memHist)
	if memRows == 0 {
		t.Fatal("no-log baseline pulled no rows — the failure script lost nothing")
	}
	if diskRows >= memRows {
		t.Fatalf("local-log replay did not shrink the resync: %d rows with replay, %d without", diskRows, memRows)
	}
	// The log actually recorded work.
	var logRecs int64
	for _, st := range diskHist {
		logRecs += st.LogRecords
	}
	if logRecs == 0 {
		t.Fatal("disk run appended no WAL records")
	}
}

// TestRecoveryStaleCheckpointConverges: a restart from a checkpoint that
// predates committed work cannot be byte-identical — but the bidirectional
// exchange must still converge the cluster: peers roll back the failed
// instance's phantom assertions, and the next solve re-ships current
// decisions.
func TestRecoveryStaleCheckpointConverges(t *testing.T) {
	r := buildRing(t, Options{Workers: 2, Latency: time.Millisecond}, 3)
	// Checkpoint before any decisions exist, then decide and replicate.
	if err := r.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunEpoch(solveItems(r)); err != nil {
		t.Fatal(err)
	}
	r.Settle()
	if len(r.Node("n1").Rows("got")) == 0 {
		t.Fatal("no replicated decisions")
	}

	// n0 crashes back to its pre-decision checkpoint. Its decisions are
	// rolled back everywhere; re-solving re-replicates.
	if err := r.StopNode("n0"); err != nil {
		t.Fatal(err)
	}
	r.Settle()
	if _, err := r.RestartNode("n0"); err != nil {
		t.Fatal(err)
	}
	if rows := r.Node("n1").Rows("got"); len(rows) != 0 {
		t.Fatalf("peer kept %d phantom rows from the rolled-back publisher", len(rows))
	}
	if _, err := r.RunEpoch(solveItems(r)); err != nil {
		t.Fatal(err)
	}
	r.Settle()
	if len(r.Node("n1").Rows("got")) == 0 {
		t.Fatal("re-solve did not re-replicate decisions")
	}
}

// TestClusterUDPFailureResync: failure injection and automatic rejoin over
// the real-socket transport — SetNodeDown drops traffic both ways, the
// restart restores the latest checkpoint, and the resync exchange drains
// over UDP (polled, not scheduled). Runs under the race detector in CI
// alongside the other TestCluster tests.
func TestClusterUDPFailureResync(t *testing.T) {
	r := New(Options{Mode: ModeUDP, Workers: 4, CheckpointEvery: 1})
	defer r.Close()
	res := testProgram(t)
	for i := 0; i < 3; i++ {
		if _, err := r.Spawn(ringSpec(res, i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.RunEpoch(solveItems(r)); err != nil {
		t.Fatal(err)
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatal(what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitFor("decisions never replicated over UDP", func() bool {
		for _, addr := range r.Addrs() {
			if len(r.Node(addr).Rows("got")) == 0 {
				return false
			}
		}
		return true
	})

	// Kill n1, let its publisher re-decide while it is down (the shipped
	// update is lost), then restart: checkpoint restore + resync.
	if err := r.StopNode("n1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Node("n0").Insert("need", sval("n0"), ival(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunEpoch(solveItems(r)); err != nil {
		t.Fatal(err)
	}
	r.Settle()
	n1, err := r.RestartNode("n1")
	if err != nil {
		t.Fatal(err)
	}

	// The rejoined node converges on its publisher's current decisions.
	var want int64
	for _, row := range r.Node("n0").Rows("pick") {
		want += row[2].I
	}
	waitFor("rejoined node never converged on the publisher's decisions", func() bool {
		var got int64
		for _, row := range n1.Rows("got") {
			if row[1].S == "n0" {
				got += row[3].I
			}
		}
		return got == want && want >= 7
	})
	st := n1.ResyncStats()
	if st.RowsPulled == 0 {
		t.Fatalf("no resync rows pulled over UDP: %+v", st)
	}
}
