package cluster

import (
	"math"
	"testing"
	"time"
)

// FuzzDecodeRollupFrame hammers the rollup-frame decoder: arbitrary bytes —
// wrong magic, wrong version, truncated varints, torn objective bits,
// trailing garbage — must come back as an error, never a panic, and every
// accepted frame must survive an encode/decode round trip bit-exactly
// (byte canonicity is not required: varints tolerate non-minimal
// encodings, as in the delta and churn codecs).
// The seed corpus is captured live from a real sharded run: a 4-shard ring
// under rollup aggregation with the frame hook recording every aggregator
// frame that crosses shards.
func FuzzDecodeRollupFrame(f *testing.F) {
	// Real frames: run two epochs of the standard test ring under a 4-shard
	// rollup tree and record the actual frames the aggregators exchange.
	r := shardedRing(f, Options{
		Workers: 2, Latency: time.Millisecond,
		Shards: ShardPlan{Count: 4}, Aggregation: AggregationRollup, AggFanout: 2,
	}, 8)
	defer r.Close()
	var captured [][]byte
	r.rollupFrameHook = func(frame []byte) {
		captured = append(captured, append([]byte(nil), frame...))
	}
	for epoch := 0; epoch < 2; epoch++ {
		if _, err := r.RunEpoch(solveItems(r)); err != nil {
			f.Fatal(err)
		}
		r.Settle()
	}
	if len(captured) == 0 {
		f.Fatal("sharded run produced no rollup frames to seed the corpus")
	}
	for _, frame := range captured {
		f.Add(frame)
	}

	// Synthetic shapes: extreme fields, non-finite objectives, and mutations
	// of a good frame (bad magic, bad version, torn tail, trailing byte).
	f.Add(EncodeRollupFrame(ShardSummary{}))
	f.Add(EncodeRollupFrame(ShardSummary{
		Shard: 1 << 20, Epoch: math.MaxInt32, Folded: 7, Members: 10_000,
		Items: 1, Solves: 2, SolverNodes: math.MaxInt64,
		ConstsPatched: 3, Objective: math.Inf(-1), MsgsSent: 1, BytesSent: 1 << 40,
	}))
	good := EncodeRollupFrame(ShardSummary{Shard: 2, Epoch: 5, Objective: math.NaN()})
	f.Add(append([]byte{'X'}, good[1:]...))
	f.Add(append([]byte{good[0], 99}, good[2:]...))
	f.Add(good[:len(good)-3])
	f.Add(append(append([]byte(nil), good...), 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		sum, err := DecodeRollupFrame(data)
		if err != nil {
			return
		}
		re := EncodeRollupFrame(sum)
		back, err := DecodeRollupFrame(re)
		if err != nil {
			t.Fatalf("accepted frame does not re-decode: %v", err)
		}
		// Compare through objective bits so NaN round trips count as equal.
		a, b := sum, back
		ab, bb := math.Float64bits(a.Objective), math.Float64bits(b.Objective)
		a.Objective, b.Objective = 0, 0
		if a != b || ab != bb {
			t.Fatalf("round trip diverged:\n%+v\n%+v", sum, back)
		}
	})
}
