package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/transport"
)

// injector returns the transport's failure-injection surface. Both bundled
// transports implement it.
func (r *Runtime) injector() transport.FailureInjector {
	inj, ok := r.inner.(transport.FailureInjector)
	if !ok {
		panic(fmt.Sprintf("cluster: transport %T does not support failure injection", r.inner))
	}
	return inj
}

// StopNode drops a node: every message to or from it is silently lost from
// now on, and the instance is removed from the cluster (Node returns nil).
// The node's spec is kept so RestartNode can rebuild it.
func (r *Runtime) StopNode(addr string) error {
	m := r.members[addr]
	if m == nil {
		return fmt.Errorf("cluster: stopping unknown node %q", addr)
	}
	if m.down {
		return fmt.Errorf("cluster: node %q already stopped", addr)
	}
	m.down = true
	m.node = nil // state dies with the instance
	r.injector().SetNodeDown(addr, true)
	return nil
}

// RestartNode rebuilds a stopped node and reconnects it to the network.
// With a checkpoint available (Options.CheckpointEvery or CheckpointNow),
// the instance is restored from it — tables verbatim, arrival-order seq
// numbers included; otherwise it comes back fresh with only its Seed
// facts. Unless Options.DisableResync is set, the runtime then runs the
// anti-entropy exchange against every live peer, pulling the rows the node
// missed while it was down (and rolling peers back off anything only the
// failed instance had asserted). The restart is a statistics boundary:
// pre-failure wire traffic is attributed to the preceding epoch and the
// node's transport counters restart at zero.
func (r *Runtime) RestartNode(addr string) (*core.Node, error) {
	m := r.members[addr]
	if m == nil {
		return nil, fmt.Errorf("cluster: restarting unknown node %q", addr)
	}
	if !m.down {
		return nil, fmt.Errorf("cluster: node %q is not stopped", addr)
	}
	// Close the statistics window: everything counted so far belongs to the
	// failed instance's epochs. Then retire its counters so the restarted
	// instance starts at zero.
	r.closeWindow()
	if resetter, ok := r.inner.(transport.StatsResetter); ok {
		pre := r.inner.NodeStats(addr)
		r.retiredWire.MsgsSent += pre.MsgsSent
		r.retiredWire.MsgsReceived += pre.MsgsReceived
		r.retiredWire.BytesSent += pre.BytesSent
		r.retiredWire.BytesReceived += pre.BytesReceived
		resetter.ResetNodeStats(addr)
	}
	r.lastWire[addr] = transport.Stats{}
	delete(r.lastResync, addr)
	// r.lastLog is deliberately NOT reset: the WAL's record/byte counters
	// are monotonic across restarts (the Store outlives the instance), so
	// the snapshot stays valid and the epoch delta stays correct.

	var n *core.Node
	if st := m.spec.Config.Storage; st != nil && st.Log() != nil {
		// Durable-log path: replay the local write-ahead log while the node
		// is still disconnected — replay must not transmit, and the injector
		// blocks any stray delivery. Only then reconnect and re-inject base
		// facts idempotently (a torn log may have lost some; re-inserts ship
		// derivations to peers, so this runs after un-down). Anti-entropy
		// afterwards pulls only the outage-window rows the log cannot know.
		var err error
		n, err = r.restoreOrReseed(m)
		if err != nil {
			return nil, fmt.Errorf("cluster: restarting %s: %w", addr, err)
		}
		r.injector().SetNodeDown(addr, false)
		if err := ensureBaseFacts(n, m.spec); err != nil {
			r.injector().SetNodeDown(addr, true)
			return nil, fmt.Errorf("cluster: restarting %s: reseeding after replay: %w", addr, err)
		}
	} else {
		// Reconnect first so a reseeding node can ship its base facts to
		// neighbors (a checkpoint restore sends nothing, but its resync will).
		r.injector().SetNodeDown(addr, false)
		var err error
		n, err = r.restoreOrReseed(m)
		if err != nil {
			// A half-built instance may be registered on the transport; re-down
			// the address so it receives no cluster traffic while the runtime
			// still reports the node as stopped.
			r.injector().SetNodeDown(addr, true)
			return nil, fmt.Errorf("cluster: restarting %s: %w", addr, err)
		}
	}
	m.node = n
	m.down = false
	if !r.opts.DisableResync {
		if err := r.resyncNode(addr); err != nil {
			return n, err
		}
	}
	return n, nil
}

// PartitionLink cuts the links between a and b in both directions.
func (r *Runtime) PartitionLink(a, b string) {
	inj := r.injector()
	inj.SetLinkDown(a, b, true)
	inj.SetLinkDown(b, a, true)
}

// HealLink restores the links between a and b in both directions.
func (r *Runtime) HealLink(a, b string) {
	inj := r.injector()
	inj.SetLinkDown(a, b, false)
	inj.SetLinkDown(b, a, false)
}

// SetDeliveryHook installs a transport.DeliveryHook for delayed-delivery
// and probabilistic-loss experiments (ModeSim only).
func (r *Runtime) SetDeliveryHook(h transport.DeliveryHook) {
	st, ok := r.inner.(*transport.Sim)
	if !ok {
		panic("cluster: delivery hooks require ModeSim")
	}
	st.SetDeliveryHook(h)
}
