package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/transport"
)

// injector returns the transport's failure-injection surface. Both bundled
// transports implement it.
func (r *Runtime) injector() transport.FailureInjector {
	inj, ok := r.inner.(transport.FailureInjector)
	if !ok {
		panic(fmt.Sprintf("cluster: transport %T does not support failure injection", r.inner))
	}
	return inj
}

// StopNode drops a node: every message to or from it is silently lost from
// now on, and the instance is removed from the cluster (Node returns nil).
// The node's spec is kept so RestartNode can rebuild it.
func (r *Runtime) StopNode(addr string) error {
	m := r.members[addr]
	if m == nil {
		return fmt.Errorf("cluster: stopping unknown node %q", addr)
	}
	if m.down {
		return fmt.Errorf("cluster: node %q already stopped", addr)
	}
	m.down = true
	m.node = nil // state dies with the instance
	r.injector().SetNodeDown(addr, true)
	return nil
}

// RestartNode rebuilds a stopped node from its NodeSpec — a fresh instance
// with only its Seed facts, as a rejoining process would come back — and
// reconnects it to the network. State the node had accumulated before the
// stop is gone; re-convergence is the protocol's job (and what the
// failure-injection tests exercise).
func (r *Runtime) RestartNode(addr string) (*core.Node, error) {
	m := r.members[addr]
	if m == nil {
		return nil, fmt.Errorf("cluster: restarting unknown node %q", addr)
	}
	if !m.down {
		return nil, fmt.Errorf("cluster: node %q is not stopped", addr)
	}
	spec := m.spec
	if r.opts.BatchDeltas {
		spec.Config.BatchDeltas = true
	}
	// Reconnect first so the Seed facts can ship to neighbors.
	r.injector().SetNodeDown(addr, false)
	n, err := core.NewNode(spec.Addr, spec.Program, spec.Config, r.nodeTransport())
	if err != nil {
		r.injector().SetNodeDown(addr, true)
		return nil, fmt.Errorf("cluster: restarting %s: %w", addr, err)
	}
	if spec.Seed != nil {
		if err := spec.Seed(n); err != nil {
			// The half-seeded instance is registered on the transport;
			// re-down the address so it receives no cluster traffic while
			// the runtime still reports the node as stopped.
			r.injector().SetNodeDown(addr, true)
			return nil, fmt.Errorf("cluster: reseeding %s: %w", addr, err)
		}
	}
	m.node = n
	m.down = false
	return n, nil
}

// PartitionLink cuts the links between a and b in both directions.
func (r *Runtime) PartitionLink(a, b string) {
	inj := r.injector()
	inj.SetLinkDown(a, b, true)
	inj.SetLinkDown(b, a, true)
}

// HealLink restores the links between a and b in both directions.
func (r *Runtime) HealLink(a, b string) {
	inj := r.injector()
	inj.SetLinkDown(a, b, false)
	inj.SetLinkDown(b, a, false)
}

// SetDeliveryHook installs a transport.DeliveryHook for delayed-delivery
// and probabilistic-loss experiments (ModeSim only).
func (r *Runtime) SetDeliveryHook(h transport.DeliveryHook) {
	st, ok := r.inner.(*transport.Sim)
	if !ok {
		panic("cluster: delivery hooks require ModeSim")
	}
	st.SetDeliveryHook(h)
}
