package cluster

import (
	"fmt"
	"time"

	"repro/internal/quantile"
	"repro/internal/serve"
)

// Serving mode turns the cluster runtime into a host for continuous-
// optimization servers (internal/serve): each attached server owns one
// node's admission queue and tick loop, and ServeRound ticks every server
// once, in attachment order, recording a TickStats entry per round. The
// round loop is deliberately sequential and deterministic — serving
// equivalence (docs/serving.md) depends on a reproducible tick order, so
// the concurrent epoch executor is not used here.

// TickStats aggregates one serving round: every attached server ticked
// once. Rates and percentiles cover just this round's ticks; cumulative
// counters live in each server's serve.Stats.
type TickStats struct {
	// Round numbers serving rounds from zero per Runtime.
	Round int
	// Servers is how many attached servers ticked this round.
	Servers int
	// Events is the churn admitted into engines this round, summed over
	// servers.
	Events int
	// EventsPerSec is Events over the round's wall time.
	EventsPerSec float64
	// QueueDepth sums the admission-queue depths after the round — churn
	// the round could not admit under its batch caps.
	QueueDepth int
	// DegradedTicks counts this round's ticks that hit their budget and
	// published an anytime incumbent instead of a completed solve.
	DegradedTicks int
	// P50 and P99 are decision-latency percentiles over this round's
	// ticks (admission + grounding + search + publish, per server).
	P50, P99 time.Duration
	// Wall is the round's total wall time.
	Wall time.Duration
}

// AttachServing registers a serving server under an address. The address
// does not need to be a spawned cluster node — serving servers own their
// nodes — but must be unique among attached servers.
func (r *Runtime) AttachServing(addr string, srv *serve.Server) error {
	if srv == nil {
		return fmt.Errorf("cluster: nil serving server for %q", addr)
	}
	if r.serving == nil {
		r.serving = map[string]*serve.Server{}
	}
	if _, dup := r.serving[addr]; dup {
		return fmt.Errorf("cluster: serving server %q already attached", addr)
	}
	r.serving[addr] = srv
	r.servingOrder = append(r.servingOrder, addr)
	return nil
}

// ServingServer returns the server attached under addr, or nil.
func (r *Runtime) ServingServer(addr string) *serve.Server {
	return r.serving[addr]
}

// ServeRound ticks every attached server once, in attachment order, and
// records the round's TickStats. Offer churn to the individual servers
// between rounds; backpressured servers drain one batch per round.
func (r *Runtime) ServeRound() (TickStats, error) {
	if len(r.servingOrder) == 0 {
		return TickStats{}, fmt.Errorf("cluster: no serving servers attached")
	}
	st := TickStats{Round: len(r.servingHistory), Servers: len(r.servingOrder)}
	start := time.Now()
	var lats []time.Duration
	for _, addr := range r.servingOrder {
		rep, err := r.serving[addr].TickOnce()
		if err != nil {
			return st, fmt.Errorf("cluster: serving tick %q: %w", addr, err)
		}
		st.Events += len(rep.Batch)
		st.QueueDepth += rep.QueueDepth
		if rep.Degraded {
			st.DegradedTicks++
		}
		lats = append(lats, rep.Latency)
	}
	st.Wall = time.Since(start)
	if st.Wall > 0 {
		st.EventsPerSec = float64(st.Events) / st.Wall.Seconds()
	}
	st.P50 = quantile.Durations(lats, 0.50)
	st.P99 = quantile.Durations(lats, 0.99)
	r.servingHistory = append(r.servingHistory, st)
	return st, nil
}

// ServeDrain runs ServeRound until every attached server is quiescent:
// queues empty and each server's last tick completed within budget.
func (r *Runtime) ServeDrain() error {
	for {
		done := true
		for _, addr := range r.servingOrder {
			if !r.serving[addr].Quiescent() {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		if _, err := r.ServeRound(); err != nil {
			return err
		}
	}
}

// ServingHistory returns the per-round statistics recorded so far.
func (r *Runtime) ServingHistory() []TickStats {
	return append([]TickStats(nil), r.servingHistory...)
}
