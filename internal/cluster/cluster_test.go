package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/transport"
)

// testSrc is a miniature distributed COP: each node picks per-item
// quantities minimizing weighted cost subject to a demand floor, and ships
// its decisions to the linked neighbor (the solve→replicate round shape of
// the real scenarios).
const testSrc = `
goal minimize C in cost(@X,C).
var pick(@X,D,V) forall item(@X,D) domain [0,5].

d1 cost(@X,SUM<E>) <- pick(@X,D,V), w(@X,D,W), E==V*W.
d2 total(@X,SUM<V>) <- pick(@X,D,V).
c1 total(@X,V) -> need(@X,N), V>=N.

// Continuous replication of decisions to the downstream neighbor. There is
// no protocol-level resync rule: materialization diffs suppress unchanged
// rows, so a rejoining subscriber re-learns lost decisions through the
// runtime's automatic anti-entropy exchange (the failure-injection tests
// exercise exactly this).
r1 got(@Y,X,D,V2) <- link(@X,Y), pick(@X,D,V), V2:=V.
`

func testProgram(t testing.TB) *analysis.Result {
	t.Helper()
	prog, err := colog.Parse(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sval(s string) colog.Value { return colog.StringVal(s) }
func ival(i int64) colog.Value  { return colog.IntVal(i) }

// ringSpec builds the spec for node i of an n-node ring: two items with
// node-specific weights, a demand floor, and a link to the next node.
func ringSpec(res *analysis.Result, i, n int) NodeSpec {
	addr := fmt.Sprintf("n%d", i)
	next := fmt.Sprintf("n%d", (i+1)%n)
	return NodeSpec{
		Addr:    addr,
		Program: res,
		Config: core.Config{
			SolverPropagate: true,
			Keys:            map[string][]int{"got": {0, 1, 2}},
		},
		Seed: func(nd *core.Node) error {
			for d, w := range []int64{int64(i) + 1, int64(i) + 3} {
				dn := fmt.Sprintf("d%d", d)
				if err := nd.Insert("item", sval(addr), sval(dn)); err != nil {
					return err
				}
				if err := nd.Insert("w", sval(addr), sval(dn), ival(w)); err != nil {
					return err
				}
			}
			if err := nd.Insert("need", sval(addr), ival(int64(3+i%2))); err != nil {
				return err
			}
			return nd.Insert("link", sval(addr), sval(next))
		},
	}
}

func buildRing(t testing.TB, o Options, n int) *Runtime {
	t.Helper()
	r := New(o)
	res := testProgram(t)
	for i := 0; i < n; i++ {
		if _, err := r.Spawn(ringSpec(res, i, n)); err != nil {
			t.Fatal(err)
		}
	}
	r.Settle()
	return r
}

// solveItems builds one solve item per live node.
func solveItems(r *Runtime) []Item {
	var items []Item
	for _, addr := range r.Addrs() {
		n := r.Node(addr)
		if n == nil {
			continue
		}
		items = append(items, Item{
			Label: "solve " + addr,
			Nodes: []string{addr},
			Run:   func() (*core.SolveResult, error) { return n.Solve(core.SolveOptions{}) },
		})
	}
	return items
}

// dump renders every node's got/pick tables for state comparison.
func dump(r *Runtime) string {
	var sb strings.Builder
	for _, addr := range r.Addrs() {
		n := r.Node(addr)
		if n == nil {
			continue
		}
		for _, pred := range []string{"pick", "got", "total", "cost", "note"} {
			for _, row := range n.Rows(pred) {
				sb.WriteString(core.NewTuple(pred, row...).String())
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String()
}

// TestSimEpochDeterministicAcrossWorkers: the epoch barrier must make a
// concurrent sim-mode epoch byte-identical to a sequential one — same
// tables, same solver work, same message counters — at any pool size.
func TestClusterSimEpochDeterministicAcrossWorkers(t *testing.T) {
	type outcome struct {
		state string
		wire  transport.Stats
		nodes int64
	}
	run := func(workers int) outcome {
		r := buildRing(t, Options{Workers: workers, Latency: time.Millisecond}, 5)
		var nodes int64
		for epoch := 0; epoch < 3; epoch++ {
			st, err := r.RunEpoch(solveItems(r))
			if err != nil {
				t.Fatal(err)
			}
			if st.Solves != 5 {
				t.Fatalf("epoch %d solves = %d, want 5", epoch, st.Solves)
			}
			nodes += st.SolverNodes
			r.Advance(10 * time.Millisecond)
		}
		r.Settle()
		return outcome{state: dump(r), wire: r.TotalWire(), nodes: nodes}
	}
	seq := run(1)
	con := run(8)
	if seq.state != con.state {
		t.Fatalf("state diverged between workers=1 and workers=8:\n--- seq\n%s--- con\n%s", seq.state, con.state)
	}
	if seq.wire != con.wire {
		t.Fatalf("wire traffic diverged: seq=%+v con=%+v", seq.wire, con.wire)
	}
	if seq.nodes != con.nodes || seq.nodes == 0 {
		t.Fatalf("solver nodes diverged: seq=%d con=%d", seq.nodes, con.nodes)
	}
}

// TestEpochValidation: overlapping, unknown, and stopped nodes are
// rejected before anything runs, and sends from unlisted nodes surface as
// errors at the barrier.
func TestClusterEpochValidation(t *testing.T) {
	r := buildRing(t, Options{Workers: 2, Latency: time.Millisecond}, 3)
	noop := func() (*core.SolveResult, error) { return nil, nil }

	if _, err := r.RunEpoch([]Item{
		{Label: "a", Nodes: []string{"n0"}, Run: noop},
		{Label: "b", Nodes: []string{"n0"}, Run: noop},
	}); err == nil {
		t.Fatal("overlapping items accepted")
	}
	if _, err := r.RunEpoch([]Item{{Label: "a", Nodes: []string{"nope"}, Run: noop}}); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := r.RunEpoch([]Item{{Label: "a", Nodes: nil, Run: noop}}); err == nil {
		t.Fatal("item without nodes accepted")
	}
	if err := r.StopNode("n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunEpoch([]Item{{Label: "a", Nodes: []string{"n2"}, Run: noop}}); err == nil {
		t.Fatal("stopped node accepted")
	}

	// An item that touches a node it did not list: the send is refused and
	// reported at the barrier.
	n1 := r.Node("n1")
	_, err := r.RunEpoch([]Item{{
		Label: "sneaky",
		Nodes: []string{"n0"},
		Run: func() (*core.SolveResult, error) {
			return n1.Solve(core.SolveOptions{}) // ships from n1, owned by nobody
		},
	}})
	if err == nil || !strings.Contains(err.Error(), "without being listed") {
		t.Fatalf("unlisted sender not surfaced: %v", err)
	}
}

// TestClusterFailureInjectionAndRejoin: a stopped node loses its traffic;
// after a restart the runtime's automatic anti-entropy resync pulls the
// decisions the node missed — no protocol-level resync rules — and the
// restart is a statistics boundary (post-restart transport counters start
// at zero, resync work is accounted in EpochStats).
func TestClusterFailureInjectionAndRejoin(t *testing.T) {
	r := buildRing(t, Options{Workers: 4, Latency: time.Millisecond}, 4)
	// Several churn epochs, so the pre-failure traffic history dwarfs the
	// later resync exchange (the stats-reset assertion relies on it).
	for epoch := 0; epoch < 4; epoch++ {
		if _, err := r.RunEpoch(solveItems(r)); err != nil {
			t.Fatal(err)
		}
		r.Settle()
		for i, addr := range r.Addrs() {
			if err := r.Node(addr).Insert("need", sval(addr), ival(int64(5+epoch+i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(r.Node("n1").Rows("got")) == 0 {
		t.Fatal("no replicated decisions before failure")
	}

	// Drop n1. Its upstream neighbor n0 changes its demand and re-solves;
	// the shipped update is lost in flight.
	if err := r.StopNode("n1"); err != nil {
		t.Fatal(err)
	}
	preStop := r.Transport().NodeStats("n1")
	if r.Node("n1") != nil {
		t.Fatal("stopped node still visible")
	}
	if err := r.Node("n0").Insert("need", sval("n0"), ival(7)); err != nil {
		t.Fatal(err)
	}
	st, err := r.RunEpoch(solveItems(r)) // three live nodes
	if err != nil {
		t.Fatal(err)
	}
	if st.Items != 3 {
		t.Fatalf("items = %d, want 3", st.Items)
	}
	r.Settle()
	if st := r.History()[len(r.History())-1]; st.MsgsDropped == 0 {
		t.Fatalf("no drops recorded while n1 was down: %+v", st)
	}

	// Rejoin: a fresh instance with only seed facts, then the automatic
	// digest exchange. The decisions n0 shipped while n1 was down were
	// dropped in flight, and materialization diffs mean they would never
	// re-ship on their own — the anti-entropy pull is what re-converges
	// the rejoined node.
	n1, err := r.RestartNode("n1")
	if err != nil {
		t.Fatal(err)
	}
	got := n1.Rows("got")
	if len(got) == 0 {
		t.Fatal("rejoined node received no replicated decisions")
	}
	// The rejoined node must see n0's full current decision state — the
	// solve that happened while it was down included.
	var total int64
	for _, row := range r.Node("n0").Rows("pick") {
		total += row[2].I
	}
	if total < 7 {
		t.Fatalf("n0 picks sum to %d, want >= 7 (the need update while n1 was down)", total)
	}
	var replicated int64
	for _, row := range got {
		if row[1].S == "n0" {
			replicated += row[3].I
		}
	}
	if replicated != total {
		t.Fatalf("rejoined node sees %d units from n0, want %d", replicated, total)
	}

	// The resync work is visible in the statistics, attributed to the last
	// epoch's window.
	hist := r.History()
	last := hist[len(hist)-1]
	if last.ResyncRows == 0 || last.ResyncBytes == 0 {
		t.Fatalf("resync not accounted: %+v", last)
	}

	// Restart boundary: the transport counters of the restarted node were
	// reset, so they now reflect only post-restart traffic (the resync
	// exchange), not the pre-failure epochs. Counters are monotonic, so
	// observing them *lower* than at stop time pins the reset.
	restarted := r.Transport().NodeStats("n1")
	if restarted.MsgsSent >= preStop.MsgsSent || restarted.MsgsReceived >= preStop.MsgsReceived {
		t.Fatalf("restarted node's counters not reset: post-restart %+v vs pre-failure %+v",
			restarted, preStop)
	}
	// History still accounts for every message, including the retired
	// pre-failure counters.
	var msgs int64
	for _, st := range r.History() {
		msgs += st.MsgsSent
	}
	if total := r.TotalWire().MsgsSent; msgs != total {
		t.Fatalf("history accounts %d msgs, transport saw %d", msgs, total)
	}
}

// TestBatchDeltasReducesMessages: the same epochs with per-(epoch,
// destination) batching produce the same tables with fewer messages.
func TestClusterBatchDeltasReducesMessages(t *testing.T) {
	run := func(batch bool) (string, transport.Stats) {
		r := buildRing(t, Options{Workers: 4, Latency: time.Millisecond, BatchDeltas: batch}, 5)
		for epoch := 0; epoch < 2; epoch++ {
			if _, err := r.RunEpoch(solveItems(r)); err != nil {
				t.Fatal(err)
			}
			r.Advance(10 * time.Millisecond)
			// Churn so the second epoch re-ships decisions.
			for i, addr := range r.Addrs() {
				if err := r.Node(addr).Insert("need", sval(addr), ival(int64(5+i))); err != nil {
					t.Fatal(err)
				}
			}
		}
		r.Settle()
		return dump(r), r.TotalWire()
	}
	plainState, plain := run(false)
	batchState, batched := run(true)
	if plainState != batchState {
		t.Fatalf("state diverged under batching:\n--- plain\n%s--- batched\n%s", plainState, batchState)
	}
	if batched.MsgsSent >= plain.MsgsSent {
		t.Fatalf("batching did not reduce messages: %d >= %d", batched.MsgsSent, plain.MsgsSent)
	}
	if batched.BytesSent > plain.BytesSent {
		t.Fatalf("batching grew bytes: %d > %d", batched.BytesSent, plain.BytesSent)
	}
}

// TestUDPModeRoundTrip: the same ring runs free-running over real sockets.
func TestClusterUDPModeRoundTrip(t *testing.T) {
	r := New(Options{Mode: ModeUDP, Workers: 4})
	defer r.Close()
	res := testProgram(t)
	for i := 0; i < 3; i++ {
		if _, err := r.Spawn(ringSpec(res, i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.RunEpoch(solveItems(r)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		ok := true
		for _, addr := range r.Addrs() {
			if len(r.Node(addr).Rows("got")) == 0 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("decisions never replicated over UDP")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHistoryAccountsAllTraffic: every message lands in some epoch's
// window; settle traffic is folded into the last epoch.
func TestClusterHistoryAccountsAllTraffic(t *testing.T) {
	r := buildRing(t, Options{Workers: 2, Latency: time.Millisecond}, 3)
	for epoch := 0; epoch < 2; epoch++ {
		if _, err := r.RunEpoch(solveItems(r)); err != nil {
			t.Fatal(err)
		}
		r.Settle()
	}
	hist := r.History()
	if len(hist) != 2 {
		t.Fatalf("history length = %d, want 2", len(hist))
	}
	var msgs int64
	for _, st := range hist {
		msgs += st.MsgsSent
	}
	if total := r.TotalWire().MsgsSent; msgs != total {
		t.Fatalf("history accounts %d msgs, transport saw %d", msgs, total)
	}
}
