package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/transport"
)

// ShardPlan partitions the cluster's node addresses into key-range shards.
// Scenario packages derive the plan from their locality structure —
// wireless grids shard spatially by column ranges, acloud by data-center
// index ranges, followsun by ring segments (see each package's
// ShardPlanFor and docs/sharding.md). The zero value is a single implicit
// shard, which leaves every run byte-identical to the unsharded runtime.
type ShardPlan struct {
	// Count is the number of shards; 0 and 1 both mean a single shard.
	Count int
	// Of maps a node address onto its owning shard in [0, Count). Nil maps
	// everything onto shard 0. The function must be pure and must agree
	// across the processes of a multi-process deployment.
	Of func(addr string) int
}

// shardCount resolves the plan to at least one shard.
func (p ShardPlan) shardCount() int {
	if p.Count < 1 {
		return 1
	}
	return p.Count
}

// of resolves an address, clamping stray values into range.
func (p ShardPlan) of(addr string) int {
	if p.Of == nil {
		return 0
	}
	s := p.Of(addr)
	if s < 0 {
		return 0
	}
	if n := p.shardCount(); s >= n {
		return n - 1
	}
	return s
}

// IndexRanges returns a ShardPlan splitting a known address list into
// contiguous index ranges (the generic key-range partition cologne uses
// when a program has no scenario-specific locality). Addresses must be in
// their canonical (sorted) order; unknown addresses map to shard 0.
func IndexRanges(addrs []string, count int) ShardPlan {
	idx := make(map[string]int, len(addrs))
	for i, a := range addrs {
		idx[a] = i
	}
	n := len(addrs)
	return ShardPlan{
		Count: count,
		Of: func(addr string) int {
			i, ok := idx[addr]
			if !ok || n == 0 {
				return 0
			}
			return i * count / n
		},
	}
}

// aggAddrPrefix namespaces the per-shard aggregator addresses on the
// transport; the '!' keeps them out of any scenario's node-address space.
const aggAddrPrefix = "!shard/"

// AggAddr is the transport address of shard s's epoch aggregator.
func AggAddr(s int) string { return aggAddrPrefix + strconv.Itoa(s) }

// shardOfAddr maps any transport address — scenario node or aggregator —
// onto its owning shard. The ShardUDP transport routes with it.
func (r *Runtime) shardOfAddr(addr string) int {
	if rest, ok := strings.CutPrefix(addr, aggAddrPrefix); ok {
		if s, err := strconv.Atoi(rest); err == nil && s >= 0 && s < r.opts.Shards.shardCount() {
			return s
		}
		return 0
	}
	return r.opts.Shards.of(addr)
}

// LocalShard returns the shard this runtime instance hosts in a
// multi-process deployment, or -1 when the runtime hosts every shard
// (single-process modes).
func (r *Runtime) LocalShard() int {
	if r.shardUDP == nil {
		return -1
	}
	return r.opts.ShardID
}

// ShardTransport returns the multi-process shard transport, or nil in
// single-process modes. Harnesses use it for the out-of-band control
// channel (startup barriers, lockstep tokens, load-driver queries).
func (r *Runtime) ShardTransport() *transport.ShardUDP { return r.shardUDP }

// RemoteShard reports the owning shard of an address this process does not
// host, and whether the address is such a remote node.
func (r *Runtime) RemoteShard(addr string) (int, bool) {
	s, ok := r.remote[addr]
	return s, ok
}

// NewMultiProcess builds a runtime hosting exactly one shard of a
// multi-process deployment: Options.ShardEndpoints lists every shard's UDP
// endpoint ("host:port", index = shard id) and Options.ShardID selects
// this process's entry. Nodes whose plan shard differs from ShardID are
// skipped at Spawn (they belong to a peer process) and cross-shard deltas
// flow over the routed shard transport. The runtime free-runs like ModeUDP
// — no epoch barrier, wall-clock time.
func NewMultiProcess(o Options) (*Runtime, error) {
	if len(o.ShardEndpoints) == 0 {
		return nil, fmt.Errorf("cluster: multi-process mode needs shard endpoints")
	}
	if o.Shards.Count == 0 {
		o.Shards.Count = len(o.ShardEndpoints)
	}
	if o.Shards.Count != len(o.ShardEndpoints) {
		return nil, fmt.Errorf("cluster: shard count %d != endpoint count %d", o.Shards.Count, len(o.ShardEndpoints))
	}
	if o.ShardID < 0 || o.ShardID >= len(o.ShardEndpoints) {
		return nil, fmt.Errorf("cluster: shard id %d outside endpoint list (len %d)", o.ShardID, len(o.ShardEndpoints))
	}
	if o.Storage != "" && o.Storage != "memory" {
		return nil, fmt.Errorf("cluster: multi-process mode does not support %q storage yet", o.Storage)
	}
	r := newRuntime(o)
	tr, err := transport.NewShardUDP(o.ShardID, o.ShardEndpoints, r.shardOfAddr)
	if err != nil {
		return nil, err
	}
	r.shardUDP = tr
	r.inner = tr
	r.startClock()
	r.ensureAggregators()
	return r, nil
}
