package cluster

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// CheckpointNow exports a checkpoint of every live node immediately,
// independent of Options.CheckpointEvery. RestartNode uses the latest
// checkpoint to rebuild a failed node.
func (r *Runtime) CheckpointNow() error {
	return r.checkpointAll()
}

func (r *Runtime) checkpointAll() error {
	var firstErr error
	for _, addr := range r.order {
		m := r.members[addr]
		if m == nil || m.down {
			continue
		}
		// For nodes with a durable log the export doubles as a compaction:
		// the log is atomically reduced to one checkpoint record, bounding
		// replay time, and the spill files shed abandoned space.
		data, err := m.node.CheckpointAndCompact()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: checkpointing %s: %w", addr, err)
			}
			continue
		}
		m.checkpoint = data
	}
	return firstErr
}

// resyncNode runs the anti-entropy exchange for a freshly restarted node:
// in-flight traffic is drained first (so digests reflect everything already
// delivered), the node sends a digest of its mirrors to every live peer,
// and the exchange — pulls toward the restarted node plus the reverse pulls
// the peers run against it — is driven to completion: deterministically via
// the scheduler in simulation mode, by polling with a timeout over UDP.
func (r *Runtime) resyncNode(addr string) error {
	n := r.members[addr].node
	var peers []string
	for _, a := range r.order {
		if a == addr {
			continue
		}
		if m := r.members[a]; m != nil && !m.down {
			peers = append(peers, a)
		}
	}
	if len(peers) == 0 {
		return nil
	}
	r.Settle()
	if err := n.StartResync(peers); err != nil {
		return fmt.Errorf("cluster: resyncing %s: %w", addr, err)
	}
	if r.sched != nil {
		// Simulated runs settle deterministically — but frames can still be
		// lost to active failure injection (a partitioned link, a delivery
		// hook), so an exchange left outstanding after the drain is an
		// error, exactly as a UDP timeout would be.
		r.Settle()
		if pending := r.resyncPending(); pending > 0 {
			return fmt.Errorf("cluster: resync of %s left %d exchanges outstanding (frames lost to failure injection?)", addr, pending)
		}
		return nil
	}
	timeout := r.opts.ResyncTimeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		pending := r.resyncPending()
		if pending == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: resync of %s timed out with %d exchanges outstanding", addr, pending)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// resyncPending sums the outstanding resync exchanges across live nodes.
func (r *Runtime) resyncPending() int {
	pending := 0
	for _, a := range r.order {
		if m := r.members[a]; m != nil && !m.down {
			pending += m.node.ResyncPending()
		}
	}
	return pending
}

// resyncDelta returns the summed anti-entropy pull counters accumulated
// since the previous call and advances the per-node snapshots.
func (r *Runtime) resyncDelta() (rows, bytes int64) {
	for _, addr := range r.order {
		m := r.members[addr]
		if m == nil || m.node == nil {
			continue
		}
		cur := m.node.ResyncStats()
		prev := r.lastResync[addr]
		rows += cur.RowsPulled - prev.RowsPulled
		bytes += cur.BytesPulled - prev.BytesPulled
		r.lastResync[addr] = cur
	}
	return rows, bytes
}

// restoreOrReseed builds the replacement instance for a restarted node:
// by replaying its local write-ahead log when the node's storage backend
// has one (the log subsumes checkpoints — compaction folds them in as
// records), otherwise from the latest checkpoint when one exists (state
// installed verbatim, program facts not replayed), otherwise a fresh
// instance with only its Seed facts.
func (r *Runtime) restoreOrReseed(m *member) (*core.Node, error) {
	spec := m.spec
	if r.opts.BatchDeltas {
		spec.Config.BatchDeltas = true
	}
	if st := spec.Config.Storage; st != nil && st.Log() != nil {
		return core.ReplayNode(spec.Addr, spec.Program, spec.Config, r.nodeTransport())
	}
	if m.checkpoint != nil {
		return core.RestoreNode(spec.Addr, spec.Program, spec.Config, r.nodeTransport(), m.checkpoint)
	}
	n, err := core.NewNode(spec.Addr, spec.Program, spec.Config, r.nodeTransport())
	if err != nil {
		return nil, err
	}
	if spec.Seed != nil {
		if err := spec.Seed(n); err != nil {
			return nil, fmt.Errorf("reseeding: %w", err)
		}
	}
	return n, nil
}

// ensureBaseFacts re-injects a replayed node's base facts — program facts
// plus the spec's Seed — in idempotent-insert mode: rows the log replay
// already restored are untouched (no count bump, no log record), rows a
// torn log lost are re-inserted. Local base facts are the one input
// anti-entropy cannot pull back from peers, so this closes the last gap in
// crash recovery. Runs after the node is back up: re-inserted facts may
// derive tuples addressed to peers.
func ensureBaseFacts(n *core.Node, spec NodeSpec) error {
	n.SetEnsureInserts(true)
	defer n.SetEnsureInserts(false)
	if err := n.InsertProgramFacts(); err != nil {
		return err
	}
	if spec.Seed != nil {
		return spec.Seed(n)
	}
	return nil
}
