package cluster

import (
	"time"

	"repro/internal/transport"
)

// EpochStats aggregates one epoch's work: how much solving the items did
// and how much traffic the cluster put on the wire. Wire counters come from
// transport.Stats deltas over all nodes; solver counters fold the
// SolveResults the items returned.
type EpochStats struct {
	// Epoch numbers epochs from zero per Runtime.
	Epoch int
	// Items is the number of work items the epoch ran.
	Items int
	// Solves counts items that returned a SolveResult.
	Solves int
	// SolverNodes sums the search nodes across those solves.
	SolverNodes int64
	// ConstsPatched sums the incremental grounder's in-place constant
	// patches across those solves (zero unless SolverIncremental).
	ConstsPatched int
	// MsgsSent/BytesSent count wire traffic across all nodes in this
	// epoch's window (see RunEpoch on window attribution).
	MsgsSent, BytesSent int64
	// MsgsDropped counts messages lost to failure injection in the window
	// (simulated transport only).
	MsgsDropped int64
	// ResyncRows and ResyncBytes count the anti-entropy work in this
	// epoch's window: rows applied while reconciling restarted nodes
	// against their peers, and the payload bytes of the resync rows frames
	// that carried them (summed over all nodes; see docs/recovery.md).
	ResyncRows, ResyncBytes int64
	// LogRecords and LogBytes count the write-ahead-log appends in this
	// epoch's window, summed over all nodes (zero unless Options.Storage
	// selects a durable backend; see docs/storage.md).
	LogRecords, LogBytes int64
	// Shards is the shard count the epoch ran under (1 unsharded).
	Shards int
	// AggMsgs and AggBytes count the epoch-summary frames exchanged between
	// shard aggregators in this epoch's window (zero with aggregation off).
	// Node wire traffic above never includes them; the rollup-vs-allpairs
	// benchmark compares exactly these counters (see docs/sharding.md).
	AggMsgs, AggBytes int64
	// Timing breakdown (see docs/distribution.md). ExecWall is the wall
	// time of the concurrent phase — all items on the worker pool.
	// GroundWall and SolveWall sum the items' solver-model-build and
	// search times; with more than one worker their sum can exceed
	// ExecWall, and the ratio is the epoch's effective parallelism.
	// FlushWall sums the items' batched outbox encode/flush time (zero
	// unless BatchDeltas). BarrierWall is the time the epoch barrier spent
	// replaying staged messages into the simulated network (zero in
	// ModeUDP).
	ExecWall    time.Duration
	GroundWall  time.Duration
	SolveWall   time.Duration
	FlushWall   time.Duration
	BarrierWall time.Duration
	// LongestItem is the label of the item with the largest wall time —
	// the epoch's critical path — and LongestWall that wall time.
	LongestItem string
	LongestWall time.Duration
}

// History returns the per-epoch statistics recorded so far. Wire traffic
// since the last epoch (settling, advances) is folded into the final entry
// first, so the history always accounts for every message.
func (r *Runtime) History() []EpochStats {
	r.closeWindow()
	return append([]EpochStats(nil), r.history...)
}

// TotalWire sums the wire counters over all nodes, including stopped ones
// and the counters retired when a restart reset a node's statistics.
func (r *Runtime) TotalWire() transport.Stats {
	total := r.retiredWire
	for _, addr := range r.order {
		st := r.inner.NodeStats(addr)
		total.MsgsSent += st.MsgsSent
		total.MsgsReceived += st.MsgsReceived
		total.BytesSent += st.BytesSent
		total.BytesReceived += st.BytesReceived
	}
	return total
}

// closeWindow folds wire traffic and resync work since the last snapshot
// into the most recent epoch's history entry.
func (r *Runtime) closeWindow() {
	if len(r.history) == 0 {
		// Pre-epoch traffic (seeding, initial replication) has no epoch to
		// belong to; wireDelta still advances the snapshot so epoch 0 only
		// sees its own traffic.
		r.wireDelta(nil)
		r.resyncDelta()
		r.logDelta()
		r.aggDelta()
		return
	}
	d, drops := r.wireDelta(nil)
	rows, bytes := r.resyncDelta()
	logRecs, logBytes := r.logDelta()
	aggMsgs, aggBytes := r.aggDelta()
	last := &r.history[len(r.history)-1]
	last.MsgsSent += d.MsgsSent
	last.BytesSent += d.BytesSent
	last.MsgsDropped += drops
	last.ResyncRows += rows
	last.ResyncBytes += bytes
	last.LogRecords += logRecs
	last.LogBytes += logBytes
	last.AggMsgs += aggMsgs
	last.AggBytes += aggBytes
}

// logDelta returns the summed write-ahead-log append counters accumulated
// since the previous call and advances the per-node snapshots. The WAL's
// counters are monotonic across restarts (the Store outlives node
// instances), so snapshots are never reset.
func (r *Runtime) logDelta() (records, bytes int64) {
	for _, addr := range r.order {
		m := r.members[addr]
		if m == nil || m.node == nil {
			continue
		}
		recs, b := m.node.LogStats()
		prev := r.lastLog[addr]
		records += recs - prev[0]
		bytes += b - prev[1]
		r.lastLog[addr] = [2]int64{recs, b}
	}
	return records, bytes
}

// wireDelta returns the per-node-summed traffic since the previous call
// and advances the snapshot. A non-nil perShard (length = shard count)
// additionally receives each shard's slice of the delta, attributed by the
// sending node's shard.
func (r *Runtime) wireDelta(perShard []transport.Stats) (transport.Stats, int64) {
	var d transport.Stats
	for _, addr := range r.order {
		cur := r.inner.NodeStats(addr)
		prev := r.lastWire[addr]
		sent, bytes := cur.MsgsSent-prev.MsgsSent, cur.BytesSent-prev.BytesSent
		d.MsgsSent += sent
		d.BytesSent += bytes
		d.MsgsReceived += cur.MsgsReceived - prev.MsgsReceived
		d.BytesReceived += cur.BytesReceived - prev.BytesReceived
		r.lastWire[addr] = cur
		if m := r.members[addr]; m != nil && m.shard < len(perShard) {
			perShard[m.shard].MsgsSent += sent
			perShard[m.shard].BytesSent += bytes
		}
	}
	var drops int64
	if st, ok := r.inner.(*transport.Sim); ok {
		drops = st.DroppedMsgs() - r.lastDrops
		r.lastDrops = st.DroppedMsgs()
	}
	return d, drops
}

// aggDelta returns the aggregator-to-aggregator traffic since the previous
// call and advances the snapshot. Aggregator addresses live outside
// r.order, so node wire counters never double-count these frames.
func (r *Runtime) aggDelta() (msgs, bytes int64) {
	if r.aggs == nil {
		return 0, 0
	}
	for s := 0; s < r.opts.Shards.shardCount(); s++ {
		addr := AggAddr(s)
		cur := r.inner.NodeStats(addr)
		prev := r.lastAggWire[addr]
		msgs += cur.MsgsSent - prev.MsgsSent
		bytes += cur.BytesSent - prev.BytesSent
		r.lastAggWire[addr] = cur
	}
	return msgs, bytes
}
