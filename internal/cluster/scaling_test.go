package cluster

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

// heavySpec builds node i of an n-node ring whose per-node COP is CPU-bound:
// `items` decision variables and a node budget that fixes the search effort,
// so every epoch item costs roughly the same wall time. The scaling and
// scheduling tests use it to measure the executor, not the solver.
func heavySpec(t *testing.T, i, n, items int, maxNodes int64) NodeSpec {
	t.Helper()
	spec := ringSpec(testProgram(t), i, n)
	addr := spec.Addr
	spec.Config.SolverMaxNodes = maxNodes
	base := spec.Seed
	spec.Seed = func(nd *core.Node) error {
		if err := base(nd); err != nil {
			return err
		}
		for d := 2; d < items; d++ {
			dn := fmt.Sprintf("d%d", d)
			if err := nd.Insert("item", sval(addr), sval(dn)); err != nil {
				return err
			}
			if err := nd.Insert("w", sval(addr), sval(dn), ival(int64(i+d))); err != nil {
				return err
			}
		}
		// A demand floor deep enough that minimization has real work to do
		// across the widened variable set.
		return nd.Insert("need", sval(addr), ival(int64(2*items)))
	}
	return spec
}

func buildHeavyRing(t *testing.T, o Options, n, items int, maxNodes int64) *Runtime {
	t.Helper()
	r := New(o)
	for i := 0; i < n; i++ {
		if _, err := r.Spawn(heavySpec(t, i, n, items, maxNodes)); err != nil {
			t.Fatal(err)
		}
	}
	r.Settle()
	return r
}

// TestClusterScalingSpeedup pins the tentpole claim on a synthetic
// CPU-heavy epoch: eight independent budget-capped solves must run at least
// 2x faster on an 8-worker pool than sequentially. Timing-sensitive, so it
// skips under -short, under the race detector, and on hosts without enough
// cores to show parallelism.
func TestClusterScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion, skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the speedup measurement")
	}
	if p := runtime.GOMAXPROCS(0); p < 4 {
		// Print through fmt, not t.Skipf: skip reasons only reach the log
		// under -v, and CI must show why the >=3x speedup gate did not run
		// on this host.
		fmt.Printf("cluster: TestClusterScalingSpeedup NOT RUN: GOMAXPROCS=%d < 4 — "+
			"the speedup gate needs >= 4 CPUs to demonstrate parallelism\n", p)
		t.Skipf("needs >= 4 CPUs to demonstrate scaling, have %d", p)
	}
	epochWall := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		// Best-of-two damps scheduler and GC noise.
		for attempt := 0; attempt < 2; attempt++ {
			r := buildHeavyRing(t, Options{Workers: workers, Latency: time.Millisecond}, 8, 10, 30000)
			st, err := r.RunEpoch(solveItems(r))
			if err != nil {
				t.Fatal(err)
			}
			r.Settle()
			if st.ExecWall < best {
				best = st.ExecWall
			}
		}
		return best
	}
	seq := epochWall(1)
	con := epochWall(8)
	if con > seq/2 {
		t.Fatalf("workers=8 epoch took %v, want <= half of workers=1 epoch (%v)", con, seq)
	}
}

// TestClusterSchedulingEquivalence: the cost-aware scheduler only reorders
// item start times — tables, wire counters, and solver work must be
// byte-identical to FIFO dispatch, epoch after epoch (the EWMA is warm from
// the second epoch on). Unknown policies are rejected up front.
func TestClusterSchedulingEquivalence(t *testing.T) {
	run := func(policy string) (string, int64) {
		r := buildRing(t, Options{Workers: 4, Scheduling: policy, Latency: time.Millisecond}, 5)
		var nodes int64
		for epoch := 0; epoch < 3; epoch++ {
			st, err := r.RunEpoch(solveItems(r))
			if err != nil {
				t.Fatal(err)
			}
			nodes += st.SolverNodes
			r.Advance(10 * time.Millisecond)
		}
		r.Settle()
		return dump(r), nodes
	}
	fifoState, fifoNodes := run(SchedulingFIFO)
	costState, costNodes := run(SchedulingCost)
	if fifoState != costState {
		t.Fatalf("state diverged between fifo and cost scheduling:\n--- fifo\n%s--- cost\n%s", fifoState, costState)
	}
	if fifoNodes != costNodes || fifoNodes == 0 {
		t.Fatalf("solver nodes diverged: fifo=%d cost=%d", fifoNodes, costNodes)
	}

	r := buildRing(t, Options{Workers: 2, Scheduling: "sorted-by-vibes", Latency: time.Millisecond}, 2)
	if _, err := r.RunEpoch(solveItems(r)); err == nil {
		t.Fatal("unknown scheduling policy accepted")
	}
}

// TestClusterEpochTimingBreakdown: the per-epoch timing fields must be
// populated and mutually consistent — the longest item bounds the exec
// phase, and solver-bearing epochs report ground and solve time.
func TestClusterEpochTimingBreakdown(t *testing.T) {
	r := buildRing(t, Options{Workers: 1, Latency: time.Millisecond}, 3)
	st, err := r.RunEpoch(solveItems(r))
	if err != nil {
		t.Fatal(err)
	}
	if st.ExecWall <= 0 {
		t.Fatalf("ExecWall = %v, want > 0", st.ExecWall)
	}
	if st.GroundWall <= 0 || st.SolveWall <= 0 {
		t.Fatalf("GroundWall = %v, SolveWall = %v, want both > 0", st.GroundWall, st.SolveWall)
	}
	if st.LongestItem == "" || st.LongestWall <= 0 {
		t.Fatalf("longest item not recorded: %q %v", st.LongestItem, st.LongestWall)
	}
	if st.LongestWall > st.ExecWall {
		t.Fatalf("LongestWall %v exceeds ExecWall %v", st.LongestWall, st.ExecWall)
	}
	// Sequential execution: the walls of all items sum into the exec phase,
	// so ground+solve can never exceed it.
	if st.GroundWall+st.SolveWall > st.ExecWall {
		t.Fatalf("ground %v + solve %v exceeds sequential exec wall %v",
			st.GroundWall, st.SolveWall, st.ExecWall)
	}
}

// TestClusterBarrierMergeConcurrent drives the reworked epoch barrier hard:
// a wide ring on a full pool, every item shipping replication traffic
// concurrently into the per-item staging arenas across several epochs. Its
// value is under `go test -race`: any unsynchronized access in the
// Send/begin/commit protocol (or a recycled encode buffer still referenced
// by the arena copy) surfaces here. State must stay byte-identical to the
// sequential run regardless.
func TestClusterBarrierMergeConcurrent(t *testing.T) {
	run := func(workers int) string {
		r := buildRing(t, Options{Workers: workers, Latency: time.Millisecond}, 16)
		for epoch := 0; epoch < 3; epoch++ {
			if _, err := r.RunEpoch(solveItems(r)); err != nil {
				t.Fatal(err)
			}
			r.Advance(10 * time.Millisecond)
		}
		r.Settle()
		return dump(r)
	}
	seq := run(1)
	con := run(8)
	if seq != con {
		t.Fatalf("barrier merge diverged from sequential:\n--- seq\n%s--- con\n%s", seq, con)
	}
}
