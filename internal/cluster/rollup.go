package cluster

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/transport"
)

// Aggregation policies for Options.Aggregation. They control how the
// per-shard epoch summaries reach the cluster-level rollup:
//
//   - off: no summaries, no aggregator traffic — the pre-sharding behavior,
//     and the default.
//   - rollup: hierarchical aggregation over a fanout tree rooted at shard 0.
//     Each shard folds its own summary with its children's and forwards ONE
//     frame to its parent, so an epoch costs N-1 cross-shard frames total.
//   - allpairs: the gossip baseline the paper's all-to-all exchange would
//     produce — every shard broadcasts its summary to every other shard,
//     N*(N-1) frames per epoch. Exists to measure what rollup saves.
const (
	AggregationOff      = "off"
	AggregationRollup   = "rollup"
	AggregationAllPairs = "allpairs"
)

// aggKind normalizes Options.Aggregation, rejecting unknown values.
func (r *Runtime) aggKind() (string, error) {
	switch r.opts.Aggregation {
	case "", AggregationOff:
		return AggregationOff, nil
	case AggregationRollup:
		return AggregationRollup, nil
	case AggregationAllPairs:
		return AggregationAllPairs, nil
	}
	return "", fmt.Errorf("cluster: unknown aggregation %q (want %q, %q, or %q)",
		r.opts.Aggregation, AggregationOff, AggregationRollup, AggregationAllPairs)
}

// aggFanout resolves the rollup tree's fanout (default 4).
func (r *Runtime) aggFanout() int {
	if r.opts.AggFanout < 2 {
		return 4
	}
	return r.opts.AggFanout
}

// aggParent returns shard s's parent in the rollup tree (s > 0).
func (r *Runtime) aggParent(s int) int { return (s - 1) / r.aggFanout() }

// aggChildCount returns how many children shard s has in the rollup tree.
func (r *Runtime) aggChildCount(s int) int {
	f := r.aggFanout()
	n := r.opts.Shards.shardCount()
	first := f*s + 1
	if first >= n {
		return 0
	}
	last := f*s + f
	if last >= n {
		last = n - 1
	}
	return last - first + 1
}

// ShardSummary is one epoch's objective/health rollup for a set of shards.
// Leaves carry a single shard's numbers (Folded == 1); interior tree nodes
// fold their children in, and the frame that reaches shard 0 covers the
// whole cluster (Folded == shard count). Shard and Epoch identify the
// folding shard and the epoch; everything else is additive.
type ShardSummary struct {
	// Shard is the shard that produced (or last folded) this summary.
	Shard int
	// Epoch is the epoch the summary describes.
	Epoch int
	// Folded counts how many shards' summaries this frame folds (>= 1).
	Folded int
	// Members counts the live nodes hosted by the folded shards.
	Members int
	// Items, Solves, SolverNodes, and ConstsPatched fold the epoch's
	// executor statistics for the folded shards' items.
	Items         int
	Solves        int
	SolverNodes   int64
	ConstsPatched int
	// Objective sums the goal values of the folded shards' solves.
	Objective float64
	// MsgsSent and BytesSent count the folded shards' node wire traffic in
	// the epoch window (aggregator traffic excluded).
	MsgsSent, BytesSent int64
}

// Fold adds o's counters into s, keeping s's Shard and Epoch identity.
func (s *ShardSummary) Fold(o ShardSummary) {
	s.Folded += o.Folded
	s.Members += o.Members
	s.Items += o.Items
	s.Solves += o.Solves
	s.SolverNodes += o.SolverNodes
	s.ConstsPatched += o.ConstsPatched
	s.Objective += o.Objective
	s.MsgsSent += o.MsgsSent
	s.BytesSent += o.BytesSent
}

// Rollup frame wire format: [magic 'R'][version 1], then the counters as
// varints (uvarint for non-negatives), then the objective as 8 fixed
// little-endian bytes of its IEEE-754 bits — floats do not round-trip
// through integer varints.
const (
	rollupMagic   = 'R'
	rollupVersion = 1
)

// EncodeRollupFrame serializes a summary into a rollup frame.
func EncodeRollupFrame(s ShardSummary) []byte {
	b := make([]byte, 0, 64)
	b = append(b, rollupMagic, rollupVersion)
	for _, v := range []int64{
		int64(s.Shard), int64(s.Epoch), int64(s.Folded), int64(s.Members),
		int64(s.Items), int64(s.Solves), s.SolverNodes, int64(s.ConstsPatched),
		s.MsgsSent, s.BytesSent,
	} {
		b = binary.AppendUvarint(b, uint64(v))
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Objective))
	return b
}

// DecodeRollupFrame parses a rollup frame, rejecting bad magic or version,
// truncated or oversized counters, and trailing garbage.
func DecodeRollupFrame(frame []byte) (ShardSummary, error) {
	var s ShardSummary
	if len(frame) < 2 || frame[0] != rollupMagic {
		return s, fmt.Errorf("cluster: not a rollup frame")
	}
	if frame[1] != rollupVersion {
		return s, fmt.Errorf("cluster: rollup frame version %d, want %d", frame[1], rollupVersion)
	}
	b := frame[2:]
	fields := []*int64{nil, nil, nil, nil, nil, nil, &s.SolverNodes, nil, &s.MsgsSent, &s.BytesSent}
	ints := []*int{&s.Shard, &s.Epoch, &s.Folded, &s.Members, &s.Items, &s.Solves, nil, &s.ConstsPatched, nil, nil}
	for i := range fields {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return ShardSummary{}, fmt.Errorf("cluster: rollup frame truncated at field %d", i)
		}
		if v > math.MaxInt64 {
			return ShardSummary{}, fmt.Errorf("cluster: rollup field %d overflows", i)
		}
		b = b[n:]
		if fields[i] != nil {
			*fields[i] = int64(v)
		} else {
			if v > math.MaxInt {
				return ShardSummary{}, fmt.Errorf("cluster: rollup field %d overflows int", i)
			}
			*ints[i] = int(v)
		}
	}
	if len(b) != 8 {
		return ShardSummary{}, fmt.Errorf("cluster: rollup frame objective: %d trailing bytes, want 8", len(b))
	}
	s.Objective = math.Float64frombits(binary.LittleEndian.Uint64(b))
	return s, nil
}

// aggPending accumulates one epoch's summaries at one aggregator until the
// expected count arrives.
type aggPending struct {
	sum ShardSummary
	got int
}

// shardAgg is one shard's epoch aggregator: a transport endpoint at
// AggAddr(shard) that folds the shard's own summary with inbound frames
// and, once complete, forwards the fold up the tree (rollup) or records it
// (shard 0).
type shardAgg struct {
	r     *Runtime
	shard int

	mu      sync.Mutex
	pending map[int]*aggPending
}

// ensureAggregators registers this runtime's aggregators on the transport:
// all shards' in single-process modes, only the local shard's in
// multi-process mode. No-op when aggregation is off (or invalid — RunEpoch
// reports that).
func (r *Runtime) ensureAggregators() {
	kind, err := r.aggKind()
	if err != nil || kind == AggregationOff {
		return
	}
	count := r.opts.Shards.shardCount()
	r.aggs = map[int]*shardAgg{}
	for s := 0; s < count; s++ {
		if r.shardUDP != nil && s != r.opts.ShardID {
			continue
		}
		a := &shardAgg{r: r, shard: s, pending: map[int]*aggPending{}}
		r.aggs[s] = a
		// Register on the inner transport, not the staging wrapper: the
		// aggregators run outside the epoch's item phase.
		r.inner.Register(AggAddr(s), a.handle)
	}
}

// aggExpected is how many summaries complete an epoch at one aggregator:
// its own plus one per child subtree (rollup), or one per shard (allpairs —
// own deposit plus every peer's broadcast).
func (r *Runtime) aggExpected(shard int) int {
	kind, _ := r.aggKind()
	if kind == AggregationAllPairs {
		return r.opts.Shards.shardCount()
	}
	return 1 + r.aggChildCount(shard)
}

// handle is the aggregator's transport handler: decode and fold.
func (a *shardAgg) handle(m transport.Message) {
	sum, err := DecodeRollupFrame(m.Payload)
	if err != nil {
		return // a corrupt frame costs one epoch's rollup, never the run
	}
	a.add(sum)
}

// add folds one summary into the epoch's pending fold; completing the fold
// records it (shard 0) or forwards it to the parent aggregator (rollup).
func (a *shardAgg) add(sum ShardSummary) {
	a.mu.Lock()
	p := a.pending[sum.Epoch]
	if p == nil {
		p = &aggPending{sum: ShardSummary{Shard: a.shard, Epoch: sum.Epoch}}
		a.pending[sum.Epoch] = p
	}
	p.sum.Fold(sum)
	p.got++
	done := p.got >= a.r.aggExpected(a.shard)
	var complete ShardSummary
	if done {
		complete = p.sum
		delete(a.pending, sum.Epoch)
		// Drop stale partial folds (lost frames in multi-process mode) so
		// the pending map stays bounded.
		for e := range a.pending {
			if e < sum.Epoch-8 {
				delete(a.pending, e)
			}
		}
	}
	a.mu.Unlock()
	if !done {
		return
	}
	kind, _ := a.r.aggKind()
	if a.shard == 0 || kind == AggregationAllPairs {
		// In allpairs every shard completes the full fold; only record it
		// where this process can see it.
		if a.shard == 0 || a.r.shardUDP != nil {
			a.r.recordRollup(complete)
		}
		if a.shard != 0 {
			return
		}
	}
	if a.shard != 0 && kind == AggregationRollup {
		a.r.sendRollup(a.shard, a.r.aggParent(a.shard), complete)
	}
}

// sendRollup ships a folded summary from one aggregator to another.
func (r *Runtime) sendRollup(from, to int, sum ShardSummary) {
	sum.Shard = from
	frame := EncodeRollupFrame(sum)
	if r.rollupFrameHook != nil {
		r.rollupFrameHook(frame)
	}
	// Best-effort: a lost rollup frame costs one epoch's summary, and the
	// pending-map pruning forgets the partial fold.
	_ = r.inner.Send(AggAddr(from), AggAddr(to), frame)
}

// recordRollup stores the latest completed cluster-level summary.
func (r *Runtime) recordRollup(sum ShardSummary) {
	r.rollupMu.Lock()
	if r.rollupLatest == nil || sum.Epoch >= r.rollupLatest.Epoch {
		cp := sum
		r.rollupLatest = &cp
	}
	r.rollupMu.Unlock()
}

// ClusterSummary returns the most recent completed cluster-level epoch
// summary, and whether one has completed. With rollup aggregation it
// completes at shard 0's aggregator once the fold has drained through the
// tree (after the epoch's sends settle); with allpairs, at every shard.
func (r *Runtime) ClusterSummary() (ShardSummary, bool) {
	r.rollupMu.Lock()
	defer r.rollupMu.Unlock()
	if r.rollupLatest == nil {
		return ShardSummary{}, false
	}
	return *r.rollupLatest, true
}

// emitShardSummaries deposits each locally-hosted shard's epoch summary
// into its aggregator and, under allpairs, broadcasts it to every peer
// aggregator. Called at the end of RunEpoch.
func (r *Runtime) emitShardSummaries(sums []ShardSummary) {
	kind, _ := r.aggKind()
	for i := range sums {
		a := r.aggs[sums[i].Shard]
		if a == nil {
			continue // not hosted by this process
		}
		if kind == AggregationAllPairs {
			for peer := 0; peer < r.opts.Shards.shardCount(); peer++ {
				if peer == sums[i].Shard {
					continue
				}
				r.sendRollup(sums[i].Shard, peer, sums[i])
			}
		}
		a.add(sums[i])
	}
}

// shardSummaries splits one epoch's statistics into per-shard summaries.
// Wire counters come from the per-shard wire delta; solver counters are
// attributed to the shard of each item's first node (scenario shard plans
// keep items shard-local, so this is exact for them).
func (r *Runtime) shardSummaries(st EpochStats, items []Item, results []*core.SolveResult, perShard []transport.Stats) []ShardSummary {
	count := r.opts.Shards.shardCount()
	sums := make([]ShardSummary, count)
	for s := range sums {
		sums[s] = ShardSummary{Shard: s, Epoch: st.Epoch, Folded: 1}
		if s < len(perShard) {
			sums[s].MsgsSent = perShard[s].MsgsSent
			sums[s].BytesSent = perShard[s].BytesSent
		}
	}
	for _, addr := range r.order {
		m := r.members[addr]
		if m == nil || m.down || m.node == nil {
			continue
		}
		sums[m.shard].Members++
	}
	for i := range items {
		if len(items[i].Nodes) == 0 {
			continue
		}
		m := r.members[items[i].Nodes[0]]
		if m == nil {
			continue
		}
		sums[m.shard].Items++
		res := results[i]
		if res == nil {
			continue
		}
		sums[m.shard].Solves++
		sums[m.shard].SolverNodes += res.Stats.Nodes
		sums[m.shard].Objective += res.Objective
		if res.Ground != nil {
			sums[m.shard].ConstsPatched += res.Ground.ConstsPatched
		}
	}
	return sums
}
