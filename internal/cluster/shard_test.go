package cluster

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func TestRollupFrameRoundTrip(t *testing.T) {
	cases := []ShardSummary{
		{},
		{Shard: 3, Epoch: 17, Folded: 4, Members: 10000, Items: 125, Solves: 125,
			SolverNodes: 1 << 40, ConstsPatched: 7, Objective: -123.456, MsgsSent: 99, BytesSent: 1 << 33},
		{Objective: math.Inf(1)},
		{Objective: math.NaN()},
	}
	for i, want := range cases {
		frame := EncodeRollupFrame(want)
		got, err := DecodeRollupFrame(frame)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		// NaN-safe equality: compare the objective by bits, the rest directly.
		gotBits, wantBits := math.Float64bits(got.Objective), math.Float64bits(want.Objective)
		got.Objective, want.Objective = 0, 0
		if got != want || gotBits != wantBits {
			t.Fatalf("case %d: round trip mismatch:\n got %+v (obj bits %x)\nwant %+v (obj bits %x)",
				i, got, gotBits, want, wantBits)
		}
	}

	bad := [][]byte{
		nil,
		{'R'},
		{'X', rollupVersion},
		{'R', 99},
		EncodeRollupFrame(ShardSummary{})[:5],  // truncated varints
		EncodeRollupFrame(ShardSummary{})[:12], // truncated objective
		append(EncodeRollupFrame(ShardSummary{}), 0),            // trailing byte
		append([]byte{'R', rollupVersion}, make([]byte, 90)...), // zero varints, oversized tail
	}
	for i, frame := range bad {
		if _, err := DecodeRollupFrame(frame); err == nil {
			t.Fatalf("bad frame %d decoded without error", i)
		}
	}
}

func TestShardPlanIndexRanges(t *testing.T) {
	addrs := []string{"a", "b", "c", "d", "e"}
	plan := IndexRanges(addrs, 2)
	want := map[string]int{"a": 0, "b": 0, "c": 0, "d": 1, "e": 1}
	for addr, shard := range want {
		if got := plan.of(addr); got != shard {
			t.Fatalf("plan.of(%q) = %d, want %d", addr, got, shard)
		}
	}
	if got := plan.of("unknown"); got != 0 {
		t.Fatalf("unknown address mapped to shard %d, want 0", got)
	}
	// Stray Of values clamp into range rather than crashing the runtime.
	wild := ShardPlan{Count: 3, Of: func(string) int { return 99 }}
	if got := wild.of("x"); got != 2 {
		t.Fatalf("overflowing Of clamped to %d, want 2", got)
	}
}

// shardedRing builds the standard test ring under a shard plan.
func shardedRing(t testing.TB, o Options, n int) *Runtime {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("n%d", i)
	}
	if o.Shards.Of == nil {
		o.Shards = IndexRanges(addrs, o.Shards.Count)
	}
	return buildRing(t, o, n)
}

// TestShardRollupAggregation: a 4-shard ring under rollup aggregation must
// (1) keep node state byte-identical to the unsharded run, (2) complete a
// cluster-level summary covering every shard, and (3) cost exactly N-1
// aggregator frames per epoch — the hierarchical fold, not all-pairs
// gossip.
func TestShardRollupAggregation(t *testing.T) {
	plain := buildRing(t, Options{Workers: 2, Latency: time.Millisecond}, 8)
	var plainNodes int64
	for epoch := 0; epoch < 2; epoch++ {
		st, err := plain.RunEpoch(solveItems(plain))
		if err != nil {
			t.Fatal(err)
		}
		plainNodes += st.SolverNodes
		plain.Settle()
	}

	r := shardedRing(t, Options{
		Workers: 2, Latency: time.Millisecond,
		Shards: ShardPlan{Count: 4}, Aggregation: AggregationRollup, AggFanout: 2,
	}, 8)
	var mu sync.Mutex
	var objective float64
	var shardNodes int64
	for epoch := 0; epoch < 2; epoch++ {
		items := solveItems(r)
		for i := range items {
			run := items[i].Run
			items[i].Run = func() (*core.SolveResult, error) {
				res, err := run()
				if res != nil {
					mu.Lock()
					objective += res.Objective
					mu.Unlock()
				}
				return res, err
			}
		}
		objective = 0
		st, err := r.RunEpoch(items)
		if err != nil {
			t.Fatal(err)
		}
		shardNodes += st.SolverNodes
		r.Settle()
		if epoch == 0 {
			// The first epoch replicates fresh picks, so its completed
			// summary must show node wire traffic (epoch 1 re-solves a
			// converged ring and may legitimately send nothing).
			sum0, ok := r.ClusterSummary()
			if !ok || sum0.Epoch != 0 {
				t.Fatalf("epoch 0 summary not completed after settle: %+v ok=%v", sum0, ok)
			}
			if sum0.MsgsSent == 0 {
				t.Fatal("epoch 0 summary shows no node wire traffic on a replicating ring")
			}
		}
	}

	if got, want := dump(r), dump(plain); got != want {
		t.Fatalf("sharded run diverged from unsharded state:\n--- sharded\n%s--- plain\n%s", got, want)
	}
	if shardNodes != plainNodes {
		t.Fatalf("solver nodes diverged: sharded=%d plain=%d", shardNodes, plainNodes)
	}

	sum, ok := r.ClusterSummary()
	if !ok {
		t.Fatal("no cluster summary completed")
	}
	if sum.Epoch != 1 || sum.Folded != 4 || sum.Members != 8 || sum.Solves != 8 {
		t.Fatalf("summary = %+v, want epoch 1 folding 4 shards, 8 members, 8 solves", sum)
	}
	if math.Abs(sum.Objective-objective) > 1e-9 {
		t.Fatalf("summary objective %v != summed node objectives %v", sum.Objective, objective)
	}

	hist := r.History()
	var aggMsgs int64
	for _, st := range hist {
		aggMsgs += st.AggMsgs
		if st.Shards != 4 {
			t.Fatalf("epoch %d ran under %d shards, want 4", st.Epoch, st.Shards)
		}
	}
	// Fanout-2 tree over 4 shards: shards 1..3 each forward one frame per
	// epoch (shard 0 is the root) — 3 frames per epoch, 6 over two epochs.
	if aggMsgs != 6 {
		t.Fatalf("rollup cost %d aggregator frames over 2 epochs, want 6 (N-1 per epoch)", aggMsgs)
	}
}

// TestShardAllPairsBaseline: the gossip baseline must cost N*(N-1) frames
// per epoch and reach the same completed summary — it exists so the
// benchmark has something honest to compare rollup against.
func TestShardAllPairsBaseline(t *testing.T) {
	r := shardedRing(t, Options{
		Workers: 2, Latency: time.Millisecond,
		Shards: ShardPlan{Count: 4}, Aggregation: AggregationAllPairs,
	}, 8)
	if _, err := r.RunEpoch(solveItems(r)); err != nil {
		t.Fatal(err)
	}
	r.Settle()
	sum, ok := r.ClusterSummary()
	if !ok {
		t.Fatal("no cluster summary completed")
	}
	if sum.Folded != 4 || sum.Members != 8 {
		t.Fatalf("summary = %+v, want 4 shards folded over 8 members", sum)
	}
	hist := r.History()
	var aggMsgs int64
	for _, st := range hist {
		aggMsgs += st.AggMsgs
	}
	if aggMsgs != 12 {
		t.Fatalf("allpairs cost %d aggregator frames, want 12 (N*(N-1))", aggMsgs)
	}
}

// TestShardCountOneIdentity pins the acceptance criterion that a sharded
// run at shard-count=1 is byte-identical to today's unsharded runs: same
// table dumps, same solver work, same wire counters, and zero aggregator
// traffic (the single shard is its own rollup root).
func TestShardCountOneIdentity(t *testing.T) {
	run := func(o Options) (string, []EpochStats) {
		r := buildRing(t, o, 6)
		for epoch := 0; epoch < 3; epoch++ {
			if _, err := r.RunEpoch(solveItems(r)); err != nil {
				t.Fatal(err)
			}
			r.Advance(10 * time.Millisecond)
		}
		r.Settle()
		return dump(r), r.History()
	}
	plainDump, plainHist := run(Options{Workers: 4, Latency: time.Millisecond})
	shardDump, shardHist := run(Options{
		Workers: 4, Latency: time.Millisecond,
		Shards: ShardPlan{Count: 1}, Aggregation: AggregationRollup,
	})
	if plainDump != shardDump {
		t.Fatalf("shard-count=1 diverged from unsharded state:\n--- plain\n%s--- sharded\n%s", plainDump, shardDump)
	}
	if len(plainHist) != len(shardHist) {
		t.Fatalf("history length diverged: %d vs %d", len(plainHist), len(shardHist))
	}
	for i := range plainHist {
		p, s := plainHist[i], shardHist[i]
		if p.MsgsSent != s.MsgsSent || p.BytesSent != s.BytesSent || p.SolverNodes != s.SolverNodes {
			t.Fatalf("epoch %d counters diverged: plain=%+v sharded=%+v", i, p, s)
		}
		if s.AggMsgs != 0 || s.AggBytes != 0 {
			t.Fatalf("epoch %d: single-shard rollup put %d frames (%d bytes) on the aggregator wire, want none",
				i, s.AggMsgs, s.AggBytes)
		}
	}
}

// TestShardEmptyEpoch: multi-process shards run one epoch per global
// negotiation slot even when they own no item in the slot, so epoch
// numbers stay aligned for the rollup. An empty epoch must be legal and
// must still emit the shard's summary.
func TestShardEmptyEpoch(t *testing.T) {
	r := shardedRing(t, Options{
		Latency: time.Millisecond,
		Shards:  ShardPlan{Count: 2}, Aggregation: AggregationRollup,
	}, 4)
	if _, err := r.RunEpoch(nil); err != nil {
		t.Fatal(err)
	}
	r.Settle()
	sum, ok := r.ClusterSummary()
	if !ok {
		t.Fatal("empty epoch completed no summary")
	}
	if sum.Epoch != 0 || sum.Folded != 2 || sum.Items != 0 || sum.Members != 4 {
		t.Fatalf("summary = %+v, want epoch 0, 2 shards, 0 items, 4 members", sum)
	}
}

func TestShardUnknownAggregationRejected(t *testing.T) {
	r := buildRing(t, Options{Latency: time.Millisecond, Aggregation: "telepathy"}, 2)
	if _, err := r.RunEpoch(solveItems(r)); err == nil {
		t.Fatal("unknown aggregation policy accepted")
	}
}
