package cluster

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/store"
)

// The WAL torture suite: kill a node at every write-ahead-log record
// boundary of a recorded run — including mid-record torn writes and a torn
// file header — restart it, and require the cluster to converge on exactly
// the visible rows of the uninterrupted run. The simulated transport is
// deterministic, so re-driving the same script reproduces the recorded WAL
// byte for byte; truncating it at offset N then simulates a crash whose
// last durable write ended at N. Run standalone via `make wal-torture`.

const tortureVictim = "n1"

// tortureProgram is the ring program plus an accumulating replicated
// relation, so the victim holds real remote state (notes from its upstream
// neighbor) that a truncated log loses and recovery must restore.
func tortureProgram(t *testing.T) *analysis.Result {
	t.Helper()
	prog, err := colog.Parse(testSrc + "r2 note(@Y,X,E) <- link(@X,Y), tick(@X,E).\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func tortureRuntime(t *testing.T, res *analysis.Result) *Runtime {
	t.Helper()
	r := New(Options{Workers: 1, Latency: time.Millisecond, Storage: "disk", StorageDir: t.TempDir()})
	for i := 0; i < 3; i++ {
		if _, err := r.Spawn(ringSpec(res, i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	r.Settle()
	return r
}

// torturePhase drives the recorded prefix of the script: two solve epochs
// with churn on the victim's neighbors (never the victim — script inserts
// on the victim itself are local base facts a torn log loses for good, by
// design), and a checkpoint compaction between the epochs so the recorded
// log exercises the checkpoint-record replay path too.
func torturePhase(t *testing.T, r *Runtime) {
	t.Helper()
	churn := func(epoch int) {
		for i, addr := range []string{"n0", "n2"} {
			if err := r.Node(addr).Insert("need", sval(addr), ival(int64(4+epoch+i))); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 3; k++ {
				if err := r.Node(addr).Insert("tick", sval(addr), ival(int64(epoch*100+i*10+k))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for epoch := 0; epoch < 3; epoch++ {
		if _, err := r.RunEpoch(solveItems(r)); err != nil {
			t.Fatal(err)
		}
		churn(epoch)
		r.Advance(10 * time.Millisecond)
		if epoch == 0 {
			if err := r.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// tortureFinish is the shared script tail — a final re-solve and settle —
// after which every node's visible state is a function of the converged
// inputs, so reference and torture runs are comparable row for row.
func tortureFinish(t *testing.T, r *Runtime) string {
	t.Helper()
	if _, err := r.RunEpoch(solveItems(r)); err != nil {
		t.Fatal(err)
	}
	r.Settle()
	return sortedDump(r)
}

// sortedDump is dump with the rows in canonical order: recovery pulls rows
// back via anti-entropy in mirror order, so arrival-seq iteration order may
// legitimately differ from the uninterrupted run; the visible row set must
// not.
func sortedDump(r *Runtime) string {
	lines := strings.Split(strings.TrimRight(dump(r), "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// victimWAL reads the victim's write-ahead log file straight from disk.
func victimWAL(t *testing.T, r *Runtime) (string, []byte) {
	t.Helper()
	path := r.members[tortureVictim].spec.Config.Storage.Log().Path()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestWALTortureCrashPoints is the crash-point CI gate (`make wal-torture`
// runs it standalone). One reference run records the victim's WAL; then,
// for a truncation offset at every record boundary, every mid-record
// midpoint (a torn write), and inside the file header, a fresh cluster
// re-runs the script, crashes the victim, cuts its log at the offset,
// restarts it, and must converge on the reference rows.
func TestWALTortureCrashPoints(t *testing.T) {
	res := tortureProgram(t)

	// Reference: the uninterrupted run.
	refRT := tortureRuntime(t, res)
	torturePhase(t, refRT)
	ref := tortureFinish(t, refRT)
	refRT.Close()

	// Recording run: drive to the crash point, kill the victim, snapshot
	// its WAL.
	recRT := tortureRuntime(t, res)
	torturePhase(t, recRT)
	if err := recRT.StopNode(tortureVictim); err != nil {
		t.Fatal(err)
	}
	recRT.Settle()
	_, recorded := victimWAL(t, recRT)
	recRT.Close()
	if len(recorded) <= store.WALHeaderSize {
		t.Fatalf("recorded WAL is empty (%d bytes)", len(recorded))
	}

	ends := store.WALRecordEnds(recorded)
	if len(ends) < 4 {
		t.Fatalf("recorded WAL has only %d record boundaries — script too small to torture", len(ends))
	}
	seen := map[int64]bool{}
	var offsets []int64
	add := func(o int64) {
		if o >= 0 && o <= int64(len(recorded)) && !seen[o] {
			seen[o] = true
			offsets = append(offsets, o)
		}
	}
	add(0) // empty file
	add(4) // torn header
	prev := int64(0)
	for _, e := range ends {
		if e > prev+1 {
			add(prev + (e-prev)/2) // torn write inside the record
		}
		add(e) // clean boundary
		prev = e
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	if testing.Short() && len(offsets) > 12 {
		var sampled []int64
		for i, o := range offsets {
			if i%4 == 0 || i == len(offsets)-1 {
				sampled = append(sampled, o)
			}
		}
		offsets = sampled
	}
	t.Logf("torturing %d truncation offsets over a %d-byte WAL (%d records)",
		len(offsets), len(recorded), len(ends)-1)

	for _, off := range offsets {
		t.Run(fmt.Sprintf("truncate@%d", off), func(t *testing.T) {
			r := tortureRuntime(t, res)
			defer r.Close()
			torturePhase(t, r)
			if err := r.StopNode(tortureVictim); err != nil {
				t.Fatal(err)
			}
			r.Settle()
			path, data := victimWAL(t, r)
			if !bytes.Equal(data, recorded) {
				t.Fatalf("re-driven script produced a different WAL (%d bytes vs %d recorded) — offsets are meaningless",
					len(data), len(recorded))
			}
			if err := os.Truncate(path, off); err != nil {
				t.Fatal(err)
			}
			if _, err := r.RestartNode(tortureVictim); err != nil {
				t.Fatalf("restart after truncate@%d: %v", off, err)
			}
			if got := tortureFinish(t, r); got != ref {
				t.Fatalf("truncate@%d diverged from the uninterrupted run:\n--- reference\n%s\n--- torture\n%s", off, ref, got)
			}
		})
	}
}
