// Package analysis implements the compile-time phases the Cologne paper
// describes in section 5: parameter binding, solver-table identification
// (5.2), rule classification into regular Datalog / solver derivation /
// solver constraint rules, safety and join validation (5.3), dependency
// stratification, and the localization rewrite for distributed rules (5.5).
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/colog"
)

// RuleClass is the classification a Colog rule receives during static
// analysis (the paper prefixes rules r/d/c accordingly).
type RuleClass int

const (
	// RegularRule is a plain (distributed) Datalog rule.
	RegularRule RuleClass = iota
	// SolverDerivationRule derives new solver variables from existing ones
	// (head is a solver table, arrow <-).
	SolverDerivationRule
	// SolverConstraintRule restricts solver attribute values (arrow ->).
	SolverConstraintRule
)

// String names the class like the paper's rule label prefixes.
func (c RuleClass) String() string {
	switch c {
	case SolverDerivationRule:
		return "solver-derivation"
	case SolverConstraintRule:
		return "solver-constraint"
	default:
		return "regular"
	}
}

// TableInfo is the schema inferred for one predicate.
type TableInfo struct {
	Name        string
	Arity       int
	SolverAttrs []bool // positions holding solver attributes
	LocCol      int    // location-specifier column, -1 if none
}

// IsSolver reports whether any attribute is a solver attribute.
func (t *TableInfo) IsSolver() bool {
	for _, b := range t.SolverAttrs {
		if b {
			return true
		}
	}
	return false
}

// Result is the outcome of static analysis. Program is a rewritten deep copy
// of the input: parameters bound, distributed rules localized.
type Result struct {
	Program *colog.Program
	Tables  map[string]*TableInfo
	// Classes is parallel to Program.Rules.
	Classes []RuleClass
	// SolverOrder lists indices into Program.Rules of solver derivation
	// rules in dependency (evaluation) order.
	SolverOrder []int
	// Distributed reports whether the program uses location specifiers.
	Distributed bool
	// Rewritten maps generated shipping-rule labels to the label of the
	// distributed rule they were split from.
	Rewritten map[string]string
}

// Class returns the class of rule r (which must be in Result.Program.Rules).
func (r *Result) Class(rule *colog.Rule) RuleClass {
	for i, rr := range r.Program.Rules {
		if rr == rule {
			return r.Classes[i]
		}
	}
	return RegularRule
}

// Error is a semantic analysis error.
type Error struct {
	Rule string // rule label or predicate, may be empty
	Msg  string
}

func (e *Error) Error() string {
	if e.Rule != "" {
		return fmt.Sprintf("analysis: rule %s: %s", e.Rule, e.Msg)
	}
	return "analysis: " + e.Msg
}

func aerrf(rule, format string, args ...interface{}) *Error {
	return &Error{Rule: rule, Msg: fmt.Sprintf(format, args...)}
}

// Analyze runs all static phases over prog. params binds named parameters
// (lowercase identifiers like max_migrates, or capitalized ones like
// F_mindiff) to constants. The input program is not modified.
func Analyze(prog *colog.Program, params map[string]colog.Value) (*Result, error) {
	p := cloneProgram(prog)
	bindParams(p, params)

	res := &Result{Program: p, Tables: map[string]*TableInfo{}, Rewritten: map[string]string{}}

	if err := collectTables(res); err != nil {
		return nil, err
	}
	res.Distributed = programDistributed(p)
	if res.Distributed {
		if err := localize(res); err != nil {
			return nil, err
		}
		// New tmp tables appeared.
		if err := collectTables(res); err != nil {
			return nil, err
		}
	}
	if err := inferSolverTables(res); err != nil {
		return nil, err
	}
	classify(res)
	if err := validate(res); err != nil {
		return nil, err
	}
	if err := orderSolverRules(res); err != nil {
		return nil, err
	}
	return res, nil
}

func cloneProgram(p *colog.Program) *colog.Program {
	out := &colog.Program{}
	if p.Goal != nil {
		g := *p.Goal
		g.Atom = p.Goal.Atom.Clone()
		out.Goal = &g
	}
	for _, v := range p.Vars {
		vd := *v
		vd.Decl = v.Decl.Clone()
		vd.ForAll = v.ForAll.Clone()
		if v.Domain != nil {
			d := *v.Domain
			if v.Domain.Explicit != nil {
				d.Explicit = append([]int64(nil), v.Domain.Explicit...)
			}
			vd.Domain = &d
		}
		out.Vars = append(out.Vars, &vd)
	}
	for _, r := range p.Rules {
		out.Rules = append(out.Rules, r.Clone())
	}
	for _, f := range p.Facts {
		out.Facts = append(out.Facts, &colog.Fact{Atom: f.Atom.Clone(), Pos: f.Pos})
	}
	return out
}

// bindParams substitutes parameter terms (and free variables whose names are
// registered parameters, like F_mindiff) with constants, in place.
func bindParams(p *colog.Program, params map[string]colog.Value) {
	if len(params) == 0 {
		return
	}
	sub := func(t colog.Term) colog.Term { return substParam(t, params) }
	for _, r := range p.Rules {
		substAtom(r.Head, params)
		for _, l := range r.Body {
			switch x := l.(type) {
			case *colog.AtomLit:
				substAtom(x.Atom, params)
			case *colog.CondLit:
				x.Expr = sub(x.Expr)
			case *colog.AssignLit:
				x.Expr = sub(x.Expr)
			}
		}
	}
}

func substAtom(a *colog.Atom, params map[string]colog.Value) {
	for i, t := range a.Args {
		a.Args[i] = substParam(t, params)
	}
}

func substParam(t colog.Term, params map[string]colog.Value) colog.Term {
	switch x := t.(type) {
	case *colog.ParamTerm:
		if v, ok := params[x.Name]; ok {
			return &colog.ConstTerm{Val: v}
		}
		return x
	case *colog.VarTerm:
		if v, ok := params[x.Name]; ok && !x.Loc {
			return &colog.ConstTerm{Val: v}
		}
		return x
	case *colog.BinTerm:
		x.L = substParam(x.L, params)
		x.R = substParam(x.R, params)
		return x
	case *colog.NegTerm:
		x.X = substParam(x.X, params)
		return x
	case *colog.NotTerm:
		x.X = substParam(x.X, params)
		return x
	case *colog.AbsTerm:
		x.X = substParam(x.X, params)
		return x
	case *colog.FuncTerm:
		for i, a := range x.Args {
			x.Args[i] = substParam(a, params)
		}
		return x
	default:
		return t
	}
}

// collectTables gathers arity and location-column information for every
// predicate, checking consistency across uses.
func collectTables(res *Result) error {
	res.Tables = map[string]*TableInfo{}
	record := func(a *colog.Atom, where string) error {
		ti, ok := res.Tables[a.Pred]
		if !ok {
			ti = &TableInfo{
				Name: a.Pred, Arity: len(a.Args),
				SolverAttrs: make([]bool, len(a.Args)), LocCol: a.LocArg(),
			}
			res.Tables[a.Pred] = ti
			return nil
		}
		if ti.Arity != len(a.Args) {
			return aerrf(where, "predicate %s used with arity %d and %d", a.Pred, ti.Arity, len(a.Args))
		}
		if lc := a.LocArg(); lc >= 0 {
			if ti.LocCol >= 0 && ti.LocCol != lc {
				return aerrf(where, "predicate %s has location specifier at columns %d and %d", a.Pred, ti.LocCol, lc)
			}
			ti.LocCol = lc
		}
		return nil
	}
	var err error
	walkAtoms(res.Program, func(a *colog.Atom, where string) {
		if err == nil {
			err = record(a, where)
		}
	})
	if err != nil {
		return err
	}
	// Domain tables referenced only from "domain <table>" clauses are
	// single-column value pools (e.g. availChannel).
	for _, vd := range res.Program.Vars {
		if vd.Domain == nil || vd.Domain.FromTable == "" {
			continue
		}
		name := vd.Domain.FromTable
		if _, ok := res.Tables[name]; !ok {
			res.Tables[name] = &TableInfo{
				Name: name, Arity: 1, SolverAttrs: make([]bool, 1), LocCol: -1,
			}
		}
	}
	return nil
}

func walkAtoms(p *colog.Program, f func(a *colog.Atom, where string)) {
	if p.Goal != nil {
		f(p.Goal.Atom, "goal")
	}
	for _, v := range p.Vars {
		f(v.Decl, "var")
		f(v.ForAll, "var")
	}
	for _, r := range p.Rules {
		where := r.Label
		if where == "" {
			where = r.Head.Pred
		}
		f(r.Head, where)
		for _, l := range r.Body {
			if al, ok := l.(*colog.AtomLit); ok {
				f(al.Atom, where)
			}
		}
	}
	for _, fc := range p.Facts {
		f(fc.Atom, fc.Atom.Pred)
	}
}

func programDistributed(p *colog.Program) bool {
	dist := false
	walkAtoms(p, func(a *colog.Atom, _ string) {
		if a.LocArg() >= 0 {
			dist = true
		}
	})
	return dist
}

// termVars appends the names of all variables in t to dst.
func termVars(t colog.Term, dst []string) []string {
	switch x := t.(type) {
	case *colog.VarTerm:
		return append(dst, x.Name)
	case *colog.AggTerm:
		return append(dst, x.Over)
	case *colog.BinTerm:
		return termVars(x.R, termVars(x.L, dst))
	case *colog.NegTerm:
		return termVars(x.X, dst)
	case *colog.NotTerm:
		return termVars(x.X, dst)
	case *colog.AbsTerm:
		return termVars(x.X, dst)
	case *colog.FuncTerm:
		for _, a := range x.Args {
			dst = termVars(a, dst)
		}
		return dst
	default:
		return dst
	}
}

func atomVars(a *colog.Atom, dst []string) []string {
	for _, t := range a.Args {
		dst = termVars(t, dst)
	}
	return dst
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
