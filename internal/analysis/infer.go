package analysis

import (
	"repro/internal/colog"
)

// inferSolverTables implements the paper's section 5.2: starting from the
// variables introduced by var declarations, propagate "solver-ness" through
// rules until fixpoint. An attribute is a solver attribute when its value is
// only determined by the constraint solver.
//
// Propagation crosses == equalities and comparisons (declarative bindings
// compiled into Gecode constraints) but NOT := assignments: following the
// paper's use (rules r2/r3 of Follow-the-Sun), := consumes the solver's
// materialized output after optimization, so rules using it stay regular.
func inferSolverTables(res *Result) error {
	// Seed from var declarations: declared attributes not bound by the
	// forall table are fresh solver variables.
	for _, vd := range res.Program.Vars {
		ti := res.Tables[vd.Decl.Pred]
		if ti == nil {
			continue
		}
		forallVars := map[string]bool{}
		for _, v := range atomVars(vd.ForAll, nil) {
			forallVars[v] = true
		}
		nSolver := 0
		for i, arg := range vd.Decl.Args {
			v, ok := arg.(*colog.VarTerm)
			if !ok {
				return aerrf("var", "declaration %s has non-variable argument %s", vd.Decl, arg)
			}
			if !forallVars[v.Name] {
				ti.SolverAttrs[i] = true
				nSolver++
			}
		}
		if nSolver == 0 {
			return aerrf("var", "declaration %s introduces no solver variable (every attribute is bound by %s)", vd.Decl, vd.ForAll.Pred)
		}
	}

	// Fixpoint propagation through derivation rules.
	for changed := true; changed; {
		changed = false
		for _, r := range res.Program.Rules {
			if r.Kind != colog.KindDerivation {
				continue
			}
			solverVars := ruleSolverVars(res, r)
			if len(solverVars) == 0 {
				continue
			}
			ti := res.Tables[r.Head.Pred]
			for i, arg := range r.Head.Args {
				mark := false
				switch t := arg.(type) {
				case *colog.VarTerm:
					mark = solverVars[t.Name]
				case *colog.AggTerm:
					mark = solverVars[t.Over]
				}
				if mark && !ti.SolverAttrs[i] {
					ti.SolverAttrs[i] = true
					changed = true
				}
			}
		}
	}
	return nil
}

// ruleSolverVars computes, for one rule, the set of variables whose values
// depend on solver variables: variables at solver attribute positions of
// body atoms, extended transitively through expression literals (== bindings
// and comparisons), but not through := assignments.
func ruleSolverVars(res *Result, r *colog.Rule) map[string]bool {
	solver := map[string]bool{}
	bound := map[string]bool{} // variables bound at regular atom positions
	collect := func(a *colog.Atom) {
		ti := res.Tables[a.Pred]
		for i, arg := range a.Args {
			v, ok := arg.(*colog.VarTerm)
			if !ok {
				continue
			}
			if ti != nil && i < len(ti.SolverAttrs) && ti.SolverAttrs[i] {
				solver[v.Name] = true
			} else {
				bound[v.Name] = true
			}
		}
	}
	for _, l := range r.Body {
		if al, ok := l.(*colog.AtomLit); ok {
			collect(al.Atom)
		}
	}
	// For constraint rules the head is also a source of bindings.
	if r.Kind == colog.KindConstraint {
		collect(r.Head)
	}
	// Transitive closure through condition literals: any unbound variable
	// sharing a condition with a solver variable is solver-dependent
	// (covers C==V*Cpu and the reified (C==1)==(V==1) idiom).
	for changed := true; changed; {
		changed = false
		for _, l := range r.Body {
			cond, ok := l.(*colog.CondLit)
			if !ok {
				continue
			}
			vars := termVars(cond.Expr, nil)
			hasSolver := false
			for _, v := range vars {
				if solver[v] {
					hasSolver = true
					break
				}
			}
			if !hasSolver {
				continue
			}
			for _, v := range vars {
				if !solver[v] && !bound[v] {
					solver[v] = true
					changed = true
				}
			}
		}
	}
	return solver
}

// classify assigns each rule its class per section 5.2: constraint rules by
// syntax (->), derivation rules by whether their head became a solver table,
// everything else regular.
func classify(res *Result) {
	res.Classes = make([]RuleClass, len(res.Program.Rules))
	for i, r := range res.Program.Rules {
		if r.Kind == colog.KindConstraint {
			res.Classes[i] = SolverConstraintRule
			continue
		}
		// A derivation rule is a solver derivation when its head receives a
		// solver-dependent value. Rules like Follow-the-Sun's r2/r3, whose
		// heads are fed through := assignments from the solver's
		// materialized output, remain regular.
		solverVars := ruleSolverVars(res, r)
		res.Classes[i] = RegularRule
		for _, arg := range r.Head.Args {
			switch t := arg.(type) {
			case *colog.VarTerm:
				if solverVars[t.Name] {
					res.Classes[i] = SolverDerivationRule
				}
			case *colog.AggTerm:
				if solverVars[t.Over] {
					res.Classes[i] = SolverDerivationRule
				}
			}
		}
	}
}

// validate enforces the paper's restrictions: constraint rules must involve
// solver tables; joins on solver attributes are prohibited (section 5.3);
// rule heads must be safe; aggregates may only appear in heads.
func validate(res *Result) error {
	for i, r := range res.Program.Rules {
		label := ruleName(r)
		// No aggregates in body atoms.
		for _, l := range r.Body {
			al, ok := l.(*colog.AtomLit)
			if !ok {
				continue
			}
			for _, arg := range al.Atom.Args {
				if _, isAgg := arg.(*colog.AggTerm); isAgg {
					return aerrf(label, "aggregate in body atom %s; aggregates are only allowed in rule heads", al.Atom)
				}
			}
		}
		if res.Classes[i] == SolverConstraintRule {
			involves := res.Tables[r.Head.Pred].IsSolver()
			for _, l := range r.Body {
				if al, ok := l.(*colog.AtomLit); ok && res.Tables[al.Atom.Pred].IsSolver() {
					involves = true
				}
			}
			if !involves {
				return aerrf(label, "constraint rule involves no solver table")
			}
		}
		// Joins on solver attributes are prohibited everywhere (section 5.3),
		// not just in solver rules.
		if err := checkNoSolverJoin(res, r, label); err != nil {
			return err
		}
		if r.Kind == colog.KindDerivation {
			if err := checkSafety(r, label); err != nil {
				return err
			}
		}
	}
	return checkAggregateRecursion(res)
}

// checkNoSolverJoin rejects joins on solver attributes: a variable occupying
// a solver attribute position may not occur in any other atom argument.
func checkNoSolverJoin(res *Result, r *colog.Rule, label string) error {
	occurrences := map[string]int{}
	solverOcc := map[string]int{}
	scan := func(a *colog.Atom) {
		ti := res.Tables[a.Pred]
		for i, arg := range a.Args {
			v, ok := arg.(*colog.VarTerm)
			if !ok {
				continue
			}
			occurrences[v.Name]++
			if ti != nil && i < len(ti.SolverAttrs) && ti.SolverAttrs[i] {
				solverOcc[v.Name]++
			}
		}
	}
	for _, l := range r.Body {
		if al, ok := l.(*colog.AtomLit); ok {
			scan(al.Atom)
		}
	}
	if r.Kind == colog.KindConstraint {
		scan(r.Head)
		// In constraint rules a variable repeated across solver attribute
		// positions is an equality constraint, not a join (the wireless
		// channel-symmetry idiom assign(X,Y,C) -> assign(Y,X,C)). Only
		// mixing solver and regular positions is rejected.
		for v, n := range solverOcc {
			if occurrences[v] > n {
				return aerrf(label, "variable %s joins on a solver attribute; joins on solver attributes are prohibited", v)
			}
		}
		return nil
	}
	for v, n := range solverOcc {
		if occurrences[v] > n || n > 1 {
			return aerrf(label, "variable %s joins on a solver attribute; joins on solver attributes are prohibited", v)
		}
	}
	return nil
}

// checkSafety requires every head variable to appear somewhere in the body.
func checkSafety(r *colog.Rule, label string) error {
	bodyVars := map[string]bool{}
	for _, l := range r.Body {
		switch x := l.(type) {
		case *colog.AtomLit:
			for _, v := range atomVars(x.Atom, nil) {
				bodyVars[v] = true
			}
		case *colog.CondLit:
			for _, v := range termVars(x.Expr, nil) {
				bodyVars[v] = true
			}
		case *colog.AssignLit:
			bodyVars[x.Var] = true
			for _, v := range termVars(x.Expr, nil) {
				bodyVars[v] = true
			}
		}
	}
	for _, v := range atomVars(r.Head, nil) {
		if !bodyVars[v] {
			return aerrf(label, "unsafe rule: head variable %s does not appear in the body", v)
		}
	}
	return nil
}

// checkAggregateRecursion rejects recursion through aggregate heads, which
// has no well-defined incremental semantics.
func checkAggregateRecursion(res *Result) error {
	deps := map[string]map[string]bool{} // head pred -> body preds
	aggHeads := map[string]bool{}
	for _, r := range res.Program.Rules {
		if r.Kind != colog.KindDerivation {
			continue
		}
		if r.Head.HasAggregate() {
			aggHeads[r.Head.Pred] = true
		}
		m := deps[r.Head.Pred]
		if m == nil {
			m = map[string]bool{}
			deps[r.Head.Pred] = m
		}
		for _, l := range r.Body {
			if al, ok := l.(*colog.AtomLit); ok {
				m[al.Atom.Pred] = true
			}
		}
	}
	for pred := range aggHeads {
		if reaches(deps, pred, pred, map[string]bool{}) {
			return aerrf(pred, "aggregate head %s is recursive; recursion through aggregates is not supported", pred)
		}
	}
	return nil
}

func reaches(deps map[string]map[string]bool, from, to string, seen map[string]bool) bool {
	for next := range deps[from] {
		if next == to {
			return true
		}
		if !seen[next] {
			seen[next] = true
			if reaches(deps, next, to, seen) {
				return true
			}
		}
	}
	return false
}

// orderSolverRules topologically orders solver derivation rules by table
// dependencies, the order the grounder evaluates them in. Cycles among
// solver rules are rejected.
func orderSolverRules(res *Result) error {
	idxs := []int{}
	headOf := map[string][]int{} // table -> rule indices producing it
	for i, c := range res.Classes {
		if c == SolverDerivationRule {
			idxs = append(idxs, i)
			pred := res.Program.Rules[i].Head.Pred
			headOf[pred] = append(headOf[pred], i)
		}
	}
	// Edges: producer -> consumer.
	adj := map[int][]int{}
	indeg := map[int]int{}
	for _, i := range idxs {
		indeg[i] = indeg[i] // ensure key exists
		for _, l := range res.Program.Rules[i].Body {
			al, ok := l.(*colog.AtomLit)
			if !ok {
				continue
			}
			for _, j := range headOf[al.Atom.Pred] {
				if j == i {
					return aerrf(ruleName(res.Program.Rules[i]), "solver derivation rule is self-recursive")
				}
				adj[j] = append(adj[j], i)
				indeg[i]++
			}
		}
	}
	queue := []int{}
	for _, i := range idxs {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, j := range adj[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(order) != len(idxs) {
		return aerrf("", "cyclic dependency among solver derivation rules")
	}
	res.SolverOrder = order
	return nil
}
