package analysis

import (
	"fmt"

	"repro/internal/colog"
)

// localize rewrites every rule whose body spans multiple locations into a
// shipping rule plus a local rule, reproducing the paper's section 5.5
// transformation:
//
//	d2  nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1),
//	                            migVm(@X,Y,D,R2), R==R1+R2.
//
// becomes
//
//	d21 tmp_d2_Y(@X,Y,D,R1)  <- link(@Y,X), curVm(@Y,D,R1).
//	d22 nborNextVm(@X,Y,D,R) <- tmp_d2_Y(@X,Y,D,R1), migVm(@X,Y,D,R2),
//	                            R==R1+R2.
//
// The shipping rule evaluates at the remote site and its head tuples travel
// to the head's location, so each per-node COP only reads local tables.
func localize(res *Result) error {
	var out []*colog.Rule
	for _, r := range res.Program.Rules {
		rules, err := localizeRule(res, r)
		if err != nil {
			return err
		}
		out = append(out, rules...)
	}
	res.Program.Rules = out
	return nil
}

func localizeRule(res *Result, r *colog.Rule) ([]*colog.Rule, error) {
	label := ruleName(r)
	headLoc := r.Head.LocVar()

	// Gather the distinct body locations. Atoms without a specifier execute
	// at the head's location.
	bodyLocs := map[string]bool{}
	for _, l := range r.Body {
		if al, ok := l.(*colog.AtomLit); ok {
			loc := al.Atom.LocVar()
			if loc == "" {
				loc = headLoc
			}
			bodyLocs[loc] = true
		}
	}
	// Derivation rules with a single-site body execute at that site and ship
	// the head tuple over the network (standard declarative networking).
	// Constraint rules are different: their head carries solver attributes
	// that exist only symbolically at the COP site, so their body must be
	// brought to the head's location even when it is a single remote group
	// (e.g. Follow-the-Sun c2 whose body reads @Y's resource table).
	if len(bodyLocs) <= 1 {
		if r.Kind != colog.KindConstraint {
			return []*colog.Rule{r}, nil
		}
		if len(bodyLocs) == 0 || (headLoc != "" && bodyLocs[headLoc]) {
			return []*colog.Rule{r}, nil
		}
		bodyLocs[headLoc] = true // force a (possibly empty) local group
	}
	if headLoc == "" {
		return nil, aerrf(label, "body spans locations %v but head has no location specifier", sortedKeys(bodyLocs))
	}
	if !bodyLocs[headLoc] {
		return nil, aerrf(label, "body spans locations %v, none matching head location @%s", sortedKeys(bodyLocs), headLoc)
	}

	// Variables needed outside each remote group: head vars plus expression
	// literal vars plus vars of atoms in other groups.
	varsUsedBy := map[string]map[string]bool{} // location -> var set of that group's atoms
	for _, loc := range sortedKeys(bodyLocs) {
		varsUsedBy[loc] = map[string]bool{}
	}
	exprVars := map[string]bool{}
	for _, l := range r.Body {
		switch x := l.(type) {
		case *colog.AtomLit:
			loc := x.Atom.LocVar()
			if loc == "" {
				loc = headLoc
			}
			for _, v := range atomVars(x.Atom, nil) {
				varsUsedBy[loc][v] = true
			}
		case *colog.CondLit:
			for _, v := range termVars(x.Expr, nil) {
				exprVars[v] = true
			}
		case *colog.AssignLit:
			exprVars[x.Var] = true
			for _, v := range termVars(x.Expr, nil) {
				exprVars[v] = true
			}
		}
	}
	headVars := map[string]bool{}
	for _, v := range atomVars(r.Head, nil) {
		headVars[v] = true
	}

	var rules []*colog.Rule
	local := &colog.Rule{Label: label + "_local", Kind: r.Kind, Head: r.Head, Pos: r.Pos}
	tmpIdx := 0
	for _, loc := range sortedKeys(bodyLocs) {
		if loc == headLoc {
			continue
		}
		// Collect this remote group's atoms and the conditions fully bound
		// inside the group.
		var groupAtoms []*colog.Atom
		groupBound := varsUsedBy[loc]
		if !groupBound[headLoc] {
			return nil, aerrf(label, "remote group @%s does not bind head location %s; add a connecting atom such as link(@%s,%s)", loc, headLoc, loc, headLoc)
		}
		for _, l := range r.Body {
			al, ok := l.(*colog.AtomLit)
			if !ok {
				continue
			}
			aloc := al.Atom.LocVar()
			if aloc == "" {
				aloc = headLoc
			}
			if aloc == loc {
				groupAtoms = append(groupAtoms, al.Atom)
			}
		}
		// Shipped attributes: group-bound vars needed elsewhere (head, other
		// groups, expressions), location var first.
		needed := []string{headLoc}
		seen := map[string]bool{headLoc: true}
		appendNeeded := func(v string) {
			if seen[v] || !groupBound[v] {
				return
			}
			used := headVars[v] || exprVars[v]
			if !used {
				for oloc, set := range varsUsedBy {
					if oloc != loc && set[v] {
						used = true
						break
					}
				}
			}
			if used {
				seen[v] = true
				needed = append(needed, v)
			}
		}
		// Deterministic order: appearance order within the group atoms.
		for _, ga := range groupAtoms {
			for _, v := range atomVars(ga, nil) {
				appendNeeded(v)
			}
		}
		tmpIdx++
		tmpPred := fmt.Sprintf("tmp_%s_%s", sanitizeLabel(label), loc)
		tmpArgs := make([]colog.Term, len(needed))
		for i, v := range needed {
			tmpArgs[i] = &colog.VarTerm{Name: v, Loc: i == 0}
		}
		shipHead := &colog.Atom{Pred: tmpPred, Args: tmpArgs, Pos: r.Pos}
		shipBody := make([]colog.Literal, 0, len(groupAtoms))
		for _, ga := range groupAtoms {
			shipBody = append(shipBody, &colog.AtomLit{Atom: ga})
		}
		ship := &colog.Rule{
			Label: fmt.Sprintf("%s_ship%d", label, tmpIdx),
			Kind:  colog.KindDerivation,
			Head:  shipHead,
			Body:  shipBody,
			Pos:   r.Pos,
		}
		res.Rewritten[ship.Label] = label
		rules = append(rules, ship)
		// The local rule joins on the tmp tuple instead of the remote atoms.
		localTmpArgs := make([]colog.Term, len(needed))
		for i, v := range needed {
			localTmpArgs[i] = &colog.VarTerm{Name: v, Loc: i == 0}
		}
		local.Body = append(local.Body, &colog.AtomLit{
			Atom: &colog.Atom{Pred: tmpPred, Args: localTmpArgs, Pos: r.Pos},
		})
	}
	// Local group atoms and all expression literals.
	for _, l := range r.Body {
		switch x := l.(type) {
		case *colog.AtomLit:
			aloc := x.Atom.LocVar()
			if aloc == "" {
				aloc = headLoc
			}
			if aloc == headLoc {
				local.Body = append(local.Body, l)
			}
		default:
			local.Body = append(local.Body, l)
		}
	}
	res.Rewritten[local.Label] = label
	rules = append(rules, local)
	return rules, nil
}

func ruleName(r *colog.Rule) string {
	if r.Label != "" {
		return r.Label
	}
	return r.Head.Pred
}

func sanitizeLabel(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '(' || r == ')' || r == ',' || r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}
