package analysis

import (
	"strings"
	"testing"

	"repro/internal/colog"
)

const acloudSrc = `
goal minimize C in hostStdevCpu(C).
var assign(Vid,Hid,V) forall toAssign(Vid,Hid).

r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
c1 assignCount(Vid,V) -> V==1.
d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
`

func analyzeOK(t *testing.T, src string, params map[string]colog.Value) *Result {
	t.Helper()
	prog, err := colog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(prog, params)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestACloudSolverTables reproduces the worked example in section 5.2: the
// solver tables must be exactly assign, hostCpu, hostStdevCpu, assignCount,
// hostMem.
func TestACloudSolverTables(t *testing.T) {
	res := analyzeOK(t, acloudSrc, nil)
	wantSolver := map[string]bool{
		"assign": true, "hostCpu": true, "hostStdevCpu": true,
		"assignCount": true, "hostMem": true,
	}
	for name, ti := range res.Tables {
		if got := ti.IsSolver(); got != wantSolver[name] {
			t.Errorf("table %s: IsSolver = %v, want %v", name, got, wantSolver[name])
		}
	}
	// Specific attribute positions: V in assign(Vid,Hid,V) is position 2.
	if sa := res.Tables["assign"].SolverAttrs; !sa[2] || sa[0] || sa[1] {
		t.Errorf("assign solver attrs = %v, want only position 2", sa)
	}
	if sa := res.Tables["hostCpu"].SolverAttrs; !sa[1] || sa[0] {
		t.Errorf("hostCpu solver attrs = %v, want only position 1", sa)
	}
}

// TestACloudClassification reproduces section 5.2's classification: d1-d4
// solver derivations, c1/c2 solver constraints, r1 regular.
func TestACloudClassification(t *testing.T) {
	res := analyzeOK(t, acloudSrc, nil)
	want := map[string]RuleClass{
		"r1": RegularRule,
		"d1": SolverDerivationRule, "d2": SolverDerivationRule,
		"d3": SolverDerivationRule, "d4": SolverDerivationRule,
		"c1": SolverConstraintRule, "c2": SolverConstraintRule,
	}
	for i, r := range res.Program.Rules {
		if got := res.Classes[i]; got != want[r.Label] {
			t.Errorf("rule %s: class = %v, want %v", r.Label, got, want[r.Label])
		}
	}
}

func TestACloudSolverOrder(t *testing.T) {
	res := analyzeOK(t, acloudSrc, nil)
	// d2 consumes hostCpu produced by d1, so d1 must precede d2.
	pos := map[string]int{}
	for oi, ri := range res.SolverOrder {
		pos[res.Program.Rules[ri].Label] = oi
	}
	if pos["d1"] > pos["d2"] {
		t.Errorf("solver order: d1 at %d must precede d2 at %d", pos["d1"], pos["d2"])
	}
	if len(res.SolverOrder) != 4 {
		t.Errorf("solver order covers %d rules, want 4", len(res.SolverOrder))
	}
}

const migrationExtension = `
d5 migrate(Vid,Hid1,Hid2,C) <- assign(Vid,Hid1,V), origin(Vid,Hid2), Hid1!=Hid2, (V==1)==(C==1).
d6 migrateCount(SUM<C>) <- migrate(Vid,Hid1,Hid2,C).
c3 migrateCount(C) -> C<=max_migrates.
`

// TestReifiedPropagation checks that solver-ness crosses the reified
// (V==1)==(C==1) idiom of ACloud rule d5.
func TestReifiedPropagation(t *testing.T) {
	res := analyzeOK(t, acloudSrc+migrationExtension, map[string]colog.Value{
		"max_migrates": colog.IntVal(3),
	})
	if !res.Tables["migrate"].IsSolver() {
		t.Error("migrate should be a solver table (C reified from V)")
	}
	if !res.Tables["migrateCount"].IsSolver() {
		t.Error("migrateCount should be a solver table")
	}
	// max_migrates must have been substituted.
	for _, r := range res.Program.Rules {
		if r.Label != "c3" {
			continue
		}
		cond := r.Body[0].(*colog.CondLit)
		bin := cond.Expr.(*colog.BinTerm)
		c, ok := bin.R.(*colog.ConstTerm)
		if !ok || c.Val.I != 3 {
			t.Errorf("c3 parameter not bound: %v", cond.Expr)
		}
	}
}

const followSunSrc = `
goal minimize C in aggCost(@X,C).
var migVm(@X,Y,D,R) forall toMigVm(@X,Y,D) domain [-60,60].

r1 toMigVm(@X,Y,D) <- setLink(@X,Y), dc(@X,D).
d1 nextVm(@X,D,R) <- curVm(@X,D,R1), migVm(@X,Y,D,R2), R==R1-R2.
d2 nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1), migVm(@X,Y,D,R2), R==R1+R2.
d3 aggCommCost(@X,SUM<Cost>) <- nextVm(@X,D,R), commCost(@X,D,C), Cost==R*C.
d4 aggOpCost(@X,SUM<Cost>) <- nextVm(@X,D,R), opCost(@X,C), Cost==R*C.
d7 aggMigCost(@X,SUMABS<Cost>) <- migVm(@X,Y,D,R), migCost(@X,Y,C), Cost==R*C.
d8 aggCost(@X,C) <- aggCommCost(@X,C1), aggOpCost(@X,C2), aggMigCost(@X,C3), C==C1+C2+C3.
d9 aggNextVm(@X,SUM<R>) <- nextVm(@X,D,R).
c1 aggNextVm(@X,R1) -> resource(@X,R2), R1<=R2.
c2 aggNborNextVm(@X,Y,R1) -> link(@Y,X), resource(@Y,R2), R1<=R2.
d10 aggNborNextVm(@X,Y,SUM<R>) <- nborNextVm(@X,Y,D,R).
r2 migVm(@Y,X,D,R2) <- setLink(@X,Y), migVm(@X,Y,D,R1), R2:=-R1.
r3 curVm(@X,D,R) <- curVm(@X,D,R1), migVm(@X,Y,D,R2), R:=R1-R2.
`

// TestLocalizationRewriteD2 reproduces the paper's section 5.5 example: the
// distributed solver derivation d2 must split into a regular shipping rule
// (d21) and a local solver derivation (d22).
func TestLocalizationRewriteD2(t *testing.T) {
	res := analyzeOK(t, followSunSrc, nil)
	var ship, local *colog.Rule
	for _, r := range res.Program.Rules {
		if strings.HasPrefix(r.Label, "d2_ship") {
			ship = r
		}
		if r.Label == "d2_local" {
			local = r
		}
	}
	if ship == nil || local == nil {
		t.Fatalf("d2 not rewritten; rules: %v", labels(res.Program))
	}
	// Shipping rule: tmp(@X, ...) <- link(@Y,X), curVm(@Y,D,R1).
	if ship.Head.LocVar() != "X" {
		t.Errorf("shipping head location = %q, want X", ship.Head.LocVar())
	}
	if len(ship.Body) != 2 {
		t.Errorf("shipping body = %v, want the two @Y atoms", ship.Body)
	}
	for _, l := range ship.Body {
		if al, ok := l.(*colog.AtomLit); !ok || al.Atom.LocVar() != "Y" {
			t.Errorf("shipping body atom %v not at @Y", l)
		}
	}
	// Shipped attributes include D and R1 (used by the local rule).
	shipVarNames := map[string]bool{}
	for _, a := range ship.Head.Args {
		if v, ok := a.(*colog.VarTerm); ok {
			shipVarNames[v.Name] = true
		}
	}
	for _, want := range []string{"X", "Y", "D", "R1"} {
		if !shipVarNames[want] {
			t.Errorf("shipping head %v missing attribute %s", ship.Head, want)
		}
	}
	// The local rule keeps migVm and the condition, and the rewrite result
	// must classify: shipping = regular, local = solver derivation.
	if res.Class(ship) != RegularRule {
		t.Errorf("shipping rule class = %v, want regular", res.Class(ship))
	}
	if res.Class(local) != SolverDerivationRule {
		t.Errorf("local rule class = %v, want solver derivation", res.Class(local))
	}
	// Rewritten bookkeeping.
	if res.Rewritten[ship.Label] != "d2" || res.Rewritten[local.Label] != "d2" {
		t.Errorf("Rewritten map = %v", res.Rewritten)
	}
}

// TestLocalizationConstraintC2: the distributed constraint rule c2 must also
// be localized, with the local part remaining a constraint rule.
func TestLocalizationConstraintC2(t *testing.T) {
	res := analyzeOK(t, followSunSrc, nil)
	var local *colog.Rule
	for _, r := range res.Program.Rules {
		if r.Label == "c2_local" {
			local = r
		}
	}
	if local == nil {
		t.Fatalf("c2 not rewritten; rules: %v", labels(res.Program))
	}
	if local.Kind != colog.KindConstraint {
		t.Error("localized c2 lost its constraint kind")
	}
	if res.Class(local) != SolverConstraintRule {
		t.Errorf("c2_local class = %v", res.Class(local))
	}
}

// TestFollowSunRegularRules: r2 and r3 consume the solver's materialized
// output through := and must stay regular.
func TestFollowSunRegularRules(t *testing.T) {
	res := analyzeOK(t, followSunSrc, nil)
	for i, r := range res.Program.Rules {
		if r.Label == "r2" || r.Label == "r3" || r.Label == "r1" {
			if res.Classes[i] != RegularRule {
				t.Errorf("rule %s: class = %v, want regular", r.Label, res.Classes[i])
			}
		}
	}
	if !res.Distributed {
		t.Error("Follow-the-Sun should be detected as distributed")
	}
}

func TestCentralizedProgramNotDistributed(t *testing.T) {
	res := analyzeOK(t, acloudSrc, nil)
	if res.Distributed {
		t.Error("ACloud (centralized) misdetected as distributed")
	}
}

func TestJoinOnSolverAttrRejected(t *testing.T) {
	src := `
var assign(Vid,V) forall toAssign(Vid).
r1 toAssign(Vid) <- vm(Vid).
d1 bad(Vid) <- assign(Vid,V), other(V).
`
	prog, err := colog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, nil); err == nil {
		t.Fatal("expected join-on-solver-attribute error")
	} else if !strings.Contains(err.Error(), "solver attribute") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestConstraintWithoutSolverTableRejected(t *testing.T) {
	src := `c1 load(X) -> X<=5.`
	prog, err := colog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, nil); err == nil {
		t.Fatal("expected constraint-without-solver-table error")
	}
}

func TestUnsafeRuleRejected(t *testing.T) {
	src := `r1 p(X,Y) <- q(X).`
	prog, err := colog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, nil); err == nil {
		t.Fatal("expected unsafe-rule error")
	}
}

func TestArityMismatchRejected(t *testing.T) {
	src := `
r1 p(X) <- q(X).
r2 s(X) <- q(X,Y).
`
	prog, err := colog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, nil); err == nil {
		t.Fatal("expected arity mismatch error")
	}
}

func TestAggregateRecursionRejected(t *testing.T) {
	src := `
r1 total(SUM<X>) <- item(X).
r2 item(X) <- total(X).
`
	prog, err := colog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, nil); err == nil {
		t.Fatal("expected aggregate recursion error")
	}
}

func TestVarDeclWithoutSolverVarRejected(t *testing.T) {
	src := `
var assign(Vid) forall toAssign(Vid).
r1 toAssign(Vid) <- vm(Vid).
`
	prog, err := colog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, nil); err == nil {
		t.Fatal("expected no-solver-variable error")
	}
}

func TestMissingConnectingAtomRejected(t *testing.T) {
	// Remote group at @Y never binds X, so the rewrite cannot ship.
	src := `r1 p(@X,C) <- q(@X,D), s(@Y,C), t(@X,D,Y).`
	prog, err := colog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, nil); err == nil {
		t.Fatal("expected missing-connecting-atom error")
	} else if !strings.Contains(err.Error(), "connecting atom") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRecursiveRegularRulesAllowed(t *testing.T) {
	// Classic transitive closure must pass analysis.
	src := `
r1 path(X,Y) <- edge(X,Y).
r2 path(X,Z) <- path(X,Y), edge(Y,Z).
`
	res := analyzeOK(t, src, nil)
	if len(res.Program.Rules) != 2 {
		t.Fatalf("rules = %d", len(res.Program.Rules))
	}
}

func TestParamBindingUppercase(t *testing.T) {
	// F_mindiff parses as a variable; binding must turn it into a constant.
	src := `
var assign(X,C) forall link(X).
d1 cost(X,C) <- assign(X,C1), (C==1)==(C1<F_mindiff).
`
	res := analyzeOK(t, src, map[string]colog.Value{"F_mindiff": colog.IntVal(5)})
	d1 := res.Program.RuleByLabel("d1")
	s := d1.String()
	if strings.Contains(s, "F_mindiff") {
		t.Fatalf("F_mindiff not substituted: %s", s)
	}
	if !strings.Contains(s, "5") {
		t.Fatalf("constant missing: %s", s)
	}
}

func TestAnalyzeDoesNotMutateInput(t *testing.T) {
	prog, err := colog.Parse(followSunSrc)
	if err != nil {
		t.Fatal(err)
	}
	before := prog.String()
	if _, err := Analyze(prog, map[string]colog.Value{"x": colog.IntVal(1)}); err != nil {
		t.Fatal(err)
	}
	if prog.String() != before {
		t.Fatal("Analyze mutated its input program")
	}
}

func TestRuleClassString(t *testing.T) {
	if RegularRule.String() != "regular" ||
		SolverDerivationRule.String() != "solver-derivation" ||
		SolverConstraintRule.String() != "solver-constraint" {
		t.Fatal("RuleClass.String broken")
	}
}

func labels(p *colog.Program) []string {
	var out []string
	for _, r := range p.Rules {
		out = append(out, r.Label)
	}
	return out
}
