package dctrace

import (
	"testing"
	"time"
)

func TestDefaultDimensions(t *testing.T) {
	tr := New(DefaultParams())
	if tr.Customers() != 248 {
		t.Fatalf("Customers = %d", tr.Customers())
	}
	total := 0
	for c := 0; c < tr.Customers(); c++ {
		if tr.PPs(c) < 1 {
			t.Fatalf("customer %d has no PPs", c)
		}
		total += tr.PPs(c)
	}
	if total != 1740 {
		t.Fatalf("total PPs = %d, want 1740", total)
	}
}

func TestCPUBounds(t *testing.T) {
	tr := New(DefaultParams())
	samples := SamplesFor(24 * time.Hour)
	for c := 0; c < 20; c++ {
		for s := 0; s < samples; s++ {
			u := tr.CPUPercent(c, s)
			if u < 0 || u > 100 {
				t.Fatalf("CPU out of range: customer %d sample %d = %v", c, s, u)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := New(DefaultParams())
	b := New(DefaultParams())
	for c := 0; c < 10; c++ {
		for s := 0; s < 50; s++ {
			if a.CPUPercent(c, s) != b.CPUPercent(c, s) {
				t.Fatalf("trace not deterministic at (%d,%d)", c, s)
			}
		}
	}
	// Query order independence.
	x := a.CPUPercent(5, 100)
	a.CPUPercent(7, 3)
	if a.CPUPercent(5, 100) != x {
		t.Fatal("trace depends on query order")
	}
}

func TestSeedsDiffer(t *testing.T) {
	p := DefaultParams()
	a := New(p)
	p.Seed = 99
	b := New(p)
	same := 0
	for s := 0; s < 100; s++ {
		if a.CPUPercent(0, s) == b.CPUPercent(0, s) {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("different seeds produce near-identical traces (%d/100 equal)", same)
	}
}

func TestDiurnalVariation(t *testing.T) {
	// Over a day the demand must actually move (the workload generator's
	// spawn/stop logic depends on it).
	tr := New(DefaultParams())
	day := SamplesFor(24 * time.Hour)
	for c := 0; c < 5; c++ {
		lo, hi := 101.0, -1.0
		for s := 0; s < day; s++ {
			u := tr.CPUPercent(c, s)
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		if hi-lo < 10 {
			t.Errorf("customer %d demand range only %.1f%%", c, hi-lo)
		}
	}
}

func TestMemFootprint(t *testing.T) {
	tr := New(DefaultParams())
	for c := 0; c < tr.Customers(); c++ {
		m := tr.MemMB(c)
		if m < 256 || m > 1024 || m%256 != 0 {
			t.Fatalf("MemMB(%d) = %d", c, m)
		}
	}
}

func TestDegenerateParams(t *testing.T) {
	tr := New(Params{Customers: 0, TotalPPs: 0, Seed: 1})
	if tr.Customers() != 1 {
		t.Fatalf("degenerate customers = %d", tr.Customers())
	}
	_ = tr.CPUPercent(0, 0)
}
