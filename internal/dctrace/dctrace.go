// Package dctrace synthesizes a data-center utilization trace with the
// shape of the one the paper obtained from a large US hosting company: up to
// 248 customers on 1,740 statically allocated physical processors, CPU and
// memory sampled every 300 seconds over a month. The real trace is
// proprietary; this generator reproduces its load dynamics — diurnal cycles
// with per-customer phase, bursts, and noise — which are what drive the
// ACloud workload generator's spawn/stop/start decisions (section 6.2).
package dctrace

import (
	"math"
	"math/rand"
	"time"
)

// SampleInterval is the trace's sampling period (300 s in the paper).
const SampleInterval = 300 * time.Second

// Params configure trace synthesis.
type Params struct {
	Customers int   // number of customers (paper: 248)
	TotalPPs  int   // physical processors shared by the customers (paper: 1740)
	Seed      int64 // deterministic generation
}

// DefaultParams returns the paper's trace dimensions.
func DefaultParams() Params {
	return Params{Customers: 248, TotalPPs: 1740, Seed: 1}
}

// Trace generates per-customer CPU demand lazily; it is cheap to keep a
// month of virtual trace without materializing it.
type Trace struct {
	p         Params
	ppsOf     []int
	base      []float64 // baseline utilization fraction
	amp       []float64 // diurnal amplitude
	phase     []float64 // diurnal phase offset (radians)
	burstFreq []float64 // expected bursts/day
	noise     []float64 // noise amplitude
	memMB     []int64   // per-VM memory footprint
}

// New builds a deterministic trace generator.
func New(p Params) *Trace {
	if p.Customers <= 0 {
		p.Customers = 1
	}
	if p.TotalPPs < p.Customers {
		p.TotalPPs = p.Customers
	}
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Trace{
		p:         p,
		ppsOf:     make([]int, p.Customers),
		base:      make([]float64, p.Customers),
		amp:       make([]float64, p.Customers),
		phase:     make([]float64, p.Customers),
		burstFreq: make([]float64, p.Customers),
		noise:     make([]float64, p.Customers),
		memMB:     make([]int64, p.Customers),
	}
	// Skewed PP allocation: a few large customers, many small ones.
	remaining := p.TotalPPs - p.Customers
	for i := range t.ppsOf {
		t.ppsOf[i] = 1
	}
	for remaining > 0 {
		i := int(math.Floor(math.Pow(rng.Float64(), 2.5) * float64(p.Customers)))
		if i >= p.Customers {
			i = p.Customers - 1
		}
		t.ppsOf[i]++
		remaining--
	}
	for i := 0; i < p.Customers; i++ {
		t.base[i] = 0.15 + 0.45*rng.Float64()
		t.amp[i] = 0.10 + 0.35*rng.Float64()
		t.phase[i] = 2 * math.Pi * rng.Float64()
		t.burstFreq[i] = 0.5 + 2.5*rng.Float64()
		t.noise[i] = 0.02 + 0.08*rng.Float64()
		t.memMB[i] = 256 * (1 + int64(rng.Intn(4)))
	}
	return t
}

// Customers returns the number of customers in the trace.
func (t *Trace) Customers() int { return t.p.Customers }

// PPs returns the number of physical processors allocated to customer c.
func (t *Trace) PPs(c int) int { return t.ppsOf[c%t.p.Customers] }

// MemMB returns the per-VM memory footprint of customer c's application.
func (t *Trace) MemMB(c int) int64 { return t.memMB[c%t.p.Customers] }

// CPUPercent returns customer c's average per-PP CPU utilization (0-100) at
// the given sample index. The series is deterministic in (seed, c, sample).
func (t *Trace) CPUPercent(c int, sample int) float64 {
	c = c % t.p.Customers
	dayFrac := float64(sample) * SampleInterval.Seconds() / 86400.0
	diurnal := t.base[c] + t.amp[c]*math.Sin(2*math.Pi*dayFrac+t.phase[c])
	// Deterministic per-(customer,sample) noise and bursts, independent of
	// query order.
	h := rand.New(rand.NewSource(t.p.Seed ^ int64(c)*1000003 ^ int64(sample)*10007))
	u := diurnal + t.noise[c]*(2*h.Float64()-1)
	// Bursts: short saturation episodes.
	burstWindow := int(86400 / SampleInterval.Seconds() / t.burstFreq[c])
	if burstWindow > 0 && h.Intn(burstWindow) == 0 {
		u += 0.3 + 0.4*h.Float64()
	}
	if u < 0.01 {
		u = 0.01
	}
	if u > 1 {
		u = 1
	}
	return 100 * u
}

// SamplesFor returns the number of samples covering the duration.
func SamplesFor(d time.Duration) int {
	return int(d / SampleInterval)
}
