package codegen

import (
	"strings"
	"testing"

	"repro/internal/programs"
)

func TestGenerateACloud(t *testing.T) {
	e := programs.ACloud(false, 0)
	src := Generate(e.Name, e.Analyze())
	for _, frag := range []string{
		"class AssignTable", "Gecode::BAB", "Rule", "InvokeSolver",
		"CologneSpace", "int main",
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("generated code missing %q", frag)
		}
	}
}

func TestCountLines(t *testing.T) {
	src := `
// comment
int x = 1;

/* block
   comment */
int y = 2; /* trailing */
`
	if got := CountLines(src); got != 2 {
		t.Fatalf("CountLines = %d, want 2", got)
	}
}

// TestTable2Ratios reproduces the shape of the paper's Table 2: every
// protocol's generated imperative code must be far larger than its Colog
// source — the paper reports roughly two orders of magnitude.
func TestTable2Ratios(t *testing.T) {
	for _, e := range programs.Table2Entries() {
		res := e.Analyze()
		nRules := res.Program.NumRules()
		loc := CountLines(Generate(e.Name, res))
		ratio := float64(loc) / float64(nRules)
		t.Logf("%-30s %3d rules -> %5d LOC (ratio %.0fx)", e.Name, nRules, loc, ratio)
		if ratio < 15 {
			t.Errorf("%s: LOC ratio %.1fx is implausibly low", e.Name, ratio)
		}
		if loc < 300 {
			t.Errorf("%s: generated only %d LOC", e.Name, loc)
		}
	}
}

// TestDistributedLargerThanCentralized mirrors the ordering in Table 2.
func TestDistributedLargerThanCentralized(t *testing.T) {
	entries := programs.Table2Entries()
	locOf := func(e programs.Entry) int {
		return CountLines(Generate(e.Name, e.Analyze()))
	}
	ftsC, ftsD := locOf(entries[1]), locOf(entries[2])
	if ftsD <= ftsC {
		t.Errorf("FtS distributed LOC (%d) should exceed centralized (%d)", ftsD, ftsC)
	}
	wC, wD := locOf(entries[3]), locOf(entries[4])
	if wD <= wC {
		t.Errorf("wireless distributed LOC (%d) should exceed centralized (%d)", wD, wC)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	e := programs.FollowSunDistributed(20)
	a := Generate(e.Name, e.Analyze())
	b := Generate(e.Name, e.Analyze())
	if a != b {
		t.Fatal("Generate is not deterministic")
	}
}

func TestNetworkLayerOnlyForDistributed(t *testing.T) {
	cent := programs.ACloud(false, 0)
	if strings.Contains(Generate(cent.Name, cent.Analyze()), "Marshal") {
		t.Error("centralized program should not emit network marshaling")
	}
	dist := programs.FollowSunDistributed(20)
	if !strings.Contains(Generate(dist.Name, dist.Analyze()), "Marshal") {
		t.Error("distributed program must emit network marshaling")
	}
}
