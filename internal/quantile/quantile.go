// Package quantile holds the one shared percentile definition every
// latency-reporting surface uses: nearest-rank over an ascending sort,
// idx = ceil(p*n)-1 computed as int(p*n)-1 clamped to [0, n-1]. The cluster
// serving rounds (TickStats), the serve runtime's per-tick Stats, and the
// load drivers (cmd/serve, cmd/loadgen) all read their p50/p99 through it,
// so a reported percentile means the same thing everywhere.
package quantile

import (
	"sort"
	"time"
)

// Durations returns the p-quantile (0 < p <= 1) of vals, or 0 when empty.
// The input is not modified; a sorted copy is made.
func Durations(vals []time.Duration, p float64) time.Duration {
	if len(vals) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return SortedDurations(sorted, p)
}

// SortedDurations reads the p-quantile from an ascending-sorted slice
// without copying. Use it on hot paths that keep their samples sorted.
func SortedDurations(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[rank(len(sorted), p)]
}

// Float64s returns the p-quantile (0 < p <= 1) of vals, or 0 when empty.
// The input is not modified; a sorted copy is made.
func Float64s(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	return sorted[rank(len(sorted), p)]
}

// rank maps a quantile onto a slice index, nearest-rank convention.
func rank(n int, p float64) int {
	idx := int(p*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
