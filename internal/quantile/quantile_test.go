package quantile

import (
	"testing"
	"time"
)

func TestDurationsNearestRank(t *testing.T) {
	vals := []time.Duration{5, 1, 4, 2, 3} // unsorted on purpose
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 2}, // int(0.5*5)-1 = 1 -> sorted[1]
		{0.99, 4}, // int(0.99*5)-1 = 3 -> sorted[3]
		{1.00, 5},
		{0.01, 1}, // clamped to index 0
	}
	for _, c := range cases {
		if got := Durations(vals, c.p); got != c.want {
			t.Errorf("Durations(p=%g) = %d, want %d", c.p, got, c.want)
		}
	}
	if vals[0] != 5 {
		t.Fatalf("Durations mutated its input: %v", vals)
	}
	if got := Durations(nil, 0.5); got != 0 {
		t.Fatalf("Durations(nil) = %d, want 0", got)
	}
}

func TestSortedDurations(t *testing.T) {
	sorted := []time.Duration{10, 20, 30, 40}
	if got := SortedDurations(sorted, 0.5); got != 20 {
		t.Fatalf("SortedDurations(0.5) = %d, want 20", got)
	}
	if got := SortedDurations(nil, 0.5); got != 0 {
		t.Fatalf("SortedDurations(nil) = %d, want 0", got)
	}
}

func TestFloat64s(t *testing.T) {
	vals := []float64{9, 7, 8}
	if got := Float64s(vals, 0.5); got != 7 {
		t.Fatalf("Float64s(0.5) = %g, want 7", got)
	}
	if got := Float64s(vals, 1.0); got != 9 {
		t.Fatalf("Float64s(1.0) = %g, want 9", got)
	}
	if got := Float64s(nil, 0.5); got != 0 {
		t.Fatalf("Float64s(nil) = %g, want 0", got)
	}
}
