package policies

import (
	"testing"

	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/solver"
)

func ival(v int64) colog.Value  { return colog.IntVal(v) }
func sval(s string) colog.Value { return colog.StringVal(s) }

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestRoutingMinCostPath: a diamond network where the direct edge is
// expensive; the solver must route around it.
func TestRoutingMinCostPath(t *testing.T) {
	n, err := NewNode(RoutingSrc, core.Config{SolverPropagate: true})
	must(t, err)
	// Edges: s->a->t cheap (1+1), s->t direct cost 10. Capacity 1 each.
	edges := []struct {
		x, y string
		w    int64
	}{{"s", "a", 1}, {"a", "t", 1}, {"s", "t", 10}}
	for _, e := range edges {
		must(t, n.Insert("edge", sval(e.x), sval(e.y), ival(e.w), ival(1)))
	}
	for _, nd := range []string{"s", "a", "t"} {
		must(t, n.Insert("netNode", sval(nd)))
	}
	must(t, n.Insert("flow", sval("f1"), sval("s"), sval("t")))
	// Balance: +1 at source, -1 at sink, 0 at intermediates.
	must(t, n.Insert("balance", sval("f1"), sval("s"), ival(1)))
	must(t, n.Insert("balance", sval("f1"), sval("a"), ival(0)))
	must(t, n.Insert("balance", sval("f1"), sval("t"), ival(-1)))
	res, err := n.Solve(core.SolveOptions{})
	must(t, err)
	if res.Status != solver.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Objective != 2 {
		t.Fatalf("objective = %v, want 2 (route s->a->t)", res.Objective)
	}
	used := map[string]int64{}
	for _, a := range res.Assignments {
		used[a.Vals[1].S+">"+a.Vals[2].S] = a.Vals[3].I
	}
	if used["s>a"] != 1 || used["a>t"] != 1 || used["s>t"] != 0 {
		t.Fatalf("route = %v", used)
	}
}

// TestRoutingCapacityForcesDetour: two flows, direct edge capacity 1 — one
// flow must take the detour.
func TestRoutingCapacityForcesDetour(t *testing.T) {
	n, err := NewNode(RoutingSrc, core.Config{SolverPropagate: true})
	must(t, err)
	for _, e := range []struct {
		x, y string
		w    int64
		c    int64
	}{{"s", "t", 1, 1}, {"s", "a", 2, 2}, {"a", "t", 2, 2}} {
		must(t, n.Insert("edge", sval(e.x), sval(e.y), ival(e.w), ival(e.c)))
	}
	for _, nd := range []string{"s", "a", "t"} {
		must(t, n.Insert("netNode", sval(nd)))
	}
	for _, f := range []string{"f1", "f2"} {
		must(t, n.Insert("flow", sval(f), sval("s"), sval("t")))
		must(t, n.Insert("balance", sval(f), sval("s"), ival(1)))
		must(t, n.Insert("balance", sval(f), sval("a"), ival(0)))
		must(t, n.Insert("balance", sval(f), sval("t"), ival(-1)))
	}
	res, err := n.Solve(core.SolveOptions{})
	must(t, err)
	if !res.Feasible() {
		t.Fatalf("status = %v", res.Status)
	}
	// One flow direct (1), one detour (4) -> 5.
	if res.Objective != 5 {
		t.Fatalf("objective = %v, want 5", res.Objective)
	}
	direct := int64(0)
	for _, a := range res.Assignments {
		if a.Vals[1].S == "s" && a.Vals[2].S == "t" {
			direct += a.Vals[3].I
		}
	}
	if direct != 1 {
		t.Fatalf("direct edge carries %d flows, want 1 (capacity)", direct)
	}
}

// TestSchedulingMakespan: 4 jobs on 2 machines; optimal makespan balances
// the lengths.
func TestSchedulingMakespan(t *testing.T) {
	n, err := NewNode(SchedulingSrc, core.Config{SolverPropagate: true})
	must(t, err)
	for _, j := range []struct {
		id  string
		len int64
	}{{"j1", 7}, {"j2", 5}, {"j3", 4}, {"j4", 2}} {
		must(t, n.Insert("job", sval(j.id), ival(j.len)))
	}
	must(t, n.Insert("machine", sval("m1"), ival(4)))
	must(t, n.Insert("machine", sval("m2"), ival(4)))
	res, err := n.Solve(core.SolveOptions{})
	must(t, err)
	if res.Status != solver.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Total 18, best split 9/9 (7+2, 5+4).
	if res.Objective != 9 {
		t.Fatalf("makespan = %v, want 9", res.Objective)
	}
}

// TestSchedulingSlotLimit: one machine with a single slot forces spreading.
func TestSchedulingSlotLimit(t *testing.T) {
	n, err := NewNode(SchedulingSrc, core.Config{SolverPropagate: true})
	must(t, err)
	for _, j := range []string{"j1", "j2", "j3"} {
		must(t, n.Insert("job", sval(j), ival(1)))
	}
	must(t, n.Insert("machine", sval("m1"), ival(1)))
	must(t, n.Insert("machine", sval("m2"), ival(5)))
	res, err := n.Solve(core.SolveOptions{})
	must(t, err)
	onM1 := int64(0)
	for _, a := range res.Assignments {
		if a.Vals[1].S == "m1" {
			onM1 += a.Vals[2].I
		}
	}
	if onM1 > 1 {
		t.Fatalf("m1 got %d jobs, slot limit 1", onM1)
	}
}

// TestPlacementRackDiversity: 2 replicas, three nodes of which two share a
// rack; the cheap same-rack pair is forbidden.
func TestPlacementRackDiversity(t *testing.T) {
	n, err := NewNode(PlacementSrc, core.Config{SolverPropagate: true})
	must(t, err)
	must(t, n.Insert("object", sval("db"), ival(2)))
	// n1/n2 on rack r1 (cheap), n3 on rack r2 (expensive).
	must(t, n.Insert("node", sval("n1"), sval("r1"), ival(1)))
	must(t, n.Insert("node", sval("n2"), sval("r1"), ival(1)))
	must(t, n.Insert("node", sval("n3"), sval("r2"), ival(5)))
	res, err := n.Solve(core.SolveOptions{})
	must(t, err)
	if res.Status != solver.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	racks := map[string]int{}
	count := 0
	for _, a := range res.Assignments {
		if a.Vals[2].I == 1 {
			count++
			switch a.Vals[1].S {
			case "n1", "n2":
				racks["r1"]++
			case "n3":
				racks["r2"]++
			}
		}
	}
	if count != 2 {
		t.Fatalf("placed %d replicas, want 2", count)
	}
	if racks["r1"] > 1 {
		t.Fatalf("two replicas on one rack: %v", racks)
	}
	// Forced cost: 1 (one of n1/n2) + 5 (n3).
	if res.Objective != 6 {
		t.Fatalf("objective = %v, want 6", res.Objective)
	}
}

// TestPlacementInfeasibleWhenTooFewRacks: 3 replicas but only 2 racks.
func TestPlacementInfeasibleWhenTooFewRacks(t *testing.T) {
	n, err := NewNode(PlacementSrc, core.Config{SolverPropagate: true})
	must(t, err)
	must(t, n.Insert("object", sval("db"), ival(3)))
	must(t, n.Insert("node", sval("n1"), sval("r1"), ival(1)))
	must(t, n.Insert("node", sval("n2"), sval("r1"), ival(1)))
	must(t, n.Insert("node", sval("n3"), sval("r2"), ival(1)))
	res, err := n.Solve(core.SolveOptions{})
	must(t, err)
	if res.Status != solver.StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

// TestPoliciesAnalyzeCleanly verifies rule classification on all three.
func TestPoliciesAnalyzeCleanly(t *testing.T) {
	for _, src := range []string{RoutingSrc, SchedulingSrc, PlacementSrc} {
		if _, err := NewNode(src, core.Config{}); err != nil {
			t.Fatalf("policy does not build: %v", err)
		}
	}
}

// TestEngineEquivalence solves the placement policy under both search cores
// and requires identical status, objective, and materialized assignments.
func TestEngineEquivalence(t *testing.T) {
	solve := func(engine string) *core.SolveResult {
		n, err := NewNode(PlacementSrc, core.Config{SolverPropagate: true, SolverEngine: engine})
		must(t, err)
		racks := []string{"r1", "r2", "r3"}
		for i, rack := range racks {
			for j := 0; j < 2; j++ {
				must(t, n.Insert("node", sval(rack+"n"+string(rune('a'+j))), sval(rack), ival(int64(1+i))))
			}
		}
		for _, o := range []string{"o1", "o2"} {
			must(t, n.Insert("object", sval(o), ival(2)))
		}
		res, err := n.Solve(core.SolveOptions{})
		must(t, err)
		return res
	}
	ev, lg := solve("event"), solve("legacy")
	if ev.Status != lg.Status || ev.Objective != lg.Objective {
		t.Fatalf("engines diverge: event %v/%v, legacy %v/%v",
			ev.Status, ev.Objective, lg.Status, lg.Objective)
	}
	if ev.Stats.Nodes != lg.Stats.Nodes {
		t.Fatalf("trace diverged: %d vs %d nodes", ev.Stats.Nodes, lg.Stats.Nodes)
	}
	if len(ev.Assignments) != len(lg.Assignments) {
		t.Fatalf("assignment counts differ: %d vs %d", len(ev.Assignments), len(lg.Assignments))
	}
	for i := range ev.Assignments {
		a, b := ev.Assignments[i], lg.Assignments[i]
		for j := range a.Vals {
			if !a.Vals[j].Equal(b.Vals[j]) {
				t.Fatalf("assignment %d differs: %v vs %v", i, a.Vals, b.Vals)
			}
		}
	}
}

// TestIncrementalEquivalence drives each bundled policy through a
// value-churn script on a fresh-grounding node and an incremental one in
// lockstep, requiring bit-identical solve results (including trace length)
// at every step.
func TestIncrementalEquivalence(t *testing.T) {
	cases := []struct {
		name string
		src  string
		keys map[string][]int
		load func(t *testing.T, n *core.Node)
		// churn mutates one value tick by tick; returns the op applied to
		// both nodes.
		churn func(step int, n *core.Node) error
	}{
		{
			name: "scheduling",
			src:  SchedulingSrc,
			keys: map[string][]int{"job": {0}, "machine": {0}},
			load: func(t *testing.T, n *core.Node) {
				for i, l := range []int64{4, 7, 3, 6} {
					must(t, n.Insert("job", sval(string(rune('a'+i))), ival(l)))
				}
				must(t, n.Insert("machine", sval("m1"), ival(3)))
				must(t, n.Insert("machine", sval("m2"), ival(3)))
			},
			churn: func(step int, n *core.Node) error {
				// Job lengths drift: a keyed value update per tick.
				j := string(rune('a' + step%4))
				return n.Insert("job", sval(j), ival(int64(3+(step*5)%9)))
			},
		},
		{
			name: "placement",
			src:  PlacementSrc,
			keys: map[string][]int{"object": {0}, "node": {0}},
			load: func(t *testing.T, n *core.Node) {
				must(t, n.Insert("object", sval("o1"), ival(2)))
				for i, c := range []int64{3, 5, 4, 2} {
					rack := sval(string(rune('A' + i%2)))
					must(t, n.Insert("node", sval(string(rune('n'))+string(rune('1'+i))), rack, ival(c)))
				}
			},
			churn: func(step int, n *core.Node) error {
				// Storage costs drift.
				nd := sval(string(rune('n')) + string(rune('1'+step%4)))
				rack := sval(string(rune('A' + step%2)))
				return n.Insert("node", nd, rack, ival(int64(1+(step*3)%7)))
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := func(incremental bool) *core.Node {
				n, err := NewNode(tc.src, core.Config{
					SolverPropagate:   true,
					Keys:              tc.keys,
					SolverIncremental: incremental,
				})
				must(t, err)
				tc.load(t, n)
				return n
			}
			fresh, inc := build(false), build(true)
			sawPatch := false
			for step := 0; step < 12; step++ {
				must(t, tc.churn(step, fresh))
				must(t, tc.churn(step, inc))
				fr, err := fresh.Solve(core.SolveOptions{})
				must(t, err)
				ir, err := inc.Solve(core.SolveOptions{})
				must(t, err)
				if fr.Status != ir.Status || fr.Objective != ir.Objective ||
					fr.Stats.Nodes != ir.Stats.Nodes {
					t.Fatalf("step %d: fresh %v/%v/%d nodes vs incremental %v/%v/%d nodes",
						step, fr.Status, fr.Objective, fr.Stats.Nodes,
						ir.Status, ir.Objective, ir.Stats.Nodes)
				}
				for i := range fr.Assignments {
					for j := range fr.Assignments[i].Vals {
						if !fr.Assignments[i].Vals[j].Equal(ir.Assignments[i].Vals[j]) {
							t.Fatalf("step %d: assignment %d differs", step, i)
						}
					}
				}
				if ir.Ground != nil && ir.Ground.ConstsPatched > 0 {
					sawPatch = true
				}
			}
			if !sawPatch {
				t.Fatalf("churn never hit the constant-patch path")
			}
		})
	}
}
