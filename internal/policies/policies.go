// Package policies collects additional declarative optimization policies
// beyond the paper's two headline use cases, exercising the breadth the
// paper claims for the platform ("load balancing, robust routing,
// scheduling, and security", section 1): min-cost flow routing with
// capacity constraints, makespan-minimizing job scheduling, and
// rack-diverse replica placement. Each is a plain Colog program executed by
// the unmodified engine.
package policies

import (
	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/core"
)

// RoutingSrc routes flows through a capacitated network at minimum cost:
// one 0/1 variable per (flow, directed edge), flow conservation expressed
// through aggregates and constraint rules, link capacity shared across
// flows. This is the "robust routing" policy family: raising a link's cost
// or lowering its capacity reroutes traffic declaratively.
const RoutingSrc = `
goal minimize C in totalCost(C).
var use(F,X,Y,V) forall candidate(F,X,Y).

r1 candidate(F,X,Y) <- flow(F,S,T), edge(X,Y,W,Cap).

// Zero-seed contributions make the in/out aggregates total over every
// network node, so flow conservation binds even at nodes that lack
// incoming or outgoing edges (constraint rules over missing aggregate rows
// would otherwise be vacuous).
r2 outContrib(F,N,Z) <- flow(F,S,T), netNode(N), Z:=0.
r3 inContrib(F,N,Z) <- flow(F,S,T), netNode(N), Z:=0.
d1 outContrib(F,X,V) <- use(F,X,Y,V).
d2 inContrib(F,Y,V) <- use(F,X,Y,V).
d3 outFlow(F,N,SUM<V>) <- outContrib(F,N,V).
d4 inFlow(F,N,SUM<V>) <- inContrib(F,N,V).

// Net flow at each node: +1 at the source, -1 at the sink, 0 elsewhere.
d5 netFlow(F,N,D) <- outFlow(F,N,O), inFlow(F,N,I), D==O-I.
c1 netFlow(F,N,D) -> balance(F,N,B), D==B.

// Each directed edge carries at most its capacity in flows.
d6 edgeLoad(X,Y,SUM<V>) <- use(F,X,Y,V).
c2 edgeLoad(X,Y,L) -> edge(X,Y,W,Cap), L<=Cap.

// Objective: total weighted edge usage.
d7 totalCost(SUM<C>) <- use(F,X,Y,V), edge(X,Y,W,Cap), C==V*W.
`

// SchedulingSrc assigns jobs to machines minimizing the makespan (the MAX
// aggregate over machine loads), with per-machine job-count limits.
const SchedulingSrc = `
goal minimize M in makespan(M).
var assign(J,W,V) forall candidate(J,W).

r1 candidate(J,W) <- job(J,Len), machine(W,Slots).

d1 load(W,SUM<L>) <- assign(J,W,V), job(J,Len), L==V*Len.
d2 makespan(MAX<L>) <- load(W,L).

d3 jobCount(J,SUM<V>) <- assign(J,W,V).
c1 jobCount(J,V) -> V==1.

d4 slotUse(W,SUM<V>) <- assign(J,W,V).
c2 slotUse(W,N) -> machine(W,Slots), N<=Slots.
`

// PlacementSrc places a fixed number of replicas per object on nodes,
// minimizing storage cost while forbidding two replicas of the same object
// in the same failure domain (rack) — the availability/security flavor of
// policy the paper's introduction motivates.
const PlacementSrc = `
goal minimize C in totalCost(C).
var place(O,N,V) forall candidate(O,N).

r1 candidate(O,N) <- object(O,R), node(N,Rack,Cost).

d1 replicaCount(O,SUM<V>) <- place(O,N,V).
c1 replicaCount(O,V) -> object(O,R), V==R.

// At most one replica of an object per rack.
d2 rackUse(O,Rack,SUM<V>) <- place(O,N,V), node(N,Rack,Cost).
c2 rackUse(O,Rack,V) -> V<=1.

d3 totalCost(SUM<C>) <- place(O,N,V), node(N,Rack,Cost), C==V*Cost.
`

// NewNode analyzes one of the bundled policy sources and builds a
// centralized engine for it.
func NewNode(src string, cfg core.Config) (*core.Node, error) {
	prog, err := colog.Parse(src)
	if err != nil {
		return nil, err
	}
	res, err := analysis.Analyze(prog, cfg.Params)
	if err != nil {
		return nil, err
	}
	return core.NewNode("policy", res, cfg, nil)
}
