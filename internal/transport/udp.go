package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// atomicStats holds one node's traffic counters with atomic fields, so the
// receive loops and concurrent senders update them without holding the
// transport mutex and harness code can snapshot them while traffic flows.
type atomicStats struct {
	msgsSent, msgsReceived   atomic.Int64
	bytesSent, bytesReceived atomic.Int64
}

func (a *atomicStats) snapshot() Stats {
	return Stats{
		MsgsSent:      a.msgsSent.Load(),
		MsgsReceived:  a.msgsReceived.Load(),
		BytesSent:     a.bytesSent.Load(),
		BytesReceived: a.bytesReceived.Load(),
	}
}

// UDP is a real-socket transport implementing the paper's "implementation
// mode": the same engine code runs unchanged, but tuples travel over UDP
// datagrams instead of the simulated network. Each registered node binds a
// loopback UDP socket; an address book maps node names to socket addresses.
//
// Per-node counters are atomic: handlers and senders on many goroutines
// update them lock-free, and NodeStats reads a consistent snapshot without
// racing them (the benchmark harness polls counters while traffic flows).
type UDP struct {
	// mu is read-locked on the per-message hot paths (Send, recvLoop,
	// NodeStats do lookups only) and write-locked by the rare mutations
	// (Register, failure injection, stats reset, Close), so concurrent
	// senders on the epoch worker pool never serialize on the transport.
	mu        sync.RWMutex
	conns     map[string]*net.UDPConn
	addrs     map[string]*net.UDPAddr
	handlers  map[string]Handler
	stats     map[string]*atomicStats
	downNodes map[string]bool
	downLinks map[string]bool // "from->to"
	closed    bool
	wg        sync.WaitGroup
}

// framePool recycles Send's scratch frame buffers across messages.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// NewUDP creates an empty UDP transport.
func NewUDP() *UDP {
	return &UDP{
		conns:     map[string]*net.UDPConn{},
		addrs:     map[string]*net.UDPAddr{},
		handlers:  map[string]Handler{},
		stats:     map[string]*atomicStats{},
		downNodes: map[string]bool{},
		downLinks: map[string]bool{},
	}
}

// Register implements Transport: it binds an ephemeral loopback UDP socket
// for the node and starts its receive loop. Re-registering an existing node
// replaces its handler and keeps the socket and counters (a node restart
// resumes its traffic history).
func (t *UDP) Register(node string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.conns[node]; exists {
		t.handlers[node] = h
		return
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		panic(fmt.Sprintf("transport: cannot bind UDP socket for %s: %v", node, err))
	}
	t.conns[node] = conn
	t.addrs[node] = conn.LocalAddr().(*net.UDPAddr)
	t.handlers[node] = h
	t.stats[node] = &atomicStats{}
	t.wg.Add(1)
	go t.recvLoop(node, conn)
}

// SetNodeDown implements FailureInjector: while down, messages to and from
// node are silently lost (senders still count them as sent, mirroring a
// datagram lost in flight; inbound datagrams are discarded on receive).
func (t *UDP) SetNodeDown(node string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if down {
		t.downNodes[node] = true
	} else {
		delete(t.downNodes, node)
	}
}

// SetLinkDown implements FailureInjector: while down, messages on the
// directed link from->to are silently lost.
func (t *UDP) SetLinkDown(from, to string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if down {
		t.downLinks[from+"->"+to] = true
	} else {
		delete(t.downLinks, from+"->"+to)
	}
}

// ResetNodeStats implements StatsResetter: the node's counters restart at
// zero (a restarted instance begins a fresh traffic history). The receive
// loop and concurrent senders pick up the fresh counter block on their next
// message.
func (t *UDP) ResetNodeStats(node string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.stats[node]; ok {
		t.stats[node] = &atomicStats{}
	}
}

func (t *UDP) recvLoop(node string, conn *net.UDPConn) {
	defer t.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n < 2 {
			continue
		}
		// Frame: fromLen byte, from, payload.
		fl := int(buf[0])
		if 1+fl > n {
			continue
		}
		from := string(buf[1 : 1+fl])
		payload := append([]byte(nil), buf[1+fl:n]...)
		t.mu.RLock()
		h := t.handlers[node]
		st := t.stats[node]
		down := t.downNodes[node] || t.downNodes[from] || t.downLinks[from+"->"+node]
		t.mu.RUnlock()
		if down {
			continue // lost to an injected failure
		}
		if st != nil {
			st.msgsReceived.Add(1)
			st.bytesReceived.Add(int64(len(payload)))
		}
		if h != nil {
			h(Message{From: from, To: node, Payload: payload})
		}
	}
}

// Send implements Transport.
func (t *UDP) Send(from, to string, payload []byte) error {
	t.mu.RLock()
	dst, ok := t.addrs[to]
	src := t.conns[from]
	st := t.stats[from]
	down := t.downNodes[from] || t.downNodes[to] || t.downLinks[from+"->"+to]
	t.mu.RUnlock()
	if !ok {
		return &ErrUnknownNode{Node: to}
	}
	if len(from) > 255 {
		return fmt.Errorf("transport: node name %q too long", from)
	}
	if down {
		// Count as sent, lose in flight: a real datagram to a dead host is
		// charged to the sender too.
		if st != nil {
			st.msgsSent.Add(1)
			st.bytesSent.Add(int64(len(payload)))
		}
		return nil
	}
	// The datagram write is synchronous, so the frame buffer can come from
	// a pool and go straight back after the write — one less allocation per
	// message on the wire hot path.
	fp := framePool.Get().(*[]byte)
	frame := (*fp)[:0]
	if need := 1 + len(from) + len(payload); cap(frame) < need {
		frame = make([]byte, 0, need)
	}
	frame = append(frame, byte(len(from)))
	frame = append(frame, from...)
	frame = append(frame, payload...)
	var err error
	if src != nil {
		_, err = src.WriteToUDP(frame, dst)
	} else {
		// Sender without a registered socket: use a throwaway connection.
		var c *net.UDPConn
		c, err = net.DialUDP("udp", nil, dst)
		if err == nil {
			_, err = c.Write(frame)
			c.Close()
		}
	}
	*fp = frame
	framePool.Put(fp)
	if err == nil && st != nil {
		st.msgsSent.Add(1)
		st.bytesSent.Add(int64(len(payload)))
	}
	return err
}

// NodeStats implements Transport.
func (t *UDP) NodeStats(node string) Stats {
	t.mu.RLock()
	st, ok := t.stats[node]
	t.mu.RUnlock()
	if ok {
		return st.snapshot()
	}
	return Stats{}
}

// Close implements Transport: all sockets are closed and receive loops
// joined.
func (t *UDP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
