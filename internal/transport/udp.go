package transport

import (
	"fmt"
	"net"
	"sync"
)

// UDP is a real-socket transport implementing the paper's "implementation
// mode": the same engine code runs unchanged, but tuples travel over UDP
// datagrams instead of the simulated network. Each registered node binds a
// loopback UDP socket; an address book maps node names to socket addresses.
type UDP struct {
	mu       sync.Mutex
	conns    map[string]*net.UDPConn
	addrs    map[string]*net.UDPAddr
	handlers map[string]Handler
	stats    map[string]*Stats
	closed   bool
	wg       sync.WaitGroup
}

// NewUDP creates an empty UDP transport.
func NewUDP() *UDP {
	return &UDP{
		conns:    map[string]*net.UDPConn{},
		addrs:    map[string]*net.UDPAddr{},
		handlers: map[string]Handler{},
		stats:    map[string]*Stats{},
	}
}

// Register implements Transport: it binds an ephemeral loopback UDP socket
// for the node and starts its receive loop.
func (t *UDP) Register(node string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.conns[node]; exists {
		t.handlers[node] = h
		return
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		panic(fmt.Sprintf("transport: cannot bind UDP socket for %s: %v", node, err))
	}
	t.conns[node] = conn
	t.addrs[node] = conn.LocalAddr().(*net.UDPAddr)
	t.handlers[node] = h
	t.stats[node] = &Stats{}
	t.wg.Add(1)
	go t.recvLoop(node, conn)
}

func (t *UDP) recvLoop(node string, conn *net.UDPConn) {
	defer t.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n < 2 {
			continue
		}
		// Frame: fromLen byte, from, payload.
		fl := int(buf[0])
		if 1+fl > n {
			continue
		}
		from := string(buf[1 : 1+fl])
		payload := append([]byte(nil), buf[1+fl:n]...)
		t.mu.Lock()
		h := t.handlers[node]
		if st := t.stats[node]; st != nil {
			st.MsgsReceived++
			st.BytesReceived += int64(len(payload))
		}
		t.mu.Unlock()
		if h != nil {
			h(Message{From: from, To: node, Payload: payload})
		}
	}
}

// Send implements Transport.
func (t *UDP) Send(from, to string, payload []byte) error {
	t.mu.Lock()
	dst, ok := t.addrs[to]
	src := t.conns[from]
	st := t.stats[from]
	t.mu.Unlock()
	if !ok {
		return &ErrUnknownNode{Node: to}
	}
	if len(from) > 255 {
		return fmt.Errorf("transport: node name %q too long", from)
	}
	frame := make([]byte, 0, 1+len(from)+len(payload))
	frame = append(frame, byte(len(from)))
	frame = append(frame, from...)
	frame = append(frame, payload...)
	var err error
	if src != nil {
		_, err = src.WriteToUDP(frame, dst)
	} else {
		// Sender without a registered socket: use a throwaway connection.
		var c *net.UDPConn
		c, err = net.DialUDP("udp", nil, dst)
		if err == nil {
			_, err = c.Write(frame)
			c.Close()
		}
	}
	if err == nil && st != nil {
		t.mu.Lock()
		st.MsgsSent++
		st.BytesSent += int64(len(payload))
		t.mu.Unlock()
	}
	return err
}

// NodeStats implements Transport.
func (t *UDP) NodeStats(node string) Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.stats[node]; ok {
		return *st
	}
	return Stats{}
}

// Close implements Transport: all sockets are closed and receive loops
// joined.
func (t *UDP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
