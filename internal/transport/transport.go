// Package transport carries tuples between Cologne instances. Two
// implementations mirror the paper's two deployment modes: a simulated
// network driven by the discrete-event scheduler (the ns-3 role, used for
// the Follow-the-Sun and wireless experiments) and a UDP transport over real
// sockets (the paper's "implementation mode").
//
// Both implementations maintain per-node byte counters, which the benchmark
// harness reads to reproduce the paper's per-node communication overhead
// figures (Figure 5 and section 6.4).
package transport

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sim"
)

// Message is an opaque payload addressed between named nodes.
type Message struct {
	// From and To are the node addresses of the sender and recipient.
	From, To string
	// Payload is the encoded tuple delta (or batch frame) being shipped;
	// the transport never inspects it.
	Payload []byte
}

// Handler consumes messages delivered to a node.
type Handler func(Message)

// Stats accumulates traffic counters for one node. These counters are the
// measurement surface of the paper's Figure 5 per-node communication
// overhead: the harnesses and the cluster runtime's per-epoch statistics
// read them through Transport.NodeStats.
type Stats struct {
	// MsgsSent and MsgsReceived count messages (frames, not deltas — a
	// batch frame counts once).
	MsgsSent     int64
	MsgsReceived int64
	// BytesSent and BytesReceived count payload bytes, excluding
	// transport-level framing.
	BytesSent     int64
	BytesReceived int64
}

// Transport delivers messages between registered nodes.
type Transport interface {
	// Register installs the handler for a node address. It must be called
	// before messages are sent to that address.
	Register(node string, h Handler)
	// Send delivers payload from one node to another. Delivery may be
	// asynchronous.
	Send(from, to string, payload []byte) error
	// NodeStats returns the traffic counters of one node.
	NodeStats(node string) Stats
	// Close releases resources.
	Close() error
}

// FailureInjector is implemented by transports that can inject failures for
// the cluster runtime's churn experiments: a down node silently loses every
// message to or from it (the sender still counts it as sent, mirroring a
// datagram lost in flight), and a down directed link loses messages on that
// link only. Both Sim and UDP implement it.
type FailureInjector interface {
	// SetNodeDown drops all traffic to and from node while down.
	SetNodeDown(node string, down bool)
	// SetLinkDown drops traffic on the directed link from->to while down.
	SetLinkDown(from, to string, down bool)
}

// StatsResetter is implemented by transports that can zero one node's
// traffic counters. The cluster runtime resets a node's counters when it
// restarts the node, so post-restart statistics (and the per-epoch History
// windows) start from zero instead of carrying the failed instance's
// pre-failure values.
type StatsResetter interface {
	// ResetNodeStats zeroes the traffic counters of one node.
	ResetNodeStats(node string)
}

// ErrUnknownNode is returned when sending to an unregistered address.
type ErrUnknownNode struct{ Node string }

func (e *ErrUnknownNode) Error() string {
	return fmt.Sprintf("transport: unknown node %q", e.Node)
}

// Sim is an in-memory transport whose deliveries are events on a discrete
// event scheduler. Per-destination latency defaults to Latency and can be
// overridden per link. A bandwidth model adds serialization delay
// (payload/bandwidth) when Bandwidth > 0.
type Sim struct {
	sched *sim.Scheduler
	// Latency is the one-way delivery delay applied to every message.
	Latency time.Duration
	// Bandwidth, in bytes/second, adds len(payload)/Bandwidth of
	// serialization delay; zero disables the bandwidth model.
	Bandwidth int64
	// Loss drops every n-th message when set via DropEvery (testing).
	dropEvery int64
	sent      int64
	dropped   int64

	handlers  map[string]Handler
	links     map[string]time.Duration // "from->to" latency override
	stats     map[string]*Stats
	downNodes map[string]bool
	downLinks map[string]bool // "from->to"
	hook      DeliveryHook
}

// DeliveryHook intercepts every message before it is scheduled for
// delivery: returning drop loses the message (still counted as sent), and
// extra is added to the link latency. It is the generic failure-injection
// surface the cluster runtime drives for delayed-delivery experiments.
type DeliveryHook func(from, to string, payload []byte) (drop bool, extra time.Duration)

// NewSim creates a simulated transport over sched with the given base
// latency.
func NewSim(sched *sim.Scheduler, latency time.Duration) *Sim {
	return &Sim{
		sched:     sched,
		Latency:   latency,
		handlers:  map[string]Handler{},
		links:     map[string]time.Duration{},
		stats:     map[string]*Stats{},
		downNodes: map[string]bool{},
		downLinks: map[string]bool{},
	}
}

// SetLinkLatency overrides the latency of the directed link from->to.
func (t *Sim) SetLinkLatency(from, to string, d time.Duration) {
	t.links[from+"->"+to] = d
}

// DropEvery makes the transport silently drop every n-th message (n > 0),
// for failure-injection tests. Zero disables dropping.
func (t *Sim) DropEvery(n int64) { t.dropEvery = n }

// SetNodeDown implements FailureInjector: while down, every message to or
// from node is silently lost (the sender still counts it as sent).
func (t *Sim) SetNodeDown(node string, down bool) {
	if down {
		t.downNodes[node] = true
	} else {
		delete(t.downNodes, node)
	}
}

// SetLinkDown implements FailureInjector: while down, messages on the
// directed link from->to are silently lost.
func (t *Sim) SetLinkDown(from, to string, down bool) {
	if down {
		t.downLinks[from+"->"+to] = true
	} else {
		delete(t.downLinks, from+"->"+to)
	}
}

// SetDeliveryHook installs (or, with nil, removes) a hook consulted for
// every message; see DeliveryHook.
func (t *Sim) SetDeliveryHook(h DeliveryHook) { t.hook = h }

// ResetNodeStats implements StatsResetter: the node's counters restart at
// zero (a restarted instance begins a fresh traffic history). In-flight
// deliveries count against the fresh counters.
func (t *Sim) ResetNodeStats(node string) {
	if _, ok := t.stats[node]; ok {
		t.stats[node] = &Stats{}
	}
}

// DroppedMsgs returns how many messages were lost to failure injection
// (DropEvery, down nodes/links, or the delivery hook).
func (t *Sim) DroppedMsgs() int64 { return t.dropped }

// Register implements Transport.
func (t *Sim) Register(node string, h Handler) {
	t.handlers[node] = h
	if t.stats[node] == nil {
		t.stats[node] = &Stats{}
	}
}

// Send implements Transport: the message is delivered as a scheduler event
// after the link latency (plus serialization delay under the bandwidth
// model).
func (t *Sim) Send(from, to string, payload []byte) error {
	if _, ok := t.handlers[to]; !ok {
		return &ErrUnknownNode{Node: to}
	}
	if t.stats[from] == nil {
		t.stats[from] = &Stats{}
	}
	st := t.stats[from]
	st.MsgsSent++
	st.BytesSent += int64(len(payload))
	t.sent++
	if t.dropEvery > 0 && t.sent%t.dropEvery == 0 {
		t.dropped++
		return nil // dropped in flight
	}
	if t.downNodes[from] || t.downNodes[to] || t.downLinks[from+"->"+to] {
		t.dropped++
		return nil // lost to an injected failure
	}
	delay := t.Latency
	if d, ok := t.links[from+"->"+to]; ok {
		delay = d
	}
	if t.hook != nil {
		drop, extra := t.hook(from, to, payload)
		if drop {
			t.dropped++
			return nil
		}
		delay += extra
	}
	if t.Bandwidth > 0 {
		delay += time.Duration(int64(len(payload)) * int64(time.Second) / t.Bandwidth)
	}
	msg := Message{From: from, To: to, Payload: append([]byte(nil), payload...)}
	t.sched.Schedule(delay, func() {
		// Handler and liveness are re-resolved at delivery time: a node
		// that stopped (or restarted into a fresh instance) while the
		// message was in flight must not receive it through its old
		// handler.
		if t.downNodes[to] {
			t.dropped++
			return
		}
		hNow := t.handlers[to]
		if hNow == nil {
			t.dropped++
			return
		}
		rst := t.stats[to]
		rst.MsgsReceived++
		rst.BytesReceived += int64(len(msg.Payload))
		hNow(msg)
	})
	return nil
}

// NodeStats implements Transport.
func (t *Sim) NodeStats(node string) Stats {
	if st, ok := t.stats[node]; ok {
		return *st
	}
	return Stats{}
}

// TotalBytes returns the sum of bytes sent by all nodes.
func (t *Sim) TotalBytes() int64 {
	var n int64
	for _, st := range t.stats {
		n += st.BytesSent
	}
	return n
}

// Close implements Transport.
func (t *Sim) Close() error { return nil }

// Loopback is a synchronous in-process transport without a scheduler:
// messages are delivered immediately on Send. It backs centralized
// deployments and unit tests.
type Loopback struct {
	mu       sync.Mutex
	handlers map[string]Handler
	stats    map[string]*Stats
}

// NewLoopback creates an empty synchronous transport.
func NewLoopback() *Loopback {
	return &Loopback{handlers: map[string]Handler{}, stats: map[string]*Stats{}}
}

// Register implements Transport.
func (t *Loopback) Register(node string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[node] = h
	if t.stats[node] == nil {
		t.stats[node] = &Stats{}
	}
}

// Send implements Transport, delivering synchronously.
func (t *Loopback) Send(from, to string, payload []byte) error {
	t.mu.Lock()
	h, ok := t.handlers[to]
	if !ok {
		t.mu.Unlock()
		return &ErrUnknownNode{Node: to}
	}
	if t.stats[from] == nil {
		t.stats[from] = &Stats{}
	}
	t.stats[from].MsgsSent++
	t.stats[from].BytesSent += int64(len(payload))
	t.stats[to].MsgsReceived++
	t.stats[to].BytesReceived += int64(len(payload))
	t.mu.Unlock()
	h(Message{From: from, To: to, Payload: payload})
	return nil
}

// NodeStats implements Transport.
func (t *Loopback) NodeStats(node string) Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.stats[node]; ok {
		return *st
	}
	return Stats{}
}

// Close implements Transport.
func (t *Loopback) Close() error { return nil }
