// Package transport carries tuples between Cologne instances. Two
// implementations mirror the paper's two deployment modes: a simulated
// network driven by the discrete-event scheduler (the ns-3 role, used for
// the Follow-the-Sun and wireless experiments) and a UDP transport over real
// sockets (the paper's "implementation mode").
//
// Both implementations maintain per-node byte counters, which the benchmark
// harness reads to reproduce the paper's per-node communication overhead
// figures (Figure 5 and section 6.4).
package transport

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sim"
)

// Message is an opaque payload addressed between named nodes.
type Message struct {
	From, To string
	Payload  []byte
}

// Handler consumes messages delivered to a node.
type Handler func(Message)

// Stats accumulates traffic counters for one node.
type Stats struct {
	MsgsSent      int64
	MsgsReceived  int64
	BytesSent     int64
	BytesReceived int64
}

// Transport delivers messages between registered nodes.
type Transport interface {
	// Register installs the handler for a node address. It must be called
	// before messages are sent to that address.
	Register(node string, h Handler)
	// Send delivers payload from one node to another. Delivery may be
	// asynchronous.
	Send(from, to string, payload []byte) error
	// NodeStats returns the traffic counters of one node.
	NodeStats(node string) Stats
	// Close releases resources.
	Close() error
}

// ErrUnknownNode is returned when sending to an unregistered address.
type ErrUnknownNode struct{ Node string }

func (e *ErrUnknownNode) Error() string {
	return fmt.Sprintf("transport: unknown node %q", e.Node)
}

// Sim is an in-memory transport whose deliveries are events on a discrete
// event scheduler. Per-destination latency defaults to Latency and can be
// overridden per link. A bandwidth model adds serialization delay
// (payload/bandwidth) when Bandwidth > 0.
type Sim struct {
	sched *sim.Scheduler
	// Latency is the one-way delivery delay applied to every message.
	Latency time.Duration
	// Bandwidth, in bytes/second, adds len(payload)/Bandwidth of
	// serialization delay; zero disables the bandwidth model.
	Bandwidth int64
	// Loss drops every n-th message when set via DropEvery (testing).
	dropEvery int64
	sent      int64

	handlers map[string]Handler
	links    map[string]time.Duration // "from->to" latency override
	stats    map[string]*Stats
}

// NewSim creates a simulated transport over sched with the given base
// latency.
func NewSim(sched *sim.Scheduler, latency time.Duration) *Sim {
	return &Sim{
		sched:    sched,
		Latency:  latency,
		handlers: map[string]Handler{},
		links:    map[string]time.Duration{},
		stats:    map[string]*Stats{},
	}
}

// SetLinkLatency overrides the latency of the directed link from->to.
func (t *Sim) SetLinkLatency(from, to string, d time.Duration) {
	t.links[from+"->"+to] = d
}

// DropEvery makes the transport silently drop every n-th message (n > 0),
// for failure-injection tests. Zero disables dropping.
func (t *Sim) DropEvery(n int64) { t.dropEvery = n }

// Register implements Transport.
func (t *Sim) Register(node string, h Handler) {
	t.handlers[node] = h
	if t.stats[node] == nil {
		t.stats[node] = &Stats{}
	}
}

// Send implements Transport: the message is delivered as a scheduler event
// after the link latency (plus serialization delay under the bandwidth
// model).
func (t *Sim) Send(from, to string, payload []byte) error {
	h, ok := t.handlers[to]
	if !ok {
		return &ErrUnknownNode{Node: to}
	}
	if t.stats[from] == nil {
		t.stats[from] = &Stats{}
	}
	st := t.stats[from]
	st.MsgsSent++
	st.BytesSent += int64(len(payload))
	t.sent++
	if t.dropEvery > 0 && t.sent%t.dropEvery == 0 {
		return nil // dropped in flight
	}
	delay := t.Latency
	if d, ok := t.links[from+"->"+to]; ok {
		delay = d
	}
	if t.Bandwidth > 0 {
		delay += time.Duration(int64(len(payload)) * int64(time.Second) / t.Bandwidth)
	}
	msg := Message{From: from, To: to, Payload: append([]byte(nil), payload...)}
	t.sched.Schedule(delay, func() {
		rst := t.stats[to]
		rst.MsgsReceived++
		rst.BytesReceived += int64(len(msg.Payload))
		h(msg)
	})
	return nil
}

// NodeStats implements Transport.
func (t *Sim) NodeStats(node string) Stats {
	if st, ok := t.stats[node]; ok {
		return *st
	}
	return Stats{}
}

// TotalBytes returns the sum of bytes sent by all nodes.
func (t *Sim) TotalBytes() int64 {
	var n int64
	for _, st := range t.stats {
		n += st.BytesSent
	}
	return n
}

// Close implements Transport.
func (t *Sim) Close() error { return nil }

// Loopback is a synchronous in-process transport without a scheduler:
// messages are delivered immediately on Send. It backs centralized
// deployments and unit tests.
type Loopback struct {
	mu       sync.Mutex
	handlers map[string]Handler
	stats    map[string]*Stats
}

// NewLoopback creates an empty synchronous transport.
func NewLoopback() *Loopback {
	return &Loopback{handlers: map[string]Handler{}, stats: map[string]*Stats{}}
}

// Register implements Transport.
func (t *Loopback) Register(node string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[node] = h
	if t.stats[node] == nil {
		t.stats[node] = &Stats{}
	}
}

// Send implements Transport, delivering synchronously.
func (t *Loopback) Send(from, to string, payload []byte) error {
	t.mu.Lock()
	h, ok := t.handlers[to]
	if !ok {
		t.mu.Unlock()
		return &ErrUnknownNode{Node: to}
	}
	if t.stats[from] == nil {
		t.stats[from] = &Stats{}
	}
	t.stats[from].MsgsSent++
	t.stats[from].BytesSent += int64(len(payload))
	t.stats[to].MsgsReceived++
	t.stats[to].BytesReceived += int64(len(payload))
	t.mu.Unlock()
	h(Message{From: from, To: to, Payload: payload})
	return nil
}

// NodeStats implements Transport.
func (t *Loopback) NodeStats(node string) Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.stats[node]; ok {
		return *st
	}
	return Stats{}
}

// Close implements Transport.
func (t *Loopback) Close() error { return nil }
