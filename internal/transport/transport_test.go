package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSimDelivery(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewSim(sched, 10*time.Millisecond)
	var got []Message
	tr.Register("a", func(m Message) { got = append(got, m) })
	tr.Register("b", func(m Message) { got = append(got, m) })
	if err := tr.Send("a", "b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("delivered before scheduler ran")
	}
	sched.RunUntilIdle(0)
	if len(got) != 1 || string(got[0].Payload) != "hello" || got[0].From != "a" {
		t.Fatalf("got %v", got)
	}
	if sched.Now() != 10*time.Millisecond {
		t.Fatalf("delivery time = %v", sched.Now())
	}
}

func TestSimUnknownNode(t *testing.T) {
	tr := NewSim(sim.NewScheduler(), 0)
	tr.Register("a", func(Message) {})
	err := tr.Send("a", "nope", nil)
	if _, ok := err.(*ErrUnknownNode); !ok {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestSimStats(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewSim(sched, time.Millisecond)
	tr.Register("a", func(Message) {})
	tr.Register("b", func(Message) {})
	for i := 0; i < 5; i++ {
		tr.Send("a", "b", make([]byte, 100))
	}
	sched.RunUntilIdle(0)
	sa, sb := tr.NodeStats("a"), tr.NodeStats("b")
	if sa.MsgsSent != 5 || sa.BytesSent != 500 {
		t.Fatalf("sender stats = %+v", sa)
	}
	if sb.MsgsReceived != 5 || sb.BytesReceived != 500 {
		t.Fatalf("receiver stats = %+v", sb)
	}
	if tr.TotalBytes() != 500 {
		t.Fatalf("TotalBytes = %d", tr.TotalBytes())
	}
}

func TestSimLinkLatencyOverride(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewSim(sched, time.Millisecond)
	tr.SetLinkLatency("a", "b", time.Second)
	var at time.Duration
	tr.Register("b", func(Message) { at = sched.Now() })
	tr.Register("a", func(Message) {})
	tr.Send("a", "b", []byte("x"))
	sched.RunUntilIdle(0)
	if at != time.Second {
		t.Fatalf("delivered at %v, want 1s", at)
	}
}

func TestSimBandwidthModel(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewSim(sched, 0)
	tr.Bandwidth = 1000 // 1000 B/s -> 100 bytes = 100ms
	var at time.Duration
	tr.Register("b", func(Message) { at = sched.Now() })
	tr.Register("a", func(Message) {})
	tr.Send("a", "b", make([]byte, 100))
	sched.RunUntilIdle(0)
	if at != 100*time.Millisecond {
		t.Fatalf("delivered at %v, want 100ms", at)
	}
}

func TestSimDropEvery(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewSim(sched, 0)
	n := 0
	tr.Register("b", func(Message) { n++ })
	tr.Register("a", func(Message) {})
	tr.DropEvery(2)
	for i := 0; i < 10; i++ {
		tr.Send("a", "b", []byte("x"))
	}
	sched.RunUntilIdle(0)
	if n != 5 {
		t.Fatalf("delivered %d, want 5 (every 2nd dropped)", n)
	}
}

func TestLoopbackSynchronous(t *testing.T) {
	tr := NewLoopback()
	var got string
	tr.Register("b", func(m Message) { got = string(m.Payload) })
	tr.Register("a", func(Message) {})
	tr.Send("a", "b", []byte("sync"))
	if got != "sync" {
		t.Fatalf("got %q", got)
	}
	if s := tr.NodeStats("a"); s.MsgsSent != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	var mu sync.Mutex
	var got []Message
	done := make(chan struct{}, 4)
	tr.Register("a", func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
		done <- struct{}{}
	})
	tr.Register("b", func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
		done <- struct{}{}
	})
	if err := tr.Send("a", "b", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send("b", "a", []byte("pong")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("timeout waiting for UDP delivery")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("got %d messages", len(got))
	}
	seen := map[string]string{}
	for _, m := range got {
		seen[string(m.Payload)] = m.From
	}
	if seen["ping"] != "a" || seen["pong"] != "b" {
		t.Fatalf("messages = %v", seen)
	}
}

func TestUDPUnknownNode(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	tr.Register("a", func(Message) {})
	if err := tr.Send("a", "ghost", []byte("x")); err == nil {
		t.Fatal("expected error for unknown node")
	}
}

func TestUDPStats(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	done := make(chan struct{}, 1)
	tr.Register("a", func(Message) {})
	tr.Register("b", func(Message) { done <- struct{}{} })
	tr.Send("a", "b", make([]byte, 64))
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
	if s := tr.NodeStats("a"); s.BytesSent != 64 {
		t.Fatalf("sender stats = %+v", s)
	}
	if s := tr.NodeStats("b"); s.BytesReceived != 64 {
		t.Fatalf("receiver stats = %+v", s)
	}
}

func TestUDPCloseIdempotent(t *testing.T) {
	tr := NewUDP()
	tr.Register("a", func(Message) {})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
