package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSimNodeDownDropsTraffic(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewSim(sched, time.Millisecond)
	var got int
	tr.Register("a", func(Message) {})
	tr.Register("b", func(Message) { got++ })

	tr.SetNodeDown("b", true)
	if err := tr.Send("a", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	sched.RunUntilIdle(0)
	if got != 0 {
		t.Fatal("message delivered to a down node")
	}
	// Lost messages are still charged to the sender, like a datagram lost
	// in flight.
	if st := tr.NodeStats("a"); st.MsgsSent != 1 || st.BytesSent != 1 {
		t.Fatalf("sender stats = %+v", st)
	}
	if tr.DroppedMsgs() != 1 {
		t.Fatalf("DroppedMsgs = %d", tr.DroppedMsgs())
	}

	tr.SetNodeDown("b", false)
	tr.Send("a", "b", []byte("x"))
	sched.RunUntilIdle(0)
	if got != 1 {
		t.Fatal("message not delivered after node restored")
	}
}

func TestSimLinkDownIsDirected(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewSim(sched, time.Millisecond)
	var aGot, bGot int
	tr.Register("a", func(Message) { aGot++ })
	tr.Register("b", func(Message) { bGot++ })

	tr.SetLinkDown("a", "b", true)
	tr.Send("a", "b", []byte("x")) // dropped
	tr.Send("b", "a", []byte("y")) // reverse direction still up
	sched.RunUntilIdle(0)
	if bGot != 0 || aGot != 1 {
		t.Fatalf("aGot=%d bGot=%d, want 1/0", aGot, bGot)
	}
	tr.SetLinkDown("a", "b", false)
	tr.Send("a", "b", []byte("x"))
	sched.RunUntilIdle(0)
	if bGot != 1 {
		t.Fatal("message not delivered after link healed")
	}
}

func TestSimDeliveryHookDelaysAndDrops(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewSim(sched, time.Millisecond)
	var got int
	tr.Register("a", func(Message) {})
	tr.Register("b", func(Message) { got++ })

	drop := true
	tr.SetDeliveryHook(func(from, to string, payload []byte) (bool, time.Duration) {
		return drop, 9 * time.Millisecond
	})
	tr.Send("a", "b", []byte("x"))
	sched.RunUntilIdle(0)
	if got != 0 {
		t.Fatal("hook-dropped message delivered")
	}
	drop = false
	tr.Send("a", "b", []byte("x"))
	sched.RunUntilIdle(0)
	if got != 1 {
		t.Fatal("message not delivered")
	}
	// 1ms base latency + 9ms hook delay, from the virtual time of the send.
	if sched.Now() != 10*time.Millisecond {
		t.Fatalf("delivery time = %v, want 10ms", sched.Now())
	}
	tr.SetDeliveryHook(nil)
	tr.Send("a", "b", []byte("x"))
	sched.RunUntilIdle(0)
	if got != 2 {
		t.Fatal("message not delivered after hook removed")
	}
}

func TestUDPNodeDownDropsTraffic(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	var mu sync.Mutex
	got := 0
	tr.Register("a", func(Message) {})
	tr.Register("b", func(Message) { mu.Lock(); got++; mu.Unlock() })

	tr.SetNodeDown("b", true)
	if err := tr.Send("a", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	n := got
	mu.Unlock()
	if n != 0 {
		t.Fatal("message delivered to a down node")
	}
	if st := tr.NodeStats("a"); st.MsgsSent != 1 {
		t.Fatalf("sender stats = %+v", st)
	}

	tr.SetNodeDown("b", false)
	tr.Send("a", "b", []byte("x"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := got
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("message not delivered after node restored")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestUDPStatsRace is the -race regression for the counter data race: the
// benchmark harness reads NodeStats while receive loops and senders on
// other goroutines update the same counters. With atomic counters this is
// clean; with plain fields the race detector fires.
func TestUDPStatsRace(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	tr.Register("a", func(Message) {})
	tr.Register("b", func(Message) {})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tr.Send("a", "b", []byte("ping"))
				tr.Send("b", "a", []byte("pong"))
			}
		}()
	}
	// Concurrent readers, as the bench harness polls per-node overhead.
	var total int64
	for i := 0; i < 200; i++ {
		sa, sb := tr.NodeStats("a"), tr.NodeStats("b")
		total += sa.MsgsSent + sa.BytesReceived + sb.MsgsReceived + sb.BytesSent
	}
	close(stop)
	wg.Wait()
	_ = total
}
