package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// freeUDPEndpoints reserves n distinct loopback ports by binding and
// releasing them. A tiny window exists where another process could grab a
// released port; fine for tests.
func freeUDPEndpoints(t testing.TB, n int) []string {
	t.Helper()
	eps := make([]string, n)
	conns := make([]*net.UDPConn, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		eps[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return eps
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// evenOdd shards node addresses "a0","a1",... by their numeric suffix.
func evenOdd(addr string) int {
	var i int
	fmt.Sscanf(addr, "a%d", &i)
	return i % 2
}

func TestShardUDPLocalAndRemoteDelivery(t *testing.T) {
	eps := freeUDPEndpoints(t, 2)
	t0, err := NewShardUDP(0, eps, evenOdd)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := NewShardUDP(1, eps, evenOdd)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()

	var mu sync.Mutex
	got := map[string][]string{}
	recorder := func(tr *ShardUDP, node string) {
		tr.Register(node, func(m Message) {
			mu.Lock()
			got[node] = append(got[node], m.From+":"+string(m.Payload))
			mu.Unlock()
		})
	}
	recorder(t0, "a0")
	recorder(t0, "a2")
	recorder(t1, "a1")

	// Local delivery: a0 -> a2 stays inside process 0, synchronously.
	if err := t0.Send("a0", "a2", []byte("x")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	local := len(got["a2"])
	mu.Unlock()
	if local != 1 {
		t.Fatalf("local delivery not synchronous: got %d messages", local)
	}
	if msgs, _ := t0.RemoteWire(); msgs != 0 {
		t.Fatalf("local delivery counted as remote wire: %d msgs", msgs)
	}

	// Remote delivery: a0 -> a1 crosses to process 1's endpoint.
	if err := t0.Send("a0", "a1", []byte("yy")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "remote delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got["a1"]) == 1
	})
	mu.Lock()
	if got["a1"][0] != "a0:yy" {
		t.Fatalf("remote payload corrupted: %q", got["a1"][0])
	}
	mu.Unlock()
	if msgs, bytes := t0.RemoteWire(); msgs != 1 || bytes != 2 {
		t.Fatalf("remote wire counters = (%d, %d), want (1, 2)", msgs, bytes)
	}
	st := t0.NodeStats("a0")
	if st.MsgsSent != 2 || st.BytesSent != 3 {
		t.Fatalf("sender stats = %+v, want 2 msgs / 3 bytes", st)
	}
	if rst := t1.NodeStats("a1"); rst.MsgsReceived != 1 {
		t.Fatalf("receiver stats = %+v, want 1 received", rst)
	}

	// Unregistered local destination: ErrUnknownNode, like the UDP transport.
	if err := t0.Send("a0", "a4", nil); err == nil {
		t.Fatal("send to unregistered locally-owned node succeeded")
	}
}

func TestShardUDPControlRoundTrip(t *testing.T) {
	eps := freeUDPEndpoints(t, 2)
	t0, err := NewShardUDP(0, eps, evenOdd)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := NewShardUDP(1, eps, evenOdd)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()

	t1.SetControlHandler(func(req []byte) []byte {
		return append([]byte("echo:"), req...)
	})

	// Raw-socket client (the load-driver shape): frame a request, read the
	// reply off its own socket.
	client, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	dst, err := net.ResolveUDPAddr("udp", eps[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WriteToUDP(EncodeShardControl([]byte("ping")), dst); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1024)
	n, _, err := client.ReadFromUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeShardReply(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:ping" {
		t.Fatalf("control reply = %q, want %q", resp, "echo:ping")
	}

	// Shard-to-shard fire-and-forget control, including the local loop.
	var mu sync.Mutex
	var seen []string
	t0.SetControlHandler(func(req []byte) []byte {
		mu.Lock()
		seen = append(seen, string(req))
		mu.Unlock()
		return nil
	})
	if err := t1.SendControl(0, []byte("tok 1")); err != nil {
		t.Fatal(err)
	}
	if err := t0.SendControl(0, []byte("tok 2")); err != nil { // own shard
		t.Fatal(err)
	}
	waitFor(t, "control frames", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) == 2
	})
}
