package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Shard frame kinds, the first byte of every datagram on a shard endpoint.
// A shard endpoint multiplexes many nodes onto one socket, so — unlike the
// per-node UDP transport — the destination address travels in the frame.
const (
	// shardFrameNode carries a node-to-node payload:
	// [kind][u8 fromLen][from][u8 toLen][to][payload].
	shardFrameNode = 0x01
	// shardFrameControl carries an out-of-band control request:
	// [kind][payload]. The control handler's non-nil response is written
	// back to the datagram's source address as a shardFrameReply.
	shardFrameControl = 0x02
	// shardFrameReply carries a control response: [kind][payload].
	shardFrameReply = 0x03
)

// ShardUDP is the routed multi-process transport: node → shard → process
// endpoint. Each OS process owns one shard's engines and binds exactly one
// UDP socket (its entry in the shared endpoint list); messages between two
// locally-owned nodes are delivered synchronously in process, and messages
// to nodes of another shard are framed and sent to that shard's endpoint
// over loopback/LAN. The shard-of function is the key-range partition the
// cluster layer derives from the scenario (see docs/sharding.md).
//
// Besides node traffic, a shard endpoint answers control frames: small
// out-of-band request/reply datagrams the multi-process harnesses use for
// startup barriers, lockstep tokens, and load-driver policy lookups.
type ShardUDP struct {
	shardID int
	of      func(addr string) int
	peers   []*net.UDPAddr
	conn    *net.UDPConn

	mu       sync.RWMutex
	handlers map[string]Handler
	stats    map[string]*atomicStats
	control  func(req []byte) []byte
	closed   bool
	wg       sync.WaitGroup

	remoteMsgs  atomic.Int64 // cross-shard node frames sent by this process
	remoteBytes atomic.Int64 // their payload bytes (excluding framing)
	dropped     atomic.Int64 // inbound frames for unregistered local nodes
}

// NewShardUDP binds endpoints[shardID] and starts the receive loop. The
// endpoint list is shared by every process of the deployment ("host:port"
// per shard, loopback or LAN); of maps a node address onto the shard that
// owns it and must agree across processes.
func NewShardUDP(shardID int, endpoints []string, of func(addr string) int) (*ShardUDP, error) {
	if shardID < 0 || shardID >= len(endpoints) {
		return nil, fmt.Errorf("transport: shard id %d outside endpoint list (len %d)", shardID, len(endpoints))
	}
	if of == nil {
		return nil, fmt.Errorf("transport: shard transport needs a shard-of function")
	}
	peers := make([]*net.UDPAddr, len(endpoints))
	for i, ep := range endpoints {
		addr, err := net.ResolveUDPAddr("udp", ep)
		if err != nil {
			return nil, fmt.Errorf("transport: shard %d endpoint %q: %w", i, ep, err)
		}
		peers[i] = addr
	}
	conn, err := net.ListenUDP("udp", peers[shardID])
	if err != nil {
		return nil, fmt.Errorf("transport: binding shard %d endpoint %q: %w", shardID, endpoints[shardID], err)
	}
	t := &ShardUDP{
		shardID:  shardID,
		of:       of,
		peers:    peers,
		conn:     conn,
		handlers: map[string]Handler{},
		stats:    map[string]*atomicStats{},
	}
	t.wg.Add(1)
	go t.recvLoop()
	return t, nil
}

// ShardID returns the shard this process owns.
func (t *ShardUDP) ShardID() int { return t.shardID }

// Shards returns the deployment's shard count (the endpoint list length).
func (t *ShardUDP) Shards() int { return len(t.peers) }

// Endpoint returns the bound local address — the concrete port when the
// configured endpoint was ":0" (tests, ephemeral deployments).
func (t *ShardUDP) Endpoint() string { return t.conn.LocalAddr().String() }

// Register implements Transport: the node becomes locally owned and
// reachable from every shard.
func (t *ShardUDP) Register(node string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[node] = h
	if t.stats[node] == nil {
		t.stats[node] = &atomicStats{}
	}
}

// SetControlHandler installs the out-of-band control handler. Each request
// frame is dispatched on its own goroutine (a slow policy lookup must not
// stall node-delta delivery); a non-nil response is written back to the
// requesting address as a reply frame.
func (t *ShardUDP) SetControlHandler(h func(req []byte) []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.control = h
}

// Send implements Transport. Messages between two locally-owned nodes are
// delivered synchronously (the loopback fast path — no datagram, no copy
// onto the wire); messages to remote nodes are framed and sent to the
// owning shard's endpoint.
func (t *ShardUDP) Send(from, to string, payload []byte) error {
	if len(from) > 255 || len(to) > 255 {
		return fmt.Errorf("transport: node name too long (%q -> %q)", from, to)
	}
	t.mu.RLock()
	h, local := t.handlers[to]
	st := t.stats[from]
	rst := t.stats[to]
	t.mu.RUnlock()
	if st == nil {
		t.mu.Lock()
		if t.stats[from] == nil {
			t.stats[from] = &atomicStats{}
		}
		st = t.stats[from]
		t.mu.Unlock()
	}
	st.msgsSent.Add(1)
	st.bytesSent.Add(int64(len(payload)))
	if local {
		// The local handler contract matches Loopback: the payload is only
		// valid for the duration of the call, and core nodes copy what they
		// keep — but the epoch executor recycles encode buffers after Send,
		// so hand the handler a copy.
		if rst != nil {
			rst.msgsReceived.Add(1)
			rst.bytesReceived.Add(int64(len(payload)))
		}
		h(Message{From: from, To: to, Payload: append([]byte(nil), payload...)})
		return nil
	}
	shard := t.of(to)
	if shard < 0 || shard >= len(t.peers) {
		return fmt.Errorf("transport: node %q maps to shard %d outside 0..%d", to, shard, len(t.peers)-1)
	}
	if shard == t.shardID {
		return &ErrUnknownNode{Node: to}
	}
	frame := make([]byte, 0, 3+len(from)+len(to)+len(payload))
	frame = append(frame, shardFrameNode, byte(len(from)))
	frame = append(frame, from...)
	frame = append(frame, byte(len(to)))
	frame = append(frame, to...)
	frame = append(frame, payload...)
	if _, err := t.conn.WriteToUDP(frame, t.peers[shard]); err != nil {
		return err
	}
	t.remoteMsgs.Add(1)
	t.remoteBytes.Add(int64(len(payload)))
	return nil
}

// SendControl sends a fire-and-forget control frame to a shard endpoint.
// A frame addressed to this process's own shard is dispatched directly to
// the local control handler.
func (t *ShardUDP) SendControl(shard int, payload []byte) error {
	if shard < 0 || shard >= len(t.peers) {
		return fmt.Errorf("transport: control to shard %d outside 0..%d", shard, len(t.peers)-1)
	}
	if shard == t.shardID {
		t.mu.RLock()
		h := t.control
		t.mu.RUnlock()
		if h != nil {
			req := append([]byte(nil), payload...)
			go h(req)
		}
		return nil
	}
	frame := make([]byte, 0, 1+len(payload))
	frame = append(frame, shardFrameControl)
	frame = append(frame, payload...)
	_, err := t.conn.WriteToUDP(frame, t.peers[shard])
	return err
}

// EncodeShardControl frames a control request for a shard endpoint, for
// clients that speak to the cluster over a plain UDP socket (the load
// driver's query workers).
func EncodeShardControl(payload []byte) []byte {
	return append([]byte{shardFrameControl}, payload...)
}

// DecodeShardReply strips the reply framing from a datagram received in
// answer to an EncodeShardControl request.
func DecodeShardReply(frame []byte) ([]byte, error) {
	if len(frame) < 1 || frame[0] != shardFrameReply {
		return nil, fmt.Errorf("transport: not a shard control reply")
	}
	return frame[1:], nil
}

func (t *ShardUDP) recvLoop() {
	defer t.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, src, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n < 1 {
			continue
		}
		switch buf[0] {
		case shardFrameNode:
			t.deliverNode(buf[1:n])
		case shardFrameControl:
			t.mu.RLock()
			h := t.control
			t.mu.RUnlock()
			if h == nil {
				continue
			}
			req := append([]byte(nil), buf[1:n]...)
			srcCopy := *src
			// Own goroutine: a slow control request (a query waiting out a
			// solve) must not stall node-delta delivery on this socket.
			go func() {
				resp := h(req)
				if resp == nil {
					return
				}
				reply := append([]byte{shardFrameReply}, resp...)
				t.conn.WriteToUDP(reply, &srcCopy)
			}()
		default:
			t.dropped.Add(1)
		}
	}
}

// deliverNode parses and delivers one node frame (sans kind byte).
func (t *ShardUDP) deliverNode(b []byte) {
	if len(b) < 2 {
		t.dropped.Add(1)
		return
	}
	fl := int(b[0])
	if 1+fl+1 > len(b) {
		t.dropped.Add(1)
		return
	}
	from := string(b[1 : 1+fl])
	tl := int(b[1+fl])
	if 2+fl+tl > len(b) {
		t.dropped.Add(1)
		return
	}
	to := string(b[2+fl : 2+fl+tl])
	payload := append([]byte(nil), b[2+fl+tl:]...)
	t.mu.RLock()
	h := t.handlers[to]
	st := t.stats[to]
	t.mu.RUnlock()
	if h == nil {
		t.dropped.Add(1)
		return
	}
	if st != nil {
		st.msgsReceived.Add(1)
		st.bytesReceived.Add(int64(len(payload)))
	}
	h(Message{From: from, To: to, Payload: payload})
}

// NodeStats implements Transport.
func (t *ShardUDP) NodeStats(node string) Stats {
	t.mu.RLock()
	st, ok := t.stats[node]
	t.mu.RUnlock()
	if ok {
		return st.snapshot()
	}
	return Stats{}
}

// RemoteWire returns the cross-shard node traffic this process has put on
// the wire: frames sent to other shard endpoints and their payload bytes.
// Local (same-process) deliveries are excluded — this is exactly the
// traffic that would cross the network in a scaled-out deployment.
func (t *ShardUDP) RemoteWire() (msgs, bytes int64) {
	return t.remoteMsgs.Load(), t.remoteBytes.Load()
}

// DroppedFrames counts inbound frames discarded for an unknown kind,
// truncated framing, or an unregistered destination node.
func (t *ShardUDP) DroppedFrames() int64 { return t.dropped.Load() }

// Close implements Transport.
func (t *ShardUDP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.conn.Close()
	t.wg.Wait()
	return nil
}
