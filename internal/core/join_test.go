package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/colog"
	"repro/internal/solver"
)

// ---------------------------------------------------------------- frames

func TestBindFrameTrailUndo(t *testing.T) {
	slots := newRuleSlots()
	a, b := slots.slotOf("A"), slots.slotOf("B")
	f := newBindFrame(slots)
	f.bind(a, ival(1))
	m := f.mark()
	f.bind(b, ival(2))
	if v, ok := f.lookupVar("B"); !ok || v.I != 2 {
		t.Fatalf("B = %v,%v after bind", v, ok)
	}
	f.undo(m)
	if _, ok := f.lookupVar("B"); ok {
		t.Fatal("B still bound after undo")
	}
	if v, ok := f.lookupVar("A"); !ok || v.I != 1 {
		t.Fatalf("A lost across undo: %v,%v", v, ok)
	}
	f.reset()
	if _, ok := f.lookupVar("A"); ok {
		t.Fatal("A survives reset")
	}
	_ = b
}

func TestCollectRuleSlotsDeterministic(t *testing.T) {
	prog, err := colog.Parse(`r1 out(A,SUM<C>) <- p(A,B), q(B,D), C==B+D.`)
	if err != nil {
		t.Fatal(err)
	}
	s := collectRuleSlots(prog.Rules[0])
	want := []string{"A", "B", "D", "C"}
	if !reflect.DeepEqual(s.names, want) {
		t.Fatalf("slot order = %v, want %v", s.names, want)
	}
}

// ------------------------------------------------------ index-key selection

// TestJoinBoundColsSelection: constants and previously bound variables form
// the probe key; repeated variables within the atom count once (the second
// occurrence is an equality check, not a key column).
func TestJoinBoundColsSelection(t *testing.T) {
	prog, err := colog.Parse(`r1 out(X,Y) <- p(X,Y), q(X,5,Y,X).`)
	if err != nil {
		t.Fatal(err)
	}
	var q *colog.Atom
	for _, l := range prog.Rules[0].Body {
		if al, ok := l.(*colog.AtomLit); ok && al.Atom.Pred == "q" {
			q = al.Atom
		}
	}
	cols := joinBoundCols(q, map[string]bool{"X": true, "Y": true})
	if !reflect.DeepEqual(cols, []int{0, 1, 2}) {
		t.Fatalf("boundCols = %v, want [0 1 2] (X, const 5, Y; repeated X excluded)", cols)
	}
}

// TestCompiledPlanProbesIndex: the delta plan for a join with a shared
// variable must carry probe ops, and the scan plan must not.
func TestCompiledPlanProbesIndex(t *testing.T) {
	n := newTestNode(t, `r1 pair(V,W) <- vm(V,H), vm2(W,H).`, Config{})
	var joinStep *planStep
	for _, p := range n.plans["vm"] {
		for i := range p.steps {
			if p.steps[i].kind == stepJoin && !p.steps[i].isTrigger {
				joinStep = &p.steps[i]
			}
		}
	}
	if joinStep == nil {
		t.Fatal("no join step compiled for trigger vm")
	}
	if !reflect.DeepEqual(joinStep.boundCols, []int{1}) {
		t.Fatalf("boundCols = %v, want [1] (H bound by trigger)", joinStep.boundCols)
	}
	if len(joinStep.probeOps) != 1 || joinStep.probeOps[0].slot < 0 {
		t.Fatalf("probeOps = %+v, want one slot-backed op", joinStep.probeOps)
	}
}

// TestSymIndexWildRows: rows with a symbolic value at an indexed column
// must be returned for every probe (they unify by posting constraints).
func TestSymIndexWildRows(t *testing.T) {
	m := solver.NewModel()
	v := m.IntVar("x", 0, 5)
	rows := []symTuple{
		{gval{val: sval("a")}, gval{val: ival(1)}},
		{gval{val: sval("b")}, gval{val: ival(2)}},
		{gval{sym: m.VarExpr(v)}, gval{val: ival(3)}},
	}
	ix := buildSymIndex(rows, []int{0})
	keyed, wild := ix.probe([]byte("sa"))
	if len(keyed) != 1 || keyed[0][1].val.I != 1 {
		t.Fatalf("keyed = %v rows, want the sa row", len(keyed))
	}
	if len(wild) != 1 || !wild[0][0].isSym() {
		t.Fatalf("wild = %v rows, want the symbolic row", len(wild))
	}
	keyed, _ = ix.probe([]byte("smissing"))
	if len(keyed) != 0 {
		t.Fatalf("probe of absent key returned %d rows", len(keyed))
	}
}

// ---------------------------------------------------------- literal order

// TestGroundPlanOrdersMostBoundFirst: with nothing bound, the planner must
// open with the smallest relation, then probe the larger one on the shared
// column, and run the condition as soon as its inputs are bound.
func TestGroundPlanOrdersMostBoundFirst(t *testing.T) {
	n := newTestNode(t, `
goal minimize C in obj(C).
var pick(V,X) forall cand(V).
r1 cand(V) <- vm(V).
d1 obj(SUM<S>) <- big(H,W), small(H), pick(V,X), S==X*W.
`, Config{})
	for i := 0; i < 8; i++ {
		n.Insert("big", sval(fmt.Sprintf("h%d", i)), ival(int64(i)))
	}
	n.Insert("small", sval("h3"))
	n.Insert("vm", sval("v1"))

	g := &grounder{n: n, model: solver.NewModel(), sym: map[string][]symTuple{}}
	if err := g.createVars(); err != nil {
		t.Fatal(err)
	}
	var rule *colog.Rule
	for _, r := range n.res.Program.Rules {
		if r.Label == "d1" {
			rule = r
		}
	}
	p, err := g.planGroundBody(rule, nil)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []gstepKind
	var preds []string
	for _, st := range p.steps {
		kinds = append(kinds, st.kind)
		if st.atom != nil {
			preds = append(preds, st.atom.Pred)
		}
	}
	// small (1 row) before big (8 rows); pick joins after; the condition
	// S==X*W runs as soon as X and W are bound.
	if len(preds) < 2 || preds[0] != "small" || preds[1] != "big" {
		t.Fatalf("join order = %v, want small before big", preds)
	}
	if kinds[len(kinds)-1] != gBind {
		t.Fatalf("step kinds = %v, want trailing definitional bind for S", kinds)
	}
	// The probe into big must use the column bound by small.
	bigStep := p.steps[1]
	if bigStep.atom.Pred != "big" || len(bigStep.probeOps) != 1 {
		t.Fatalf("big join has probeOps %+v, want 1 (H)", bigStep.probeOps)
	}
}

// TestGroundPlanUnorderableBody: a condition whose variables can never all
// bind must fail planning with the grounder's ordering error.
func TestGroundPlanUnorderableBody(t *testing.T) {
	n := newTestNode(t, `
goal minimize C in obj(C).
var pick(V,X) forall cand(V).
r1 cand(V) <- vm(V).
d1 obj(SUM<X>) <- pick(V,X), J+K==2.
`, Config{})
	n.Insert("vm", sval("v1"))
	_, err := n.Solve(SolveOptions{})
	if err == nil {
		t.Fatal("expected ordering error for body with unbindable condition")
	}
}

// ------------------------------------------------------------- rule levels

func TestSolverRuleLevels(t *testing.T) {
	prog, err := colog.Parse(`
d1 a(X,S) <- base(X,V), S==V+1.
d2 b(X,S) <- base(X,V), S==V+2.
d3 c(X,S) <- a(X,V), b(X,W), S==V+W.
d4 d(X,S) <- c(X,V), S==V*2.
`)
	if err != nil {
		t.Fatal(err)
	}
	order := []int{0, 1, 2, 3}
	levels := solverRuleLevels(prog.Rules, order)
	want := [][]int{{0, 1}, {2}, {3}}
	if !reflect.DeepEqual(levels, want) {
		t.Fatalf("levels = %v, want %v", levels, want)
	}
}

// --------------------------------------------- parallel ground determinism

// TestParallelGroundingDeterministic proves that grounding with a worker
// pool yields exactly the serial SolveResult. Run with -race, this also
// exercises the pool for data races: the ACloud-style program below has
// four independent derivation rules per level, so workers genuinely
// overlap.
func TestParallelGroundingDeterministic(t *testing.T) {
	src := `
goal minimize C in hostStdevCpu(C).
var assign(Vid,Hid,V) forall toAssign(Vid,Hid).
r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid).
d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
d2 hostStdevCpu(STDEV<C>) <- host(Hid), hostCpu(Hid,C).
d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
c1 assignCount(Vid,V) -> V==1.
d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
c2 hostMem(Hid,M) -> memCap(Cap), M<=Cap.
`
	build := func(workers int) *Node {
		n := newTestNode(t, src, Config{SolverPropagate: true, GroundWorkers: workers})
		for h := 0; h < 3; h++ {
			n.Insert("host", sval(fmt.Sprintf("h%d", h)))
		}
		n.Insert("memCap", ival(4096))
		for v := 0; v < 9; v++ {
			n.Insert("vm", sval(fmt.Sprintf("vm%d", v)), ival(int64(10+v*7)), ival(512))
		}
		return n
	}
	serial := build(1)
	want, err := serial.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Feasible() {
		t.Fatalf("serial solve infeasible: %+v", want)
	}
	for round := 0; round < 3; round++ {
		par := build(8)
		got, err := par.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status || math.Abs(got.Objective-want.Objective) > 0 {
			t.Fatalf("round %d: parallel result %v/%v, serial %v/%v",
				round, got.Status, got.Objective, want.Status, want.Objective)
		}
		if !reflect.DeepEqual(got.Assignments, want.Assignments) {
			t.Fatalf("round %d: assignments diverge:\n got %v\nwant %v", round, got.Assignments, want.Assignments)
		}
		if got.NumVars != want.NumVars || got.NumCons != want.NumCons {
			t.Fatalf("round %d: model shape %d/%d vs %d/%d",
				round, got.NumVars, got.NumCons, want.NumVars, want.NumCons)
		}
	}
}

// TestParallelGroundingMatchesSerialOnScenarios replays the corpus-style
// load-balance program at both worker settings.
func TestParallelGroundingMatchesSerialOnScenarios(t *testing.T) {
	src := `
goal minimize C in imbalance(C).
var assign(V,H,A) forall toAssign(V,H).
r1 toAssign(V,H) <- vm(V,C), host(H).
d1 hostLoad(H,SUM<X>) <- assign(V,H,A), vm(V,C), X==A*C.
d2 placed(V,SUM<A>) <- assign(V,H,A).
c1 placed(V,A) -> A==1.
d3 imbalance(STDEV<X>) <- hostLoad(H,X).
`
	results := map[int]*SolveResult{}
	for _, workers := range []int{1, 4} {
		n := newTestNode(t, src, Config{SolverPropagate: true, GroundWorkers: workers})
		for i, c := range []int64{40, 10, 30, 20} {
			n.Insert("vm", ival(int64(i+1)), ival(c))
		}
		n.Insert("host", ival(1))
		n.Insert("host", ival(2))
		res, err := n.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		results[workers] = res
	}
	if results[1].Objective != results[4].Objective || results[1].Objective != 0 {
		t.Fatalf("objectives: serial %v parallel %v, want 0", results[1].Objective, results[4].Objective)
	}
	if !reflect.DeepEqual(results[1].Assignments, results[4].Assignments) {
		t.Fatalf("assignments diverge:\n serial %v\n parallel %v", results[1].Assignments, results[4].Assignments)
	}
}

// ------------------------------------------------------------ reassignment

// TestAssignRebindBacktrack: an assignment that overwrites an already-bound
// variable must restore the previous value when the enclosing join
// backtracks — with facts r(1,10) and r(1,20), both reassigned values must
// derive (regression: the undo trail only tracks fresh bindings, so a
// rebind used to clear the slot and fail the second row's equality check).
func TestAssignRebindBacktrack(t *testing.T) {
	n := newTestNode(t, `r1 h(X) <- q(X), r(X,Z), X:=Z.`, Config{})
	n.Insert("r", ival(1), ival(10))
	n.Insert("r", ival(1), ival(20))
	n.Insert("q", ival(1))
	got := n.Rows("h")
	if len(got) != 2 || got[0][0].I != 10 || got[1][0].I != 20 {
		t.Fatalf("h = %v, want [[10] [20]]", got)
	}
}

// TestGroundAssignRebind: the grounder's assignment step must handle
// reassignment of a variable bound by an earlier atom. V is bound by the
// pick join, then overwritten inside the m join; on backtrack to m's second
// row, V's original binding must be restored or the row's equality check
// compares against a stale value and drops the derivation.
func TestGroundAssignRebind(t *testing.T) {
	n := newTestNode(t, `
goal minimize C in obj(C).
var pick(V,X) forall cand(V).
r1 cand(V) <- vm(V).
d1 obj(SUM<C>) <- pick(V,X), m(V,W), V:=W, C==X*W+1.
`, Config{SolverPropagate: true})
	n.Insert("vm", sval("v1"))
	n.Insert("m", sval("v1"), ival(2))
	n.Insert("m", sval("v1"), ival(3))
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Both m rows must contribute: (2X+1)+(3X+1) = 5X+2, minimized at
	// X=0 -> 2. A corrupted frame drops the second row and yields 1.
	if res.Objective != 2 {
		t.Fatalf("objective = %v, want 2", res.Objective)
	}
}

// ------------------------------------------------- review regression tests

// TestStdevRetractionPrecision: retracting a huge value from a STDEV group
// must leave an exact result for the remaining small values (an incremental
// float sum-of-squares would cancel catastrophically; the engine recomputes
// from the multiset instead).
func TestStdevRetractionPrecision(t *testing.T) {
	n := newTestNode(t, `r1 s(STDEV<C>) <- v(C).`, Config{})
	n.Insert("v", ival(1000000000))
	n.Insert("v", ival(3))
	n.Insert("v", ival(5))
	n.Delete("v", ival(1000000000))
	got := row1(n, "s")
	if got == nil || got[0].F != 1.0 {
		t.Fatalf("stdev after retraction = %v, want 1 (stdev of {3,5})", got)
	}
}

// TestParallelGroundingPanicPropagates: a model-construction panic inside a
// grounding worker must re-raise on the calling goroutine, where callers
// can recover — identical to the serial path.
func TestParallelGroundingPanicPropagates(t *testing.T) {
	src := `
goal minimize C in obj(C).
var pick(V,X) forall cand(V).
r1 cand(V) <- vm(V).
d1 a(V,S) <- pick(V,X), S==(X==1)+2.
d2 b(V,S) <- pick(V,X), S==X+1.
d3 obj(SUM<S>) <- a(V,S).
`
	for _, workers := range []int{1, 4} {
		n := newTestNode(t, src, Config{GroundWorkers: workers})
		n.Insert("vm", sval("v1"))
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: expected model type-mismatch panic to reach the caller", workers)
				}
			}()
			n.Solve(SolveOptions{})
		}()
	}
}
