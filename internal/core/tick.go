package core

import (
	"sort"
	"time"

	"repro/internal/colog"
)

// This file is the serving runtime's view of a Node: a tick is one
// re-ground + re-solve under a deadline, returning the decision rows and
// the delta against what the previous tick decided. The serving layer
// (internal/serve) admits churn batches between ticks and publishes the
// deltas; the equivalence contract — quiescent serving state byte-identical
// to a batch re-solve over the same cumulative facts — rests on two rules
// enforced here: degraded (deadline-interrupted) solves never materialize,
// and completed solves materialize exactly as a batch Solve would.

// TickOptions configure one serving tick.
type TickOptions struct {
	// Deadline is the per-tick solve budget. When positive and Interrupt
	// is nil, the tick installs a wall-clock interrupt hook for it. Zero
	// with a nil Interrupt runs the solve to its configured budgets.
	Deadline time.Duration
	// Interrupt overrides the deadline hook, letting the serving layer
	// share one deadline across grounding and solving or inject synthetic
	// deadline pressure in tests.
	Interrupt func() bool
	// Hint forwards a warm-start hint to the solve (see SolveOptions.Hint).
	Hint func(pred string, vals []colog.Value) (int64, bool)
}

// DecisionDelta is one change to the published decision state: a var-table
// row appearing (+1) or disappearing (-1) relative to the previous tick.
type DecisionDelta struct {
	Sign  int
	Tuple Tuple
}

// TickResult reports one serving tick.
type TickResult struct {
	// Result is the underlying solve outcome; nil when the model was
	// empty (no decision variables to place).
	Result *SolveResult
	// Degraded mirrors Result.Degraded: the deadline fired before the
	// search completed and Decisions carry the best incumbent, published
	// as an overlay without touching the engine's tables.
	Degraded bool
	// Decisions is the full decision snapshot for this tick: every
	// var-table row the solve assigned, in grounding order.
	Decisions []Assignment
	// Deltas is the multiset difference between this tick's decisions and
	// the previous tick's, retractions first, in deterministic
	// pred-then-row order. An unchanged placement produces no deltas.
	Deltas []DecisionDelta
	// Objective and HasGoal report the goal value for optimization
	// programs.
	Objective float64
	HasGoal   bool
}

// Tick runs one serving tick: re-ground (incrementally when configured) and
// re-solve under the tick deadline, then diff the decision rows against the
// previous tick's. Completed ticks materialize into the engine exactly like
// Solve; degraded ticks leave the engine untouched and only advance the
// published-decision snapshot.
func (n *Node) Tick(opts TickOptions) (*TickResult, error) {
	n.mu.Lock()
	sopts := SolveOptions{
		Hint:          opts.Hint,
		Interrupt:     opts.Interrupt,
		DeferDegraded: true,
	}
	if sopts.Interrupt == nil && opts.Deadline > 0 {
		deadline := time.Now().Add(opts.Deadline)
		sopts.Interrupt = func() bool { return time.Now().After(deadline) }
	}
	res, err := n.solveLocked(sopts)
	if err != nil {
		n.mu.Unlock()
		return nil, err
	}
	tr := &TickResult{Result: res, Degraded: res.Degraded}
	if res.Feasible() {
		tr.Decisions = res.Assignments
		tr.Objective = res.Objective
		tr.HasGoal = res.HasGoal
		tr.Deltas = DiffDecisions(n.lastDecisions, tr.Decisions)
		n.lastDecisions = tr.Decisions
	}
	var out []outMsg
	if !n.holding {
		out = n.takeOutbox()
	}
	n.mu.Unlock()
	if err := n.flush(out); err != nil {
		return tr, err
	}
	return tr, nil
}

// DiffDecisions computes the multiset difference between two decision
// snapshots as retract/insert deltas: rows only in prev are retracted, rows
// only in next inserted, and rows present in both (with multiplicity) emit
// nothing. The result is ordered retractions-then-insertions, each sorted
// by predicate then row key, so identical snapshots in any order produce an
// identical delta stream.
func DiffDecisions(prev, next []Assignment) []DecisionDelta {
	counts := make(map[string]int, len(prev)+len(next))
	key := func(a Assignment) string { return a.Pred + "\x00" + valsKey(a.Vals) }
	for _, a := range prev {
		counts[key(a)]--
	}
	for _, a := range next {
		counts[key(a)]++
	}
	var deltas []DecisionDelta
	emit := func(src []Assignment, sign int) {
		seen := make(map[string]int, len(src))
		for _, a := range src {
			k := key(a)
			want := counts[k]
			if sign > 0 && want <= 0 {
				continue
			}
			if sign < 0 && want >= 0 {
				continue
			}
			if sign > 0 && seen[k] >= want {
				continue
			}
			if sign < 0 && seen[k] >= -want {
				continue
			}
			seen[k]++
			deltas = append(deltas, DecisionDelta{Sign: sign, Tuple: Tuple{Pred: a.Pred, Vals: a.Vals}})
		}
	}
	emit(prev, -1)
	emit(next, +1)
	sort.SliceStable(deltas, func(i, j int) bool {
		if deltas[i].Sign != deltas[j].Sign {
			return deltas[i].Sign < deltas[j].Sign
		}
		if deltas[i].Tuple.Pred != deltas[j].Tuple.Pred {
			return deltas[i].Tuple.Pred < deltas[j].Tuple.Pred
		}
		return deltas[i].Tuple.Key() < deltas[j].Tuple.Key()
	})
	return deltas
}

// AppendWireValues appends a value list in the engine's per-value
// kind-tagged wire layout (uvarint count, then kind byte + payload per
// value). Exported for the serving churn-stream codec, which frames churn
// events with the same primitives as delta, checkpoint, and resync frames.
func AppendWireValues(buf []byte, vals []colog.Value) ([]byte, error) {
	return appendWireVals(buf, vals)
}

// ReadWireValues parses a value list written by AppendWireValues and
// returns the remaining bytes.
func ReadWireValues(rest []byte) ([]colog.Value, []byte, error) {
	return readWireVals(rest)
}

// AppendWireString appends a uvarint-length-prefixed string.
func AppendWireString(buf []byte, s string) []byte {
	return appendWireString(buf, s)
}

// ReadWireString parses a string written by AppendWireString; ok is false
// on a malformed prefix or truncated body.
func ReadWireString(rest []byte) (s string, rem []byte, ok bool) {
	return readWireString(rest)
}
