package core

import (
	"fmt"
	"math"

	"repro/internal/colog"
)

// EvalError reports a runtime expression-evaluation failure.
type EvalError struct {
	Context string
	Msg     string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("core: eval %s: %s", e.Context, e.Msg)
}

func everrf(ctx, format string, args ...interface{}) *EvalError {
	return &EvalError{Context: ctx, Msg: fmt.Sprintf(format, args...)}
}

// applyBin applies a Colog binary operator to two ground values.
// Arithmetic requires numerics (int op int stays int except division);
// comparisons work on numerics, strings (ordering), and booleans (==/!=);
// logical operators require booleans.
func applyBin(op colog.BinOp, a, b colog.Value) (colog.Value, error) {
	if op.IsLogical() {
		if a.Kind != colog.KindBool || b.Kind != colog.KindBool {
			return colog.Value{}, everrf(op.String(), "logical operator on non-boolean %s, %s", a, b)
		}
		if op == colog.OpAnd {
			return colog.BoolVal(a.B && b.B), nil
		}
		return colog.BoolVal(a.B || b.B), nil
	}
	if op.IsComparison() {
		return compareVals(op, a, b)
	}
	// Arithmetic.
	if !a.IsNumeric() || !b.IsNumeric() {
		return colog.Value{}, everrf(op.String(), "arithmetic on non-numeric %s, %s", a, b)
	}
	if a.Kind == colog.KindInt && b.Kind == colog.KindInt {
		switch op {
		case colog.OpAdd:
			return colog.IntVal(a.I + b.I), nil
		case colog.OpSub:
			return colog.IntVal(a.I - b.I), nil
		case colog.OpMul:
			return colog.IntVal(a.I * b.I), nil
		case colog.OpDiv:
			if b.I == 0 {
				return colog.Value{}, everrf(op.String(), "division by zero")
			}
			if a.I%b.I == 0 {
				return colog.IntVal(a.I / b.I), nil
			}
			return colog.FloatVal(float64(a.I) / float64(b.I)), nil
		}
	}
	x, y := a.Num(), b.Num()
	switch op {
	case colog.OpAdd:
		return colog.FloatVal(x + y), nil
	case colog.OpSub:
		return colog.FloatVal(x - y), nil
	case colog.OpMul:
		return colog.FloatVal(x * y), nil
	case colog.OpDiv:
		if y == 0 {
			return colog.Value{}, everrf(op.String(), "division by zero")
		}
		return colog.FloatVal(x / y), nil
	}
	return colog.Value{}, everrf(op.String(), "unsupported operator")
}

func compareVals(op colog.BinOp, a, b colog.Value) (colog.Value, error) {
	switch {
	case a.IsNumeric() && b.IsNumeric():
		x, y := a.Num(), b.Num()
		switch op {
		case colog.OpEq:
			return colog.BoolVal(x == y), nil
		case colog.OpNe:
			return colog.BoolVal(x != y), nil
		case colog.OpLt:
			return colog.BoolVal(x < y), nil
		case colog.OpLe:
			return colog.BoolVal(x <= y), nil
		case colog.OpGt:
			return colog.BoolVal(x > y), nil
		case colog.OpGe:
			return colog.BoolVal(x >= y), nil
		}
	case a.Kind == colog.KindString && b.Kind == colog.KindString:
		switch op {
		case colog.OpEq:
			return colog.BoolVal(a.S == b.S), nil
		case colog.OpNe:
			return colog.BoolVal(a.S != b.S), nil
		case colog.OpLt:
			return colog.BoolVal(a.S < b.S), nil
		case colog.OpLe:
			return colog.BoolVal(a.S <= b.S), nil
		case colog.OpGt:
			return colog.BoolVal(a.S > b.S), nil
		case colog.OpGe:
			return colog.BoolVal(a.S >= b.S), nil
		}
	case a.Kind == colog.KindBool && b.Kind == colog.KindBool:
		switch op {
		case colog.OpEq:
			return colog.BoolVal(a.B == b.B), nil
		case colog.OpNe:
			return colog.BoolVal(a.B != b.B), nil
		}
	}
	return colog.Value{}, everrf(op.String(), "incomparable values %s, %s", a, b)
}

// applyNeg negates a numeric value.
func applyNeg(a colog.Value) (colog.Value, error) {
	switch a.Kind {
	case colog.KindInt:
		return colog.IntVal(-a.I), nil
	case colog.KindFloat:
		return colog.FloatVal(-a.F), nil
	}
	return colog.Value{}, everrf("-", "negation of non-numeric %s", a)
}

// applyAbs takes the absolute value of a numeric.
func applyAbs(a colog.Value) (colog.Value, error) {
	switch a.Kind {
	case colog.KindInt:
		if a.I < 0 {
			return colog.IntVal(-a.I), nil
		}
		return a, nil
	case colog.KindFloat:
		return colog.FloatVal(math.Abs(a.F)), nil
	}
	return colog.Value{}, everrf("abs", "absolute value of non-numeric %s", a)
}

// applyNot negates a boolean.
func applyNot(a colog.Value) (colog.Value, error) {
	if a.Kind != colog.KindBool {
		return colog.Value{}, everrf("!", "negation of non-boolean %s", a)
	}
	return colog.BoolVal(!a.B), nil
}

// applyFunc evaluates a built-in function call (names conventionally
// prefixed f_ in Colog).
func applyFunc(name string, args []colog.Value) (colog.Value, error) {
	switch name {
	case "f_max", "f_min":
		if len(args) == 0 {
			return colog.Value{}, everrf(name, "no arguments")
		}
		best := args[0]
		for _, a := range args[1:] {
			if !a.IsNumeric() || !best.IsNumeric() {
				return colog.Value{}, everrf(name, "non-numeric argument")
			}
			if (name == "f_max" && a.Num() > best.Num()) || (name == "f_min" && a.Num() < best.Num()) {
				best = a
			}
		}
		return best, nil
	case "f_abs":
		if len(args) != 1 {
			return colog.Value{}, everrf(name, "want 1 argument, got %d", len(args))
		}
		return applyAbs(args[0])
	case "f_sqrt":
		if len(args) != 1 || !args[0].IsNumeric() {
			return colog.Value{}, everrf(name, "want 1 numeric argument")
		}
		return colog.FloatVal(math.Sqrt(args[0].Num())), nil
	case "f_concat":
		s := ""
		for _, a := range args {
			if a.Kind != colog.KindString {
				return colog.Value{}, everrf(name, "non-string argument %s", a)
			}
			s += a.S
		}
		return colog.StringVal(s), nil
	}
	return colog.Value{}, everrf(name, "unknown function")
}

// evalGround evaluates a term under a ground binding (a map environment or
// a slot frame). All variables must be bound.
func evalGround(t colog.Term, env valueEnv) (colog.Value, error) {
	switch x := t.(type) {
	case *colog.ConstTerm:
		return x.Val, nil
	case *colog.VarTerm:
		v, ok := env.lookupVar(x.Name)
		if !ok {
			return colog.Value{}, everrf(x.Name, "unbound variable")
		}
		return v, nil
	case *colog.ParamTerm:
		return colog.Value{}, everrf(x.Name, "unbound parameter (bind it via Config.Params)")
	case *colog.BinTerm:
		l, err := evalGround(x.L, env)
		if err != nil {
			return colog.Value{}, err
		}
		r, err := evalGround(x.R, env)
		if err != nil {
			return colog.Value{}, err
		}
		return applyBin(x.Op, l, r)
	case *colog.NegTerm:
		v, err := evalGround(x.X, env)
		if err != nil {
			return colog.Value{}, err
		}
		return applyNeg(v)
	case *colog.NotTerm:
		v, err := evalGround(x.X, env)
		if err != nil {
			return colog.Value{}, err
		}
		return applyNot(v)
	case *colog.AbsTerm:
		v, err := evalGround(x.X, env)
		if err != nil {
			return colog.Value{}, err
		}
		return applyAbs(v)
	case *colog.FuncTerm:
		args := make([]colog.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := evalGround(a, env)
			if err != nil {
				return colog.Value{}, err
			}
			args[i] = v
		}
		return applyFunc(x.Name, args)
	}
	return colog.Value{}, everrf(fmt.Sprintf("%T", t), "unsupported term in ground evaluation")
}

// termBound reports whether all variables in t are bound in env.
func termBound(t colog.Term, env valueEnv) bool {
	switch x := t.(type) {
	case *colog.VarTerm:
		_, ok := env.lookupVar(x.Name)
		return ok
	case *colog.BinTerm:
		return termBound(x.L, env) && termBound(x.R, env)
	case *colog.NegTerm:
		return termBound(x.X, env)
	case *colog.NotTerm:
		return termBound(x.X, env)
	case *colog.AbsTerm:
		return termBound(x.X, env)
	case *colog.FuncTerm:
		for _, a := range x.Args {
			if !termBound(a, env) {
				return false
			}
		}
		return true
	default:
		return true
	}
}
