package core

import (
	"fmt"
	"strings"

	"repro/internal/colog"
)

// tableIndex is a hash index over a column subset, mapping the projected
// key to the visible rows carrying it. Indexes are created lazily the first
// time a join probes a column combination and maintained incrementally on
// every visible transition, so the cost is only paid for access paths the
// compiled plans actually use.
type tableIndex struct {
	cols []int
	m    map[string][][]colog.Value
}

func idxName(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ",")
}

func projKey(vals []colog.Value, cols []int) string {
	var dst []byte
	for i, c := range cols {
		if i > 0 {
			dst = append(dst, '|')
		}
		dst = vals[c].AppendKey(dst)
	}
	return string(dst)
}

// ensureIndex returns the index over cols, building it on first use. The
// returned index stays valid until the table drops its indexes (tracked by
// indexGen); the grounder holds the node lock for a whole solve, so a
// pointer obtained at plan time can be probed concurrently by grounding
// workers.
func (t *table) ensureIndex(cols []int) *tableIndex {
	return t.ensureIndexNamed(idxName(cols), cols)
}

// ensureIndexNamed is ensureIndex with the cols key precomputed (compiled
// plan steps cache it to keep probes allocation-free). The build scans the
// stable arrival-order snapshot — never the rows map, whose iteration order
// is randomized per run: bucket order decides join enumeration order, which
// decides derived-tuple arrival order and ultimately the solver's variable
// order, so a map-order build makes whole search traces nondeterministic
// (the cluster equivalence suites pin this).
func (t *table) ensureIndexNamed(name string, cols []int) *tableIndex {
	if t.indexes == nil {
		t.indexes = map[string]*tableIndex{}
	}
	idx, ok := t.indexes[name]
	if !ok {
		idx = &tableIndex{cols: cols, m: map[string][][]colog.Value{}}
		for _, vals := range t.snapshotStable() {
			k := projKey(vals, cols)
			idx.m[k] = append(idx.m[k], vals)
		}
		t.indexes[name] = idx
	}
	return idx
}

// lookup returns the visible rows whose projection on cols equals key,
// building the index on first use.
func (t *table) lookup(cols []int, key string) [][]colog.Value {
	return t.ensureIndex(cols).m[key]
}

// indexInsert registers a newly visible row in all existing indexes.
func (t *table) indexInsert(vals []colog.Value) {
	for _, idx := range t.indexes {
		k := projKey(vals, idx.cols)
		idx.m[k] = append(idx.m[k], vals)
	}
}

// indexRemove drops a no-longer-visible row from all existing indexes.
func (t *table) indexRemove(vals []colog.Value) {
	for _, idx := range t.indexes {
		k := projKey(vals, idx.cols)
		rows := idx.m[k]
		for i, r := range rows {
			if valsEqual(r, vals) {
				rows[i] = rows[len(rows)-1]
				rows = rows[:len(rows)-1]
				break
			}
		}
		if len(rows) == 0 {
			delete(idx.m, k)
		} else {
			idx.m[k] = rows
		}
	}
}

// dropIndexes invalidates all indexes (bulk table replacement). The
// generation bump invalidates index pointers cached on compiled plan steps.
func (t *table) dropIndexes() {
	t.indexes = nil
	t.indexGen++
}
