package core

import (
	"fmt"
	"strings"

	"repro/internal/colog"
)

// tableIndex is a hash index over a column subset, mapping the projected
// key to the visible rows carrying it. Indexes are created lazily the first
// time a join probes a column combination and maintained incrementally on
// every visible transition, so the cost is only paid for access paths the
// compiled plans actually use.
type tableIndex struct {
	cols []int
	m    map[string][][]colog.Value
}

func idxName(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ",")
}

func projKey(vals []colog.Value, cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(vals[c].Key())
	}
	return b.String()
}

// lookup returns the visible rows whose projection on cols equals key,
// building the index on first use.
func (t *table) lookup(cols []int, key string) [][]colog.Value {
	name := idxName(cols)
	if t.indexes == nil {
		t.indexes = map[string]*tableIndex{}
	}
	idx, ok := t.indexes[name]
	if !ok {
		idx = &tableIndex{cols: cols, m: map[string][][]colog.Value{}}
		for _, r := range t.rows {
			k := projKey(r.vals, cols)
			idx.m[k] = append(idx.m[k], r.vals)
		}
		t.indexes[name] = idx
	}
	return idx.m[key]
}

// indexInsert registers a newly visible row in all existing indexes.
func (t *table) indexInsert(vals []colog.Value) {
	for _, idx := range t.indexes {
		k := projKey(vals, idx.cols)
		idx.m[k] = append(idx.m[k], vals)
	}
}

// indexRemove drops a no-longer-visible row from all existing indexes.
func (t *table) indexRemove(vals []colog.Value) {
	full := valsKey(vals)
	for _, idx := range t.indexes {
		k := projKey(vals, idx.cols)
		rows := idx.m[k]
		for i, r := range rows {
			if valsKey(r) == full {
				rows[i] = rows[len(rows)-1]
				rows = rows[:len(rows)-1]
				break
			}
		}
		if len(rows) == 0 {
			delete(idx.m, k)
		} else {
			idx.m[k] = rows
		}
	}
}

// dropIndexes invalidates all indexes (bulk table replacement).
func (t *table) dropIndexes() { t.indexes = nil }
