package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/colog"
)

// idxRow is one bucket entry of a tableIndex: the visible row plus its
// arrival number. Buckets stay sorted by seq, so enumerating a bucket
// yields exactly the rows a snapshotStable scan would have yielded for the
// probed key, in the same order.
type idxRow struct {
	seq  uint64
	vals []colog.Value
}

// tableIndex is a hash index over a column subset, mapping the projected
// key to the visible rows carrying it. Indexes are created lazily the first
// time a join probes a column combination and maintained incrementally on
// every visible transition, so the cost is only paid for access paths the
// compiled plans actually use.
//
// Invariant: every bucket is sorted by row arrival number (seq). An index
// maintained through arbitrary insert/delete/replace churn is therefore
// byte-identical to one built fresh from snapshotStable — the property that
// lets both the delta pipeline and the streaming grounder probe the same
// persistent index without perturbing derivation arrival order (a restored
// node rebuilds its indexes from scratch; the recovery-equivalence gate
// pins that the rebuilt and the maintained index enumerate identically).
type tableIndex struct {
	cols []int
	m    map[string][]idxRow
}

func idxName(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ",")
}

func projKey(vals []colog.Value, cols []int) string {
	var dst []byte
	for i, c := range cols {
		if i > 0 {
			dst = append(dst, '|')
		}
		dst = vals[c].AppendKey(dst)
	}
	return string(dst)
}

// ensureIndex returns the index over cols, building it on first use. The
// returned index stays valid until the table drops its indexes (tracked by
// indexGen); the grounder holds the node lock for a whole solve, so a
// pointer obtained at plan time can be probed concurrently by grounding
// workers.
func (t *table) ensureIndex(cols []int) *tableIndex {
	return t.ensureIndexNamed(idxName(cols), cols)
}

// ensureIndexNamed is ensureIndex with the cols key precomputed (compiled
// plan steps cache it to keep probes allocation-free). The build scans rows
// in arrival order — never the rows map, whose iteration order is
// randomized per run: bucket order decides join enumeration order, which
// decides derived-tuple arrival order and ultimately the solver's variable
// order, so a map-order build makes whole search traces nondeterministic
// (the cluster equivalence suites pin this). The bucket map is pre-sized
// from the table count: a hash-join build over n rows allocates its buckets
// once instead of rehashing log(n) times.
func (t *table) ensureIndexNamed(name string, cols []int) *tableIndex {
	if t.indexes == nil {
		t.indexes = map[string]*tableIndex{}
	}
	idx, ok := t.indexes[name]
	if !ok {
		idx = &tableIndex{cols: cols, m: make(map[string][]idxRow, t.size())}
		for _, r := range t.stableSeqRows() {
			k := projKey(r.vals, cols)
			idx.m[k] = append(idx.m[k], r)
		}
		t.indexes[name] = idx
	}
	return idx
}

// indexInsert registers a newly visible row in all existing indexes,
// keeping each bucket sorted by arrival number. Most inserts carry the
// highest seq so far and append; a delete/re-insert pair restoring a
// tombstoned seq (freedSeq) splices back into the row's old position.
func (t *table) indexInsert(vals []colog.Value, seq uint64) {
	for _, idx := range t.indexes {
		k := projKey(vals, idx.cols)
		rows := idx.m[k]
		i := len(rows)
		if i > 0 && rows[i-1].seq > seq {
			i = sort.Search(len(rows), func(j int) bool { return rows[j].seq > seq })
		}
		rows = append(rows, idxRow{})
		copy(rows[i+1:], rows[i:])
		rows[i] = idxRow{seq: seq, vals: vals}
		idx.m[k] = rows
	}
}

// indexRemove drops a no-longer-visible row from all existing indexes,
// preserving the arrival order of the surviving bucket entries.
func (t *table) indexRemove(vals []colog.Value) {
	for _, idx := range t.indexes {
		k := projKey(vals, idx.cols)
		rows := idx.m[k]
		for i := range rows {
			if valsEqual(rows[i].vals, vals) {
				rows = append(rows[:i], rows[i+1:]...)
				break
			}
		}
		if len(rows) == 0 {
			delete(idx.m, k)
		} else {
			idx.m[k] = rows
		}
	}
}

// dropIndexes invalidates all indexes (bulk table replacement). The
// generation bump invalidates index pointers cached on compiled plan steps.
func (t *table) dropIndexes() {
	t.indexes = nil
	t.indexGen++
}
