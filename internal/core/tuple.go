// Package core implements the Cologne engine: per-node Colog program
// execution combining a bottom-up incremental Datalog evaluator (the
// RapidNet role — pipelined semi-naive evaluation with counted incremental
// view maintenance) with top-down goal-oriented constraint solving (the
// Gecode role, provided by internal/solver). It is the paper's primary
// contribution: Colog solver rules are grounded into constraint-solver
// primitives at each node, and distributed rules exchange tuples through a
// transport.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"

	"repro/internal/colog"
)

// Tuple is a ground fact: a predicate name plus constant values.
type Tuple struct {
	Pred string
	Vals []colog.Value
}

// NewTuple builds a tuple.
func NewTuple(pred string, vals ...colog.Value) Tuple {
	return Tuple{Pred: pred, Vals: vals}
}

// Key returns a canonical map key for the tuple's full value list.
func (t Tuple) Key() string { return valsKey(t.Vals) }

func valsKey(vals []colog.Value) string {
	return string(appendValsKey(nil, vals))
}

// appendValsKey appends the canonical key of a full value list to dst.
func appendValsKey(dst []byte, vals []colog.Value) []byte {
	for i, v := range vals {
		if i > 0 {
			dst = append(dst, '|')
		}
		dst = v.AppendKey(dst)
	}
	return dst
}

func keyOf(vals []colog.Value, cols []int) string {
	if cols == nil {
		return valsKey(vals)
	}
	var dst []byte
	for i, c := range cols {
		if i > 0 {
			dst = append(dst, '|')
		}
		dst = vals[c].AppendKey(dst)
	}
	return string(dst)
}

// valsEqual reports whether two value lists are identical under Value.Equal,
// without building key strings.
func valsEqual(a, b []colog.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple as Colog source.
func (t Tuple) String() string {
	parts := make([]string, len(t.Vals))
	for i, v := range t.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s(%s)", t.Pred, strings.Join(parts, ","))
}

// Clone deep-copies the tuple.
func (t Tuple) Clone() Tuple {
	return Tuple{Pred: t.Pred, Vals: append([]colog.Value(nil), t.Vals...)}
}

// wireDelta is the network representation of a tuple delta.
type wireDelta struct {
	Pred string
	Vals []colog.Value
	Sign int
}

// encodeDelta serializes a tuple delta for the transport.
func encodeDelta(pred string, vals []colog.Value, sign int) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireDelta{Pred: pred, Vals: vals, Sign: sign}); err != nil {
		return nil, fmt.Errorf("core: encoding %s delta: %w", pred, err)
	}
	return buf.Bytes(), nil
}

// decodeDelta deserializes a tuple delta from the transport.
func decodeDelta(payload []byte) (wireDelta, error) {
	var wd wireDelta
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wd); err != nil {
		return wireDelta{}, fmt.Errorf("core: decoding delta: %w", err)
	}
	return wd, nil
}
