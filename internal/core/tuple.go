// Package core implements the Cologne engine: per-node Colog program
// execution combining a bottom-up incremental Datalog evaluator (the
// RapidNet role — pipelined semi-naive evaluation with counted incremental
// view maintenance) with top-down goal-oriented constraint solving (the
// Gecode role, provided by internal/solver). It is the paper's primary
// contribution: Colog solver rules are grounded into constraint-solver
// primitives at each node, and distributed rules exchange tuples through a
// transport.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/colog"
)

// wireBufPool recycles encode buffers for delta frames and batch merges.
// Every epoch used to allocate a fresh buffer per outgoing message; the
// senders (Node.flush, Node.flushBatched, the staged epoch barrier) return
// buffers here once the transport has consumed them. The Transport contract
// makes this safe: Send must not retain the payload after it returns (the
// sim transport copies at delivery scheduling, UDP writes synchronously,
// loopback delivers synchronously).
var wireBufPool = sync.Pool{New: func() any { return new([]byte) }}

// maxPooledWireBuf bounds the capacity kept in the pool; frames are capped
// near maxBatchFrameBytes, so anything larger is an outlier not worth
// retaining.
const maxPooledWireBuf = 128 * 1024

// getWireBuf returns an empty wire buffer with at least the given capacity.
func getWireBuf(capacity int) []byte {
	b := (*wireBufPool.Get().(*[]byte))[:0]
	if cap(b) < capacity {
		b = make([]byte, 0, capacity)
	}
	return b
}

// putWireBuf returns a buffer obtained from getWireBuf (or any buffer the
// caller owns exclusively) to the pool. The caller must not touch b again.
func putWireBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledWireBuf {
		return
	}
	wireBufPool.Put(&b)
}

// Tuple is a ground fact: a predicate name plus constant values.
type Tuple struct {
	Pred string
	Vals []colog.Value
}

// NewTuple builds a tuple.
func NewTuple(pred string, vals ...colog.Value) Tuple {
	return Tuple{Pred: pred, Vals: vals}
}

// Key returns a canonical map key for the tuple's full value list.
func (t Tuple) Key() string { return valsKey(t.Vals) }

func valsKey(vals []colog.Value) string {
	return string(appendValsKey(nil, vals))
}

// appendValsKey appends the canonical key of a full value list to dst.
func appendValsKey(dst []byte, vals []colog.Value) []byte {
	for i, v := range vals {
		if i > 0 {
			dst = append(dst, '|')
		}
		dst = v.AppendKey(dst)
	}
	return dst
}

func keyOf(vals []colog.Value, cols []int) string {
	if cols == nil {
		return valsKey(vals)
	}
	var dst []byte
	for i, c := range cols {
		if i > 0 {
			dst = append(dst, '|')
		}
		dst = vals[c].AppendKey(dst)
	}
	return string(dst)
}

// valsEqual reports whether two value lists are identical under Value.Equal,
// without building key strings.
func valsEqual(a, b []colog.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple as Colog source.
func (t Tuple) String() string {
	parts := make([]string, len(t.Vals))
	for i, v := range t.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s(%s)", t.Pred, strings.Join(parts, ","))
}

// Clone deep-copies the tuple.
func (t Tuple) Clone() Tuple {
	return Tuple{Pred: t.Pred, Vals: append([]colog.Value(nil), t.Vals...)}
}

// wireDelta is the network representation of a tuple delta.
type wireDelta struct {
	Pred string
	Vals []colog.Value
	Sign int
}

// Deltas travel in a compact self-describing binary format instead of gob:
// gob ships full type descriptors and compiles a decode engine per
// Encoder/Decoder pair, which for the one-shot datagrams Cologne exchanges
// (UDP semantics, one delta per message) dominated message handling. The
// layout is one version byte, then pred (uvarint length + bytes), sign
// (varint), value count (uvarint), and per value a kind byte followed by a
// varint (int), 8 little-endian bytes (float), uvarint length + bytes
// (string), or one byte (bool). Malformed payloads return an error, never
// panic (TestMalformedMessageIgnored).
//
// A second frame version batches several deltas to one destination into a
// single message: one wireBatchVersion byte, a uvarint delta count, then
// each delta's body (everything after the version byte of a version-1
// frame) back to back. Receivers apply the deltas in frame order, so a
// batch is observationally identical to its unbatched sequence — only the
// message count changes. Node.FlushOutbox and the cluster runtime's epoch
// barrier build such frames per (epoch, destination) at scale.
const wireDeltaVersion = 1
const wireBatchVersion = 2

// Recovery frames (see recovery.go): a resync digest carries per-table row
// counts, order-sensitive hashes, and row-key hashes; a resync rows frame
// carries the publisher's authoritative row list for the tables that
// mismatched. Both chunk at the same frame budget as delta batches.
const wireResyncDigestVersion = 3
const wireResyncRowsVersion = 4

// maxBatchFrameBytes caps the encoded size of one merged frame. The UDP
// transport prefixes each datagram with a 1-byte length and the sender
// address (≤255 bytes) and the maximum UDP payload is 65507 bytes, so any
// frame under this budget fits one datagram with headroom; the receive
// buffer is 64 KiB. MergeDeltaPayloads splits batches that would exceed it
// — before the split, a large (epoch, destination) outbox produced one
// oversized frame that the socket rejected (or a reader truncated into a
// "malformed trailer" decode error) and the whole batch was lost.
const maxBatchFrameBytes = 60 * 1024

// encodeDelta serializes a tuple delta for the transport. The returned
// buffer comes from the wire pool; the sender recycles it with putWireBuf
// once the transport has consumed it.
func encodeDelta(pred string, vals []colog.Value, sign int) ([]byte, error) {
	buf := getWireBuf(16 + len(pred) + 12*len(vals))
	buf = append(buf, wireDeltaVersion)
	buf = appendWireString(buf, pred)
	buf = binary.AppendVarint(buf, int64(sign))
	var err error
	if buf, err = appendWireVals(buf, vals); err != nil {
		return nil, fmt.Errorf("core: encoding %s delta: %w", pred, err)
	}
	return buf, nil
}

// appendWireVals appends a uvarint value count followed by each value in
// the per-value kind-tagged layout shared by delta, checkpoint, and resync
// frames.
func appendWireVals(buf []byte, vals []colog.Value) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case colog.KindInt:
			buf = binary.AppendVarint(buf, v.I)
		case colog.KindFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case colog.KindString:
			buf = appendWireString(buf, v.S)
		case colog.KindBool:
			b := byte(0)
			if v.B {
				b = 1
			}
			buf = append(buf, b)
		default:
			return nil, fmt.Errorf("unknown value kind %d", v.Kind)
		}
	}
	return buf, nil
}

// readWireVals parses a value list written by appendWireVals and returns
// the remaining bytes.
func readWireVals(rest []byte) ([]colog.Value, []byte, error) {
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("malformed value count")
	}
	rest = rest[n:]
	vals := make([]colog.Value, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("malformed value kind")
		}
		kind := colog.ValueKind(rest[0])
		rest = rest[1:]
		switch kind {
		case colog.KindInt:
			v, n := binary.Varint(rest)
			if n <= 0 {
				return nil, nil, fmt.Errorf("malformed int value")
			}
			rest = rest[n:]
			vals = append(vals, colog.IntVal(v))
		case colog.KindFloat:
			if len(rest) < 8 {
				return nil, nil, fmt.Errorf("malformed float value")
			}
			vals = append(vals, colog.FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(rest))))
			rest = rest[8:]
		case colog.KindString:
			s, r, ok := readWireString(rest)
			if !ok {
				return nil, nil, fmt.Errorf("malformed string value")
			}
			vals = append(vals, colog.StringVal(s))
			rest = r
		case colog.KindBool:
			if len(rest) == 0 {
				return nil, nil, fmt.Errorf("malformed bool value")
			}
			vals = append(vals, colog.BoolVal(rest[0] != 0))
			rest = rest[1:]
		default:
			return nil, nil, fmt.Errorf("malformed value kind")
		}
	}
	return vals, rest, nil
}

func appendWireString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// MergeDeltaPayloads combines already-encoded single-delta payloads (as
// produced by encodeDelta, all bound for one destination) into batch
// frames, splitting whenever a frame would exceed maxBatchFrameBytes so
// every frame fits a single UDP datagram. Delta order is preserved across
// the returned frames. A single payload is returned unchanged, so batching
// never makes a lone delta bigger.
func MergeDeltaPayloads(payloads [][]byte) ([][]byte, error) {
	frames, _, err := mergeDeltaFrames(payloads)
	return frames, err
}

// mergeDeltaFrames is MergeDeltaPayloads with buffer-ownership bookkeeping:
// counts[i] is the number of source payloads consumed into frames[i]. A
// chunk of one passes the source through as the frame itself (counts[i] ==
// 1, frames[i] aliases the source); larger chunks copy the sources into a
// pool-backed batch frame. Callers that recycle buffers use counts to
// return each source exactly once — an aliased pass-through must be
// recycled as the frame, never again as a source.
func mergeDeltaFrames(payloads [][]byte) ([][]byte, []int, error) {
	if len(payloads) == 1 {
		return payloads[:1], []int{1}, nil
	}
	for _, p := range payloads {
		if len(p) == 0 || p[0] != wireDeltaVersion {
			return nil, nil, fmt.Errorf("core: merging delta payloads: not a version-%d frame", wireDeltaVersion)
		}
	}
	var frames [][]byte
	var counts []int
	for start := 0; start < len(payloads); {
		size := 1 + binary.MaxVarintLen64
		end := start
		for end < len(payloads) && (end == start || size+len(payloads[end])-1 <= maxBatchFrameBytes) {
			size += len(payloads[end]) - 1
			end++
		}
		if end-start == 1 {
			// A chunk of one travels as the original version-1 frame; an
			// oversized single delta cannot be split further.
			frames = append(frames, payloads[start])
			counts = append(counts, 1)
			start = end
			continue
		}
		buf := getWireBuf(size)
		buf = append(buf, wireBatchVersion)
		buf = binary.AppendUvarint(buf, uint64(end-start))
		for _, p := range payloads[start:end] {
			buf = append(buf, p[1:]...)
		}
		frames = append(frames, buf)
		counts = append(counts, end-start)
		start = end
	}
	return frames, counts, nil
}

// decodeDeltas deserializes a transport payload into its tuple deltas:
// exactly one for a version-1 frame, several in order for a batch frame.
func decodeDeltas(payload []byte) ([]wireDelta, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("core: decoding delta: malformed header")
	}
	switch payload[0] {
	case wireDeltaVersion:
		wd, rest, err := decodeDeltaBody(payload[1:])
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("core: decoding delta: malformed trailer")
		}
		return []wireDelta{wd}, nil
	case wireBatchVersion:
		rest := payload[1:]
		count, n := binary.Uvarint(rest)
		if n <= 0 || count > uint64(len(rest)) {
			return nil, fmt.Errorf("core: decoding delta batch: malformed count")
		}
		rest = rest[n:]
		out := make([]wireDelta, 0, count)
		for i := uint64(0); i < count; i++ {
			wd, r, err := decodeDeltaBody(rest)
			if err != nil {
				return nil, err
			}
			out = append(out, wd)
			rest = r
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("core: decoding delta batch: malformed trailer")
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: decoding delta: malformed header")
	}
}

// decodeDelta deserializes a single-delta payload from the transport
// without the slice detour of decodeDeltas — version-1 frames are the
// dominant unbatched case on the receive path.
func decodeDelta(payload []byte) (wireDelta, error) {
	if len(payload) == 0 {
		return wireDelta{}, fmt.Errorf("core: decoding delta: malformed header")
	}
	if payload[0] != wireDeltaVersion {
		wds, err := decodeDeltas(payload)
		if err != nil {
			return wireDelta{}, err
		}
		if len(wds) != 1 {
			return wireDelta{}, fmt.Errorf("core: decoding delta: %d deltas in frame, want 1", len(wds))
		}
		return wds[0], nil
	}
	wd, rest, err := decodeDeltaBody(payload[1:])
	if err != nil {
		return wireDelta{}, err
	}
	if len(rest) != 0 {
		return wireDelta{}, fmt.Errorf("core: decoding delta: malformed trailer")
	}
	return wd, nil
}

// decodeDeltaBody parses one delta body (a version-1 frame minus its
// version byte) and returns the remaining bytes.
func decodeDeltaBody(rest []byte) (wireDelta, []byte, error) {
	fail := func(what string) (wireDelta, []byte, error) {
		return wireDelta{}, nil, fmt.Errorf("core: decoding delta: malformed %s", what)
	}
	pred, rest, ok := readWireString(rest)
	if !ok {
		return fail("predicate")
	}
	sign, n := binary.Varint(rest)
	if n <= 0 {
		return fail("sign")
	}
	if sign != 1 && sign != -1 {
		// Anything but an insert or a delete is a corrupt frame; letting it
		// through would flow an unchecked sign into the delta pipeline
		// (FuzzDecodeDeltas pins this).
		return fail("sign")
	}
	rest = rest[n:]
	vals, rest, err := readWireVals(rest)
	if err != nil {
		return wireDelta{}, nil, fmt.Errorf("core: decoding delta: %v", err)
	}
	return wireDelta{Pred: pred, Sign: int(sign), Vals: vals}, rest, nil
}

func readWireString(buf []byte) (string, []byte, bool) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || n > uint64(len(buf)-w) {
		return "", nil, false
	}
	return string(buf[w : w+int(n)]), buf[w+int(n):], true
}
