// Package core implements the Cologne engine: per-node Colog program
// execution combining a bottom-up incremental Datalog evaluator (the
// RapidNet role — pipelined semi-naive evaluation with counted incremental
// view maintenance) with top-down goal-oriented constraint solving (the
// Gecode role, provided by internal/solver). It is the paper's primary
// contribution: Colog solver rules are grounded into constraint-solver
// primitives at each node, and distributed rules exchange tuples through a
// transport.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"repro/internal/colog"
)

// Tuple is a ground fact: a predicate name plus constant values.
type Tuple struct {
	Pred string
	Vals []colog.Value
}

// NewTuple builds a tuple.
func NewTuple(pred string, vals ...colog.Value) Tuple {
	return Tuple{Pred: pred, Vals: vals}
}

// Key returns a canonical map key for the tuple's full value list.
func (t Tuple) Key() string { return valsKey(t.Vals) }

func valsKey(vals []colog.Value) string {
	return string(appendValsKey(nil, vals))
}

// appendValsKey appends the canonical key of a full value list to dst.
func appendValsKey(dst []byte, vals []colog.Value) []byte {
	for i, v := range vals {
		if i > 0 {
			dst = append(dst, '|')
		}
		dst = v.AppendKey(dst)
	}
	return dst
}

func keyOf(vals []colog.Value, cols []int) string {
	if cols == nil {
		return valsKey(vals)
	}
	var dst []byte
	for i, c := range cols {
		if i > 0 {
			dst = append(dst, '|')
		}
		dst = vals[c].AppendKey(dst)
	}
	return string(dst)
}

// valsEqual reports whether two value lists are identical under Value.Equal,
// without building key strings.
func valsEqual(a, b []colog.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple as Colog source.
func (t Tuple) String() string {
	parts := make([]string, len(t.Vals))
	for i, v := range t.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s(%s)", t.Pred, strings.Join(parts, ","))
}

// Clone deep-copies the tuple.
func (t Tuple) Clone() Tuple {
	return Tuple{Pred: t.Pred, Vals: append([]colog.Value(nil), t.Vals...)}
}

// wireDelta is the network representation of a tuple delta.
type wireDelta struct {
	Pred string
	Vals []colog.Value
	Sign int
}

// Deltas travel in a compact self-describing binary format instead of gob:
// gob ships full type descriptors and compiles a decode engine per
// Encoder/Decoder pair, which for the one-shot datagrams Cologne exchanges
// (UDP semantics, one delta per message) dominated message handling. The
// layout is one version byte, then pred (uvarint length + bytes), sign
// (varint), value count (uvarint), and per value a kind byte followed by a
// varint (int), 8 little-endian bytes (float), uvarint length + bytes
// (string), or one byte (bool). Malformed payloads return an error, never
// panic (TestMalformedMessageIgnored).
//
// A second frame version batches several deltas to one destination into a
// single message: one wireBatchVersion byte, a uvarint delta count, then
// each delta's body (everything after the version byte of a version-1
// frame) back to back. Receivers apply the deltas in frame order, so a
// batch is observationally identical to its unbatched sequence — only the
// message count changes. Node.FlushOutbox and the cluster runtime's epoch
// barrier build such frames per (epoch, destination) at scale.
const wireDeltaVersion = 1
const wireBatchVersion = 2

// encodeDelta serializes a tuple delta for the transport.
func encodeDelta(pred string, vals []colog.Value, sign int) ([]byte, error) {
	buf := make([]byte, 0, 16+len(pred)+12*len(vals))
	buf = append(buf, wireDeltaVersion)
	buf = appendWireString(buf, pred)
	buf = binary.AppendVarint(buf, int64(sign))
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case colog.KindInt:
			buf = binary.AppendVarint(buf, v.I)
		case colog.KindFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case colog.KindString:
			buf = appendWireString(buf, v.S)
		case colog.KindBool:
			b := byte(0)
			if v.B {
				b = 1
			}
			buf = append(buf, b)
		default:
			return nil, fmt.Errorf("core: encoding %s delta: unknown value kind %d", pred, v.Kind)
		}
	}
	return buf, nil
}

func appendWireString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// MergeDeltaPayloads combines already-encoded single-delta payloads (as
// produced by encodeDelta, all bound for one destination) into one batch
// frame. A single payload is returned unchanged, so batching never makes a
// lone delta bigger.
func MergeDeltaPayloads(payloads [][]byte) ([]byte, error) {
	if len(payloads) == 1 {
		return payloads[0], nil
	}
	size := 2 + binary.MaxVarintLen64
	for _, p := range payloads {
		size += len(p)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, wireBatchVersion)
	buf = binary.AppendUvarint(buf, uint64(len(payloads)))
	for _, p := range payloads {
		if len(p) == 0 || p[0] != wireDeltaVersion {
			return nil, fmt.Errorf("core: merging delta payloads: not a version-%d frame", wireDeltaVersion)
		}
		buf = append(buf, p[1:]...)
	}
	return buf, nil
}

// decodeDeltas deserializes a transport payload into its tuple deltas:
// exactly one for a version-1 frame, several in order for a batch frame.
func decodeDeltas(payload []byte) ([]wireDelta, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("core: decoding delta: malformed header")
	}
	switch payload[0] {
	case wireDeltaVersion:
		wd, rest, err := decodeDeltaBody(payload[1:])
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("core: decoding delta: malformed trailer")
		}
		return []wireDelta{wd}, nil
	case wireBatchVersion:
		rest := payload[1:]
		count, n := binary.Uvarint(rest)
		if n <= 0 || count > uint64(len(rest)) {
			return nil, fmt.Errorf("core: decoding delta batch: malformed count")
		}
		rest = rest[n:]
		out := make([]wireDelta, 0, count)
		for i := uint64(0); i < count; i++ {
			wd, r, err := decodeDeltaBody(rest)
			if err != nil {
				return nil, err
			}
			out = append(out, wd)
			rest = r
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("core: decoding delta batch: malformed trailer")
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: decoding delta: malformed header")
	}
}

// decodeDelta deserializes a single-delta payload from the transport.
func decodeDelta(payload []byte) (wireDelta, error) {
	wds, err := decodeDeltas(payload)
	if err != nil {
		return wireDelta{}, err
	}
	if len(wds) != 1 {
		return wireDelta{}, fmt.Errorf("core: decoding delta: %d deltas in frame, want 1", len(wds))
	}
	return wds[0], nil
}

// decodeDeltaBody parses one delta body (a version-1 frame minus its
// version byte) and returns the remaining bytes.
func decodeDeltaBody(rest []byte) (wireDelta, []byte, error) {
	fail := func(what string) (wireDelta, []byte, error) {
		return wireDelta{}, nil, fmt.Errorf("core: decoding delta: malformed %s", what)
	}
	pred, rest, ok := readWireString(rest)
	if !ok {
		return fail("predicate")
	}
	sign, n := binary.Varint(rest)
	if n <= 0 {
		return fail("sign")
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > uint64(len(rest)) {
		return fail("value count")
	}
	rest = rest[n:]
	wd := wireDelta{Pred: pred, Sign: int(sign), Vals: make([]colog.Value, 0, count)}
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return fail("value kind")
		}
		kind := colog.ValueKind(rest[0])
		rest = rest[1:]
		switch kind {
		case colog.KindInt:
			v, n := binary.Varint(rest)
			if n <= 0 {
				return fail("int value")
			}
			rest = rest[n:]
			wd.Vals = append(wd.Vals, colog.IntVal(v))
		case colog.KindFloat:
			if len(rest) < 8 {
				return fail("float value")
			}
			wd.Vals = append(wd.Vals, colog.FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(rest))))
			rest = rest[8:]
		case colog.KindString:
			var s string
			var ok bool
			s, rest, ok = readWireString(rest)
			if !ok {
				return fail("string value")
			}
			wd.Vals = append(wd.Vals, colog.StringVal(s))
		case colog.KindBool:
			if len(rest) == 0 {
				return fail("bool value")
			}
			wd.Vals = append(wd.Vals, colog.BoolVal(rest[0] != 0))
			rest = rest[1:]
		default:
			return fail("value kind")
		}
	}
	return wd, rest, nil
}

func readWireString(buf []byte) (string, []byte, bool) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || n > uint64(len(buf)-w) {
		return "", nil, false
	}
	return string(buf[w : w+int(n)]), buf[w+int(n):], true
}
