package core_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/core"
)

const corpusDir = "../../examples/programs"

// corpusKeys declares primary keys for the corpus programs' fact tables so
// value churn takes the keyed-replace path the patch fast path rides on.
// Both nodes of every comparison get the same keys, so the semantics under
// test are identical either way.
var corpusKeys = map[string]map[string][]int{
	"loadbalance.colog": {"vm": {0}},
	"knapsack.colog":    {"item": {0}, "cap": {}},
	"coloring.colog":    {},
}

// buildPair parses a corpus program and builds two nodes over it: a fresh
// grounder and an incremental one, otherwise identically configured.
func buildPair(t *testing.T, name string) (fresh, inc *core.Node) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join(corpusDir, name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := colog.Parse(string(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	build := func(incremental bool) *core.Node {
		res, err := analysis.Analyze(prog, nil)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		node, err := core.NewNode("local", res, core.Config{
			SolverPropagate:   true,
			Keys:              corpusKeys[name],
			SolverIncremental: incremental,
		}, nil)
		if err != nil {
			t.Fatalf("node: %v", err)
		}
		return node
	}
	return build(false), build(true)
}

// compareNodes requires the two nodes to agree on every table, row for row.
func compareNodes(t *testing.T, step int, fresh, inc *core.Node) {
	t.Helper()
	names := fresh.TableNames()
	sort.Strings(names)
	for _, pred := range names {
		fr, ir := fresh.Rows(pred), inc.Rows(pred)
		if len(fr) != len(ir) {
			t.Fatalf("step %d: table %s: %d vs %d rows", step, pred, len(fr), len(ir))
		}
		for i := range fr {
			for j := range fr[i] {
				if !fr[i][j].Equal(ir[i][j]) {
					t.Fatalf("step %d: table %s row %d: %v vs %v", step, pred, i, fr[i], ir[i])
				}
			}
		}
	}
}

// compareSolves requires bit-identical solve outcomes, including the search
// trace length — the strongest cheap witness that the incremental path
// presented the solver with the same model as a fresh grounding.
func compareSolves(t *testing.T, step int, fr, ir *core.SolveResult) {
	t.Helper()
	if fr.Status != ir.Status || fr.Objective != ir.Objective {
		t.Fatalf("step %d: fresh %v/%v vs incremental %v/%v",
			step, fr.Status, fr.Objective, ir.Status, ir.Objective)
	}
	if fr.NumVars != ir.NumVars || fr.NumCons != ir.NumCons {
		t.Fatalf("step %d: model size diverged: %d/%d vars, %d/%d cons",
			step, fr.NumVars, ir.NumVars, fr.NumCons, ir.NumCons)
	}
	if fr.Stats.Nodes != ir.Stats.Nodes {
		t.Fatalf("step %d: search trace diverged: %d vs %d nodes",
			step, fr.Stats.Nodes, ir.Stats.Nodes)
	}
	if len(fr.Assignments) != len(ir.Assignments) {
		t.Fatalf("step %d: %d vs %d assignments", step, len(fr.Assignments), len(ir.Assignments))
	}
	for i := range fr.Assignments {
		a, b := fr.Assignments[i], ir.Assignments[i]
		if a.Pred != b.Pred || len(a.Vals) != len(b.Vals) {
			t.Fatalf("step %d: assignment %d: %v vs %v", step, i, a, b)
		}
		for j := range a.Vals {
			if !a.Vals[j].Equal(b.Vals[j]) {
				t.Fatalf("step %d: assignment %d differs: %v vs %v", step, i, a.Vals, b.Vals)
			}
		}
	}
}

// TestIncrementalGroundEquivalence drives random insert/delete/update churn
// scripts over every corpus program through a fresh-grounding node and an
// incremental one in lockstep, solving after every step and requiring
// identical solve results and identical table contents throughout.
func TestIncrementalGroundEquivalence(t *testing.T) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("corpus dir: %v", err)
	}
	totalPatched, totalIncremental := 0, 0
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".colog" {
			continue
		}
		t.Run(ent.Name(), func(t *testing.T) {
			fresh, inc := buildPair(t, ent.Name())
			rng := rand.New(rand.NewSource(int64(len(ent.Name()))*7919 + 1))
			keys := corpusKeys[ent.Name()]

			// Fact predicates are the churn surface.
			factPreds := map[string]bool{}
			for _, f := range fresh.Program().Program.Facts {
				factPreds[f.Atom.Pred] = true
			}
			var preds []string
			for p := range factPreds {
				preds = append(preds, p)
			}
			sort.Strings(preds)

			apply := func(op func(n *core.Node) error) {
				t.Helper()
				if err := op(fresh); err != nil {
					t.Fatalf("fresh: %v", err)
				}
				if err := op(inc); err != nil {
					t.Fatalf("incremental: %v", err)
				}
			}

			for step := 0; step < 50; step++ {
				pred := preds[rng.Intn(len(preds))]
				rows := fresh.Rows(pred)
				// Columns excluded from value updates: the declared key, or
				// nothing for unkeyed predicates (their updates are simply
				// structural delete+insert pairs on both nodes).
				keyCols := map[int]bool{}
				for _, c := range keys[pred] {
					keyCols[c] = true
				}
				switch k := rng.Intn(4); {
				case k <= 1 && len(rows) > 0: // value update (twice as likely)
					row := append([]colog.Value(nil), rows[rng.Intn(len(rows))]...)
					var numCols []int
					for c, v := range row {
						if v.Kind == colog.KindInt && !keyCols[c] {
							numCols = append(numCols, c)
						}
					}
					if len(numCols) == 0 {
						continue
					}
					c := numCols[rng.Intn(len(numCols))]
					old := append([]colog.Value(nil), row...)
					row[c] = colog.IntVal(int64(1 + rng.Intn(60)))
					apply(func(n *core.Node) error {
						if err := n.Delete(pred, old...); err != nil {
							return err
						}
						return n.Insert(pred, row...)
					})
				case k == 2 && len(rows) > 1: // delete
					row := rows[rng.Intn(len(rows))]
					apply(func(n *core.Node) error { return n.Delete(pred, row...) })
				case k == 3 && len(rows) > 0: // insert a structurally new row
					row := append([]colog.Value(nil), rows[rng.Intn(len(rows))]...)
					switch row[0].Kind {
					case colog.KindInt:
						row[0] = colog.IntVal(int64(100 + step))
					case colog.KindString:
						row[0] = colog.StringVal(fmt.Sprintf("%s-n%d", row[0].S, step))
					default:
						continue
					}
					for c := 1; c < len(row); c++ {
						if row[c].Kind == colog.KindInt {
							row[c] = colog.IntVal(int64(1 + rng.Intn(40)))
						}
					}
					apply(func(n *core.Node) error { return n.Insert(pred, row...) })
				default:
					continue
				}

				fr, err := fresh.Solve(core.SolveOptions{})
				if err != nil {
					t.Fatalf("step %d: fresh solve: %v", step, err)
				}
				ir, err := inc.Solve(core.SolveOptions{})
				if err != nil {
					t.Fatalf("step %d: incremental solve: %v", step, err)
				}
				compareSolves(t, step, fr, ir)
				compareNodes(t, step, fresh, inc)
				if ir.Ground == nil {
					t.Fatalf("step %d: incremental node reported no grounding info", step)
				}
				if ir.Ground.Mode == "incremental" {
					totalIncremental++
					totalPatched += ir.Ground.ConstsPatched
				}
			}
		})
	}
	// The scripts must actually exercise the incremental machinery, not
	// just fall back to full grounding every step.
	if totalIncremental == 0 {
		t.Fatalf("churn scripts never took the incremental path")
	}
	if totalPatched == 0 {
		t.Fatalf("churn scripts never patched a constant in place")
	}
}

// TestWarmStartFromPreviousSolve checks cfg.SolverWarmStart: with
// FirstSolution set, a re-solve whose previous assignment is still feasible
// must reproduce it exactly — the warm start hints each variable to its
// previous value and the first incumbent stops the search.
func TestWarmStartFromPreviousSolve(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(corpusDir, "loadbalance.colog"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := colog.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewNode("local", res, core.Config{
		SolverPropagate:   true,
		Keys:              map[string][]int{"vm": {0}},
		SolverIncremental: true,
		SolverWarmStart:   true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	first, err := node.Solve(core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Nudge one VM's CPU; the previous placement stays feasible (placement
	// constraints don't involve CPU), so the warm-started first incumbent
	// must be the previous assignment.
	if err := node.Delete("vm", colog.IntVal(2), colog.IntVal(10)); err != nil {
		t.Fatal(err)
	}
	if err := node.Insert("vm", colog.IntVal(2), colog.IntVal(12)); err != nil {
		t.Fatal(err)
	}
	second, err := node.Solve(core.SolveOptions{FirstSolution: true})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Feasible() {
		t.Fatalf("warm-started solve infeasible: %v", second.Status)
	}
	if len(first.Assignments) != len(second.Assignments) {
		t.Fatalf("assignment counts differ: %d vs %d", len(first.Assignments), len(second.Assignments))
	}
	for i := range first.Assignments {
		for j := range first.Assignments[i].Vals {
			if !first.Assignments[i].Vals[j].Equal(second.Assignments[i].Vals[j]) {
				t.Fatalf("assignment %d: warm start did not reproduce previous solution: %v vs %v",
					i, first.Assignments[i].Vals, second.Assignments[i].Vals)
			}
		}
	}
}
