package core

import (
	"sort"

	"repro/internal/colog"
)

// This file holds the shared join machinery introduced by the indexed
// grounding pipeline: per-rule variable slotting, slice-backed binding
// frames with undo trails (replacing the map-clone-per-row discipline in
// both the delta-plan path and the grounder), compiled per-atom match ops,
// probe-key builders, transient hash indexes over symbolic rows, and the
// literal-ordering planner used by the grounder.

// ---------------------------------------------------------------- slotting

// ruleSlots assigns every variable name of one rule a dense integer slot,
// so binding environments can be slices instead of maps.
type ruleSlots struct {
	names []string
	idx   map[string]int
}

func newRuleSlots() *ruleSlots {
	return &ruleSlots{idx: map[string]int{}}
}

// slotOf returns the slot for a name, allocating one on first use.
func (s *ruleSlots) slotOf(name string) int {
	if i, ok := s.idx[name]; ok {
		return i
	}
	i := len(s.names)
	s.names = append(s.names, name)
	s.idx[name] = i
	return i
}

// lookup returns the slot for a name without allocating.
func (s *ruleSlots) lookup(name string) (int, bool) {
	i, ok := s.idx[name]
	return i, ok
}

func (s *ruleSlots) size() int { return len(s.names) }

// collectTermVars walks a term and registers its variables.
func (s *ruleSlots) collectTermVars(t colog.Term) {
	switch x := t.(type) {
	case *colog.VarTerm:
		s.slotOf(x.Name)
	case *colog.BinTerm:
		s.collectTermVars(x.L)
		s.collectTermVars(x.R)
	case *colog.NegTerm:
		s.collectTermVars(x.X)
	case *colog.NotTerm:
		s.collectTermVars(x.X)
	case *colog.AbsTerm:
		s.collectTermVars(x.X)
	case *colog.FuncTerm:
		for _, a := range x.Args {
			s.collectTermVars(a)
		}
	}
}

// collectRuleSlots slots every variable of a rule in deterministic
// (body-then-head, left-to-right) order.
func collectRuleSlots(r *colog.Rule) *ruleSlots {
	s := newRuleSlots()
	for _, l := range r.Body {
		switch x := l.(type) {
		case *colog.AtomLit:
			for _, a := range x.Atom.Args {
				s.collectTermVars(a)
			}
		case *colog.CondLit:
			s.collectTermVars(x.Expr)
		case *colog.AssignLit:
			s.slotOf(x.Var)
			s.collectTermVars(x.Expr)
		}
	}
	for _, a := range r.Head.Args {
		if at, ok := a.(*colog.AggTerm); ok {
			s.slotOf(at.Over)
			continue
		}
		s.collectTermVars(a)
	}
	return s
}

// ------------------------------------------------------------ ground frame

// valueEnv abstracts a ground binding environment for term evaluation, so
// evalGround works over both map environments (cold paths: recursive-group
// recompute, var instantiation) and slot frames (hot delta-plan path).
type valueEnv interface {
	lookupVar(name string) (colog.Value, bool)
}

// mapEnv adapts a plain map to valueEnv.
type mapEnv map[string]colog.Value

func (e mapEnv) lookupVar(name string) (colog.Value, bool) {
	v, ok := e[name]
	return v, ok
}

// bindFrame is a slice-backed ground binding environment with an undo
// trail: bindings are registered on the trail and popped on backtrack, so
// join enumeration allocates nothing per candidate row.
type bindFrame struct {
	slots  *ruleSlots
	vals   []colog.Value
	bound  []bool
	trail  []int
	keyBuf []byte
}

func newBindFrame(slots *ruleSlots) *bindFrame {
	return &bindFrame{
		slots: slots,
		vals:  make([]colog.Value, slots.size()),
		bound: make([]bool, slots.size()),
	}
}

func (f *bindFrame) reset() {
	for i := range f.bound {
		f.bound[i] = false
	}
	f.trail = f.trail[:0]
}

func (f *bindFrame) mark() int { return len(f.trail) }

func (f *bindFrame) undo(mark int) {
	for len(f.trail) > mark {
		s := f.trail[len(f.trail)-1]
		f.trail = f.trail[:len(f.trail)-1]
		f.bound[s] = false
	}
}

func (f *bindFrame) bind(slot int, v colog.Value) {
	f.vals[slot] = v
	f.bound[slot] = true
	f.trail = append(f.trail, slot)
}

func (f *bindFrame) lookupVar(name string) (colog.Value, bool) {
	if i, ok := f.slots.lookup(name); ok && f.bound[i] {
		return f.vals[i], true
	}
	return colog.Value{}, false
}

// ------------------------------------------------------- compiled atom ops

// argOpKind enumerates compiled unification operations for one atom
// argument. Because plan step order is fixed at compile time, whether a
// variable is bound when the atom executes is statically known, so each
// argument compiles to exactly one op.
type argOpKind int

const (
	argConst argOpKind = iota // compare against a constant
	argBind                   // first occurrence: bind the slot
	argCheck                  // bound variable: compare against the slot
	argExpr                   // expression argument: evaluate and compare
)

type argOp struct {
	kind argOpKind
	slot int
	val  colog.Value
	term colog.Term
}

// compileArgOps compiles an atom's arguments against the statically-bound
// variable set. Variables in bound (and repeats within the atom) become
// checks; new variables become binds and are added to bound.
func compileArgOps(a *colog.Atom, slots *ruleSlots, bound map[string]bool) []argOp {
	ops := make([]argOp, len(a.Args))
	for i, arg := range a.Args {
		switch t := arg.(type) {
		case *colog.VarTerm:
			slot := slots.slotOf(t.Name)
			if bound[t.Name] {
				ops[i] = argOp{kind: argCheck, slot: slot}
			} else {
				ops[i] = argOp{kind: argBind, slot: slot}
				bound[t.Name] = true
			}
		case *colog.ConstTerm:
			ops[i] = argOp{kind: argConst, val: t.Val}
		default:
			ops[i] = argOp{kind: argExpr, term: arg}
		}
	}
	return ops
}

// matchRow unifies a ground row against compiled arg ops, extending the
// frame. Bindings are trailed; the caller undoes to its mark on mismatch or
// after exploring the row.
func matchRow(ops []argOp, vals []colog.Value, f *bindFrame) bool {
	if len(ops) != len(vals) {
		return false
	}
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case argConst:
			if !op.val.Equal(vals[i]) {
				return false
			}
		case argBind:
			f.bind(op.slot, vals[i])
		case argCheck:
			if !f.vals[op.slot].Equal(vals[i]) {
				return false
			}
		case argExpr:
			if !termBound(op.term, f) {
				return false
			}
			v, err := evalGround(op.term, f)
			if err != nil || !v.Equal(vals[i]) {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------- probing

// probeOp contributes one column to an index probe key: either a constant
// or a frame slot bound before the join executes.
type probeOp struct {
	slot int // -1: constant
	val  colog.Value
}

// compileProbeOps builds the probe plan for an atom's bound columns.
func compileProbeOps(a *colog.Atom, boundCols []int, slots *ruleSlots) []probeOp {
	ops := make([]probeOp, len(boundCols))
	for i, c := range boundCols {
		switch t := a.Args[c].(type) {
		case *colog.ConstTerm:
			ops[i] = probeOp{slot: -1, val: t.Val}
		case *colog.VarTerm:
			ops[i] = probeOp{slot: slots.slotOf(t.Name)}
		}
	}
	return ops
}

// appendProbeKey builds the probe key into the frame's scratch buffer; the
// caller must consume the bytes before the next use of the buffer.
func (f *bindFrame) appendProbeKey(ops []probeOp) []byte {
	dst := f.keyBuf[:0]
	for i := range ops {
		if i > 0 {
			dst = append(dst, '|')
		}
		v := ops[i].val
		if ops[i].slot >= 0 {
			v = f.vals[ops[i].slot]
		}
		dst = v.AppendKey(dst)
	}
	f.keyBuf = dst
	return dst
}

// probeBytes looks up a bucket by a key held in a byte slice without
// allocating the string (the compiler elides the conversion). The bucket
// is seq-ordered: enumerating it yields the matching rows in snapshotStable
// order (see tableIndex).
func (ix *tableIndex) probeBytes(key []byte) []idxRow {
	return ix.m[string(key)]
}

// ------------------------------------------------------ symbolic indexing

// symIndex is a transient hash index over the grounder's merged row set for
// one predicate, keyed on a column subset. Rows holding a symbolic value at
// an indexed column unify with any probe (posting equality constraints), so
// they are kept aside and appended to every probe result.
type symIndex struct {
	cols []int
	m    map[string][]symTuple
	wild []symTuple
}

func buildSymIndex(rows []symTuple, cols []int) *symIndex {
	ix := &symIndex{cols: cols, m: map[string][]symTuple{}}
	var buf []byte
	for _, st := range rows {
		ground := true
		for _, c := range cols {
			if st[c].isSym() {
				ground = false
				break
			}
		}
		if !ground {
			ix.wild = append(ix.wild, st)
			continue
		}
		buf = buf[:0]
		for i, c := range cols {
			if i > 0 {
				buf = append(buf, '|')
			}
			buf = st[c].val.AppendKey(buf)
		}
		k := string(buf)
		ix.m[k] = append(ix.m[k], st)
	}
	return ix
}

// probe returns the rows whose ground projection matches the key, plus the
// rows that are symbolic on an indexed column.
func (ix *symIndex) probe(key []byte) ([]symTuple, []symTuple) {
	return ix.m[string(key)], ix.wild
}

// ------------------------------------------------------------- sym frame

// symFrame is the grounder's slice-backed binding environment: gvals with
// an undo trail, replacing the senv map clones. rec, when non-nil, is the
// owning run's provenance recorder (incremental grounding).
type symFrame struct {
	slots  *ruleSlots
	vals   []gval
	bound  []bool
	trail  []int
	keyBuf []byte
	rec    *runRecorder
}

func newSymFrame(slots *ruleSlots) *symFrame {
	return &symFrame{
		slots: slots,
		vals:  make([]gval, slots.size()),
		bound: make([]bool, slots.size()),
	}
}

func (f *symFrame) reset() {
	for i := range f.bound {
		f.bound[i] = false
	}
	f.trail = f.trail[:0]
}

func (f *symFrame) mark() int { return len(f.trail) }

func (f *symFrame) undo(mark int) {
	for len(f.trail) > mark {
		s := f.trail[len(f.trail)-1]
		f.trail = f.trail[:len(f.trail)-1]
		f.bound[s] = false
	}
}

func (f *symFrame) bind(slot int, v gval) {
	f.vals[slot] = v
	f.bound[slot] = true
	f.trail = append(f.trail, slot)
}

func (f *symFrame) lookupVar(name string) (gval, bool) {
	if i, ok := f.slots.lookup(name); ok && f.bound[i] {
		return f.vals[i], true
	}
	return gval{}, false
}

// appendProbeKey builds a probe key from ground frame values; ok is false
// when any probed slot currently holds a symbolic value (the probe cannot
// prune, so the caller falls back to a scan).
func (f *symFrame) appendProbeKey(ops []probeOp) ([]byte, bool) {
	dst := f.keyBuf[:0]
	for i := range ops {
		if i > 0 {
			dst = append(dst, '|')
		}
		v := ops[i].val
		if ops[i].slot >= 0 {
			gv := f.vals[ops[i].slot]
			if gv.isSym() {
				return nil, false
			}
			v = gv.val
		}
		dst = v.AppendKey(dst)
	}
	f.keyBuf = dst
	return dst, true
}

// --------------------------------------------------- grounder body planner

// gstepKind enumerates the operators of a grounding plan.
type gstepKind int

const (
	gJoin   gstepKind = iota // enumerate a body atom's rows
	gFilter                  // boolean condition: ground filter or posted constraint
	gBind                    // definitional equality V==expr
	gReify                   // reified binding (V==k)==(bool-expr)
	gAssign                  // assignment V:=expr
)

// gstep is one operator of a compiled grounding plan.
type gstep struct {
	kind     gstepKind
	atom     *colog.Atom
	ops      []argOp
	probeOps []probeOp
	idx      *symIndex
	rows     []symTuple
	cond     colog.Term // gFilter
	slot     int        // gBind / gReify / gAssign target
	rhs      colog.Term // gBind / gReify / gAssign right-hand side
	k        int64      // gReify constant
	// rebind marks a gAssign whose target is already bound at this point
	// (executed by saving and restoring the previous value).
	rebind bool

	// Streaming-mode join fields (see stream.go). For a ground predicate,
	// scan is the table's arrival-order snapshot and gidx the persistent
	// index probed when the bound prefix is ground; for a solver predicate,
	// symRows/groundRows are the symbolic tuples and the unshadowed
	// materialized rows. pre is the pushdown prefilter; provCache memoizes
	// per-row provenance cells in recording mode. Snapshots and index
	// pointers are captured at plan time — plans are built serially, so
	// grounding workers read them without synchronization.
	streamed   bool
	scan       [][]colog.Value
	gidx       *tableIndex
	symRows    []symTuple
	groundRows [][]colog.Value
	pre        []rowCmp
	provCache  map[string][]cellProv
	provKeyBuf []byte
}

// groundPlan is the ordered body of one rule for one grounding, with every
// join's access path resolved (index probe or cached scan).
type groundPlan struct {
	rule  *colog.Rule
	label string
	slots *ruleSlots
	steps []gstep
}

// planGroundBody orders a rule body for grounding: expressions run as soon
// as their inputs are bound, atoms are scheduled most-bound-first with
// smaller relations breaking ties, replacing the seed grounder's
// first-unprocessed-atom pick. Index probes are attached for every join
// with a bound prefix. Both grounding modes produce the same literal order
// (streaming sizes relations without materializing them); they differ only
// in each join's row source and in the pushdown prefilter compiled for
// streamed ground rows.
func (g *grounder) planGroundBody(rule *colog.Rule, seedBound map[string]bool) (*groundPlan, error) {
	label := ruleName(rule)
	slots := g.slotsFor(rule)
	p := &groundPlan{rule: rule, label: label, slots: slots}

	bound := map[string]bool{}
	// maybe tracks which variables can hold a symbolic value at the current
	// plan point — seeded head variables (constraint rules bind them from
	// symbolic tuples), binds from solver-predicate joins, reified bindings,
	// and expressions over any of those. The pushdown compiler treats checks
	// against such variables as barriers.
	maybe := map[string]bool{}
	for v := range seedBound {
		bound[v] = true
		maybe[v] = true
	}
	type pending struct {
		lit  colog.Literal
		atom *colog.Atom
	}
	todo := make([]pending, 0, len(rule.Body))
	for _, l := range rule.Body {
		if al, ok := l.(*colog.AtomLit); ok {
			todo = append(todo, pending{l, al.Atom})
		} else {
			todo = append(todo, pending{l, nil})
		}
	}

	boundCount := func(a *colog.Atom) int {
		n := 0
		seen := map[string]bool{}
		for _, arg := range a.Args {
			switch t := arg.(type) {
			case *colog.ConstTerm:
				n++
			case *colog.VarTerm:
				if bound[t.Name] && !seen[t.Name] {
					n++
				}
				seen[t.Name] = true
			}
		}
		return n
	}

	for len(todo) > 0 {
		picked := -1
		var step gstep
		// 1. Ready expressions first: ground filters prune, definitional
		// equalities and assignments extend the frame cheaply.
		for i, pd := range todo {
			switch x := pd.lit.(type) {
			case *colog.CondLit:
				if condBound(x.Expr, bound) {
					picked, step = i, gstep{kind: gFilter, cond: x.Expr}
				} else if name, rhs, k, reified, ok := splitBindableStatic(x.Expr, bound); ok {
					if reified {
						picked, step = i, gstep{kind: gReify, slot: slots.slotOf(name), rhs: rhs, k: k}
						maybe[name] = true // ITE over solver expressions
					} else {
						picked, step = i, gstep{kind: gBind, slot: slots.slotOf(name), rhs: rhs}
						if termMaybeSym(rhs, maybe) {
							maybe[name] = true
						}
					}
					bound[name] = true
				}
			case *colog.AssignLit:
				if condBound(x.Expr, bound) {
					picked, step = i, gstep{kind: gAssign, slot: slots.slotOf(x.Var), rhs: x.Expr, rebind: bound[x.Var]}
					bound[x.Var] = true
					if termMaybeSym(x.Expr, maybe) {
						maybe[x.Var] = true
					}
				}
			}
			if picked >= 0 {
				break
			}
		}
		// 2. Otherwise the most selective join: most bound columns, then
		// smallest relation.
		if picked < 0 {
			bestBound, bestSize := -1, 0
			for i, pd := range todo {
				if pd.atom == nil {
					continue
				}
				var sz int
				if g.stream {
					n, err := g.relSize(pd.atom.Pred)
					if err != nil {
						return nil, everrf(label, "%v", err)
					}
					sz = n
				} else {
					rows, err := g.cachedRows(pd.atom.Pred)
					if err != nil {
						return nil, everrf(label, "%v", err)
					}
					sz = len(rows)
				}
				bc := boundCount(pd.atom)
				if bc > bestBound || (bc == bestBound && sz < bestSize) {
					bestBound, bestSize = bc, sz
					picked = i
					step = gstep{kind: gJoin, atom: pd.atom}
				}
			}
			if picked >= 0 {
				a := step.atom
				cols := joinBoundCols(a, bound)
				// Probe only predicates with no symbolic tuples: for pure
				// ground rows a probe skips exactly the rows that would
				// have failed on a ground mismatch without side effects.
				// Symbolic rows can post equality constraints from a
				// partial match before a later argument fails (seed
				// semantics the solver model depends on), so those
				// predicates keep the full scan.
				_, isSym := g.sym[a.Pred]
				if g.stream {
					step.streamed = true
					if isSym {
						step.symRows = g.sym[a.Pred]
						gr, err := g.cachedGroundRows(a.Pred)
						if err != nil {
							return nil, everrf(label, "%v", err)
						}
						step.groundRows = gr
					} else {
						tbl := g.n.tables[a.Pred]
						step.scan = tbl.snapshotStable()
						if len(cols) > 0 {
							step.probeOps = compileProbeOps(a, cols, slots)
							step.gidx = tbl.ensureIndex(cols)
						}
					}
				} else {
					rows, err := g.cachedRows(a.Pred)
					if err != nil {
						return nil, everrf(label, "%v", err)
					}
					step.rows = rows
					if len(cols) > 0 && !isSym {
						step.probeOps = compileProbeOps(a, cols, slots)
						step.idx = g.cachedSymIndex(a.Pred, cols, step.rows)
					}
				}
				step.ops = compileArgOps(a, slots, bound)
				if g.stream {
					step.pre = compilePushdown(step.ops, func(slot int) bool {
						return maybe[slots.names[slot]]
					})
					if isSym {
						// Binds from a solver predicate can carry symbolic
						// values into the frame.
						for oi := range step.ops {
							if step.ops[oi].kind == argBind {
								maybe[slots.names[step.ops[oi].slot]] = true
							}
						}
					}
				}
			}
		}
		if picked < 0 {
			return nil, everrf(label, "cannot order body literals during grounding")
		}
		p.steps = append(p.steps, step)
		todo = append(todo[:picked], todo[picked+1:]...)
	}
	return p, nil
}

// splitBindableStatic mirrors grounder.splitBindable over a static bound
// set: it recognizes V==expr definitional equalities and the reified
// (V==k)==(expr) form.
func splitBindableStatic(cond colog.Term, bound map[string]bool) (name string, rhs colog.Term, k int64, reified, ok bool) {
	bt, isBin := cond.(*colog.BinTerm)
	if !isBin || bt.Op != colog.OpEq {
		return "", nil, 0, false, false
	}
	unbound := func(t colog.Term) (string, bool) {
		v, isVar := t.(*colog.VarTerm)
		if !isVar {
			return "", false
		}
		return v.Name, !bound[v.Name]
	}
	if n, u := unbound(bt.L); u && condBound(bt.R, bound) {
		return n, bt.R, 0, false, true
	}
	if n, u := unbound(bt.R); u && condBound(bt.L, bound) {
		return n, bt.L, 0, false, true
	}
	tryReified := func(side, other colog.Term) (string, colog.Term, int64, bool, bool) {
		inner, isBin := side.(*colog.BinTerm)
		if !isBin || inner.Op != colog.OpEq {
			return "", nil, 0, false, false
		}
		var vName string
		var constSide colog.Term
		if n, u := unbound(inner.L); u {
			vName, constSide = n, inner.R
		} else if n, u := unbound(inner.R); u {
			vName, constSide = n, inner.L
		} else {
			return "", nil, 0, false, false
		}
		c, isConst := constSide.(*colog.ConstTerm)
		if !isConst || c.Val.Kind != colog.KindInt {
			return "", nil, 0, false, false
		}
		if !condBound(other, bound) {
			return "", nil, 0, false, false
		}
		return vName, other, c.Val.I, true, true
	}
	if n, r, kk, re, ok2 := tryReified(bt.L, bt.R); ok2 {
		return n, r, kk, re, ok2
	}
	return tryReified(bt.R, bt.L)
}

// ------------------------------------------------------- rule level graph

// solverRuleLevels partitions the solver derivation rules into dependency
// levels: a rule's level is one past the deepest level producing a
// predicate its body reads. Rules within a level are independent and can be
// grounded in parallel; levels run in order. Falls back to one rule per
// level (fully serial) if the dependency graph does not stabilize.
func solverRuleLevels(rules []*colog.Rule, order []int) [][]int {
	producers := map[string][]int{}
	for _, ri := range order {
		head := rules[ri].Head.Pred
		producers[head] = append(producers[head], ri)
	}
	level := map[int]int{}
	stable := false
	for iter := 0; iter <= len(order)+1; iter++ {
		changed := false
		for _, ri := range order {
			lvl := 0
			for _, l := range rules[ri].Body {
				al, ok := l.(*colog.AtomLit)
				if !ok {
					continue
				}
				for _, rj := range producers[al.Atom.Pred] {
					if rj == ri {
						continue
					}
					if pl := level[rj] + 1; pl > lvl {
						lvl = pl
					}
				}
			}
			if level[ri] != lvl {
				level[ri] = lvl
				changed = true
			}
		}
		if !changed {
			stable = true
			break
		}
	}
	if !stable {
		// Cyclic dependency (should be rejected upstream): serialize.
		out := make([][]int, 0, len(order))
		for _, ri := range order {
			out = append(out, []int{ri})
		}
		return out
	}
	byLevel := map[int][]int{}
	var lvls []int
	for _, ri := range order {
		l := level[ri]
		if _, ok := byLevel[l]; !ok {
			lvls = append(lvls, l)
		}
		byLevel[l] = append(byLevel[l], ri)
	}
	sort.Ints(lvls)
	out := make([][]int, 0, len(lvls))
	for _, l := range lvls {
		out = append(out, byLevel[l])
	}
	return out
}
