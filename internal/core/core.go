// Package core is the Cologne execution engine: a distributed Datalog
// runtime fused with a constraint-solver bridge, one Node per network
// address.
//
// Each Node runs two cooperating halves over the same table store:
//
//   - The delta pipeline executes the regular rules by pipelined semi-naive
//     evaluation: every visible row transition fires compiled per-rule
//     plans (compile.go, node.go) over hash-indexed tables (table.go,
//     index.go) with slot-based binding frames and undo trails (join.go).
//     Counting plus a DRed-style recompute handles deletion through
//     recursion (dred.go); aggregates maintain incremental state
//     (aggregate.go).
//
//   - The grounder turns the solver rules into a constraint model on
//     demand (ground.go): var declarations become decision variables,
//     derivation rules build symbolic tuples bottom-up, selections and
//     aggregations over solver attributes compile into constraints, and
//     the solved assignment is materialized back into the tables,
//     triggering downstream regular rules. Joins stream directly off the
//     tables through single-use pipelined iterators with predicate
//     pushdown (stream.go); Config.GroundMode selects the materialized
//     escape hatch, which produces byte-identical results. With
//     Config.SolverIncremental the grounding is cached between solves and
//     patched in place as tuples churn (incremental.go).
//
// See docs/architecture.md for the end-to-end dataflow, docs/grounding.md
// for the grounding internals, and docs/tuning.md for the engine's
// performance knobs.
package core
