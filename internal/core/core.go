package core
