package core

import (
	"math"
	"testing"

	"repro/internal/colog"
)

// TestWireDeltaRoundTrip: the compact binary delta codec must round-trip
// every value kind, including edge values.
func TestWireDeltaRoundTrip(t *testing.T) {
	cases := [][]colog.Value{
		{},
		{ival(0), ival(-1), ival(1)},
		{ival(math.MaxInt64), ival(math.MinInt64)},
		{colog.FloatVal(0), colog.FloatVal(-3.75), colog.FloatVal(math.Inf(1))},
		{sval(""), sval("h1"), sval("héllo|world\x00bytes")},
		{colog.BoolVal(true), colog.BoolVal(false)},
		{ival(42), colog.FloatVal(1.5), sval("mixed"), colog.BoolVal(true)},
	}
	for _, sign := range []int{+1, -1} {
		for i, vals := range cases {
			payload, err := encodeDelta("somePred", vals, sign)
			if err != nil {
				t.Fatalf("case %d: encode: %v", i, err)
			}
			wd, err := decodeDelta(payload)
			if err != nil {
				t.Fatalf("case %d: decode: %v", i, err)
			}
			if wd.Pred != "somePred" || wd.Sign != sign {
				t.Fatalf("case %d: header round-trip: %+v", i, wd)
			}
			if len(wd.Vals) != len(vals) {
				t.Fatalf("case %d: %d values, want %d", i, len(wd.Vals), len(vals))
			}
			for j := range vals {
				if wd.Vals[j].Kind != vals[j].Kind || !wd.Vals[j].Equal(vals[j]) {
					t.Fatalf("case %d value %d: got %v want %v", i, j, wd.Vals[j], vals[j])
				}
			}
		}
	}
}

// TestWireDeltaRejectsMalformed: garbage and truncations must error, never
// panic — the transport has UDP semantics, so any datagram can arrive.
func TestWireDeltaRejectsMalformed(t *testing.T) {
	good, err := encodeDelta("p", []colog.Value{ival(7), sval("x")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		{},
		[]byte("junk"),
		{0xFF, 0x01},       // wrong version
		good[:1],           // header only
		good[:len(good)-1], // truncated value
		append(append([]byte(nil), good...), 0x00), // trailing garbage
	}
	for i, payload := range bad {
		if _, err := decodeDelta(payload); err == nil {
			t.Fatalf("malformed payload %d accepted", i)
		}
	}
	// Huge declared lengths must not allocate or crash.
	huge := []byte{wireDeltaVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := decodeDelta(huge); err == nil {
		t.Fatal("huge string length accepted")
	}
}

// TestWireBatchRoundTrip: merged frames must decode to the original delta
// sequence in order, and a single payload must pass through unchanged.
func TestWireBatchRoundTrip(t *testing.T) {
	var payloads [][]byte
	want := []wireDelta{
		{Pred: "a", Vals: []colog.Value{ival(1), sval("x")}, Sign: 1},
		{Pred: "b", Vals: []colog.Value{colog.FloatVal(2.5)}, Sign: -1},
		{Pred: "a", Vals: []colog.Value{ival(2), sval("y")}, Sign: 1},
	}
	for _, wd := range want {
		p, err := encodeDelta(wd.Pred, wd.Vals, wd.Sign)
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, p)
	}

	singles, err := MergeDeltaPayloads(payloads[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(singles) != 1 || &singles[0][0] != &payloads[0][0] {
		t.Fatal("single payload not passed through unchanged")
	}

	frames, err := MergeDeltaPayloads(payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("small batch split into %d frames", len(frames))
	}
	batch := frames[0]
	if batch[0] != wireBatchVersion {
		t.Fatalf("batch version byte = %d", batch[0])
	}
	got, err := decodeDeltas(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d deltas, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Pred != want[i].Pred || got[i].Sign != want[i].Sign || len(got[i].Vals) != len(want[i].Vals) {
			t.Fatalf("delta %d = %+v, want %+v", i, got[i], want[i])
		}
		for j := range want[i].Vals {
			if !got[i].Vals[j].Equal(want[i].Vals[j]) {
				t.Fatalf("delta %d value %d = %v, want %v", i, j, got[i].Vals[j], want[i].Vals[j])
			}
		}
	}

	// decodeDelta (single-frame path) must reject a batch of several.
	if _, err := decodeDelta(batch); err == nil {
		t.Fatal("decodeDelta accepted a multi-delta batch")
	}
}

// TestWireBatchRejectsMalformed: batch frames get the same never-panic
// guarantee as single frames.
func TestWireBatchRejectsMalformed(t *testing.T) {
	p1, _ := encodeDelta("p", []colog.Value{ival(7)}, 1)
	p2, _ := encodeDelta("q", []colog.Value{sval("x")}, -1)
	frames, err := MergeDeltaPayloads([][]byte{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	batch := frames[0]
	bad := [][]byte{
		batch[:1],            // count missing
		batch[:len(batch)-1], // truncated last delta
		append(append([]byte(nil), batch...), 0x7F),           // trailing garbage
		{wireBatchVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},      // huge count
		{wireBatchVersion, 0x02, 0x01, 'p', 0x02, 0x00, 0xFF}, // bad inner value
	}
	for i, payload := range bad {
		if _, err := decodeDeltas(payload); err == nil {
			t.Fatalf("malformed batch %d accepted", i)
		}
	}
	// Merging a frame that is not version 1 must error.
	if _, err := MergeDeltaPayloads([][]byte{p1, {0xFF}}); err == nil {
		t.Fatal("merged a non-delta payload")
	}
}
