package core

import (
	"math"
	"testing"

	"repro/internal/colog"
)

// TestWireDeltaRoundTrip: the compact binary delta codec must round-trip
// every value kind, including edge values.
func TestWireDeltaRoundTrip(t *testing.T) {
	cases := [][]colog.Value{
		{},
		{ival(0), ival(-1), ival(1)},
		{ival(math.MaxInt64), ival(math.MinInt64)},
		{colog.FloatVal(0), colog.FloatVal(-3.75), colog.FloatVal(math.Inf(1))},
		{sval(""), sval("h1"), sval("héllo|world\x00bytes")},
		{colog.BoolVal(true), colog.BoolVal(false)},
		{ival(42), colog.FloatVal(1.5), sval("mixed"), colog.BoolVal(true)},
	}
	for _, sign := range []int{+1, -1} {
		for i, vals := range cases {
			payload, err := encodeDelta("somePred", vals, sign)
			if err != nil {
				t.Fatalf("case %d: encode: %v", i, err)
			}
			wd, err := decodeDelta(payload)
			if err != nil {
				t.Fatalf("case %d: decode: %v", i, err)
			}
			if wd.Pred != "somePred" || wd.Sign != sign {
				t.Fatalf("case %d: header round-trip: %+v", i, wd)
			}
			if len(wd.Vals) != len(vals) {
				t.Fatalf("case %d: %d values, want %d", i, len(wd.Vals), len(vals))
			}
			for j := range vals {
				if wd.Vals[j].Kind != vals[j].Kind || !wd.Vals[j].Equal(vals[j]) {
					t.Fatalf("case %d value %d: got %v want %v", i, j, wd.Vals[j], vals[j])
				}
			}
		}
	}
}

// TestWireDeltaRejectsMalformed: garbage and truncations must error, never
// panic — the transport has UDP semantics, so any datagram can arrive.
func TestWireDeltaRejectsMalformed(t *testing.T) {
	good, err := encodeDelta("p", []colog.Value{ival(7), sval("x")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		{},
		[]byte("junk"),
		{0xFF, 0x01},       // wrong version
		good[:1],           // header only
		good[:len(good)-1], // truncated value
		append(append([]byte(nil), good...), 0x00), // trailing garbage
	}
	for i, payload := range bad {
		if _, err := decodeDelta(payload); err == nil {
			t.Fatalf("malformed payload %d accepted", i)
		}
	}
	// Huge declared lengths must not allocate or crash.
	huge := []byte{wireDeltaVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := decodeDelta(huge); err == nil {
		t.Fatal("huge string length accepted")
	}
}
