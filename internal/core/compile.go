package core

import (
	"repro/internal/analysis"
	"repro/internal/colog"
)

// stepKind enumerates the operators of a compiled rule plan.
type stepKind int

const (
	stepJoin   stepKind = iota // join a body atom against its table
	stepFilter                 // evaluate a boolean condition
	stepBind                   // definitional equality Var == expr
	stepAssign                 // Var := expr
)

// planStep is one operator in a delta rule plan.
type planStep struct {
	kind      stepKind
	atom      *colog.Atom // stepJoin
	cond      colog.Term  // stepFilter
	bindVar   string      // stepBind / stepAssign
	expr      colog.Term  // stepBind / stepAssign rhs
	isTrigger bool        // stepJoin for the delta position (bound from the delta tuple)
	// boundCols are the join atom's argument positions already bound when
	// this step runs (constants or previously bound variables); non-empty
	// sets drive an index probe instead of a table scan.
	boundCols []int
	// argOps are the compiled unification ops for a join atom; probeOps
	// build the index probe key from the frame (parallel to boundCols);
	// preCmps is the pushed-down prefilter evaluated on raw rows before the
	// frame is extended (see stream.go — delta frames are always ground, so
	// every compare is hoistable).
	argOps   []argOp
	probeOps []probeOp
	preCmps  []rowCmp
	// idxKey names the probed column set; cachedIdx/cachedGen memoize the
	// table index pointer across executions until the table drops indexes.
	idxKey    string
	cachedIdx *tableIndex
	cachedGen uint64
	// slot is the frame slot written by stepBind / stepAssign; rebind marks
	// an assignment whose target is already bound at this point in the plan
	// (executed by saving and restoring the previous value, since the undo
	// trail only tracks fresh bindings).
	slot   int
	rebind bool
}

// headOp projects one plain-head argument from the frame: a direct slot
// copy for variables, a term evaluation otherwise.
type headOp struct {
	slot int // -1: evaluate term
	term colog.Term
}

// plan is a compiled delta rule: when a tuple of the trigger predicate
// changes, the remaining steps run in order, producing head tuples. This is
// the dataflow of pipelined semi-naive evaluation — one plan per (rule, body
// atom) pair.
type plan struct {
	rule     *colog.Rule
	ruleIdx  int
	trigger  *colog.Atom
	steps    []planStep
	headAggs []int // head argument positions that are aggregates (empty for plain heads)
	slots    *ruleSlots
	headOps  []headOp // plain heads only
	// frame is the plan's scratch binding frame. Delta evaluation under the
	// node lock is single-threaded and never re-enters the same plan, so
	// one frame per plan eliminates all per-row environment allocations.
	frame *bindFrame
}

// compileRules builds the delta plans for all regular rules of the analyzed
// program, indexed by trigger predicate.
func compileRules(res *analysis.Result) (map[string][]*plan, error) {
	plans := map[string][]*plan{}
	for ri, r := range res.Program.Rules {
		if res.Classes[ri] != analysis.RegularRule {
			continue // solver rules are executed by the grounder
		}
		var atoms []*colog.Atom
		for _, l := range r.Body {
			if al, ok := l.(*colog.AtomLit); ok {
				atoms = append(atoms, al.Atom)
			}
		}
		if len(atoms) == 0 {
			return nil, everrf(ruleName(r), "rule has no body atoms")
		}
		for ti := range atoms {
			p, err := compilePlan(r, ri, atoms, ti)
			if err != nil {
				return nil, err
			}
			plans[p.trigger.Pred] = append(plans[p.trigger.Pred], p)
		}
	}
	return plans, nil
}

// compilePlan orders the rule body for one trigger position: the trigger
// atom binds first, then remaining literals are scheduled greedily —
// joins preferring atoms sharing bound variables, conditions and
// assignments as soon as their inputs are bound, definitional equalities
// when exactly one side is a single unbound variable.
func compilePlan(r *colog.Rule, ruleIdx int, atoms []*colog.Atom, triggerIdx int) (*plan, error) {
	p := &plan{rule: r, ruleIdx: ruleIdx, trigger: atoms[triggerIdx], slots: collectRuleSlots(r)}
	bound := map[string]bool{}
	bindAtomVars := func(a *colog.Atom) {
		for _, v := range atomVarNames(a) {
			bound[v] = true
		}
	}
	trigger := planStep{kind: stepJoin, atom: atoms[triggerIdx], isTrigger: true}
	trigger.argOps = compileArgOps(atoms[triggerIdx], p.slots, bound)
	p.steps = append(p.steps, trigger)
	bindAtomVars(atoms[triggerIdx])

	type pending struct {
		lit  colog.Literal
		atom *colog.Atom // non-nil when the literal is an atom
	}
	var todo []pending
	for _, l := range r.Body {
		if al, ok := l.(*colog.AtomLit); ok {
			if al.Atom == atoms[triggerIdx] {
				continue
			}
			todo = append(todo, pending{l, al.Atom})
		} else {
			todo = append(todo, pending{l, nil})
		}
	}

	countBound := func(a *colog.Atom) int {
		n := 0
		for _, v := range atomVarNames(a) {
			if bound[v] {
				n++
			}
		}
		return n
	}

	for len(todo) > 0 {
		picked := -1
		var step planStep
		// 1. Ready conditions and assignments take priority (cheap filters).
		for i, pd := range todo {
			switch x := pd.lit.(type) {
			case *colog.CondLit:
				if cv, expr, ok := bindableEq(x.Expr, bound); ok {
					picked, step = i, planStep{kind: stepBind, bindVar: cv, expr: expr}
				} else if condBound(x.Expr, bound) {
					picked, step = i, planStep{kind: stepFilter, cond: x.Expr}
				}
			case *colog.AssignLit:
				if condBound(x.Expr, bound) {
					picked, step = i, planStep{kind: stepAssign, bindVar: x.Var, expr: x.Expr, rebind: bound[x.Var]}
				}
			}
			if picked >= 0 {
				break
			}
		}
		// 2. Otherwise the most-bound join.
		if picked < 0 {
			best := -1
			for i, pd := range todo {
				if pd.atom == nil {
					continue
				}
				if n := countBound(pd.atom); n > best {
					best = n
					picked = i
					step = planStep{kind: stepJoin, atom: pd.atom}
				}
			}
		}
		if picked < 0 {
			return nil, everrf(ruleName(r), "cannot order body literals; unbound expression %s", todo[0].lit)
		}
		if step.kind == stepJoin {
			step.boundCols = joinBoundCols(step.atom, bound)
			step.probeOps = compileProbeOps(step.atom, step.boundCols, p.slots)
			step.idxKey = idxName(step.boundCols)
			step.argOps = compileArgOps(step.atom, p.slots, bound)
			step.preCmps = compilePushdown(step.argOps, nil)
		}
		switch step.kind {
		case stepJoin:
			bindAtomVars(step.atom)
		case stepBind, stepAssign:
			step.slot = p.slots.slotOf(step.bindVar)
			bound[step.bindVar] = true
		}
		p.steps = append(p.steps, step)
		todo = append(todo[:picked], todo[picked+1:]...)
	}

	// Validate head and note aggregate positions, compiling the plain-head
	// projection.
	for i, arg := range r.Head.Args {
		switch t := arg.(type) {
		case *colog.AggTerm:
			p.headAggs = append(p.headAggs, i)
			if !bound[t.Over] {
				return nil, everrf(ruleName(r), "aggregate variable %s unbound", t.Over)
			}
		case *colog.VarTerm:
			if !bound[t.Name] {
				return nil, everrf(ruleName(r), "head variable %s unbound", t.Name)
			}
		}
	}
	if len(p.headAggs) == 0 {
		p.headOps = make([]headOp, len(r.Head.Args))
		for i, arg := range r.Head.Args {
			if v, ok := arg.(*colog.VarTerm); ok {
				p.headOps[i] = headOp{slot: p.slots.slotOf(v.Name)}
			} else {
				p.headOps[i] = headOp{slot: -1, term: arg}
			}
		}
	}
	p.frame = newBindFrame(p.slots)
	return p, nil
}

// bindableEq recognizes a definitional equality: one side a single unbound
// variable, the other fully bound.
func bindableEq(t colog.Term, bound map[string]bool) (string, colog.Term, bool) {
	bt, ok := t.(*colog.BinTerm)
	if !ok || bt.Op != colog.OpEq {
		return "", nil, false
	}
	if v, ok := bt.L.(*colog.VarTerm); ok && !bound[v.Name] && condBoundWith(bt.R, bound) {
		return v.Name, bt.R, true
	}
	if v, ok := bt.R.(*colog.VarTerm); ok && !bound[v.Name] && condBoundWith(bt.L, bound) {
		return v.Name, bt.L, true
	}
	return "", nil, false
}

func condBound(t colog.Term, bound map[string]bool) bool { return condBoundWith(t, bound) }

func condBoundWith(t colog.Term, bound map[string]bool) bool {
	switch x := t.(type) {
	case *colog.VarTerm:
		return bound[x.Name]
	case *colog.BinTerm:
		return condBoundWith(x.L, bound) && condBoundWith(x.R, bound)
	case *colog.NegTerm:
		return condBoundWith(x.X, bound)
	case *colog.NotTerm:
		return condBoundWith(x.X, bound)
	case *colog.AbsTerm:
		return condBoundWith(x.X, bound)
	case *colog.FuncTerm:
		for _, a := range x.Args {
			if !condBoundWith(a, bound) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// joinBoundCols lists the argument positions of a join atom whose value is
// known before the join executes: constants, and variables bound earlier in
// the plan. Repeated variables within the atom count only on first
// occurrence (later occurrences are equality-checked by matchAtom).
func joinBoundCols(a *colog.Atom, bound map[string]bool) []int {
	var cols []int
	seen := map[string]bool{}
	for i, arg := range a.Args {
		switch t := arg.(type) {
		case *colog.ConstTerm:
			cols = append(cols, i)
		case *colog.VarTerm:
			if bound[t.Name] && !seen[t.Name] {
				cols = append(cols, i)
			}
			seen[t.Name] = true
		}
	}
	return cols
}

func atomVarNames(a *colog.Atom) []string {
	var out []string
	for _, t := range a.Args {
		switch x := t.(type) {
		case *colog.VarTerm:
			out = append(out, x.Name)
		case *colog.AggTerm:
			out = append(out, x.Over)
		}
	}
	return out
}

func ruleName(r *colog.Rule) string {
	if r.Label != "" {
		return r.Label
	}
	return r.Head.Pred
}
