package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/transport"
)

func mustAnalyze(t *testing.T, src string, params map[string]colog.Value) *analysis.Result {
	t.Helper()
	prog, err := colog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog, params)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func newTestNode(t *testing.T, src string, cfg Config) *Node {
	t.Helper()
	res := mustAnalyze(t, src, cfg.Params)
	n, err := NewNode("local", res, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func ival(v int64) colog.Value   { return colog.IntVal(v) }
func sval(s string) colog.Value  { return colog.StringVal(s) }
func fval(f float64) colog.Value { return colog.FloatVal(f) }
func rows(n *Node, p string) int { return len(n.Rows(p)) }
func row1(n *Node, p string) []colog.Value {
	r := n.Rows(p)
	if len(r) != 1 {
		return nil
	}
	return r[0]
}

func TestSimpleJoin(t *testing.T) {
	n := newTestNode(t, `r1 grandparent(X,Z) <- parent(X,Y), parent(Y,Z).`, Config{})
	n.Insert("parent", sval("a"), sval("b"))
	n.Insert("parent", sval("b"), sval("c"))
	if !n.Contains("grandparent", sval("a"), sval("c")) {
		t.Fatalf("missing derivation; dump:\n%s", n.Dump())
	}
	if rows(n, "grandparent") != 1 {
		t.Fatalf("grandparent rows = %d", rows(n, "grandparent"))
	}
}

func TestRecursiveTransitiveClosure(t *testing.T) {
	n := newTestNode(t, `
r1 path(X,Y) <- edge(X,Y).
r2 path(X,Z) <- path(X,Y), edge(Y,Z).
`, Config{})
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		n.Insert("edge", sval(e[0]), sval(e[1]))
	}
	want := [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}, {"c", "d"}}
	if rows(n, "path") != len(want) {
		t.Fatalf("path rows = %d, want %d\n%s", rows(n, "path"), len(want), n.Dump())
	}
	for _, w := range want {
		if !n.Contains("path", sval(w[0]), sval(w[1])) {
			t.Errorf("missing path(%s,%s)", w[0], w[1])
		}
	}
}

func TestIncrementalDeletion(t *testing.T) {
	n := newTestNode(t, `
r1 path(X,Y) <- edge(X,Y).
r2 path(X,Z) <- path(X,Y), edge(Y,Z).
`, Config{})
	n.Insert("edge", sval("a"), sval("b"))
	n.Insert("edge", sval("b"), sval("c"))
	if !n.Contains("path", sval("a"), sval("c")) {
		t.Fatal("setup failed")
	}
	n.Delete("edge", sval("b"), sval("c"))
	if n.Contains("path", sval("a"), sval("c")) {
		t.Fatalf("path(a,c) survived deletion:\n%s", n.Dump())
	}
	if n.Contains("path", sval("b"), sval("c")) {
		t.Fatal("path(b,c) survived deletion")
	}
	if !n.Contains("path", sval("a"), sval("b")) {
		t.Fatal("path(a,b) wrongly deleted")
	}
}

func TestDeletionWithAlternateDerivation(t *testing.T) {
	// p derived through two rules; deleting one support keeps the row.
	n := newTestNode(t, `
r1 p(X) <- q(X).
r2 p(X) <- s(X).
`, Config{})
	n.Insert("q", ival(1))
	n.Insert("s", ival(1))
	n.Delete("q", ival(1))
	if !n.Contains("p", ival(1)) {
		t.Fatal("p(1) lost despite remaining support from s")
	}
	n.Delete("s", ival(1))
	if n.Contains("p", ival(1)) {
		t.Fatal("p(1) survived both deletions")
	}
}

func TestSelfJoinDeletion(t *testing.T) {
	n := newTestNode(t, `r1 pair(X,Z) <- e(X,Y), e(Y,Z).`, Config{})
	n.Insert("e", sval("a"), sval("a")) // self-loop: pair(a,a) via (t,t)
	if !n.Contains("pair", sval("a"), sval("a")) {
		t.Fatal("pair(a,a) not derived")
	}
	n.Delete("e", sval("a"), sval("a"))
	if n.Contains("pair", sval("a"), sval("a")) {
		t.Fatalf("pair(a,a) survived self-join deletion:\n%s", n.Dump())
	}
}

func TestConditionFilter(t *testing.T) {
	n := newTestNode(t, `r1 big(X,C) <- load(X,C), C>10.`, Config{})
	n.Insert("load", sval("a"), ival(5))
	n.Insert("load", sval("b"), ival(15))
	if rows(n, "big") != 1 || !n.Contains("big", sval("b"), ival(15)) {
		t.Fatalf("filter broken:\n%s", n.Dump())
	}
}

func TestDefinitionalEqualityBinding(t *testing.T) {
	n := newTestNode(t, `r1 double(X,D) <- val(X,V), D==V*2.`, Config{})
	n.Insert("val", sval("a"), ival(21))
	if !n.Contains("double", sval("a"), ival(42)) {
		t.Fatalf("definitional binding broken:\n%s", n.Dump())
	}
}

func TestAssignmentLiteral(t *testing.T) {
	n := newTestNode(t, `r1 neg(X,M) <- val(X,V), M:=-V.`, Config{})
	n.Insert("val", sval("a"), ival(7))
	if !n.Contains("neg", sval("a"), ival(-7)) {
		t.Fatalf("assignment broken:\n%s", n.Dump())
	}
}

func TestAggregateSum(t *testing.T) {
	n := newTestNode(t, `r1 total(H,SUM<C>) <- vm(V,H,C).`, Config{})
	n.Insert("vm", sval("v1"), sval("h1"), ival(10))
	n.Insert("vm", sval("v2"), sval("h1"), ival(20))
	n.Insert("vm", sval("v3"), sval("h2"), ival(5))
	if !n.Contains("total", sval("h1"), ival(30)) || !n.Contains("total", sval("h2"), ival(5)) {
		t.Fatalf("sums wrong:\n%s", n.Dump())
	}
	// Incremental update.
	n.Insert("vm", sval("v4"), sval("h1"), ival(1))
	if !n.Contains("total", sval("h1"), ival(31)) {
		t.Fatalf("incremental sum wrong:\n%s", n.Dump())
	}
	if rows(n, "total") != 2 {
		t.Fatalf("stale aggregate rows:\n%s", n.Dump())
	}
	// Deletion.
	n.Delete("vm", sval("v2"), sval("h1"), ival(20))
	if !n.Contains("total", sval("h1"), ival(11)) {
		t.Fatalf("sum after delete wrong:\n%s", n.Dump())
	}
	// Emptying a group removes its row.
	n.Delete("vm", sval("v3"), sval("h2"), ival(5))
	if n.Contains("total", sval("h2"), ival(5)) || rows(n, "total") != 1 {
		t.Fatalf("empty group not retracted:\n%s", n.Dump())
	}
}

func TestAggregateMinMaxCount(t *testing.T) {
	n := newTestNode(t, `
r1 lo(MIN<C>) <- m(X,C).
r2 hi(MAX<C>) <- m(X,C).
r3 cnt(COUNT<C>) <- m(X,C).
`, Config{})
	n.Insert("m", sval("a"), ival(3))
	n.Insert("m", sval("b"), ival(9))
	n.Insert("m", sval("c"), ival(6))
	if !n.Contains("lo", ival(3)) || !n.Contains("hi", ival(9)) || !n.Contains("cnt", ival(3)) {
		t.Fatalf("aggregates wrong:\n%s", n.Dump())
	}
	n.Delete("m", sval("b"), ival(9))
	if !n.Contains("hi", ival(6)) || !n.Contains("cnt", ival(2)) {
		t.Fatalf("aggregates after delete wrong:\n%s", n.Dump())
	}
}

func TestAggregateStdevAndAvg(t *testing.T) {
	n := newTestNode(t, `
r1 sd(STDEV<C>) <- m(X,C).
r2 av(AVG<C>) <- m(X,C).
`, Config{})
	n.Insert("m", sval("a"), ival(2))
	n.Insert("m", sval("b"), ival(4))
	sd := row1(n, "sd")
	av := row1(n, "av")
	if sd == nil || av == nil {
		t.Fatalf("missing aggregate rows:\n%s", n.Dump())
	}
	if sd[0].Num() != 1 {
		t.Errorf("stdev = %v, want 1", sd[0])
	}
	if av[0].Num() != 3 {
		t.Errorf("avg = %v, want 3", av[0])
	}
}

func TestAggregateSumAbsAndUnique(t *testing.T) {
	n := newTestNode(t, `
r1 tot(SUMABS<C>) <- m(X,C).
r2 uniq(UNIQUE<C>) <- m(X,C).
`, Config{})
	n.Insert("m", sval("a"), ival(-5))
	n.Insert("m", sval("b"), ival(3))
	n.Insert("m", sval("c"), ival(3))
	if !n.Contains("tot", ival(11)) {
		t.Fatalf("sumabs wrong:\n%s", n.Dump())
	}
	if !n.Contains("uniq", ival(2)) {
		t.Fatalf("unique wrong:\n%s", n.Dump())
	}
}

func TestKeyedReplacement(t *testing.T) {
	// curVm-style state update: key on the first column.
	n := newTestNode(t, `r1 mirror(X,V) <- cur(X,V).`,
		Config{Keys: map[string][]int{"cur": {0}, "mirror": {0}}})
	n.Insert("cur", sval("a"), ival(1))
	n.Insert("cur", sval("a"), ival(2))
	if rows(n, "cur") != 1 || !n.Contains("cur", sval("a"), ival(2)) {
		t.Fatalf("keyed replace broken:\n%s", n.Dump())
	}
	if rows(n, "mirror") != 1 || !n.Contains("mirror", sval("a"), ival(2)) {
		t.Fatalf("downstream keyed replace broken:\n%s", n.Dump())
	}
}

func TestEventTableSemantics(t *testing.T) {
	n := newTestNode(t, `r1 log(X) <- ping(X).`, Config{Events: []string{"ping"}})
	n.Insert("ping", ival(1))
	if rows(n, "ping") != 0 {
		t.Fatal("event table stored rows")
	}
	if !n.Contains("log", ival(1)) {
		t.Fatal("event did not trigger rule")
	}
	// Same event again re-derives (count 2), deleting once keeps it.
	n.Insert("ping", ival(1))
	n.Delete("log", ival(1))
	if !n.Contains("log", ival(1)) {
		t.Fatal("count semantics broken for event-derived rows")
	}
}

func TestUnknownPredicateErrors(t *testing.T) {
	n := newTestNode(t, `r1 p(X) <- q(X).`, Config{})
	if err := n.Insert("nosuch", ival(1)); err == nil {
		t.Fatal("expected unknown predicate error")
	}
	if err := n.Insert("q", ival(1), ival(2)); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestFactsLoadedFromProgram(t *testing.T) {
	n := newTestNode(t, `
r1 p(X) <- q(X).
q(1).
q(2).
`, Config{})
	if rows(n, "p") != 2 {
		t.Fatalf("facts not loaded:\n%s", n.Dump())
	}
}

func TestTwoNodeDistributedJoin(t *testing.T) {
	// The paper's localization example in miniature: node X derives from
	// node Y's table via a shipping rule.
	src := `
d0 out(@X,D,R) <- link(@Y,X), data(@Y,D,R), local(@X,D).
`
	res := mustAnalyze(t, src, nil)
	tr := transport.NewLoopback()
	nx, err := NewNode("x", res, Config{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	ny, err := NewNode("y", res, Config{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	nx.Insert("local", sval("x"), sval("d1"))
	ny.Insert("link", sval("y"), sval("x"))
	ny.Insert("data", sval("y"), sval("d1"), ival(42))
	if !nx.Contains("out", sval("x"), sval("d1"), ival(42)) {
		t.Fatalf("distributed derivation missing:\nX: %s\nY: %s", nx.Dump(), ny.Dump())
	}
	// Deletion propagates across the network too.
	ny.Delete("data", sval("y"), sval("d1"), ival(42))
	if nx.Contains("out", sval("x"), sval("d1"), ival(42)) {
		t.Fatalf("distributed deletion not propagated:\n%s", nx.Dump())
	}
}

func TestRemoteHeadShipping(t *testing.T) {
	// A rule whose head is addressed to another node.
	src := `r1 remote(@Y,V) <- src(@X,Y,V).`
	res := mustAnalyze(t, src, nil)
	tr := transport.NewLoopback()
	nx, _ := NewNode("x", res, Config{}, tr)
	ny, _ := NewNode("y", res, Config{}, tr)
	nx.Insert("src", sval("x"), sval("y"), ival(7))
	if !ny.Contains("remote", sval("y"), ival(7)) {
		t.Fatalf("remote head not shipped:\n%s", ny.Dump())
	}
	if nx.Stats().TuplesSent == 0 {
		t.Fatal("sender stats not updated")
	}
}

func TestChainedAggregates(t *testing.T) {
	// Aggregate over an aggregate (stratified).
	n := newTestNode(t, `
r1 perHost(H,SUM<C>) <- vm(V,H,C).
r2 maxHost(MAX<S>) <- perHost(H,S).
`, Config{})
	n.Insert("vm", sval("v1"), sval("h1"), ival(10))
	n.Insert("vm", sval("v2"), sval("h2"), ival(30))
	n.Insert("vm", sval("v3"), sval("h1"), ival(15))
	if !n.Contains("maxHost", ival(30)) {
		t.Fatalf("chained aggregate wrong:\n%s", n.Dump())
	}
	n.Insert("vm", sval("v4"), sval("h1"), ival(20))
	if !n.Contains("maxHost", ival(45)) {
		t.Fatalf("chained aggregate not updated:\n%s", n.Dump())
	}
}

func TestFuncTermEvaluation(t *testing.T) {
	n := newTestNode(t, `r1 best(X,M) <- pair(X,A,B), M==f_max(A,B).`, Config{})
	n.Insert("pair", sval("p"), ival(3), ival(9))
	if !n.Contains("best", sval("p"), ival(9)) {
		t.Fatalf("f_max broken:\n%s", n.Dump())
	}
}

func TestDumpAndTableNames(t *testing.T) {
	n := newTestNode(t, `r1 p(X) <- q(X).`, Config{})
	n.Insert("q", ival(1))
	d := n.Dump()
	if d == "" {
		t.Fatal("empty dump")
	}
	names := n.TableNames()
	if len(names) < 2 {
		t.Fatalf("TableNames = %v", names)
	}
}
