package core

import (
	"fmt"
	"testing"

	"repro/internal/colog"
)

func TestIndexedJoinCorrectness(t *testing.T) {
	// Same join evaluated via index probe must match a brute-force check.
	n := newTestNode(t, `r1 colocated(V,W) <- vm(V,H), vm2(W,H).`, Config{})
	for i := 0; i < 30; i++ {
		n.Insert("vm2", sval(fmt.Sprintf("w%d", i)), sval(fmt.Sprintf("h%d", i%5)))
	}
	for i := 0; i < 30; i++ {
		n.Insert("vm", sval(fmt.Sprintf("v%d", i)), sval(fmt.Sprintf("h%d", i%5)))
	}
	// Each host has 6 vms and 6 vm2s -> 5 hosts * 36 pairs.
	if got := rows(n, "colocated"); got != 180 {
		t.Fatalf("colocated rows = %d, want 180", got)
	}
	// Deletions maintain the index.
	n.Delete("vm2", sval("w0"), sval("h0"))
	if got := rows(n, "colocated"); got != 174 {
		t.Fatalf("after delete: %d rows, want 174", got)
	}
	// New inserts after the index exists.
	n.Insert("vm2", sval("wx"), sval("h0"))
	if got := rows(n, "colocated"); got != 180 {
		t.Fatalf("after re-insert: %d rows, want 180", got)
	}
}

func TestIndexedJoinWithConstant(t *testing.T) {
	// Constant argument positions participate in the probe key.
	n := newTestNode(t, `r1 onH0(V) <- vm(V,"h0").`, Config{})
	n.Insert("vm", sval("a"), sval("h0"))
	n.Insert("vm", sval("b"), sval("h1"))
	// Trigger-side is the vm table itself here; force a probe by joining.
	n2 := newTestNode(t, `r1 hit(X) <- probe(X), vm(X,"h0").`, Config{})
	n2.Insert("vm", sval("a"), sval("h0"))
	n2.Insert("vm", sval("b"), sval("h1"))
	n2.Insert("probe", sval("a"))
	n2.Insert("probe", sval("b"))
	if !n2.Contains("hit", sval("a")) || n2.Contains("hit", sval("b")) {
		t.Fatalf("constant probe broken:\n%s", n2.Dump())
	}
	if !n.Contains("onH0", sval("a")) || n.Contains("onH0", sval("b")) {
		t.Fatalf("constant filter broken:\n%s", n.Dump())
	}
}

func TestIndexMaintainedThroughKeyedReplacement(t *testing.T) {
	n := newTestNode(t, `r1 view(K,V2) <- state(K,V), helper(K), V2:=V.`,
		Config{Keys: map[string][]int{"state": {0}, "view": {0}}})
	n.Insert("helper", sval("k"))
	n.Insert("state", sval("k"), ival(1))
	if !n.Contains("view", sval("k"), ival(1)) {
		t.Fatal("setup failed")
	}
	// Keyed replacement must update both row and index.
	n.Insert("state", sval("k"), ival(2))
	if !n.Contains("view", sval("k"), ival(2)) || rows(n, "view") != 1 {
		t.Fatalf("replacement broken:\n%s", n.Dump())
	}
}

func TestProjKeyAndIdxName(t *testing.T) {
	if idxName([]int{0, 2}) != "0,2" {
		t.Fatalf("idxName = %q", idxName([]int{0, 2}))
	}
	k1 := projKey([]colog.Value{sval("a"), ival(1), ival(2)}, []int{0, 2})
	k2 := projKey([]colog.Value{sval("a"), ival(9), ival(2)}, []int{0, 2})
	if k1 != k2 {
		t.Fatalf("projection keys differ: %q vs %q", k1, k2)
	}
	k3 := projKey([]colog.Value{sval("b"), ival(1), ival(2)}, []int{0, 2})
	if k1 == k3 {
		t.Fatal("distinct projections collide")
	}
}
